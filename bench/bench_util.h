#ifndef ASSET_BENCH_BENCH_UTIL_H_
#define ASSET_BENCH_BENCH_UTIL_H_

// Shared benchmark harness: an in-memory storage stack plus a
// TransactionManager configured for benchmarking (no log force at
// commit, generous timeouts). Each benchmark builds one `BenchKernel`
// and drives transactions through the public API.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "core/transaction_manager.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/object_store.h"
#include "storage/wal.h"

namespace asset::bench {

inline std::vector<uint8_t> Payload(size_t size, uint8_t fill = 0xAB) {
  return std::vector<uint8_t>(size, fill);
}

/// Publishes a latency histogram's percentiles (in nanoseconds) as
/// benchmark counters named <prefix>_p50_ns / _p95_ns / _p99_ns, plus
/// <prefix>_count. Call from thread 0 at the end of a run.
inline void ReportLatencyPercentiles(benchmark::State& state,
                                     const LatencyHistogram::Snapshot& h,
                                     const std::string& prefix) {
  state.counters[prefix + "_count"] = static_cast<double>(h.count);
  state.counters[prefix + "_p50_ns"] = static_cast<double>(h.p50());
  state.counters[prefix + "_p95_ns"] = static_cast<double>(h.p95());
  state.counters[prefix + "_p99_ns"] = static_cast<double>(h.p99());
}

/// Benchmark-friendly kernel options: no log force at commit, generous
/// timeouts, a large transaction table. Tweak (e.g. flip trace.enabled)
/// before handing to BenchKernel.
inline TransactionManager::Options BenchOptions(bool force_log = false) {
  TransactionManager::Options o;
  o.force_log_at_commit = force_log;
  o.lock.lock_timeout = std::chrono::milliseconds(30000);
  o.commit_timeout = std::chrono::milliseconds(60000);
  o.max_transactions = 1 << 20;
  return o;
}

class BenchKernel {
 public:
  explicit BenchKernel(bool force_log = false, size_t pool_pages = 4096)
      : BenchKernel(BenchOptions(force_log), pool_pages) {}

  explicit BenchKernel(const TransactionManager::Options& o,
                       size_t pool_pages = 4096)
      : pool_(&disk_, pool_pages, &log_), store_(&pool_) {
    store_.Open().ok();
    tm_ = std::make_unique<TransactionManager>(&log_, &store_, o);
  }

  TransactionManager& tm() { return *tm_; }
  ObjectStore& store() { return store_; }
  LogManager& log() { return log_; }
  BufferPool& pool() { return pool_; }

  /// Creates `n` committed objects of `size` bytes; returns their ids.
  std::vector<ObjectId> MakeObjects(size_t n, size_t size = 64) {
    std::vector<ObjectId> oids;
    oids.reserve(n);
    auto data = Payload(size);
    for (size_t i = 0; i < n; ++i) {
      oids.push_back(store_.Create(data).value());
    }
    return oids;
  }

  /// Runs fn as one committed transaction; returns commit success.
  bool RunTxn(std::function<void()> fn) {
    Tid t = tm_->InitiateFn(std::move(fn));
    if (t == kNullTid || !tm_->Begin(t)) return false;
    return tm_->Commit(t);
  }

 private:
  InMemoryDiskManager disk_;
  LogManager log_;
  BufferPool pool_;
  ObjectStore store_;
  std::unique_ptr<TransactionManager> tm_;
};

}  // namespace asset::bench

#endif  // ASSET_BENCH_BENCH_UTIL_H_
