// B13 — Semantic increments vs read-modify-write (DESIGN.md §4B /
// paper §5 ablation).
//
// Question: on a hot counter, how do commutative increment locks
// (compatible with each other) compare with the classical alternative —
// a read-modify-write under write locks, retried on deadlock — as
// adders contend?

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/database.h"
#include "models/atomic.h"

namespace asset::bench {
namespace {

constexpr int kAddsPerTxn = 4;

// Increment-lock adders: one transaction performs kAddsPerTxn adds.
void BM_IncrementHotCounter(benchmark::State& state) {
  static BenchKernel* kernel = nullptr;
  static ObjectId counter = kNullObjectId;
  if (state.thread_index() == 0) {
    kernel = new BenchKernel();
    counter = kernel->store()
                  .Create(ObjectStore::EncodeCounter(kNullLsn, 0))
                  .value();
  }
  for (auto _ : state) {
    kernel->RunTxn([&] {
      Tid self = TransactionManager::Self();
      for (int i = 0; i < kAddsPerTxn; ++i) {
        kernel->tm().Increment(self, counter, 1).ok();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kAddsPerTxn);
  if (state.thread_index() == 0) {
    state.counters["lock_waits"] =
        static_cast<double>(kernel->tm().stats().lock_waits.load());
    delete kernel;
  }
}
BENCHMARK(BM_IncrementHotCounter)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Baseline: read-modify-write under ordinary write locks (what you
// must do without semantic operations), retried on deadlock/timeout.
void BM_RmwHotCounter(benchmark::State& state) {
  static BenchKernel* kernel = nullptr;
  static ObjectId counter = kNullObjectId;
  if (state.thread_index() == 0) {
    kernel = new BenchKernel();
    counter = kernel->store().Create(EncodeI64(0)).value();
  }
  for (auto _ : state) {
    Tid t = kernel->tm().InitiateFn([&] {
      Tid self = TransactionManager::Self();
      for (int i = 0; i < kAddsPerTxn; ++i) {
        auto bytes = kernel->tm().Read(self, counter);
        if (!bytes.ok()) return;
        int64_t v = DecodeI64(*bytes).value();
        if (!kernel->tm().Write(self, counter, EncodeI64(v + 1)).ok()) {
          return;
        }
      }
    });
    kernel->tm().Begin(t);
    kernel->tm().Commit(t);
  }
  state.SetItemsProcessed(state.iterations() * kAddsPerTxn);
  if (state.thread_index() == 0) {
    state.counters["lock_waits"] =
        static_cast<double>(kernel->tm().stats().lock_waits.load());
    state.counters["deadlocks"] =
        static_cast<double>(kernel->tm().stats().deadlocks.load());
    delete kernel;
  }
}
BENCHMARK(BM_RmwHotCounter)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Undo cost of increments: add N deltas, then abort (logical undo).
void BM_AbortIncrements(benchmark::State& state) {
  const int adds = static_cast<int>(state.range(0));
  BenchKernel kernel;
  ObjectId counter = kernel.store()
                         .Create(ObjectStore::EncodeCounter(kNullLsn, 0))
                         .value();
  for (auto _ : state) {
    Tid t = kernel.tm().InitiateFn([&] {
      Tid self = TransactionManager::Self();
      for (int i = 0; i < adds; ++i) {
        kernel.tm().Increment(self, counter, 1).ok();
      }
    });
    kernel.tm().Begin(t);
    kernel.tm().Wait(t);
    kernel.tm().Abort(t);
  }
  state.SetItemsProcessed(state.iterations() * adds);
}
BENCHMARK(BM_AbortIncrements)->ArgName("adds")->Arg(16)->Arg(256);

}  // namespace
}  // namespace asset::bench
