// B17 — Observability overhead (DESIGN.md §4B).
//
// Question: what does the flight recorder cost? Disabled, Emit() must
// be one relaxed load + branch — the hot-counter workload (B13's
// increment pattern) should run at parity with a build that never heard
// of tracing. Enabled, the per-event seqlock write should stay cheap
// enough to leave on during an incident. The raw Emit microbenchmarks
// bound both costs directly; the kernel pair measures them end to end,
// with commit-latency percentiles reported from the new histograms.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "client/client.h"
#include "common/trace.h"
#include "core/database.h"
#include "server/server.h"

namespace asset::bench {
namespace {

constexpr int kAddsPerTxn = 4;

// The B13 hot-counter increment workload, parameterized on tracing.
void RunIncrementWorkload(benchmark::State& state, bool trace_enabled) {
  static BenchKernel* kernel = nullptr;
  static ObjectId counter = kNullObjectId;
  if (state.thread_index() == 0) {
    auto o = BenchOptions();
    o.trace.enabled = trace_enabled;
    kernel = new BenchKernel(o);
    counter = kernel->store()
                  .Create(ObjectStore::EncodeCounter(kNullLsn, 0))
                  .value();
  }
  for (auto _ : state) {
    kernel->RunTxn([&] {
      Tid self = TransactionManager::Self();
      for (int i = 0; i < kAddsPerTxn; ++i) {
        kernel->tm().Increment(self, counter, 1).ok();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kAddsPerTxn);
  if (state.thread_index() == 0) {
    auto s = kernel->tm().stats().snapshot();
    ReportLatencyPercentiles(state, s.commit_latency, "commit");
    if (trace_enabled) {
      state.counters["trace_events"] =
          static_cast<double>(kernel->tm().recorder().Drain().size());
      state.counters["trace_dropped"] =
          static_cast<double>(s.trace_events_dropped);
    }
    delete kernel;
  }
}

void BM_IncrementTraceOff(benchmark::State& state) {
  RunIncrementWorkload(state, /*trace_enabled=*/false);
}
BENCHMARK(BM_IncrementTraceOff)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_IncrementTraceOn(benchmark::State& state) {
  RunIncrementWorkload(state, /*trace_enabled=*/true);
}
BENCHMARK(BM_IncrementTraceOn)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Raw cost of one Emit() call with tracing off: the production price of
// leaving instrumentation compiled into every hot path.
void BM_EmitDisabled(benchmark::State& state) {
  TraceOptions o;
  o.enabled = false;
  FlightRecorder rec(o);
  for (auto _ : state) {
    rec.Emit(TraceEventType::kLockWait, 1, 2, 3, 4, 5);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitDisabled);

// Raw cost of one Emit() call with tracing on: timestamp + seqlock
// write into the thread's private ring.
void BM_EmitEnabled(benchmark::State& state) {
  TraceOptions o;
  o.enabled = true;
  FlightRecorder rec(o);
  for (auto _ : state) {
    rec.Emit(TraceEventType::kLockWait, 1, 2, 3, 4, 5);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitEnabled);

// B20 — wire-tracing overhead on a loopback RPC round trip. Off, the
// request-stage instrumentation is histogram records plus disabled
// Emit() calls, and must run at parity with B18's per-RPC cost. On,
// every round trip writes seven span events (client + six server
// stages) into the shared recorder.
void RunNetRpc(benchmark::State& state, bool trace_enabled) {
  auto db = Database::Open().value();
  db->set_trace_enabled(trace_enabled);
  auto server = server::Server::Start(db.get(), {}).value();
  client::Client::Options copts;
  if (trace_enabled) copts.trace_recorder = &db->trace_recorder();
  auto c =
      client::Client::Connect("127.0.0.1", server->port(), copts).value();
  for (auto _ : state) {
    if (!c->Begin().ok() || !c->Commit().ok()) {
      state.SkipWithError("begin/commit round trip failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two RPCs per txn
  if (trace_enabled) {
    state.counters["trace_events"] =
        static_cast<double>(db->trace_recorder().Drain().size());
  }
  c.reset();
  server->Shutdown();
}

void BM_NetRpcTraceOff(benchmark::State& state) {
  RunNetRpc(state, /*trace_enabled=*/false);
}
BENCHMARK(BM_NetRpcTraceOff)->UseRealTime();

void BM_NetRpcTraceOn(benchmark::State& state) {
  RunNetRpc(state, /*trace_enabled=*/true);
}
BENCHMARK(BM_NetRpcTraceOn)->UseRealTime();

// Cost of one consistent kernel-state snapshot (DumpState) while the
// kernel is quiet but populated: what a monitoring scrape pays.
void BM_DumpState(benchmark::State& state) {
  auto db = Database::Open().value();
  std::vector<Txn> open;
  for (int i = 0; i < 32; ++i) {
    auto t = db->Begin();
    if (!t.ok()) break;
    t->Create<int64_t>(i).ok();
    open.push_back(std::move(*t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->DumpState());
  }
  state.SetItemsProcessed(state.iterations());
  for (auto& t : open) t.Abort().ok();
}
BENCHMARK(BM_DumpState);

// Prometheus scrape cost: counters + histogram percentiles rendered.
void BM_MetricsText(benchmark::State& state) {
  auto db = Database::Open().value();
  {
    auto t = db->Begin();
    t->Create<int64_t>(1).ok();
    t->Commit().ok();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->MetricsText());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsText);

}  // namespace
}  // namespace asset::bench
