// B14 — Transactional B+-tree characterization (DESIGN.md §4B): insert
// and lookup throughput vs tree size, range scans, and the cost of
// running the index through the transaction kernel (vs an in-memory
// std::map ceiling).

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"
#include "common/random.h"
#include "ode/btree.h"

namespace asset::bench {
namespace {

using ode::BTree;

BTree MakeTree(BenchKernel& kernel, int preload) {
  ObjectId header = kNullObjectId;
  kernel.RunTxn([&] {
    Tid self = TransactionManager::Self();
    auto tree = BTree::Create(&kernel.tm(), self);
    header = tree->header_oid();
    for (int i = 0; i < preload; ++i) {
      tree->Insert(self, i * 2, static_cast<uint64_t>(i)).value();
    }
  });
  return BTree::Open(&kernel.tm(), header);
}

void BM_BTreeInsert(benchmark::State& state) {
  const int preload = static_cast<int>(state.range(0));
  BenchKernel kernel;
  BTree tree = MakeTree(kernel, preload);
  Random rng(11);
  for (auto _ : state) {
    kernel.RunTxn([&] {
      Tid self = TransactionManager::Self();
      for (int i = 0; i < 8; ++i) {
        tree.Insert(self, static_cast<int64_t>(rng.Next() % 1000000),
                    rng.Next())
            .value();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_BTreeInsert)
    ->ArgName("preload")
    ->Arg(0)
    ->Arg(1000)
    ->Arg(10000);

void BM_BTreeSearch(benchmark::State& state) {
  const int preload = static_cast<int>(state.range(0));
  BenchKernel kernel;
  BTree tree = MakeTree(kernel, preload);
  Random rng(12);
  for (auto _ : state) {
    kernel.RunTxn([&] {
      Tid self = TransactionManager::Self();
      for (int i = 0; i < 8; ++i) {
        benchmark::DoNotOptimize(
            tree.Search(self, static_cast<int64_t>(
                                  rng.Uniform(preload) * 2)));
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_BTreeSearch)->ArgName("preload")->Arg(1000)->Arg(10000);

void BM_BTreeRangeScan(benchmark::State& state) {
  const int span = static_cast<int>(state.range(0));
  BenchKernel kernel;
  BTree tree = MakeTree(kernel, 10000);
  Random rng(13);
  for (auto _ : state) {
    kernel.RunTxn([&] {
      Tid self = TransactionManager::Self();
      int64_t lo = static_cast<int64_t>(rng.Uniform(10000 - span)) * 2;
      benchmark::DoNotOptimize(tree.Range(self, lo, lo + span * 2));
    });
  }
  state.SetItemsProcessed(state.iterations() * span);
}
BENCHMARK(BM_BTreeRangeScan)->ArgName("span")->Arg(10)->Arg(100)->Arg(1000);

// Delete+reinsert pairs keep the workload cyclic (a pure delete stream
// would exhaust the tree before the benchmark's iteration budget).
void BM_BTreeDeleteInsert(benchmark::State& state) {
  BenchKernel kernel;
  constexpr int kPreload = 10000;
  BTree tree = MakeTree(kernel, kPreload);
  int64_t cursor = 0;
  for (auto _ : state) {
    kernel.RunTxn([&] {
      Tid self = TransactionManager::Self();
      for (int i = 0; i < 4; ++i) {
        int64_t key = (cursor % kPreload) * 2;
        ++cursor;
        tree.Delete(self, key).ok();
        tree.Insert(self, key, 1).value();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_BTreeDeleteInsert);

// Ceiling: the same operations against std::map (no transactions, no
// persistence) — the price of transactional indexing in context.
void BM_StdMapCeiling(benchmark::State& state) {
  std::map<int64_t, uint64_t> m;
  for (int i = 0; i < 10000; ++i) m[i * 2] = static_cast<uint64_t>(i);
  Random rng(14);
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      auto it = m.find(static_cast<int64_t>(rng.Uniform(10000)) * 2);
      benchmark::DoNotOptimize(it);
    }
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_StdMapCeiling);

}  // namespace
}  // namespace asset::bench
