// B11 — End-to-end workflow throughput (DESIGN.md §4B): the appendix
// X_conference shape (contingent flight, required hotel, raced car),
// swept over failure mixes that drive the contingency cascade and the
// compensation path. Baseline: the same work as plain sequential
// transactions with no alternatives or compensation machinery.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "models/workflow.h"

namespace asset::bench {
namespace {

// One iteration = one full X_conference-shaped workflow.
// range(0): % chance each flight alternative fails.
// range(1): % chance the hotel fails (driving flight compensation).
void BM_ConferenceWorkflow(benchmark::State& state) {
  const uint64_t flight_fail_pct = static_cast<uint64_t>(state.range(0));
  const uint64_t hotel_fail_pct = static_cast<uint64_t>(state.range(1));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(3);
  ObjectId flight = oids[0], hotel = oids[1], car = oids[2];
  Random rng(42);
  auto payload = Payload(32);
  uint64_t succeeded = 0, compensations = 0;
  for (auto _ : state) {
    models::Workflow wf;
    models::Workflow::Step flights;
    flights.name = "flight";
    for (int alt = 0; alt < 3; ++alt) {
      bool fail = rng.Uniform(100) < flight_fail_pct;
      flights.alternatives.push_back([&kernel, &payload, flight, fail] {
        Tid self = TransactionManager::Self();
        if (fail) {
          kernel.tm().Abort(self);
          return;
        }
        kernel.tm().Write(self, flight, payload).ok();
      });
    }
    flights.compensation = [&kernel, &payload, flight] {
      kernel.tm()
          .Write(TransactionManager::Self(), flight, Payload(32, 0))
          .ok();
    };
    wf.AddStep(std::move(flights));

    bool hotel_fails = rng.Uniform(100) < hotel_fail_pct;
    wf.AddRequired("hotel", [&kernel, &payload, hotel, hotel_fails] {
      Tid self = TransactionManager::Self();
      if (hotel_fails) {
        kernel.tm().Abort(self);
        return;
      }
      kernel.tm().Write(self, hotel, payload).ok();
    });

    wf.AddOptional("car", [&kernel, &payload, car] {
      kernel.tm().Write(TransactionManager::Self(), car, payload).ok();
    });

    auto out = wf.Run(kernel.tm());
    succeeded += out.succeeded ? 1 : 0;
    compensations += out.compensations_run;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["success_rate"] =
      static_cast<double>(succeeded) / static_cast<double>(state.iterations());
  state.counters["compensations"] = static_cast<double>(compensations);
}
BENCHMARK(BM_ConferenceWorkflow)
    ->ArgNames({"flight_fail_pct", "hotel_fail_pct"})
    ->Args({0, 0})
    ->Args({50, 0})
    ->Args({90, 0})
    ->Args({0, 50})
    ->Args({50, 50});

// The car-rental race as its own measurement: two alternatives raced in
// parallel per step.
void BM_RaceStep(benchmark::State& state) {
  BenchKernel kernel;
  ObjectId car = kernel.MakeObjects(1)[0];
  auto payload = Payload(32);
  for (auto _ : state) {
    models::Workflow wf;
    models::Workflow::Step step;
    step.name = "car";
    step.mode = models::Workflow::Mode::kRace;
    step.required = false;
    step.alternatives = {
        [&kernel, &payload, car] {
          kernel.tm().Write(TransactionManager::Self(), car, payload).ok();
        },
        [&kernel, &payload, car] {
          kernel.tm().Write(TransactionManager::Self(), car, payload).ok();
        },
    };
    wf.AddStep(std::move(step));
    benchmark::DoNotOptimize(wf.Run(kernel.tm()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RaceStep);

// Baseline: the same three writes as straight-line transactions.
void BM_SequentialBaseline(benchmark::State& state) {
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(3);
  auto payload = Payload(32);
  for (auto _ : state) {
    for (ObjectId oid : oids) {
      kernel.RunTxn([&] {
        kernel.tm().Write(TransactionManager::Self(), oid, payload).ok();
      });
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialBaseline);

}  // namespace
}  // namespace asset::bench
