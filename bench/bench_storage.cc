// B9 — Storage substrate characterization (DESIGN.md §4B): object
// store CRUD, buffer-pool hit/miss behaviour, WAL append/flush.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "storage/recovery.h"

namespace asset::bench {
namespace {

void BM_ObjectCreate(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto data = Payload(size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.store().Create(data));
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_ObjectCreate)->ArgName("bytes")->Arg(16)->Arg(256)->Arg(4096);

void BM_ObjectReadHot(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(64, size);
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernel.store().Read(oids[rng.Uniform(oids.size())]));
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_ObjectReadHot)->ArgName("bytes")->Arg(16)->Arg(256)->Arg(4096);

void BM_ObjectWriteSameSize(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(64, size);
  auto data = Payload(size, 0xCD);
  Random rng(4);
  for (auto _ : state) {
    kernel.store().Write(oids[rng.Uniform(oids.size())], data).ok();
  }
  state.SetBytesProcessed(state.iterations() * size);
}
BENCHMARK(BM_ObjectWriteSameSize)
    ->ArgName("bytes")
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096);

// Working set larger than the pool: every access is a likely miss with
// a dirty write-back — the steal path.
void BM_PoolThrash(benchmark::State& state) {
  const size_t pool_pages = 64;
  InMemoryDiskManager disk;
  LogManager log;
  BufferPool pool(&disk, pool_pages, &log);
  ObjectStore store(&pool);
  store.Open().ok();
  // ~8 objects per page, working set = range(0) * pool size.
  const size_t objects =
      pool_pages * 8 * static_cast<size_t>(state.range(0));
  std::vector<ObjectId> oids;
  auto data = Payload(900);
  for (size_t i = 0; i < objects; ++i) {
    oids.push_back(store.Create(data).value());
  }
  Random rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Read(oids[rng.Uniform(oids.size())]));
  }
  auto stats = pool.stats();
  state.counters["hit_rate"] =
      static_cast<double>(stats.hits) /
      static_cast<double>(stats.hits + stats.misses);
}
BENCHMARK(BM_PoolThrash)->ArgName("ws_over_pool")->Arg(1)->Arg(2)->Arg(8);

void BM_WalAppend(benchmark::State& state) {
  const size_t image = static_cast<size_t>(state.range(0));
  LogManager log;
  auto bytes = Payload(image);
  for (auto _ : state) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.tid = 1;
    rec.oid = 1;
    rec.before = bytes;
    rec.after = bytes;
    benchmark::DoNotOptimize(log.Append(std::move(rec)));
  }
  state.SetBytesProcessed(state.iterations() * image * 2);
}
BENCHMARK(BM_WalAppend)->ArgName("image_bytes")->Arg(16)->Arg(256)->Arg(4096);

void BM_WalAppendFlushEvery(benchmark::State& state) {
  const int group = static_cast<int>(state.range(0));
  LogManager log;
  auto bytes = Payload(64);
  int pending = 0;
  for (auto _ : state) {
    LogRecord rec;
    rec.type = LogRecordType::kUpdate;
    rec.tid = 1;
    rec.oid = 1;
    rec.before = bytes;
    rec.after = bytes;
    log.Append(std::move(rec));
    if (++pending >= group) {
      log.Flush().ok();
      pending = 0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppendFlushEvery)
    ->ArgName("group")
    ->Arg(1)
    ->Arg(8)
    ->Arg(64);

// Recovery speed: replay a log of N committed single-object updates.
void BM_RecoveryReplay(benchmark::State& state) {
  const int updates = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    InMemoryDiskManager disk;
    LogManager log;
    BufferPool pool(&disk, 256, &log);
    ObjectStore store(&pool);
    store.Open().ok();
    auto data = Payload(64);
    store.CreateWithId(1, data).ok();
    for (int i = 0; i < updates; ++i) {
      LogRecord rec;
      rec.type = LogRecordType::kUpdate;
      rec.tid = 1;
      rec.oid = 1;
      rec.before = data;
      rec.after = data;
      log.Append(std::move(rec));
    }
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.tid = 1;
    log.Append(std::move(commit));
    log.Flush().ok();
    state.ResumeTiming();
    RecoveryManager::Recover(&log, &store).ok();
  }
  state.SetItemsProcessed(state.iterations() * updates);
}
BENCHMARK(BM_RecoveryReplay)
    ->ArgName("updates")
    ->Arg(64)
    ->Arg(1024)
    ->Arg(8192);

}  // namespace
}  // namespace asset::bench
