// B6 — Cooperative (permit ping-pong) vs blocking 2PL (DESIGN.md §4B).
//
// Question: for k workers taking turns updating one hot design object,
// how does one long cooperative session (mutual permits, §3.2.1)
// compare with the strict-2PL alternative (a separate short
// transaction per update)? This is the paper's CAD motivation: the
// cooperative group exchanges the object without commit/begin cycles.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench_util.h"
#include "models/cooperative.h"

namespace asset::bench {
namespace {

constexpr int kRoundsPerWorker = 32;

// Cooperative: k long transactions with mutual permits alternate writes
// to one object; one iteration = the whole session (k * rounds writes).
void BM_CooperativeSession(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BenchKernel kernel;
    ObjectId hot = kernel.MakeObjects(1)[0];
    auto payload = Payload(64);
    std::atomic<int> turn{0};
    std::vector<Tid> tids;
    for (int w = 0; w < workers; ++w) {
      tids.push_back(kernel.tm().InitiateFn([&, w] {
        Tid self = TransactionManager::Self();
        for (int r = 0; r < kRoundsPerWorker; ++r) {
          while (turn.load(std::memory_order_acquire) % workers != w) {
            std::this_thread::yield();
          }
          kernel.tm().Write(self, hot, payload).ok();
          turn.fetch_add(1, std::memory_order_release);
        }
      }));
    }
    models::CooperativeGroup group(kernel.tm(), ObjectSet{hot},
                                   models::CommitCoupling::kNone);
    for (Tid t : tids) group.Enroll(t).ok();
    state.ResumeTiming();
    for (Tid t : tids) kernel.tm().Begin(t);
    group.CommitAll();
    state.PauseTiming();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * workers * kRoundsPerWorker);
}
BENCHMARK(BM_CooperativeSession)
    ->ArgName("workers")
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Baseline: the same update pattern with strict 2PL — every update is
// its own transaction, handing the lock over through commit.
void BM_Strict2plSession(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BenchKernel kernel;
    ObjectId hot = kernel.MakeObjects(1)[0];
    auto payload = Payload(64);
    std::atomic<int> turn{0};
    state.ResumeTiming();
    std::vector<std::thread> threads;
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (int r = 0; r < kRoundsPerWorker; ++r) {
          while (turn.load(std::memory_order_acquire) % workers != w) {
            std::this_thread::yield();
          }
          kernel.RunTxn([&] {
            kernel.tm()
                .Write(TransactionManager::Self(), hot, payload)
                .ok();
          });
          turn.fetch_add(1, std::memory_order_release);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * workers * kRoundsPerWorker);
}
BENCHMARK(BM_Strict2plSession)
    ->ArgName("workers")
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// The raw hand-off primitive: one suspended-lock exchange (write by A,
// permitted write by B) measured tightly with two resident
// transactions.
void BM_PingPongHandoff(benchmark::State& state) {
  BenchKernel kernel;
  ObjectId hot = kernel.MakeObjects(1)[0];
  auto payload = Payload(64);
  std::atomic<int> turn{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  auto worker = [&](int me) {
    Tid self = TransactionManager::Self();
    while (!stop.load(std::memory_order_acquire)) {
      if (turn.load(std::memory_order_acquire) % 2 != me) {
        std::this_thread::yield();
        continue;
      }
      kernel.tm().Write(self, hot, payload).ok();
      writes.fetch_add(1, std::memory_order_relaxed);
      turn.fetch_add(1, std::memory_order_release);
    }
  };
  Tid a = kernel.tm().InitiateFn([&] { worker(0); });
  Tid b = kernel.tm().InitiateFn([&] { worker(1); });
  kernel.tm().Permit(a, b, ObjectSet{hot}, OpSet::All()).ok();
  kernel.tm().Permit(b, a, ObjectSet{hot}, OpSet::All()).ok();
  kernel.tm().Begin(a);
  kernel.tm().Begin(b);
  uint64_t before = writes.load();
  for (auto _ : state) {
    uint64_t target = before + 1;
    while (writes.load(std::memory_order_relaxed) < target) {
    }
    before = target;
  }
  stop.store(true, std::memory_order_release);
  kernel.tm().Commit(a);
  kernel.tm().Commit(b);
  state.SetItemsProcessed(state.iterations());
  state.counters["suspensions"] = static_cast<double>(
      kernel.tm().stats().lock_suspensions.load());
}
BENCHMARK(BM_PingPongHandoff)->UseRealTime();

}  // namespace
}  // namespace asset::bench
