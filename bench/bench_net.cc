// B18: the network front door under load.
//
// Unlike B1-B17 this is not a google-benchmark binary: the quantities
// that matter here — concurrently open sessions at a fixed fd budget,
// and open-loop latency percentiles under a *scheduled* arrival rate —
// do not fit the stopwatch-around-a-loop model. Three phases:
//
//  1. Session ramp: open C connections and leave S session
//     transactions open on each (C*S >= 10k), prove the server still
//     answers, then commit everything. Loopback costs two fds per
//     connection (client end + server end, same process), so 10k
//     sessions ride on ~5-6k connections well inside a 20k fd limit.
//  2. Closed loop: T threads x K connections, each cycling one
//     pipelined Begin+Add+Commit batch (one flush, three replies) per
//     connection. Latency is flush-to-last-reply; load is bounded by
//     the clients themselves.
//  3. Open loop: batches are *scheduled* at a target rate and latency
//     is measured from the intended send time, so a stalled server
//     accrues queueing delay instead of silently slowing the load
//     (coordinated omission). One sender thread walks the schedule;
//     one receiver drains replies in send order.
//  4. Overload (B19): a second server with admission control on is
//     offered `overload_factor` times the measured closed-loop peak.
//     Every command carries a deadline; shed Begins, expired commands,
//     and completed batches are accounted separately. The claim under
//     test: goodput stays near the closed-loop peak (the server sheds
//     cheap instead of executing slow) and *admitted* work keeps a
//     bounded send-to-reply latency, instead of everyone queueing
//     toward infinity.
//
// Prints a JSON document to stdout; BENCH_net.json holds one measured
// run with commentary.

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/command.h"
#include "client/client.h"
#include "common/histogram.h"
#include "common/trace.h"
#include "core/database.h"
#include "server/server.h"

namespace {

using asset::Database;
using asset::LatencyHistogram;
using asset::ObjectId;
using asset::Tid;
using asset::client::Client;
using asset::server::Server;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Config {
  int ramp_connections = 5200;
  int sessions_per_connection = 2;
  int closed_threads = 2;
  int closed_connections_per_thread = 8;
  double closed_seconds = 4.0;
  std::vector<int> open_rates = {2000, 5000, 10000};
  double open_seconds = 3.0;
  int open_connections = 8;
  bool skip_ramp = false;
  double overload_factor = 3.0;
  double overload_seconds = 3.0;
  int overload_deadline_ms = 500;
  bool skip_overload = false;
  /// When nonempty: record wire-traced spans during the closed loop and
  /// write the Chrome trace_event JSON here (chrome://tracing).
  std::string trace_file;
};

Config ParseArgs(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto val = [&](const char* key) -> const char* {
      size_t n = strlen(key);
      return a.compare(0, n, key) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = val("--ramp-connections=")) {
      cfg.ramp_connections = atoi(v);
    } else if (const char* v = val("--sessions-per-connection=")) {
      cfg.sessions_per_connection = atoi(v);
    } else if (const char* v = val("--closed-threads=")) {
      cfg.closed_threads = atoi(v);
    } else if (const char* v = val("--closed-connections=")) {
      cfg.closed_connections_per_thread = atoi(v);
    } else if (const char* v = val("--closed-seconds=")) {
      cfg.closed_seconds = atof(v);
    } else if (const char* v = val("--open-seconds=")) {
      cfg.open_seconds = atof(v);
    } else if (const char* v = val("--open-rates=")) {
      cfg.open_rates.clear();
      for (const char* p = v; *p != '\0';) {
        cfg.open_rates.push_back(atoi(p));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (const char* v = val("--overload-factor=")) {
      cfg.overload_factor = atof(v);
    } else if (const char* v = val("--overload-seconds=")) {
      cfg.overload_seconds = atof(v);
    } else if (const char* v = val("--overload-deadline-ms=")) {
      cfg.overload_deadline_ms = atoi(v);
    } else if (const char* v = val("--trace=")) {
      cfg.trace_file = v;
    } else if (a == "--skip-ramp") {
      cfg.skip_ramp = true;
    } else if (a == "--skip-overload") {
      cfg.skip_overload = true;
    } else {
      fprintf(stderr, "unknown flag %s\n", a.c_str());
      exit(2);
    }
  }
  return cfg;
}

/// Raises the soft fd limit to the hard limit and returns it.
rlim_t RaiseFdLimit() {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return 0;
  rl.rlim_cur = rl.rlim_max;
  setrlimit(RLIMIT_NOFILE, &rl);
  getrlimit(RLIMIT_NOFILE, &rl);
  return rl.rlim_cur;
}

void Die(const char* what, const asset::Status& s) {
  fprintf(stderr, "bench_net: %s: %s\n", what, s.ToString().c_str());
  exit(1);
}

// --- Phase 1: session ramp --------------------------------------------

struct RampResult {
  int connections = 0;
  uint64_t peak_sessions = 0;
  double open_s = 0;
  double close_s = 0;
  bool responsive_at_peak = false;
};

RampResult RunRamp(Database* db, uint16_t port, const Config& cfg) {
  RampResult res;
  const int kThreads = 4;
  std::vector<std::vector<std::unique_ptr<Client>>> clients(kThreads);
  std::vector<std::vector<std::vector<Tid>>> tids(kThreads);
  std::atomic<int> failures{0};

  uint64_t t0 = NowNs();
  {
    std::vector<std::thread> threads;
    for (int w = 0; w < kThreads; ++w) {
      threads.emplace_back([&, w] {
        int share = cfg.ramp_connections / kThreads +
                    (w < cfg.ramp_connections % kThreads ? 1 : 0);
        for (int i = 0; i < share; ++i) {
          auto c = Client::Connect("127.0.0.1", port);
          if (!c.ok()) {
            failures.fetch_add(1);
            return;  // fd budget exhausted: stop this worker
          }
          Client* cl = c.value().get();
          // Pipeline the Begins: one flush, S replies.
          for (int s = 0; s < cfg.sessions_per_connection; ++s) {
            cl->Send(asset::api::Command::Begin());
          }
          if (!cl->Flush().ok()) {
            failures.fetch_add(1);
            return;
          }
          std::vector<Tid> opened;
          for (int s = 0; s < cfg.sessions_per_connection; ++s) {
            auto r = cl->Receive();
            if (!r.ok() || r.value().code != asset::StatusCode::kOk) {
              failures.fetch_add(1);
              return;
            }
            opened.push_back(r.value().u64);
          }
          clients[w].push_back(std::move(c.value()));
          tids[w].push_back(std::move(opened));
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  res.open_s = static_cast<double>(NowNs() - t0) / 1e9;
  for (auto& v : clients) res.connections += static_cast<int>(v.size());
  res.peak_sessions = db->ActiveTransactions();

  // The server must still answer with everything open.
  for (int w = 0; w < kThreads && !clients[w].empty(); ++w) {
    res.responsive_at_peak = clients[w].front()->Ping().ok();
    if (!res.responsive_at_peak) break;
  }

  // Commit every session (pipelined per connection), then drop the
  // connections.
  t0 = NowNs();
  {
    std::vector<std::thread> threads;
    for (int w = 0; w < kThreads; ++w) {
      threads.emplace_back([&, w] {
        for (size_t i = 0; i < clients[w].size(); ++i) {
          Client* cl = clients[w][i].get();
          for (Tid t : tids[w][i]) {
            cl->Send(asset::api::Command::Commit(t));
          }
          if (!cl->Flush().ok()) continue;
          for (size_t s = 0; s < tids[w][i].size(); ++s) {
            auto r = cl->Receive();
            (void)r;
          }
        }
        clients[w].clear();
      });
    }
    for (auto& t : threads) t.join();
  }
  res.close_s = static_cast<double>(NowNs() - t0) / 1e9;
  return res;
}

// --- Phase 2: closed loop ---------------------------------------------

struct LoopResult {
  uint64_t txns = 0;
  double seconds = 0;
  double throughput = 0;
  uint64_t p50_us = 0, p95_us = 0, p99_us = 0;
  double mean_us = 0;
};

/// One Begin+Add+Commit batch on `cl` against its private counter;
/// returns false on any transport or command error.
bool RunBatch(Client* cl, ObjectId counter) {
  cl->Send(asset::api::Command::Begin());
  cl->Send(asset::api::Command::Add(counter, 1));
  cl->Send(asset::api::Command::Commit());
  if (!cl->Flush().ok()) return false;
  for (int i = 0; i < 3; ++i) {
    auto r = cl->Receive();
    if (!r.ok() || r.value().code != asset::StatusCode::kOk) return false;
  }
  return true;
}

asset::Result<ObjectId> MakeCounter(Client* cl) {
  auto begin = cl->Begin();
  if (!begin.ok()) return begin.status();
  auto oid = cl->CreateCounter(0);
  if (!oid.ok()) return oid.status();
  auto commit = cl->Commit();
  if (!commit.ok()) return commit;
  return oid;
}

LoopResult RunClosedLoop(uint16_t port, const Config& cfg,
                         asset::FlightRecorder* rec = nullptr) {
  LatencyHistogram hist;
  std::atomic<uint64_t> txns{0};
  uint64_t t0 = NowNs();
  uint64_t deadline =
      t0 + static_cast<uint64_t>(cfg.closed_seconds * 1e9);
  std::vector<std::thread> threads;
  for (int w = 0; w < cfg.closed_threads; ++w) {
    threads.emplace_back([&] {
      Client::Options copts;
      copts.trace_recorder = rec;  // null when tracing is off
      std::vector<std::unique_ptr<Client>> conns;
      std::vector<ObjectId> counters;
      for (int i = 0; i < cfg.closed_connections_per_thread; ++i) {
        auto c = Client::Connect("127.0.0.1", port, copts);
        if (!c.ok()) Die("closed-loop connect", c.status());
        auto oid = MakeCounter(c.value().get());
        if (!oid.ok()) Die("closed-loop counter", oid.status());
        conns.push_back(std::move(c.value()));
        counters.push_back(oid.value());
      }
      while (NowNs() < deadline) {
        for (size_t i = 0; i < conns.size(); ++i) {
          uint64_t start = NowNs();
          if (!RunBatch(conns[i].get(), counters[i])) {
            Die("closed-loop batch", asset::Status::IOError("batch failed"));
          }
          hist.Record(NowNs() - start);
          txns.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  LoopResult res;
  res.txns = txns.load();
  res.seconds = static_cast<double>(NowNs() - t0) / 1e9;
  res.throughput = static_cast<double>(res.txns) / res.seconds;
  auto snap = hist.snapshot();
  res.p50_us = snap.p50() / 1000;
  res.p95_us = snap.p95() / 1000;
  res.p99_us = snap.p99() / 1000;
  res.mean_us = snap.mean() / 1000.0;
  return res;
}

// --- Phase 3: open loop -----------------------------------------------

struct OpenResult {
  int target_rate = 0;
  uint64_t sent = 0;
  uint64_t completed = 0;
  double seconds = 0;
  double throughput = 0;
  uint64_t p50_us = 0, p95_us = 0, p99_us = 0;
};

OpenResult RunOpenLoop(uint16_t port, int rate, const Config& cfg) {
  // Connections with a private counter each; the sender round-robins
  // batches over them so replies on any one connection stay in order.
  std::vector<std::unique_ptr<Client>> conns;
  std::vector<ObjectId> counters;
  for (int i = 0; i < cfg.open_connections; ++i) {
    auto c = Client::Connect("127.0.0.1", port);
    if (!c.ok()) Die("open-loop connect", c.status());
    auto oid = MakeCounter(c.value().get());
    if (!oid.ok()) Die("open-loop counter", oid.status());
    conns.push_back(std::move(c.value()));
    counters.push_back(oid.value());
  }

  struct Pending {
    int conn;         // -1 = sender is done
    uint64_t intended_ns;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> queue;

  LatencyHistogram hist;
  std::atomic<uint64_t> completed{0};
  uint64_t sent = 0;

  uint64_t t0 = NowNs();
  const uint64_t period = static_cast<uint64_t>(1e9 / rate);
  const uint64_t stop = t0 + static_cast<uint64_t>(cfg.open_seconds * 1e9);

  // Receiver: drain replies in send order, charging each batch from
  // its *intended* send time.
  std::thread receiver([&] {
    for (;;) {
      Pending p;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return !queue.empty(); });
        p = queue.front();
        queue.pop_front();
      }
      if (p.conn < 0) return;
      bool ok = true;
      for (int i = 0; i < 3; ++i) {
        auto r = conns[p.conn]->Receive();
        if (!r.ok() || r.value().code != asset::StatusCode::kOk) ok = false;
      }
      if (ok) {
        hist.Record(NowNs() - p.intended_ns);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Sender: walk the schedule. Never waits for replies; if the
  // schedule is behind, send immediately — the lateness lands in the
  // receiver's latency measurement, not in a reduced rate.
  int which = 0;
  for (uint64_t intended = t0; intended < stop; intended += period) {
    uint64_t now = NowNs();
    if (intended > now) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(intended - now));
    }
    Client* cl = conns[which].get();
    cl->Send(asset::api::Command::Begin());
    cl->Send(asset::api::Command::Add(counters[which], 1));
    cl->Send(asset::api::Command::Commit());
    if (!cl->Flush().ok()) {
      Die("open-loop flush", asset::Status::IOError("flush failed"));
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      queue.push_back({which, intended});
    }
    cv.notify_one();
    ++sent;
    which = (which + 1) % static_cast<int>(conns.size());
  }
  {
    std::lock_guard<std::mutex> lk(mu);
    queue.push_back({-1, 0});
  }
  cv.notify_one();
  receiver.join();

  OpenResult res;
  res.target_rate = rate;
  res.sent = sent;
  res.completed = completed.load();
  res.seconds = static_cast<double>(NowNs() - t0) / 1e9;
  res.throughput = static_cast<double>(res.completed) / res.seconds;
  auto snap = hist.snapshot();
  res.p50_us = snap.p50() / 1000;
  res.p95_us = snap.p95() / 1000;
  res.p99_us = snap.p99() / 1000;
  return res;
}

// --- Phase 4: overload (B19) ------------------------------------------

struct OverloadResult {
  int target_rate = 0;
  uint64_t sent = 0;
  uint64_t good = 0;       // all three replies OK
  uint64_t shed = 0;       // Begin answered kOverloaded
  uint64_t timed_out = 0;  // a reply carried kTimedOut (deadline)
  uint64_t errored = 0;    // anything else non-OK
  double seconds = 0;
  double goodput = 0;
  /// Send-to-last-reply latency of *good* batches: what a client that
  /// was admitted actually experienced.
  uint64_t admitted_p50_us = 0, admitted_p95_us = 0, admitted_p99_us = 0;
};

/// Offers `rate` Begin+Add+Commit batches per second, all deadlined,
/// against a server running admission control. A shed Begin fails its
/// whole batch cheaply (the Add and Commit resolve no transaction);
/// that is the design — the server spends execution only on admitted
/// work.
OverloadResult RunOverload(uint16_t port, int rate, const Config& cfg) {
  std::vector<std::unique_ptr<Client>> conns;
  std::vector<ObjectId> counters;
  for (int i = 0; i < cfg.open_connections; ++i) {
    auto c = Client::Connect("127.0.0.1", port);
    if (!c.ok()) Die("overload connect", c.status());
    auto oid = MakeCounter(c.value().get());
    if (!oid.ok()) Die("overload counter", oid.status());
    conns.push_back(std::move(c.value()));
    counters.push_back(oid.value());
  }

  struct Pending {
    int conn;  // -1 = sender is done
    uint64_t sent_ns;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Pending> queue;

  LatencyHistogram admitted;
  std::atomic<uint64_t> good{0}, shed{0}, timed_out{0}, errored{0};

  uint64_t t0 = NowNs();
  const uint64_t period = static_cast<uint64_t>(1e9 / rate);
  const uint64_t stop =
      t0 + static_cast<uint64_t>(cfg.overload_seconds * 1e9);
  const uint32_t deadline =
      static_cast<uint32_t>(cfg.overload_deadline_ms);

  std::thread receiver([&] {
    for (;;) {
      Pending p;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return !queue.empty(); });
        p = queue.front();
        queue.pop_front();
      }
      if (p.conn < 0) return;
      asset::StatusCode worst = asset::StatusCode::kOk;
      bool first_shed = false;
      for (int i = 0; i < 3; ++i) {
        auto r = conns[p.conn]->Receive();
        if (!r.ok()) Die("overload receive", r.status());
        asset::StatusCode code = r.value().code;
        if (i == 0 && code == asset::StatusCode::kOverloaded) {
          first_shed = true;
        }
        if (code != asset::StatusCode::kOk && worst == asset::StatusCode::kOk) {
          worst = code;
        }
      }
      if (first_shed) {
        shed.fetch_add(1, std::memory_order_relaxed);
      } else if (worst == asset::StatusCode::kOk) {
        admitted.Record(NowNs() - p.sent_ns);
        good.fetch_add(1, std::memory_order_relaxed);
      } else if (worst == asset::StatusCode::kTimedOut) {
        timed_out.fetch_add(1, std::memory_order_relaxed);
      } else {
        errored.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  uint64_t sent = 0;
  int which = 0;
  for (uint64_t intended = t0; intended < stop; intended += period) {
    uint64_t now = NowNs();
    if (intended > now) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(intended - now));
    }
    Client* cl = conns[which].get();
    cl->Send(asset::api::Command::Begin().WithDeadline(deadline));
    cl->Send(asset::api::Command::Add(counters[which], 1)
                 .WithDeadline(deadline));
    cl->Send(asset::api::Command::Commit().WithDeadline(deadline));
    uint64_t sent_ns = NowNs();
    if (!cl->Flush().ok()) {
      Die("overload flush", asset::Status::IOError("flush failed"));
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      queue.push_back({which, sent_ns});
    }
    cv.notify_one();
    ++sent;
    which = (which + 1) % static_cast<int>(conns.size());
  }
  {
    std::lock_guard<std::mutex> lk(mu);
    queue.push_back({-1, 0});
  }
  cv.notify_one();
  receiver.join();

  OverloadResult res;
  res.target_rate = rate;
  res.sent = sent;
  res.good = good.load();
  res.shed = shed.load();
  res.timed_out = timed_out.load();
  res.errored = errored.load();
  res.seconds = static_cast<double>(NowNs() - t0) / 1e9;
  res.goodput = static_cast<double>(res.good) / res.seconds;
  auto snap = admitted.snapshot();
  res.admitted_p50_us = snap.p50() / 1000;
  res.admitted_p95_us = snap.p95() / 1000;
  res.admitted_p99_us = snap.p99() / 1000;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg = ParseArgs(argc, argv);
  rlim_t fd_limit = RaiseFdLimit();

  // Scale the ramp down if the fd budget cannot carry it: each loopback
  // connection consumes two fds in this process, plus slack for the
  // store, epoll instances, and eventfds.
  rlim_t need = static_cast<rlim_t>(cfg.ramp_connections) * 2 + 256;
  if (fd_limit != 0 && need > fd_limit) {
    cfg.ramp_connections = static_cast<int>((fd_limit - 256) / 2);
    fprintf(stderr, "bench_net: fd limit %llu, ramp scaled to %d conns\n",
            static_cast<unsigned long long>(fd_limit), cfg.ramp_connections);
  }

  auto db = Database::Open();
  if (!db.ok()) Die("database open", db.status());

  Server::Options sopts;
  sopts.workers = 2;
  sopts.max_connections = static_cast<size_t>(cfg.ramp_connections) + 64;
  sopts.max_txns_per_conn =
      static_cast<size_t>(cfg.sessions_per_connection) + 2;
  auto server_or = Server::Start(db.value().get(), sopts);
  if (!server_or.ok()) Die("server start", server_or.status());
  Server& server = *server_or.value();

  printf("{\n");
  printf("  \"fd_limit\": %llu,\n", static_cast<unsigned long long>(fd_limit));

  if (!cfg.skip_ramp) {
    RampResult ramp = RunRamp(db.value().get(), server.port(), cfg);
    printf("  \"session_ramp\": {\n");
    printf("    \"connections\": %d,\n", ramp.connections);
    printf("    \"sessions_per_connection\": %d,\n",
           cfg.sessions_per_connection);
    printf("    \"peak_concurrent_sessions\": %llu,\n",
           static_cast<unsigned long long>(ramp.peak_sessions));
    printf("    \"responsive_at_peak\": %s,\n",
           ramp.responsive_at_peak ? "true" : "false");
    printf("    \"open_all_s\": %.2f,\n", ramp.open_s);
    printf("    \"commit_all_s\": %.2f\n", ramp.close_s);
    printf("  },\n");
    fflush(stdout);
  }

  // With --trace=<file>, the closed loop runs wire-traced: the kernel
  // recorder is enabled and every client stamps trace context, so the
  // dump shows client round trips over server stage spans over kernel
  // lock/WAL events on one timeline.
  asset::FlightRecorder* rec = nullptr;
  if (!cfg.trace_file.empty()) {
    db.value()->set_trace_enabled(true);
    rec = &db.value()->trace_recorder();
  }
  LoopResult closed = RunClosedLoop(server.port(), cfg, rec);
  if (rec != nullptr) {
    db.value()->set_trace_enabled(false);
    std::string json = db.value()->DumpTrace();
    FILE* f = fopen(cfg.trace_file.c_str(), "w");
    if (f == nullptr) {
      Die("trace file open", asset::Status::IOError(cfg.trace_file));
    }
    fwrite(json.data(), 1, json.size(), f);
    fclose(f);
    printf("  \"trace\": { \"file\": \"%s\", \"events\": %llu },\n",
           cfg.trace_file.c_str(),
           static_cast<unsigned long long>(rec->Drain().size()));
  }
  printf("  \"closed_loop\": {\n");
  printf("    \"threads\": %d,\n", cfg.closed_threads);
  printf("    \"connections\": %d,\n",
         cfg.closed_threads * cfg.closed_connections_per_thread);
  printf("    \"txns\": %llu,\n", static_cast<unsigned long long>(closed.txns));
  printf("    \"seconds\": %.2f,\n", closed.seconds);
  printf("    \"throughput_txn_s\": %.0f,\n", closed.throughput);
  printf("    \"latency_us\": { \"mean\": %.0f, \"p50\": %llu, "
         "\"p95\": %llu, \"p99\": %llu }\n",
         closed.mean_us, static_cast<unsigned long long>(closed.p50_us),
         static_cast<unsigned long long>(closed.p95_us),
         static_cast<unsigned long long>(closed.p99_us));
  printf("  },\n");
  fflush(stdout);

  printf("  \"open_loop\": [\n");
  for (size_t i = 0; i < cfg.open_rates.size(); ++i) {
    OpenResult r = RunOpenLoop(server.port(), cfg.open_rates[i], cfg);
    printf("    { \"target_rate\": %d, \"sent\": %llu, \"completed\": %llu, "
           "\"throughput_txn_s\": %.0f, "
           "\"latency_from_intended_us\": { \"p50\": %llu, \"p95\": %llu, "
           "\"p99\": %llu } }%s\n",
           r.target_rate, static_cast<unsigned long long>(r.sent),
           static_cast<unsigned long long>(r.completed), r.throughput,
           static_cast<unsigned long long>(r.p50_us),
           static_cast<unsigned long long>(r.p95_us),
           static_cast<unsigned long long>(r.p99_us),
           i + 1 < cfg.open_rates.size() ? "," : "");
    fflush(stdout);
  }
  printf("  ]%s\n", cfg.skip_overload ? "" : ",");
  fflush(stdout);

  if (!cfg.skip_overload) {
    // A fresh server with the admission controller armed: shed Begins
    // once dispatch lag passes 20 ms or 256 transactions sit open.
    auto db2 = Database::Open();
    if (!db2.ok()) Die("overload database open", db2.status());
    Server::Options oopts;
    oopts.workers = 2;
    oopts.admission_max_lag = std::chrono::milliseconds(20);
    oopts.admission_max_open_txns = 256;
    auto over_server = Server::Start(db2.value().get(), oopts);
    if (!over_server.ok()) Die("overload server start", over_server.status());

    int rate = static_cast<int>(closed.throughput * cfg.overload_factor);
    if (rate < 100) rate = 100;
    OverloadResult r =
        RunOverload(over_server.value()->port(), rate, cfg);
    const auto& st = over_server.value()->stats();
    printf("  \"overload\": {\n");
    printf("    \"closed_loop_peak_txn_s\": %.0f,\n", closed.throughput);
    printf("    \"overload_factor\": %.1f,\n", cfg.overload_factor);
    printf("    \"target_rate\": %d,\n", r.target_rate);
    printf("    \"deadline_ms\": %d,\n", cfg.overload_deadline_ms);
    printf("    \"sent\": %llu,\n", static_cast<unsigned long long>(r.sent));
    printf("    \"good\": %llu,\n", static_cast<unsigned long long>(r.good));
    printf("    \"shed\": %llu,\n", static_cast<unsigned long long>(r.shed));
    printf("    \"timed_out\": %llu,\n",
           static_cast<unsigned long long>(r.timed_out));
    printf("    \"errored\": %llu,\n",
           static_cast<unsigned long long>(r.errored));
    printf("    \"goodput_txn_s\": %.0f,\n", r.goodput);
    printf("    \"goodput_fraction_of_peak\": %.2f,\n",
           closed.throughput > 0 ? r.goodput / closed.throughput : 0.0);
    printf("    \"admitted_latency_us\": { \"p50\": %llu, \"p95\": %llu, "
           "\"p99\": %llu },\n",
           static_cast<unsigned long long>(r.admitted_p50_us),
           static_cast<unsigned long long>(r.admitted_p95_us),
           static_cast<unsigned long long>(r.admitted_p99_us));
    printf("    \"server\": { \"admission_shed_total\": %llu, "
           "\"deadline_expired_total\": %llu, "
           "\"deadline_timeout_aborts_total\": %llu }\n",
           static_cast<unsigned long long>(
               st.admission_shed.load(std::memory_order_relaxed)),
           static_cast<unsigned long long>(
               st.deadline_expired.load(std::memory_order_relaxed)),
           static_cast<unsigned long long>(
               st.deadline_timeout_aborts.load(std::memory_order_relaxed)));
    printf("  }\n");
    over_server.value()->Shutdown();
  }
  printf("}\n");

  server.Shutdown();
  return 0;
}
