// B5 — Dependency-graph commit cost (DESIGN.md §4B).
//
// Question: what do CD chains and GC groups cost at commit time
// compared with independent commits of the same transaction count?

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace asset::bench {
namespace {

// Baseline: N independent transactions committed one by one.
void BM_IndependentCommits(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BenchKernel kernel;
  for (auto _ : state) {
    std::vector<Tid> tids;
    for (int i = 0; i < n; ++i) {
      Tid t = kernel.tm().InitiateFn([] {});
      kernel.tm().Begin(t);
      tids.push_back(t);
    }
    for (Tid t : tids) kernel.tm().Commit(t);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IndependentCommits)
    ->ArgName("txns")
    ->Arg(2)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

// CD chain t1 <- t2 <- ... <- tN committed from the head: each commit
// finds its dependee already terminated, so this measures the
// dependency-evaluation overhead itself.
void BM_CdChainCommit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BenchKernel kernel;
  for (auto _ : state) {
    std::vector<Tid> tids;
    for (int i = 0; i < n; ++i) {
      Tid t = kernel.tm().InitiateFn([] {});
      kernel.tm().Begin(t);
      tids.push_back(t);
    }
    for (int i = 0; i + 1 < n; ++i) {
      kernel.tm()
          .FormDependency(DependencyType::kCommit, tids[i], tids[i + 1])
          .ok();
    }
    for (Tid t : tids) kernel.tm().Commit(t);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CdChainCommit)
    ->ArgName("depth")
    ->Arg(2)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

// GC group of size N committed through one commit() call — the paper's
// simultaneous group commit.
void BM_GcGroupCommit(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BenchKernel kernel;
  for (auto _ : state) {
    std::vector<Tid> tids;
    for (int i = 0; i < n; ++i) {
      Tid t = kernel.tm().InitiateFn([] {});
      kernel.tm().Begin(t);
      tids.push_back(t);
    }
    for (int i = 0; i + 1 < n; ++i) {
      kernel.tm()
          .FormDependency(DependencyType::kGroupCommit, tids[i],
                          tids[i + 1])
          .ok();
    }
    kernel.tm().Commit(tids[0]);  // commits the whole group
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GcGroupCommit)
    ->ArgName("group")
    ->Arg(2)
    ->Arg(8)
    ->Arg(16)
    ->Arg(64);

// Abort propagation down an AD chain of depth N: one abort at the head
// cascades to everyone.
void BM_AdChainAbort(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BenchKernel kernel;
  for (auto _ : state) {
    std::vector<Tid> tids;
    for (int i = 0; i < n; ++i) {
      Tid t = kernel.tm().InitiateFn([] {});
      kernel.tm().Begin(t);
      kernel.tm().Wait(t);
      tids.push_back(t);
    }
    for (int i = 0; i + 1 < n; ++i) {
      kernel.tm()
          .FormDependency(DependencyType::kAbort, tids[i], tids[i + 1])
          .ok();
    }
    kernel.tm().Abort(tids[0]);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdChainAbort)->ArgName("depth")->Arg(2)->Arg(16)->Arg(64);

// form_dependency itself, including the cycle check, against a standing
// chain of the given depth.
void BM_FormDependencyWithCycleCheck(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  BenchKernel kernel;
  std::vector<Tid> tids;
  for (int i = 0; i < depth + 2; ++i) {
    Tid t = kernel.tm().InitiateFn([] {});
    kernel.tm().Begin(t);
    tids.push_back(t);
  }
  for (int i = 0; i + 3 < static_cast<int>(tids.size()); ++i) {
    kernel.tm()
        .FormDependency(DependencyType::kCommit, tids[i], tids[i + 1])
        .ok();
  }
  Tid a = tids[tids.size() - 2], b = tids[tids.size() - 1];
  bool flip = false;
  for (auto _ : state) {
    // Alternate an add/no-op pair so the edge set stays bounded: the
    // duplicate insert still runs the scan + cycle check.
    kernel.tm()
        .FormDependency(DependencyType::kCommit, flip ? a : b, flip ? b : a)
        .ok();
    flip = !flip;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FormDependencyWithCycleCheck)
    ->ArgName("graph_depth")
    ->Arg(2)
    ->Arg(64)
    ->Arg(256);

}  // namespace
}  // namespace asset::bench
