// B3 — Transitive permit closure (DESIGN.md §4B).
//
// Question: what does eager materialization of §2.2 rule 3 cost as the
// permit chain grows, and what does the resulting lookup cost compared
// with a direct permit? Baseline: the direct (chain length 1) case.

#include <benchmark/benchmark.h>

#include "common/object_set.h"
#include "core/permit_table.h"

namespace asset {
namespace {

// Insert a chain t1->t2->...->tN on one object; the last insert's
// closure work grows with N.
void BM_ClosureChainInsert(benchmark::State& state) {
  const Tid chain = static_cast<Tid>(state.range(0));
  for (auto _ : state) {
    PermitTable pt;
    for (Tid t = 1; t <= chain; ++t) {
      pt.Insert(t, t + 1, ObjectSet{1}, OpSet::All()).ok();
    }
    benchmark::DoNotOptimize(pt.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ClosureChainInsert)
    ->ArgName("chain")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);

// Lookup after the closure is built: the check is a direct-index scan
// regardless of the original chain length — the payoff of eagerness.
void BM_ClosureLookup(benchmark::State& state) {
  const Tid chain = static_cast<Tid>(state.range(0));
  PermitTable pt;
  for (Tid t = 1; t <= chain; ++t) {
    pt.Insert(t, t + 1, ObjectSet{1}, OpSet::All()).ok();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.Permits(1, chain + 1, 1, Operation::kWrite));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClosureLookup)->ArgName("chain")->Arg(1)->Arg(16)->Arg(64);

// Wide object sets: intersections dominate.
void BM_ClosureWideObjectSets(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  std::vector<ObjectId> a_ids, b_ids;
  for (size_t i = 0; i < width; ++i) {
    a_ids.push_back(i + 1);
    b_ids.push_back(i + width / 2 + 1);  // half-overlapping
  }
  ObjectSet a(a_ids), b(b_ids);
  for (auto _ : state) {
    PermitTable pt;
    pt.Insert(1, 2, a, OpSet::All()).ok();
    pt.Insert(2, 3, b, OpSet::All()).ok();
    benchmark::DoNotOptimize(pt.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClosureWideObjectSets)
    ->ArgName("obset")
    ->Arg(8)
    ->Arg(128)
    ->Arg(2048);

// Ablation: the design alternative to eager materialization is checking
// transitivity on demand — a DFS over *direct* permits at every lock
// conflict. This models that lookup cost for the same chain the eager
// table answers in ~constant time (BM_ClosureLookup).
struct DirectPermit {
  Tid grantor;
  Tid grantee;
};

bool LazyPermits(const std::vector<DirectPermit>& direct, Tid from, Tid to,
                 std::vector<bool>& used) {
  for (size_t i = 0; i < direct.size(); ++i) {
    if (used[i] || direct[i].grantor != from) continue;
    if (direct[i].grantee == to) return true;
    used[i] = true;
    if (LazyPermits(direct, direct[i].grantee, to, used)) return true;
    used[i] = false;
  }
  return false;
}

void BM_LazyClosureLookup(benchmark::State& state) {
  const Tid chain = static_cast<Tid>(state.range(0));
  std::vector<DirectPermit> direct;
  for (Tid t = 1; t <= chain; ++t) direct.push_back({t, t + 1});
  std::vector<bool> used(direct.size(), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LazyPermits(direct, 1, chain + 1, used));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LazyClosureLookup)->ArgName("chain")->Arg(1)->Arg(16)->Arg(64);

// Many independent grantors permitting one grantee on one object: the
// grantee-side index must keep lookups flat.
void BM_ManyGrantorsLookup(benchmark::State& state) {
  const Tid grantors = static_cast<Tid>(state.range(0));
  PermitTable pt;
  for (Tid g = 2; g < grantors + 2; ++g) {
    pt.Insert(g, 1, ObjectSet{1}, OpSet::All()).ok();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.Permits(2, 1, 1, Operation::kRead));
  }
}
BENCHMARK(BM_ManyGrantorsLookup)
    ->ArgName("grantors")
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024);

}  // namespace
}  // namespace asset
