// B10 — Latch protocol (DESIGN.md §4B): the paper's test-and-set latch
// with S-counter and X-bit vs std::shared_mutex, under read-heavy and
// write-heavy contention.

#include <benchmark/benchmark.h>

#include <shared_mutex>

#include "common/latch.h"
#include "common/random.h"

namespace asset {
namespace {

SpinLatch g_latch;
std::shared_mutex g_shared_mutex;
int64_t g_value = 0;

void BM_SpinLatchShared(benchmark::State& state) {
  for (auto _ : state) {
    g_latch.LockShared();
    benchmark::DoNotOptimize(g_value);
    g_latch.UnlockShared();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpinLatchShared)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

void BM_SharedMutexShared(benchmark::State& state) {
  for (auto _ : state) {
    g_shared_mutex.lock_shared();
    benchmark::DoNotOptimize(g_value);
    g_shared_mutex.unlock_shared();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedMutexShared)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_SpinLatchExclusive(benchmark::State& state) {
  for (auto _ : state) {
    g_latch.LockExclusive();
    g_value++;
    g_latch.UnlockExclusive();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpinLatchExclusive)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

void BM_SharedMutexExclusive(benchmark::State& state) {
  for (auto _ : state) {
    g_shared_mutex.lock();
    g_value++;
    g_shared_mutex.unlock();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedMutexExclusive)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Mixed workload: range(0)% writers. Writer preference (the X-bit)
// keeps writer latency bounded as readers flood.
void BM_SpinLatchMixed(benchmark::State& state) {
  Random rng(17 * (state.thread_index() + 1));
  const uint64_t write_pct = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    if (rng.Uniform(100) < write_pct) {
      g_latch.LockExclusive();
      g_value++;
      g_latch.UnlockExclusive();
    } else {
      g_latch.LockShared();
      benchmark::DoNotOptimize(g_value);
      g_latch.UnlockShared();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpinLatchMixed)
    ->ArgName("write_pct")
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Threads(8)
    ->UseRealTime();

void BM_SharedMutexMixed(benchmark::State& state) {
  Random rng(17 * (state.thread_index() + 1));
  const uint64_t write_pct = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    if (rng.Uniform(100) < write_pct) {
      g_shared_mutex.lock();
      g_value++;
      g_shared_mutex.unlock();
    } else {
      g_shared_mutex.lock_shared();
      benchmark::DoNotOptimize(g_value);
      g_shared_mutex.unlock_shared();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedMutexMixed)
    ->ArgName("write_pct")
    ->Arg(1)
    ->Arg(10)
    ->Arg(50)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace asset
