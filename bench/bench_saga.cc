// B7 — Saga vs one long transaction under contention (DESIGN.md §4B).
//
// The saga motivation (§3.1.6): a long-lived activity that holds locks
// across all of its steps starves everyone else; breaking it into
// independently-committing components releases hot locks early.
//
// Workload: each activity touches one HOT object (shared by everyone)
// and `steps` private objects, with think-time per step. We measure
// activity makespan with `workers` concurrent activities, monolithic
// vs saga. The saga should win increasingly with contention; the
// abort-rate sweep shows the compensation cost it pays for that.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench_util.h"
#include "common/random.h"
#include "models/atomic.h"
#include "models/saga.h"

namespace asset::bench {
namespace {

constexpr int kSteps = 4;
constexpr auto kThinkTime = std::chrono::microseconds(100);

// The activity shape behind the saga motivation: the FIRST step touches
// a hot shared object briefly; the remaining steps are private think
// time. A monolithic transaction keeps the hot lock until its final
// commit, serializing every concurrent activity; a saga releases it
// when step 1 commits.
void StepWork(BenchKernel& kernel, ObjectId hot, ObjectId priv, int step) {
  Tid self = TransactionManager::Self();
  auto payload = Payload(64);
  if (step == 0) {
    kernel.tm().Write(self, hot, payload).ok();
  }
  kernel.tm().Write(self, priv, payload).ok();
  std::this_thread::sleep_for(kThinkTime);
}

// Monolithic: one transaction does all steps, holding the hot lock for
// the whole activity.
void BM_MonolithicActivity(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  BenchKernel kernel;
  ObjectId hot = kernel.MakeObjects(1)[0];
  auto privs = kernel.MakeObjects(static_cast<size_t>(workers) * kSteps);
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        models::RunAtomicWithRetry(
            kernel.tm(),
            [&] {
              for (int s = 0; s < kSteps; ++s) {
                StepWork(kernel, hot, privs[w * kSteps + s], s);
              }
            },
            10);
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * workers);
}
BENCHMARK(BM_MonolithicActivity)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Saga: each step is its own component transaction; the hot lock is
// released at every step commit.
void BM_SagaActivity(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  BenchKernel kernel;
  ObjectId hot = kernel.MakeObjects(1)[0];
  auto privs = kernel.MakeObjects(static_cast<size_t>(workers) * kSteps);
  for (auto _ : state) {
    std::vector<std::thread> threads;
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        models::Saga saga;
        for (int s = 0; s < kSteps; ++s) {
          saga.AddStep(
              [&, w, s] { StepWork(kernel, hot, privs[w * kSteps + s], s); },
              [&, w, s] {
                kernel.tm()
                    .Write(TransactionManager::Self(), privs[w * kSteps + s],
                           Payload(64, 0))
                    .ok();
              });
        }
        saga.Run(kernel.tm());
      });
    }
    for (auto& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * workers);
}
BENCHMARK(BM_SagaActivity)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Compensation cost: sagas whose last step aborts with the given
// percentage, forcing the ct_k..ct_1 unwind.
void BM_SagaWithAborts(benchmark::State& state) {
  const int abort_pct = static_cast<int>(state.range(0));
  BenchKernel kernel;
  ObjectId hot = kernel.MakeObjects(1)[0];
  auto privs = kernel.MakeObjects(kSteps);
  Random rng(99);
  uint64_t compensations = 0;
  for (auto _ : state) {
    bool fail = rng.Uniform(100) < static_cast<uint64_t>(abort_pct);
    models::Saga saga;
    for (int s = 0; s < kSteps - 1; ++s) {
      saga.AddStep([&, s] { StepWork(kernel, hot, privs[s], s); },
                   [&, s] {
                     kernel.tm()
                         .Write(TransactionManager::Self(), privs[s],
                                Payload(64, 0))
                         .ok();
                   });
    }
    saga.AddStep([&, fail] {
      if (fail) {
        kernel.tm().Abort(TransactionManager::Self());
        return;
      }
      StepWork(kernel, hot, privs[kSteps - 1], kSteps - 1);
    });
    auto out = saga.Run(kernel.tm());
    compensations += out.compensations_run;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["compensations"] = static_cast<double>(compensations);
}
BENCHMARK(BM_SagaWithAborts)
    ->ArgName("abort_pct")
    ->Arg(0)
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace asset::bench
