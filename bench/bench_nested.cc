// B8 — Nested-transaction overhead (DESIGN.md §4B).
//
// Question: what does the per-subtransaction protocol of §3.1.4
// (initiate + permit(self, child) + begin + wait + delegate + commit)
// cost against a flat transaction doing the same writes, across
// fan-out and depth?

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "models/atomic.h"
#include "models/nested.h"

namespace asset::bench {
namespace {

// Flat baseline: one transaction writes `fanout` objects.
void BM_FlatTransaction(benchmark::State& state) {
  const size_t fanout = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(fanout);
  auto payload = Payload(64);
  for (auto _ : state) {
    kernel.RunTxn([&] {
      Tid self = TransactionManager::Self();
      for (ObjectId oid : oids) kernel.tm().Write(self, oid, payload).ok();
    });
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_FlatTransaction)
    ->ArgName("fanout")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);

// Nested: the same writes, each inside its own subtransaction.
void BM_NestedFanout(benchmark::State& state) {
  const size_t fanout = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(fanout);
  auto payload = Payload(64);
  for (auto _ : state) {
    models::RunNestedRoot(kernel.tm(), [&] {
      for (ObjectId oid : oids) {
        models::RunSubtransaction(kernel.tm(), [&, oid] {
          kernel.tm()
              .Write(TransactionManager::Self(), oid, payload)
              .ok();
        }).ok();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_NestedFanout)
    ->ArgName("fanout")
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);

// Depth: a chain of nested subtransactions, one write per level.
void BM_NestedDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(static_cast<size_t>(depth));
  auto payload = Payload(64);
  std::function<void(int)> descend = [&](int level) {
    kernel.tm()
        .Write(TransactionManager::Self(), oids[level], payload)
        .ok();
    if (level + 1 < depth) {
      models::RunSubtransaction(kernel.tm(),
                                [&, level] { descend(level + 1); })
          .ok();
    }
  };
  for (auto _ : state) {
    models::RunNestedRoot(kernel.tm(), [&] { descend(0); });
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_NestedDepth)->ArgName("depth")->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Subtransaction abort containment: half the children abort; the
// parent carries on (kReportOnly). Measures the undo + containment
// path.
void BM_NestedWithChildAborts(benchmark::State& state) {
  const size_t fanout = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(fanout);
  auto payload = Payload(64);
  for (auto _ : state) {
    models::RunNestedRoot(kernel.tm(), [&] {
      for (size_t i = 0; i < fanout; ++i) {
        models::RunSubtransaction(kernel.tm(), [&, i] {
          Tid self = TransactionManager::Self();
          kernel.tm().Write(self, oids[i], payload).ok();
          if (i % 2 == 1) kernel.tm().Abort(self);
        }).ok();
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * fanout);
}
BENCHMARK(BM_NestedWithChildAborts)
    ->ArgName("fanout")
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);

}  // namespace
}  // namespace asset::bench
