// B1 — Lock-manager throughput (DESIGN.md §4B).
//
// Question: what does the permit-aware lock manager cost on the plain
// (no permits, no dependencies) path, across thread counts, object-pool
// sizes, and read/write mixes? Baseline: the same data path with no
// transaction kernel at all (raw object-store access).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"

namespace asset::bench {
namespace {

constexpr size_t kOpsPerTxn = 8;

// One iteration = one transaction performing kOpsPerTxn reads/writes on
// a pool of state.range(0) objects with state.range(1)% writes.
void BM_TxnOps(benchmark::State& state) {
  static BenchKernel* kernel = nullptr;
  static std::vector<ObjectId>* oids = nullptr;
  if (state.thread_index() == 0) {
    kernel = new BenchKernel();
    oids = new std::vector<ObjectId>(
        kernel->MakeObjects(static_cast<size_t>(state.range(0))));
  }
  Random rng(7 * (state.thread_index() + 1));
  const int write_pct = static_cast<int>(state.range(1));
  auto payload = Payload(64);
  for (auto _ : state) {
    bool ok = kernel->RunTxn([&] {
      Tid self = TransactionManager::Self();
      // Sorted object picks avoid deadlocks so the benchmark measures
      // the lock path, not abort storms.
      std::vector<ObjectId> picks;
      for (size_t i = 0; i < kOpsPerTxn; ++i) {
        picks.push_back((*oids)[rng.Uniform(oids->size())]);
      }
      std::sort(picks.begin(), picks.end());
      picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
      for (ObjectId oid : picks) {
        if (rng.Uniform(100) < static_cast<uint64_t>(write_pct)) {
          kernel->tm().Write(self, oid, payload).ok();
        } else {
          kernel->tm().Read(self, oid).ok();
        }
      }
    });
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerTxn);
  if (state.thread_index() == 0) {
    state.counters["lock_waits"] = static_cast<double>(
        kernel->tm().stats().lock_waits.load());
    delete oids;
    delete kernel;
  }
}
BENCHMARK(BM_TxnOps)
    ->ArgNames({"objects", "write_pct"})
    ->Args({16, 50})
    ->Args({256, 50})
    ->Args({4096, 50})
    ->Args({256, 0})
    ->Args({256, 100})
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Baseline: identical data path without the transaction kernel.
void BM_RawStoreOps(benchmark::State& state) {
  static BenchKernel* kernel = nullptr;
  static std::vector<ObjectId>* oids = nullptr;
  if (state.thread_index() == 0) {
    kernel = new BenchKernel();
    oids = new std::vector<ObjectId>(
        kernel->MakeObjects(static_cast<size_t>(state.range(0))));
  }
  Random rng(7 * (state.thread_index() + 1));
  const int write_pct = static_cast<int>(state.range(1));
  auto payload = Payload(64);
  for (auto _ : state) {
    for (size_t i = 0; i < kOpsPerTxn; ++i) {
      ObjectId oid = (*oids)[rng.Uniform(oids->size())];
      if (rng.Uniform(100) < static_cast<uint64_t>(write_pct)) {
        kernel->store().Write(oid, payload).ok();
      } else {
        benchmark::DoNotOptimize(kernel->store().Read(oid));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerTxn);
  if (state.thread_index() == 0) {
    delete oids;
    delete kernel;
  }
}
BENCHMARK(BM_RawStoreOps)
    ->ArgNames({"objects", "write_pct"})
    ->Args({256, 50})
    ->Threads(1)
    ->Threads(4)
    ->UseRealTime();

// Pure lock-grant cost: a transaction acquiring N read locks on
// distinct cold objects, then committing (release).
void BM_LockAcquireRelease(benchmark::State& state) {
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    kernel.RunTxn([&] {
      Tid self = TransactionManager::Self();
      for (ObjectId oid : oids) kernel.tm().Read(self, oid).ok();
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LockAcquireRelease)->ArgName("locks")->Arg(1)->Arg(16)->Arg(256);

}  // namespace
}  // namespace asset::bench
