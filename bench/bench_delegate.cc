// B4 — Delegation cost (DESIGN.md §4B).
//
// Question: what does delegate(ti, tj, ob_set) cost as the number of
// moved locks/operations grows, for concrete sets vs the delegate-all
// wildcard? Baseline: committing and re-acquiring in a fresh
// transaction (what you would do without delegation).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace asset::bench {
namespace {

// Ping-pong delegate-all of N write locks (with their undo
// responsibility) between two transactions; each iteration is one
// delegation of N locks.
void BM_DelegateAll(benchmark::State& state) {
  const size_t locks = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(locks);
  auto payload = Payload(64);
  Tid holder = kernel.tm().InitiateFn([&] {
    Tid self = TransactionManager::Self();
    for (ObjectId oid : oids) kernel.tm().Write(self, oid, payload).ok();
  });
  kernel.tm().Begin(holder);
  kernel.tm().Wait(holder);
  Tid other = kernel.tm().InitiateFn([] {});
  Tid current = holder, next = other;
  for (auto _ : state) {
    kernel.tm().Delegate(current, next).ok();
    std::swap(current, next);
  }
  state.SetItemsProcessed(state.iterations() * locks);
  kernel.tm().Abort(holder);
  kernel.tm().Abort(other);
}
BENCHMARK(BM_DelegateAll)
    ->ArgName("locks")
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096);

// Concrete-set delegation: only half of the held objects move.
void BM_DelegateSubset(benchmark::State& state) {
  const size_t locks = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(locks);
  auto payload = Payload(64);
  Tid holder = kernel.tm().InitiateFn([&] {
    Tid self = TransactionManager::Self();
    for (ObjectId oid : oids) kernel.tm().Write(self, oid, payload).ok();
  });
  kernel.tm().Begin(holder);
  kernel.tm().Wait(holder);
  std::vector<ObjectId> half(oids.begin(), oids.begin() + oids.size() / 2);
  ObjectSet subset(half);
  Tid other = kernel.tm().InitiateFn([] {});
  Tid current = holder, next = other;
  for (auto _ : state) {
    kernel.tm().Delegate(current, next, subset).ok();
    std::swap(current, next);
  }
  state.SetItemsProcessed(state.iterations() * half.size());
  kernel.tm().Abort(holder);
  kernel.tm().Abort(other);
}
BENCHMARK(BM_DelegateSubset)->ArgName("locks")->Arg(16)->Arg(256)->Arg(4096);

// Baseline: achieving a hand-off without delegation — the first
// transaction commits (publishing its intermediate state!) and the
// second re-acquires every lock. Semantically weaker AND slower for
// large lock sets.
void BM_CommitAndReacquireBaseline(benchmark::State& state) {
  const size_t locks = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(locks);
  auto payload = Payload(64);
  for (auto _ : state) {
    kernel.RunTxn([&] {
      Tid self = TransactionManager::Self();
      for (ObjectId oid : oids) kernel.tm().Write(self, oid, payload).ok();
    });
    kernel.RunTxn([&] {
      Tid self = TransactionManager::Self();
      for (ObjectId oid : oids) kernel.tm().Write(self, oid, payload).ok();
    });
  }
  state.SetItemsProcessed(state.iterations() * locks);
}
BENCHMARK(BM_CommitAndReacquireBaseline)
    ->ArgName("locks")
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096);

// Split-transaction shape (§3.1.5): delegate at split point, both
// halves commit independently.
void BM_SplitShape(benchmark::State& state) {
  const size_t locks = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(locks);
  auto payload = Payload(64);
  std::vector<ObjectId> half(oids.begin(), oids.begin() + oids.size() / 2);
  ObjectSet subset(half);
  for (auto _ : state) {
    Tid split_tid = kNullTid;
    kernel.RunTxn([&] {
      Tid self = TransactionManager::Self();
      for (ObjectId oid : oids) kernel.tm().Write(self, oid, payload).ok();
      Tid s = kernel.tm().InitiateFn([] {});
      kernel.tm().Delegate(self, s, subset).ok();
      kernel.tm().Begin(s);
      split_tid = s;
    });
    kernel.tm().Commit(split_tid);
  }
  state.SetItemsProcessed(state.iterations() * locks);
}
BENCHMARK(BM_SplitShape)->ArgName("locks")->Arg(16)->Arg(256);

}  // namespace
}  // namespace asset::bench
