// B12 — Abort cost (DESIGN.md §4B): before-image installation scales
// with the number of updates the transaction is responsible for —
// including updates it received by delegation. Baseline: commit of the
// same transaction (no undo work).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace asset::bench {
namespace {

// One iteration: a transaction writes `updates` objects, then commits.
void BM_CommitAfterWrites(benchmark::State& state) {
  const size_t updates = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(updates);
  auto payload = Payload(64);
  for (auto _ : state) {
    kernel.RunTxn([&] {
      Tid self = TransactionManager::Self();
      for (ObjectId oid : oids) kernel.tm().Write(self, oid, payload).ok();
    });
  }
  state.SetItemsProcessed(state.iterations() * updates);
}
BENCHMARK(BM_CommitAfterWrites)
    ->ArgName("updates")
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096);

// One iteration: same writes, then abort (undo install + CLRs).
void BM_AbortAfterWrites(benchmark::State& state) {
  const size_t updates = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(updates);
  auto payload = Payload(64);
  for (auto _ : state) {
    Tid t = kernel.tm().InitiateFn([&] {
      Tid self = TransactionManager::Self();
      for (ObjectId oid : oids) kernel.tm().Write(self, oid, payload).ok();
    });
    kernel.tm().Begin(t);
    kernel.tm().Wait(t);
    kernel.tm().Abort(t);
  }
  state.SetItemsProcessed(state.iterations() * updates);
}
BENCHMARK(BM_AbortAfterWrites)
    ->ArgName("updates")
    ->Arg(1)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096);

// Abort after receiving the work by delegation: the delegatee pays the
// undo bill for operations it never performed.
void BM_AbortDelegatedWrites(benchmark::State& state) {
  const size_t updates = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(updates);
  auto payload = Payload(64);
  for (auto _ : state) {
    Tid worker = kernel.tm().InitiateFn([&] {
      Tid self = TransactionManager::Self();
      for (ObjectId oid : oids) kernel.tm().Write(self, oid, payload).ok();
    });
    kernel.tm().Begin(worker);
    kernel.tm().Wait(worker);
    Tid owner = kernel.tm().InitiateFn([] {});
    kernel.tm().Delegate(worker, owner).ok();
    kernel.tm().Commit(worker);  // nothing left to commit
    kernel.tm().Abort(owner);    // undoes all delegated updates
  }
  state.SetItemsProcessed(state.iterations() * updates);
}
BENCHMARK(BM_AbortDelegatedWrites)
    ->ArgName("updates")
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096);

// Abort cost vs object size (before-image bytes dominate at some
// point).
void BM_AbortByImageSize(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(32, bytes);
  auto payload = Payload(bytes, 0xEF);
  for (auto _ : state) {
    Tid t = kernel.tm().InitiateFn([&] {
      Tid self = TransactionManager::Self();
      for (ObjectId oid : oids) kernel.tm().Write(self, oid, payload).ok();
    });
    kernel.tm().Begin(t);
    kernel.tm().Wait(t);
    kernel.tm().Abort(t);
  }
  state.SetBytesProcessed(state.iterations() * 32 * bytes);
}
BENCHMARK(BM_AbortByImageSize)
    ->ArgName("object_bytes")
    ->Arg(16)
    ->Arg(512)
    ->Arg(4096);

}  // namespace
}  // namespace asset::bench
