// B15 — Group-commit WAL pipeline (DESIGN.md §4B).
//
// Question: with a real file behind the log and force-log-at-commit on,
// what commit throughput do N concurrent committers get, and how many
// fsyncs does each commit cost? Baseline: FlushMode::kSynchronous — the
// pre-pipeline behaviour of one inline pwrite+fsync per commit group,
// performed under the log mutex. The grouped mode hands the write to
// the flusher thread, which batches every pending committer onto one
// fsync; the relaxed variant additionally acks commits without waiting
// for durability at all.

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/random.h"

namespace asset::bench {
namespace {

// Mode axis for the benchmark (state.range(0)).
constexpr int kSyncStrict = 0;     // kSynchronous + strict (baseline)
constexpr int kGroupedStrict = 1;  // flusher thread, commit waits durable
constexpr int kGroupedRelaxed = 2; // flusher thread, commit acks early

/// A file-backed variant of BenchKernel: pages stay in memory (we are
/// measuring the log path, not page I/O), but the WAL is attached to a
/// real temporary file so Append/Flush perform actual pwrite+fsync.
class WalBenchKernel {
 public:
  explicit WalBenchKernel(int mode)
      : log_(mode == kSyncStrict ? LogManager::FlushMode::kSynchronous
                                 : LogManager::FlushMode::kGrouped),
        pool_(&disk_, 4096, &log_),
        store_(&pool_) {
    static std::atomic<uint64_t> counter{0};
    path_ = "/tmp/asset_bench_wal_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)) + ".wal";
    ::remove(path_.c_str());
    log_.AttachFile(path_).ok();
    store_.Open().ok();
    TransactionManager::Options o;
    o.force_log_at_commit = true;
    o.durability = mode == kGroupedRelaxed ? DurabilityPolicy::kRelaxed
                                           : DurabilityPolicy::kStrict;
    o.lock.lock_timeout = std::chrono::milliseconds(30000);
    o.commit_timeout = std::chrono::milliseconds(60000);
    o.max_transactions = 1 << 20;
    tm_ = std::make_unique<TransactionManager>(&log_, &store_, o);
  }

  ~WalBenchKernel() {
    tm_.reset();
    ::remove(path_.c_str());
  }

  TransactionManager& tm() { return *tm_; }

  std::vector<ObjectId> MakeObjects(size_t n, size_t size = 64) {
    std::vector<ObjectId> oids;
    oids.reserve(n);
    auto data = Payload(size);
    for (size_t i = 0; i < n; ++i) {
      oids.push_back(store_.Create(data).value());
    }
    return oids;
  }

  bool RunTxn(std::function<void()> fn) {
    Tid t = tm_->InitiateFn(std::move(fn));
    if (t == kNullTid || !tm_->Begin(t)) return false;
    return tm_->Commit(t);
  }

 private:
  std::string path_;
  InMemoryDiskManager disk_;
  LogManager log_;
  BufferPool pool_;
  ObjectStore store_;
  std::unique_ptr<TransactionManager> tm_;
};

// One iteration = one transaction writing a single private object and
// committing, which forces its commit record to the file. Each thread
// owns a disjoint slice of the object pool, so the benchmark measures
// the durability path, not lock contention.
void BM_Commit(benchmark::State& state) {
  static WalBenchKernel* kernel = nullptr;
  static std::vector<ObjectId>* oids = nullptr;
  if (state.thread_index() == 0) {
    kernel = new WalBenchKernel(static_cast<int>(state.range(0)));
    oids = new std::vector<ObjectId>(kernel->MakeObjects(256));
  }
  Random rng(31 * (state.thread_index() + 1));
  auto payload = Payload(64);
  for (auto _ : state) {
    // The statics are touched only past the start barrier (and in
    // thread 0's setup above) — same discipline as the other benches.
    const size_t slice = oids->size() / static_cast<size_t>(state.threads());
    const size_t base = slice * static_cast<size_t>(state.thread_index());
    bool ok = kernel->RunTxn([&] {
      Tid self = TransactionManager::Self();
      ObjectId oid = (*oids)[base + rng.Uniform(slice)];
      kernel->tm().Write(self, oid, payload).ok();
    });
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    auto snap = kernel->tm().stats().snapshot();
    if (snap.txns_committed > 0) {
      state.counters["fsyncs_per_commit"] =
          static_cast<double>(snap.wal_fsyncs) /
          static_cast<double>(snap.txns_committed);
    }
    state.counters["records_per_fsync"] = snap.wal_records_per_fsync();
    state.counters["commit_stalls"] = static_cast<double>(snap.commit_stalls);
    delete oids;
    delete kernel;
  }
}
BENCHMARK(BM_Commit)
    ->ArgName("mode")  // 0 = sync baseline, 1 = grouped, 2 = relaxed
    ->Arg(kSyncStrict)
    ->Arg(kGroupedStrict)
    ->Arg(kGroupedRelaxed)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace asset::bench
