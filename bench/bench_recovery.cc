// B16 — Recovery time vs. log length, with and without fuzzy
// checkpoints (DESIGN.md §4B, docs/RECOVERY.md).
//
// Question: how does crash-recovery time grow with the length of the
// write-ahead log, and how much of that growth do online fuzzy
// checkpoints reclaim? The workload is committed-only (no losers), so
// every measured recovery is pure analysis + redo and each iteration
// replays exactly the same durable log against the same device image.
// With checkpoints on, a FuzzyCheckpoint lands every 100 transactions:
// analysis starts at the last checkpoint's cut point and redo at its
// min_recovery_lsn, so the scan should stay bounded by the checkpoint
// interval instead of growing with history. The third mode additionally
// truncates the redundant prefix after each checkpoint, shrinking the
// physical log recovery has to materialize at all.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "storage/recovery.h"

namespace asset::bench {
namespace {

constexpr size_t kObjects = 500;
constexpr size_t kWritesPerTxn = 3;
constexpr size_t kCheckpointEvery = 100;

// Checkpoint axis (state.range(1)).
constexpr int kNoCheckpoints = 0;
constexpr int kFuzzy = 1;          // fuzzy checkpoints, log kept whole
constexpr int kFuzzyTruncate = 2;  // + TruncatePrefix after each one

/// A storage stack whose disk image and log survive the kernel: the
/// workload runs once, then each benchmark iteration rebuilds a fresh
/// pool + store over a restored copy of the crashed device and runs
/// RecoveryManager::Recover against the same durable log.
class RecoveryBench {
 public:
  RecoveryBench(size_t txns, int mode)
      : pool_(&disk_, 4096, &log_), store_(&pool_) {
    store_.Open().ok();
    TransactionManager::Options o;
    o.lock.lock_timeout = std::chrono::milliseconds(30000);
    o.commit_timeout = std::chrono::milliseconds(60000);
    o.max_transactions = 1 << 20;
    auto tm = std::make_unique<TransactionManager>(&log_, &store_, o);

    // All state flows through the log: objects are created by a
    // committed transaction, not store-level backdoors.
    Random rng(4242);
    std::vector<ObjectId> oids;
    RunTxn(*tm, [&] {
      Tid self = TransactionManager::Self();
      for (size_t i = 0; i < kObjects; ++i) {
        oids.push_back(tm->CreateObject(self, Payload(64)).value());
      }
    });
    auto payload = Payload(64, 0xCD);
    for (size_t t = 0; t < txns; ++t) {
      RunTxn(*tm, [&] {
        Tid self = TransactionManager::Self();
        for (size_t w = 0; w < kWritesPerTxn; ++w) {
          tm->Write(self, oids[rng.Uniform(kObjects)], payload).ok();
        }
      });
      // Skip a checkpoint that would coincide with the crash point —
      // the interesting case is a real tail of post-checkpoint work.
      if (mode != kNoCheckpoints && t + 1 != txns &&
          (t + 1) % kCheckpointEvery == 0) {
        RecoveryManager::FuzzyCheckpoint(&log_, &pool_, [&] {
          return tm->SnapshotActiveTransactions();
        }).value();
        if (mode == kFuzzyTruncate) log_.TruncatePrefix().value();
      }
    }
    log_.Flush().ok();
    tm.reset();
    image_ = disk_.SnapshotForTest();
  }

  /// Restores the crashed device image and hands back a fresh store,
  /// ready for Recover. (Not timed; see the benchmark loop.)
  std::unique_ptr<ObjectStore> FreshStore() {
    disk_.RestoreForTest(image_);
    recovery_pool_ =
        std::make_unique<BufferPool>(&disk_, 4096, &log_);
    auto store = std::make_unique<ObjectStore>(recovery_pool_.get());
    store->Open().ok();
    return store;
  }

  LogManager& log() { return log_; }

 private:
  static void RunTxn(TransactionManager& tm, std::function<void()> fn) {
    Tid t = tm.InitiateFn(std::move(fn));
    tm.Begin(t);
    tm.Commit(t);
  }

  InMemoryDiskManager disk_;
  LogManager log_;
  BufferPool pool_;
  ObjectStore store_;
  std::unique_ptr<BufferPool> recovery_pool_;
  std::vector<std::vector<uint8_t>> image_;
};

// One iteration = one full recovery (analysis + redo; the
// committed-only workload has no losers, so undo is empty and the log
// is bit-identical across iterations).
void BM_Recover(benchmark::State& state) {
  const size_t txns = static_cast<size_t>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  RecoveryBench bench(txns, mode);

  RecoveryManager::Report report;
  for (auto _ : state) {
    state.PauseTiming();
    auto store = bench.FreshStore();
    state.ResumeTiming();
    auto rep = RecoveryManager::Recover(&bench.log(), store.get());
    benchmark::DoNotOptimize(rep);
    state.PauseTiming();
    report = rep.value();
    store.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["log_records"] =
      static_cast<double>(bench.log().size());
  state.counters["records_scanned"] =
      static_cast<double>(report.records_scanned);
  state.counters["redo_applied"] =
      static_cast<double>(report.redo_applied);
  state.counters["redo_start_lsn"] =
      static_cast<double>(report.redo_start_lsn);
}
BENCHMARK(BM_Recover)
    ->ArgNames({"txns", "ckpt"})
    ->Args({200, kNoCheckpoints})
    ->Args({200, kFuzzy})
    ->Args({200, kFuzzyTruncate})
    ->Args({2000, kNoCheckpoints})
    ->Args({2000, kFuzzy})
    ->Args({2000, kFuzzyTruncate})
    ->Args({10000, kNoCheckpoints})
    ->Args({10000, kFuzzy})
    ->Args({10000, kFuzzyTruncate})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace asset::bench
