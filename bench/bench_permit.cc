// B2 — Cost of permits on the lock path (DESIGN.md §4B).
//
// Question: how much does each outstanding permit on an object cost a
// conflicting requester (the §4.2 step-1b scan), and what is the cost
// of issuing the four permit forms? Baseline: zero permits.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace asset::bench {
namespace {

// A writer acquires a write lock on an object that carries `permits`
// outstanding any-transaction permits from idle read-holders, so every
// acquire scans `permits` granted locks and exercises the permit check.
void BM_PermittedWriteThroughHolders(benchmark::State& state) {
  const int holders = static_cast<int>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(1);
  ObjectId hot = oids[0];
  // Idle read-holders that each permit everyone to write.
  std::vector<Tid> holder_tids;
  for (int i = 0; i < holders; ++i) {
    Tid t = kernel.tm().InitiateFn([&kernel, hot] {
      kernel.tm().Read(TransactionManager::Self(), hot).ok();
    });
    kernel.tm().Begin(t);
    kernel.tm().Wait(t);  // completed: lock held, not committed
    kernel.tm()
        .PermitAny(t, ObjectSet{hot}, OpSet(Operation::kWrite))
        .ok();
    holder_tids.push_back(t);
  }
  auto payload = Payload(64);
  for (auto _ : state) {
    bool ok = kernel.RunTxn([&] {
      kernel.tm().Write(TransactionManager::Self(), hot, payload).ok();
    });
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["permit_checks"] = static_cast<double>(
      kernel.tm().stats().permit_checks.load());
  for (Tid t : holder_tids) kernel.tm().Abort(t);
}
BENCHMARK(BM_PermittedWriteThroughHolders)
    ->ArgName("holders")
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);

// Cost of issuing permit(ti, tj, ob_set, ops) with ob_set of the given
// size (no transitivity in play).
void BM_PermitInsert(benchmark::State& state) {
  const size_t set_size = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(set_size);
  ObjectSet objs(oids);
  for (auto _ : state) {
    state.PauseTiming();
    Tid a = kernel.tm().InitiateFn([] {});
    Tid b = kernel.tm().InitiateFn([] {});
    state.ResumeTiming();
    kernel.tm().Permit(a, b, objs, OpSet::All()).ok();
    state.PauseTiming();
    kernel.tm().Abort(a);
    kernel.tm().Abort(b);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PermitInsert)->ArgName("obset")->Arg(1)->Arg(16)->Arg(256);

// Cost of the wildcard form permit(ti, tj) — expands over everything ti
// accessed (lock-list traversal, §4.2).
void BM_PermitWildcardExpansion(benchmark::State& state) {
  const size_t locks = static_cast<size_t>(state.range(0));
  BenchKernel kernel;
  auto oids = kernel.MakeObjects(locks);
  for (auto _ : state) {
    state.PauseTiming();
    Tid a = kernel.tm().InitiateFn([&] {
      Tid self = TransactionManager::Self();
      for (ObjectId oid : oids) kernel.tm().Read(self, oid).ok();
    });
    kernel.tm().Begin(a);
    kernel.tm().Wait(a);
    Tid b = kernel.tm().InitiateFn([] {});
    state.ResumeTiming();
    kernel.tm().Permit(a, b).ok();
    state.PauseTiming();
    kernel.tm().Abort(a);
    kernel.tm().Abort(b);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PermitWildcardExpansion)
    ->ArgName("locks")
    ->Arg(1)
    ->Arg(16)
    ->Arg(256);

}  // namespace
}  // namespace asset::bench
