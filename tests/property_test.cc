// Property-based (parameterized) tests over kernel invariants:
//  * consistency of concurrent snapshots under strict 2PL (pairwise
//    invariant preserved for every reader),
//  * group-commit all-or-nothing under random abort injection,
//  * delegation-chain outcome oracle,
//  * recovery idempotence over randomized histories and crash points.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "common/random.h"
#include "core/database.h"
#include "core/database_internal.h"
#include "kernel_fixture.h"
#include "models/atomic.h"
#include "storage/recovery.h"

namespace asset {
namespace {

// ---------------------------------------------------------------------------
// 1. Snapshot-consistency sweep: writers keep x + y == 0 inside every
//    transaction; readers must never observe a violation.

struct ConsistencyCase {
  int writers;
  int readers;
  int ops;
  uint64_t seed;
};

class SnapshotConsistencyProperty
    : public ::testing::TestWithParam<ConsistencyCase> {};

TEST_P(SnapshotConsistencyProperty, ReadersSeeInvariant) {
  const auto& c = GetParam();
  auto db = Database::Open().value();
  ObjectId x = kNullObjectId, y = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] {
    x = db->Create<int64_t>(0).value();
    y = db->Create<int64_t>(0).value();
  });
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < c.writers; ++w) {
    threads.emplace_back([&, w] {
      Random rng(c.seed * 97 + w);
      for (int i = 0; i < c.ops; ++i) {
        int64_t delta = static_cast<int64_t>(rng.Range(1, 9));
        models::RunAtomicWithRetry(
            KernelOf(*db),
            [&] {
              auto vx = db->Get<int64_t>(x);
              if (!vx.ok()) return;
              auto vy = db->Get<int64_t>(y);
              if (!vy.ok()) return;
              if (!db->Put<int64_t>(x, *vx + delta).ok()) return;
              db->Put<int64_t>(y, *vy - delta).ok();
            },
            30);
      }
    });
  }
  for (int r = 0; r < c.readers; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < c.ops; ++i) {
        models::RunAtomicWithRetry(
            KernelOf(*db),
            [&] {
              auto vx = db->Get<int64_t>(x);
              if (!vx.ok()) return;
              auto vy = db->Get<int64_t>(y);
              if (!vy.ok()) return;
              if (*vx + *vy != 0) violations.fetch_add(1);
            },
            30);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(violations.load(), 0);
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->Get<int64_t>(x).value() + db->Get<int64_t>(y).value(), 0);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SnapshotConsistencyProperty,
    ::testing::Values(ConsistencyCase{2, 2, 20, 1},
                      ConsistencyCase{4, 2, 20, 2},
                      ConsistencyCase{2, 4, 25, 3},
                      ConsistencyCase{4, 4, 15, 4}));

// ---------------------------------------------------------------------------
// 2. Group-commit all-or-nothing under random aborts.

struct GroupCase {
  int group_size;
  double abort_probability;
  uint64_t seed;
};

class GroupAtomicityProperty : public ::testing::TestWithParam<GroupCase> {};

TEST_P(GroupAtomicityProperty, AllOrNothing) {
  const auto& c = GetParam();
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 64);
  ObjectStore store(&pool);
  ASSERT_TRUE(store.Open().ok());
  LogManager log;
  TransactionManager::Options o;
  o.commit_timeout = std::chrono::milliseconds(3000);
  TransactionManager tm(&log, &store, o);

  Random rng(c.seed);
  for (int round = 0; round < 8; ++round) {
    std::vector<Tid> tids;
    for (int i = 0; i < c.group_size; ++i) {
      Tid t = tm.InitiateFn([] {});
      tids.push_back(t);
    }
    for (int i = 0; i + 1 < c.group_size; ++i) {
      ASSERT_TRUE(tm.FormDependency(DependencyType::kGroupCommit, tids[i],
                                    tids[i + 1])
                      .ok());
    }
    for (Tid t : tids) ASSERT_TRUE(tm.Begin(t));
    for (Tid t : tids) ASSERT_EQ(tm.Wait(t), 1);
    bool aborted_one = false;
    for (Tid t : tids) {
      if (rng.Bernoulli(c.abort_probability)) {
        tm.Abort(t);
        aborted_one = true;
        break;  // one abort suffices; the rest must follow
      }
    }
    bool committed = tm.Commit(tids[0]);
    // All members must share one terminal status.
    TxnStatus expected =
        committed ? TxnStatus::kCommitted : TxnStatus::kAborted;
    for (Tid t : tids) {
      EXPECT_EQ(tm.GetStatus(t), expected)
          << "round " << round << " tid " << t;
    }
    if (aborted_one) EXPECT_FALSE(committed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GroupAtomicityProperty,
    ::testing::Values(GroupCase{2, 0.0, 11}, GroupCase{2, 0.5, 12},
                      GroupCase{4, 0.3, 13}, GroupCase{6, 0.2, 14},
                      GroupCase{8, 0.15, 15}, GroupCase{3, 1.0, 16}));

// ---------------------------------------------------------------------------
// 3. Delegation-chain oracle: a write delegated down a chain persists
//    iff the final responsible transaction commits.

struct ChainCase {
  int chain_length;
  bool final_commits;
};

class DelegationChainProperty : public ::testing::TestWithParam<ChainCase> {
 protected:
  InMemoryDiskManager disk_;
};

TEST_P(DelegationChainProperty, OutcomeFollowsFinalResponsible) {
  const auto& c = GetParam();
  BufferPool pool(&disk_, 64);
  ObjectStore store(&pool);
  ASSERT_TRUE(store.Open().ok());
  LogManager log;
  TransactionManager::Options o;
  TransactionManager tm(&log, &store, o);

  ObjectId oid = store.Create(TestBytes("v0")).value();
  // Writer performs the update.
  Tid writer = tm.InitiateFn([&] {
    ASSERT_TRUE(
        tm.Write(TransactionManager::Self(), oid, TestBytes("vN")).ok());
  });
  ASSERT_TRUE(tm.Begin(writer));
  ASSERT_EQ(tm.Wait(writer), 1);
  // Delegate down a chain of initiated transactions.
  Tid current = writer;
  std::vector<Tid> chain{writer};
  for (int i = 0; i < c.chain_length; ++i) {
    Tid next = tm.InitiateFn([] {});
    ASSERT_TRUE(tm.Delegate(current, next).ok());
    chain.push_back(next);
    current = next;
  }
  // Everyone except the final holder terminates arbitrarily; their
  // terminations must not decide the value.
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    if (i % 2 == 0) {
      tm.Commit(chain[i]);
    } else {
      tm.Abort(chain[i]);
    }
  }
  if (c.final_commits) {
    if (tm.GetStatus(current) == TxnStatus::kInitiated) {
      ASSERT_TRUE(tm.Begin(current));
    }
    EXPECT_TRUE(tm.Commit(current));
  } else {
    EXPECT_TRUE(tm.Abort(current));
  }
  auto v = store.Read(oid);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(TestStr(*v), c.final_commits ? "vN" : "v0");
}

INSTANTIATE_TEST_SUITE_P(Sweep, DelegationChainProperty,
                         ::testing::Values(ChainCase{1, true},
                                           ChainCase{1, false},
                                           ChainCase{3, true},
                                           ChainCase{3, false},
                                           ChainCase{6, true},
                                           ChainCase{6, false}));

// ---------------------------------------------------------------------------
// 4. Recovery idempotence over randomized histories: random ops from
//    random transactions, random flush boundary, crash, recover once vs
//    recover twice — identical store states, and every committed
//    transaction's effects present iff it committed before the boundary.

struct HistoryCase {
  uint64_t seed;
  int txns;
  int objects;
  int ops;
};

class RecoveryIdempotenceProperty
    : public ::testing::TestWithParam<HistoryCase> {};

std::map<ObjectId, std::string> Snapshot(ObjectStore& store) {
  std::map<ObjectId, std::string> out;
  for (ObjectId oid : store.ListObjects()) {
    auto v = store.Read(oid);
    if (v.ok()) out[oid] = TestStr(*v);
  }
  return out;
}

TEST_P(RecoveryIdempotenceProperty, DoubleRecoveryIsIdentity) {
  const auto& c = GetParam();
  Random rng(c.seed);
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 64);
  ObjectStore store(&pool);
  ASSERT_TRUE(store.Open().ok());
  LogManager log;

  // Random history at the storage level (the recovery-test harness
  // idiom): creates/updates by several transactions, some committed.
  std::map<ObjectId, std::string> values;  // current (cache) value
  std::vector<Tid> txns;
  for (int i = 1; i <= c.txns; ++i) {
    LogRecord r;
    r.type = LogRecordType::kBegin;
    r.tid = i;
    log.Append(std::move(r));
    txns.push_back(i);
  }
  for (int i = 0; i < c.ops; ++i) {
    Tid t = txns[rng.Uniform(txns.size())];
    ObjectId oid = 1 + rng.Uniform(c.objects);
    std::string next = "t" + std::to_string(t) + "#" + std::to_string(i);
    LogRecord r;
    r.tid = t;
    r.oid = oid;
    if (values.count(oid) == 0) {
      r.type = LogRecordType::kCreate;
      r.after = TestBytes(next);
    } else {
      r.type = LogRecordType::kUpdate;
      r.before = TestBytes(values[oid]);
      r.after = TestBytes(next);
    }
    log.Append(std::move(r));
    ASSERT_TRUE(store.ApplyPut(oid, TestBytes(next)).ok());
    values[oid] = next;
  }
  // Random subset commits.
  for (Tid t : txns) {
    if (rng.Bernoulli(0.5)) {
      LogRecord r;
      r.type = LogRecordType::kCommit;
      r.tid = t;
      log.Append(std::move(r));
    }
  }
  // Random flush boundary, then crash. Page flushes are only legal when
  // the whole log is durable (the write-ahead rule this harness must
  // respect by hand; the kernel's buffer pool enforces it itself).
  bool full_flush = rng.Bernoulli(0.5);
  Lsn boundary = full_flush ? log.last_lsn() : 1 + rng.Uniform(log.last_lsn());
  ASSERT_TRUE(log.Flush(boundary).ok());
  if (full_flush && rng.Bernoulli(0.5)) ASSERT_TRUE(pool.FlushAll().ok());
  log.SimulateCrash();
  pool.DropAllUnflushed();
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(RecoveryManager::Recover(&log, &store).ok());
  auto first = Snapshot(store);

  // Crash again immediately; recovery must be a fixed point.
  log.SimulateCrash();
  pool.DropAllUnflushed();
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(RecoveryManager::Recover(&log, &store).ok());
  auto second = Snapshot(store);
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecoveryIdempotenceProperty,
    ::testing::Values(HistoryCase{21, 3, 4, 12}, HistoryCase{22, 4, 3, 20},
                      HistoryCase{23, 2, 6, 16}, HistoryCase{24, 5, 5, 30},
                      HistoryCase{25, 6, 2, 25}, HistoryCase{26, 3, 8, 40},
                      HistoryCase{27, 8, 4, 35}, HistoryCase{28, 4, 4, 50}));

}  // namespace
}  // namespace asset
