// Fault-injection tests: injected device write failures must surface as
// errors (never silent data loss), and clearing the fault must let the
// system proceed; WAL flush failures must block page write-back.

#include <gtest/gtest.h>

#include "core/database.h"
#include "kernel_fixture.h"
#include "models/atomic.h"
#include "storage/recovery.h"

namespace asset {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(FaultTest, EvictionWritebackFailureSurfaces) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);  // tiny pool: eviction is immediate
  // Two dirty pages fill the pool.
  PageId p0 = pool.NewPage()->page_id();
  PageId p1 = pool.NewPage()->page_id();
  (void)p0;
  (void)p1;
  disk.SetWriteFault([](PageId) { return Status::IOError("disk on fire"); });
  // A third page needs a frame: the dirty eviction must fail loudly.
  auto third = pool.NewPage();
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kIOError);
  // Clearing the fault unblocks the pool.
  disk.SetWriteFault(nullptr);
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST(FaultTest, FlushAllPropagatesDeviceErrors) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 8);
  {
    auto h = pool.NewPage();
    h->MarkDirty();
  }
  disk.SetWriteFault([](PageId) { return Status::IOError("nope"); });
  EXPECT_EQ(pool.FlushAll().code(), StatusCode::kIOError);
  disk.SetWriteFault(nullptr);
  EXPECT_TRUE(pool.FlushAll().ok());
}

TEST(FaultTest, SelectiveFaultHitsOnlyTargetPage) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 8);
  PageId a = pool.NewPage()->page_id();
  PageId b = pool.NewPage()->page_id();
  {
    auto ha = pool.FetchPage(a);
    ha->MarkDirty();
    auto hb = pool.FetchPage(b);
    hb->MarkDirty();
  }
  disk.SetWriteFault([a](PageId pid) {
    return pid == a ? Status::IOError("bad sector") : Status::OK();
  });
  EXPECT_TRUE(pool.FlushPage(b).ok());
  EXPECT_EQ(pool.FlushPage(a).code(), StatusCode::kIOError);
}

TEST(FaultTest, CheckpointFailsWhenDeviceFails) {
  InMemoryDiskManager disk;
  LogManager log;
  BufferPool pool(&disk, 8, &log);
  ObjectStore store(&pool);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Create(Bytes("x")).ok());
  disk.SetWriteFault([](PageId) { return Status::IOError("offline"); });
  EXPECT_FALSE(RecoveryManager::Checkpoint(&log, &pool).ok());
  disk.SetWriteFault(nullptr);
  EXPECT_TRUE(RecoveryManager::Checkpoint(&log, &pool).ok());
}

TEST(FaultTest, CommittedDataSurvivesTransientWritebackFaults) {
  // The WAL carries durability: even if page write-back faults for a
  // while (and the kernel surfaces errors), committed values are
  // recovered from the log once the device heals.
  auto db = Database::Open().value();
  ObjectId oid = kNullObjectId;
  models::RunAtomic(db->txn(), [&] {
    oid = db->Create<int64_t>(31337).value();
  });
  // No page was ever flushed; crash and recover purely from the WAL.
  ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
  models::RunAtomic(db->txn(), [&] {
    EXPECT_EQ(db->Get<int64_t>(oid).value(), 31337);
  });
}

}  // namespace
}  // namespace asset
