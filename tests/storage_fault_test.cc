// Fault-injection tests: injected device write failures must surface as
// errors (never silent data loss), and clearing the fault must let the
// system proceed; WAL flush failures must block page write-back; EINTR
// and short pread/pwrite transfers must be retried to completion.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "core/database.h"
#include "core/database_internal.h"
#include "kernel_fixture.h"
#include "models/atomic.h"
#include "storage/io_util.h"
#include "storage/recovery.h"

namespace asset {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(FaultTest, EvictionWritebackFailureSurfaces) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 2);  // tiny pool: eviction is immediate
  // Two dirty pages fill the pool.
  PageId p0 = pool.NewPage()->page_id();
  PageId p1 = pool.NewPage()->page_id();
  (void)p0;
  (void)p1;
  disk.SetWriteFault([](PageId) { return Status::IOError("disk on fire"); });
  // A third page needs a frame: the dirty eviction must fail loudly.
  auto third = pool.NewPage();
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kIOError);
  // Clearing the fault unblocks the pool.
  disk.SetWriteFault(nullptr);
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST(FaultTest, FlushAllPropagatesDeviceErrors) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 8);
  {
    auto h = pool.NewPage();
    h->MarkDirty();
  }
  disk.SetWriteFault([](PageId) { return Status::IOError("nope"); });
  EXPECT_EQ(pool.FlushAll().code(), StatusCode::kIOError);
  disk.SetWriteFault(nullptr);
  EXPECT_TRUE(pool.FlushAll().ok());
}

TEST(FaultTest, SelectiveFaultHitsOnlyTargetPage) {
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 8);
  PageId a = pool.NewPage()->page_id();
  PageId b = pool.NewPage()->page_id();
  {
    auto ha = pool.FetchPage(a);
    ha->MarkDirty();
    auto hb = pool.FetchPage(b);
    hb->MarkDirty();
  }
  disk.SetWriteFault([a](PageId pid) {
    return pid == a ? Status::IOError("bad sector") : Status::OK();
  });
  EXPECT_TRUE(pool.FlushPage(b).ok());
  EXPECT_EQ(pool.FlushPage(a).code(), StatusCode::kIOError);
}

TEST(FaultTest, CheckpointFailsWhenDeviceFails) {
  InMemoryDiskManager disk;
  LogManager log;
  BufferPool pool(&disk, 8, &log);
  ObjectStore store(&pool);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Create(Bytes("x")).ok());
  disk.SetWriteFault([](PageId) { return Status::IOError("offline"); });
  EXPECT_FALSE(RecoveryManager::Checkpoint(&log, &pool).ok());
  disk.SetWriteFault(nullptr);
  EXPECT_TRUE(RecoveryManager::Checkpoint(&log, &pool).ok());
}

TEST(FaultTest, CommittedDataSurvivesTransientWritebackFaults) {
  // The WAL carries durability: even if page write-back faults for a
  // while (and the kernel surfaces errors), committed values are
  // recovered from the log once the device heals.
  auto db = Database::Open().value();
  ObjectId oid = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] {
    oid = db->Create<int64_t>(31337).value();
  });
  // No page was ever flushed; crash and recover purely from the WAL.
  ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->Get<int64_t>(oid).value(), 31337);
  });
}

// --- EINTR / short-transfer retry loops (io_util + FileDiskManager) ------

TEST(IoRetryTest, PwriteFullyRetriesEintrAndShortWrites) {
  std::vector<uint8_t> dest(64, 0);
  int eintrs = 2;
  PwriteFn fn = [&](int, const void* buf, size_t len, off_t off) -> ssize_t {
    if (eintrs > 0) {
      --eintrs;
      errno = EINTR;
      return -1;
    }
    size_t n = std::min<size_t>(len, 3);  // dribble 3 bytes at a time
    std::memcpy(dest.data() + off, buf, n);
    return static_cast<ssize_t>(n);
  };
  std::vector<uint8_t> src(10);
  std::iota(src.begin(), src.end(), uint8_t{1});
  ASSERT_TRUE(PwriteFully(-1, src.data(), src.size(), 5, "test", fn).ok());
  EXPECT_EQ(eintrs, 0);
  EXPECT_TRUE(std::equal(src.begin(), src.end(), dest.begin() + 5));
}

TEST(IoRetryTest, PreadFullyRetriesEintrAndShortReads) {
  std::vector<uint8_t> src(32);
  std::iota(src.begin(), src.end(), uint8_t{0});
  int eintrs = 1;
  PreadFn fn = [&](int, void* buf, size_t len, off_t off) -> ssize_t {
    if (eintrs > 0) {
      --eintrs;
      errno = EINTR;
      return -1;
    }
    size_t n = std::min<size_t>(len, 5);
    std::memcpy(buf, src.data() + off, n);
    return static_cast<ssize_t>(n);
  };
  std::vector<uint8_t> out(16, 0xff);
  ASSERT_TRUE(PreadFully(-1, out.data(), out.size(), 8, "test", fn).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), src.begin() + 8));
}

TEST(IoRetryTest, ZeroByteTransfersAreErrorsNotLoops) {
  PreadFn eof = [](int, void*, size_t, off_t) -> ssize_t { return 0; };
  EXPECT_EQ(PreadFully(-1, nullptr, 8, 0, "test", eof).code(),
            StatusCode::kIOError);
  PwriteFn full = [](int, const void*, size_t, off_t) -> ssize_t { return 0; };
  EXPECT_EQ(PwriteFully(-1, nullptr, 8, 0, "test", full).code(),
            StatusCode::kIOError);
}

TEST(IoRetryTest, NonEintrErrnoSurfaces) {
  PwriteFn fn = [](int, const void*, size_t, off_t) -> ssize_t {
    errno = ENOSPC;
    return -1;
  };
  Status s = PwriteFully(-1, nullptr, 8, 0, "device extension", fn);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_NE(s.message().find("device extension"), std::string::npos);
}

// Regression (satellite): a signal-interrupted or short page transfer
// must not corrupt page I/O — FileDiskManager retries to the full
// kPageSize through its injectable syscall wrappers.
TEST(FaultTest, FileDiskManagerSurvivesEintrAndShortTransfers) {
  std::string path = ::testing::TempDir() + "/asset_eintr_disk.db";
  std::remove(path.c_str());
  FileDiskManager disk(path);
  ASSERT_TRUE(disk.status().ok());

  // Wrap the real syscalls: fail every third call with EINTR, cap every
  // transfer at 1000 bytes (so each page needs several rounds).
  int calls = 0;
  disk.SetIoFnsForTest(
      [&](int fd, void* buf, size_t len, off_t off) -> ssize_t {
        if (++calls % 3 == 0) {
          errno = EINTR;
          return -1;
        }
        return ::pread(fd, buf, std::min<size_t>(len, 1000), off);
      },
      [&](int fd, const void* buf, size_t len, off_t off) -> ssize_t {
        if (++calls % 3 == 0) {
          errno = EINTR;
          return -1;
        }
        return ::pwrite(fd, buf, std::min<size_t>(len, 1000), off);
      });

  auto pid = disk.AllocatePage();
  ASSERT_TRUE(pid.ok());
  std::vector<uint8_t> page(kPageSize);
  for (size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  ASSERT_TRUE(disk.WritePage(*pid, page.data()).ok());
  ASSERT_TRUE(disk.Sync().ok());

  std::vector<uint8_t> back(kPageSize, 0);
  ASSERT_TRUE(disk.ReadPage(*pid, back.data()).ok());
  EXPECT_EQ(back, page);

  // The faulty transport was exercised, not bypassed.
  EXPECT_GT(calls, 8);
  disk.SetIoFnsForTest(nullptr, nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace asset
