// Tests for the permit table: direct permits, wildcard grantees,
// transitive closure (eager materialization vs an on-demand oracle),
// delegation redirect, and removal.

#include <gtest/gtest.h>

#include <functional>

#include "common/random.h"
#include "core/permit_table.h"

namespace asset {
namespace {

constexpr Operation kR = Operation::kRead;
constexpr Operation kW = Operation::kWrite;

TEST(PermitTableTest, DirectPermitMatches) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10}, OpSet(kW)).ok());
  EXPECT_TRUE(pt.Permits(1, 2, 10, kW));
  EXPECT_FALSE(pt.Permits(1, 2, 10, kR));
  EXPECT_FALSE(pt.Permits(1, 2, 11, kW));
  EXPECT_FALSE(pt.Permits(2, 1, 10, kW));  // not symmetric
  EXPECT_FALSE(pt.Permits(1, 3, 10, kW));  // wrong grantee
}

TEST(PermitTableTest, WildcardGranteePermitsEveryone) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, kNullTid, ObjectSet{10}, OpSet(kW)).ok());
  EXPECT_TRUE(pt.Permits(1, 2, 10, kW));
  EXPECT_TRUE(pt.Permits(1, 99, 10, kW));
  EXPECT_FALSE(pt.Permits(1, 2, 11, kW));
}

TEST(PermitTableTest, AllOpsPermit) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10}, OpSet::All()).ok());
  EXPECT_TRUE(pt.Permits(1, 2, 10, kR));
  EXPECT_TRUE(pt.Permits(1, 2, 10, kW));
}

TEST(PermitTableTest, VacuousPermitsDropped) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, 1, ObjectSet{10}, OpSet::All()).ok());  // self
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet(), OpSet::All()).ok());    // no obj
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10}, OpSet::None()).ok()); // no op
  EXPECT_EQ(pt.size(), 0u);
}

TEST(PermitTableTest, WildcardObjectsRejectedUnexpanded) {
  PermitTable pt;
  EXPECT_EQ(pt.Insert(1, 2, ObjectSet::All(), OpSet::All()).code(),
            StatusCode::kInvalidArgument);
}

TEST(PermitTableTest, TransitiveChainDerivesIntersection) {
  PermitTable pt;
  // permit(1,2,{10,11},{r,w}) ∘ permit(2,3,{11,12},{w}) ⇒
  // permit(1,3,{11},{w}).
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10, 11}, OpSet::All()).ok());
  ASSERT_TRUE(pt.Insert(2, 3, ObjectSet{11, 12}, OpSet(kW)).ok());
  EXPECT_TRUE(pt.Permits(1, 3, 11, kW));
  EXPECT_FALSE(pt.Permits(1, 3, 11, kR));
  EXPECT_FALSE(pt.Permits(1, 3, 10, kW));
  EXPECT_FALSE(pt.Permits(1, 3, 12, kW));  // 12 not in 1's grant
}

TEST(PermitTableTest, TransitivityWorksInBothInsertionOrders) {
  // Insert the second edge first: closure must chain when the first
  // edge arrives.
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(2, 3, ObjectSet{10}, OpSet(kW)).ok());
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10}, OpSet(kW)).ok());
  EXPECT_TRUE(pt.Permits(1, 3, 10, kW));
}

TEST(PermitTableTest, LongChainCloses) {
  PermitTable pt;
  for (Tid t = 1; t <= 10; ++t) {
    ASSERT_TRUE(pt.Insert(t, t + 1, ObjectSet{10}, OpSet(kW)).ok());
  }
  EXPECT_TRUE(pt.Permits(1, 11, 10, kW));
  EXPECT_TRUE(pt.Permits(3, 8, 10, kW));
  EXPECT_FALSE(pt.Permits(11, 1, 10, kW));
}

TEST(PermitTableTest, CyclicPermitsTerminate) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10}, OpSet::All()).ok());
  ASSERT_TRUE(pt.Insert(2, 1, ObjectSet{10}, OpSet::All()).ok());
  EXPECT_TRUE(pt.Permits(1, 2, 10, kW));
  EXPECT_TRUE(pt.Permits(2, 1, 10, kW));
}

TEST(PermitTableTest, SubsumedInsertAddsNothing) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10, 11}, OpSet::All()).ok());
  size_t n = pt.size();
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10}, OpSet(kR)).ok());
  EXPECT_EQ(pt.size(), n);
}

TEST(PermitTableTest, RemoveAllForStripsBothDirections) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10}, OpSet::All()).ok());
  ASSERT_TRUE(pt.Insert(3, 1, ObjectSet{10}, OpSet::All()).ok());
  ASSERT_TRUE(pt.Insert(3, 4, ObjectSet{10}, OpSet::All()).ok());
  pt.RemoveAllFor(1);
  EXPECT_FALSE(pt.Permits(1, 2, 10, kW));
  EXPECT_FALSE(pt.Permits(3, 1, 10, kW));
  EXPECT_TRUE(pt.Permits(3, 4, 10, kW));
}

TEST(PermitTableTest, RedirectGrantorMovesWholePermit) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, 3, ObjectSet{10}, OpSet(kW)).ok());
  pt.RedirectGrantor(1, 2, ObjectSet::All());
  EXPECT_FALSE(pt.Permits(1, 3, 10, kW));
  EXPECT_TRUE(pt.Permits(2, 3, 10, kW));
}

TEST(PermitTableTest, RedirectGrantorSplitsOnObjectSet) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, 3, ObjectSet{10, 11}, OpSet(kW)).ok());
  pt.RedirectGrantor(1, 2, ObjectSet{10});
  EXPECT_TRUE(pt.Permits(2, 3, 10, kW));   // moved
  EXPECT_FALSE(pt.Permits(2, 3, 11, kW));
  EXPECT_TRUE(pt.Permits(1, 3, 11, kW));   // stayed
  EXPECT_FALSE(pt.Permits(1, 3, 10, kW));
}

TEST(PermitTableTest, RedirectDropsSelfPermits) {
  PermitTable pt;
  // 1 permits 2; delegation of 1's work to 2 makes it a self-permit.
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10}, OpSet(kW)).ok());
  pt.RedirectGrantor(1, 2, ObjectSet::All());
  EXPECT_EQ(pt.size(), 0u);
}

TEST(PermitTableTest, GivenByAndGivenTo) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10}, OpSet(kW)).ok());
  ASSERT_TRUE(pt.Insert(3, 2, ObjectSet{11}, OpSet(kR)).ok());
  EXPECT_EQ(pt.GivenBy(1).size(), 1u);
  EXPECT_EQ(pt.GivenTo(2).size(), 2u);
  EXPECT_TRUE(pt.GivenBy(2).empty());
}

TEST(PermitTableTest, ObjectsPermittedToIncludesWildcardGrants) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10}, OpSet(kW)).ok());
  ASSERT_TRUE(pt.Insert(3, kNullTid, ObjectSet{11}, OpSet(kW)).ok());
  ObjectSet objs = pt.ObjectsPermittedTo(2);
  EXPECT_TRUE(objs.Contains(10));
  EXPECT_TRUE(objs.Contains(11));
  EXPECT_FALSE(objs.Contains(12));
}

TEST(PermitTableTest, DirectSizeExcludesDerived) {
  PermitTable pt;
  ASSERT_TRUE(pt.Insert(1, 2, ObjectSet{10}, OpSet::All()).ok());
  ASSERT_TRUE(pt.Insert(2, 3, ObjectSet{10}, OpSet::All()).ok());
  EXPECT_EQ(pt.direct_size(), 2u);
  EXPECT_GE(pt.size(), 3u);  // the derived (1,3) permit
}

// Property test: eager materialization must agree with an on-demand
// closure oracle over random permit graphs.
struct ClosureCase {
  uint64_t seed;
  int txns;
  int objects;
  int inserts;
};

class PermitClosureProperty : public ::testing::TestWithParam<ClosureCase> {};

// Oracle: BFS over direct permits only, intersecting scopes along the
// way, wildcard grantee treated as matching any next hop's grantor.
bool OraclePermits(const std::vector<Permit>& direct, Tid grantor,
                   Tid grantee, ObjectId ob, Operation op) {
  // State: set of (current grantee, reachable?) with accumulated scope
  // narrowed along each path; since scopes only narrow, track paths via
  // DFS with explicit scope.
  struct Node {
    Tid at;
    bool scope_ok;
  };
  // DFS with memo on (edge index path) is overkill: enumerate paths up
  // to depth = #direct permits using recursion.
  std::function<bool(Tid, ObjectId, Operation, std::vector<bool>&)> dfs =
      [&](Tid from, ObjectId o, Operation p, std::vector<bool>& used) {
        for (size_t i = 0; i < direct.size(); ++i) {
          if (used[i]) continue;
          const Permit& e = direct[i];
          if (e.grantor != from) continue;
          if (!e.objects.Contains(o) || !e.ops.Contains(p)) continue;
          if (e.grantee == kNullTid || e.grantee == grantee) return true;
          used[i] = true;
          if (dfs(e.grantee, o, p, used)) return true;
          used[i] = false;
        }
        return false;
      };
  std::vector<bool> used(direct.size(), false);
  return dfs(grantor, ob, op, used);
}

TEST_P(PermitClosureProperty, EagerEqualsOracle) {
  const ClosureCase& c = GetParam();
  Random rng(c.seed);
  PermitTable pt;
  std::vector<Permit> direct;
  for (int i = 0; i < c.inserts; ++i) {
    Tid a = rng.Range(1, c.txns);
    Tid b = rng.Bernoulli(0.1) ? kNullTid : rng.Range(1, c.txns);
    if (a == b) continue;
    std::vector<ObjectId> ids;
    int n = static_cast<int>(rng.Range(1, 3));
    for (int k = 0; k < n; ++k) ids.push_back(rng.Range(1, c.objects));
    OpSet ops = rng.Bernoulli(0.3)   ? OpSet::All()
                : rng.Bernoulli(0.5) ? OpSet(kR)
                                     : OpSet(kW);
    ObjectSet objs(ids);
    ASSERT_TRUE(pt.Insert(a, b, objs, ops).ok());
    direct.push_back(Permit{a, b, objs, ops, true});
  }
  // Compare on every (grantor, grantee, object, op) triple.
  for (Tid g = 1; g <= static_cast<Tid>(c.txns); ++g) {
    for (Tid e = 1; e <= static_cast<Tid>(c.txns); ++e) {
      if (g == e) continue;
      for (ObjectId o = 1; o <= static_cast<ObjectId>(c.objects); ++o) {
        for (Operation op : {kR, kW}) {
          EXPECT_EQ(pt.Permits(g, e, o, op),
                    OraclePermits(direct, g, e, o, op))
              << "grantor=" << g << " grantee=" << e << " ob=" << o
              << " op=" << static_cast<int>(op);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, PermitClosureProperty,
    ::testing::Values(ClosureCase{1, 4, 4, 6}, ClosureCase{2, 5, 3, 10},
                      ClosureCase{3, 3, 5, 8}, ClosureCase{4, 6, 4, 12},
                      ClosureCase{5, 4, 2, 15}, ClosureCase{6, 8, 6, 20},
                      ClosureCase{7, 5, 5, 25}, ClosureCase{8, 6, 3, 18}));

}  // namespace
}  // namespace asset
