// API misuse and negative paths: every primitive called with unknown
// tids, terminated transactions, wrong states, and degenerate argument
// sets must fail cleanly — never crash, never corrupt.

#include <gtest/gtest.h>

#include "kernel_fixture.h"

namespace asset {
namespace {

class ErrorPathTest : public KernelFixture {
 protected:
  Tid Committed() {
    Tid t = tm_->Initiate([] {});
    tm_->Begin(t);
    tm_->Commit(t);
    return t;
  }
  Tid Aborted() {
    Tid t = tm_->Initiate([] {});
    tm_->Abort(t);
    return t;
  }
};

TEST_F(ErrorPathTest, PrimitivesOnUnknownTids) {
  constexpr Tid kGhost = 123456789;
  EXPECT_FALSE(tm_->Begin(kGhost));
  EXPECT_FALSE(tm_->Commit(kGhost));
  EXPECT_EQ(tm_->Wait(kGhost), 0);
  EXPECT_TRUE(tm_->Abort(kGhost));  // not committed, so abort "succeeds"
  EXPECT_EQ(tm_->ParentOf(kGhost), kNullTid);
  EXPECT_TRUE(tm_->Permit(kGhost, kGhost + 1, ObjectSet{1}, OpSet::All())
                  .IsNotFound());
  EXPECT_TRUE(tm_->Delegate(kGhost, kGhost + 1).IsNotFound());
  EXPECT_TRUE(tm_->FormDependency(DependencyType::kCommit, kGhost,
                                  kGhost + 1)
                  .IsNotFound());
}

TEST_F(ErrorPathTest, DataOpsOnUnknownTransaction) {
  ObjectId oid = MakeObject("x");
  EXPECT_TRUE(tm_->Read(999999, oid).status().IsNotFound());
  EXPECT_TRUE(tm_->Write(999999, oid, TestBytes("y")).IsNotFound());
  EXPECT_TRUE(tm_->CreateObject(999999, TestBytes("y")).status()
                  .IsNotFound());
  EXPECT_TRUE(tm_->DeleteObject(999999, oid).IsNotFound());
  EXPECT_TRUE(tm_->Increment(999999, oid, 1).IsNotFound());
}

TEST_F(ErrorPathTest, DataOpsFromNonRunningTransaction) {
  ObjectId oid = MakeObject("x");
  Tid t = tm_->Initiate([] {});  // initiated, never begun
  EXPECT_TRUE(tm_->Read(t, oid).status().IsIllegalState());
  EXPECT_TRUE(tm_->Write(t, oid, TestBytes("y")).IsIllegalState());
  tm_->Begin(t);
  tm_->Wait(t);  // completed: the data-op window has closed
  EXPECT_TRUE(tm_->Write(t, oid, TestBytes("y")).IsIllegalState());
  tm_->Commit(t);
  EXPECT_TRUE(tm_->Write(t, oid, TestBytes("y")).IsIllegalState());
}

TEST_F(ErrorPathTest, ReadOfMissingObjectHoldsNoSurprises) {
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    EXPECT_TRUE(tm_->Read(self, 424242).status().IsNotFound());
    EXPECT_TRUE(tm_->Write(self, 424242, TestBytes("x")).IsNotFound());
    EXPECT_TRUE(tm_->DeleteObject(self, 424242).IsNotFound());
  });
  tm_->Begin(t);
  EXPECT_TRUE(tm_->Commit(t));
}

TEST_F(ErrorPathTest, PermitFromOrToTerminated) {
  Tid done = Committed();
  Tid dead = Aborted();
  Tid live = tm_->Initiate([] {});
  EXPECT_TRUE(
      tm_->Permit(done, live, ObjectSet{1}, OpSet::All()).IsIllegalState());
  EXPECT_TRUE(
      tm_->Permit(live, dead, ObjectSet{1}, OpSet::All()).IsIllegalState());
  tm_->Abort(live);
}

TEST_F(ErrorPathTest, DelegateWithTerminatedEnds) {
  Tid done = Committed();
  Tid live = tm_->Initiate([] {});
  EXPECT_TRUE(tm_->Delegate(done, live).IsIllegalState());
  EXPECT_TRUE(tm_->Delegate(live, done).IsIllegalState());
  tm_->Abort(live);
}

TEST_F(ErrorPathTest, SelfDependencyAndNullTids) {
  Tid t = tm_->Initiate([] {});
  EXPECT_EQ(tm_->FormDependency(DependencyType::kAbort, t, t).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(
      tm_->FormDependency(DependencyType::kAbort, kNullTid, t).ok());
  tm_->Abort(t);
}

TEST_F(ErrorPathTest, DependencyOnCommittedDependentIsIllegal) {
  Tid done = Committed();
  Tid live = tm_->Initiate([] {});
  EXPECT_TRUE(tm_->FormDependency(DependencyType::kAbort, live, done)
                  .IsIllegalState());
  tm_->Abort(live);
}

TEST_F(ErrorPathTest, VacuousPermitsAreAccepted) {
  Tid a = tm_->Initiate([] {});
  Tid b = tm_->Initiate([] {});
  // Empty object set / empty op set: legal no-ops.
  EXPECT_TRUE(tm_->Permit(a, b, ObjectSet{}, OpSet::All()).ok());
  EXPECT_TRUE(tm_->Permit(a, b, ObjectSet{1}, OpSet::None()).ok());
  // permit(a, b) with `a` holding nothing expands to nothing.
  EXPECT_TRUE(tm_->Permit(a, b).ok());
  tm_->Abort(a);
  tm_->Abort(b);
}

TEST_F(ErrorPathTest, StatusQueriesOnEveryState) {
  Tid unknown = 5555555;
  EXPECT_FALSE(tm_->IsCommitted(unknown));
  EXPECT_TRUE(tm_->IsAborted(unknown));  // fail-safe default
  Tid done = Committed();
  EXPECT_TRUE(tm_->IsCommitted(done));
  EXPECT_FALSE(tm_->IsAborted(done));
  EXPECT_FALSE(tm_->IsActiveTxn(done));
  Tid dead = Aborted();
  EXPECT_TRUE(tm_->IsAborted(dead));
  Tid t = tm_->Initiate([] {});
  EXPECT_FALSE(tm_->IsActiveTxn(t));  // initiated is not active (§2.1)
  tm_->Begin(t);
  tm_->Wait(t);
  EXPECT_TRUE(tm_->IsActiveTxn(t));
  EXPECT_TRUE(tm_->IsCompleted(t));
  tm_->Commit(t);
  EXPECT_FALSE(tm_->IsCompleted(t));
}

TEST_F(ErrorPathTest, EmptyObjectValuesAreLegal) {
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    auto oid = tm_->CreateObject(self, std::vector<uint8_t>{});
    ASSERT_TRUE(oid.ok());
    auto v = tm_->Read(self, *oid);
    ASSERT_TRUE(v.ok());
    EXPECT_TRUE(v->empty());
    ASSERT_TRUE(tm_->Write(self, *oid, TestBytes("grew")).ok());
    ASSERT_TRUE(tm_->Write(self, *oid, std::vector<uint8_t>{}).ok());
  });
  tm_->Begin(t);
  EXPECT_TRUE(tm_->Commit(t));
}

TEST_F(ErrorPathTest, BeginOfCommittedOrAbortedFails) {
  Tid done = Committed();
  EXPECT_FALSE(tm_->Begin(done));
  Tid dead = Aborted();
  EXPECT_FALSE(tm_->Begin(dead));
}

}  // namespace
}  // namespace asset
