// Serialization helpers for the Ode layer: round trips, truncation
// detection, and string framing.

#include <gtest/gtest.h>

#include "ode/bytes.h"

namespace asset::ode {
namespace {

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.U8(0xAB);
  w.U16(0xBEEF);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.U8().value(), 0xAB);
  EXPECT_EQ(r.U16().value(), 0xBEEF);
  EXPECT_EQ(r.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64().value(), -42);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter w;
  w.Str("");
  w.Str("hello");
  w.Str(std::string(1000, 'x'));
  auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.Str().value(), "");
  EXPECT_EQ(r.Str().value(), "hello");
  EXPECT_EQ(r.Str().value(), std::string(1000, 'x'));
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncatedFixedWidthFails) {
  ByteWriter w;
  w.U64(7);
  auto buf = w.Take();
  buf.resize(5);
  ByteReader r(buf);
  auto v = r.U64();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter w;
  w.Str("truncate me");
  auto buf = w.Take();
  buf.resize(buf.size() - 4);
  ByteReader r(buf);
  EXPECT_FALSE(r.Str().ok());
}

TEST(BytesTest, ReaderTracksOffset) {
  ByteWriter w;
  w.U32(1);
  w.U32(2);
  auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.offset(), 0u);
  r.U32().value();
  EXPECT_EQ(r.offset(), 4u);
  EXPECT_FALSE(r.AtEnd());
  r.U32().value();
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, InterleavedTypesRoundTrip) {
  ByteWriter w;
  for (int i = 0; i < 50; ++i) {
    w.Str("k" + std::to_string(i));
    w.I64(-i);
    w.U8(static_cast<uint8_t>(i));
  }
  auto buf = w.Take();
  ByteReader r(buf);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(r.Str().value(), "k" + std::to_string(i));
    EXPECT_EQ(r.I64().value(), -i);
    EXPECT_EQ(r.U8().value(), static_cast<uint8_t>(i));
  }
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace asset::ode
