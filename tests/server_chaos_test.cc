// Wire-level fault injection against a real server (docs/ROBUSTNESS.md).
//
// Every scenario here drives the stock Server + Client through the
// SocketHooks seam (common/socket_io.h): partial transfers, EINTR
// storms, stalls past the deadline, resets mid-batch, and admission
// sheds. The invariants under test are the robustness layer's
// promises: no call hangs forever, a deadline or disconnect aborts the
// affected transaction exactly once, and the asset_server_* metrics
// account for every outcome.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/command.h"
#include "client/client.h"
#include "common/socket_io.h"
#include "common/trace.h"
#include "core/database.h"
#include "server/server.h"

namespace asset {
namespace {

using api::Command;
using api::Reply;
using client::Client;
using server::Server;

/// Pulls one metric value out of Prometheus exposition text.
int64_t Metric(const std::string& text, const std::string& name) {
  std::string needle = "\n" + name + " ";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    if (text.rfind(name + " ", 0) == 0) {
      pos = 0;
      needle = name + " ";
    } else {
      return -1;
    }
  }
  return std::stoll(text.substr(pos + needle.size()));
}

class ServerChaosTest : public ::testing::Test {
 protected:
  void StartServer(Server::Options opts = {}) {
    db_ = Database::Open().value();
    server_ = Server::Start(db_.get(), opts).value();
  }

  std::unique_ptr<Client> Connect(Client::Options copts = {}) {
    return Client::Connect("127.0.0.1", server_->port(), copts).value();
  }

  int64_t ServerMetric(const std::string& name) {
    return Metric(server_->MetricsText(), name);
  }

  void TearDown() override {
    // Quiesce all traffic before any test-scoped hook dies.
    server_.reset();
    db_.reset();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
};

// --- Satellite regression: a silent peer cannot hang the client ------

TEST_F(ServerChaosTest, SilentServerTimesOutInsteadOfHanging) {
  // A listener that accepts and then says nothing, ever — the
  // handshake's reply read must hit io_timeout, not block forever.
  int lfd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(lfd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  uint16_t port = ntohs(addr.sin_port);
  std::thread accepter([lfd] {
    int c = accept(lfd, nullptr, nullptr);
    std::this_thread::sleep_for(std::chrono::seconds(2));
    if (c >= 0) close(c);
  });

  Client::Options copts;
  copts.io_timeout = std::chrono::milliseconds(200);
  copts.max_retries = 0;
  auto start = std::chrono::steady_clock::now();
  auto result = Client::Connect("127.0.0.1", port, copts);
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimedOut()) << result.status().ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(1));

  accepter.join();
  close(lfd);
}

// --- Partial transfers and EINTR never corrupt the stream ------------

TEST_F(ServerChaosTest, PartialWritesAndShortReadsMidFrame) {
  StartServer();
  // Clamp every transfer to a handful of bytes and serve EINTR every
  // third call: frames fragment at arbitrary boundaries on both ends.
  std::atomic<uint64_t> calls{0};
  SocketHooks hooks;
  hooks.send = [&calls](int fd, const void* buf, size_t len, int flags) {
    uint64_t n = calls.fetch_add(1, std::memory_order_relaxed);
    if (n % 3 == 2) {
      errno = EINTR;
      return static_cast<ssize_t>(-1);
    }
    return ::send(fd, buf, std::min<size_t>(len, 7), flags);
  };
  hooks.recv = [&calls](int fd, void* buf, size_t len, int flags) {
    uint64_t n = calls.fetch_add(1, std::memory_order_relaxed);
    if (n % 3 == 2) {
      errno = EINTR;
      return static_cast<ssize_t>(-1);
    }
    return ::recv(fd, buf, std::min<size_t>(len, 5), flags);
  };
  {
    ScopedSocketHooks guard(&hooks);
    auto c = Connect();
    ASSERT_TRUE(c->Begin().ok());
    auto oid = c->Create({1, 2, 3, 4, 5, 6, 7, 8});
    ASSERT_TRUE(oid.ok());
    auto bytes = c->Get(*oid);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(bytes->size(), 8u);
    ASSERT_TRUE(c->Commit().ok());
    c.reset();
    server_->Shutdown();  // join all traffic before the hook dies
  }
  server_.reset();
}

// --- Deadlines bound kernel waits and abort exactly once -------------

TEST_F(ServerChaosTest, StalledLockWaitHitsDeadlineAndAbortsOnce) {
  StartServer();
  auto holder = Connect();
  ASSERT_TRUE(holder->Begin().ok());
  auto oid = holder->Create({42});
  ASSERT_TRUE(oid.ok());  // write lock held until commit

  auto waiter = Connect();
  ASSERT_TRUE(waiter->Begin().ok());
  auto start = std::chrono::steady_clock::now();
  auto r = waiter->Call(
      Command::Put(*oid, std::vector<uint8_t>{7}).WithDeadline(100));
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, StatusCode::kTimedOut) << r->message;
  EXPECT_NE(r->message.find("transaction aborted"), std::string::npos)
      << r->message;
  EXPECT_LT(elapsed, std::chrono::seconds(3));  // not lock_timeout (5s)

  // Aborted exactly once: the session no longer owns the transaction,
  // so a second abort attempt finds nothing.
  auto again = waiter->Call(Command::Abort());
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again->code, StatusCode::kOk);

  EXPECT_EQ(ServerMetric("asset_server_deadline_timeout_aborts_total"), 1);
  ASSERT_TRUE(holder->Commit().ok());
  EXPECT_EQ(ServerMetric("asset_server_open_txns"), 0);
}

TEST_F(ServerChaosTest, BatchMateBurnsBudgetExpiresBeforeDispatch) {
  StartServer();
  auto holder = Connect();
  ASSERT_TRUE(holder->Begin().ok());
  auto oid = holder->Create({42});
  ASSERT_TRUE(oid.ok());

  // One pipelined batch: the first Put blocks ~150 ms on the held
  // lock, exhausting the second command's 50 ms budget while it sits
  // queued behind its batch-mate.
  auto waiter = Connect();
  ASSERT_TRUE(waiter->Begin().ok());
  waiter->Send(Command::Put(*oid, std::vector<uint8_t>{7}).WithDeadline(150));
  waiter->Send(Command::Put(*oid, std::vector<uint8_t>{8}).WithDeadline(50));
  ASSERT_TRUE(waiter->Flush().ok());
  auto first = waiter->Receive();
  auto second = waiter->Receive();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->code, StatusCode::kTimedOut) << first->message;
  EXPECT_EQ(second->code, StatusCode::kTimedOut) << second->message;
  EXPECT_NE(second->message.find("expired before"), std::string::npos)
      << second->message;

  EXPECT_EQ(ServerMetric("asset_server_deadline_timeout_aborts_total"), 1);
  EXPECT_EQ(ServerMetric("asset_server_deadline_expired_total"), 1);
  ASSERT_TRUE(holder->Commit().ok());
}

// --- Admission control ------------------------------------------------

TEST_F(ServerChaosTest, OverloadShedsBeginsButAdmitsFinishingWork) {
  Server::Options opts;
  opts.admission_max_open_txns = 2;
  StartServer(opts);

  Client::Options no_retry;
  no_retry.max_retries = 0;
  auto c1 = Connect(no_retry);
  auto c2 = Connect(no_retry);
  ASSERT_TRUE(c1->Begin().ok());
  ASSERT_TRUE(c2->Begin().ok());

  // At the cap: a third Begin is shed with a retryable kOverloaded
  // carrying a retry-after hint.
  auto c3 = Connect(no_retry);
  auto shed = c3->Call(Command::Begin());
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->code, StatusCode::kOverloaded) << shed->message;
  EXPECT_TRUE(shed->ToStatus().IsRetryable());
  ASSERT_EQ(shed->kind, api::ReplyValueKind::kI64);
  EXPECT_GE(shed->i64, 20);  // at least the base hint

  // Work on running transactions is class 1: admitted even while
  // overloaded, because finishing is how the overload clears.
  auto obj = c1->Create({1});
  EXPECT_TRUE(obj.ok());
  ASSERT_TRUE(c1->Commit().ok());

  // Capacity freed: the retried Begin is admitted.
  EXPECT_TRUE(c3->Begin().ok());
  EXPECT_EQ(ServerMetric("asset_server_admission_shed_total"), 1);
  ASSERT_TRUE(c2->Abort().ok());
  ASSERT_TRUE(c3->Abort().ok());
  EXPECT_EQ(ServerMetric("asset_server_open_txns"), 0);
}

TEST_F(ServerChaosTest, ClientRetriesShedBeginUntilAdmitted) {
  Server::Options opts;
  opts.admission_max_open_txns = 1;
  StartServer(opts);

  Client::Options retrying;
  retrying.max_retries = 20;
  retrying.backoff_base = std::chrono::milliseconds(5);
  auto blocker = Connect();
  ASSERT_TRUE(blocker->Begin().ok());

  std::thread release([&blocker] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_TRUE(blocker->Abort().ok());
  });
  auto c = Connect(retrying);
  auto begun = c->Begin();
  release.join();
  ASSERT_TRUE(begun.ok()) << begun.status().ToString();
  EXPECT_GE(c->stats().retries, 1u);
  EXPECT_GE(c->stats().overloaded_seen, 1u);
  ASSERT_TRUE(c->Commit().ok());
}

// --- Wire trace context survives retries and reconnects ---------------

TEST_F(ServerChaosTest, TraceIdSurvivesShedRetriesWithFreshSpans) {
  Server::Options opts;
  opts.admission_max_open_txns = 1;
  StartServer(opts);
  db_->set_trace_enabled(true);

  Client::Options retrying;
  retrying.max_retries = 20;
  retrying.backoff_base = std::chrono::milliseconds(5);
  retrying.trace_recorder = &db_->trace_recorder();

  auto blocker = Connect();  // untraced: its events stay off the drain
  ASSERT_TRUE(blocker->Begin().ok());
  std::thread release([&blocker] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_TRUE(blocker->Abort().ok());
  });
  auto c = Connect(retrying);
  auto begun = c->Begin();
  release.join();
  ASSERT_TRUE(begun.ok()) << begun.status().ToString();
  ASSERT_GE(c->stats().retries, 1u);
  uint64_t trace = c->last_trace_id();
  ASSERT_NE(trace, 0u);

  // One logical Begin, several wire attempts: every attempt shares the
  // one trace id, each with its own span and its own client round trip.
  auto evs = db_->trace_recorder().Drain();
  std::vector<uint64_t> spans;
  size_t rpcs = 0, shed = 0, admitted = 0;
  for (const auto& ev : evs) {
    if (ev.tid != trace) continue;
    if (ev.type == TraceEventType::kClientRpc) {
      ++rpcs;
      spans.push_back(ev.other);
    }
    if (ev.type == TraceEventType::kAdmission) {
      (ev.arg != 0 ? shed : admitted) += 1;
    }
  }
  EXPECT_GE(rpcs, 2u);  // at least one shed attempt plus the winner
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(admitted, 1u);
  std::sort(spans.begin(), spans.end());
  EXPECT_EQ(std::adjacent_find(spans.begin(), spans.end()), spans.end())
      << "retried attempts must mint fresh span ids";
  ASSERT_TRUE(c->Commit().ok());
}

TEST_F(ServerChaosTest, PreStampedTraceSurvivesReconnect) {
  Server::Options opts;
  opts.idle_timeout = std::chrono::milliseconds(100);
  StartServer(opts);
  db_->set_trace_enabled(true);

  Client::Options copts;
  copts.trace_recorder = &db_->trace_recorder();
  auto c = Connect(copts);
  ASSERT_TRUE(c->Ping().ok());

  // Let the server reap the idle connection; the client discovers the
  // dead transport on its next call.
  for (int i = 0; i < 500 && server_->stats().idle_closed.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(server_->stats().idle_closed.load(), 1u);
  ASSERT_FALSE(c->Ping().ok());  // discovers the close, marks fd dead

  // A caller-stamped trace id must ride through the transparent
  // re-dial + re-handshake untouched.
  constexpr uint64_t kTrace = 0xABCDEF12345ULL;
  auto r = c->Call(Command::Ping().WithTrace(kTrace, 0));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->ok());
  EXPECT_GE(c->stats().reconnects, 1u);

  bool client_side = false, server_side = false;
  for (const auto& ev : db_->trace_recorder().Drain()) {
    if (ev.tid != kTrace) continue;
    if (ev.type == TraceEventType::kClientRpc) client_side = true;
    if (ev.type == TraceEventType::kRpcExecute) server_side = true;
  }
  EXPECT_TRUE(client_side);
  EXPECT_TRUE(server_side);
}

// --- Reset mid-batch aborts the open transaction ----------------------

TEST_F(ServerChaosTest, ResetDuringPipelinedBatchAbortsOpenTxn) {
  StartServer();
  {
    auto victim = Connect();
    ASSERT_TRUE(victim->Begin().ok());
    victim->Send(Command::Create(std::vector<uint8_t>{1}));
    victim->Send(Command::Create(std::vector<uint8_t>{2}));
    ASSERT_TRUE(victim->Flush().ok());
    // Destruction closes the socket with the batch's replies unread —
    // the server finds the peer gone mid-conversation and must abort
    // the connection's open transaction.
  }
  // The abrupt close aborts the victim's open transaction exactly once.
  for (int i = 0; i < 500; ++i) {
    if (ServerMetric("asset_server_open_txns") == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(ServerMetric("asset_server_open_txns"), 0);
  EXPECT_GE(ServerMetric("asset_server_txns_aborted_on_close_total"), 1);
}

// --- The long haul: 1000+ faulted iterations, zero hangs --------------

TEST_F(ServerChaosTest, ThousandFaultedTransactionsNoHangsNoLeaks) {
  StartServer();
  // Deterministic fault pattern keyed off a shared call counter:
  // every transfer is clamped, every 5th call takes EINTR, every 64th
  // stalls a moment. No call in the loop may hang or fail.
  std::atomic<uint64_t> calls{0};
  SocketHooks hooks;
  auto fault = [&calls](size_t len) -> ssize_t {
    uint64_t n = calls.fetch_add(1, std::memory_order_relaxed);
    if (n % 5 == 4) {
      errno = EINTR;
      return -1;
    }
    if (n % 64 == 63) {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    size_t clamp = 1 + (n % 96);
    return static_cast<ssize_t>(std::min(len, clamp));
  };
  hooks.send = [&fault](int fd, const void* buf, size_t len, int flags) {
    ssize_t budget = fault(len);
    if (budget < 0) return budget;
    return ::send(fd, buf, static_cast<size_t>(budget), flags);
  };
  hooks.recv = [&fault](int fd, void* buf, size_t len, int flags) {
    ssize_t budget = fault(len);
    if (budget < 0) return budget;
    return ::recv(fd, buf, static_cast<size_t>(budget), flags);
  };
  {
    ScopedSocketHooks guard(&hooks);
    Client::Options copts;
    copts.io_timeout = std::chrono::seconds(10);
    copts.default_deadline_ms = 5000;
    auto c = Connect(copts);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(c->Begin().ok()) << "iteration " << i;
      auto oid = c->Create({static_cast<uint8_t>(i), 2, 3});
      ASSERT_TRUE(oid.ok()) << "iteration " << i;
      ASSERT_TRUE(c->Put(*oid, {4, 5, 6}).ok()) << "iteration " << i;
      auto bytes = c->Get(*oid);
      ASSERT_TRUE(bytes.ok()) << "iteration " << i;
      ASSERT_EQ(bytes->size(), 3u);
      ASSERT_TRUE(i % 2 == 0 ? c->Commit().ok() : c->Abort().ok())
          << "iteration " << i;
    }
    EXPECT_EQ(ServerMetric("asset_server_open_txns"), 0);
    c.reset();
    server_->Shutdown();  // join all traffic before the hook dies
  }
  server_.reset();
}

}  // namespace
}  // namespace asset
