// The redesigned transaction API surface: the RAII Txn handle on
// Database (commit / abort / destructor-abort / move semantics) and the
// Status-returning BeginTxn / CommitTxn / AbortTxn overloads, including
// the all-or-nothing group Begin.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/database_internal.h"

namespace asset {
namespace {

class TxnApiTest : public ::testing::Test {
 protected:
  TxnApiTest() : db_(Database::Open().value()) {}

  /// Creates and commits an int64 object, returning its id.
  ObjectId MakeInt(int64_t value) {
    Txn t = db_->Begin().value();
    ObjectId oid = t.Create<int64_t>(value).value();
    EXPECT_TRUE(t.Commit().ok());
    return oid;
  }

  int64_t Committed(ObjectId oid) {
    Txn t = db_->Begin().value();
    int64_t v = t.Get<int64_t>(oid).value();
    EXPECT_TRUE(t.Commit().ok());
    return v;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(TxnApiTest, CommitPublishesChanges) {
  Txn t = db_->Begin().value();
  EXPECT_TRUE(t.active());
  EXPECT_NE(t.id(), kNullTid);
  ObjectId oid = t.Create<int64_t>(7).value();
  EXPECT_EQ(t.Get<int64_t>(oid).value(), 7);
  EXPECT_TRUE(t.Commit().ok());
  EXPECT_FALSE(t.active());
  EXPECT_EQ(t.id(), kNullTid);
  EXPECT_EQ(Committed(oid), 7);
}

TEST_F(TxnApiTest, AbortRollsBack) {
  ObjectId oid = MakeInt(1);
  Txn t = db_->Begin().value();
  EXPECT_TRUE(t.Put<int64_t>(oid, 2).ok());
  EXPECT_TRUE(t.Abort().ok());
  EXPECT_FALSE(t.active());
  EXPECT_EQ(Committed(oid), 1);
}

TEST_F(TxnApiTest, DestructorAbortsAnActiveHandle) {
  ObjectId oid = MakeInt(1);
  {
    Txn t = db_->Begin().value();
    EXPECT_TRUE(t.Put<int64_t>(oid, 3).ok());
    // No Commit: leaving the scope must abort, not leak a lock-holding
    // transaction or publish the write.
  }
  EXPECT_EQ(Committed(oid), 1);
}

TEST_F(TxnApiTest, CountersWorkThroughTheHandle) {
  Txn t = db_->Begin().value();
  ObjectId c = t.CreateCounter(10).value();
  EXPECT_TRUE(t.Add(c, 5).ok());
  EXPECT_EQ(t.GetCounter(c).value(), 15);
  EXPECT_TRUE(t.Commit().ok());
}

TEST_F(TxnApiTest, MoveTransfersOwnership) {
  ObjectId oid = MakeInt(1);
  Txn a = db_->Begin().value();
  EXPECT_TRUE(a.Put<int64_t>(oid, 5).ok());
  Tid id = a.id();

  Txn b = std::move(a);
  EXPECT_FALSE(a.active());
  EXPECT_EQ(a.id(), kNullTid);
  EXPECT_TRUE(b.active());
  EXPECT_EQ(b.id(), id);
  // The moved-from handle is inert: no operation reaches the kernel.
  EXPECT_TRUE(a.Put<int64_t>(oid, 9).IsIllegalState());
  EXPECT_TRUE(a.Commit().IsIllegalState());

  EXPECT_TRUE(b.Commit().ok());
  EXPECT_EQ(Committed(oid), 5);
}

TEST_F(TxnApiTest, MoveAssignmentAbortsTheOverwrittenTransaction) {
  ObjectId oid = MakeInt(1);
  Txn doomed = db_->Begin().value();
  EXPECT_TRUE(doomed.Put<int64_t>(oid, 8).ok());

  Txn replacement = db_->Begin().value();
  doomed = std::move(replacement);  // aborts the write of 8
  EXPECT_TRUE(doomed.active());
  EXPECT_FALSE(replacement.active());
  EXPECT_TRUE(doomed.Commit().ok());
  EXPECT_EQ(Committed(oid), 1);
}

TEST_F(TxnApiTest, InactiveHandleRejectsEverything) {
  Txn t = db_->Begin().value();
  EXPECT_TRUE(t.Commit().ok());
  EXPECT_TRUE(t.Commit().IsIllegalState());
  EXPECT_TRUE(t.Abort().IsIllegalState());
  EXPECT_TRUE(t.Read(1).status().IsIllegalState());
  EXPECT_TRUE(t.Get<int64_t>(1).status().IsIllegalState());
  EXPECT_TRUE(t.Add(1, 1).IsIllegalState());

  Txn never;  // default-constructed: same contract
  EXPECT_FALSE(never.active());
  EXPECT_TRUE(never.Commit().IsIllegalState());
}

// --- Status-returning kernel overloads ---------------------------------

TEST_F(TxnApiTest, BeginTxnReportsUnknownTid) {
  Status s = KernelOf(*db_).BeginTxn(987654);
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(TxnApiTest, CommitTxnCarriesTheAbortReason) {
  TransactionManager& tm = KernelOf(*db_);
  Tid t = tm.Initiate([] {});
  ASSERT_TRUE(tm.Begin(t));
  ASSERT_TRUE(tm.Abort(t));
  Status s = tm.CommitTxn(t);
  EXPECT_TRUE(s.IsTxnAborted());
  EXPECT_NE(s.message().find("abort"), std::string::npos) << s.message();

  EXPECT_TRUE(tm.CommitTxn(987654).IsNotFound());
}

TEST_F(TxnApiTest, AbortTxnAfterCommitIsIllegal) {
  TransactionManager& tm = KernelOf(*db_);
  Tid t = tm.Initiate([] {});
  ASSERT_TRUE(tm.Begin(t));
  ASSERT_TRUE(tm.Commit(t));
  EXPECT_TRUE(tm.AbortTxn(t).IsIllegalState());
}

TEST_F(TxnApiTest, GroupBeginIsAllOrNothing) {
  TransactionManager& tm = KernelOf(*db_);
  Tid valid = tm.Initiate([] {});
  // One bogus tid poisons the whole call: nothing starts.
  EXPECT_FALSE(tm.Begin({valid, Tid{987654}}));
  EXPECT_EQ(tm.GetStatus(valid), TxnStatus::kInitiated);
  // The survivor is untouched and begins normally afterwards.
  EXPECT_TRUE(tm.Begin(valid));
  EXPECT_TRUE(tm.Commit(valid));
}

// Regression: validation and the transitions to running happen under
// one kernel-mutex hold, so an abort racing the group Begin either
// lands before it (nothing starts) or after it (everything started) —
// never in between, with some members started and some not.
TEST_F(TxnApiTest, GroupBeginStartsNothingWhenAMemberAbortsConcurrently) {
  TransactionManager& tm = KernelOf(*db_);
  for (int round = 0; round < 50; ++round) {
    Tid t1 = tm.Initiate([] {});
    Tid t2 = tm.Initiate([] {});
    Tid t3 = tm.Initiate([] {});
    std::thread aborter([&] { tm.AbortTxn(t2); });
    bool started = tm.Begin({t1, t2, t3});
    aborter.join();
    if (started) {
      // The abort lost the race to the atomic start: every member
      // began. t2 terminates either way depending on when the abort
      // landed; its peers must be commit-able.
      EXPECT_TRUE(tm.Commit(t1));
      tm.Commit(t2);
      EXPECT_TRUE(tm.Commit(t3));
    } else {
      // The abort won: no member was started.
      EXPECT_EQ(tm.GetStatus(t1), TxnStatus::kInitiated);
      EXPECT_EQ(tm.GetStatus(t3), TxnStatus::kInitiated);
      EXPECT_TRUE(tm.AbortTxn(t1).ok());
      EXPECT_TRUE(tm.AbortTxn(t3).ok());
    }
  }
}

// Regression: aborting a caller-driven session transaction from another
// thread while the driving thread is mid-data-op must not tear down its
// locks/undo under the operation. The kernel defers the physical abort
// until the in-flight operation is out, so the driver sees clean
// kTxnAborted failures and the committed image survives the undo.
TEST_F(TxnApiTest, ConcurrentAbortOfSessionTransactionMidOperation) {
  TransactionManager& tm = KernelOf(*db_);
  ObjectId oid = MakeInt(42);
  const std::vector<uint8_t> garbage(sizeof(int64_t), 0x5A);
  for (int round = 0; round < 20; ++round) {
    Tid t = tm.BeginSession().value();
    std::thread driver([&] {
      // Hammer data operations until the abort lands; each either
      // completes fully (and is undone) or fails with kTxnAborted.
      for (;;) {
        Status s = tm.Write(t, oid, garbage);
        if (!s.ok()) {
          EXPECT_TRUE(s.IsTxnAborted());
          return;
        }
        auto r = tm.Read(t, oid);
        if (!r.ok()) {
          EXPECT_TRUE(r.status().IsTxnAborted());
          return;
        }
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(50 + 97 * round));
    ASSERT_TRUE(tm.AbortTxn(t).ok());
    driver.join();
    EXPECT_EQ(tm.GetStatus(t), TxnStatus::kAborted);
    EXPECT_EQ(Committed(oid), 42);
  }
}


// --- Handle affordances: id(), operator bool, last_status, moves -----

TEST_F(TxnApiTest, HandleExposesIdAndBoolConversion) {
  Txn t = db_->Begin().value();
  EXPECT_NE(t.id(), kNullTid);
  EXPECT_TRUE(static_cast<bool>(t));
  EXPECT_TRUE(db_->IsActiveTxn(t.id()));
  ASSERT_TRUE(t.Commit().ok());
  EXPECT_FALSE(static_cast<bool>(t));
  EXPECT_EQ(t.id(), kNullTid);

  Txn fresh;
  EXPECT_FALSE(static_cast<bool>(fresh));
  EXPECT_EQ(fresh.id(), kNullTid);
}

TEST_F(TxnApiTest, LastStatusTracksEveryOperation) {
  Txn t = db_->Begin().value();
  EXPECT_TRUE(t.last_status().ok());  // fresh handle

  ObjectId oid = t.Create<int64_t>(1).value();
  EXPECT_TRUE(t.last_status().ok());

  // A failing read is recorded...
  EXPECT_FALSE(t.Get<int64_t>(9999999).ok());
  EXPECT_FALSE(t.last_status().ok());

  // ...and the next success overwrites it (client-handle style: chain
  // operations, check once).
  EXPECT_TRUE(t.Put<int64_t>(oid, 2).ok());
  EXPECT_TRUE(t.last_status().ok());

  ASSERT_TRUE(t.Commit().ok());
  EXPECT_TRUE(t.last_status().ok());  // Commit outcome is recorded too

  // Operations on the now-inactive handle record IllegalState.
  EXPECT_FALSE(t.Put<int64_t>(oid, 3).ok());
  EXPECT_EQ(t.last_status().code(), StatusCode::kIllegalState);
}

TEST_F(TxnApiTest, MoveResetsSourceAffordances) {
  Txn a = db_->Begin().value();
  EXPECT_FALSE(a.Get<int64_t>(9999999).ok());  // taint last_status
  Tid id = a.id();

  Txn b = std::move(a);
  // The moved-from handle reads as inactive with a clean status; the
  // destination carries the transaction AND the last_status record.
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_EQ(a.id(), kNullTid);
  EXPECT_TRUE(a.last_status().ok());
  EXPECT_EQ(b.id(), id);
  EXPECT_FALSE(b.last_status().ok());

  ASSERT_TRUE(b.Commit().ok());
}

// --- Options::Validate ------------------------------------------------

TEST(DatabaseOptionsTest, ValidateRejectsNonsense) {
  {
    Database::Options o;
    o.buffer_pool_pages = 0;
    EXPECT_FALSE(o.Validate().ok());
    EXPECT_FALSE(Database::Open(o).ok());
  }
  {
    Database::Options o;
    o.txn.max_transactions = 0;
    EXPECT_FALSE(o.Validate().ok());
    EXPECT_FALSE(Database::Open(o).ok());
  }
  {
    Database::Options o;
    o.txn.commit_timeout = std::chrono::milliseconds(-5);
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    Database::Options o;
    o.txn.lock.lock_timeout = std::chrono::milliseconds(-1);
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    Database::Options o;
    o.txn.lock.shards = 0;
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    Database::Options o;
    o.checkpoint.interval = std::chrono::milliseconds(-1);
    EXPECT_FALSE(o.Validate().ok());
  }
  {
    Database::Options o;
    EXPECT_TRUE(o.Validate().ok());
    EXPECT_TRUE(Database::Open(o).ok());
  }
}

}  // namespace
}  // namespace asset
