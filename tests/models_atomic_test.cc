// Atomic-transaction model (§3.1.1): commit-on-success,
// nothing-on-abort, retry helper.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/database.h"
#include "kernel_fixture.h"
#include "models/atomic.h"

namespace asset {
namespace {

class AtomicModelTest : public KernelFixture {};

TEST_F(AtomicModelTest, CommitsAndPersists) {
  ObjectId oid = MakeObject("0");
  bool ok = models::RunAtomic(*tm_, [&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("1")).ok());
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(ReadCommitted(oid), "1");
}

TEST_F(AtomicModelTest, SelfAbortLeavesNoTrace) {
  ObjectId oid = MakeObject("0");
  bool ok = models::RunAtomic(*tm_, [&] {
    Tid self = TransactionManager::Self();
    tm_->Write(self, oid, TestBytes("dirty")).ok();
    tm_->Abort(self);
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(ReadCommitted(oid), "0");
}

TEST_F(AtomicModelTest, AllOrNothingAcrossObjects) {
  ObjectId a = MakeObject("a0");
  ObjectId b = MakeObject("b0");
  bool ok = models::RunAtomic(*tm_, [&] {
    Tid self = TransactionManager::Self();
    tm_->Write(self, a, TestBytes("a1")).ok();
    tm_->Write(self, b, TestBytes("b1")).ok();
    tm_->Abort(self);
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(ReadCommitted(a), "a0");
  EXPECT_EQ(ReadCommitted(b), "b0");
}

TEST_F(AtomicModelTest, RetrySucceedsAfterTransientAborts) {
  ObjectId oid = MakeObject("0");
  std::atomic<int> attempts{0};
  bool ok = models::RunAtomicWithRetry(
      *tm_,
      [&] {
        Tid self = TransactionManager::Self();
        if (attempts.fetch_add(1) < 2) {
          tm_->Abort(self);  // fail the first two attempts
          return;
        }
        ASSERT_TRUE(tm_->Write(self, oid, TestBytes("done")).ok());
      },
      5);
  EXPECT_TRUE(ok);
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(ReadCommitted(oid), "done");
}

TEST_F(AtomicModelTest, RetryGivesUpAfterMaxAttempts) {
  std::atomic<int> attempts{0};
  bool ok = models::RunAtomicWithRetry(
      *tm_,
      [&] {
        attempts.fetch_add(1);
        tm_->Abort(TransactionManager::Self());
      },
      3);
  EXPECT_FALSE(ok);
  EXPECT_EQ(attempts.load(), 3);
}

TEST_F(AtomicModelTest, ConcurrentAtomicIncrementsSerialize) {
  // The classic counter: N concurrent read-modify-write transactions
  // must not lose updates under strict 2PL.
  ObjectId oid = kNullObjectId;
  {
    Tid t = tm_->Initiate([&] {
      oid = tm_->CreateObject(TransactionManager::Self(),
                              Database::Encode<int64_t>(0))
                .value();
    });
    tm_->Begin(t);
    ASSERT_TRUE(tm_->Commit(t));
  }
  constexpr int kThreads = 8, kIncrements = 10;
  std::vector<std::thread> threads;
  std::atomic<int> committed{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < kIncrements; ++k) {
        bool ok = models::RunAtomicWithRetry(
            *tm_,
            [&] {
              Tid self = TransactionManager::Self();
              auto bytes = tm_->Read(self, oid);
              if (!bytes.ok()) return;
              int64_t v = Database::Decode<int64_t>(*bytes).value();
              tm_->Write(self, oid, Database::Encode<int64_t>(v + 1)).ok();
            },
            50);
        if (ok) committed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  Tid t = tm_->Initiate([&] {
    auto bytes = tm_->Read(TransactionManager::Self(), oid);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(Database::Decode<int64_t>(*bytes).value(), committed.load());
  });
  tm_->Begin(t);
  ASSERT_TRUE(tm_->Commit(t));
  EXPECT_GT(committed.load(), 0);
}

}  // namespace
}  // namespace asset
