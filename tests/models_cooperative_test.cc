// Cooperative-group model (§3.2.1): mutual permits over a shared object
// set with ordered (CD), atomic (GC), or no commit coupling.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kernel_fixture.h"
#include "models/cooperative.h"

namespace asset {
namespace {

using namespace std::chrono_literals;

class CooperativeModelTest : public KernelFixture {};

TEST_F(CooperativeModelTest, MembersInterleaveOnSharedObject) {
  ObjectId design = MakeObject("rev0");
  std::atomic<int> step{0};
  std::atomic<bool> failed{false};
  auto designer = [&](int me, const char* mark) {
    Tid self = TransactionManager::Self();
    for (int r = 0; r < 3; ++r) {
      while (step.load() % 2 != me) std::this_thread::sleep_for(100us);
      if (!tm_->Write(self, design, TestBytes(mark)).ok()) {
        failed = true;
        return;
      }
      step.fetch_add(1);
    }
  };
  Tid a = tm_->Initiate([&] { designer(0, "alice"); });
  Tid b = tm_->Initiate([&] { designer(1, "bob"); });
  models::CooperativeGroup group(*tm_, ObjectSet{design},
                                 models::CommitCoupling::kOrdered);
  ASSERT_TRUE(group.Enroll(a).ok());
  ASSERT_TRUE(group.Enroll(b).ok());
  ASSERT_TRUE(tm_->Begin({a, b}));
  EXPECT_TRUE(group.CommitAll());
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(ReadCommitted(design), "bob");  // bob writes last
}

TEST_F(CooperativeModelTest, OrderedCouplingBlocksLateMemberCommit) {
  ObjectId obj = MakeObject("0");
  Tid a = tm_->Initiate([] { std::this_thread::sleep_for(120ms); });
  Tid b = tm_->Initiate([] {});
  models::CooperativeGroup group(*tm_, ObjectSet{obj},
                                 models::CommitCoupling::kOrdered);
  ASSERT_TRUE(group.Enroll(a).ok());
  ASSERT_TRUE(group.Enroll(b).ok());  // b carries CD on a
  ASSERT_TRUE(tm_->Begin({a, b}));
  std::atomic<bool> b_committed{false};
  std::thread committer([&] {
    EXPECT_TRUE(tm_->Commit(b));
    b_committed = true;
  });
  std::this_thread::sleep_for(40ms);
  EXPECT_FALSE(b_committed.load());  // a still running: CD blocks b
  EXPECT_TRUE(tm_->Commit(a));
  committer.join();
  EXPECT_TRUE(b_committed.load());
}

TEST_F(CooperativeModelTest, OrderedCouplingLetsLateMemberOutliveAbort) {
  // CD only: if the earlier member aborts, the later may still commit.
  ObjectId obj = MakeObject("0");
  Tid a = tm_->Initiate([] {});
  Tid b = tm_->Initiate([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), obj, TestBytes("b")).ok());
  });
  models::CooperativeGroup group(*tm_, ObjectSet{obj},
                                 models::CommitCoupling::kOrdered);
  ASSERT_TRUE(group.Enroll(a).ok());
  ASSERT_TRUE(group.Enroll(b).ok());
  ASSERT_TRUE(tm_->Begin({a, b}));
  EXPECT_TRUE(tm_->Abort(a));
  EXPECT_TRUE(tm_->Commit(b));
  EXPECT_EQ(ReadCommitted(obj), "b");
}

TEST_F(CooperativeModelTest, AtomicCouplingCommitsTogether) {
  ObjectId obj = MakeObject("0");
  Tid a = tm_->Initiate([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), obj, TestBytes("a")).ok());
  });
  Tid b = tm_->Initiate([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), obj, TestBytes("b")).ok());
  });
  models::CooperativeGroup group(*tm_, ObjectSet{obj},
                                 models::CommitCoupling::kAtomic);
  ASSERT_TRUE(group.Enroll(a).ok());
  ASSERT_TRUE(group.Enroll(b).ok());
  ASSERT_TRUE(tm_->Begin({a, b}));
  EXPECT_TRUE(group.CommitAll());
  EXPECT_EQ(tm_->GetStatus(a), TxnStatus::kCommitted);
  EXPECT_EQ(tm_->GetStatus(b), TxnStatus::kCommitted);
}

TEST_F(CooperativeModelTest, AtomicCouplingAbortsTogether) {
  ObjectId obj = MakeObject("0");
  Tid a = tm_->Initiate([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), obj, TestBytes("a")).ok());
  });
  Tid b = tm_->Initiate([&] {
    tm_->Write(TransactionManager::Self(), obj, TestBytes("b")).ok();
    tm_->Abort(TransactionManager::Self());  // design rejected
  });
  models::CooperativeGroup group(*tm_, ObjectSet{obj},
                                 models::CommitCoupling::kAtomic);
  ASSERT_TRUE(group.Enroll(a).ok());
  ASSERT_TRUE(group.Enroll(b).ok());
  ASSERT_TRUE(tm_->Begin({a, b}));
  EXPECT_FALSE(group.CommitAll());
  EXPECT_EQ(tm_->GetStatus(a), TxnStatus::kAborted);
  EXPECT_EQ(tm_->GetStatus(b), TxnStatus::kAborted);
  EXPECT_EQ(ReadCommitted(obj), "0");
}

TEST_F(CooperativeModelTest, PermitsLimitedToSharedObjects) {
  ObjectId shared = MakeObject("0");
  ObjectId priv = MakeObject("0");
  std::atomic<bool> a_ready{false}, release{false};
  Tid a = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Write(self, shared, TestBytes("a")).ok());
    ASSERT_TRUE(tm_->Write(self, priv, TestBytes("a-private")).ok());
    a_ready = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  std::atomic<bool> b_shared_ok{false};
  std::atomic<bool> b_priv_blocked{false};
  Tid b = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    b_shared_ok = tm_->Write(self, shared, TestBytes("b")).ok();
    Status s = tm_->Write(self, priv, TestBytes("b-intrusion"));
    b_priv_blocked = s.IsTimedOut() || s.IsDeadlock();
    release = true;
  });
  models::CooperativeGroup group(*tm_, ObjectSet{shared},
                                 models::CommitCoupling::kNone);
  ASSERT_TRUE(group.Enroll(a).ok());
  ASSERT_TRUE(group.Enroll(b).ok());
  ASSERT_TRUE(tm_->Begin(a));
  while (!a_ready) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(tm_->Begin(b));
  tm_->Wait(b);
  tm_->Abort(b);  // settles b's thread before the flags are read
  EXPECT_TRUE(b_shared_ok.load());    // permitted on the shared object
  EXPECT_TRUE(b_priv_blocked.load()); // but not on a's private object
  tm_->Commit(a);
}

TEST_F(CooperativeModelTest, ThreeWayCooperation) {
  ObjectId obj = MakeObject("0");
  std::vector<Tid> tids;
  std::atomic<int> writes_ok{0};
  std::atomic<int> turn{0};
  for (int i = 0; i < 3; ++i) {
    tids.push_back(tm_->Initiate([&, i] {
      Tid self = TransactionManager::Self();
      while (turn.load() != i) std::this_thread::sleep_for(100us);
      if (tm_->Write(self, obj, TestBytes("m" + std::to_string(i))).ok()) {
        writes_ok.fetch_add(1);
      }
      turn.fetch_add(1);
    }));
  }
  models::CooperativeGroup group(*tm_, ObjectSet{obj},
                                 models::CommitCoupling::kAtomic);
  for (Tid t : tids) ASSERT_TRUE(group.Enroll(t).ok());
  for (Tid t : tids) ASSERT_TRUE(tm_->Begin(t));
  EXPECT_TRUE(group.CommitAll());
  EXPECT_EQ(writes_ok.load(), 3);
  EXPECT_EQ(ReadCommitted(obj), "m2");
}

}  // namespace
}  // namespace asset
