// Tests for the object store: CRUD, growth across pages, directory
// rebuild on Open, idempotent apply operations, and concurrency.

#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "storage/object_store.h"

namespace asset {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

class ObjectStoreTest : public ::testing::Test {
 protected:
  ObjectStoreTest() : pool_(&disk_, 64), store_(&pool_) {
    EXPECT_TRUE(store_.Open().ok());
  }
  InMemoryDiskManager disk_;
  BufferPool pool_;
  ObjectStore store_;
};

TEST_F(ObjectStoreTest, CreateReadRoundTrip) {
  auto oid = store_.Create(Bytes("value-1"));
  ASSERT_TRUE(oid.ok());
  auto back = store_.Read(*oid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, Bytes("value-1"));
  EXPECT_TRUE(store_.Exists(*oid));
  EXPECT_EQ(store_.NumObjects(), 1u);
}

TEST_F(ObjectStoreTest, CreateAssignsDistinctIds) {
  auto a = store_.Create(Bytes("a")).value();
  auto b = store_.Create(Bytes("b")).value();
  EXPECT_NE(a, b);
}

TEST_F(ObjectStoreTest, CreateWithIdAndCollision) {
  ASSERT_TRUE(store_.CreateWithId(42, Bytes("answer")).ok());
  EXPECT_EQ(*store_.Read(42), Bytes("answer"));
  EXPECT_TRUE(store_.CreateWithId(42, Bytes("again")).IsIllegalState());
  EXPECT_EQ(store_.CreateWithId(kNullObjectId, Bytes("x")).code(),
            StatusCode::kInvalidArgument);
  // Store-assigned ids must not collide with user-chosen ones.
  auto next = store_.Create(Bytes("fresh")).value();
  EXPECT_GT(next, 42u);
}

TEST_F(ObjectStoreTest, WriteChangesValueAndSize) {
  auto oid = store_.Create(Bytes("short")).value();
  ASSERT_TRUE(store_.Write(oid, Bytes("a much longer replacement")).ok());
  EXPECT_EQ(*store_.Read(oid), Bytes("a much longer replacement"));
  ASSERT_TRUE(store_.Write(oid, Bytes("s")).ok());
  EXPECT_EQ(*store_.Read(oid), Bytes("s"));
}

TEST_F(ObjectStoreTest, MissingObjectIsNotFound) {
  EXPECT_TRUE(store_.Read(999).status().IsNotFound());
  EXPECT_TRUE(store_.Write(999, Bytes("x")).IsNotFound());
  EXPECT_TRUE(store_.Delete(999).IsNotFound());
  EXPECT_FALSE(store_.Exists(999));
}

TEST_F(ObjectStoreTest, DeleteRemoves) {
  auto oid = store_.Create(Bytes("temp")).value();
  ASSERT_TRUE(store_.Delete(oid).ok());
  EXPECT_FALSE(store_.Exists(oid));
  EXPECT_TRUE(store_.Read(oid).status().IsNotFound());
}

TEST_F(ObjectStoreTest, ManyObjectsSpanPages) {
  std::vector<uint8_t> blob(1000, 0xCD);
  std::vector<ObjectId> oids;
  for (int i = 0; i < 100; ++i) {  // ~100KB >> one 8KB page
    oids.push_back(store_.Create(blob).value());
  }
  EXPECT_GT(disk_.NumPages(), 10u);
  for (ObjectId oid : oids) {
    EXPECT_EQ(store_.Read(oid)->size(), blob.size());
  }
}

TEST_F(ObjectStoreTest, GrownObjectMigratesAcrossPages) {
  // Nearly fill a page, then grow one object past its page's space.
  auto oid = store_.Create(Bytes("seed")).value();
  std::vector<uint8_t> filler(3000, 1);
  store_.Create(filler).value();
  store_.Create(filler).value();
  std::vector<uint8_t> big(5000, 2);
  ASSERT_TRUE(store_.Write(oid, big).ok());
  EXPECT_EQ(*store_.Read(oid), big);
}

TEST_F(ObjectStoreTest, OpenRebuildsDirectory) {
  auto a = store_.Create(Bytes("alpha")).value();
  auto b = store_.Create(Bytes("beta")).value();
  ASSERT_TRUE(store_.Delete(a).ok());
  ASSERT_TRUE(pool_.FlushAll().ok());

  ObjectStore reopened(&pool_);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_FALSE(reopened.Exists(a));
  EXPECT_EQ(*reopened.Read(b), Bytes("beta"));
  // next_oid must resume past the highest seen id.
  auto c = reopened.Create(Bytes("gamma")).value();
  EXPECT_GT(c, b);
}

TEST_F(ObjectStoreTest, ApplyPutCreatesOrOverwrites) {
  ASSERT_TRUE(store_.ApplyPut(5, Bytes("v1")).ok());
  EXPECT_EQ(*store_.Read(5), Bytes("v1"));
  ASSERT_TRUE(store_.ApplyPut(5, Bytes("v2")).ok());
  EXPECT_EQ(*store_.Read(5), Bytes("v2"));
}

TEST_F(ObjectStoreTest, ApplyDeleteIsIdempotent) {
  ASSERT_TRUE(store_.ApplyPut(6, Bytes("gone")).ok());
  ASSERT_TRUE(store_.ApplyDelete(6).ok());
  ASSERT_TRUE(store_.ApplyDelete(6).ok());
  EXPECT_FALSE(store_.Exists(6));
}

TEST_F(ObjectStoreTest, ListObjectsMatchesLiveSet) {
  auto a = store_.Create(Bytes("1")).value();
  auto b = store_.Create(Bytes("2")).value();
  auto c = store_.Create(Bytes("3")).value();
  ASSERT_TRUE(store_.Delete(b).ok());
  auto list = store_.ListObjects();
  std::sort(list.begin(), list.end());
  EXPECT_EQ(list, (std::vector<ObjectId>{a, c}));
}

TEST_F(ObjectStoreTest, RejectsOversizedObject) {
  std::vector<uint8_t> huge(kPageSize, 1);
  EXPECT_EQ(store_.Create(huge).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ObjectStoreTest, ConcurrentReadersSeeStableValues) {
  auto oid = store_.Create(Bytes("stable")).value();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        auto v = store_.Read(oid);
        if (!v.ok() || *v != Bytes("stable")) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ObjectStoreTest, ConcurrentWritersToDistinctObjects) {
  std::vector<ObjectId> oids;
  for (int i = 0; i < 8; ++i) {
    oids.push_back(store_.Create(Bytes("init")).value());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        std::string v = "w" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(store_.Write(oids[t], Bytes(v)).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(*store_.Read(oids[t]),
              Bytes("w" + std::to_string(t) + "-199"));
  }
}

TEST_F(ObjectStoreTest, CounterEncodeDecodeAndDelta) {
  auto oid_r = store_.Create(ObjectStore::EncodeCounter(0, 100));
  ASSERT_TRUE(oid_r.ok());
  ObjectId oid = *oid_r;
  EXPECT_EQ(store_.ReadCounter(oid).value(), 100);
  // Deltas apply in lsn order, once each.
  EXPECT_EQ(store_.ApplyDelta(oid, 5, +7).value(), 107);
  EXPECT_EQ(store_.ApplyDelta(oid, 5, +7).value(), 107);  // replay: no-op
  EXPECT_EQ(store_.ApplyDelta(oid, 3, +1).value(), 107);  // stale: no-op
  EXPECT_EQ(store_.ApplyDelta(oid, 9, -7).value(), 100);
  EXPECT_EQ(store_.ReadCounter(oid).value(), 100);
}

TEST_F(ObjectStoreTest, CounterRejectsWrongShape) {
  auto oid = store_.Create(Bytes("just bytes")).value();
  EXPECT_EQ(store_.ReadCounter(oid).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store_.ApplyDelta(oid, 1, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(store_.ApplyDelta(9999, 1, 1).status().IsNotFound());
}

TEST_F(ObjectStoreTest, SystemIdRangeIsReserved) {
  // Store-assigned ids never collide with the reserved system range.
  auto oid = store_.Create(Bytes("user object")).value();
  EXPECT_GE(oid, kFirstUserObjectId);
  // But system ids can be claimed explicitly (e.g. the catalog).
  ASSERT_TRUE(store_.CreateWithId(1, Bytes("catalog")).ok());
  EXPECT_EQ(*store_.Read(1), Bytes("catalog"));
}

}  // namespace
}  // namespace asset
