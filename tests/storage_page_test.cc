// Tests for the slotted page: insert/read/update/delete, compaction,
// checksums, and geometry invariants.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "storage/page.h"

namespace asset {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string Str(std::span<const uint8_t> b) {
  return std::string(b.begin(), b.end());
}

class PageTest : public ::testing::Test {
 protected:
  PageTest() : page_(buf_) { page_.Init(7); }
  uint8_t buf_[kPageSize];
  Page page_;
};

TEST_F(PageTest, InitProducesValidEmptyPage) {
  EXPECT_EQ(page_.page_id(), 7u);
  EXPECT_EQ(page_.SlotCount(), 0u);
  EXPECT_EQ(page_.GarbageBytes(), 0u);
  EXPECT_TRUE(page_.Validate().ok());
}

TEST_F(PageTest, InsertAndReadRoundTrip) {
  auto rec = Bytes("hello page");
  auto slot = page_.Insert(rec);
  ASSERT_TRUE(slot.ok());
  auto back = page_.Read(*slot);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(Str(*back), "hello page");
}

TEST_F(PageTest, MultipleRecordsKeepDistinctSlots) {
  for (int i = 0; i < 50; ++i) {
    auto slot = page_.Insert(Bytes("rec" + std::to_string(i)));
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(*slot, i);
  }
  for (int i = 0; i < 50; ++i) {
    auto back = page_.Read(static_cast<SlotId>(i));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(Str(*back), "rec" + std::to_string(i));
  }
}

TEST_F(PageTest, ReadInvalidSlotIsNotFound) {
  EXPECT_TRUE(page_.Read(0).status().IsNotFound());
  page_.Insert(Bytes("x")).value();
  EXPECT_TRUE(page_.Read(1).status().IsNotFound());
}

TEST_F(PageTest, DeleteTombstonesAndTracksGarbage) {
  auto slot = page_.Insert(Bytes("doomed")).value();
  ASSERT_TRUE(page_.Delete(slot).ok());
  EXPECT_FALSE(page_.IsLive(slot));
  EXPECT_EQ(page_.GarbageBytes(), 6u);
  EXPECT_TRUE(page_.Read(slot).status().IsNotFound());
  EXPECT_TRUE(page_.Delete(slot).IsNotFound());  // double delete
}

TEST_F(PageTest, UpdateSameSizeInPlace) {
  auto slot = page_.Insert(Bytes("aaaa")).value();
  ASSERT_TRUE(page_.Update(slot, Bytes("bbbb")).ok());
  EXPECT_EQ(Str(*page_.Read(slot)), "bbbb");
  EXPECT_EQ(page_.GarbageBytes(), 0u);
}

TEST_F(PageTest, UpdateShrinkLeavesGarbage) {
  auto slot = page_.Insert(Bytes("longervalue")).value();
  ASSERT_TRUE(page_.Update(slot, Bytes("tiny")).ok());
  EXPECT_EQ(Str(*page_.Read(slot)), "tiny");
  EXPECT_EQ(page_.GarbageBytes(), 11u - 4u);
}

TEST_F(PageTest, UpdateGrowRelocatesWithinPage) {
  auto s0 = page_.Insert(Bytes("first")).value();
  auto s1 = page_.Insert(Bytes("second")).value();
  ASSERT_TRUE(page_.Update(s0, Bytes("a considerably longer value")).ok());
  EXPECT_EQ(Str(*page_.Read(s0)), "a considerably longer value");
  EXPECT_EQ(Str(*page_.Read(s1)), "second");  // neighbor untouched
}

TEST_F(PageTest, CompactPreservesLiveSlotIds) {
  auto s0 = page_.Insert(Bytes("keep0")).value();
  auto s1 = page_.Insert(Bytes("drop1")).value();
  auto s2 = page_.Insert(Bytes("keep2")).value();
  ASSERT_TRUE(page_.Delete(s1).ok());
  page_.Compact();
  EXPECT_EQ(page_.GarbageBytes(), 0u);
  EXPECT_EQ(Str(*page_.Read(s0)), "keep0");
  EXPECT_EQ(Str(*page_.Read(s2)), "keep2");
  EXPECT_FALSE(page_.IsLive(s1));
}

TEST_F(PageTest, FillUntilFullThenCompactReclaims) {
  std::vector<SlotId> slots;
  std::vector<uint8_t> rec(100, 0xAB);
  for (;;) {
    auto slot = page_.Insert(rec);
    if (!slot.ok()) {
      EXPECT_EQ(slot.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    slots.push_back(*slot);
  }
  EXPECT_GT(slots.size(), 50u);
  // Free every other record; insertion must succeed again via compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.Delete(slots[i]).ok());
  }
  EXPECT_TRUE(page_.Insert(rec).ok());
}

TEST_F(PageTest, RejectsOversizedRecord) {
  std::vector<uint8_t> huge(kPageSize, 1);
  EXPECT_EQ(page_.Insert(huge).status().code(),
            StatusCode::kInvalidArgument);
  auto slot = page_.Insert(Bytes("ok")).value();
  EXPECT_EQ(page_.Update(slot, huge).code(), StatusCode::kInvalidArgument);
}

TEST_F(PageTest, MaxRecordSizeFitsExactly) {
  std::vector<uint8_t> max(Page::MaxRecordSize(), 7);
  auto slot = page_.Insert(max);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(page_.Read(*slot)->size(), Page::MaxRecordSize());
}

TEST_F(PageTest, ChecksumDetectsCorruption) {
  page_.Insert(Bytes("guarded")).value();
  page_.UpdateChecksum();
  ASSERT_TRUE(page_.Validate().ok());
  buf_[kPageSize / 2] ^= 0xFF;
  EXPECT_EQ(page_.Validate().code(), StatusCode::kCorruption);
}

TEST_F(PageTest, ValidateRejectsZeroPage) {
  std::memset(buf_, 0, kPageSize);
  EXPECT_FALSE(Page(buf_).Validate().ok());
}

TEST_F(PageTest, LsnRoundTrips) {
  page_.set_lsn(12345);
  EXPECT_EQ(page_.lsn(), 12345u);
}

// Randomized workout: interleaved inserts/updates/deletes against a
// shadow map, then full verification.
TEST(PageFuzzTest, ShadowModelAgreesAfterRandomOps) {
  uint8_t buf[kPageSize];
  Page page(buf);
  page.Init(1);
  Random rng(42);
  std::vector<std::pair<SlotId, std::vector<uint8_t>>> shadow;
  for (int step = 0; step < 2000; ++step) {
    int action = static_cast<int>(rng.Uniform(3));
    if (action == 0 || shadow.empty()) {
      std::vector<uint8_t> rec(rng.Range(1, 64));
      for (auto& b : rec) b = static_cast<uint8_t>(rng.Next());
      auto slot = page.Insert(rec);
      if (slot.ok()) shadow.emplace_back(*slot, rec);
    } else if (action == 1) {
      size_t pick = rng.Uniform(shadow.size());
      std::vector<uint8_t> rec(rng.Range(1, 96));
      for (auto& b : rec) b = static_cast<uint8_t>(rng.Next());
      if (page.Update(shadow[pick].first, rec).ok()) {
        shadow[pick].second = rec;
      }
    } else {
      size_t pick = rng.Uniform(shadow.size());
      ASSERT_TRUE(page.Delete(shadow[pick].first).ok());
      shadow.erase(shadow.begin() + pick);
    }
  }
  for (const auto& [slot, expect] : shadow) {
    auto back = page.Read(slot);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(std::equal(back->begin(), back->end(), expect.begin(),
                           expect.end()));
  }
  page.UpdateChecksum();
  EXPECT_TRUE(page.Validate().ok());
}

}  // namespace
}  // namespace asset
