// The command-layer codec: roundtrips for every command and reply
// shape, strictness against malformed/truncated/oversized payloads
// (the server closes a connection on any decode failure, so every
// rejection here is a connection the wire layer refuses to mis-parse),
// and the frame splitter itself.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "api/command.h"
#include "api/session.h"
#include "api/wire.h"
#include "core/database.h"

namespace asset::api {
namespace {

std::vector<uint8_t> Encode(const Command& cmd) {
  std::vector<uint8_t> out;
  EncodeCommand(cmd, &out);
  return out;
}

Command Roundtrip(const Command& cmd) {
  auto decoded = DecodeCommand(Encode(cmd));
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return decoded.ValueOr(Command{});
}

TEST(WireTest, WriterReaderRoundtrip) {
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutString("hello");

  WireReader r(buf);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU16(&u16));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetI64(&i64));
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, ReaderRejectsTruncationAndStaysFailed) {
  std::vector<uint8_t> buf = {0x01, 0x02};
  WireReader r(buf);
  uint32_t v;
  EXPECT_FALSE(r.GetU32(&v));
  EXPECT_FALSE(r.ok());
  uint8_t b;
  EXPECT_FALSE(r.GetU8(&b));  // sticky: no reads after a failure
}

TEST(WireTest, ReaderRejectsLyingInnerLength) {
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  w.PutU32(1000);  // claims 1000 bytes follow
  buf.push_back(0x55);
  WireReader r(buf);
  std::vector<uint8_t> out;
  EXPECT_FALSE(r.GetBytes(&out));
  EXPECT_FALSE(r.ok());
}

TEST(WireTest, FrameSplitStates) {
  std::vector<uint8_t> buf;
  std::span<const uint8_t> payload;
  EXPECT_EQ(TrySplitFrame(buf, 1024, &payload), FrameSplit::kNeedMore);

  std::vector<uint8_t> body = {1, 2, 3};
  AppendFrame(body, &buf);
  EXPECT_EQ(TrySplitFrame(buf, 1024, &payload), FrameSplit::kFrame);
  EXPECT_EQ(std::vector<uint8_t>(payload.begin(), payload.end()), body);

  // Truncated frame: header present, body short.
  std::vector<uint8_t> cut(buf.begin(), buf.end() - 1);
  EXPECT_EQ(TrySplitFrame(cut, 1024, &payload), FrameSplit::kNeedMore);

  // Oversized and zero-length are both unrecoverable.
  EXPECT_EQ(TrySplitFrame(buf, 2, &payload), FrameSplit::kOversized);
  std::vector<uint8_t> zero = {0, 0, 0, 0};
  EXPECT_EQ(TrySplitFrame(zero, 1024, &payload), FrameSplit::kOversized);
}

TEST(CommandCodecTest, RoundtripsEveryShape) {
  {
    Command c = Roundtrip(Command::Hello());
    EXPECT_EQ(c.type, CommandType::kHello);
    EXPECT_EQ(c.magic, kProtocolMagic);
    EXPECT_EQ(c.version, kProtocolVersion);
  }
  EXPECT_EQ(Roundtrip(Command::Ping()).type, CommandType::kPing);
  EXPECT_EQ(Roundtrip(Command::Begin()).type, CommandType::kBegin);
  {
    Command c = Roundtrip(Command::Commit(77));
    EXPECT_EQ(c.type, CommandType::kCommit);
    EXPECT_EQ(c.tid, 77u);
  }
  EXPECT_EQ(Roundtrip(Command::Abort(9)).tid, 9u);
  {
    std::vector<uint8_t> data = {1, 2, 3, 4, 5};
    Command c = Roundtrip(Command::Create(data, 3));
    EXPECT_EQ(c.type, CommandType::kCreate);
    EXPECT_EQ(c.tid, 3u);
    EXPECT_EQ(c.payload, data);
  }
  {
    Command c = Roundtrip(Command::Get(123, 4));
    EXPECT_EQ(c.oid, 123u);
    EXPECT_EQ(c.tid, 4u);
  }
  {
    std::vector<uint8_t> data(300, 0xEE);  // multi-byte length
    Command c = Roundtrip(Command::Put(55, data));
    EXPECT_EQ(c.oid, 55u);
    EXPECT_EQ(c.payload, data);
    EXPECT_EQ(c.tid, kCurrentTxn);
  }
  EXPECT_EQ(Roundtrip(Command::Delete(88)).oid, 88u);
  {
    Command c = Roundtrip(Command::CreateCounter(-5));
    EXPECT_EQ(c.type, CommandType::kCreateCounter);
    EXPECT_EQ(c.i64, -5);
  }
  {
    Command c = Roundtrip(Command::Add(7, -100));
    EXPECT_EQ(c.oid, 7u);
    EXPECT_EQ(c.i64, -100);
  }
  EXPECT_EQ(Roundtrip(Command::GetCounter(11)).oid, 11u);
  {
    Command c = Roundtrip(Command::Delegate(1, 2, ObjectSet({10, 20, 30})));
    EXPECT_EQ(c.type, CommandType::kDelegate);
    EXPECT_EQ(c.tid, 1u);
    EXPECT_EQ(c.tid2, 2u);
    EXPECT_FALSE(c.objs_all);
    EXPECT_EQ(c.objs, (std::vector<ObjectId>{10, 20, 30}));
  }
  {
    Command c = Roundtrip(Command::Delegate(1, 2));
    EXPECT_TRUE(c.objs_all);
  }
  {
    Command c = Roundtrip(
        Command::Permit(3, 4, ObjectSet({5}), OpSet::FromBits(0x3)));
    EXPECT_EQ(c.type, CommandType::kPermit);
    EXPECT_EQ(c.ops, 0x3);
    EXPECT_EQ(c.tid2, 4u);
  }
  {
    Command c = Roundtrip(Command::PermitAnyTxn(6));
    EXPECT_EQ(c.tid2, kAnyTxn);
  }
  {
    Command c =
        Roundtrip(Command::Dependency(DependencyType::kBeginOnCommit, 8, 9));
    EXPECT_EQ(c.type, CommandType::kDependency);
    EXPECT_EQ(static_cast<DependencyType>(c.dep_type),
              DependencyType::kBeginOnCommit);
    EXPECT_EQ(c.tid, 8u);
    EXPECT_EQ(c.tid2, 9u);
  }
  EXPECT_EQ(Roundtrip(Command::Checkpoint()).type, CommandType::kCheckpoint);
  EXPECT_EQ(Roundtrip(Command::Metrics()).type, CommandType::kMetrics);
  EXPECT_EQ(Roundtrip(Command::DumpTrace()).type, CommandType::kDumpTrace);
  EXPECT_EQ(Roundtrip(Command::SlowLog()).type, CommandType::kSlowLog);
}

TEST(CommandCodecTest, RoundtripsTraceContext) {
  // Trace alone, trace + deadline, and every envelope-flag combination
  // on a payload-carrying shape.
  {
    Command c = Roundtrip(Command::Begin().WithTrace(0xA1B2C3D4E5F60718ull,
                                                     42));
    EXPECT_EQ(c.trace_id, 0xA1B2C3D4E5F60718ull);
    EXPECT_EQ(c.span_id, 42u);
    EXPECT_EQ(c.deadline_ms, 0u);
  }
  {
    Command c = Roundtrip(
        Command::Put(9, std::vector<uint8_t>{1, 2}, 3).WithDeadline(250)
            .WithTrace(7, 8));
    EXPECT_EQ(c.trace_id, 7u);
    EXPECT_EQ(c.span_id, 8u);
    EXPECT_EQ(c.deadline_ms, 250u);
    EXPECT_EQ(c.oid, 9u);
    EXPECT_EQ(c.payload, (std::vector<uint8_t>{1, 2}));
  }
  {
    // Untraced commands keep the exact v2 byte layout.
    Command c = Roundtrip(Command::Commit(5));
    EXPECT_EQ(c.trace_id, 0u);
    EXPECT_EQ(c.span_id, 0u);
    std::vector<uint8_t> untraced = Encode(Command::Commit(5));
    EXPECT_EQ(untraced[1], 0);  // no envelope flags
  }
}

TEST(CommandCodecTest, RejectsZeroTraceIdWithFlagSet) {
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  w.PutU8(static_cast<uint8_t>(CommandType::kPing));
  w.PutU8(1u << 1);  // trace flag
  w.PutU64(0);       // zero trace id: invalid with the flag set
  w.PutU64(1);
  EXPECT_FALSE(DecodeCommand(buf).ok());
}

TEST(CommandCodecTest, RejectsTruncatedTraceContext) {
  std::vector<uint8_t> full = Encode(Command::Ping().WithTrace(77, 88));
  for (size_t cut = 1; cut < full.size(); ++cut) {
    std::vector<uint8_t> prefix(full.begin(), full.begin() + cut);
    EXPECT_FALSE(DecodeCommand(prefix).ok()) << "cut at " << cut;
  }
}

TEST(CommandCodecTest, RejectsUnknownEnvelopeFlags) {
  std::vector<uint8_t> buf = Encode(Command::Ping());
  buf[1] = 1u << 2;  // first bit above the known set
  EXPECT_FALSE(DecodeCommand(buf).ok());
  buf[1] = 0x80;
  EXPECT_FALSE(DecodeCommand(buf).ok());
}

TEST(CommandCodecTest, RejectsUnknownType) {
  std::vector<uint8_t> buf = Encode(Command::Ping());
  buf[0] = 0xFF;
  EXPECT_FALSE(DecodeCommand(buf).ok());
  buf[0] = 0;
  EXPECT_FALSE(DecodeCommand(buf).ok());
}

TEST(CommandCodecTest, RejectsEveryTruncation) {
  // Every proper prefix of every command must be rejected, never
  // mis-decoded: byte streams deliver prefixes all the time and the
  // framing, not the codec, is what reassembles them.
  std::vector<Command> all = {
      Command::Hello(),
      Command::Begin(),
      Command::Commit(7),
      Command::Create(std::vector<uint8_t>(10, 0xAA), 3),
      Command::Put(5, std::vector<uint8_t>(4, 1), 2),
      Command::CreateCounter(9),
      Command::Add(3, 4),
      Command::Delegate(1, 2, ObjectSet({1, 2, 3})),
      Command::Permit(3, 4, ObjectSet({5, 6}), OpSet::All()),
      Command::Dependency(DependencyType::kCommit, 1, 2),
      Command::Begin().WithTrace(11, 22),
      Command::Get(5, 2).WithDeadline(100).WithTrace(33, 44),
      Command::DumpTrace(),
      Command::SlowLog(),
  };
  for (const Command& cmd : all) {
    std::vector<uint8_t> full = Encode(cmd);
    for (size_t cut = 1; cut < full.size(); ++cut) {
      std::vector<uint8_t> prefix(full.begin(), full.begin() + cut);
      EXPECT_FALSE(DecodeCommand(prefix).ok())
          << CommandTypeToString(cmd.type) << " cut at " << cut;
    }
  }
}

TEST(CommandCodecTest, RejectsTrailingGarbage) {
  std::vector<uint8_t> buf = Encode(Command::Commit(7));
  buf.push_back(0x00);
  EXPECT_FALSE(DecodeCommand(buf).ok());
}

TEST(CommandCodecTest, RejectsBadDependencyType) {
  std::vector<uint8_t> buf =
      Encode(Command::Dependency(DependencyType::kCommit, 1, 2));
  buf[2] = 200;  // dep_type byte right after the tag + flags envelope
  EXPECT_FALSE(DecodeCommand(buf).ok());
}

TEST(CommandCodecTest, RejectsObjectSetCountOverrun) {
  // Claim 100000 object ids but supply none.
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  w.PutU8(static_cast<uint8_t>(CommandType::kDelegate));
  w.PutU8(0);  // envelope flags: no deadline
  w.PutU64(1);
  w.PutU64(2);
  w.PutU8(0);          // not-all: explicit list follows
  w.PutU32(100000);    // lying count
  EXPECT_FALSE(DecodeCommand(buf).ok());
}

TEST(CommandCodecTest, FuzzRandomBytesNeverCrash) {
  std::mt19937 rng(20240807);
  std::uniform_int_distribution<int> len(0, 96);
  std::uniform_int_distribution<int> byte(0, 255);
  int decoded = 0;
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> buf(len(rng));
    for (auto& b : buf) b = static_cast<uint8_t>(byte(rng));
    auto r = DecodeCommand(buf);
    if (r.ok()) decoded++;  // fine, as long as nothing crashed or threw
    auto rep = DecodeReply(buf);
    (void)rep;
  }
  // Random bytes overwhelmingly fail to parse.
  EXPECT_LT(decoded, 2000);
}

TEST(CommandCodecTest, FuzzMutatedValidFramesNeverCrash) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> byte(0, 255);
  std::vector<uint8_t> base =
      Encode(Command::Permit(3, 4, ObjectSet({5, 6, 7}), OpSet::All()));
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> buf = base;
    std::uniform_int_distribution<size_t> pos(0, buf.size() - 1);
    buf[pos(rng)] = static_cast<uint8_t>(byte(rng));
    auto r = DecodeCommand(buf);
    (void)r;
  }
}

TEST(CommandCodecTest, FuzzMutatedTracedFramesNeverCrash) {
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> byte(0, 255);
  std::vector<uint8_t> base =
      Encode(Command::Put(5, std::vector<uint8_t>{1, 2, 3}, 4)
                 .WithDeadline(50)
                 .WithTrace(0xDEADBEEF, 7));
  for (int i = 0; i < 20000; ++i) {
    std::vector<uint8_t> buf = base;
    std::uniform_int_distribution<size_t> pos(0, buf.size() - 1);
    buf[pos(rng)] = static_cast<uint8_t>(byte(rng));
    auto r = DecodeCommand(buf);
    if (r.ok() && r->trace_id == 0) {
      // A decode that claims success must never surface a zero trace
      // id out of a frame that carried the trace flag intact.
      EXPECT_EQ(buf[1] & (1u << 1), 0u);
    }
  }
}

TEST(ReplyCodecTest, RoundtripsEveryKind) {
  auto roundtrip = [](const Reply& r) {
    std::vector<uint8_t> buf;
    EncodeReply(r, &buf);
    auto d = DecodeReply(buf);
    EXPECT_TRUE(d.ok()) << d.status().ToString();
    return d.ValueOr(Reply{});
  };
  {
    Reply r = roundtrip(Reply::Ok());
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.kind, ReplyValueKind::kNone);
  }
  EXPECT_EQ(roundtrip(Reply::OkTid(42)).u64, 42u);
  EXPECT_EQ(roundtrip(Reply::OkOid(77)).u64, 77u);
  EXPECT_EQ(roundtrip(Reply::OkI64(-5)).i64, -5);
  {
    Reply r = roundtrip(Reply::OkBytes({9, 8, 7}));
    EXPECT_EQ(r.bytes, (std::vector<uint8_t>{9, 8, 7}));
  }
  EXPECT_EQ(roundtrip(Reply::OkText("metrics")).text, "metrics");
  {
    Reply r = roundtrip(
        Reply::FromStatus(Status::NotFound("no such object")));
    EXPECT_EQ(r.code, StatusCode::kNotFound);
    EXPECT_EQ(r.message, "no such object");
    EXPECT_EQ(r.ToStatus().code(), StatusCode::kNotFound);
  }
}

TEST(ReplyCodecTest, RejectsBadCodeAndKind) {
  std::vector<uint8_t> buf;
  EncodeReply(Reply::Ok(), &buf);
  {
    std::vector<uint8_t> bad = buf;
    bad[0] = 250;  // status code out of range
    EXPECT_FALSE(DecodeReply(bad).ok());
  }
  {
    std::vector<uint8_t> bad = buf;
    bad[bad.size() - 1] = 99;  // value kind out of range
    EXPECT_FALSE(DecodeReply(bad).ok());
  }
}

// --- The in-process dispatcher --------------------------------------

class ApiSessionTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = Database::Open().value(); }
  std::unique_ptr<Database> db_;
};

TEST_F(ApiSessionTest, BeginWriteCommitThroughCommands) {
  ApiSession session(db_.get());
  Reply begin = session.Execute(Command::Begin());
  ASSERT_TRUE(begin.ok());
  Tid t = begin.u64;
  EXPECT_EQ(session.current(), t);

  Reply create = session.Execute(
      Command::Create(std::vector<uint8_t>{1, 2, 3}));  // kCurrentTxn
  ASSERT_TRUE(create.ok());
  ObjectId oid = create.u64;

  Reply get = session.Execute(Command::Get(oid, t));
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get.bytes, (std::vector<uint8_t>{1, 2, 3}));

  ASSERT_TRUE(session.Execute(Command::Commit()).ok());
  EXPECT_EQ(session.open_txns(), 0u);
  EXPECT_TRUE(db_->IsCommitted(t));
}

TEST_F(ApiSessionTest, CurrentTxnTracksMostRecentBegin) {
  ApiSession session(db_.get());
  Tid t1 = session.Execute(Command::Begin()).u64;
  Tid t2 = session.Execute(Command::Begin()).u64;
  EXPECT_EQ(session.current(), t2);
  ASSERT_TRUE(session.Execute(Command::Commit()).ok());  // commits t2
  EXPECT_TRUE(db_->IsCommitted(t2));
  EXPECT_TRUE(db_->IsActiveTxn(t1));
  // current cleared; explicit tid still works.
  ASSERT_TRUE(session.Execute(Command::Commit(t1)).ok());
}

TEST_F(ApiSessionTest, RefusesForeignAndUnknownTids) {
  ApiSession session(db_.get());
  ApiSession other(db_.get());
  Tid theirs = other.Execute(Command::Begin()).u64;
  Reply r = session.Execute(Command::Commit(theirs));
  EXPECT_EQ(r.code, StatusCode::kNotFound);
  EXPECT_EQ(session.Execute(Command::Get(1)).code,
            StatusCode::kInvalidArgument);  // no current txn
}

TEST_F(ApiSessionTest, EnforcesOpenTxnLimit) {
  ApiSession session(db_.get(), ApiSession::Limits{2, false});
  ASSERT_TRUE(session.Execute(Command::Begin()).ok());
  ASSERT_TRUE(session.Execute(Command::Begin()).ok());
  Reply r = session.Execute(Command::Begin());
  EXPECT_EQ(r.code, StatusCode::kResourceExhausted);
}

TEST_F(ApiSessionTest, RequireHelloGatesEverything) {
  ApiSession session(db_.get(), ApiSession::Limits{64, true});
  EXPECT_EQ(session.Execute(Command::Begin()).code,
            StatusCode::kIllegalState);
  Command bad_magic = Command::Hello();
  bad_magic.magic = 0x12345678;
  EXPECT_EQ(session.Execute(bad_magic).code, StatusCode::kInvalidArgument);
  Command bad_version = Command::Hello();
  bad_version.version = 999;
  EXPECT_EQ(session.Execute(bad_version).code,
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(session.Execute(Command::Hello()).ok());
  EXPECT_TRUE(session.handshaken());
  EXPECT_TRUE(session.Execute(Command::Begin()).ok());
}

TEST_F(ApiSessionTest, DestructionAbortsOpenTransactions) {
  Tid t;
  {
    ApiSession session(db_.get());
    t = session.Execute(Command::Begin()).u64;
    ASSERT_TRUE(db_->IsActiveTxn(t));
  }
  EXPECT_TRUE(db_->IsAborted(t));
}

TEST_F(ApiSessionTest, DelegatePermitDependencyThroughCommands) {
  ApiSession s1(db_.get());
  ApiSession s2(db_.get());
  Tid t1 = s1.Execute(Command::Begin()).u64;
  Tid t2 = s2.Execute(Command::Begin()).u64;

  // t1 creates an object, permits t2 to touch everything of t1's.
  Reply create = s1.Execute(Command::Create(std::vector<uint8_t>{42}));
  ASSERT_TRUE(create.ok());
  ASSERT_TRUE(s1.Execute(Command::Permit(t1, t2)).ok());
  ASSERT_TRUE(
      s2.Execute(Command::Put(create.u64, std::vector<uint8_t>{43}, t2))
          .ok());

  // Commit dependency: t2 cannot commit before t1.
  ASSERT_TRUE(
      s1.Execute(Command::Dependency(DependencyType::kCommit, t1, t2)).ok());
  ASSERT_TRUE(s1.Execute(Command::Commit(t1)).ok());
  ASSERT_TRUE(s2.Execute(Command::Commit(t2)).ok());
}

TEST_F(ApiSessionTest, MetricsAndCheckpointCommands) {
  ApiSession session(db_.get());
  Reply m = session.Execute(Command::Metrics());
  ASSERT_TRUE(m.ok());
  EXPECT_NE(m.text.find("asset_"), std::string::npos);
  EXPECT_NE(m.text.find("# HELP asset_"), std::string::npos);
  EXPECT_TRUE(session.Execute(Command::Checkpoint()).ok());
}

TEST_F(ApiSessionTest, HelloAcceptsSupportedVersionRange) {
  // A v2 peer (the previous release) must still handshake; anything
  // outside [min, current] must not.
  for (uint16_t v = kMinProtocolVersion; v <= kProtocolVersion; ++v) {
    ApiSession session(db_.get(), ApiSession::Limits{64, true});
    Command hello = Command::Hello();
    hello.version = v;
    Reply r = session.Execute(hello);
    ASSERT_TRUE(r.ok()) << "version " << v << ": " << r.message;
    EXPECT_EQ(r.i64, kProtocolVersion);  // server declares its own
  }
  ApiSession session(db_.get(), ApiSession::Limits{64, true});
  Command too_old = Command::Hello();
  too_old.version = kMinProtocolVersion - 1;
  EXPECT_EQ(session.Execute(too_old).code, StatusCode::kInvalidArgument);
  Command too_new = Command::Hello();
  too_new.version = kProtocolVersion + 1;
  EXPECT_EQ(session.Execute(too_new).code, StatusCode::kInvalidArgument);
}

TEST_F(ApiSessionTest, DumpTraceAndSlowLogCommands) {
  db_->set_trace_enabled(true);
  ApiSession session(db_.get());
  ASSERT_TRUE(session.Execute(Command::Begin()).ok());
  ASSERT_TRUE(session.Execute(Command::Commit()).ok());
  Reply trace = session.Execute(Command::DumpTrace());
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace.text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.text.find("txn_commit"), std::string::npos);
  Reply slow = session.Execute(Command::SlowLog());
  ASSERT_TRUE(slow.ok());
  EXPECT_NE(slow.text.find("\"slow_requests\""), std::string::npos);
}

}  // namespace
}  // namespace asset::api
