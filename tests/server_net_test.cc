// End-to-end tests of the network front door: a real Server on an
// ephemeral loopback port, driven by the blocking client and by raw
// sockets (for the malformed-frame cases the client cannot produce).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/command.h"
#include "api/wire.h"
#include "client/client.h"
#include "common/trace.h"
#include "core/database.h"
#include "server/server.h"

namespace asset {
namespace {

using api::Command;
using api::Reply;
using client::Client;
using server::Server;

/// Spins until `pred` holds or ~5s elapse.
template <typename Pred>
bool Eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// A bare TCP connection for speaking deliberately broken protocol.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~RawConn() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  void SendBytes(const std::vector<uint8_t>& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = send(fd_, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

  void SendFrame(const std::vector<uint8_t>& payload) {
    std::vector<uint8_t> framed;
    api::AppendFrame(payload, &framed);
    SendBytes(framed);
  }

  void SendCommand(const Command& cmd) {
    std::vector<uint8_t> payload;
    api::EncodeCommand(cmd, &payload);
    SendFrame(payload);
  }

  /// Reads one reply frame (blocking); nullopt on EOF/error.
  std::optional<Reply> ReadReply() {
    std::vector<uint8_t> buf;
    for (;;) {
      std::span<const uint8_t> payload;
      if (api::TrySplitFrame(buf, 1 << 20, &payload) ==
          api::FrameSplit::kFrame) {
        auto r = api::DecodeReply(payload);
        if (!r.ok()) return std::nullopt;
        return *r;
      }
      uint8_t chunk[4096];
      ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::nullopt;
      buf.insert(buf.end(), chunk, chunk + n);
    }
  }

  /// True once the server has closed this connection (recv sees EOF).
  bool WaitForClose() {
    for (;;) {
      uint8_t chunk[4096];
      ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class ServerNetTest : public ::testing::Test {
 protected:
  void StartServer(Server::Options opts = {}) {
    db_ = Database::Open().value();
    server_ = Server::Start(db_.get(), opts).value();
  }

  std::unique_ptr<Client> Connect() {
    return Client::Connect("127.0.0.1", server_->port()).value();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerNetTest, OptionsValidateRejectsNonsense) {
  Server::Options o;
  o.workers = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = {};
  o.max_connections = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = {};
  o.max_frame_bytes = 4;
  EXPECT_FALSE(o.Validate().ok());
  o = {};
  o.write_buffer_limit = 16;  // below one max-size frame
  EXPECT_FALSE(o.Validate().ok());
  o = {};
  o.idle_timeout = std::chrono::milliseconds(-1);
  EXPECT_FALSE(o.Validate().ok());
  o = {};
  EXPECT_TRUE(o.Validate().ok());
  auto db = Database::Open().value();
  Server::Options bad;
  bad.workers = -3;
  EXPECT_FALSE(Server::Start(db.get(), bad).ok());
}

TEST_F(ServerNetTest, HandshakeBeginPutCommit) {
  StartServer();
  auto c = Connect();
  ASSERT_TRUE(c->Ping().ok());

  Tid t = c->Begin().value();
  EXPECT_NE(t, kNullTid);
  ObjectId oid = c->Create({1, 2, 3}).value();
  EXPECT_EQ(c->Get(oid).value(), (std::vector<uint8_t>{1, 2, 3}));
  ASSERT_TRUE(c->Put(oid, {4, 5}).ok());
  ASSERT_TRUE(c->Commit().ok());
  EXPECT_TRUE(db_->IsCommitted(t));

  // Counters over the wire.
  ASSERT_TRUE(c->Begin().ok());
  ObjectId ctr = c->CreateCounter(10).value();
  ASSERT_TRUE(c->Add(ctr, 5).ok());
  EXPECT_EQ(c->GetCounter(ctr).value(), 15);
  ASSERT_TRUE(c->Commit().ok());
}

TEST_F(ServerNetTest, CommandBeforeHelloIsRejected) {
  StartServer();
  RawConn raw(server_->port());
  ASSERT_TRUE(raw.connected());
  raw.SendCommand(Command::Begin());
  auto r = raw.ReadReply();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->code, StatusCode::kIllegalState);
}

TEST_F(ServerNetTest, BadMagicIsRejected) {
  StartServer();
  RawConn raw(server_->port());
  Command hello = Command::Hello();
  hello.magic = 0x0BADF00D;
  raw.SendCommand(hello);
  auto r = raw.ReadReply();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->code, StatusCode::kInvalidArgument);
}

TEST_F(ServerNetTest, PipelinedBatchExecutesInOrder) {
  StartServer();
  auto c = Connect();

  // One flush carries begin + create + a failing commit + the real
  // commit; kCurrentTxn binds the data ops to the tid the first
  // command will create, and the mid-batch error must neither derail
  // the later commands nor reorder the replies.
  c->Send(Command::Begin());
  c->Send(Command::Create(std::vector<uint8_t>{7}));
  c->Send(Command::Commit(999999999));  // not a tid this session owns
  c->Send(Command::Commit());
  ASSERT_TRUE(c->Flush().ok());

  Reply begin = c->Receive().value();
  ASSERT_TRUE(begin.ok());
  Reply create = c->Receive().value();
  ASSERT_TRUE(create.ok());
  Reply bad_commit = c->Receive().value();
  EXPECT_EQ(bad_commit.code, StatusCode::kNotFound);
  Reply commit = c->Receive().value();
  EXPECT_TRUE(commit.ok());
  EXPECT_TRUE(db_->IsCommitted(begin.u64));

  // A second pipelined batch against the object the first one created.
  ObjectId oid = create.u64;
  c->Send(Command::Begin());
  c->Send(Command::Get(oid));
  c->Send(Command::Commit());
  ASSERT_TRUE(c->Flush().ok());
  ASSERT_TRUE(c->Receive().value().ok());
  Reply read = c->Receive().value();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.bytes, (std::vector<uint8_t>{7}));
  ASSERT_TRUE(c->Receive().value().ok());
}

TEST_F(ServerNetTest, SessionTxnLimitRejected) {
  Server::Options opts;
  opts.max_txns_per_conn = 2;
  StartServer(opts);
  auto c = Connect();
  ASSERT_TRUE(c->Begin().ok());
  ASSERT_TRUE(c->Begin().ok());
  auto third = c->Begin();
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  // The connection survives the rejection.
  EXPECT_TRUE(c->Ping().ok());
}

TEST_F(ServerNetTest, ClientDisconnectAbortsOpenTxn) {
  StartServer();
  Tid t;
  {
    auto c = Connect();
    t = c->Begin().value();
    ObjectId oid = c->Create({1}).value();
    (void)oid;
    ASSERT_TRUE(db_->IsActiveTxn(t));
  }  // client destroyed: socket closes mid-transaction
  EXPECT_TRUE(Eventually([&] { return db_->IsAborted(t); }));
  EXPECT_TRUE(Eventually([&] {
    return server_->stats().txns_aborted_on_close.load() >= 1;
  }));
}

TEST_F(ServerNetTest, MalformedFrameGetsErrorReplyThenClose) {
  StartServer();
  RawConn raw(server_->port());
  raw.SendCommand(Command::Hello());
  ASSERT_TRUE(raw.ReadReply().has_value());

  // A frame whose payload is a valid length of garbage.
  raw.SendFrame({0xFF, 0xEE, 0xDD});
  auto r = raw.ReadReply();
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->ok());
  EXPECT_TRUE(raw.WaitForClose());
  EXPECT_TRUE(Eventually(
      [&] { return server_->stats().protocol_errors.load() >= 1; }));
}

TEST_F(ServerNetTest, OversizedFrameClosesConnection) {
  Server::Options opts;
  opts.max_frame_bytes = 1024;
  StartServer(opts);
  RawConn raw(server_->port());
  raw.SendCommand(Command::Hello());
  ASSERT_TRUE(raw.ReadReply().has_value());
  // Length prefix far above max_frame_bytes; stream is unrecoverable.
  raw.SendBytes({0xFF, 0xFF, 0xFF, 0x7F});
  EXPECT_TRUE(raw.WaitForClose());
}

TEST_F(ServerNetTest, TruncatedFrameThenDisconnectAbortsTxn) {
  StartServer();
  Tid t = kNullTid;
  {
    RawConn raw(server_->port());
    raw.SendCommand(Command::Hello());
    ASSERT_TRUE(raw.ReadReply().has_value());
    raw.SendCommand(Command::Begin());
    auto begin = raw.ReadReply();
    ASSERT_TRUE(begin.has_value());
    t = begin->u64;
    // Half a frame: a 100-byte length prefix and then silence.
    raw.SendBytes({100, 0, 0, 0, 1, 2, 3});
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(db_->IsActiveTxn(t));  // truncated tail alone is harmless
  }  // disconnect mid-frame
  EXPECT_TRUE(Eventually([&] { return db_->IsAborted(t); }));
}

TEST_F(ServerNetTest, ConnectionLimitRejectsExcess) {
  Server::Options opts;
  opts.max_connections = 2;
  StartServer(opts);
  auto c1 = Connect();
  auto c2 = Connect();
  ASSERT_TRUE(c1->Ping().ok());
  ASSERT_TRUE(c2->Ping().ok());
  // The third is accepted at the TCP level, then closed by the server
  // before any reply: Connect's handshake fails.
  auto c3 = Client::Connect("127.0.0.1", server_->port());
  EXPECT_FALSE(c3.ok());
  EXPECT_GE(server_->stats().connections_rejected.load(), 1u);
}

TEST_F(ServerNetTest, MetricsIncludeServerFamily) {
  StartServer();
  auto c = Connect();
  ASSERT_TRUE(c->Begin().ok());
  ASSERT_TRUE(c->Commit().ok());
  std::string text = c->Metrics().value();
  EXPECT_NE(text.find("asset_txns_committed"), std::string::npos);
  EXPECT_NE(text.find("asset_server_frames_in_total"), std::string::npos);
  EXPECT_NE(text.find("asset_server_connections_active"), std::string::npos);
}

TEST_F(ServerNetTest, GracefulShutdownAbortsInFlightSessions) {
  StartServer();
  auto c = Connect();
  Tid t = c->Begin().value();
  ASSERT_TRUE(db_->IsActiveTxn(t));
  server_->Shutdown();
  EXPECT_TRUE(db_->IsAborted(t));
  EXPECT_EQ(db_->ActiveTransactions(), 0u);
  // Shutdown is idempotent; the client now sees a dead socket.
  server_->Shutdown();
  EXPECT_FALSE(c->Ping().ok());
}

TEST_F(ServerNetTest, IdleConnectionsAreReaped) {
  Server::Options opts;
  opts.idle_timeout = std::chrono::milliseconds(100);
  StartServer(opts);
  auto c = Connect();
  ASSERT_TRUE(c->Ping().ok());
  // Wait on the server-side counter: pinging in the poll loop would
  // refresh last_activity and keep the connection alive forever.
  EXPECT_TRUE(
      Eventually([&] { return server_->stats().idle_closed.load() >= 1u; }));
  EXPECT_FALSE(c->Ping().ok());
}

// --- Wire tracing (docs/OBSERVABILITY.md) -----------------------------

TEST_F(ServerNetTest, V2HelloWithoutTraceStillAccepted) {
  StartServer();
  RawConn raw(server_->port());
  Command hello = Command::Hello();
  hello.version = 2;  // last protocol revision without trace context
  raw.SendCommand(hello);
  auto r = raw.ReadReply();
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(r->ok());
  // The server states its own version; a v2 peer just ignores it.
  EXPECT_EQ(r->i64, api::kProtocolVersion);
  raw.SendCommand(Command::Begin());
  auto begin = raw.ReadReply();
  ASSERT_TRUE(begin.has_value());
  EXPECT_TRUE(begin->ok());
}

TEST_F(ServerNetTest, StageSpansShareWireTraceId) {
  StartServer();
  db_->set_trace_enabled(true);
  Client::Options copts;
  copts.trace_recorder = &db_->trace_recorder();
  auto c = Client::Connect("127.0.0.1", server_->port(), copts).value();
  EXPECT_EQ(c->server_version(), api::kProtocolVersion);

  Tid t = c->Begin().value();
  uint64_t trace = c->last_trace_id();
  ASSERT_NE(trace, 0u);
  ASSERT_TRUE(c->Commit().ok());

  // kReplyFlushed lands after the reply bytes hit the socket, so it can
  // trail the client's Receive by a beat — poll the drain.
  std::vector<TraceEvent> evs;
  auto stage = [&](TraceEventType type) -> const TraceEvent* {
    for (const auto& ev : evs) {
      if (ev.type == type && ev.tid == trace) return &ev;
    }
    return nullptr;
  };
  ASSERT_TRUE(Eventually([&] {
    evs = db_->trace_recorder().Drain();
    return stage(TraceEventType::kReplyFlushed) != nullptr;
  }));

  const TraceEvent* rpc = stage(TraceEventType::kClientRpc);
  const TraceEvent* decoded = stage(TraceEventType::kFrameDecoded);
  const TraceEvent* admission = stage(TraceEventType::kAdmission);
  const TraceEvent* queue = stage(TraceEventType::kRpcQueue);
  const TraceEvent* execute = stage(TraceEventType::kRpcExecute);
  const TraceEvent* enqueued = stage(TraceEventType::kReplyEnqueued);
  const TraceEvent* flushed = stage(TraceEventType::kReplyFlushed);
  ASSERT_NE(rpc, nullptr);
  ASSERT_NE(decoded, nullptr);
  ASSERT_NE(admission, nullptr);  // Begin goes through admission
  ASSERT_NE(queue, nullptr);
  ASSERT_NE(execute, nullptr);
  ASSERT_NE(enqueued, nullptr);
  ASSERT_NE(flushed, nullptr);

  // Every span agrees on the wire span id and command tag...
  EXPECT_NE(rpc->other, 0u);
  EXPECT_EQ(decoded->other, rpc->other);
  EXPECT_EQ(flushed->other, rpc->other);
  EXPECT_EQ(decoded->oid,
            static_cast<ObjectId>(api::CommandType::kBegin));
  // ...the admission decision admitted it...
  EXPECT_EQ(admission->arg, 0u);
  // ...the execute span bridges to the kernel transaction id...
  EXPECT_EQ(execute->arg, t);
  // ...and the server stages run in causal order on the shared clock.
  EXPECT_LE(decoded->ts_ns, execute->ts_ns);
  EXPECT_LE(execute->ts_ns, enqueued->ts_ns);
  EXPECT_LE(enqueued->ts_ns, flushed->ts_ns);
  EXPECT_GT(rpc->dur_ns, 0);  // the round trip took nonzero time

  // The stage histograms saw the command and export as summary lines.
  std::string metrics = server_->MetricsText();
  EXPECT_NE(metrics.find("# TYPE asset_server_stage_ns summary"),
            std::string::npos);
  EXPECT_NE(metrics.find(
                "asset_server_stage_ns{command=\"begin\",stage=\"execute\""),
            std::string::npos);
  EXPECT_NE(metrics.find("asset_server_trace_enabled 1"), std::string::npos);
}

TEST_F(ServerNetTest, DumpTraceDrainsOneTimelineOverTheWire) {
  StartServer();
  db_->set_trace_enabled(true);
  Client::Options copts;
  copts.trace_recorder = &db_->trace_recorder();
  auto c = Client::Connect("127.0.0.1", server_->port(), copts).value();

  ASSERT_TRUE(c->Begin().ok());
  ObjectId oid = c->Create({1}).value();
  ASSERT_TRUE(c->Put(oid, {2}).ok());
  ASSERT_TRUE(c->Commit().ok());
  uint64_t trace = c->last_trace_id();  // the commit's wire trace id

  std::string json = c->DumpTrace().value();
  // One Chrome-trace timeline holds the client round trip, the server
  // stage spans, and the kernel lifecycle events.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("client_rpc"), std::string::npos);
  EXPECT_NE(json.find("rpc_execute"), std::string::npos);
  EXPECT_NE(json.find("txn_commit"), std::string::npos);
  // The commit's events are queryable by its wire trace id.
  EXPECT_NE(json.find("\"trace\":" + std::to_string(trace)),
            std::string::npos);
}

TEST_F(ServerNetTest, SlowRequestsLandInSlowLog) {
  Server::Options opts;
  opts.slow_request_threshold = std::chrono::milliseconds(20);
  StartServer(opts);
  auto holder = Connect();
  ASSERT_TRUE(holder->Begin().ok());
  ObjectId oid = holder->Create({42}).value();

  // A lock wait bounded by a 60 ms deadline: well past the 20 ms
  // threshold, with a deterministic TimedOut outcome.
  auto waiter = Connect();
  ASSERT_TRUE(waiter->Begin().ok());
  auto r = waiter->Call(
      Command::Put(oid, std::vector<uint8_t>{7}).WithDeadline(60));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->code, StatusCode::kTimedOut) << r->message;
  ASSERT_TRUE(holder->Commit().ok());

  // Capture happens when the reply finishes flushing, which can trail
  // the client's Receive by a beat.
  ASSERT_TRUE(Eventually([&] {
    return server_->SlowLogJson().find("\"command\":\"put\"") !=
           std::string::npos;
  }));

  // The entry is drainable over the wire with its stage breakdown.
  std::string log = waiter->SlowLog().value();
  EXPECT_NE(log.find("\"threshold_ms\":20"), std::string::npos);
  EXPECT_NE(log.find("\"command\":\"put\""), std::string::npos);
  EXPECT_NE(log.find("\"outcome\":\"TimedOut\""), std::string::npos);
  EXPECT_NE(log.find("\"execute_ns\":"), std::string::npos);

  std::string metrics = server_->MetricsText();
  EXPECT_NE(metrics.find("asset_server_slow_request_threshold_ms 20"),
            std::string::npos);
  // "\n"-anchored so the needle skips the # HELP line.
  size_t pos = metrics.find("\nasset_server_slow_requests_total ");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_GE(std::stoll(metrics.substr(
                pos + strlen("\nasset_server_slow_requests_total "))),
            1);
}

TEST_F(ServerNetTest, ManyConnectionsConcurrently) {
  Server::Options opts;
  opts.workers = 2;
  StartServer(opts);
  constexpr int kClients = 16;
  constexpr int kTxnsEach = 10;
  std::vector<std::thread> threads;
  std::atomic<int> commits{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      auto c = Client::Connect("127.0.0.1", server_->port()).value();
      for (int j = 0; j < kTxnsEach; ++j) {
        if (!c->Begin().ok()) continue;
        ObjectId oid = c->Create({static_cast<uint8_t>(j)}).value();
        if (c->Get(oid).ok() && c->Commit().ok()) commits.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(commits.load(), kClients * kTxnsEach);
  EXPECT_EQ(db_->ActiveTransactions(), 0u);
}

}  // namespace
}  // namespace asset
