// Unit tests for src/common: Status, Result, OpSet, ObjectSet, Random.

#include <gtest/gtest.h>

#include "common/object_set.h"
#include "common/op_set.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace asset {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("object 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "object 7");
  EXPECT_EQ(s.ToString(), "NotFound: object 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::Deadlock("x").IsDeadlock());
  EXPECT_TRUE(Status::TxnAborted("x").IsTxnAborted());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::IllegalState("x").IsIllegalState());
  EXPECT_FALSE(Status::IOError("x").IsNotFound());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    ASSET_RETURN_NOT_OK(Status::IOError("disk gone"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kIOError);
  auto passes = []() -> Status {
    ASSET_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_EQ(passes().code(), StatusCode::kInternal);
}

// --- Result ---------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// --- OpSet / LockMode -------------------------------------------------------

TEST(OpSetTest, SingletonAndAll) {
  OpSet r(Operation::kRead);
  EXPECT_TRUE(r.Contains(Operation::kRead));
  EXPECT_FALSE(r.Contains(Operation::kWrite));
  EXPECT_FALSE(r.IsAll());
  EXPECT_TRUE(OpSet::All().Contains(Operation::kWrite));
  EXPECT_TRUE(OpSet::All().IsAll());
  EXPECT_TRUE(OpSet::None().empty());
}

TEST(OpSetTest, IntersectIsSetIntersection) {
  OpSet r(Operation::kRead), w(Operation::kWrite);
  EXPECT_TRUE(r.Intersect(w).empty());
  EXPECT_EQ(OpSet::All().Intersect(r), r);
  EXPECT_EQ(r.Union(w), OpSet::All());
}

TEST(OpSetTest, CoversIsSuperset) {
  EXPECT_TRUE(OpSet::All().Covers(OpSet(Operation::kRead)));
  EXPECT_FALSE(OpSet(Operation::kRead).Covers(OpSet::All()));
  EXPECT_TRUE(OpSet(Operation::kRead).Covers(OpSet::None()));
}

TEST(OpSetTest, ToString) {
  EXPECT_EQ(OpSet::None().ToString(), "{}");
  EXPECT_EQ(OpSet(Operation::kRead).ToString(), "{read}");
  EXPECT_EQ(OpSet(Operation::kWrite).ToString(), "{write}");
  EXPECT_EQ(OpSet::All().ToString(), "{read,write}");
}

TEST(LockModeTest, Covers) {
  EXPECT_TRUE(LockModeCovers(LockMode::kWrite, LockMode::kRead));
  EXPECT_TRUE(LockModeCovers(LockMode::kWrite, LockMode::kWrite));
  EXPECT_TRUE(LockModeCovers(LockMode::kRead, LockMode::kRead));
  EXPECT_FALSE(LockModeCovers(LockMode::kRead, LockMode::kWrite));
  EXPECT_TRUE(LockModeCovers(LockMode::kNone, LockMode::kNone));
}

TEST(LockModeTest, Conflicts) {
  EXPECT_FALSE(LockModesConflict(LockMode::kRead, LockMode::kRead));
  EXPECT_TRUE(LockModesConflict(LockMode::kRead, LockMode::kWrite));
  EXPECT_TRUE(LockModesConflict(LockMode::kWrite, LockMode::kRead));
  EXPECT_TRUE(LockModesConflict(LockMode::kWrite, LockMode::kWrite));
  EXPECT_FALSE(LockModesConflict(LockMode::kNone, LockMode::kWrite));
}

// --- ObjectSet ---------------------------------------------------------------

TEST(ObjectSetTest, EmptyAndAll) {
  ObjectSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.Contains(1));
  ObjectSet all = ObjectSet::All();
  EXPECT_TRUE(all.IsAll());
  EXPECT_FALSE(all.empty());
  EXPECT_TRUE(all.Contains(123456789));
}

TEST(ObjectSetTest, DedupAndSort) {
  ObjectSet s{5, 1, 3, 1, 5};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ids(), (std::vector<ObjectId>{1, 3, 5}));
}

TEST(ObjectSetTest, Insert) {
  ObjectSet s{2};
  s.Insert(1);
  s.Insert(2);  // duplicate
  s.Insert(3);
  EXPECT_EQ(s.ids(), (std::vector<ObjectId>{1, 2, 3}));
}

TEST(ObjectSetTest, IntersectConcrete) {
  ObjectSet a{1, 2, 3}, b{2, 3, 4};
  EXPECT_EQ(a.Intersect(b), (ObjectSet{2, 3}));
  EXPECT_EQ(a.Intersect(ObjectSet()), ObjectSet());
}

TEST(ObjectSetTest, IntersectWithAll) {
  ObjectSet a{1, 2};
  EXPECT_EQ(a.Intersect(ObjectSet::All()), a);
  EXPECT_EQ(ObjectSet::All().Intersect(a), a);
  EXPECT_TRUE(ObjectSet::All().Intersect(ObjectSet::All()).IsAll());
}

TEST(ObjectSetTest, UnionAndCovers) {
  ObjectSet a{1, 2}, b{2, 3};
  EXPECT_EQ(a.Union(b), (ObjectSet{1, 2, 3}));
  EXPECT_TRUE(ObjectSet::All().Covers(a));
  EXPECT_FALSE(a.Covers(ObjectSet::All()));
  EXPECT_TRUE((ObjectSet{1, 2, 3}).Covers(a));
  EXPECT_FALSE(a.Covers((ObjectSet{1, 3})));
}

TEST(ObjectSetTest, Difference) {
  ObjectSet a{1, 2, 3};
  EXPECT_EQ(a.Difference(ObjectSet{2}), (ObjectSet{1, 3}));
  EXPECT_TRUE(a.Difference(ObjectSet::All()).empty());
  EXPECT_EQ(a.Difference(ObjectSet()), a);
}

TEST(ObjectSetTest, ToString) {
  EXPECT_EQ(ObjectSet::All().ToString(), "*");
  EXPECT_EQ((ObjectSet{3, 1}).ToString(), "{1,3}");
  EXPECT_EQ(ObjectSet().ToString(), "{}");
}

// --- Random ---------------------------------------------------------------

TEST(RandomTest, DeterministicForSeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(17), 17u);
    uint64_t x = r.Range(5, 9);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 9u);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random r(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyFair) {
  Random r(3);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.Bernoulli(0.5);
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RandomTest, SkewedConcentratesOnSmallIndices) {
  Random r(4);
  int small_uniform = 0, small_skewed = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.Skewed(1024, 0.0) < 64) small_uniform++;
    if (r.Skewed(1024, 0.8) < 64) small_skewed++;
  }
  EXPECT_GT(small_skewed, small_uniform * 2);
}

}  // namespace
}  // namespace asset
