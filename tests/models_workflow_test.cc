// Workflow engine (§3.2.3 + appendix): ordered alternatives, parallel
// races, optional steps, compensation of the committed prefix.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kernel_fixture.h"
#include "models/workflow.h"

namespace asset {
namespace {

using namespace std::chrono_literals;

class WorkflowModelTest : public KernelFixture {};

TEST_F(WorkflowModelTest, AllRequiredStepsSucceed) {
  ObjectId flight = MakeObject("none");
  ObjectId hotel = MakeObject("none");
  models::Workflow wf;
  wf.AddRequired("flight", [&] {
    ASSERT_TRUE(tm_->Write(TransactionManager::Self(), flight,
                           TestBytes("booked"))
                    .ok());
  });
  wf.AddRequired("hotel", [&] {
    ASSERT_TRUE(tm_->Write(TransactionManager::Self(), hotel,
                           TestBytes("reserved"))
                    .ok());
  });
  auto out = wf.Run(*tm_);
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.steps.size(), 2u);
  EXPECT_EQ(ReadCommitted(flight), "booked");
  EXPECT_EQ(ReadCommitted(hotel), "reserved");
}

TEST_F(WorkflowModelTest, OrderedAlternativesPreferEarlier) {
  ObjectId seat = MakeObject("none");
  models::Workflow::Step step;
  step.name = "flight";
  // Delta fails, United succeeds, American never tried.
  std::atomic<bool> american_tried{false};
  step.alternatives = {
      [&] { tm_->Abort(TransactionManager::Self()); },
      [&] {
        ASSERT_TRUE(tm_->Write(TransactionManager::Self(), seat,
                               TestBytes("united"))
                        .ok());
      },
      [&] { american_tried = true; },
  };
  models::Workflow wf;
  wf.AddStep(std::move(step));
  auto out = wf.Run(*tm_);
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.steps[0].winner, 1);
  EXPECT_FALSE(american_tried.load());
  EXPECT_EQ(ReadCommitted(seat), "united");
}

TEST_F(WorkflowModelTest, RequiredFailureCompensatesCommittedPrefix) {
  ObjectId flight = MakeObject("none");
  models::Workflow wf;
  wf.AddRequired(
      "flight",
      [&] {
        ASSERT_TRUE(tm_->Write(TransactionManager::Self(), flight,
                               TestBytes("booked"))
                        .ok());
      },
      [&] {
        // cancel_flight_reservation
        ASSERT_TRUE(tm_->Write(TransactionManager::Self(), flight,
                               TestBytes("cancelled"))
                        .ok());
      });
  wf.AddRequired("hotel",
                 [&] { tm_->Abort(TransactionManager::Self()); });
  auto out = wf.Run(*tm_);
  EXPECT_FALSE(out.succeeded);
  EXPECT_EQ(out.failed_step, "hotel");
  EXPECT_EQ(out.compensations_run, 1u);
  EXPECT_EQ(ReadCommitted(flight), "cancelled");
}

TEST_F(WorkflowModelTest, OptionalFailureDoesNotAbortWorkflow) {
  ObjectId flight = MakeObject("none");
  models::Workflow wf;
  wf.AddRequired("flight", [&] {
    ASSERT_TRUE(tm_->Write(TransactionManager::Self(), flight,
                           TestBytes("booked"))
                    .ok());
  });
  wf.AddOptional("car", [&] { tm_->Abort(TransactionManager::Self()); });
  auto out = wf.Run(*tm_);
  EXPECT_TRUE(out.succeeded);  // "X can take public transportation"
  EXPECT_EQ(out.steps[1].winner, -1);
  EXPECT_EQ(out.compensations_run, 0u);
  EXPECT_EQ(ReadCommitted(flight), "booked");
}

TEST_F(WorkflowModelTest, RaceFirstCompletionWins) {
  ObjectId car = MakeObject("none");
  models::Workflow::Step step;
  step.name = "car";
  step.mode = models::Workflow::Mode::kRace;
  step.required = false;
  step.alternatives = {
      [&] {
        std::this_thread::sleep_for(150ms);  // National is slow
        tm_->Write(TransactionManager::Self(), car, TestBytes("national"))
            .ok();
      },
      [&] {
        tm_->Write(TransactionManager::Self(), car, TestBytes("avis")).ok();
      },
  };
  models::Workflow wf;
  wf.AddStep(std::move(step));
  auto out = wf.Run(*tm_);
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.steps[0].winner, 1);  // Avis finished first
  EXPECT_EQ(ReadCommitted(car), "avis");
}

TEST_F(WorkflowModelTest, RaceAllAbortedFails) {
  models::Workflow::Step step;
  step.name = "car";
  step.mode = models::Workflow::Mode::kRace;
  step.required = false;
  step.alternatives = {
      [&] { tm_->Abort(TransactionManager::Self()); },
      [&] { tm_->Abort(TransactionManager::Self()); },
  };
  models::Workflow wf;
  wf.AddStep(std::move(step));
  auto out = wf.Run(*tm_);
  EXPECT_TRUE(out.succeeded);  // optional step
  EXPECT_EQ(out.steps[0].winner, -1);
}

TEST_F(WorkflowModelTest, MultiStepFailureCompensatesInReverse) {
  std::vector<std::string> trace;
  std::mutex mu;
  auto mark = [&](const std::string& s) {
    std::lock_guard<std::mutex> g(mu);
    trace.push_back(s);
  };
  models::Workflow wf;
  wf.AddRequired("s1", [&] { mark("s1"); }, [&] { mark("c1"); });
  wf.AddRequired("s2", [&] { mark("s2"); }, [&] { mark("c2"); });
  wf.AddRequired("s3",
                 [&] { tm_->Abort(TransactionManager::Self()); });
  auto out = wf.Run(*tm_);
  EXPECT_FALSE(out.succeeded);
  EXPECT_EQ(trace, (std::vector<std::string>{"s1", "s2", "c2", "c1"}));
}

TEST_F(WorkflowModelTest, OptionalStepsAreNotCompensated) {
  std::atomic<bool> optional_compensated{false};
  models::Workflow wf;
  wf.AddRequired("s1", [] {});
  models::Workflow::Step opt;
  opt.name = "opt";
  opt.required = false;
  opt.alternatives = {[] {}};
  opt.compensation = [&] { optional_compensated = true; };
  wf.AddStep(std::move(opt));
  wf.AddRequired("s3", [&] { tm_->Abort(TransactionManager::Self()); });
  auto out = wf.Run(*tm_);
  EXPECT_FALSE(out.succeeded);
  EXPECT_FALSE(optional_compensated.load());
}

TEST_F(WorkflowModelTest, EmptyWorkflowSucceeds) {
  models::Workflow wf;
  auto out = wf.Run(*tm_);
  EXPECT_TRUE(out.succeeded);
  EXPECT_TRUE(out.steps.empty());
}

}  // namespace
}  // namespace asset
