#ifndef ASSET_TESTS_JSON_LITE_H_
#define ASSET_TESTS_JSON_LITE_H_

// Minimal recursive-descent JSON parser for test assertions: enough to
// round-trip the dumps the observability layer emits (DumpTrace,
// DumpState) and poke at values, with strict syntax checking so a
// malformed dump fails the test rather than sliding through.

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace asset {
namespace testjson {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr if absent or not an object.
  const Value* Find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  /// Parses `text` as one JSON document (trailing whitespace allowed,
  /// trailing garbage rejected). Returns false on any syntax error.
  static bool Parse(const std::string& text, Value* out) {
    Parser p(text);
    if (!p.ParseValue(out)) return false;
    p.SkipWs();
    return p.pos_ == text.size();
  }

 private:
  explicit Parser(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, Value* out, Value::Kind kind, bool b) {
    size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    out->kind = kind;
    out->boolean = b;
    return true;
  }

  bool ParseValue(Value* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = Value::Kind::kString;
        return ParseString(&out->str);
      case 't':
        return Literal("true", out, Value::Kind::kBool, true);
      case 'f':
        return Literal("false", out, Value::Kind::kBool, false);
      case 'n':
        return Literal("null", out, Value::Kind::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out) {
    out->kind = Value::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      Value v;
      if (!ParseValue(&v)) return false;
      out->obj.emplace(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(Value* out) {
    out->kind = Value::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value v;
      if (!ParseValue(&v)) return false;
      out->arr.push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // ASCII escapes decode exactly; anything wider is kept as '?'
          // (the dumps only \u-escape control characters).
          out->push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(Value* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start) return false;
    out->kind = Value::Kind::kNumber;
    out->number = v;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline bool ParseJson(const std::string& text, Value* out) {
  return Parser::Parse(text, out);
}

}  // namespace testjson
}  // namespace asset

#endif  // ASSET_TESTS_JSON_LITE_H_
