// Sharded-kernel behavior: disjoint writers never contend, a lock
// release wakes only transactions waiting on the released objects (not
// every sleeper in the kernel), and a permit insertion re-drives a
// blocked acquire promptly.
//
// All contention assertions go through KernelStats counters, never
// wall-clock timing — the counters are exact regardless of scheduling.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "kernel_fixture.h"

namespace asset {
namespace {

using namespace std::chrono_literals;

class ShardingTest : public KernelFixture {
 protected:
  /// Begins a transaction that runs `fn` and returns its tid.
  Tid Spawn(std::function<void()> fn) {
    Tid t = tm_->InitiateFn(std::move(fn));
    EXPECT_TRUE(tm_->Begin(t));
    return t;
  }

  KernelStats::Snapshot Snap() { return tm_->stats().snapshot(); }

  /// Polls `pred` until it holds or `deadline` elapses.
  static bool Eventually(const std::function<bool()>& pred,
                         std::chrono::milliseconds deadline = 5000ms) {
    auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      if (pred()) return true;
      std::this_thread::sleep_for(1ms);
    }
    return pred();
  }
};

TEST_F(ShardingTest, LockTableIsPartitioned) {
  EXPECT_GT(tm_->lock_manager().shard_count(), 1u);
  // Power of two, so ShardFor can mask instead of mod.
  size_t n = tm_->lock_manager().shard_count();
  EXPECT_EQ(n & (n - 1), 0u);
}

// Eight transactions, each writing its own object, all holding their
// write locks simultaneously (the rendezvous proves they overlapped).
// Disjoint objects must produce zero lock waits and zero wakeups: under
// the old single-mutex kernel every release broadcast to everyone; the
// sharded kernel must not even register a wait.
TEST_F(ShardingTest, DisjointWritersNeverWaitOrWake) {
  constexpr int kWriters = 8;
  std::vector<ObjectId> oids;
  for (int i = 0; i < kWriters; ++i) {
    oids.push_back(MakeObject("init"));
  }

  auto before = Snap();
  std::atomic<int> holding{0};
  std::vector<Tid> ts;
  for (int i = 0; i < kWriters; ++i) {
    ts.push_back(Spawn([&, i] {
      Tid self = TransactionManager::Self();
      ASSERT_TRUE(tm_->Write(self, oids[i], TestBytes("w")).ok());
      holding.fetch_add(1);
      // Hold the lock until every writer holds its own: all eight are
      // concurrently inside the kernel, locks granted, none waiting.
      while (holding.load() < kWriters) std::this_thread::sleep_for(1ms);
    }));
  }
  for (Tid t : ts) EXPECT_TRUE(tm_->Commit(t));

  auto after = Snap();
  EXPECT_EQ(after.lock_waits, before.lock_waits);
  EXPECT_EQ(after.lock_wakeups, before.lock_wakeups);
  EXPECT_EQ(after.lock_wait_retries, before.lock_wait_retries);
  EXPECT_EQ(after.txns_committed, before.txns_committed + kWriters);
}

// A waiter blocked on object A must sleep through a commit that
// releases only object B: no wakeup, no grant rescan. Committing the
// holder of A then wakes it (and only then).
TEST_F(ShardingTest, ReleaseOnOtherObjectDoesNotWakeWaiter) {
  ObjectId a = MakeObject("a"), b = MakeObject("b");
  std::atomic<bool> release1{false}, release2{false};
  std::atomic<bool> h1_locked{false}, h2_locked{false};
  Tid h1 = Spawn([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), a, TestBytes("h1")).ok());
    h1_locked = true;
    while (!release1) std::this_thread::sleep_for(1ms);
  });
  Tid h2 = Spawn([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), b, TestBytes("h2")).ok());
    h2_locked = true;
    while (!release2) std::this_thread::sleep_for(1ms);
  });
  ASSERT_TRUE(Eventually([&] { return h1_locked && h2_locked; }));

  auto before = Snap();
  std::atomic<bool> waiter_done{false};
  Tid w = Spawn([&] {
    ASSERT_TRUE(tm_->Write(TransactionManager::Self(), a, TestBytes("w")).ok());
    waiter_done = true;
  });
  ASSERT_TRUE(Eventually([&] { return Snap().lock_waits > before.lock_waits; }));

  // Releasing B is invisible to a waiter on A.
  release2 = true;
  EXPECT_TRUE(tm_->Commit(h2));
  std::this_thread::sleep_for(100ms);
  auto mid = Snap();
  EXPECT_FALSE(waiter_done.load());
  EXPECT_EQ(mid.lock_wakeups, before.lock_wakeups);
  EXPECT_EQ(mid.lock_wait_retries, before.lock_wait_retries);

  // Releasing A wakes the waiter, which rescans and is granted.
  release1 = true;
  EXPECT_TRUE(tm_->Commit(h1));
  ASSERT_TRUE(Eventually([&] { return waiter_done.load(); }));
  EXPECT_TRUE(tm_->Commit(w));
  auto after = Snap();
  EXPECT_GE(after.lock_wakeups, mid.lock_wakeups + 1);
  EXPECT_GE(after.lock_wait_retries, mid.lock_wait_retries + 1);
  EXPECT_EQ(ReadCommitted(a), "w");
}

// permit(ti, tj) inserted while tj is already blocked on ti's lock must
// re-drive the blocked acquire: tj is woken, the grant check now passes
// via the permit, and ti's lock is suspended (§4.2 step 1a).
TEST_F(ShardingTest, PermitInsertionWakesBlockedWaiter) {
  ObjectId a = MakeObject("a");
  std::atomic<bool> release{false}, h_locked{false};
  Tid h = Spawn([&] {
    ASSERT_TRUE(tm_->Write(TransactionManager::Self(), a, TestBytes("h")).ok());
    h_locked = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  ASSERT_TRUE(Eventually([&] { return h_locked.load(); }));

  auto before = Snap();
  std::atomic<bool> waiter_wrote{false};
  Tid w = Spawn([&] {
    ASSERT_TRUE(tm_->Write(TransactionManager::Self(), a, TestBytes("w")).ok());
    waiter_wrote = true;
  });
  ASSERT_TRUE(Eventually([&] { return Snap().lock_waits > before.lock_waits; }));
  EXPECT_FALSE(waiter_wrote.load());

  ASSERT_TRUE(tm_->Permit(h, w).ok());
  ASSERT_TRUE(Eventually([&] { return waiter_wrote.load(); }));
  auto after = Snap();
  // Permit-driven wakeups are broadcast to lock waiters (counted under
  // permit_broadcasts); the woken waiter rescans and is granted via the
  // permit, suspending the holder's lock.
  EXPECT_GE(after.permit_broadcasts, before.permit_broadcasts + 1);
  EXPECT_GE(after.lock_wait_retries, before.lock_wait_retries + 1);
  EXPECT_GE(after.lock_suspensions, before.lock_suspensions + 1);

  EXPECT_TRUE(tm_->Commit(w));
  release = true;
  EXPECT_TRUE(tm_->Commit(h));
}

// Regression: a permit inserted while the requester is between its
// lock-state check and its first sleep must not be lost. The insertion
// below is deliberately unsynchronized with the waiter's acquire (a
// varying delay sweeps the window); a lost wakeup would stall the
// waiter into the 2s lock timeout and fail both the Eventually bound
// and the write.
TEST_F(ShardingTest, PermitConcurrentWithBlockingAcquireIsNotLost) {
  ObjectId a = MakeObject("a");
  for (int round = 0; round < 25; ++round) {
    std::atomic<bool> release{false}, h_locked{false};
    Tid h = Spawn([&] {
      ASSERT_TRUE(
          tm_->Write(TransactionManager::Self(), a, TestBytes("h")).ok());
      h_locked = true;
      while (!release) std::this_thread::sleep_for(1ms);
    });
    ASSERT_TRUE(Eventually([&] { return h_locked.load(); }));

    std::atomic<bool> w_ok{false}, w_done{false};
    Tid w = Spawn([&] {
      w_ok =
          tm_->Write(TransactionManager::Self(), a, TestBytes("w")).ok();
      w_done = true;
    });
    std::this_thread::sleep_for(std::chrono::microseconds((137 * round) %
                                                          1500));
    ASSERT_TRUE(tm_->Permit(h, w).ok());
    // Well under the 2s lock timeout: the waiter must be admitted by
    // the permit, not by the holder eventually going away.
    ASSERT_TRUE(Eventually([&] { return w_done.load(); }, 1500ms));
    EXPECT_TRUE(w_ok.load());
    EXPECT_TRUE(tm_->Commit(w));
    release = true;
    EXPECT_TRUE(tm_->Commit(h));
  }
}

}  // namespace
}  // namespace asset
