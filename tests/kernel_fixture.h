#ifndef ASSET_TESTS_KERNEL_FIXTURE_H_
#define ASSET_TESTS_KERNEL_FIXTURE_H_

// Shared fixture for transaction-kernel tests: an in-memory storage
// stack plus a TransactionManager with short timeouts (so negative tests
// fail fast instead of hanging).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/transaction_manager.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/object_store.h"
#include "storage/wal.h"

namespace asset {

inline std::vector<uint8_t> TestBytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

inline std::string TestStr(const std::vector<uint8_t>& b) {
  return std::string(b.begin(), b.end());
}

class KernelFixture : public ::testing::Test {
 protected:
  KernelFixture() : pool_(&disk_, 256), store_(&pool_) {
    EXPECT_TRUE(store_.Open().ok());
    TransactionManager::Options o;
    o.lock.lock_timeout = std::chrono::milliseconds(2000);
    o.commit_timeout = std::chrono::milliseconds(3000);
    tm_ = std::make_unique<TransactionManager>(&log_, &store_, o);
  }

  /// Creates and commits an object, returning its id.
  ObjectId MakeObject(const std::string& value) {
    ObjectId oid = kNullObjectId;
    Tid t = tm_->Initiate([&] {
      oid = tm_->CreateObject(TransactionManager::Self(), TestBytes(value))
                .value();
    });
    EXPECT_TRUE(tm_->Begin(t));
    EXPECT_TRUE(tm_->Commit(t));
    return oid;
  }

  /// Reads an object's committed value through a fresh transaction.
  std::string ReadCommitted(ObjectId oid) {
    std::string out = "<error>";
    Tid t = tm_->Initiate([&] {
      auto v = tm_->Read(TransactionManager::Self(), oid);
      if (v.ok()) {
        out = TestStr(*v);
      } else if (v.status().IsNotFound()) {
        out = "<missing>";
      }
    });
    EXPECT_TRUE(tm_->Begin(t));
    EXPECT_TRUE(tm_->Commit(t));
    return out;
  }

  InMemoryDiskManager disk_;
  BufferPool pool_;
  ObjectStore store_;
  LogManager log_;
  std::unique_ptr<TransactionManager> tm_;
};

}  // namespace asset

#endif  // ASSET_TESTS_KERNEL_FIXTURE_H_
