// Saga model (§3.1.6): sequential components that commit as they go,
// compensation in reverse order on failure, compensation retry.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <vector>

#include "core/database.h"
#include "kernel_fixture.h"
#include "models/saga.h"

namespace asset {
namespace {

class SagaModelTest : public KernelFixture {
 protected:
  // Records execution order for shape assertions.
  std::vector<std::string> trace_;
  std::mutex trace_mu_;
  void Trace(const std::string& s) {
    std::lock_guard<std::mutex> g(trace_mu_);
    trace_.push_back(s);
  }
};

TEST_F(SagaModelTest, AllStepsCommitInOrder) {
  models::Saga saga;
  for (int i = 1; i <= 4; ++i) {
    saga.AddStep([this, i] { Trace("t" + std::to_string(i)); },
                 [this, i] { Trace("ct" + std::to_string(i)); });
  }
  auto out = saga.Run(*tm_);
  EXPECT_TRUE(out.committed);
  EXPECT_EQ(out.steps_committed, 4u);
  EXPECT_EQ(out.compensations_run, 0u);
  EXPECT_EQ(trace_, (std::vector<std::string>{"t1", "t2", "t3", "t4"}));
}

TEST_F(SagaModelTest, FailureCompensatesInReverseOrder) {
  // The paper's aborted-saga shape: t1 t2 ... tk ct_k ... ct_1.
  models::Saga saga;
  for (int i = 1; i <= 3; ++i) {
    saga.AddStep([this, i] { Trace("t" + std::to_string(i)); },
                 [this, i] { Trace("ct" + std::to_string(i)); });
  }
  saga.AddStep([this] {
    Trace("t4");
    tm_->Abort(TransactionManager::Self());
  });
  auto out = saga.Run(*tm_);
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(out.steps_committed, 3u);
  EXPECT_EQ(out.compensations_run, 3u);
  EXPECT_EQ(trace_, (std::vector<std::string>{"t1", "t2", "t3", "t4",
                                              "ct3", "ct2", "ct1"}));
}

TEST_F(SagaModelTest, StepEffectsCommitImmediately) {
  // Component isolation only: committed components are visible even
  // though the saga is still in flight — and stay visible after a later
  // failure unless compensated.
  ObjectId oid = MakeObject("0");
  models::Saga saga;
  saga.AddStep(
      [&] {
        ASSERT_TRUE(
            tm_->Write(TransactionManager::Self(), oid, TestBytes("step1"))
                .ok());
      },
      [&] {
        ASSERT_TRUE(tm_->Write(TransactionManager::Self(), oid,
                               TestBytes("compensated"))
                        .ok());
      });
  saga.AddStep([&] {
    // Mid-saga observation: step1's value is already committed.
    EXPECT_EQ(ReadCommitted(oid), "step1");
    tm_->Abort(TransactionManager::Self());
  });
  auto out = saga.Run(*tm_);
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(ReadCommitted(oid), "compensated");
}

TEST_F(SagaModelTest, BankTransferSagaWithCompensation) {
  // Move 30 from A to B in two steps; crediting B fails, so the debit
  // of A is compensated.
  ObjectId a = kNullObjectId, b = kNullObjectId;
  {
    Tid t = tm_->Initiate([&] {
      Tid self = TransactionManager::Self();
      a = tm_->CreateObject(self, Database::Encode<int64_t>(100)).value();
      b = tm_->CreateObject(self, Database::Encode<int64_t>(50)).value();
    });
    tm_->Begin(t);
    ASSERT_TRUE(tm_->Commit(t));
  }
  auto adjust = [&](ObjectId acct, int64_t delta) {
    Tid self = TransactionManager::Self();
    int64_t v =
        Database::Decode<int64_t>(*tm_->Read(self, acct)).value();
    ASSERT_TRUE(
        tm_->Write(self, acct, Database::Encode<int64_t>(v + delta)).ok());
  };
  models::Saga saga;
  saga.AddStep([&] { adjust(a, -30); }, [&] { adjust(a, +30); });
  saga.AddStep([&] {
    tm_->Abort(TransactionManager::Self());  // credit rejected
  });
  auto out = saga.Run(*tm_);
  EXPECT_FALSE(out.committed);
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    EXPECT_EQ(Database::Decode<int64_t>(*tm_->Read(self, a)).value(), 100);
    EXPECT_EQ(Database::Decode<int64_t>(*tm_->Read(self, b)).value(), 50);
  });
  tm_->Begin(t);
  ASSERT_TRUE(tm_->Commit(t));
}

TEST_F(SagaModelTest, CompensationRetriedUntilCommit) {
  std::atomic<int> comp_attempts{0};
  models::Saga saga;
  saga.AddStep([this] { Trace("t1"); },
               [&] {
                 // Fail twice, then succeed — the paper's do/while.
                 if (comp_attempts.fetch_add(1) < 2) {
                   tm_->Abort(TransactionManager::Self());
                 }
               });
  saga.AddStep([this] { tm_->Abort(TransactionManager::Self()); });
  auto out = saga.Run(*tm_);
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(out.compensations_run, 1u);
  EXPECT_EQ(comp_attempts.load(), 3);
}

TEST_F(SagaModelTest, CompensationRetryBoundStopsRunaway) {
  models::Saga saga;
  std::atomic<int> attempts{0};
  saga.AddStep([] {},
               [&] {
                 attempts.fetch_add(1);
                 tm_->Abort(TransactionManager::Self());
               });
  saga.AddStep([this] { tm_->Abort(TransactionManager::Self()); });
  auto out = saga.Run(*tm_, /*max_compensation_attempts=*/5);
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(attempts.load(), 5);
  EXPECT_EQ(out.compensations_run, 0u);  // never actually committed
}

TEST_F(SagaModelTest, FirstStepFailureNeedsNoCompensation) {
  models::Saga saga;
  saga.AddStep([this] {
    Trace("t1");
    tm_->Abort(TransactionManager::Self());
  },
               [this] { Trace("ct1"); });
  saga.AddStep([this] { Trace("t2"); });
  auto out = saga.Run(*tm_);
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(out.steps_committed, 0u);
  EXPECT_EQ(out.compensations_run, 0u);
  EXPECT_EQ(trace_, (std::vector<std::string>{"t1"}));
}

TEST_F(SagaModelTest, StepsWithoutCompensationAreSkippedDuringUnwind) {
  models::Saga saga;
  saga.AddStep([this] { Trace("t1"); }, [this] { Trace("ct1"); });
  saga.AddStep([this] { Trace("t2"); });  // no compensation
  saga.AddStep([this] { tm_->Abort(TransactionManager::Self()); });
  auto out = saga.Run(*tm_);
  EXPECT_FALSE(out.committed);
  EXPECT_EQ(out.steps_committed, 2u);
  EXPECT_EQ(out.compensations_run, 1u);
  EXPECT_EQ(trace_, (std::vector<std::string>{"t1", "t2", "ct1"}));
}

TEST_F(SagaModelTest, EmptySagaCommits) {
  models::Saga saga;
  auto out = saga.Run(*tm_);
  EXPECT_TRUE(out.committed);
}

}  // namespace
}  // namespace asset
