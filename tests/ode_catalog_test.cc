// Catalog tests: bootstrap, bind/lookup/unbind/list, transactional
// rollback of bindings, persistence across recovery.

#include <gtest/gtest.h>

#include "core/database.h"
#include "core/database_internal.h"
#include "kernel_fixture.h"
#include "models/atomic.h"
#include "ode/catalog.h"

namespace asset {
namespace {

using ode::Catalog;

class CatalogTest : public KernelFixture {
 protected:
  void Bootstrap() {
    Catalog catalog(tm_.get());
    Tid t = tm_->Initiate([&] {
      ASSERT_TRUE(
          catalog.Bootstrap(TransactionManager::Self(), &store_).ok());
    });
    ASSERT_TRUE(tm_->Begin(t));
    ASSERT_TRUE(tm_->Commit(t));
  }

  void InTxn(std::function<void(Tid)> fn) {
    Tid t = tm_->Initiate([&] { fn(TransactionManager::Self()); });
    ASSERT_TRUE(tm_->Begin(t));
    ASSERT_TRUE(tm_->Commit(t));
  }
};

TEST_F(CatalogTest, BootstrapIsIdempotent) {
  Bootstrap();
  Bootstrap();
  EXPECT_TRUE(store_.Exists(Catalog::kCatalogOid));
}

TEST_F(CatalogTest, BindAndLookup) {
  Bootstrap();
  Catalog catalog(tm_.get());
  ObjectId target = MakeObject("the index");
  InTxn([&](Tid t) {
    ASSERT_TRUE(catalog.Bind(t, "orders_index", target).ok());
  });
  InTxn([&](Tid t) {
    EXPECT_EQ(catalog.Lookup(t, "orders_index").value(), target);
    EXPECT_TRUE(catalog.Lookup(t, "missing").status().IsNotFound());
  });
}

TEST_F(CatalogTest, RebindReplaces) {
  Bootstrap();
  Catalog catalog(tm_.get());
  ObjectId a = MakeObject("a");
  ObjectId b = MakeObject("b");
  InTxn([&](Tid t) { ASSERT_TRUE(catalog.Bind(t, "root", a).ok()); });
  InTxn([&](Tid t) { ASSERT_TRUE(catalog.Bind(t, "root", b).ok()); });
  InTxn([&](Tid t) { EXPECT_EQ(catalog.Lookup(t, "root").value(), b); });
}

TEST_F(CatalogTest, UnbindRemoves) {
  Bootstrap();
  Catalog catalog(tm_.get());
  ObjectId a = MakeObject("a");
  InTxn([&](Tid t) { ASSERT_TRUE(catalog.Bind(t, "tmp", a).ok()); });
  InTxn([&](Tid t) { ASSERT_TRUE(catalog.Unbind(t, "tmp").ok()); });
  InTxn([&](Tid t) {
    EXPECT_TRUE(catalog.Lookup(t, "tmp").status().IsNotFound());
    EXPECT_TRUE(catalog.Unbind(t, "tmp").IsNotFound());
  });
}

TEST_F(CatalogTest, ListIsSorted) {
  Bootstrap();
  Catalog catalog(tm_.get());
  ObjectId a = MakeObject("x");
  InTxn([&](Tid t) {
    ASSERT_TRUE(catalog.Bind(t, "zeta", a).ok());
    ASSERT_TRUE(catalog.Bind(t, "alpha", a).ok());
    ASSERT_TRUE(catalog.Bind(t, "mid", a).ok());
  });
  InTxn([&](Tid t) {
    EXPECT_EQ(catalog.List(t).value(),
              (std::vector<std::string>{"alpha", "mid", "zeta"}));
  });
}

TEST_F(CatalogTest, AbortedBindRollsBack) {
  Bootstrap();
  Catalog catalog(tm_.get());
  ObjectId a = MakeObject("a");
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(catalog.Bind(self, "doomed", a).ok());
    tm_->Abort(self);
  });
  tm_->Begin(t);
  EXPECT_FALSE(tm_->Commit(t));
  InTxn([&](Tid check) {
    EXPECT_TRUE(catalog.Lookup(check, "doomed").status().IsNotFound());
  });
}

TEST_F(CatalogTest, BindingsSurviveCrashRecovery) {
  auto db = Database::Open().value();
  Catalog catalog(&KernelOf(*db));
  ObjectId target = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(catalog.Bootstrap(self, &StoreOf(*db)).ok());
    target = db->Create<int64_t>(9).value();
    ASSERT_TRUE(catalog.Bind(self, "survivor", target).ok());
  });
  ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
  Catalog after(&KernelOf(*db));
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(after.Lookup(TransactionManager::Self(), "survivor").value(),
              target);
  });
}

}  // namespace
}  // namespace asset
