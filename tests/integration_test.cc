// End-to-end tests through the Database facade: typed objects, crash
// recovery, checkpoints, file persistence, and a concurrent banking
// workload with invariant checks.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "core/database.h"
#include "core/database_internal.h"
#include "models/atomic.h"
#include "models/saga.h"

namespace asset {
namespace {

using namespace std::chrono_literals;

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(DatabaseTest, OpenTypedRoundTrip) {
  auto db = Database::Open().value();
  ObjectId oid = kNullObjectId;
  bool ok = models::RunAtomic(KernelOf(*db), [&] {
    oid = db->Create<int64_t>(41).value();
    ASSERT_TRUE(db->Put<int64_t>(oid, 42).ok());
    EXPECT_EQ(db->Get<int64_t>(oid).value(), 42);
  });
  EXPECT_TRUE(ok);
  ok = models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->Get<int64_t>(oid).value(), 42);
  });
  EXPECT_TRUE(ok);
}

TEST(DatabaseTest, DecodeSizeMismatchIsCorruption) {
  auto db = Database::Open().value();
  ObjectId oid = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] {
    oid = KernelOf(*db).CreateObject(TransactionManager::Self(),
                                 Bytes("3bytes"))
              .value();
  });
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->Get<int64_t>(oid).status().code(),
              StatusCode::kCorruption);
  });
}

TEST(DatabaseTest, CrashRecoveryKeepsCommittedDropsInFlight) {
  auto db = Database::Open().value();
  ObjectId committed_oid = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] {
    committed_oid = db->Create<int64_t>(7).value();
  });
  // An in-flight transaction that never commits: its create must vanish.
  ObjectId doomed_oid = kNullObjectId;
  Tid straggler = KernelOf(*db).Initiate([&] {
    doomed_oid = db->Create<int64_t>(666).value();
  });
  KernelOf(*db).Begin(straggler);
  ASSERT_EQ(KernelOf(*db).Wait(straggler), 1);

  RecoveryManager::Report report;
  ASSERT_TRUE(db->CrashAndRecover(&report).ok());
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->Get<int64_t>(committed_oid).value(), 7);
    EXPECT_TRUE(db->Get<int64_t>(doomed_oid).status().IsNotFound());
  });
  EXPECT_FALSE(report.winners.empty());
}

TEST(DatabaseTest, CrashAfterUpdateRestoresCommittedValue) {
  auto db = Database::Open().value();
  ObjectId oid = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] { oid = db->Create<int64_t>(1).value(); });
  // Uncommitted overwrite, flushed to the log but not committed.
  Tid t = KernelOf(*db).Initiate([&] {
    ASSERT_TRUE(db->Put<int64_t>(oid, 999).ok());
  });
  KernelOf(*db).Begin(t);
  ASSERT_EQ(KernelOf(*db).Wait(t), 1);
  LogOf(*db).Flush();
  ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->Get<int64_t>(oid).value(), 1);
  });
}

TEST(DatabaseTest, CheckpointThenCrashRecoversQuickly) {
  auto db = Database::Open().value();
  ObjectId oid = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] { oid = db->Create<int64_t>(5).value(); });
  ASSERT_TRUE(db->Checkpoint().ok());
  models::RunAtomic(KernelOf(*db), [&] {
    ASSERT_TRUE(db->Put<int64_t>(oid, 6).ok());
  });
  RecoveryManager::Report report;
  ASSERT_TRUE(db->CrashAndRecover(&report).ok());
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->Get<int64_t>(oid).value(), 6);
  });
  // Analysis started at the checkpoint, not at the log head.
  EXPECT_LE(report.records_scanned, 6u);
}

TEST(DatabaseTest, RepeatedCrashRecoverCycles) {
  auto db = Database::Open().value();
  ObjectId oid = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] { oid = db->Create<int64_t>(0).value(); });
  for (int64_t round = 1; round <= 5; ++round) {
    models::RunAtomic(KernelOf(*db), [&] {
      ASSERT_TRUE(db->Put<int64_t>(oid, round).ok());
    });
    ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
    models::RunAtomic(KernelOf(*db), [&] {
      EXPECT_EQ(db->Get<int64_t>(oid).value(), round);
    });
  }
}

TEST(DatabaseTest, FileBackedDataSurvivesReopen) {
  std::string path = ::testing::TempDir() + "/asset_db_reopen.db";
  std::remove(path.c_str());
  ObjectId oid = kNullObjectId;
  {
    Database::Options opts;
    opts.path = path;
    auto db = Database::Open(opts).value();
    models::RunAtomic(KernelOf(*db), [&] {
      oid = db->Create<int64_t>(1234).value();
    });
    ASSERT_TRUE(db->Checkpoint().ok());  // pages to disk
  }
  {
    Database::Options opts;
    opts.path = path;
    auto db = Database::Open(opts).value();
    models::RunAtomic(KernelOf(*db), [&] {
      EXPECT_EQ(db->Get<int64_t>(oid).value(), 1234);
    });
  }
  std::remove(path.c_str());
}

TEST(DatabaseTest, ConcurrentBankTransfersConserveTotal) {
  auto db = Database::Open().value();
  constexpr int kAccounts = 8;
  constexpr int64_t kInitial = 1000;
  std::vector<ObjectId> accounts;
  models::RunAtomic(KernelOf(*db), [&] {
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(db->Create<int64_t>(kInitial).value());
    }
  });
  ASSERT_EQ(accounts.size(), static_cast<size_t>(kAccounts));

  std::atomic<int> transfers_done{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      Random rng(1000 + w);
      for (int i = 0; i < 40; ++i) {
        size_t from = rng.Uniform(kAccounts);
        size_t to = rng.Uniform(kAccounts);
        if (from == to) continue;
        int64_t amount = static_cast<int64_t>(rng.Range(1, 50));
        bool ok = models::RunAtomicWithRetry(
            KernelOf(*db),
            [&] {
              // Fixed lock order prevents deadlocks.
              ObjectId lo = std::min(accounts[from], accounts[to]);
              ObjectId hi = std::max(accounts[from], accounts[to]);
              auto vlo = db->Get<int64_t>(lo);
              if (!vlo.ok()) return;
              auto vhi = db->Get<int64_t>(hi);
              if (!vhi.ok()) return;
              int64_t f = accounts[from] == lo ? *vlo : *vhi;
              if (f < amount) {
                KernelOf(*db).Abort(TransactionManager::Self());
                return;
              }
              int64_t flo = *vlo + (accounts[from] == lo ? -amount : amount);
              int64_t fhi = *vhi + (accounts[from] == hi ? -amount : amount);
              if (!db->Put<int64_t>(lo, flo).ok()) return;
              if (!db->Put<int64_t>(hi, fhi).ok()) return;
            },
            20);
        if (ok) transfers_done.fetch_add(1);
      }
    });
  }
  // Concurrent auditors: under strict 2PL every snapshot must balance.
  std::atomic<bool> stop_audit{false};
  std::atomic<int> bad_audits{0};
  std::thread auditor([&] {
    while (!stop_audit) {
      models::RunAtomic(KernelOf(*db), [&] {
        int64_t total = 0;
        for (ObjectId a : accounts) {
          auto v = db->Get<int64_t>(a);
          if (!v.ok()) return;
          total += *v;
        }
        if (total != kAccounts * kInitial) bad_audits.fetch_add(1);
      });
      std::this_thread::sleep_for(5ms);
    }
  });
  for (auto& th : threads) th.join();
  stop_audit = true;
  auditor.join();
  EXPECT_EQ(bad_audits.load(), 0);
  EXPECT_GT(transfers_done.load(), 0);
  int64_t total = 0;
  models::RunAtomic(KernelOf(*db), [&] {
    total = 0;
    for (ObjectId a : accounts) total += db->Get<int64_t>(a).value();
  });
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(DatabaseTest, SagaSurvivesCrashAfterCommittedSteps) {
  // Saga steps commit independently; a crash between steps preserves the
  // committed prefix exactly.
  auto db = Database::Open().value();
  ObjectId inventory = kNullObjectId;
  ObjectId orders = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] {
    inventory = db->Create<int64_t>(10).value();
    orders = db->Create<int64_t>(0).value();
  });
  // Step 1 commits: reserve one unit.
  models::Saga saga;
  saga.AddStep(
      [&] {
        int64_t v = db->Get<int64_t>(inventory).value();
        ASSERT_TRUE(db->Put<int64_t>(inventory, v - 1).ok());
      },
      [&] {
        int64_t v = db->Get<int64_t>(inventory).value();
        db->Put<int64_t>(inventory, v + 1).ok();
      });
  saga.AddStep([&] {
    int64_t v = db->Get<int64_t>(orders).value();
    ASSERT_TRUE(db->Put<int64_t>(orders, v + 1).ok());
  });
  auto out = saga.Run(KernelOf(*db));
  EXPECT_TRUE(out.committed);
  ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->Get<int64_t>(inventory).value(), 9);
    EXPECT_EQ(db->Get<int64_t>(orders).value(), 1);
  });
}

TEST(DatabaseTest, FileBackedWalReplaysWithoutCheckpoint) {
  // Durability through the WAL alone: no checkpoint, no page flush —
  // close the database (its cache dies with it) and reopen; committed
  // work must be reconstructed from the log file.
  std::string path = ::testing::TempDir() + "/asset_db_wal.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  ObjectId oid = kNullObjectId;
  ObjectId counter = kNullObjectId;
  {
    Database::Options opts;
    opts.path = path;
    auto db = Database::Open(opts).value();
    models::RunAtomic(KernelOf(*db), [&] {
      oid = db->Create<int64_t>(777).value();
      counter = db->CreateCounter(5).value();
    });
    models::RunAtomic(KernelOf(*db), [&] {
      ASSERT_TRUE(db->Add(counter, 10).ok());
    });
    // An in-flight transaction at "process exit": must not survive.
    Tid straggler = KernelOf(*db).Initiate([&] {
      db->Put<int64_t>(oid, -1).ok();
    });
    KernelOf(*db).Begin(straggler);
    ASSERT_EQ(KernelOf(*db).Wait(straggler), 1);
  }
  {
    Database::Options opts;
    opts.path = path;
    auto db = Database::Open(opts).value();
    models::RunAtomic(KernelOf(*db), [&] {
      EXPECT_EQ(db->Get<int64_t>(oid).value(), 777);
      EXPECT_EQ(db->GetCounter(counter).value(), 15);
    });
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(DatabaseTest, FileBackedSurvivesRepeatedReopens) {
  std::string path = ::testing::TempDir() + "/asset_db_reopen2.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  ObjectId counter = kNullObjectId;
  for (int round = 0; round < 4; ++round) {
    Database::Options opts;
    opts.path = path;
    auto db = Database::Open(opts).value();
    if (round == 0) {
      models::RunAtomic(KernelOf(*db), [&] {
        counter = db->CreateCounter(0).value();
      });
    }
    models::RunAtomic(KernelOf(*db), [&] {
      EXPECT_EQ(db->GetCounter(counter).value(), round);
      ASSERT_TRUE(db->Add(counter, 1).ok());
    });
    if (round == 2) ASSERT_TRUE(db->Checkpoint().ok());
  }
  Database::Options opts;
  opts.path = path;
  auto db = Database::Open(opts).value();
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->GetCounter(counter).value(), 4);
  });
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

}  // namespace
}  // namespace asset
