// Live kernel introspection: DumpState must report the exact wait-for
// edges of a blocking chain, name the last deadlock cycle, list permit
// entries, and render as parseable JSON / DOT / Prometheus text.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/database_internal.h"
#include "json_lite.h"

namespace asset {
namespace {

using testjson::ParseJson;
using testjson::Value;

std::unique_ptr<Database> OpenDb() {
  Database::Options o;
  // Long enough that a blocked chain stays observable while the test
  // polls the dump; the tests unwind the chains themselves.
  o.txn.lock.lock_timeout = std::chrono::milliseconds(20000);
  o.txn.commit_timeout = std::chrono::milliseconds(20000);
  auto db = Database::Open(o);
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

/// Parses DumpState and returns true if it contains the wait-for edge
/// `waiter --oid--> blocker`.
bool DumpHasEdge(const std::string& dump, Tid waiter, ObjectId oid,
                 Tid blocker) {
  Value root;
  if (!ParseJson(dump, &root)) {
    ADD_FAILURE() << "DumpState did not parse as JSON: " << dump;
    return false;
  }
  const Value* edges = root.Find("wait_for");
  if (edges == nullptr || !edges->is_array()) return false;
  for (const Value& e : edges->arr) {
    const Value* w = e.Find("waiter");
    const Value* o = e.Find("oid");
    const Value* b = e.Find("blockers");
    if (w == nullptr || o == nullptr || b == nullptr) continue;
    if (static_cast<Tid>(w->number) != waiter) continue;
    if (static_cast<ObjectId>(o->number) != oid) continue;
    for (const Value& t : b->arr) {
      if (static_cast<Tid>(t.number) == blocker) return true;
    }
  }
  return false;
}

/// Polls DumpState until `pred` holds or ~5s pass.
bool PollDump(Database* db, const std::function<bool(const std::string&)>& pred) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred(db->DumpState())) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

TEST(IntrospectionTest, BlockingChainReportsExactWaitForEdges) {
  auto db = OpenDb();

  ObjectId a = 0, b = 0;
  {
    auto boot = db->Begin();
    ASSERT_TRUE(boot.ok());
    a = boot->Create<int64_t>(1).value();
    b = boot->Create<int64_t>(2).value();
    ASSERT_TRUE(boot->Commit().ok());
  }

  auto t1 = db->Begin();
  auto t2 = db->Begin();
  auto t3 = db->Begin();
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());

  // t1 holds a; t2 holds b and blocks on a; t3 blocks on b. The dump
  // must show exactly t2 --a--> t1 and t3 --b--> t2.
  ASSERT_TRUE(t1->Put<int64_t>(a, 10).ok());
  ASSERT_TRUE(t2->Put<int64_t>(b, 20).ok());

  Status s2, s3;
  std::thread th2([&] { s2 = t2->Put<int64_t>(a, 21); });
  std::thread th3([&] { s3 = t3->Put<int64_t>(b, 30); });

  const Tid w2 = t2->id(), w3 = t3->id(), h1 = t1->id();
  EXPECT_TRUE(PollDump(db.get(), [&](const std::string& dump) {
    return DumpHasEdge(dump, w2, a, h1) && DumpHasEdge(dump, w3, b, w2);
  })) << db->DumpState();

  // While the chain is live, the DOT rendering carries the same edges.
  std::string dot = db->DumpWaitForDot();
  EXPECT_NE(dot.find("digraph wait_for"), std::string::npos);
  EXPECT_NE(dot.find("t" + std::to_string(w2) + " -> t" + std::to_string(h1)),
            std::string::npos)
      << dot;
  EXPECT_NE(dot.find("t" + std::to_string(w3) + " -> t" + std::to_string(w2)),
            std::string::npos)
      << dot;

  // Unwind: aborting t1 frees a (t2 proceeds); committing t2 frees b.
  ASSERT_TRUE(t1->Abort().ok());
  th2.join();
  EXPECT_TRUE(s2.ok()) << s2.ToString();
  ASSERT_TRUE(t2->Commit().ok());
  th3.join();
  EXPECT_TRUE(s3.ok()) << s3.ToString();
  ASSERT_TRUE(t3->Commit().ok());

  // With everyone terminated the wait-for graph drains to empty.
  Value root;
  ASSERT_TRUE(ParseJson(db->DumpState(), &root));
  ASSERT_NE(root.Find("wait_for"), nullptr);
  EXPECT_TRUE(root.Find("wait_for")->arr.empty());
}

TEST(IntrospectionTest, InjectedDeadlockIsNamedInTheDump) {
  auto db = OpenDb();

  ObjectId a = 0, b = 0;
  {
    auto boot = db->Begin();
    ASSERT_TRUE(boot.ok());
    a = boot->Create<int64_t>(1).value();
    b = boot->Create<int64_t>(2).value();
    ASSERT_TRUE(boot->Commit().ok());
  }

  auto t1 = db->Begin();
  auto t2 = db->Begin();
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_TRUE(t1->Put<int64_t>(a, 10).ok());
  ASSERT_TRUE(t2->Put<int64_t>(b, 20).ok());

  // t1 blocks on b; then t2 requests a, which would close the cycle —
  // the detector rejects it and dooms t2.
  Status s1;
  std::thread th1([&] { s1 = t1->Put<int64_t>(b, 11); });
  const Tid id1 = t1->id(), id2 = t2->id();
  ASSERT_TRUE(PollDump(db.get(), [&](const std::string& dump) {
    return DumpHasEdge(dump, id1, b, id2);
  })) << db->DumpState();

  Status s2 = t2->Put<int64_t>(a, 21);
  EXPECT_FALSE(s2.ok());

  // The cycle is resolved the instant it is detected, so the dump names
  // it post-hoc: last_deadlock_cycle lists both participants.
  Value root;
  ASSERT_TRUE(ParseJson(db->DumpState(), &root));
  const Value* cycle = root.Find("last_deadlock_cycle");
  ASSERT_NE(cycle, nullptr);
  ASSERT_TRUE(cycle->is_array());
  std::vector<Tid> tids;
  for (const Value& v : cycle->arr) tids.push_back(static_cast<Tid>(v.number));
  EXPECT_NE(std::find(tids.begin(), tids.end(), id1), tids.end());
  EXPECT_NE(std::find(tids.begin(), tids.end(), id2), tids.end());

  // The doomed side's lock release lets t1 finish.
  th1.join();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  ASSERT_TRUE(t1->Commit().ok());
  (void)t2->Abort();
}

TEST(IntrospectionTest, PermitEntriesAppearInTheDump) {
  auto db = OpenDb();
  auto t1 = db->Begin();
  auto t2 = db->Begin();
  ASSERT_TRUE(t1.ok() && t2.ok());
  auto oid = t1->Create<int64_t>(7);
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(KernelOf(*db)
                  .Permit(t1->id(), t2->id(), ObjectSet{*oid},
                          OpSet(Operation::kWrite))
                  .ok());

  Value root;
  ASSERT_TRUE(ParseJson(db->DumpState(), &root));
  const Value* permits = root.Find("permits");
  ASSERT_NE(permits, nullptr);
  bool found = false;
  for (const Value& p : permits->arr) {
    const Value* grantor = p.Find("grantor");
    const Value* grantee = p.Find("grantee");
    const Value* objects = p.Find("objects");
    if (grantor == nullptr || grantee == nullptr || objects == nullptr) {
      continue;
    }
    if (static_cast<Tid>(grantor->number) != t1->id()) continue;
    if (static_cast<Tid>(grantee->number) != t2->id()) continue;
    ASSERT_TRUE(objects->is_array());
    for (const Value& o : objects->arr) {
      if (static_cast<ObjectId>(o.number) == *oid) found = true;
    }
    EXPECT_EQ(p.Find("direct")->kind, Value::Kind::kBool);
  }
  EXPECT_TRUE(found) << db->DumpState();

  ASSERT_TRUE(t1->Abort().ok());
  ASSERT_TRUE(t2->Abort().ok());
}

TEST(IntrospectionTest, TransactionRowsCarryStatusAndLockCounts) {
  auto db = OpenDb();
  auto t = db->Begin();
  ASSERT_TRUE(t.ok());
  auto oid = t->Create<int64_t>(1);
  ASSERT_TRUE(oid.ok());

  Value root;
  ASSERT_TRUE(ParseJson(db->DumpState(), &root));
  const Value* txns = root.Find("transactions");
  ASSERT_NE(txns, nullptr);
  bool found = false;
  for (const Value& row : txns->arr) {
    if (static_cast<Tid>(row.Find("tid")->number) != t->id()) continue;
    found = true;
    EXPECT_EQ(row.Find("status")->str, "running");
    EXPECT_TRUE(row.Find("session")->boolean);
    EXPECT_GE(row.Find("locks_held")->number, 1.0);
    EXPECT_GE(row.Find("ops_responsible")->number, 1.0);
  }
  EXPECT_TRUE(found) << db->DumpState();

  // WAL watermarks ride along as a nested object.
  const Value* wal = root.Find("wal");
  ASSERT_NE(wal, nullptr);
  EXPECT_TRUE(wal->Find("last_lsn")->is_number());
  EXPECT_TRUE(wal->Find("durable_lsn")->is_number());

  ASSERT_TRUE(t->Commit().ok());
}

TEST(IntrospectionTest, MetricsTextExposesCountersAndPercentiles) {
  auto db = OpenDb();
  {
    auto t = db->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Create<int64_t>(5).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  std::string m = db->MetricsText();
  for (const char* key :
       {"asset_txns_committed", "asset_locks_granted", "asset_wal_appends",
        "asset_commit_latency_count", "asset_commit_latency_p50_ns",
        "asset_commit_latency_p95_ns", "asset_commit_latency_p99_ns",
        "asset_lock_wait_latency_p99_ns", "asset_fsync_latency_p50_ns",
        "asset_wal_durable_lsn", "# TYPE asset_txns_committed counter"}) {
    EXPECT_NE(m.find(key), std::string::npos) << key;
  }
  // At least one commit was acked, so the commit histogram is non-empty.
  EXPECT_EQ(m.find("asset_commit_latency_count 0\n"), std::string::npos);
}

}  // namespace
}  // namespace asset
