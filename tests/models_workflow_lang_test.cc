// The workflow-specification language (§3.2.3's "a language to specify
// workflows"): parsing, error reporting, compilation against a task
// registry, and end-to-end execution of the appendix program from its
// textual spec.

#include <gtest/gtest.h>

#include <atomic>

#include "kernel_fixture.h"
#include "models/workflow_lang.h"

namespace asset {
namespace {

using models::BuildWorkflow;
using models::CompileWorkflow;
using models::ParseWorkflowSpec;
using models::TaskRegistry;
using models::Workflow;
using models::WorkflowSpec;

constexpr const char* kConferenceSpec = R"(
# X attends the conference (June 11-14, 1994)
workflow x_conference {
  step flight required {
    try delta
    try united
    try american
  } compensate cancel_flight
  step hotel required {
    try equator
  }
  step car optional race {
    try national
    try avis
  }
}
)";

TEST(WorkflowLangParseTest, ParsesTheConferenceSpec) {
  auto spec = ParseWorkflowSpec(kConferenceSpec);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "x_conference");
  ASSERT_EQ(spec->steps.size(), 3u);

  EXPECT_EQ(spec->steps[0].name, "flight");
  EXPECT_TRUE(spec->steps[0].required);
  EXPECT_EQ(spec->steps[0].mode, Workflow::Mode::kOrdered);
  EXPECT_EQ(spec->steps[0].tasks,
            (std::vector<std::string>{"delta", "united", "american"}));
  EXPECT_EQ(spec->steps[0].compensation, "cancel_flight");

  EXPECT_EQ(spec->steps[1].name, "hotel");
  EXPECT_TRUE(spec->steps[1].required);
  EXPECT_TRUE(spec->steps[1].compensation.empty());

  EXPECT_EQ(spec->steps[2].name, "car");
  EXPECT_FALSE(spec->steps[2].required);
  EXPECT_EQ(spec->steps[2].mode, Workflow::Mode::kRace);
}

TEST(WorkflowLangParseTest, DefaultsAreRequiredOrdered) {
  auto spec = ParseWorkflowSpec("workflow w { step s { try t } }");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->steps[0].required);
  EXPECT_EQ(spec->steps[0].mode, Workflow::Mode::kOrdered);
}

TEST(WorkflowLangParseTest, FlagsInEitherOrder) {
  auto spec = ParseWorkflowSpec(
      "workflow w { step s race optional { try t } }");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->steps[0].required);
  EXPECT_EQ(spec->steps[0].mode, Workflow::Mode::kRace);
}

TEST(WorkflowLangParseTest, ErrorsCarryLineNumbers) {
  auto spec = ParseWorkflowSpec("workflow w {\n  step s {\n  }\n}");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("line 3"), std::string::npos)
      << spec.status();
  EXPECT_NE(spec.status().message().find("no 'try'"), std::string::npos);
}

TEST(WorkflowLangParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseWorkflowSpec("").ok());
  EXPECT_FALSE(ParseWorkflowSpec("workflow {").ok());           // no name
  EXPECT_FALSE(ParseWorkflowSpec("workflow w { }").ok());       // no steps
  EXPECT_FALSE(ParseWorkflowSpec("workflow w { step s { try t } } extra")
                   .ok());                                      // trailing
  EXPECT_FALSE(
      ParseWorkflowSpec(
          "workflow w { step s required required { try t } }")
          .ok());  // duplicate flag
  EXPECT_FALSE(
      ParseWorkflowSpec("workflow w { step s { try step } }").ok());
  // Missing closing brace.
  EXPECT_FALSE(ParseWorkflowSpec("workflow w { step s { try t }").ok());
}

TEST(WorkflowLangCompileTest, UnboundTaskIsNotFound) {
  auto spec = ParseWorkflowSpec("workflow w { step s { try missing } }");
  ASSERT_TRUE(spec.ok());
  TaskRegistry registry;
  auto wf = CompileWorkflow(*spec, registry);
  ASSERT_FALSE(wf.ok());
  EXPECT_TRUE(wf.status().IsNotFound());
  EXPECT_NE(wf.status().message().find("missing"), std::string::npos);
}

TEST(WorkflowLangCompileTest, UnboundCompensationIsNotFound) {
  auto spec = ParseWorkflowSpec(
      "workflow w { step s { try t } compensate undo_t }");
  ASSERT_TRUE(spec.ok());
  TaskRegistry registry{{"t", [] {}}};
  EXPECT_TRUE(CompileWorkflow(*spec, registry).status().IsNotFound());
}

class WorkflowLangRunTest : public KernelFixture {};

TEST_F(WorkflowLangRunTest, ConferenceSpecRunsEndToEnd) {
  ObjectId flight = MakeObject("none");
  ObjectId hotel = MakeObject("none");
  ObjectId car = MakeObject("none");
  auto reserve = [&](ObjectId slot, const char* who, bool available) {
    return [this, slot, who, available] {
      Tid self = TransactionManager::Self();
      if (!available) {
        tm_->Abort(self);
        return;
      }
      tm_->Write(self, slot, TestBytes(who)).ok();
    };
  };
  TaskRegistry registry{
      {"delta", reserve(flight, "delta", false)},  // Delta is full today
      {"united", reserve(flight, "united", true)},
      {"american", reserve(flight, "american", true)},
      {"cancel_flight", reserve(flight, "cancelled", true)},
      {"equator", reserve(hotel, "equator", true)},
      {"national", reserve(car, "national", true)},
      {"avis", reserve(car, "avis", true)},
  };
  auto wf = BuildWorkflow(kConferenceSpec, registry);
  ASSERT_TRUE(wf.ok()) << wf.status();
  auto out = wf->Run(*tm_);
  EXPECT_TRUE(out.succeeded);
  ASSERT_EQ(out.steps.size(), 3u);
  EXPECT_EQ(out.steps[0].winner, 1);  // United, since Delta was full
  EXPECT_EQ(ReadCommitted(flight), "united");
  EXPECT_EQ(ReadCommitted(hotel), "equator");
  std::string car_winner = ReadCommitted(car);
  EXPECT_TRUE(car_winner == "national" || car_winner == "avis");
}

TEST_F(WorkflowLangRunTest, CompiledCompensationRuns) {
  ObjectId flight = MakeObject("none");
  std::atomic<int> compensations{0};
  TaskRegistry registry{
      {"book", [&] {
         tm_->Write(TransactionManager::Self(), flight, TestBytes("booked"))
             .ok();
       }},
      {"cancel", [&] {
         compensations.fetch_add(1);
         tm_->Write(TransactionManager::Self(), flight,
                    TestBytes("cancelled"))
             .ok();
       }},
      {"fail", [&] { tm_->Abort(TransactionManager::Self()); }},
  };
  auto wf = BuildWorkflow(
      "workflow trip {\n"
      "  step flight required { try book } compensate cancel\n"
      "  step hotel required { try fail }\n"
      "}",
      registry);
  ASSERT_TRUE(wf.ok()) << wf.status();
  auto out = wf->Run(*tm_);
  EXPECT_FALSE(out.succeeded);
  EXPECT_EQ(out.failed_step, "hotel");
  EXPECT_EQ(compensations.load(), 1);
  EXPECT_EQ(ReadCommitted(flight), "cancelled");
}

}  // namespace
}  // namespace asset
