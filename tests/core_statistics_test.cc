// Kernel statistics: counters must reflect the operations that ran, and
// snapshots/reset must behave.

#include <gtest/gtest.h>

#include "kernel_fixture.h"

namespace asset {
namespace {

class StatsTest : public KernelFixture {};

TEST_F(StatsTest, LifecycleCounters) {
  auto before = tm_->stats().snapshot();
  Tid a = tm_->Initiate([] {});
  Tid b = tm_->Initiate([] {});
  tm_->Begin(a);
  tm_->Begin(b);
  tm_->Commit(a);
  tm_->Abort(b);
  auto after = tm_->stats().snapshot();
  EXPECT_EQ(after.txns_initiated, before.txns_initiated + 2);
  EXPECT_EQ(after.txns_begun, before.txns_begun + 2);
  EXPECT_EQ(after.txns_committed, before.txns_committed + 1);
  EXPECT_EQ(after.txns_aborted, before.txns_aborted + 1);
}

TEST_F(StatsTest, DataOpCounters) {
  ObjectId oid = MakeObject("x");  // one create (a write) + commit
  auto before = tm_->stats().snapshot();
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    tm_->Read(self, oid).ok();
    tm_->Write(self, oid, TestBytes("y")).ok();
  });
  tm_->Begin(t);
  tm_->Commit(t);
  auto after = tm_->stats().snapshot();
  EXPECT_EQ(after.reads, before.reads + 1);
  EXPECT_EQ(after.writes, before.writes + 1);
  EXPECT_GE(after.locks_granted, before.locks_granted + 2);
}

TEST_F(StatsTest, UndoCounter) {
  ObjectId oid = MakeObject("x");
  auto before = tm_->stats().snapshot();
  Tid t = tm_->Initiate([&] {
    tm_->Write(TransactionManager::Self(), oid, TestBytes("y")).ok();
  });
  tm_->Begin(t);
  tm_->Wait(t);
  tm_->Abort(t);
  auto after = tm_->stats().snapshot();
  EXPECT_EQ(after.undo_installs, before.undo_installs + 1);
}

TEST_F(StatsTest, PermitAndDelegationCounters) {
  ObjectId oid = MakeObject("x");
  auto before = tm_->stats().snapshot();
  Tid a = tm_->Initiate([] {});
  Tid b = tm_->Initiate([] {});
  ASSERT_TRUE(
      tm_->Permit(a, b, ObjectSet{oid}, OpSet(Operation::kWrite)).ok());
  ASSERT_TRUE(tm_->Delegate(a, b).ok());
  auto after = tm_->stats().snapshot();
  EXPECT_EQ(after.permits_inserted, before.permits_inserted + 1);
  EXPECT_EQ(after.delegations, before.delegations + 1);
  tm_->Abort(a);
  tm_->Abort(b);
}

TEST_F(StatsTest, DependencyCounters) {
  auto before = tm_->stats().snapshot();
  Tid a = tm_->Initiate([] {});
  Tid b = tm_->Initiate([] {});
  ASSERT_TRUE(tm_->FormDependency(DependencyType::kCommit, a, b).ok());
  EXPECT_EQ(tm_->FormDependency(DependencyType::kCommit, b, a).code(),
            StatusCode::kDependencyCycle);
  auto after = tm_->stats().snapshot();
  EXPECT_EQ(after.dependencies_formed, before.dependencies_formed + 1);
  EXPECT_EQ(after.dependency_cycles_rejected,
            before.dependency_cycles_rejected + 1);
  tm_->Abort(a);
  tm_->Abort(b);
}

TEST_F(StatsTest, ToStringMentionsEveryGroup) {
  std::string s = tm_->stats().snapshot().ToString();
  for (const char* key :
       {"txns{", "locks{", "permits{", "delegation{", "deps{", "data{"}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

TEST_F(StatsTest, ResetZeroesEverything) {
  MakeObject("x");
  tm_->stats().Reset();
  auto s = tm_->stats().snapshot();
  EXPECT_EQ(s.txns_initiated, 0u);
  EXPECT_EQ(s.writes, 0u);
  EXPECT_EQ(s.locks_granted, 0u);
}

}  // namespace
}  // namespace asset
