// Kernel statistics: counters must reflect the operations that ran, and
// snapshots/reset must behave.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/database.h"
#include "core/database_internal.h"
#include "kernel_fixture.h"

namespace asset {
namespace {

class StatsTest : public KernelFixture {};

TEST_F(StatsTest, LifecycleCounters) {
  auto before = tm_->stats().snapshot();
  Tid a = tm_->Initiate([] {});
  Tid b = tm_->Initiate([] {});
  tm_->Begin(a);
  tm_->Begin(b);
  tm_->Commit(a);
  tm_->Abort(b);
  auto after = tm_->stats().snapshot();
  EXPECT_EQ(after.txns_initiated, before.txns_initiated + 2);
  EXPECT_EQ(after.txns_begun, before.txns_begun + 2);
  EXPECT_EQ(after.txns_committed, before.txns_committed + 1);
  EXPECT_EQ(after.txns_aborted, before.txns_aborted + 1);
}

TEST_F(StatsTest, DataOpCounters) {
  ObjectId oid = MakeObject("x");  // one create (a write) + commit
  auto before = tm_->stats().snapshot();
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    tm_->Read(self, oid).ok();
    tm_->Write(self, oid, TestBytes("y")).ok();
  });
  tm_->Begin(t);
  tm_->Commit(t);
  auto after = tm_->stats().snapshot();
  EXPECT_EQ(after.reads, before.reads + 1);
  EXPECT_EQ(after.writes, before.writes + 1);
  EXPECT_GE(after.locks_granted, before.locks_granted + 2);
}

TEST_F(StatsTest, UndoCounter) {
  ObjectId oid = MakeObject("x");
  auto before = tm_->stats().snapshot();
  Tid t = tm_->Initiate([&] {
    tm_->Write(TransactionManager::Self(), oid, TestBytes("y")).ok();
  });
  tm_->Begin(t);
  tm_->Wait(t);
  tm_->Abort(t);
  auto after = tm_->stats().snapshot();
  EXPECT_EQ(after.undo_installs, before.undo_installs + 1);
}

TEST_F(StatsTest, PermitAndDelegationCounters) {
  ObjectId oid = MakeObject("x");
  auto before = tm_->stats().snapshot();
  Tid a = tm_->Initiate([] {});
  Tid b = tm_->Initiate([] {});
  ASSERT_TRUE(
      tm_->Permit(a, b, ObjectSet{oid}, OpSet(Operation::kWrite)).ok());
  ASSERT_TRUE(tm_->Delegate(a, b).ok());
  auto after = tm_->stats().snapshot();
  EXPECT_EQ(after.permits_inserted, before.permits_inserted + 1);
  EXPECT_EQ(after.delegations, before.delegations + 1);
  tm_->Abort(a);
  tm_->Abort(b);
}

TEST_F(StatsTest, DependencyCounters) {
  auto before = tm_->stats().snapshot();
  Tid a = tm_->Initiate([] {});
  Tid b = tm_->Initiate([] {});
  ASSERT_TRUE(tm_->FormDependency(DependencyType::kCommit, a, b).ok());
  EXPECT_EQ(tm_->FormDependency(DependencyType::kCommit, b, a).code(),
            StatusCode::kDependencyCycle);
  auto after = tm_->stats().snapshot();
  EXPECT_EQ(after.dependencies_formed, before.dependencies_formed + 1);
  EXPECT_EQ(after.dependency_cycles_rejected,
            before.dependency_cycles_rejected + 1);
  tm_->Abort(a);
  tm_->Abort(b);
}

TEST_F(StatsTest, ToStringMentionsEveryGroup) {
  std::string s = tm_->stats().snapshot().ToString();
  for (const char* key :
       {"txns{", "locks{", "permits{", "delegation{", "deps{", "data{"}) {
    EXPECT_NE(s.find(key), std::string::npos) << key;
  }
}

TEST_F(StatsTest, ResetZeroesEverything) {
  MakeObject("x");
  tm_->stats().Reset();
  auto s = tm_->stats().snapshot();
  EXPECT_EQ(s.txns_initiated, 0u);
  EXPECT_EQ(s.writes, 0u);
  EXPECT_EQ(s.locks_granted, 0u);
  EXPECT_EQ(s.commit_latency.count, 0u);
  EXPECT_EQ(s.commit_latency.p99(), 0u);
}

TEST_F(StatsTest, CommitLatencyHistogramFillsAndOrdersPercentiles) {
  for (int i = 0; i < 20; ++i) MakeObject("x");  // 20 acked commits
  auto s = tm_->stats().snapshot();
  EXPECT_GE(s.commit_latency.count, 20u);
  EXPECT_GT(s.commit_latency.sum, 0u);
  EXPECT_GT(s.commit_latency.p50(), 0u);
  EXPECT_LE(s.commit_latency.p50(), s.commit_latency.p95());
  EXPECT_LE(s.commit_latency.p95(), s.commit_latency.p99());
}

TEST_F(StatsTest, FsyncHistogramFillsOnAFileBackedLog) {
  // The fixture's in-memory log never syncs a device; a file-backed
  // database is where the fsync histogram gets its samples.
  Database::Options o;
  o.path = ::testing::TempDir() + "/asset_stats_fsync.db";
  std::remove(o.path.c_str());
  std::remove((o.path + ".wal").c_str());
  auto db = Database::Open(o);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 5; ++i) {
    auto t = (*db)->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Create<int64_t>(i).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  auto s = KernelOf(**db).stats().snapshot();
  EXPECT_GT(s.fsync_latency.count, 0u);
  EXPECT_EQ(s.fsync_latency.count, s.wal_fsyncs);
  EXPECT_GT(s.fsync_latency.p50(), 0u);
  EXPECT_LE(s.fsync_latency.p50(), s.fsync_latency.p99());
}

TEST_F(StatsTest, LockWaitHistogramRecordsOnlyBlockingAcquires) {
  ObjectId oid = MakeObject("x");
  auto before = tm_->stats().snapshot();
  // Uncontended traffic: no blocking, so no lock-wait samples.
  Tid a = tm_->Initiate([&] {
    tm_->Read(TransactionManager::Self(), oid).ok();
  });
  tm_->Begin(a);
  tm_->Commit(a);
  auto mid = tm_->stats().snapshot();
  EXPECT_EQ(mid.lock_wait_latency.count, before.lock_wait_latency.count);

  // Contended write: the second writer blocks until the first commits.
  Tid holder = tm_->Initiate([&] {
    tm_->Write(TransactionManager::Self(), oid, TestBytes("y")).ok();
  });
  tm_->Begin(holder);
  tm_->Wait(holder);
  std::thread blocked([&] {
    Tid w = tm_->Initiate([&] {
      tm_->Write(TransactionManager::Self(), oid, TestBytes("z")).ok();
    });
    tm_->Begin(w);
    tm_->Commit(w);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  tm_->Commit(holder);
  blocked.join();
  auto after = tm_->stats().snapshot();
  EXPECT_GT(after.lock_wait_latency.count, mid.lock_wait_latency.count);
  EXPECT_GT(after.lock_wait_latency.p50(), 0u);
}

TEST_F(StatsTest, HistogramPercentilesMonotoneByConstruction) {
  LatencyHistogram h;
  // A deliberately skewed distribution across many buckets.
  for (int i = 0; i < 1000; ++i) h.Record(100);
  for (int i = 0; i < 50; ++i) h.Record(1 << 20);
  h.Record(uint64_t{1} << 40);
  auto s = h.snapshot();
  EXPECT_EQ(s.count, 1051u);
  EXPECT_LE(s.p50(), s.p95());
  EXPECT_LE(s.p95(), s.p99());
  EXPECT_LE(s.p99(), s.ValueAtPercentile(100));
  // The p50 bucket upper bound still brackets the dominant value.
  EXPECT_GE(s.p50(), 100u);
  EXPECT_LT(s.p50(), 256u);
  // Tail landed where the big samples went.
  EXPECT_GE(s.ValueAtPercentile(100), uint64_t{1} << 40);
  h.Reset();
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(StatsTest, ToStringMentionsHistograms) {
  MakeObject("x");
  std::string s = tm_->stats().snapshot().ToString();
  EXPECT_NE(s.find("commit_latency"), std::string::npos) << s;
  EXPECT_NE(s.find("p99"), std::string::npos) << s;
}

}  // namespace
}  // namespace asset
