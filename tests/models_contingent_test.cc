// Contingent-transaction model (§3.1.3): alternatives in order, at most
// one commits.

#include <gtest/gtest.h>

#include <atomic>

#include "kernel_fixture.h"
#include "models/contingent.h"

namespace asset {
namespace {

class ContingentModelTest : public KernelFixture {};

TEST_F(ContingentModelTest, FirstAlternativeWinsWhenItCommits) {
  ObjectId oid = MakeObject("none");
  std::atomic<bool> second_ran{false};
  models::ContingentTransaction ct;
  ct.AddAlternative([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("first")).ok());
  });
  ct.AddAlternative([&] { second_ran = true; });
  EXPECT_EQ(ct.Run(*tm_), 0);
  EXPECT_EQ(ReadCommitted(oid), "first");
  EXPECT_FALSE(second_ran.load());  // never even started
}

TEST_F(ContingentModelTest, FallsThroughToLaterAlternative) {
  ObjectId oid = MakeObject("none");
  models::ContingentTransaction ct;
  ct.AddAlternative([&] { tm_->Abort(TransactionManager::Self()); });
  ct.AddAlternative([&] { tm_->Abort(TransactionManager::Self()); });
  ct.AddAlternative([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("third")).ok());
  });
  EXPECT_EQ(ct.Run(*tm_), 2);
  EXPECT_EQ(ReadCommitted(oid), "third");
}

TEST_F(ContingentModelTest, AllAlternativesFailReturnsMinusOne) {
  models::ContingentTransaction ct;
  std::atomic<int> tried{0};
  for (int i = 0; i < 3; ++i) {
    ct.AddAlternative([&] {
      tried.fetch_add(1);
      tm_->Abort(TransactionManager::Self());
    });
  }
  EXPECT_EQ(ct.Run(*tm_), -1);
  EXPECT_EQ(tried.load(), 3);
}

TEST_F(ContingentModelTest, FailedAlternativeLeavesNoEffects) {
  ObjectId oid = MakeObject("base");
  models::ContingentTransaction ct;
  ct.AddAlternative([&] {
    Tid self = TransactionManager::Self();
    tm_->Write(self, oid, TestBytes("half-done")).ok();
    tm_->Abort(self);
  });
  ct.AddAlternative([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("clean")).ok());
  });
  EXPECT_EQ(ct.Run(*tm_), 1);
  EXPECT_EQ(ReadCommitted(oid), "clean");
}

TEST_F(ContingentModelTest, AtMostOneCommits) {
  // Every alternative appends its mark; exactly one mark must persist.
  ObjectId oid = MakeObject("");
  models::ContingentTransaction ct;
  for (int i = 0; i < 4; ++i) {
    ct.AddAlternative([&, i] {
      Tid self = TransactionManager::Self();
      ASSERT_TRUE(
          tm_->Write(self, oid, TestBytes("alt" + std::to_string(i))).ok());
      if (i < 2) tm_->Abort(self);  // first two bail after writing
    });
  }
  EXPECT_EQ(ct.Run(*tm_), 2);
  EXPECT_EQ(ReadCommitted(oid), "alt2");
}

TEST_F(ContingentModelTest, EmptyContingentFails) {
  models::ContingentTransaction ct;
  EXPECT_EQ(ct.Run(*tm_), -1);
}

}  // namespace
}  // namespace asset
