// Distributed-transaction model (§3.1.2): parallel components, group
// commit, group abort.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kernel_fixture.h"
#include "models/distributed.h"

namespace asset {
namespace {

using namespace std::chrono_literals;

class DistributedModelTest : public KernelFixture {};

TEST_F(DistributedModelTest, AllComponentsCommitTogether) {
  ObjectId o1 = MakeObject("0");
  ObjectId o2 = MakeObject("0");
  ObjectId o3 = MakeObject("0");
  models::DistributedTransaction dt;
  dt.AddComponent([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), o1, TestBytes("A")).ok());
  });
  dt.AddComponent([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), o2, TestBytes("B")).ok());
  });
  dt.AddComponent([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), o3, TestBytes("C")).ok());
  });
  EXPECT_TRUE(dt.Run(*tm_));
  EXPECT_EQ(ReadCommitted(o1), "A");
  EXPECT_EQ(ReadCommitted(o2), "B");
  EXPECT_EQ(ReadCommitted(o3), "C");
  for (Tid t : dt.tids()) {
    EXPECT_EQ(tm_->GetStatus(t), TxnStatus::kCommitted);
  }
}

TEST_F(DistributedModelTest, ComponentsRunInParallel) {
  std::atomic<int> concurrent{0}, peak{0};
  auto component = [&] {
    int now = concurrent.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(50ms);
    concurrent.fetch_sub(1);
  };
  models::DistributedTransaction dt;
  dt.AddComponent(component).AddComponent(component).AddComponent(component);
  EXPECT_TRUE(dt.Run(*tm_));
  EXPECT_GE(peak.load(), 2);
}

TEST_F(DistributedModelTest, OneAbortAbortsEverything) {
  ObjectId o1 = MakeObject("0");
  ObjectId o2 = MakeObject("0");
  models::DistributedTransaction dt;
  dt.AddComponent([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), o1, TestBytes("A")).ok());
  });
  dt.AddComponent([&] {
    tm_->Write(TransactionManager::Self(), o2, TestBytes("B")).ok();
    tm_->Abort(TransactionManager::Self());
  });
  EXPECT_FALSE(dt.Run(*tm_));
  EXPECT_EQ(ReadCommitted(o1), "0");
  EXPECT_EQ(ReadCommitted(o2), "0");
  for (Tid t : dt.tids()) {
    EXPECT_EQ(tm_->GetStatus(t), TxnStatus::kAborted);
  }
}

TEST_F(DistributedModelTest, EmptyDistributedTransactionCommits) {
  models::DistributedTransaction dt;
  EXPECT_TRUE(dt.Run(*tm_));
}

TEST_F(DistributedModelTest, SingleComponentDegeneratesToAtomic) {
  ObjectId oid = MakeObject("0");
  models::DistributedTransaction dt;
  dt.AddComponent([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("1")).ok());
  });
  EXPECT_TRUE(dt.Run(*tm_));
  EXPECT_EQ(ReadCommitted(oid), "1");
}

TEST_F(DistributedModelTest, ManyComponents) {
  constexpr int kN = 12;
  std::vector<ObjectId> oids;
  for (int i = 0; i < kN; ++i) oids.push_back(MakeObject("0"));
  models::DistributedTransaction dt;
  for (int i = 0; i < kN; ++i) {
    dt.AddComponent([&, i] {
      ASSERT_TRUE(tm_->Write(TransactionManager::Self(), oids[i],
                             TestBytes(std::to_string(i)))
                      .ok());
    });
  }
  EXPECT_TRUE(dt.Run(*tm_));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(ReadCommitted(oids[i]), std::to_string(i));
  }
  EXPECT_GE(tm_->stats().group_commits.load(), 1u);
}

}  // namespace
}  // namespace asset
