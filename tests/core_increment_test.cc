// Semantic increment operations (the paper's §5 future work):
// commutative adds under increment locks — compatible with each other,
// conflicting with readers/writers, logically undone, delegation-aware,
// and crash-safe via lsn-stamped delta replay.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "core/database.h"
#include "core/database_internal.h"
#include "kernel_fixture.h"
#include "models/atomic.h"

namespace asset {
namespace {

using namespace std::chrono_literals;

class IncrementTest : public KernelFixture {
 protected:
  ObjectId MakeCounter(int64_t initial) {
    ObjectId oid = kNullObjectId;
    Tid t = tm_->Initiate([&] {
      oid = tm_->CreateCounter(TransactionManager::Self(), initial).value();
    });
    EXPECT_TRUE(tm_->Begin(t));
    EXPECT_TRUE(tm_->Commit(t));
    return oid;
  }

  int64_t Value(ObjectId oid) {
    int64_t v = INT64_MIN;
    Tid t = tm_->Initiate([&] {
      v = tm_->ReadCounter(TransactionManager::Self(), oid).value();
    });
    EXPECT_TRUE(tm_->Begin(t));
    EXPECT_TRUE(tm_->Commit(t));
    return v;
  }
};

TEST_F(IncrementTest, CreateAndReadRoundTrip) {
  ObjectId c = MakeCounter(42);
  EXPECT_EQ(Value(c), 42);
}

TEST_F(IncrementTest, IncrementCommits) {
  ObjectId c = MakeCounter(10);
  Tid t = tm_->Initiate([&] {
    ASSERT_TRUE(tm_->Increment(TransactionManager::Self(), c, 5).ok());
    ASSERT_TRUE(tm_->Increment(TransactionManager::Self(), c, -2).ok());
  });
  tm_->Begin(t);
  ASSERT_TRUE(tm_->Commit(t));
  EXPECT_EQ(Value(c), 13);
  EXPECT_GE(tm_->stats().increments.load(), 2u);
}

TEST_F(IncrementTest, AbortUndoesOwnDeltasOnly) {
  // The escrow property: t1's abort subtracts t1's deltas without
  // clobbering t2's concurrent committed addition — before-image undo
  // could not do this.
  ObjectId c = MakeCounter(100);
  std::atomic<bool> t1_added{false}, t1_may_finish{false};
  Tid t1 = tm_->Initiate([&] {
    ASSERT_TRUE(tm_->Increment(TransactionManager::Self(), c, 5).ok());
    t1_added = true;
    while (!t1_may_finish) std::this_thread::sleep_for(1ms);
  });
  tm_->Begin(t1);
  while (!t1_added) std::this_thread::sleep_for(1ms);
  // t2 increments concurrently (no permit needed!) and commits.
  Tid t2 = tm_->Initiate([&] {
    ASSERT_TRUE(tm_->Increment(TransactionManager::Self(), c, 3).ok());
  });
  tm_->Begin(t2);
  ASSERT_TRUE(tm_->Commit(t2));
  // Now t1 aborts: only its +5 must vanish.
  t1_may_finish = true;
  ASSERT_EQ(tm_->Wait(t1), 1);
  ASSERT_TRUE(tm_->Abort(t1));
  EXPECT_EQ(Value(c), 103);
}

TEST_F(IncrementTest, ConcurrentIncrementersDoNotBlock) {
  ObjectId c = MakeCounter(0);
  std::atomic<int> holding{0}, peak{0};
  std::vector<Tid> tids;
  for (int i = 0; i < 4; ++i) {
    Tid t = tm_->Initiate([&] {
      ASSERT_TRUE(tm_->Increment(TransactionManager::Self(), c, 1).ok());
      int now = holding.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(40ms);  // all four inside concurrently
      holding.fetch_sub(1);
    });
    tm_->Begin(t);
    tids.push_back(t);
  }
  for (Tid t : tids) EXPECT_TRUE(tm_->Commit(t));
  EXPECT_GE(peak.load(), 3);  // increment locks really overlapped
  EXPECT_EQ(Value(c), 4);
}

TEST_F(IncrementTest, ReaderBlocksIncrementer) {
  ObjectId c = MakeCounter(0);
  std::atomic<bool> reading{false}, release{false};
  Tid reader = tm_->Initiate([&] {
    ASSERT_TRUE(tm_->ReadCounter(TransactionManager::Self(), c).ok());
    reading = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  tm_->Begin(reader);
  while (!reading) std::this_thread::sleep_for(1ms);
  std::atomic<bool> incremented{false};
  Tid adder = tm_->Initiate([&] {
    incremented = tm_->Increment(TransactionManager::Self(), c, 1).ok();
  });
  tm_->Begin(adder);
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(incremented.load());  // read lock vs increment lock
  release = true;
  EXPECT_TRUE(tm_->Commit(reader));
  EXPECT_TRUE(tm_->Commit(adder));
  EXPECT_TRUE(incremented.load());
}

TEST_F(IncrementTest, IncrementerBlocksWriter) {
  ObjectId c = MakeCounter(0);
  std::atomic<bool> added{false}, release{false};
  Tid adder = tm_->Initiate([&] {
    ASSERT_TRUE(tm_->Increment(TransactionManager::Self(), c, 1).ok());
    added = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  tm_->Begin(adder);
  while (!added) std::this_thread::sleep_for(1ms);
  std::atomic<bool> wrote{false};
  Tid writer = tm_->Initiate([&] {
    wrote = tm_->Write(TransactionManager::Self(), c,
                       ObjectStore::EncodeCounter(kNullLsn, 99))
                .ok();
  });
  tm_->Begin(writer);
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(wrote.load());
  release = true;
  EXPECT_TRUE(tm_->Commit(adder));
  EXPECT_TRUE(tm_->Commit(writer));
}

TEST_F(IncrementTest, ReadThenIncrementUpgradesToWrite) {
  ObjectId c = MakeCounter(7);
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    EXPECT_EQ(tm_->ReadCounter(self, c).value(), 7);
    ASSERT_TRUE(tm_->Increment(self, c, 3).ok());
    // Still readable by the same transaction (joined mode covers both).
    EXPECT_EQ(tm_->ReadCounter(self, c).value(), 10);
  });
  tm_->Begin(t);
  ASSERT_TRUE(tm_->Commit(t));
  EXPECT_EQ(Value(c), 10);
}

TEST_F(IncrementTest, IncrementOnNonCounterFails) {
  ObjectId oid = MakeObject("not a counter");
  Tid t = tm_->Initiate([&] {
    EXPECT_EQ(tm_->Increment(TransactionManager::Self(), oid, 1).code(),
              StatusCode::kInvalidArgument);
  });
  tm_->Begin(t);
  EXPECT_TRUE(tm_->Commit(t));
  EXPECT_EQ(ReadCommitted(oid), "not a counter");
}

TEST_F(IncrementTest, ReadCounterOnNonCounterFails) {
  ObjectId oid = MakeObject("bytes");
  Tid t = tm_->Initiate([&] {
    EXPECT_EQ(
        tm_->ReadCounter(TransactionManager::Self(), oid).status().code(),
        StatusCode::kInvalidArgument);
  });
  tm_->Begin(t);
  EXPECT_TRUE(tm_->Commit(t));
}

TEST_F(IncrementTest, DelegatedIncrementsFollowResponsibility) {
  ObjectId c = MakeCounter(0);
  Tid worker = tm_->Initiate([&] {
    ASSERT_TRUE(tm_->Increment(TransactionManager::Self(), c, 10).ok());
  });
  tm_->Begin(worker);
  ASSERT_EQ(tm_->Wait(worker), 1);
  Tid owner = tm_->Initiate([] {});
  ASSERT_TRUE(tm_->Delegate(worker, owner).ok());
  EXPECT_TRUE(tm_->Commit(worker));  // nothing left
  EXPECT_TRUE(tm_->Abort(owner));    // subtracts the delegated +10
  EXPECT_EQ(Value(c), 0);
}

struct IncrementSweep {
  int threads;
  int adds_per_thread;
  double abort_probability;
  uint64_t seed;
};

class IncrementProperty : public ::testing::TestWithParam<IncrementSweep> {};

TEST_P(IncrementProperty, FinalValueIsSumOfCommittedDeltas) {
  const auto& c = GetParam();
  auto db = Database::Open().value();
  ObjectId counter = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] {
    counter = db->CreateCounter(0).value();
  });
  std::atomic<int64_t> committed_sum{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < c.threads; ++w) {
    threads.emplace_back([&, w] {
      Random rng(c.seed * 131 + w);
      for (int i = 0; i < c.adds_per_thread; ++i) {
        int64_t delta = static_cast<int64_t>(rng.Range(1, 9));
        bool abandon = rng.Bernoulli(c.abort_probability);
        Tid t = KernelOf(*db).InitiateFn([&, delta, abandon] {
          Tid self = TransactionManager::Self();
          if (!db->Add(counter, delta, self).ok()) return;
          if (abandon) KernelOf(*db).Abort(self);
        });
        KernelOf(*db).Begin(t);
        if (KernelOf(*db).Commit(t)) {
          committed_sum.fetch_add(delta);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->GetCounter(counter).value(), committed_sum.load());
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementProperty,
    ::testing::Values(IncrementSweep{2, 25, 0.0, 1},
                      IncrementSweep{4, 25, 0.0, 2},
                      IncrementSweep{4, 25, 0.3, 3},
                      IncrementSweep{8, 15, 0.2, 4},
                      IncrementSweep{8, 15, 0.8, 5}));

// --- Crash recovery of increments -----------------------------------------

TEST_F(IncrementTest, RecoveryReplaysCommittedIncrements) {
  auto db = Database::Open().value();
  ObjectId c = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] { c = db->CreateCounter(5).value(); });
  models::RunAtomic(KernelOf(*db), [&] { ASSERT_TRUE(db->Add(c, 7).ok()); });
  ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->GetCounter(c).value(), 12);
  });
}

TEST_F(IncrementTest, RecoveryUndoesLoserIncrements) {
  auto db = Database::Open().value();
  ObjectId c = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] { c = db->CreateCounter(5).value(); });
  // Committed +7, then an in-flight +100 that only reached the log.
  models::RunAtomic(KernelOf(*db), [&] { ASSERT_TRUE(db->Add(c, 7).ok()); });
  Tid loser = KernelOf(*db).InitiateFn([&] {
    ASSERT_TRUE(db->Add(c, 100).ok());
  });
  KernelOf(*db).Begin(loser);
  ASSERT_EQ(KernelOf(*db).Wait(loser), 1);
  LogOf(*db).Flush();
  ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->GetCounter(c).value(), 12);
  });
}

TEST_F(IncrementTest, RecoveryIsIdempotentDespiteDeltas) {
  // The lsn stamp makes delta replay idempotent even when the counter
  // page was flushed mid-sequence.
  auto db = Database::Open().value();
  ObjectId c = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] { c = db->CreateCounter(0).value(); });
  for (int i = 0; i < 5; ++i) {
    models::RunAtomic(KernelOf(*db), [&] { ASSERT_TRUE(db->Add(c, 10).ok()); });
  }
  ASSERT_TRUE(PoolOf(*db).FlushAll().ok());  // deltas already on disk
  ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->GetCounter(c).value(), 50);  // not 100
  });
  ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
  models::RunAtomic(KernelOf(*db), [&] {
    EXPECT_EQ(db->GetCounter(c).value(), 50);
  });
}

}  // namespace
}  // namespace asset
