// Conflict-serializability verification: committed transactions'
// reads/writes are recorded as versioned events, a precedence graph
// (WR, WW, RW edges) is built after the run, and acyclicity is asserted
// — for random contended workloads under plain strict 2PL, and for the
// checker itself on synthetic histories (including a known-bad one).

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "core/database.h"
#include "core/database_internal.h"
#include "kernel_fixture.h"
#include "models/atomic.h"

namespace asset {
namespace {

// A version is identified by the writing transaction and a per-object
// sequence number embedded in the object value.
struct Version {
  Tid writer = kNullTid;  // kNullTid = the initial version
  uint64_t seq = 0;
  bool operator==(const Version&) const = default;
};

struct VersionedValue {
  Tid writer;
  uint64_t seq;
};

struct Event {
  Tid txn;
  ObjectId object;
  bool is_write;
  Version read;     // version observed (reads and RMW writes)
  Version written;  // for writes: the version this op produced
};

/// Collects events from concurrent transactions and checks the
/// precedence graph of the committed subset.
class HistoryRecorder {
 public:
  void Record(Event e) {
    std::lock_guard<std::mutex> g(mu_);
    events_.push_back(e);
  }
  void MarkCommitted(Tid t) {
    std::lock_guard<std::mutex> g(mu_);
    committed_.insert(t);
  }

  /// True iff the committed history's precedence graph is acyclic.
  bool IsSerializable() const {
    std::lock_guard<std::mutex> g(mu_);
    // Per object: order committed versions by the chain of "written
    // after read" pairs. Each committed write observed its predecessor
    // version, which gives the version order directly.
    std::unordered_map<Tid, std::unordered_set<Tid>> adj;
    auto add_edge = [&](Tid from, Tid to) {
      if (from != kNullTid && to != kNullTid && from != to) {
        adj[from].insert(to);
      }
    };
    // Version successor map per object: version -> the committed version
    // that overwrote it.
    struct VKey {
      ObjectId object;
      Tid writer;
      uint64_t seq;
      bool operator==(const VKey&) const = default;
    };
    struct VKeyHash {
      size_t operator()(const VKey& k) const {
        return std::hash<uint64_t>()(k.object * 1000003 + k.seq) ^
               std::hash<uint64_t>()(k.writer);
      }
    };
    std::unordered_map<VKey, Tid, VKeyHash> overwritten_by;
    for (const Event& e : events_) {
      if (!e.is_write || committed_.count(e.txn) == 0) continue;
      overwritten_by[VKey{e.object, e.read.writer, e.read.seq}] = e.txn;
    }
    for (const Event& e : events_) {
      if (committed_.count(e.txn) == 0) continue;
      if (e.is_write) {
        // WW: predecessor version's writer precedes us.
        add_edge(e.read.writer, e.txn);
      } else {
        // WR: the version's writer precedes the reader.
        add_edge(e.read.writer, e.txn);
        // RW: the reader precedes whoever overwrote the version it saw.
        auto it =
            overwritten_by.find(VKey{e.object, e.read.writer, e.read.seq});
        if (it != overwritten_by.end()) add_edge(e.txn, it->second);
      }
    }
    // Cycle check via iterative three-color DFS.
    std::unordered_map<Tid, int> color;  // 0 white, 1 gray, 2 black
    for (const auto& [node, _] : adj) {
      if (color[node] != 0) continue;
      std::deque<std::pair<Tid, std::vector<Tid>>> stack;
      auto neighbors = [&](Tid n) {
        auto it = adj.find(n);
        return it == adj.end() ? std::vector<Tid>{}
                               : std::vector<Tid>(it->second.begin(),
                                                  it->second.end());
      };
      stack.push_back({node, neighbors(node)});
      color[node] = 1;
      while (!stack.empty()) {
        auto& [cur, next] = stack.back();
        if (next.empty()) {
          color[cur] = 2;
          stack.pop_back();
          continue;
        }
        Tid n = next.back();
        next.pop_back();
        if (color[n] == 1) return false;  // back edge: cycle
        if (color[n] == 0) {
          color[n] = 1;
          stack.push_back({n, neighbors(n)});
        }
      }
    }
    return true;
  }

  size_t EventCount() const {
    std::lock_guard<std::mutex> g(mu_);
    return events_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::unordered_set<Tid> committed_;
};

// --- Checker self-tests on synthetic histories ------------------------------

TEST(HistoryCheckerTest, SerialHistoryPasses) {
  HistoryRecorder h;
  // t1 writes x (over initial), t2 reads t1's version then writes.
  h.Record({1, 10, true, Version{kNullTid, 0}, Version{1, 1}});
  h.Record({2, 10, false, Version{1, 1}, {}});
  h.Record({2, 10, true, Version{1, 1}, Version{2, 2}});
  h.MarkCommitted(1);
  h.MarkCommitted(2);
  EXPECT_TRUE(h.IsSerializable());
}

TEST(HistoryCheckerTest, LostUpdateCycleDetected) {
  HistoryRecorder h;
  // Classic lost update: both read the initial version, both write.
  h.Record({1, 10, false, Version{kNullTid, 0}, {}});
  h.Record({2, 10, false, Version{kNullTid, 0}, {}});
  h.Record({1, 10, true, Version{kNullTid, 0}, Version{1, 1}});
  h.Record({2, 10, true, Version{1, 1}, Version{2, 2}});
  // t1 read initial; t2 overwrote... and t2 read initial which t1
  // overwrote: RW edges both ways.
  h.MarkCommitted(1);
  h.MarkCommitted(2);
  EXPECT_FALSE(h.IsSerializable());
}

TEST(HistoryCheckerTest, UncommittedTransactionsIgnored) {
  HistoryRecorder h;
  h.Record({1, 10, false, Version{kNullTid, 0}, {}});
  h.Record({2, 10, false, Version{kNullTid, 0}, {}});
  h.Record({1, 10, true, Version{kNullTid, 0}, Version{1, 1}});
  h.Record({2, 10, true, Version{1, 1}, Version{2, 2}});
  h.MarkCommitted(2);  // t1 aborted: no cycle among committed
  EXPECT_TRUE(h.IsSerializable());
}

TEST(HistoryCheckerTest, WriteSkewCycleDetected) {
  HistoryRecorder h;
  // t1 reads y then writes x; t2 reads x then writes y — both from the
  // initial versions.
  h.Record({1, 2, false, Version{kNullTid, 0}, {}});   // t1 reads y
  h.Record({2, 1, false, Version{kNullTid, 0}, {}});   // t2 reads x
  h.Record({1, 1, true, Version{kNullTid, 0}, Version{1, 1}});  // t1 w x
  h.Record({2, 2, true, Version{kNullTid, 0}, Version{2, 1}});  // t2 w y
  h.MarkCommitted(1);
  h.MarkCommitted(2);
  EXPECT_FALSE(h.IsSerializable());
}

// --- Kernel property: random contended RMW workloads are serializable ------

struct WorkloadCase {
  int threads;
  int txns_per_thread;
  int objects;
  uint64_t seed;
};

class SerializabilityProperty : public ::testing::TestWithParam<WorkloadCase> {
};

TEST_P(SerializabilityProperty, CommittedHistoryIsConflictSerializable) {
  const auto& c = GetParam();
  auto db = Database::Open().value();
  HistoryRecorder history;

  // Objects hold VersionedValue; version seq counts writes per object.
  std::vector<ObjectId> oids;
  models::RunAtomic(KernelOf(*db), [&] {
    for (int i = 0; i < c.objects; ++i) {
      oids.push_back(db->Create(VersionedValue{kNullTid, 0}).value());
    }
  });

  std::vector<std::thread> threads;
  for (int w = 0; w < c.threads; ++w) {
    threads.emplace_back([&, w] {
      Random rng(c.seed * 101 + w);
      for (int i = 0; i < c.txns_per_thread; ++i) {
        // Each transaction reads 1-2 objects and RMWs 1-2 others, in
        // sorted object order (deadlock avoidance keeps the retry noise
        // down; correctness does not depend on it).
        std::vector<size_t> picks;
        int n = static_cast<int>(rng.Range(2, 4));
        for (int k = 0; k < n; ++k) {
          picks.push_back(rng.Uniform(oids.size()));
        }
        std::sort(picks.begin(), picks.end());
        picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
        std::vector<Event> local;
        Tid committed_tid = kNullTid;
        Tid t = KernelOf(*db).InitiateFn([&] {
          local.clear();
          Tid self = TransactionManager::Self();
          for (size_t j = 0; j < picks.size(); ++j) {
            ObjectId oid = oids[picks[j]];
            auto cur = db->Get<VersionedValue>(oid, self);
            if (!cur.ok()) return;
            Version seen{cur->writer, cur->seq};
            bool write = j % 2 == 0;  // alternate RMW and pure read
            if (write) {
              VersionedValue next{self, cur->seq + 1};
              if (!db->Put(oid, next, self).ok()) return;
              local.push_back(
                  {self, oid, true, seen, Version{self, next.seq}});
            } else {
              local.push_back({self, oid, false, seen, {}});
            }
          }
        });
        KernelOf(*db).Begin(t);
        if (KernelOf(*db).Commit(t)) committed_tid = t;
        if (committed_tid != kNullTid) {
          for (const Event& e : local) history.Record(e);
          history.MarkCommitted(committed_tid);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(history.EventCount(), 0u);
  EXPECT_TRUE(history.IsSerializable());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SerializabilityProperty,
    ::testing::Values(WorkloadCase{2, 30, 4, 1}, WorkloadCase{4, 25, 3, 2},
                      WorkloadCase{4, 25, 8, 3}, WorkloadCase{8, 15, 4, 4},
                      WorkloadCase{8, 15, 16, 5},
                      WorkloadCase{6, 20, 2, 6}));

}  // namespace
}  // namespace asset
