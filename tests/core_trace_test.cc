// Flight recorder: trace events must round-trip through a JSON parser,
// order causally per transaction under a multi-threaded mixed workload,
// cost nothing when disabled, and toggle at runtime.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/database_internal.h"
#include "json_lite.h"

namespace asset {
namespace {

using testjson::ParseJson;
using testjson::Value;

std::unique_ptr<Database> OpenTracedDb() {
  Database::Options o;
  o.txn.trace.enabled = true;
  auto db = Database::Open(o);
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

/// 8 threads x `rounds` transactions each against a small shared key
/// space: puts, reads, creates, and deliberate aborts, so lifecycle,
/// lock, and WAL events all fire.
void RunMixedWorkload(Database* db, int threads = 8, int rounds = 25) {
  std::vector<ObjectId> keys;
  {
    auto boot = db->Begin();
    ASSERT_TRUE(boot.ok());
    for (int i = 0; i < 4; ++i) {
      auto oid = boot->Create<int64_t>(i);
      ASSERT_TRUE(oid.ok());
      keys.push_back(*oid);
    }
    ASSERT_TRUE(boot->Commit().ok());
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([db, &keys, w, rounds] {
      for (int r = 0; r < rounds; ++r) {
        auto t = db->Begin();
        if (!t.ok()) continue;
        ObjectId key = keys[(w + r) % keys.size()];
        // Timeouts and deadlocks under contention are fine here — the
        // point is to generate events, not to serialize cleanly.
        (void)t->Put<int64_t>(key, w * 1000 + r);
        if (r % 5 == 4) {
          (void)t->Abort();
        } else {
          (void)t->Commit();
        }
      }
    });
  }
  for (auto& th : workers) th.join();
}

TEST(TraceTest, DumpRoundTripsThroughJsonParser) {
  auto db = OpenTracedDb();
  RunMixedWorkload(db.get());

  std::string json = db->DumpTrace();
  Value root;
  ASSERT_TRUE(ParseJson(json, &root)) << json.substr(0, 400);
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Find("displayTimeUnit")->str, "ms");

  const Value* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->arr.empty());

  std::map<std::string, int> names;
  for (const Value& e : events->arr) {
    ASSERT_TRUE(e.is_object());
    // Chrome trace_event required fields, all present on every event.
    ASSERT_NE(e.Find("name"), nullptr);
    ASSERT_NE(e.Find("ph"), nullptr);
    ASSERT_NE(e.Find("ts"), nullptr);
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("tid"), nullptr);
    EXPECT_EQ(e.Find("cat")->str, "asset");
    const std::string& ph = e.Find("ph")->str;
    EXPECT_TRUE(ph == "X" || ph == "i") << ph;
    if (ph == "X") EXPECT_GT(e.Find("dur")->number, 0.0);
    const Value* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_NE(args->Find("txn"), nullptr);
    names[e.Find("name")->str]++;
  }
  // The mixed workload exercises the whole lifecycle plus the WAL.
  EXPECT_GT(names["txn_initiate"], 0);
  EXPECT_GT(names["txn_begin"], 0);
  EXPECT_GT(names["txn_commit"], 0);
  EXPECT_GT(names["txn_abort"], 0);
  EXPECT_GT(names["wal_append"], 0);
}

TEST(TraceTest, EventsAreCausallyOrderedPerTransaction) {
  auto db = OpenTracedDb();
  RunMixedWorkload(db.get());

  std::vector<TraceEvent> events = KernelOf(*db).recorder().Drain();
  ASSERT_FALSE(events.empty());
  // Drain() returns events sorted by timestamp; verify, then check each
  // transaction's lifecycle reads initiate -> begin -> terminal.
  for (size_t i = 1; i < events.size(); ++i) {
    ASSERT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }
  struct Lifecycle {
    int64_t initiate = -1, begin = -1, terminal = -1;
  };
  std::map<Tid, Lifecycle> by_txn;
  for (const TraceEvent& e : events) {
    Lifecycle& lc = by_txn[e.tid];
    switch (e.type) {
      case TraceEventType::kTxnInitiate: lc.initiate = e.ts_ns; break;
      case TraceEventType::kTxnBegin: lc.begin = e.ts_ns; break;
      case TraceEventType::kTxnCommit:
      case TraceEventType::kTxnAbort: lc.terminal = e.ts_ns; break;
      default: break;
    }
  }
  int complete = 0;
  for (const auto& [tid, lc] : by_txn) {
    if (lc.initiate < 0 || lc.begin < 0 || lc.terminal < 0) continue;
    ++complete;
    EXPECT_LE(lc.initiate, lc.begin) << "txn " << tid;
    EXPECT_LE(lc.begin, lc.terminal) << "txn " << tid;
  }
  // With 8192-slot rings and ~200 small transactions, nearly all
  // lifecycles are retained; require a healthy majority.
  EXPECT_GT(complete, 50);
}

TEST(TraceTest, LockWaitEventCarriesBlockerAndDuration) {
  auto db = OpenTracedDb();
  auto t1 = db->Begin();
  auto t2 = db->Begin();
  ASSERT_TRUE(t1.ok() && t2.ok());
  auto oid = t1->Create<int64_t>(1);
  ASSERT_TRUE(oid.ok());

  Status s2;
  std::thread th([&] { s2 = t2->Put<int64_t>(*oid, 2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const Tid blocker = t1->id(), waiter = t2->id();
  ASSERT_TRUE(t1->Commit().ok());
  th.join();
  ASSERT_TRUE(s2.ok()) << s2.ToString();
  ASSERT_TRUE(t2->Commit().ok());

  bool found = false;
  for (const TraceEvent& e : KernelOf(*db).recorder().Drain()) {
    if (e.type != TraceEventType::kLockWait || e.tid != waiter) continue;
    found = true;
    EXPECT_EQ(e.other, blocker);
    EXPECT_EQ(e.oid, *oid);
    EXPECT_EQ(e.arg, static_cast<uint64_t>(LockWaitOutcome::kGranted));
    EXPECT_GT(e.dur_ns, 0);
  }
  EXPECT_TRUE(found);
}

TEST(TraceTest, DisabledByDefaultProducesEmptyTrace) {
  auto db = Database::Open();
  ASSERT_TRUE(db.ok());
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Create<int64_t>(1).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  EXPECT_FALSE(KernelOf(**db).recorder().enabled());
  std::string json = (*db)->DumpTrace();
  Value root;
  ASSERT_TRUE(ParseJson(json, &root));
  EXPECT_TRUE(root.Find("traceEvents")->arr.empty());
  // Disabled tracing never materializes a ring.
  EXPECT_EQ(KernelOf(**db).recorder().ring_count(), 0u);
}

TEST(TraceTest, RuntimeToggleStartsAndStopsRecording) {
  auto db = Database::Open();
  ASSERT_TRUE(db.ok());
  FlightRecorder& rec = KernelOf(**db).recorder();

  rec.set_enabled(true);
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Create<int64_t>(7).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  size_t while_on = rec.Drain().size();
  EXPECT_GT(while_on, 0u);

  rec.set_enabled(false);
  {
    auto t = (*db)->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Create<int64_t>(8).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  // Off again: the retained set stops growing.
  EXPECT_EQ(rec.Drain().size(), while_on);
}

TEST(TraceTest, FullRingOverwritesAndCountsDrops) {
  Database::Options o;
  o.txn.trace.enabled = true;
  o.txn.trace.ring_slots = 64;  // tiny ring: the workload must wrap it
  auto db = Database::Open(o);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 200; ++i) {
    auto t = (*db)->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Create<int64_t>(i).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  EXPECT_LE(KernelOf(**db).recorder().Drain().size(),
            64u * KernelOf(**db).recorder().ring_count() + 64u);
  EXPECT_GT(KernelOf(**db).stats().trace_events_dropped.load(), 0u);
}

}  // namespace
}  // namespace asset
