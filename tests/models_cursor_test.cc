// Cursor-stability model (§3.2.2): writers may overwrite records the
// cursor has finished with (non-repeatable reads), but the record under
// the cursor stays protected.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kernel_fixture.h"
#include "models/cursor_stability.h"

namespace asset {
namespace {

using namespace std::chrono_literals;

class CursorModelTest : public KernelFixture {};

TEST_F(CursorModelTest, ScansAllRecordsInOrder) {
  std::vector<ObjectId> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(MakeObject("r" + std::to_string(i)));
  }
  Tid reader = tm_->Initiate([&] {
    models::StableCursor cursor(*tm_, TransactionManager::Self(), records);
    int i = 0;
    while (!cursor.Done()) {
      auto v = cursor.Next();
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(TestStr(*v), "r" + std::to_string(i++));
    }
    EXPECT_EQ(i, 5);
  });
  tm_->Begin(reader);
  EXPECT_TRUE(tm_->Commit(reader));
}

TEST_F(CursorModelTest, WriterGetsThroughBehindTheCursor) {
  ObjectId r0 = MakeObject("r0");
  ObjectId r1 = MakeObject("r1");
  std::atomic<bool> cursor_past_r0{false}, writer_done{false},
      reader_may_finish{false};
  Tid reader = tm_->Initiate([&] {
    models::StableCursor cursor(*tm_, TransactionManager::Self(), {r0, r1});
    ASSERT_TRUE(cursor.Next().ok());  // consumed r0, write permit issued
    cursor_past_r0 = true;
    while (!reader_may_finish) std::this_thread::sleep_for(1ms);
    ASSERT_TRUE(cursor.Next().ok());
  });
  tm_->Begin(reader);
  while (!cursor_past_r0) std::this_thread::sleep_for(1ms);
  // A writer updates r0 while the reading transaction is still active.
  Tid writer = tm_->Initiate([&] {
    writer_done =
        tm_->Write(TransactionManager::Self(), r0, TestBytes("w0")).ok();
  });
  tm_->Begin(writer);
  for (int i = 0; i < 500 && !writer_done; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(writer_done.load());  // no waiting for the reader
  // No dependency was formed: either commit order works.
  EXPECT_TRUE(tm_->Commit(writer));
  reader_may_finish = true;
  EXPECT_TRUE(tm_->Commit(reader));
  EXPECT_EQ(ReadCommitted(r0), "w0");
}

TEST_F(CursorModelTest, RecordUnderCursorStaysProtected) {
  ObjectId r0 = MakeObject("r0");
  ObjectId r1 = MakeObject("r1");
  std::atomic<bool> at_r1{false}, release{false};
  Tid reader = tm_->Initiate([&] {
    models::StableCursor cursor(*tm_, TransactionManager::Self(), {r0, r1});
    ASSERT_TRUE(cursor.Next().ok());  // past r0
    // Read r1 but do NOT advance past it: r1 is "under the cursor".
    ASSERT_TRUE(tm_->Read(TransactionManager::Self(), r1).ok());
    at_r1 = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  tm_->Begin(reader);
  while (!at_r1) std::this_thread::sleep_for(1ms);
  std::atomic<bool> writer_done{false};
  Tid writer = tm_->Initiate([&] {
    writer_done =
        tm_->Write(TransactionManager::Self(), r1, TestBytes("w1")).ok();
  });
  tm_->Begin(writer);
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(writer_done.load());  // r1 still read-locked, no permit
  release = true;
  EXPECT_TRUE(tm_->Commit(reader));
  EXPECT_TRUE(tm_->Commit(writer));
  EXPECT_TRUE(writer_done.load());
}

TEST_F(CursorModelTest, NonRepeatableReadIsVisible) {
  // The textbook anomaly cursor stability allows: re-reading a record
  // the cursor already passed can observe a different value.
  ObjectId r0 = MakeObject("v1");
  std::atomic<bool> past{false}, updated{false};
  std::string first, second;
  Tid reader = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    models::StableCursor cursor(*tm_, self, {r0});
    first = TestStr(*cursor.Next());
    past = true;
    while (!updated) std::this_thread::sleep_for(1ms);
    second = TestStr(*tm_->Read(self, r0));
  });
  tm_->Begin(reader);
  while (!past) std::this_thread::sleep_for(1ms);
  Tid writer = tm_->Initiate([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), r0, TestBytes("v2")).ok());
  });
  tm_->Begin(writer);
  ASSERT_TRUE(tm_->Commit(writer));
  updated = true;
  ASSERT_TRUE(tm_->Commit(reader));
  EXPECT_EQ(first, "v1");
  EXPECT_EQ(second, "v2");  // non-repeatable read, by design
}

TEST_F(CursorModelTest, ExhaustedCursorErrors) {
  ObjectId r0 = MakeObject("r0");
  Tid reader = tm_->Initiate([&] {
    models::StableCursor cursor(*tm_, TransactionManager::Self(), {r0});
    ASSERT_TRUE(cursor.Next().ok());
    EXPECT_TRUE(cursor.Done());
    EXPECT_TRUE(cursor.Next().status().IsIllegalState());
  });
  tm_->Begin(reader);
  EXPECT_TRUE(tm_->Commit(reader));
}

}  // namespace
}  // namespace asset
