// Begin-dependency extension (ACTA BD / BCD): tj cannot begin until ti
// has begun (BD) or committed (BCD); an unsatisfiable begin dependency
// makes begin() fail, and dependents that can never begin abort with
// their dependee.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "kernel_fixture.h"

namespace asset {
namespace {

using namespace std::chrono_literals;
using DT = DependencyType;

class BeginDepTest : public KernelFixture {};

TEST_F(BeginDepTest, BeginOnBeginBlocksUntilDependeeBegins) {
  Tid ti = tm_->Initiate([] {});
  std::atomic<bool> tj_ran{false};
  Tid tj = tm_->Initiate([&] { tj_ran = true; });
  ASSERT_TRUE(tm_->FormDependency(DT::kBeginOnBegin, ti, tj).ok());
  std::atomic<bool> tj_begun{false};
  std::thread beginner([&] {
    EXPECT_TRUE(tm_->Begin(tj));  // blocks until ti begins
    tj_begun = true;
  });
  std::this_thread::sleep_for(60ms);
  EXPECT_FALSE(tj_begun.load());
  EXPECT_FALSE(tj_ran.load());
  EXPECT_TRUE(tm_->Begin(ti));
  beginner.join();
  EXPECT_TRUE(tj_begun.load());
  EXPECT_TRUE(tm_->Commit(ti));
  EXPECT_TRUE(tm_->Commit(tj));
  EXPECT_TRUE(tj_ran.load());
}

TEST_F(BeginDepTest, BeginOnCommitWaitsForCommit) {
  std::vector<std::string> order;
  std::mutex mu;
  auto mark = [&](const char* s) {
    std::lock_guard<std::mutex> g(mu);
    order.push_back(s);
  };
  Tid ti = tm_->Initiate([&] { mark("ti-ran"); });
  Tid tj = tm_->Initiate([&] { mark("tj-ran"); });
  ASSERT_TRUE(tm_->FormDependency(DT::kBeginOnCommit, ti, tj).ok());
  tm_->Begin(ti);
  ASSERT_EQ(tm_->Wait(ti), 1);
  std::atomic<bool> tj_begun{false};
  std::thread beginner([&] {
    EXPECT_TRUE(tm_->Begin(tj));
    tj_begun = true;
  });
  std::this_thread::sleep_for(60ms);
  // ti completed but did NOT commit yet: tj must still be gated.
  EXPECT_FALSE(tj_begun.load());
  EXPECT_TRUE(tm_->Commit(ti));
  beginner.join();
  EXPECT_TRUE(tm_->Commit(tj));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "ti-ran");
  EXPECT_EQ(order[1], "tj-ran");
}

TEST_F(BeginDepTest, BeginOnCommitFailsWhenDependeeAborts) {
  Tid ti = tm_->Initiate([] {});
  Tid tj = tm_->Initiate([] {});
  ASSERT_TRUE(tm_->FormDependency(DT::kBeginOnCommit, ti, tj).ok());
  tm_->Begin(ti);
  ASSERT_EQ(tm_->Wait(ti), 1);
  EXPECT_TRUE(tm_->Abort(ti));
  // tj can never begin; the abort propagation already doomed it.
  EXPECT_FALSE(tm_->Begin(tj));
  EXPECT_EQ(tm_->GetStatus(tj), TxnStatus::kAborted);
}

TEST_F(BeginDepTest, BeginOnBeginSatisfiedByAlreadyRunningDependee) {
  std::atomic<bool> release{false};
  Tid ti = tm_->Initiate([&] {
    while (!release) std::this_thread::sleep_for(1ms);
  });
  tm_->Begin(ti);
  Tid tj = tm_->Initiate([] {});
  ASSERT_TRUE(tm_->FormDependency(DT::kBeginOnBegin, ti, tj).ok());
  EXPECT_TRUE(tm_->Begin(tj));  // immediate: ti already began
  EXPECT_TRUE(tm_->Commit(tj));
  release = true;
  EXPECT_TRUE(tm_->Commit(ti));
}

TEST_F(BeginDepTest, BeginOnBeginSurvivesDependeeAbortAfterBegin) {
  Tid ti = tm_->Initiate([] {});
  tm_->Begin(ti);
  ASSERT_EQ(tm_->Wait(ti), 1);
  EXPECT_TRUE(tm_->Abort(ti));  // ti began, then aborted
  Tid tj = tm_->Initiate([] {});
  // BD on a begun-then-aborted dependee is vacuously satisfied.
  ASSERT_TRUE(tm_->FormDependency(DT::kBeginOnBegin, ti, tj).ok());
  EXPECT_TRUE(tm_->Begin(tj));
  EXPECT_TRUE(tm_->Commit(tj));
}

TEST_F(BeginDepTest, NeverBegunAbortedDependeeDoomsBdDependent) {
  Tid ti = tm_->Initiate([] {});
  Tid tj = tm_->Initiate([] {});
  ASSERT_TRUE(tm_->FormDependency(DT::kBeginOnBegin, ti, tj).ok());
  EXPECT_TRUE(tm_->Abort(ti));  // ti never began
  EXPECT_FALSE(tm_->Begin(tj));
  EXPECT_EQ(tm_->GetStatus(tj), TxnStatus::kAborted);
}

TEST_F(BeginDepTest, BeginDependencyDoesNotConstrainCommit) {
  // Once begun, tj may commit before ti terminates: BD/BCD are begin
  // gates, not commit gates.
  std::atomic<bool> release{false};
  Tid ti = tm_->Initiate([&] {
    while (!release) std::this_thread::sleep_for(1ms);
  });
  tm_->Begin(ti);
  Tid tj = tm_->Initiate([] {});
  ASSERT_TRUE(tm_->FormDependency(DT::kBeginOnBegin, ti, tj).ok());
  EXPECT_TRUE(tm_->Begin(tj));
  EXPECT_TRUE(tm_->Commit(tj));  // ti still running — no commit wait
  release = true;
  EXPECT_TRUE(tm_->Commit(ti));
}

TEST_F(BeginDepTest, BeginDependencyCyclesRejected) {
  Tid a = tm_->Initiate([] {});
  Tid b = tm_->Initiate([] {});
  ASSERT_TRUE(tm_->FormDependency(DT::kBeginOnBegin, a, b).ok());
  EXPECT_EQ(tm_->FormDependency(DT::kBeginOnCommit, b, a).code(),
            StatusCode::kDependencyCycle);
  tm_->Abort(a);
  tm_->Abort(b);
}

TEST_F(BeginDepTest, BeginTimeoutFailsBegin) {
  TransactionManager::Options o;
  o.commit_timeout = std::chrono::milliseconds(100);
  LogManager log;
  TransactionManager quick(&log, &store_, o);
  Tid ti = quick.Initiate([] {});
  Tid tj = quick.Initiate([] {});
  ASSERT_TRUE(quick.FormDependency(DT::kBeginOnBegin, ti, tj).ok());
  EXPECT_FALSE(quick.Begin(tj));  // ti never begins; gate times out
  quick.Abort(ti);
  quick.Abort(tj);
}

TEST_F(BeginDepTest, PipelineOfBeginOnCommitStages) {
  // A mini-workflow: three stages chained by BCD run strictly in commit
  // order even when begun all at once from different threads.
  ObjectId oid = MakeObject("");
  auto appender = [&](const char* tag) {
    return [this, oid, tag] {
      Tid self = TransactionManager::Self();
      auto v = tm_->Read(self, oid);
      ASSERT_TRUE(v.ok());
      std::string s = TestStr(*v) + tag;
      ASSERT_TRUE(tm_->Write(self, oid, TestBytes(s)).ok());
    };
  };
  Tid s1 = tm_->Initiate(appender("a"));
  Tid s2 = tm_->Initiate(appender("b"));
  Tid s3 = tm_->Initiate(appender("c"));
  ASSERT_TRUE(tm_->FormDependency(DT::kBeginOnCommit, s1, s2).ok());
  ASSERT_TRUE(tm_->FormDependency(DT::kBeginOnCommit, s2, s3).ok());
  std::thread b3([&] {
    EXPECT_TRUE(tm_->Begin(s3));
    EXPECT_TRUE(tm_->Commit(s3));
  });
  std::thread b2([&] {
    EXPECT_TRUE(tm_->Begin(s2));
    EXPECT_TRUE(tm_->Commit(s2));
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(tm_->Begin(s1));
  EXPECT_TRUE(tm_->Commit(s1));
  b2.join();
  b3.join();
  EXPECT_EQ(ReadCommitted(oid), "abc");
}

}  // namespace
}  // namespace asset
