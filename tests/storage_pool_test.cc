// Tests for DiskManager implementations and the BufferPool: pinning,
// eviction, write-back, crash-drop, and fault injection.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <thread>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace asset {
namespace {

TEST(InMemoryDiskTest, AllocateReadWrite) {
  InMemoryDiskManager disk;
  EXPECT_EQ(disk.NumPages(), 0u);
  PageId p = disk.AllocatePage().value();
  EXPECT_EQ(p, 0u);
  uint8_t out[kPageSize];
  std::memset(out, 0x5A, kPageSize);
  ASSERT_TRUE(disk.WritePage(p, out).ok());
  uint8_t in[kPageSize];
  ASSERT_TRUE(disk.ReadPage(p, in).ok());
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
}

TEST(InMemoryDiskTest, OutOfRangeIsNotFound) {
  InMemoryDiskManager disk;
  uint8_t buf[kPageSize];
  EXPECT_TRUE(disk.ReadPage(3, buf).IsNotFound());
  EXPECT_TRUE(disk.WritePage(3, buf).IsNotFound());
}

TEST(InMemoryDiskTest, WriteFaultBlocksWrites) {
  InMemoryDiskManager disk;
  PageId p = disk.AllocatePage().value();
  disk.SetWriteFault([](PageId) { return Status::IOError("injected"); });
  uint8_t buf[kPageSize] = {1};
  EXPECT_EQ(disk.WritePage(p, buf).code(), StatusCode::kIOError);
  disk.SetWriteFault(nullptr);
  EXPECT_TRUE(disk.WritePage(p, buf).ok());
}

TEST(FileDiskTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/asset_disk_test.db";
  std::remove(path.c_str());
  {
    FileDiskManager disk(path);
    ASSERT_TRUE(disk.status().ok());
    PageId p = disk.AllocatePage().value();
    uint8_t buf[kPageSize];
    std::memset(buf, 0x77, kPageSize);
    ASSERT_TRUE(disk.WritePage(p, buf).ok());
    ASSERT_TRUE(disk.Sync().ok());
  }
  {
    FileDiskManager disk(path);
    ASSERT_TRUE(disk.status().ok());
    EXPECT_EQ(disk.NumPages(), 1u);
    uint8_t buf[kPageSize];
    ASSERT_TRUE(disk.ReadPage(0, buf).ok());
    EXPECT_EQ(buf[100], 0x77);
  }
  std::remove(path.c_str());
}

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : pool_(&disk_, 4) {}
  InMemoryDiskManager disk_;
  BufferPool pool_;
};

TEST_F(BufferPoolTest, NewPageIsFormattedAndPinned) {
  auto h = pool_.NewPage();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->page_id(), 0u);
  EXPECT_TRUE(h->page().Validate().ok());
}

TEST_F(BufferPoolTest, FetchHitsCache) {
  PageId pid = pool_.NewPage()->page_id();
  auto before = pool_.stats();
  auto h = pool_.FetchPage(pid);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(pool_.stats().hits, before.hits + 1);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  // Fill the 4-frame pool with 5 pages; the first must be evicted.
  PageId first;
  {
    auto h = pool_.NewPage();
    first = h->page_id();
    Page p = h->page();
    p.Insert(std::vector<uint8_t>{1, 2, 3}).value();
    h->MarkDirty();
  }
  for (int i = 0; i < 4; ++i) {
    auto h = pool_.NewPage();
    ASSERT_TRUE(h.ok());
  }
  EXPECT_GE(pool_.stats().evictions, 1u);
  // Re-fetch: content must have survived the round trip through disk.
  auto back = pool_.FetchPage(first);
  ASSERT_TRUE(back.ok());
  auto rec = back->page().Read(0);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)[2], 3);
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  std::vector<PageHandle> pins;
  for (int i = 0; i < 4; ++i) {
    pins.push_back(std::move(pool_.NewPage().value()));
  }
  auto fifth = pool_.NewPage();
  EXPECT_EQ(fifth.status().code(), StatusCode::kResourceExhausted);
  pins.pop_back();
  EXPECT_TRUE(pool_.NewPage().ok());
}

TEST_F(BufferPoolTest, FlushAllCleansDirtyPages) {
  {
    auto h = pool_.NewPage();
    h->page().Insert(std::vector<uint8_t>{9}).value();
    h->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  // After flush + drop, the data must still be on disk.
  pool_.DropAllUnflushed();
  auto h = pool_.FetchPage(0);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->page().Read(0).ok());
}

TEST_F(BufferPoolTest, DropAllUnflushedLosesUnwrittenChanges) {
  {
    auto h = pool_.NewPage();
    h->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  {
    auto h = pool_.FetchPage(0);
    h->page().Insert(std::vector<uint8_t>{1}).value();
    h->MarkDirty();
  }
  pool_.DropAllUnflushed();  // crash: dirty frame discarded
  auto h = pool_.FetchPage(0);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->page().SlotCount(), 0u);  // the insert never hit disk
}

TEST_F(BufferPoolTest, MoveHandleTransfersPin) {
  auto h1 = pool_.NewPage().value();
  PageId pid = h1.page_id();
  PageHandle h2 = std::move(h1);
  EXPECT_FALSE(h1.Valid());
  EXPECT_TRUE(h2.Valid());
  EXPECT_EQ(h2.page_id(), pid);
  h2.Release();
  EXPECT_FALSE(h2.Valid());
}

TEST_F(BufferPoolTest, ValidateOffReadsRawFrames) {
  // An allocated-but-never-written page is all zeros on disk: normal
  // fetch rejects it, validate=false serves it raw.
  PageId pid = disk_.AllocatePage().value();
  EXPECT_EQ(pool_.FetchPage(pid).status().code(), StatusCode::kCorruption);
  auto raw = pool_.FetchPage(pid, /*validate=*/false);
  ASSERT_TRUE(raw.ok());
  EXPECT_FALSE(raw->page().Validate().ok());
}

TEST_F(BufferPoolTest, ConcurrentFetchesShareFrames) {
  PageId pid = pool_.NewPage()->page_id();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        auto h = pool_.FetchPage(pid);
        if (!h.ok() || h->page().page_id() != pid) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace asset
