// Tests for the dependency graph: edge direction, AD-covers-CD
// collapsing, cycle rejection, GC symmetry and components, removal.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dependency_graph.h"

namespace asset {
namespace {

using DT = DependencyType;

TEST(DependencyGraphTest, AddStoresDependentOnDependee) {
  DependencyGraph g;
  // form_dependency(CD, 1, 2): 2 depends on 1.
  ASSERT_TRUE(g.Add(DT::kCommit, 1, 2).ok());
  auto of2 = g.DependenciesOf(2);
  ASSERT_EQ(of2.size(), 1u);
  EXPECT_EQ(of2[0].dependee, 1u);
  EXPECT_EQ(of2[0].type, DT::kCommit);
  EXPECT_TRUE(g.DependenciesOf(1).empty());
  auto on1 = g.DependenciesOn(1);
  ASSERT_EQ(on1.size(), 1u);
  EXPECT_EQ(on1[0].dependent, 2u);
}

TEST(DependencyGraphTest, RejectsNullAndSelf) {
  DependencyGraph g;
  EXPECT_FALSE(g.Add(DT::kCommit, 0, 1).ok());
  EXPECT_FALSE(g.Add(DT::kCommit, 1, 0).ok());
  EXPECT_FALSE(g.Add(DT::kAbort, 1, 1).ok());
}

TEST(DependencyGraphTest, DuplicateEdgesCollapse) {
  DependencyGraph g;
  ASSERT_TRUE(g.Add(DT::kCommit, 1, 2).ok());
  ASSERT_TRUE(g.Add(DT::kCommit, 1, 2).ok());
  EXPECT_EQ(g.size(), 1u);
}

TEST(DependencyGraphTest, AdAbsorbsCd) {
  DependencyGraph g;
  ASSERT_TRUE(g.Add(DT::kCommit, 1, 2).ok());
  ASSERT_TRUE(g.Add(DT::kAbort, 1, 2).ok());  // upgrade in place
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.DependenciesOf(2)[0].type, DT::kAbort);
  ASSERT_TRUE(g.Add(DT::kCommit, 1, 2).ok());  // CD already covered
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.DependenciesOf(2)[0].type, DT::kAbort);
}

TEST(DependencyGraphTest, DirectCdCycleRejected) {
  DependencyGraph g;
  ASSERT_TRUE(g.Add(DT::kCommit, 1, 2).ok());
  EXPECT_EQ(g.Add(DT::kCommit, 2, 1).code(), StatusCode::kDependencyCycle);
}

TEST(DependencyGraphTest, TransitiveMixedCycleRejected) {
  DependencyGraph g;
  ASSERT_TRUE(g.Add(DT::kCommit, 1, 2).ok());  // 2 dep on 1
  ASSERT_TRUE(g.Add(DT::kAbort, 2, 3).ok());   // 3 dep on 2
  // 1 dep on 3 would close 1 -> 3 -> 2 -> 1.
  EXPECT_EQ(g.Add(DT::kCommit, 3, 1).code(), StatusCode::kDependencyCycle);
}

TEST(DependencyGraphTest, GcCyclesAllowed) {
  DependencyGraph g;
  ASSERT_TRUE(g.Add(DT::kGroupCommit, 1, 2).ok());
  ASSERT_TRUE(g.Add(DT::kGroupCommit, 2, 1).ok());  // duplicate, collapses
  EXPECT_EQ(g.size(), 1u);
}

TEST(DependencyGraphTest, GcDoesNotCountTowardWaitCycles) {
  DependencyGraph g;
  ASSERT_TRUE(g.Add(DT::kGroupCommit, 1, 2).ok());
  // CD back-edge is fine: GC edges are not wait edges.
  ASSERT_TRUE(g.Add(DT::kCommit, 2, 1).ok());
  EXPECT_EQ(g.size(), 2u);
}

TEST(DependencyGraphTest, GcVisibleFromBothEndpoints) {
  DependencyGraph g;
  ASSERT_TRUE(g.Add(DT::kGroupCommit, 1, 2).ok());
  auto of1 = g.DependenciesOf(1);
  auto of2 = g.DependenciesOf(2);
  ASSERT_EQ(of1.size(), 1u);
  ASSERT_EQ(of2.size(), 1u);
  EXPECT_EQ(of1[0].dependee, 2u);
  EXPECT_EQ(of2[0].dependee, 1u);
  auto on1 = g.DependenciesOn(1);
  ASSERT_EQ(on1.size(), 1u);
  EXPECT_EQ(on1[0].dependent, 2u);
}

TEST(DependencyGraphTest, GroupOfComputesComponent) {
  DependencyGraph g;
  ASSERT_TRUE(g.Add(DT::kGroupCommit, 1, 2).ok());
  ASSERT_TRUE(g.Add(DT::kGroupCommit, 2, 3).ok());
  ASSERT_TRUE(g.Add(DT::kGroupCommit, 5, 6).ok());
  ASSERT_TRUE(g.Add(DT::kCommit, 3, 4).ok());  // CD does not join groups
  auto group = g.GroupOf(1);
  std::sort(group.begin(), group.end());
  EXPECT_EQ(group, (std::vector<Tid>{1, 2, 3}));
  EXPECT_EQ(g.GroupOf(4), (std::vector<Tid>{4}));
  auto other = g.GroupOf(6);
  std::sort(other.begin(), other.end());
  EXPECT_EQ(other, (std::vector<Tid>{5, 6}));
}

TEST(DependencyGraphTest, RemoveAllForStripsEverything) {
  DependencyGraph g;
  ASSERT_TRUE(g.Add(DT::kCommit, 1, 2).ok());
  ASSERT_TRUE(g.Add(DT::kAbort, 3, 1).ok());
  ASSERT_TRUE(g.Add(DT::kGroupCommit, 4, 5).ok());
  g.RemoveAllFor(1);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_TRUE(g.DependenciesOf(2).empty());
  EXPECT_TRUE(g.DependenciesOf(1).empty());
}

TEST(DependencyGraphTest, RemoveSpecificEdge) {
  DependencyGraph g;
  ASSERT_TRUE(g.Add(DT::kCommit, 1, 2).ok());
  ASSERT_TRUE(g.Add(DT::kAbort, 3, 2).ok());
  Dependency d{2, 1, DT::kCommit};
  g.Remove(d);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.DependenciesOf(2)[0].type, DT::kAbort);
  g.Remove(d);  // removing again is a no-op
  EXPECT_EQ(g.size(), 1u);
}

TEST(DependencyGraphTest, LongWaitChainCycleDetected) {
  DependencyGraph g;
  for (Tid t = 1; t < 20; ++t) {
    ASSERT_TRUE(g.Add(DT::kCommit, t, t + 1).ok());
  }
  EXPECT_EQ(g.Add(DT::kCommit, 20, 1).code(),
            StatusCode::kDependencyCycle);
  // But a forward edge is fine.
  EXPECT_TRUE(g.Add(DT::kCommit, 1, 20).ok());
}

}  // namespace
}  // namespace asset
