// Dependency-driven commit and abort: CD ordering, AD abort
// propagation, GC group commit/abort (§4.2 commit and abort algorithms).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "kernel_fixture.h"

namespace asset {
namespace {

using namespace std::chrono_literals;
using DT = DependencyType;

class CommitTest : public KernelFixture {
 protected:
  Tid Run(std::function<void()> fn = [] {}) {
    Tid t = tm_->InitiateFn(std::move(fn));
    EXPECT_TRUE(tm_->Begin(t));
    EXPECT_EQ(tm_->Wait(t), 1);
    return t;
  }
};

TEST_F(CommitTest, CommitDependencyOrdersCommits) {
  Tid ti = Run();
  Tid tj = Run();
  // form_dependency(CD, ti, tj): tj cannot commit before ti terminates.
  ASSERT_TRUE(tm_->FormDependency(DT::kCommit, ti, tj).ok());
  std::atomic<bool> tj_committed{false};
  std::thread committer([&] {
    EXPECT_TRUE(tm_->Commit(tj));
    tj_committed = true;
  });
  std::this_thread::sleep_for(80ms);
  EXPECT_FALSE(tj_committed.load());  // blocked on ti
  EXPECT_TRUE(tm_->Commit(ti));
  committer.join();
  EXPECT_TRUE(tj_committed.load());
}

TEST_F(CommitTest, CommitDependencySurvivesDependeeAbort) {
  Tid ti = Run();
  Tid tj = Run();
  ASSERT_TRUE(tm_->FormDependency(DT::kCommit, ti, tj).ok());
  // "if ti aborts, tj may still commit."
  EXPECT_TRUE(tm_->Abort(ti));
  EXPECT_TRUE(tm_->Commit(tj));
}

TEST_F(CommitTest, AbortDependencyPropagatesAbort) {
  Tid ti = Run();
  Tid tj = Run();
  ASSERT_TRUE(tm_->FormDependency(DT::kAbort, ti, tj).ok());
  EXPECT_TRUE(tm_->Abort(ti));
  // "if ti aborts, tj must abort."
  EXPECT_EQ(tm_->GetStatus(tj), TxnStatus::kAborted);
  EXPECT_FALSE(tm_->Commit(tj));
}

TEST_F(CommitTest, AbortDependencyBlocksCommitUntilDependeeCommits) {
  Tid ti = Run();
  Tid tj = Run();
  ASSERT_TRUE(tm_->FormDependency(DT::kAbort, ti, tj).ok());
  std::atomic<bool> tj_done{false};
  std::thread committer([&] {
    EXPECT_TRUE(tm_->Commit(tj));
    tj_done = true;
  });
  std::this_thread::sleep_for(80ms);
  // tj cannot commit while ti could still abort (commit step 2a).
  EXPECT_FALSE(tj_done.load());
  EXPECT_TRUE(tm_->Commit(ti));
  committer.join();
}

TEST_F(CommitTest, AbortDependencyChainPropagates) {
  Tid a = Run();
  Tid b = Run();
  Tid c = Run();
  ASSERT_TRUE(tm_->FormDependency(DT::kAbort, a, b).ok());
  ASSERT_TRUE(tm_->FormDependency(DT::kAbort, b, c).ok());
  EXPECT_TRUE(tm_->Abort(a));
  EXPECT_EQ(tm_->GetStatus(b), TxnStatus::kAborted);
  EXPECT_EQ(tm_->GetStatus(c), TxnStatus::kAborted);
}

TEST_F(CommitTest, AbortPropagationUndoesDependentsWrites) {
  ObjectId oid = MakeObject("base");
  Tid ti = Run();
  Tid tj = Run([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("tj")).ok());
  });
  ASSERT_TRUE(tm_->FormDependency(DT::kAbort, ti, tj).ok());
  EXPECT_TRUE(tm_->Abort(ti));
  EXPECT_EQ(tm_->GetStatus(tj), TxnStatus::kAborted);
  EXPECT_EQ(ReadCommitted(oid), "base");
}

TEST_F(CommitTest, GroupCommitCommitsAllViaOne) {
  Tid a = Run();
  Tid b = Run();
  Tid c = Run();
  ASSERT_TRUE(tm_->FormDependency(DT::kGroupCommit, a, b).ok());
  ASSERT_TRUE(tm_->FormDependency(DT::kGroupCommit, b, c).ok());
  // The paper: "commit(t1) actually accomplishes the group commit of all
  // the transactions in the group."
  EXPECT_TRUE(tm_->Commit(a));
  EXPECT_EQ(tm_->GetStatus(b), TxnStatus::kCommitted);
  EXPECT_EQ(tm_->GetStatus(c), TxnStatus::kCommitted);
  // Later commits "simply return 1".
  EXPECT_TRUE(tm_->Commit(b));
  EXPECT_TRUE(tm_->Commit(c));
  EXPECT_GE(tm_->stats().group_commits.load(), 1u);
}

TEST_F(CommitTest, GroupCommitWaitsForAllToComplete) {
  std::atomic<bool> release_b{false};
  Tid a = Run();
  Tid b = tm_->Initiate([&] {
    while (!release_b) std::this_thread::sleep_for(1ms);
  });
  tm_->Begin(b);
  ASSERT_TRUE(tm_->FormDependency(DT::kGroupCommit, a, b).ok());
  std::atomic<bool> committed{false};
  std::thread committer([&] {
    EXPECT_TRUE(tm_->Commit(a));
    committed = true;
  });
  std::this_thread::sleep_for(80ms);
  EXPECT_FALSE(committed.load());  // group waits for b's execution
  release_b = true;
  committer.join();
  EXPECT_EQ(tm_->GetStatus(b), TxnStatus::kCommitted);
}

TEST_F(CommitTest, GroupAbortsTogetherOnMemberAbort) {
  ObjectId oid = MakeObject("base");
  Tid a = Run([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("a")).ok());
  });
  Tid b = Run();
  ASSERT_TRUE(tm_->FormDependency(DT::kGroupCommit, a, b).ok());
  EXPECT_TRUE(tm_->Abort(b));
  // GC: "either both commit or neither commits."
  EXPECT_EQ(tm_->GetStatus(a), TxnStatus::kAborted);
  EXPECT_FALSE(tm_->Commit(a));
  EXPECT_EQ(ReadCommitted(oid), "base");
}

TEST_F(CommitTest, GroupCommitFailureReturnsZeroFromAll) {
  Tid a = Run();
  Tid b = Run();
  Tid c = Run();
  ASSERT_TRUE(tm_->FormDependency(DT::kGroupCommit, a, b).ok());
  ASSERT_TRUE(tm_->FormDependency(DT::kGroupCommit, b, c).ok());
  EXPECT_TRUE(tm_->Abort(c));
  // "if the group commit attempted by commit(t1) does not succeed, all
  // the transactions abort. Later commit invocations simply return 0."
  EXPECT_FALSE(tm_->Commit(a));
  EXPECT_FALSE(tm_->Commit(b));
  EXPECT_FALSE(tm_->Commit(c));
}

TEST_F(CommitTest, GroupMemberWithExternalAdWaits) {
  Tid external = Run();
  Tid a = Run();
  Tid b = Run();
  ASSERT_TRUE(tm_->FormDependency(DT::kGroupCommit, a, b).ok());
  ASSERT_TRUE(tm_->FormDependency(DT::kAbort, external, b).ok());
  std::atomic<bool> committed{false};
  std::thread committer([&] {
    EXPECT_TRUE(tm_->Commit(a));
    committed = true;
  });
  std::this_thread::sleep_for(80ms);
  EXPECT_FALSE(committed.load());  // b (hence the group) waits on external
  EXPECT_TRUE(tm_->Commit(external));
  committer.join();
  EXPECT_EQ(tm_->GetStatus(b), TxnStatus::kCommitted);
}

TEST_F(CommitTest, ExternalAbortDoomsWholeGroup) {
  Tid external = Run();
  Tid a = Run();
  Tid b = Run();
  ASSERT_TRUE(tm_->FormDependency(DT::kGroupCommit, a, b).ok());
  ASSERT_TRUE(tm_->FormDependency(DT::kAbort, external, b).ok());
  EXPECT_TRUE(tm_->Abort(external));
  EXPECT_EQ(tm_->GetStatus(b), TxnStatus::kAborted);
  EXPECT_EQ(tm_->GetStatus(a), TxnStatus::kAborted);
  EXPECT_FALSE(tm_->Commit(a));
}

TEST_F(CommitTest, CdCycleRejected) {
  Tid a = Run();
  Tid b = Run();
  ASSERT_TRUE(tm_->FormDependency(DT::kCommit, a, b).ok());
  Status s = tm_->FormDependency(DT::kCommit, b, a);
  EXPECT_EQ(s.code(), StatusCode::kDependencyCycle);
  EXPECT_GE(tm_->stats().dependency_cycles_rejected.load(), 1u);
  EXPECT_TRUE(tm_->Commit(a));
  EXPECT_TRUE(tm_->Commit(b));
}

TEST_F(CommitTest, DependencyOnCommittedDependeeIsVacuous) {
  Tid a = Run();
  EXPECT_TRUE(tm_->Commit(a));
  Tid b = Run();
  EXPECT_TRUE(tm_->FormDependency(DT::kAbort, a, b).ok());
  EXPECT_TRUE(tm_->Commit(b));  // nothing blocks it
}

TEST_F(CommitTest, AdOnAbortedDependeeIsRejected) {
  Tid a = Run();
  EXPECT_TRUE(tm_->Abort(a));
  Tid b = Run();
  EXPECT_TRUE(tm_->FormDependency(DT::kAbort, a, b).IsIllegalState());
  EXPECT_TRUE(tm_->FormDependency(DT::kCommit, a, b).ok());  // CD vacuous
  EXPECT_TRUE(tm_->Commit(b));
}

TEST_F(CommitTest, CommitTimeoutAbortsUnresolvableCommit) {
  // tj depends on a ti that never commits nor aborts within the bound.
  TransactionManager::Options o;
  o.commit_timeout = std::chrono::milliseconds(120);
  LogManager log;
  TransactionManager quick(&log, &store_, o);
  Tid ti = quick.Initiate([] {});
  quick.Begin(ti);
  quick.Wait(ti);
  Tid tj = quick.Initiate([] {});
  quick.Begin(tj);
  quick.Wait(tj);
  ASSERT_TRUE(quick.FormDependency(DT::kCommit, ti, tj).ok());
  EXPECT_FALSE(quick.Commit(tj));  // times out, aborts tj truthfully
  EXPECT_EQ(quick.GetStatus(tj), TxnStatus::kAborted);
  quick.Commit(ti);
}

TEST_F(CommitTest, DistributedScenarioFromPaper) {
  // §3.1.2 translation executed literally.
  ObjectId o1 = MakeObject("0");
  ObjectId o2 = MakeObject("0");
  ObjectId o3 = MakeObject("0");
  auto write = [&](ObjectId oid, const char* v) {
    return [this, oid, v] {
      ASSERT_TRUE(
          tm_->Write(TransactionManager::Self(), oid, TestBytes(v)).ok());
    };
  };
  Tid t1 = tm_->InitiateFn(write(o1, "f1"));
  Tid t2 = tm_->InitiateFn(write(o2, "f2"));
  Tid t3 = tm_->InitiateFn(write(o3, "f3"));
  ASSERT_TRUE(tm_->FormDependency(DT::kGroupCommit, t1, t2).ok());
  ASSERT_TRUE(tm_->FormDependency(DT::kGroupCommit, t2, t3).ok());
  ASSERT_TRUE(tm_->Begin({t1, t2, t3}));
  EXPECT_TRUE(tm_->Commit(t1));
  EXPECT_TRUE(tm_->Commit(t2));
  EXPECT_TRUE(tm_->Commit(t3));
  EXPECT_EQ(ReadCommitted(o1), "f1");
  EXPECT_EQ(ReadCommitted(o2), "f2");
  EXPECT_EQ(ReadCommitted(o3), "f3");
}

TEST_F(CommitTest, ConcurrentGroupCommittersAgree) {
  for (int round = 0; round < 10; ++round) {
    Tid a = Run();
    Tid b = Run();
    ASSERT_TRUE(tm_->FormDependency(DT::kGroupCommit, a, b).ok());
    std::atomic<bool> ra{false}, rb{false};
    std::thread ca([&] { ra = tm_->Commit(a); });
    std::thread cb([&] { rb = tm_->Commit(b); });
    ca.join();
    cb.join();
    EXPECT_TRUE(ra.load());
    EXPECT_TRUE(rb.load());
  }
}

}  // namespace
}  // namespace asset
