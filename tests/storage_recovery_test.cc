// Crash-recovery tests: winners redone, losers undone, delegation
// replayed during analysis, CLR behaviour, checkpoints, idempotence.

#include <gtest/gtest.h>

#include "storage/recovery.h"

namespace asset {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// A minimal log-writing harness that plays the role of the transaction
// kernel: it appends the same records the kernel would and applies the
// same store mutations, so storage-level recovery can be tested in
// isolation from threading.
class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : pool_(&disk_, 64), store_(&pool_) {
    EXPECT_TRUE(store_.Open().ok());
  }

  void Begin(Tid t) {
    LogRecord r;
    r.type = LogRecordType::kBegin;
    r.tid = t;
    log_.Append(std::move(r));
  }
  Lsn Create(Tid t, ObjectId oid, const std::string& v) {
    LogRecord r;
    r.type = LogRecordType::kCreate;
    r.tid = t;
    r.oid = oid;
    r.after = Bytes(v);
    Lsn lsn = log_.Append(std::move(r));
    EXPECT_TRUE(store_.ApplyPut(oid, Bytes(v)).ok());
    return lsn;
  }
  Lsn Update(Tid t, ObjectId oid, const std::string& from,
             const std::string& to) {
    LogRecord r;
    r.type = LogRecordType::kUpdate;
    r.tid = t;
    r.oid = oid;
    r.before = Bytes(from);
    r.after = Bytes(to);
    Lsn lsn = log_.Append(std::move(r));
    EXPECT_TRUE(store_.ApplyPut(oid, Bytes(to)).ok());
    return lsn;
  }
  Lsn DeleteObj(Tid t, ObjectId oid, const std::string& last) {
    LogRecord r;
    r.type = LogRecordType::kDelete;
    r.tid = t;
    r.oid = oid;
    r.before = Bytes(last);
    Lsn lsn = log_.Append(std::move(r));
    EXPECT_TRUE(store_.ApplyDelete(oid).ok());
    return lsn;
  }
  void Commit(Tid t) {
    LogRecord r;
    r.type = LogRecordType::kCommit;
    r.tid = t;
    log_.Append(std::move(r));
    log_.Flush();
  }
  void DelegateAll(Tid from, Tid to) {
    LogRecord r;
    r.type = LogRecordType::kDelegateAll;
    r.tid = from;
    r.other_tid = to;
    log_.Append(std::move(r));
  }
  void DelegateSet(Tid from, Tid to, std::vector<ObjectId> oids) {
    LogRecord r;
    r.type = LogRecordType::kDelegateSet;
    r.tid = from;
    r.other_tid = to;
    r.oid_set = std::move(oids);
    log_.Append(std::move(r));
  }

  // Crash: flush the WAL up to `durable_tail` semantics already applied
  // via Commit() flushes, drop caches, reopen, recover.
  RecoveryManager::Report Crash() {
    log_.SimulateCrash();
    pool_.DropAllUnflushed();
    EXPECT_TRUE(store_.Open().ok());
    auto report = RecoveryManager::Recover(&log_, &store_);
    EXPECT_TRUE(report.ok());
    return *report;
  }

  std::string Value(ObjectId oid) {
    auto v = store_.Read(oid);
    if (!v.ok()) return "<missing>";
    return std::string(v->begin(), v->end());
  }

  InMemoryDiskManager disk_;
  BufferPool pool_;
  ObjectStore store_;
  LogManager log_;
};

TEST_F(RecoveryTest, CommittedCreateSurvivesCrash) {
  Begin(1);
  Create(1, 10, "kept");
  Commit(1);
  auto report = Crash();
  EXPECT_EQ(Value(10), "kept");
  EXPECT_EQ(report.winners, (std::vector<Tid>{1}));
  EXPECT_TRUE(report.losers.empty());
}

TEST_F(RecoveryTest, UnloggedTailIsLost) {
  Begin(1);
  Create(1, 10, "kept");
  Commit(1);
  Begin(2);
  Create(2, 11, "never-flushed");
  // No commit, no flush: record is not durable.
  Crash();
  EXPECT_EQ(Value(10), "kept");
  EXPECT_EQ(Value(11), "<missing>");
}

TEST_F(RecoveryTest, InFlightUpdateIsRolledBack) {
  Begin(1);
  Create(1, 10, "v0");
  Commit(1);
  Begin(2);
  Update(2, 10, "v0", "v1");
  log_.Flush();  // durable but uncommitted
  pool_.FlushAll().ok();  // and even on disk (steal)
  auto report = Crash();
  EXPECT_EQ(Value(10), "v0");
  EXPECT_EQ(report.losers, (std::vector<Tid>{2}));
  EXPECT_EQ(report.undo_applied, 1u);
}

TEST_F(RecoveryTest, InFlightCreateIsRemoved) {
  Begin(1);
  Create(1, 10, "ghost");
  log_.Flush();
  Crash();
  EXPECT_EQ(Value(10), "<missing>");
}

TEST_F(RecoveryTest, InFlightDeleteIsRestored) {
  Begin(1);
  Create(1, 10, "precious");
  Commit(1);
  Begin(2);
  DeleteObj(2, 10, "precious");
  log_.Flush();
  Crash();
  EXPECT_EQ(Value(10), "precious");
}

TEST_F(RecoveryTest, MultipleUpdatesUndoneInReverseOrder) {
  Begin(1);
  Create(1, 10, "a");
  Commit(1);
  Begin(2);
  Update(2, 10, "a", "b");
  Update(2, 10, "b", "c");
  Update(2, 10, "c", "d");
  log_.Flush();
  Crash();
  EXPECT_EQ(Value(10), "a");
}

TEST_F(RecoveryTest, DelegatedOpsCommitWithDelegatee) {
  // t2 updates, delegates to t3; t3 commits; t2 never commits. The
  // update must survive: responsibility moved (§2.2).
  Begin(1);
  Create(1, 10, "v0");
  Commit(1);
  Begin(2);
  Begin(3);
  Update(2, 10, "v0", "v1");
  DelegateAll(2, 3);
  Commit(3);
  auto report = Crash();
  EXPECT_EQ(Value(10), "v1");
  EXPECT_EQ(report.winners, (std::vector<Tid>{1, 3}));
}

TEST_F(RecoveryTest, DelegatedOpsDieWithDelegatee) {
  // t2 updates, delegates to t3; t2 commits but t3 does not: the update
  // belongs to t3 now and must be undone.
  Begin(1);
  Create(1, 10, "v0");
  Commit(1);
  Begin(2);
  Begin(3);
  Update(2, 10, "v0", "v1");
  DelegateAll(2, 3);
  Commit(2);
  Crash();
  EXPECT_EQ(Value(10), "v0");
}

TEST_F(RecoveryTest, DelegateSetMovesOnlyNamedObjects) {
  Begin(1);
  Create(1, 10, "x0");
  Create(1, 11, "y0");
  Commit(1);
  Begin(2);
  Begin(3);
  Update(2, 10, "x0", "x1");
  Update(2, 11, "y0", "y1");
  DelegateSet(2, 3, {10});  // only object 10 moves to t3
  Commit(3);                 // t3 commits (object 10 wins)
  // t2 never commits (object 11's update loses)
  Crash();
  EXPECT_EQ(Value(10), "x1");
  EXPECT_EQ(Value(11), "y0");
}

TEST_F(RecoveryTest, ChainedDelegationFollowsFinalResponsible) {
  Begin(1);
  Create(1, 10, "v0");
  Commit(1);
  Begin(2);
  Begin(3);
  Begin(4);
  Update(2, 10, "v0", "v1");
  DelegateAll(2, 3);
  DelegateAll(3, 4);
  Commit(4);
  Crash();
  EXPECT_EQ(Value(10), "v1");
}

TEST_F(RecoveryTest, RecoveryIsIdempotent) {
  Begin(1);
  Create(1, 10, "v0");
  Commit(1);
  Begin(2);
  Update(2, 10, "v0", "v1");
  log_.Flush();
  Crash();
  EXPECT_EQ(Value(10), "v0");
  // Crash again immediately (recovery appended CLRs + abort, flushed):
  // a second recovery must change nothing.
  auto report2 = Crash();
  EXPECT_EQ(Value(10), "v0");
  EXPECT_EQ(report2.undo_applied, 0u);
}

TEST_F(RecoveryTest, RuntimeAbortWithClrsIsNotReundone) {
  // Simulate the kernel's runtime abort: undo applied, CLRs + abort
  // logged, everything flushed. Then a later transaction commits a new
  // value. Recovery must keep the later value.
  Begin(1);
  Create(1, 10, "v0");
  Commit(1);
  Begin(2);
  Lsn up = Update(2, 10, "v0", "v1");
  // Runtime abort of t2:
  {
    LogRecord clr;
    clr.type = LogRecordType::kClrPut;
    clr.tid = 2;
    clr.oid = 10;
    clr.undo_of = up;
    clr.after = Bytes("v0");
    log_.Append(std::move(clr));
    EXPECT_TRUE(store_.ApplyPut(10, Bytes("v0")).ok());
    LogRecord ab;
    ab.type = LogRecordType::kAbort;
    ab.tid = 2;
    log_.Append(std::move(ab));
    log_.Flush();
  }
  Begin(3);
  Update(3, 10, "v0", "v2");
  Commit(3);
  Crash();
  EXPECT_EQ(Value(10), "v2");  // t2's before image must NOT clobber t3
}

TEST_F(RecoveryTest, CheckpointBoundsRecoveryScope) {
  Begin(1);
  Create(1, 10, "v0");
  Commit(1);
  ASSERT_TRUE(RecoveryManager::Checkpoint(&log_, &pool_).ok());
  Begin(2);
  Update(2, 10, "v0", "v1");
  Commit(2);
  auto report = Crash();
  EXPECT_EQ(Value(10), "v1");
  // Only post-checkpoint records were scanned.
  EXPECT_LE(report.records_scanned, 4u);
}

TEST_F(RecoveryTest, WriteFreeTransactionsAreHarmless) {
  Begin(1);
  log_.Flush();
  auto report = Crash();
  EXPECT_EQ(report.losers, (std::vector<Tid>{1}));
  EXPECT_EQ(report.undo_applied, 0u);
}

TEST_F(RecoveryTest, InterleavedWinnersAndLosersOnDistinctObjects) {
  Begin(1);
  Begin(2);
  Create(1, 10, "w");
  Create(2, 11, "l");
  Commit(1);
  log_.Flush();
  Crash();
  EXPECT_EQ(Value(10), "w");
  EXPECT_EQ(Value(11), "<missing>");
}

// --- Fuzzy (online) checkpoints --------------------------------------

TEST_F(RecoveryTest, FuzzyCheckpointWithActiveTransactionBoundsScan) {
  Begin(1);
  Create(1, 10, "v0");
  Commit(1);
  Begin(2);
  Lsn up = Update(2, 10, "v0", "v1");  // still uncommitted at checkpoint
  // Checkpoint while t2 is active: the ATT carries t2's op so recovery
  // can undo it without scanning the pre-checkpoint log for analysis.
  auto ckpt = RecoveryManager::FuzzyCheckpoint(
      &log_, &pool_,
      [&] {
        return std::vector<FuzzyCheckpointImage::TxnEntry>{{2, {up}}};
      },
      std::chrono::milliseconds(1000));
  ASSERT_TRUE(ckpt.ok());
  Begin(3);
  Create(3, 11, "post");
  Commit(3);
  auto report = Crash();
  EXPECT_EQ(Value(10), "v0");  // t2 undone from the image's op list
  EXPECT_EQ(Value(11), "post");
  EXPECT_EQ(report.losers, (std::vector<Tid>{2}));
  // Analysis resumed at the checkpoint's cut point: the checkpoint
  // record plus t3's three records, not the history before it.
  EXPECT_LE(report.records_scanned, 4u);
  EXPECT_EQ(report.analysis_start_lsn, *ckpt - 1);
}

TEST_F(RecoveryTest, CrashBetweenPageFlushAndCheckpointRecord) {
  // Satellite: the checkpointer crashes after writing pages back but
  // before its checkpoint record lands. Recovery must fall back to the
  // log origin and still be correct (the flush is harmless, the
  // checkpoint simply never happened).
  Begin(1);
  Create(1, 10, "v0");
  Commit(1);
  Begin(2);
  Update(2, 10, "v0", "v1");
  log_.Flush();
  ASSERT_TRUE(pool_.FlushUnpinned().ok());  // page flush, no record
  auto report = Crash();
  EXPECT_EQ(Value(10), "v0");
  EXPECT_EQ(report.analysis_start_lsn, 0u);  // scanned from the origin
  EXPECT_EQ(report.losers, (std::vector<Tid>{2}));
}

TEST_F(RecoveryTest, NonDurableFuzzyCheckpointIsIgnored) {
  Begin(1);
  Create(1, 10, "v0");
  Commit(1);
  // A checkpoint record that never became durable (crash mid-append):
  // recovery must not see it and must scan from the origin.
  FuzzyCheckpointImage image;
  image.begin_lsn = log_.last_lsn();
  image.min_recovery_lsn = log_.last_lsn() + 1;
  LogRecord ck;
  ck.type = LogRecordType::kFuzzyCheckpoint;
  ck.after = image.Encode();
  log_.Append(std::move(ck));  // NOT flushed
  Begin(2);
  Update(2, 10, "v0", "v1");
  // Not flushed either: both the checkpoint and the update vanish.
  auto report = Crash();
  EXPECT_EQ(Value(10), "v0");
  EXPECT_EQ(report.analysis_start_lsn, 0u);
}

TEST_F(RecoveryTest, TruncationAfterFuzzyCheckpointShrinksAndRecovers) {
  Begin(1);
  Create(1, 10, "a");
  Commit(1);
  Begin(2);
  Update(2, 10, "a", "b");
  Commit(2);
  auto ckpt = RecoveryManager::FuzzyCheckpoint(
      &log_, &pool_, nullptr, std::chrono::milliseconds(1000));
  ASSERT_TRUE(ckpt.ok());
  size_t before = log_.size();
  auto dropped = log_.TruncatePrefix();
  ASSERT_TRUE(dropped.ok());
  EXPECT_GT(*dropped, 0u);
  EXPECT_LT(log_.size(), before);  // physically shorter
  Begin(3);
  Update(3, 10, "b", "c");
  Commit(3);
  auto report = Crash();
  EXPECT_EQ(Value(10), "c");
  EXPECT_LE(report.records_scanned, 4u);
  // Recover once more on the truncated log: still stable.
  Crash();
  EXPECT_EQ(Value(10), "c");
}

TEST_F(RecoveryTest, TruncationRetainsActiveTransactionOps) {
  Begin(1);
  Create(1, 10, "v0");
  Commit(1);
  Begin(2);
  Lsn up = Update(2, 10, "v0", "v1");
  log_.Flush();
  // t2 is active: min_recovery_lsn <= up, so truncation must keep t2's
  // update even though the checkpoint is later in the log.
  auto ckpt = RecoveryManager::FuzzyCheckpoint(
      &log_, &pool_,
      [&] {
        return std::vector<FuzzyCheckpointImage::TxnEntry>{{2, {up}}};
      },
      std::chrono::milliseconds(1000));
  ASSERT_TRUE(ckpt.ok());
  auto dropped = log_.TruncatePrefix();
  ASSERT_TRUE(dropped.ok());
  EXPECT_GT(*dropped, 0u);  // the pre-update history did go away
  // The watermark proves the op record survived the truncation.
  EXPECT_LE(log_.checkpoint_min_recovery_lsn(), up);
  EXPECT_EQ(log_.ReadAll().front().lsn, up);
  Crash();
  EXPECT_EQ(Value(10), "v0");  // undone from the retained record
}

}  // namespace
}  // namespace asset
