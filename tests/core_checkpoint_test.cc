// Database-level fuzzy checkpointing: online (never blocks open
// transactions), bounds the recovery scan, truncates the WAL, fires
// from the background triggers, and survives file-backed reopen.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "core/database.h"
#include "core/database_internal.h"

namespace asset {
namespace {

/// Creates one object and commits, returning its id.
ObjectId CommitOne(Database* db, int64_t value) {
  auto t = db->Begin();
  EXPECT_TRUE(t.ok());
  auto oid = t->Create<int64_t>(value);
  EXPECT_TRUE(oid.ok());
  EXPECT_TRUE(t->Commit().ok());
  return *oid;
}

TEST(DatabaseCheckpointTest, CheckpointDoesNotBlockOpenTransaction) {
  auto db = Database::Open();
  ASSERT_TRUE(db.ok());
  auto t = (*db)->Begin();
  ASSERT_TRUE(t.ok());
  auto oid = t->Create<int64_t>(41);
  ASSERT_TRUE(oid.ok());

  // The old quiescent checkpoint would time out here waiting for t to
  // terminate. The fuzzy checkpoint must complete with t still open.
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE((*db)->Checkpoint().ok());
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(10));

  // t is unharmed: it can keep operating and commit.
  ASSERT_TRUE(t->Put<int64_t>(*oid, 42).ok());
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(KernelOf(**db).stats().checkpoints.load(), 1u);

  ASSERT_TRUE((*db)->CrashAndRecover().ok());
  auto t2 = (*db)->Begin();
  ASSERT_TRUE(t2.ok());
  auto got = t2->Get<int64_t>(*oid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 42);
}

TEST(DatabaseCheckpointTest, CheckpointBoundsRecoveryScan) {
  auto db = Database::Open();
  ASSERT_TRUE(db.ok());
  ObjectId oid = CommitOne(db->get(), 0);
  for (int i = 1; i <= 30; ++i) {
    auto t = (*db)->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Put<int64_t>(oid, i).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  ASSERT_TRUE((*db)->Checkpoint().ok());
  for (int i = 31; i <= 33; ++i) {
    auto t = (*db)->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Put<int64_t>(oid, i).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  RecoveryManager::Report report;
  ASSERT_TRUE((*db)->CrashAndRecover(&report).ok());
  // Analysis starts at the checkpoint's cut point: only the checkpoint
  // record and the three post-checkpoint transactions (begin + update +
  // commit each) are scanned, not the 30 earlier rounds.
  EXPECT_LE(report.records_scanned, 10u);
  EXPECT_GT(report.redo_start_lsn, 1u);
  auto t = (*db)->Begin();
  ASSERT_TRUE(t.ok());
  auto got = t->Get<int64_t>(oid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 33);
}

TEST(DatabaseCheckpointTest, CheckpointTruncatesWal) {
  auto db = Database::Open();
  ASSERT_TRUE(db.ok());
  ObjectId oid = CommitOne(db->get(), 0);
  for (int i = 1; i <= 20; ++i) {
    auto t = (*db)->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Put<int64_t>(oid, i).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  size_t before = LogOf(**db).size();
  ASSERT_TRUE((*db)->Checkpoint().ok());
  size_t after = LogOf(**db).size();
  EXPECT_LT(after, before);
  EXPECT_GE(KernelOf(**db).stats().wal_truncations.load(), 1u);
  EXPECT_GT(KernelOf(**db).stats().wal_records_truncated.load(), 0u);

  // The physically shortened log still recovers the full state.
  ASSERT_TRUE((*db)->CrashAndRecover().ok());
  auto t = (*db)->Begin();
  ASSERT_TRUE(t.ok());
  auto got = t->Get<int64_t>(oid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 20);
}

TEST(DatabaseCheckpointTest, TruncationCanBeDisabled) {
  Database::Options o;
  o.checkpoint.truncate_wal = false;
  auto db = Database::Open(o);
  ASSERT_TRUE(db.ok());
  ObjectId oid = CommitOne(db->get(), 7);
  size_t before = LogOf(**db).size();
  ASSERT_TRUE((*db)->Checkpoint().ok());
  // The checkpoint record itself was appended; nothing was dropped.
  EXPECT_GT(LogOf(**db).size(), before);
  EXPECT_EQ(KernelOf(**db).stats().wal_truncations.load(), 0u);
  auto t = (*db)->Begin();
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->Get<int64_t>(oid).ok());
}

TEST(DatabaseCheckpointTest, BackgroundBytesTriggerCheckpointsAndTruncates) {
  Database::Options o;
  o.checkpoint.log_bytes_trigger = 512;
  auto db = Database::Open(o);
  ASSERT_TRUE(db.ok());
  ObjectId oid = CommitOne(db->get(), 0);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  int64_t i = 0;
  while (KernelOf(**db).stats().wal_truncations.load() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    auto t = (*db)->Begin();
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(t->Put<int64_t>(oid, ++i).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  EXPECT_GE(KernelOf(**db).stats().checkpoints.load(), 1u);
  EXPECT_GE(KernelOf(**db).stats().wal_truncations.load(), 1u);
  // User traffic was never blocked (every commit above succeeded) and
  // the state survives a crash with the truncated log.
  ASSERT_TRUE((*db)->CrashAndRecover().ok());
  auto t = (*db)->Begin();
  ASSERT_TRUE(t.ok());
  auto got = t->Get<int64_t>(oid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, i);
}

TEST(DatabaseCheckpointTest, BackgroundIntervalTriggerFires) {
  Database::Options o;
  o.checkpoint.interval = std::chrono::milliseconds(25);
  auto db = Database::Open(o);
  ASSERT_TRUE(db.ok());
  ObjectId oid = CommitOne(db->get(), 5);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (KernelOf(**db).stats().checkpoints.load() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(KernelOf(**db).stats().checkpoints.load(), 2u);
  RecoveryManager::Report report;
  ASSERT_TRUE((*db)->CrashAndRecover(&report).ok());
  auto t = (*db)->Begin();
  ASSERT_TRUE(t.ok());
  auto got = t->Get<int64_t>(oid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 5);
}

TEST(DatabaseCheckpointTest, DrainTimeoutOptionIsPlumbed) {
  Database::Options o;
  // Tiny but sufficient: with no operation in flight the drain returns
  // immediately, so a 1 ms budget must still succeed.
  o.checkpoint.drain_timeout = std::chrono::milliseconds(1);
  auto db = Database::Open(o);
  ASSERT_TRUE(db.ok());
  CommitOne(db->get(), 1);
  EXPECT_TRUE((*db)->Checkpoint().ok());
}

TEST(DatabaseCheckpointTest, FileBackedCheckpointSurvivesReopen) {
  std::string path = ::testing::TempDir() + "/asset_ckpt_reopen.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  Database::Options o;
  o.path = path;
  ObjectId oid = kNullObjectId;
  {
    auto db = Database::Open(o);
    ASSERT_TRUE(db.ok());
    oid = CommitOne(db->get(), 0);
    for (int i = 1; i <= 10; ++i) {
      auto t = (*db)->Begin();
      ASSERT_TRUE(t.ok());
      ASSERT_TRUE(t->Put<int64_t>(oid, i).ok());
      ASSERT_TRUE(t->Commit().ok());
    }
    // Physically rewrites the on-disk WAL down to the checkpoint tail.
    ASSERT_TRUE((*db)->Checkpoint().ok());
    EXPECT_GE(KernelOf(**db).stats().wal_truncations.load(), 1u);
  }
  // Reopen from the truncated file: AttachFile must re-derive the
  // dropped-prefix length and the checkpoint watermark from the frames.
  auto db = Database::Open(o);
  ASSERT_TRUE(db.ok());
  auto t = (*db)->Begin();
  ASSERT_TRUE(t.ok());
  auto got = t->Get<int64_t>(oid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 10);
  // And a second checkpoint + truncation on the reopened log works.
  ASSERT_TRUE((*db)->CrashAndRecover().ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  auto t2 = (*db)->Begin();
  ASSERT_TRUE(t2.ok());
  auto got2 = t2->Get<int64_t>(oid);
  ASSERT_TRUE(got2.ok());
  EXPECT_EQ(*got2, 10);
}

}  // namespace
}  // namespace asset
