// Transactional B+-tree tests: CRUD, splits and merges across levels,
// range scans, structural invariants, randomized fuzz against std::map,
// transactional rollback of structure changes, and crash recovery.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "common/random.h"
#include "core/database.h"
#include "core/database_internal.h"
#include "kernel_fixture.h"
#include "models/atomic.h"
#include "ode/btree.h"

namespace asset {
namespace {

using ode::BTree;
using ode::BTreeEntry;

class BTreeTest : public KernelFixture {
 protected:
  /// Creates a committed empty tree and returns its handle.
  BTree MakeTree() {
    ObjectId header = kNullObjectId;
    Tid t = tm_->Initiate([&] {
      header =
          BTree::Create(tm_.get(), TransactionManager::Self())->header_oid();
    });
    EXPECT_TRUE(tm_->Begin(t));
    EXPECT_TRUE(tm_->Commit(t));
    return BTree::Open(tm_.get(), header);
  }

  /// Runs `fn` inside a committed transaction.
  void InTxn(std::function<void(Tid)> fn) {
    Tid t = tm_->Initiate([&] { fn(TransactionManager::Self()); });
    ASSERT_TRUE(tm_->Begin(t));
    ASSERT_TRUE(tm_->Commit(t));
  }
};

TEST_F(BTreeTest, EmptyTree) {
  BTree tree = MakeTree();
  InTxn([&](Tid t) {
    EXPECT_EQ(tree.Size(t).value(), 0u);
    EXPECT_EQ(tree.Height(t).value(), 1u);
    EXPECT_TRUE(tree.Search(t, 42).status().IsNotFound());
    EXPECT_TRUE(tree.Range(t, INT64_MIN, INT64_MAX)->empty());
    EXPECT_TRUE(tree.CheckInvariants(t).ok());
  });
}

TEST_F(BTreeTest, InsertAndSearch) {
  BTree tree = MakeTree();
  InTxn([&](Tid t) {
    EXPECT_TRUE(tree.Insert(t, 5, 500).value());
    EXPECT_TRUE(tree.Insert(t, 3, 300).value());
    EXPECT_TRUE(tree.Insert(t, 8, 800).value());
    EXPECT_EQ(tree.Search(t, 5).value(), 500u);
    EXPECT_EQ(tree.Search(t, 3).value(), 300u);
    EXPECT_EQ(tree.Search(t, 8).value(), 800u);
    EXPECT_TRUE(tree.Search(t, 4).status().IsNotFound());
    EXPECT_EQ(tree.Size(t).value(), 3u);
  });
}

TEST_F(BTreeTest, UpsertOverwrites) {
  BTree tree = MakeTree();
  InTxn([&](Tid t) {
    EXPECT_TRUE(tree.Insert(t, 7, 1).value());
    EXPECT_FALSE(tree.Insert(t, 7, 2).value());  // not new
    EXPECT_EQ(tree.Search(t, 7).value(), 2u);
    EXPECT_EQ(tree.Size(t).value(), 1u);
  });
}

TEST_F(BTreeTest, SplitsGrowHeight) {
  BTree tree = MakeTree();
  constexpr int kN = 2000;  // forces height >= 3 at kMaxKeys=32
  InTxn([&](Tid t) {
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(tree.Insert(t, i, static_cast<uint64_t>(i) * 10).ok());
    }
    EXPECT_EQ(tree.Size(t).value(), static_cast<uint64_t>(kN));
    EXPECT_GE(tree.Height(t).value(), 3u);
    ASSERT_TRUE(tree.CheckInvariants(t).ok());
    for (int i = 0; i < kN; ++i) {
      ASSERT_EQ(tree.Search(t, i).value(), static_cast<uint64_t>(i) * 10);
    }
  });
}

TEST_F(BTreeTest, ReverseAndAlternatingInsertOrders) {
  BTree tree = MakeTree();
  InTxn([&](Tid t) {
    for (int i = 200; i > 0; --i) {
      ASSERT_TRUE(tree.Insert(t, i, static_cast<uint64_t>(i)).ok());
    }
    ASSERT_TRUE(tree.CheckInvariants(t).ok());
    for (int i = 1; i <= 200; ++i) {
      ASSERT_TRUE(tree.Search(t, i).ok());
    }
  });
}

TEST_F(BTreeTest, RangeScan) {
  BTree tree = MakeTree();
  InTxn([&](Tid t) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(tree.Insert(t, i * 2, static_cast<uint64_t>(i)).ok());
    }
    auto mid = tree.Range(t, 10, 20).value();
    ASSERT_EQ(mid.size(), 6u);  // 10,12,14,16,18,20
    EXPECT_EQ(mid.front(), (BTreeEntry{10, 5}));
    EXPECT_EQ(mid.back(), (BTreeEntry{20, 10}));
    EXPECT_EQ(tree.Range(t, INT64_MIN, INT64_MAX)->size(), 100u);
    EXPECT_TRUE(tree.Range(t, 11, 11)->empty());  // odd keys absent
    EXPECT_TRUE(tree.Range(t, 30, 10)->empty());  // inverted bounds
  });
}

TEST_F(BTreeTest, DeleteLeafSimple) {
  BTree tree = MakeTree();
  InTxn([&](Tid t) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(tree.Insert(t, i, static_cast<uint64_t>(i)).ok());
    }
    ASSERT_TRUE(tree.Delete(t, 5).ok());
    EXPECT_TRUE(tree.Search(t, 5).status().IsNotFound());
    EXPECT_EQ(tree.Size(t).value(), 9u);
    EXPECT_TRUE(tree.Delete(t, 5).IsNotFound());
    EXPECT_EQ(tree.Size(t).value(), 9u);  // failed delete changed nothing
    ASSERT_TRUE(tree.CheckInvariants(t).ok());
  });
}

TEST_F(BTreeTest, DeleteEverythingCollapsesTree) {
  BTree tree = MakeTree();
  constexpr int kN = 300;
  InTxn([&](Tid t) {
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(tree.Insert(t, i, static_cast<uint64_t>(i)).ok());
    }
    EXPECT_GE(tree.Height(t).value(), 2u);
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(tree.Delete(t, i).ok()) << "key " << i;
      ASSERT_TRUE(tree.CheckInvariants(t).ok()) << "after deleting " << i;
    }
    EXPECT_EQ(tree.Size(t).value(), 0u);
    EXPECT_EQ(tree.Height(t).value(), 1u);  // collapsed back to one leaf
  });
}

TEST_F(BTreeTest, DeleteInReverseAndMiddleOrders) {
  BTree tree = MakeTree();
  constexpr int kN = 200;
  InTxn([&](Tid t) {
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(tree.Insert(t, i, static_cast<uint64_t>(i)).ok());
    }
    // Delete from the middle outward — stresses borrow-left and
    // borrow-right unevenly.
    for (int d = 0; d < kN / 2; ++d) {
      ASSERT_TRUE(tree.Delete(t, kN / 2 + d).ok());
      ASSERT_TRUE(tree.Delete(t, kN / 2 - d - 1).ok());
    }
    EXPECT_EQ(tree.Size(t).value(), 0u);
    ASSERT_TRUE(tree.CheckInvariants(t).ok());
  });
}

TEST_F(BTreeTest, AbortRollsBackStructureChanges) {
  BTree tree = MakeTree();
  InTxn([&](Tid t) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(tree.Insert(t, i, static_cast<uint64_t>(i)).ok());
    }
  });
  // A transaction that splits nodes, then aborts: the tree must revert
  // to exactly the committed shape.
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    for (int i = 50; i < 300; ++i) {
      ASSERT_TRUE(tree.Insert(self, i, static_cast<uint64_t>(i)).ok());
    }
    tm_->Abort(self);
  });
  tm_->Begin(t);
  EXPECT_FALSE(tm_->Commit(t));
  InTxn([&](Tid check) {
    EXPECT_EQ(tree.Size(check).value(), 50u);
    EXPECT_TRUE(tree.Search(check, 49).ok());
    EXPECT_TRUE(tree.Search(check, 50).status().IsNotFound());
    EXPECT_TRUE(tree.CheckInvariants(check).ok());
  });
}

TEST_F(BTreeTest, AbortRollsBackDeletesAndMerges) {
  BTree tree = MakeTree();
  constexpr int kN = 200;
  InTxn([&](Tid t) {
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(tree.Insert(t, i, static_cast<uint64_t>(i)).ok());
    }
  });
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    for (int i = 0; i < kN - 5; ++i) {
      ASSERT_TRUE(tree.Delete(self, i).ok());
    }
    tm_->Abort(self);
  });
  tm_->Begin(t);
  EXPECT_FALSE(tm_->Commit(t));
  InTxn([&](Tid check) {
    EXPECT_EQ(tree.Size(check).value(), static_cast<uint64_t>(kN));
    for (int i = 0; i < kN; ++i) ASSERT_TRUE(tree.Search(check, i).ok());
    EXPECT_TRUE(tree.CheckInvariants(check).ok());
  });
}

TEST_F(BTreeTest, NegativeAndExtremeKeys) {
  BTree tree = MakeTree();
  InTxn([&](Tid t) {
    ASSERT_TRUE(tree.Insert(t, INT64_MIN, 1).ok());
    ASSERT_TRUE(tree.Insert(t, -1, 2).ok());
    ASSERT_TRUE(tree.Insert(t, 0, 3).ok());
    ASSERT_TRUE(tree.Insert(t, INT64_MAX, 4).ok());
    EXPECT_EQ(tree.Search(t, INT64_MIN).value(), 1u);
    EXPECT_EQ(tree.Search(t, INT64_MAX).value(), 4u);
    auto all = tree.Range(t, INT64_MIN, INT64_MAX).value();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].key, INT64_MIN);
    EXPECT_EQ(all[3].key, INT64_MAX);
  });
}

// Randomized fuzz: interleaved inserts/upserts/deletes mirrored into a
// std::map; full verification plus invariants at the end of each round.
struct FuzzCase {
  uint64_t seed;
  int ops;
  int key_space;
};

class BTreeFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(BTreeFuzz, AgreesWithStdMap) {
  const auto& c = GetParam();
  InMemoryDiskManager disk;
  BufferPool pool(&disk, 512);
  ObjectStore store(&pool);
  ASSERT_TRUE(store.Open().ok());
  LogManager log;
  TransactionManager::Options o;
  o.force_log_at_commit = false;
  TransactionManager tm(&log, &store, o);

  ObjectId header = kNullObjectId;
  Tid init = tm.InitiateFn([&] {
    header = BTree::Create(&tm, TransactionManager::Self())->header_oid();
  });
  tm.Begin(init);
  ASSERT_TRUE(tm.Commit(init));
  BTree tree = BTree::Open(&tm, header);

  Random rng(c.seed);
  std::map<int64_t, uint64_t> shadow;
  Tid t = tm.InitiateFn([&] {
    Tid self = TransactionManager::Self();
    for (int i = 0; i < c.ops; ++i) {
      int64_t key = static_cast<int64_t>(rng.Uniform(c.key_space));
      int action = static_cast<int>(rng.Uniform(3));
      if (action < 2) {
        uint64_t value = rng.Next();
        ASSERT_TRUE(tree.Insert(self, key, value).ok());
        shadow[key] = value;
      } else {
        Status s = tree.Delete(self, key);
        if (shadow.erase(key) > 0) {
          ASSERT_TRUE(s.ok());
        } else {
          ASSERT_TRUE(s.IsNotFound());
        }
      }
    }
    // Verification inside the same transaction.
    ASSERT_TRUE(tree.CheckInvariants(self).ok());
    ASSERT_EQ(tree.Size(self).value(), shadow.size());
    for (const auto& [k, v] : shadow) {
      ASSERT_EQ(tree.Search(self, k).value(), v);
    }
    auto scanned = tree.Range(self, INT64_MIN, INT64_MAX).value();
    ASSERT_EQ(scanned.size(), shadow.size());
    size_t i = 0;
    for (const auto& [k, v] : shadow) {
      EXPECT_EQ(scanned[i].key, k);
      EXPECT_EQ(scanned[i].value, v);
      ++i;
    }
  });
  tm.Begin(t);
  ASSERT_TRUE(tm.Commit(t));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreeFuzz,
    ::testing::Values(FuzzCase{1, 500, 100}, FuzzCase{2, 1000, 50},
                      FuzzCase{3, 1500, 2000}, FuzzCase{4, 2000, 300},
                      FuzzCase{5, 800, 10}, FuzzCase{6, 2500, 1000}));

TEST_F(BTreeTest, SurvivesCrashRecovery) {
  auto db = Database::Open().value();
  ObjectId header = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] {
    auto tree = BTree::Create(&KernelOf(*db), TransactionManager::Self());
    header = tree->header_oid();
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          tree->Insert(TransactionManager::Self(), i, i * 7ull).ok());
    }
  });
  // An in-flight transaction splits nodes, then the system crashes.
  {
    BTree tree = BTree::Open(&KernelOf(*db), header);
    Tid straggler = KernelOf(*db).Initiate([&] {
      Tid self = TransactionManager::Self();
      for (int i = 100; i < 400; ++i) {
        tree.Insert(self, i, 0).value();
      }
    });
    KernelOf(*db).Begin(straggler);
    ASSERT_EQ(KernelOf(*db).Wait(straggler), 1);
    LogOf(*db).Flush();
  }
  ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
  BTree tree = BTree::Open(&KernelOf(*db), header);
  models::RunAtomic(KernelOf(*db), [&] {
    Tid self = TransactionManager::Self();
    EXPECT_EQ(tree.Size(self).value(), 100u);
    EXPECT_TRUE(tree.CheckInvariants(self).ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(tree.Search(self, i).value(), i * 7ull);
    }
    EXPECT_TRUE(tree.Search(self, 100).status().IsNotFound());
  });
}

TEST_F(BTreeTest, ConcurrentWritersConvergeWithRetry) {
  // Two writers insert disjoint key ranges concurrently. Strict 2PL on
  // nodes makes them collide at the root; deadlock-victim retry must
  // still converge to a complete, valid tree.
  BTree tree = MakeTree();
  constexpr int kPerWriter = 60;
  std::atomic<int> committed{0};
  auto writer = [&](int base) {
    for (int i = 0; i < kPerWriter; ++i) {
      bool ok = models::RunAtomicWithRetry(
          *tm_,
          [&, i] {
            tree.Insert(TransactionManager::Self(), base + i,
                        static_cast<uint64_t>(base + i))
                .ValueOr(false);
          },
          50);
      if (ok) committed.fetch_add(1);
    }
  };
  std::thread w1([&] { writer(0); });
  std::thread w2([&] { writer(100000); });
  w1.join();
  w2.join();
  EXPECT_EQ(committed.load(), 2 * kPerWriter);
  InTxn([&](Tid t) {
    EXPECT_EQ(tree.Size(t).value(), static_cast<uint64_t>(2 * kPerWriter));
    EXPECT_TRUE(tree.CheckInvariants(t).ok());
    for (int i = 0; i < kPerWriter; ++i) {
      ASSERT_TRUE(tree.Search(t, i).ok());
      ASSERT_TRUE(tree.Search(t, 100000 + i).ok());
    }
  });
}

}  // namespace
}  // namespace asset
