// Tests for the cached-thread executor that runs transaction bodies.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/thread_cache.h"

namespace asset {
namespace {

using namespace std::chrono_literals;

TEST(ThreadCacheTest, RunsSubmittedTask) {
  ThreadCache cache;
  std::atomic<bool> ran{false};
  cache.Submit([&] { ran = true; });
  for (int i = 0; i < 1000 && !ran; ++i) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(ran.load());
}

TEST(ThreadCacheTest, SerialTasksReuseOneWorker) {
  ThreadCache cache;
  for (int i = 0; i < 50; ++i) {
    std::atomic<bool> done{false};
    cache.Submit([&] { done = true; });
    while (!done) std::this_thread::sleep_for(100us);
  }
  // Strictly serial completion-waited tasks may still race the worker's
  // return to idle, but the pool must stay far below one-per-task.
  EXPECT_LE(cache.WorkersCreated(), 10u);
}

TEST(ThreadCacheTest, ParallelTasksGetParallelWorkers) {
  ThreadCache cache;
  constexpr int kTasks = 6;
  std::atomic<int> inside{0}, peak{0};
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    cache.Submit([&] {
      int now = inside.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      while (!release) std::this_thread::sleep_for(100us);
      inside.fetch_sub(1);
      done.fetch_add(1);
    });
  }
  // All six must run concurrently — a bounded queue would hang here.
  for (int i = 0; i < 2000 && peak.load() < kTasks; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(peak.load(), kTasks);
  release = true;
  while (done.load() < kTasks) std::this_thread::sleep_for(1ms);
  EXPECT_GE(cache.WorkersCreated(), static_cast<size_t>(kTasks));
}

TEST(ThreadCacheTest, DestructorDrainsIdleWorkers) {
  std::atomic<int> completed{0};
  {
    ThreadCache cache;
    for (int i = 0; i < 20; ++i) {
      cache.Submit([&] { completed.fetch_add(1); });
    }
    while (completed.load() < 20) std::this_thread::sleep_for(1ms);
  }  // destructor joins everything without deadlock
  EXPECT_EQ(completed.load(), 20);
}

TEST(ThreadCacheTest, ManyShortBurstsComplete) {
  ThreadCache cache;
  std::atomic<int> completed{0};
  constexpr int kBursts = 10, kPerBurst = 50;
  for (int b = 0; b < kBursts; ++b) {
    for (int i = 0; i < kPerBurst; ++i) {
      cache.Submit([&] { completed.fetch_add(1); });
    }
    while (completed.load() < (b + 1) * kPerBurst) {
      std::this_thread::sleep_for(100us);
    }
  }
  EXPECT_EQ(completed.load(), kBursts * kPerBurst);
}

}  // namespace
}  // namespace asset
