// Lock-manager semantics through the kernel: conflicts block, permits
// admit and suspend, ping-pong cooperation, wildcard permit forms,
// delegation of locks, deadlock detection, and timeouts.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "kernel_fixture.h"

namespace asset {
namespace {

using namespace std::chrono_literals;

class LockingTest : public KernelFixture {
 protected:
  /// Begins a transaction that runs `fn` and returns its tid.
  Tid Spawn(std::function<void()> fn) {
    Tid t = tm_->InitiateFn(std::move(fn));
    EXPECT_TRUE(tm_->Begin(t));
    return t;
  }
};

TEST_F(LockingTest, ReadersShareAnObject) {
  ObjectId oid = MakeObject("shared");
  std::atomic<int> concurrent{0}, peak{0};
  auto reader = [&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Read(self, oid).ok());
    int now = concurrent.fetch_add(1) + 1;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(50ms);
    concurrent.fetch_sub(1);
  };
  Tid a = Spawn(reader), b = Spawn(reader), c = Spawn(reader);
  EXPECT_TRUE(tm_->Commit(a));
  EXPECT_TRUE(tm_->Commit(b));
  EXPECT_TRUE(tm_->Commit(c));
  EXPECT_GE(peak.load(), 2);  // readers really overlapped
}

TEST_F(LockingTest, WriteBlocksConflictingWriteUntilCommit) {
  ObjectId oid = MakeObject("v0");
  std::atomic<bool> first_wrote{false};
  std::atomic<bool> release_first{false};
  Tid t1 = Spawn([&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Write(self, oid, TestBytes("t1")).ok());
    first_wrote = true;
    while (!release_first) std::this_thread::sleep_for(1ms);
  });
  while (!first_wrote) std::this_thread::sleep_for(1ms);
  std::atomic<bool> second_wrote{false};
  Tid t2 = Spawn([&] {
    Tid self = TransactionManager::Self();
    // Blocks until t1 commits and releases its lock.
    ASSERT_TRUE(tm_->Write(self, oid, TestBytes("t2")).ok());
    second_wrote = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(second_wrote.load());  // strict 2PL: held to commit
  release_first = true;
  EXPECT_TRUE(tm_->Commit(t1));
  EXPECT_TRUE(tm_->Commit(t2));
  EXPECT_TRUE(second_wrote.load());
  EXPECT_EQ(ReadCommitted(oid), "t2");
}

TEST_F(LockingTest, WriterBlocksReader) {
  ObjectId oid = MakeObject("v0");
  std::atomic<bool> wrote{false}, release{false}, read_done{false};
  Tid w = Spawn([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("w")).ok());
    wrote = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  while (!wrote) std::this_thread::sleep_for(1ms);
  Tid r = Spawn([&] {
    auto v = tm_->Read(TransactionManager::Self(), oid);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(TestStr(*v), "w");  // sees the committed value
    read_done = true;
  });
  std::this_thread::sleep_for(40ms);
  EXPECT_FALSE(read_done.load());
  release = true;
  EXPECT_TRUE(tm_->Commit(w));
  EXPECT_TRUE(tm_->Commit(r));
  EXPECT_TRUE(read_done.load());
}

TEST_F(LockingTest, LockUpgradeReadToWrite) {
  ObjectId oid = MakeObject("v0");
  Tid t = Spawn([&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Read(self, oid).ok());
    ASSERT_TRUE(tm_->Write(self, oid, TestBytes("upgraded")).ok());
  });
  EXPECT_TRUE(tm_->Commit(t));
  EXPECT_EQ(ReadCommitted(oid), "upgraded");
}

TEST_F(LockingTest, PermitAdmitsConflictingWriteWithoutWaiting) {
  ObjectId oid = MakeObject("v0");
  std::atomic<bool> holder_wrote{false}, release{false};
  Tid holder = Spawn([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("h")).ok());
    holder_wrote = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  while (!holder_wrote) std::this_thread::sleep_for(1ms);

  // Initiate the cooperator first so the permit can name it (§2.2: the
  // separation of initiate and begin exists for exactly this).
  std::atomic<bool> coop_wrote{false};
  Tid coop = tm_->Initiate([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("c")).ok());
    coop_wrote = true;
  });
  ASSERT_TRUE(
      tm_->Permit(holder, coop, ObjectSet{oid}, OpSet(Operation::kWrite))
          .ok());
  ASSERT_TRUE(tm_->Begin(coop));
  // The cooperator must get through while the holder still runs.
  for (int i = 0; i < 500 && !coop_wrote; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(coop_wrote.load());
  // The holder's lock is now suspended (its permit was exercised).
  release = true;
  EXPECT_TRUE(tm_->Commit(coop));
  EXPECT_TRUE(tm_->Commit(holder));
  EXPECT_EQ(ReadCommitted(oid), "c");
}

TEST_F(LockingTest, PermitIsDirectional) {
  ObjectId oid = MakeObject("v0");
  std::atomic<bool> holder_wrote{false}, release{false};
  Tid holder = Spawn([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("h")).ok());
    holder_wrote = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  while (!holder_wrote) std::this_thread::sleep_for(1ms);
  // Permit in the WRONG direction: stranger permits holder.
  std::atomic<bool> stranger_done{false};
  Tid stranger = tm_->Initiate([&] {
    Status s = tm_->Write(TransactionManager::Self(), oid, TestBytes("s"));
    stranger_done = s.ok();
  });
  ASSERT_TRUE(
      tm_->Permit(stranger, holder, ObjectSet{oid}, OpSet(Operation::kWrite))
          .ok());
  ASSERT_TRUE(tm_->Begin(stranger));
  std::this_thread::sleep_for(60ms);
  EXPECT_FALSE(stranger_done.load());  // still blocked
  release = true;
  EXPECT_TRUE(tm_->Commit(holder));
  EXPECT_TRUE(tm_->Commit(stranger));
}

TEST_F(LockingTest, PermitScopedToOperations) {
  ObjectId oid = MakeObject("v0");
  std::atomic<bool> holder_ready{false}, release{false};
  Tid holder = Spawn([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("h")).ok());
    holder_ready = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  while (!holder_ready) std::this_thread::sleep_for(1ms);
  // Read-only permit lets a reader through, but a writer still blocks.
  std::atomic<bool> read_ok{false};
  Tid reader = tm_->Initiate([&] {
    read_ok = tm_->Read(TransactionManager::Self(), oid).ok();
  });
  ASSERT_TRUE(
      tm_->Permit(holder, reader, ObjectSet{oid}, OpSet(Operation::kRead))
          .ok());
  tm_->Begin(reader);
  for (int i = 0; i < 500 && !read_ok; ++i) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(read_ok.load());
  EXPECT_TRUE(tm_->Commit(reader));

  std::atomic<bool> write_done{false};
  Tid writer = tm_->Initiate([&] {
    write_done =
        tm_->Write(TransactionManager::Self(), oid, TestBytes("w")).ok();
  });
  ASSERT_TRUE(
      tm_->Permit(holder, writer, ObjectSet{oid}, OpSet(Operation::kRead))
          .ok());  // read permit only
  tm_->Begin(writer);
  std::this_thread::sleep_for(60ms);
  EXPECT_FALSE(write_done.load());
  release = true;
  EXPECT_TRUE(tm_->Commit(holder));
  EXPECT_TRUE(tm_->Commit(writer));
}

TEST_F(LockingTest, PingPongCooperation) {
  // §3.2.1: two transactions alternately writing one object via mutual
  // permits, both still running.
  ObjectId oid = MakeObject("0");
  std::atomic<int> turn{1};
  std::atomic<bool> failed{false};
  auto writer = [&](int me, int rounds) {
    Tid self = TransactionManager::Self();
    for (int r = 0; r < rounds; ++r) {
      while (turn.load() != me) std::this_thread::sleep_for(100us);
      if (!tm_->Write(self, oid, TestBytes(std::to_string(me))).ok()) {
        failed = true;
        return;
      }
      turn.store(me == 1 ? 2 : 1);
    }
  };
  Tid t1 = tm_->Initiate([&] { writer(1, 5); });
  Tid t2 = tm_->Initiate([&] { writer(2, 5); });
  ASSERT_TRUE(
      tm_->Permit(t1, t2, ObjectSet{oid}, OpSet(Operation::kWrite)).ok());
  ASSERT_TRUE(
      tm_->Permit(t2, t1, ObjectSet{oid}, OpSet(Operation::kWrite)).ok());
  ASSERT_TRUE(tm_->Begin({t1, t2}));
  EXPECT_TRUE(tm_->Commit(t1));
  EXPECT_TRUE(tm_->Commit(t2));
  EXPECT_FALSE(failed.load());
  // t2 wrote last in the alternation 1,2,1,2,...
  EXPECT_EQ(ReadCommitted(oid), "2");
  EXPECT_GE(tm_->stats().lock_suspensions.load(), 2u);
}

TEST_F(LockingTest, TransitivePermitAdmitsThirdParty) {
  ObjectId oid = MakeObject("v0");
  std::atomic<bool> a_wrote{false}, release{false};
  Tid a = Spawn([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("a")).ok());
    a_wrote = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  while (!a_wrote) std::this_thread::sleep_for(1ms);
  Tid b = tm_->Initiate([] {});
  std::atomic<bool> c_wrote{false};
  Tid c = tm_->Initiate([&] {
    c_wrote =
        tm_->Write(TransactionManager::Self(), oid, TestBytes("c")).ok();
  });
  // a permits b; b permits c ⇒ a permits c (§2.2 rule 3).
  ASSERT_TRUE(
      tm_->Permit(a, b, ObjectSet{oid}, OpSet(Operation::kWrite)).ok());
  ASSERT_TRUE(
      tm_->Permit(b, c, ObjectSet{oid}, OpSet(Operation::kWrite)).ok());
  tm_->Begin(c);
  for (int i = 0; i < 500 && !c_wrote; ++i) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(c_wrote.load());
  release = true;
  EXPECT_TRUE(tm_->Commit(c));
  EXPECT_TRUE(tm_->Commit(a));
  tm_->Abort(b);
}

TEST_F(LockingTest, WildcardPermitCoversAccessedObjects) {
  ObjectId o1 = MakeObject("x");
  ObjectId o2 = MakeObject("y");
  std::atomic<bool> holder_ready{false}, release{false};
  Tid holder = Spawn([&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Write(self, o1, TestBytes("h1")).ok());
    ASSERT_TRUE(tm_->Write(self, o2, TestBytes("h2")).ok());
    holder_ready = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  while (!holder_ready) std::this_thread::sleep_for(1ms);
  std::atomic<bool> coop_done{false};
  Tid coop = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    coop_done = tm_->Write(self, o1, TestBytes("c1")).ok() &&
                tm_->Write(self, o2, TestBytes("c2")).ok();
  });
  // permit(holder, coop): all operations on everything holder accessed.
  ASSERT_TRUE(tm_->Permit(holder, coop).ok());
  tm_->Begin(coop);
  for (int i = 0; i < 500 && !coop_done; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(coop_done.load());
  release = true;
  EXPECT_TRUE(tm_->Commit(coop));
  EXPECT_TRUE(tm_->Commit(holder));
}

TEST_F(LockingTest, AnyTransactionPermitAdmitsStrangers) {
  ObjectId oid = MakeObject("v0");
  std::atomic<bool> holder_ready{false}, release{false};
  Tid holder = Spawn([&] {
    ASSERT_TRUE(tm_->Read(TransactionManager::Self(), oid).ok());
    holder_ready = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  while (!holder_ready) std::this_thread::sleep_for(1ms);
  // Cursor-stability style: permit(holder, {oid}, write) — anyone may
  // write.
  ASSERT_TRUE(
      tm_->PermitAny(holder, ObjectSet{oid}, OpSet(Operation::kWrite)).ok());
  std::atomic<bool> wrote{false};
  Tid stranger = Spawn([&] {
    wrote = tm_->Write(TransactionManager::Self(), oid, TestBytes("s")).ok();
  });
  for (int i = 0; i < 500 && !wrote; ++i) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(wrote.load());
  release = true;
  EXPECT_TRUE(tm_->Commit(stranger));
  EXPECT_TRUE(tm_->Commit(holder));
}

TEST_F(LockingTest, DelegationMovesLocksToDelegatee) {
  ObjectId oid = MakeObject("v0");
  std::atomic<bool> wrote{false}, release{false};
  Tid ti = Spawn([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("ti")).ok());
    wrote = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  while (!wrote) std::this_thread::sleep_for(1ms);
  Tid tj = tm_->Initiate([] {});
  ASSERT_TRUE(tm_->Delegate(ti, tj, ObjectSet{oid}).ok());
  release = true;
  ASSERT_EQ(tm_->Wait(ti), 1);
  // ti no longer holds the lock: committing ti must NOT release object
  // oid (tj holds it now); a third writer still blocks until tj ends.
  EXPECT_TRUE(tm_->Commit(ti));
  std::atomic<bool> third_done{false};
  Tid third = Spawn([&] {
    third_done =
        tm_->Write(TransactionManager::Self(), oid, TestBytes("3")).ok();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(third_done.load());
  tm_->Begin(tj);
  EXPECT_TRUE(tm_->Commit(tj));
  EXPECT_TRUE(tm_->Commit(third));
  EXPECT_TRUE(third_done.load());
  EXPECT_EQ(ReadCommitted(oid), "3");
}

TEST_F(LockingTest, DelegatedWritesCommitWithDelegatee) {
  ObjectId oid = MakeObject("v0");
  Tid worker = Spawn([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("work")).ok());
  });
  ASSERT_EQ(tm_->Wait(worker), 1);
  Tid owner = tm_->Initiate([] {});
  ASSERT_TRUE(tm_->Delegate(worker, owner).ok());
  // worker aborts — but its write now belongs to owner, so nothing is
  // undone.
  EXPECT_TRUE(tm_->Abort(worker));
  tm_->Begin(owner);
  EXPECT_TRUE(tm_->Commit(owner));
  EXPECT_EQ(ReadCommitted(oid), "work");
}

TEST_F(LockingTest, DelegatedWritesDieWithDelegatee) {
  ObjectId oid = MakeObject("v0");
  Tid worker = Spawn([&] {
    ASSERT_TRUE(
        tm_->Write(TransactionManager::Self(), oid, TestBytes("work")).ok());
  });
  ASSERT_EQ(tm_->Wait(worker), 1);
  Tid owner = tm_->Initiate([] {});
  ASSERT_TRUE(tm_->Delegate(worker, owner).ok());
  EXPECT_TRUE(tm_->Commit(worker));  // commits nothing of substance
  EXPECT_TRUE(tm_->Abort(owner));    // undoes the delegated write
  EXPECT_EQ(ReadCommitted(oid), "v0");
}

TEST_F(LockingTest, DeadlockDetectedAndVictimized) {
  ObjectId a = MakeObject("a");
  ObjectId b = MakeObject("b");
  std::atomic<int> deadlock_errors{0};
  std::atomic<int> phase1{0};
  auto worker = [&](ObjectId first, ObjectId second) {
    Tid self = TransactionManager::Self();
    if (!tm_->Write(self, first, TestBytes("w")).ok()) return;
    phase1.fetch_add(1);
    while (phase1.load() < 2) std::this_thread::sleep_for(1ms);
    Status s = tm_->Write(self, second, TestBytes("w"));
    if (s.IsDeadlock() || s.IsTimedOut()) {
      deadlock_errors.fetch_add(1);
      tm_->Abort(self);
    }
  };
  Tid t1 = Spawn([&] { worker(a, b); });
  Tid t2 = Spawn([&] { worker(b, a); });
  tm_->Wait(t1);
  tm_->Wait(t2);
  tm_->Commit(t1);
  tm_->Commit(t2);
  EXPECT_GE(deadlock_errors.load(), 1);
  EXPECT_GE(tm_->stats().deadlocks.load(), 1u);
}

TEST_F(LockingTest, LockTimeoutSurfacesAsTimedOut) {
  // A kernel with a very short lock timeout and no deadlock detector.
  TransactionManager::Options o;
  o.lock.lock_timeout = std::chrono::milliseconds(50);
  o.lock.detect_deadlocks = false;
  LogManager log;
  TransactionManager quick(&log, &store_, o);
  ObjectId oid = store_.Create(TestBytes("x")).value();
  std::atomic<bool> release{false}, holder_ready{false};
  Tid holder = quick.Initiate([&] {
    ASSERT_TRUE(
        quick.Write(TransactionManager::Self(), oid, TestBytes("h")).ok());
    holder_ready = true;
    while (!release) std::this_thread::sleep_for(1ms);
  });
  quick.Begin(holder);
  while (!holder_ready) std::this_thread::sleep_for(1ms);
  std::atomic<bool> timed_out{false};
  Tid waiter = quick.Initiate([&] {
    Status s = quick.Write(TransactionManager::Self(), oid, TestBytes("w"));
    timed_out = s.IsTimedOut();
  });
  quick.Begin(waiter);
  // Wait() can report 0 the moment the timed-out transaction is marked
  // aborting — possibly before its function finishes recording the
  // status. Abort() blocks until the physical abort (thread exit), so
  // the flag is settled afterwards.
  EXPECT_EQ(quick.Wait(waiter), 0);  // doomed by the lock timeout
  quick.Abort(waiter);
  EXPECT_TRUE(timed_out.load());
  release = true;
  quick.Commit(holder);
}

TEST_F(LockingTest, CommitReleasesLocksForWaiters) {
  // Six writers contend for one object under strict 2PL. Each gets a
  // dedicated committer thread: a blocking commit lands as soon as that
  // writer completes, releasing the lock for the next one. (Committing
  // them in a fixed order from one thread would deadlock by design —
  // locks are held until commit.)
  ObjectId oid = MakeObject("v0");
  constexpr int kWriters = 6;
  std::vector<Tid> tids;
  std::atomic<int> succeeded{0};
  for (int i = 0; i < kWriters; ++i) {
    tids.push_back(Spawn([&, i] {
      if (tm_->Write(TransactionManager::Self(), oid,
                     TestBytes("w" + std::to_string(i)))
              .ok()) {
        succeeded.fetch_add(1);
      }
    }));
  }
  std::vector<std::thread> committers;
  std::atomic<int> committed{0};
  for (Tid t : tids) {
    committers.emplace_back([&, t] {
      if (tm_->Commit(t)) committed.fetch_add(1);
    });
  }
  for (auto& th : committers) th.join();
  EXPECT_EQ(succeeded.load(), kWriters);
  EXPECT_EQ(committed.load(), kWriters);
}

}  // namespace
}  // namespace asset
