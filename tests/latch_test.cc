// Tests for the EOS-style spin latch (§4.1): S-counter, X-bit, writer
// preference, and mutual-exclusion invariants under contention.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/latch.h"

namespace asset {
namespace {

TEST(SpinLatchTest, SharedCountTracksHolders) {
  SpinLatch l;
  EXPECT_EQ(l.SharedCount(), 0u);
  l.LockShared();
  l.LockShared();
  EXPECT_EQ(l.SharedCount(), 2u);
  l.UnlockShared();
  EXPECT_EQ(l.SharedCount(), 1u);
  l.UnlockShared();
  EXPECT_EQ(l.SharedCount(), 0u);
}

TEST(SpinLatchTest, TryExclusiveFailsUnderShared) {
  SpinLatch l;
  l.LockShared();
  EXPECT_FALSE(l.TryLockExclusive());
  l.UnlockShared();
  EXPECT_TRUE(l.TryLockExclusive());
  EXPECT_TRUE(l.ExclusiveHeld());
  l.UnlockExclusive();
  EXPECT_FALSE(l.ExclusiveHeld());
}

TEST(SpinLatchTest, TrySharedFailsUnderExclusive) {
  SpinLatch l;
  l.LockExclusive();
  EXPECT_FALSE(l.TryLockShared());
  l.UnlockExclusive();
  EXPECT_TRUE(l.TryLockShared());
  l.UnlockShared();
}

TEST(SpinLatchTest, WaitingWriterBlocksNewReaders) {
  SpinLatch l;
  l.LockShared();  // an existing reader
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    l.LockExclusive();
    writer_done = true;
    l.UnlockExclusive();
  });
  // Wait for the writer to announce itself via the X-bit.
  while (!l.WriterWaiting()) std::this_thread::yield();
  // The X-bit must block a brand-new reader even though only S-holders
  // are present (writer-starvation prevention).
  EXPECT_FALSE(l.TryLockShared());
  EXPECT_FALSE(writer_done.load());
  l.UnlockShared();
  writer.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_TRUE(l.TryLockShared());
  l.UnlockShared();
}

TEST(SpinLatchTest, ExclusiveIsMutuallyExclusive) {
  SpinLatch l;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        l.LockExclusive();
        counter++;  // data race iff the latch is broken
        l.UnlockExclusive();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SpinLatchTest, ReadersObserveConsistentPairUnderWriters) {
  // A writer keeps (a, b) equal; readers must never observe a != b.
  SpinLatch l;
  int64_t a = 0, b = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> inconsistencies{0};
  std::thread writer([&] {
    for (int i = 1; i <= 20000; ++i) {
      l.LockExclusive();
      a = i;
      b = i;
      l.UnlockExclusive();
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop) {
        l.LockShared();
        if (a != b) inconsistencies++;
        l.UnlockShared();
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(inconsistencies.load(), 0);
}

TEST(SpinLatchTest, MixedTryAndBlockingAgree) {
  SpinLatch l;
  std::atomic<int> in_critical{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        if (t % 2 == 0) {
          l.LockExclusive();
        } else {
          while (!l.TryLockExclusive()) std::this_thread::yield();
        }
        int now = in_critical.fetch_add(1) + 1;
        int prev = max_seen.load();
        while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
        }
        in_critical.fetch_sub(1);
        l.UnlockExclusive();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(max_seen.load(), 1);
}

TEST(LatchGuardTest, RaiiReleases) {
  SpinLatch l;
  {
    SharedLatchGuard g(l);
    EXPECT_EQ(l.SharedCount(), 1u);
  }
  EXPECT_EQ(l.SharedCount(), 0u);
  {
    ExclusiveLatchGuard g(l);
    EXPECT_TRUE(l.ExclusiveHeld());
  }
  EXPECT_FALSE(l.ExclusiveHeld());
}

}  // namespace
}  // namespace asset
