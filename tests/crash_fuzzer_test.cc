// Deterministic crash-point recovery fuzzer (ISSUE tentpole part 4).
//
// A seeded, single-threaded workload runs against a real kernel
// (session transactions over an in-memory stack with a synchronous
// WAL): creates, writes, deletes, counter increments, delegations,
// commits, aborts, and online fuzzy checkpoints with WAL truncation
// interleaved throughout. A reference interpreter tracks the committed
// state after every commit, keyed by the commit record's lsn; the disk
// image is snapshotted at every point the durable boundary and the
// page device are known-consistent (start of run and after each
// checkpoint, which is the only path that writes pages back).
//
// Then, for EVERY durable-prefix length L — including prefixes that
// cut a checkpoint in half (pages flushed, checkpoint record absent),
// cut a runtime abort's CLR chain, or fall inside a truncated log —
// the fuzzer rebuilds a fresh stack from the paired disk snapshot plus
// the re-encoded log prefix, runs recovery, and asserts the store
// equals the reference state of the last commit at or below L. It then
// runs recovery AGAIN on the same stack (double recovery must be a
// byte-identical no-op), and finally replays every mid-recovery crash:
// for each k, the same snapshot plus the prefix extended by the first
// k records the first recovery itself appended (CLRs, aborts) must
// still converge to the same state.
//
// Seed count is bounded by ASSET_CRASH_FUZZER_SEEDS (default 2) so CI
// can widen the search without changing code.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/transaction_manager.h"
#include "storage/recovery.h"

namespace asset {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

/// Committed state as the reference interpreter sees it.
struct Model {
  std::map<ObjectId, std::string> objects;
  std::map<ObjectId, int64_t> counters;
};

/// Uncommitted effects of one open session transaction. Sessions touch
/// disjoint objects (each claims objects from a free pool and releases
/// them on termination), mirroring what the lock manager enforces.
struct Session {
  Tid tid = kNullTid;
  /// Final pending value per plain object; nullopt = deleted.
  std::map<ObjectId, std::optional<std::string>> writes;
  /// Pending delta per counter (creation folds the initial value in).
  std::map<ObjectId, int64_t> deltas;
  std::set<ObjectId> created;           // plain objects created here
  std::set<ObjectId> created_counters;  // counters created here
  std::set<ObjectId> assigned_plain;    // committed objects on loan
  std::set<ObjectId> assigned_counters;
};

class CrashPointFuzzer {
 public:
  explicit CrashPointFuzzer(uint32_t seed)
      : rng_(seed),
        log_(LogManager::FlushMode::kSynchronous),
        pool_(&disk_, 256, &log_),
        store_(&pool_) {
    wal_path_ = ::testing::TempDir() + "/asset_crash_fuzzer_" +
                std::to_string(seed) + ".wal";
    EXPECT_TRUE(store_.Open().ok());
    TransactionManager::Options o;
    o.lock.lock_timeout = std::chrono::milliseconds(2000);
    o.commit_timeout = std::chrono::milliseconds(3000);
    tm_ = std::make_unique<TransactionManager>(&log_, &store_, o);
    // The paired image for any crash before the first checkpoint: the
    // device as it was before the workload dirtied anything.
    snapshots_.emplace_back(kNullLsn, disk_.SnapshotForTest());
    models_.emplace_back(kNullLsn, Model{});
  }

  void Run() {
    for (int round = 0; round < 70; ++round) {
      if (::testing::Test::HasFailure()) return;
      Step();
    }
    // Commit every other leftover session; the rest stay open so every
    // suffix of the log carries genuine losers.
    bool commit = true;
    while (!open_.empty()) {
      if (commit) {
        CommitSession(0);
      } else {
        open_.erase(open_.begin());  // left open: a loser at crash time
      }
      commit = !commit;
    }
    EXPECT_TRUE(log_.Flush().ok());
    Archive();
    // Guard against a degenerate run that would make the prefix sweep
    // vacuous: the workload must have committed real transactions and
    // produced a meaningful log.
    EXPECT_GT(models_.size(), 3u);
    EXPECT_GT(archive_.size(), 40u);
    CheckAllPrefixes();
  }

 private:
  // --- workload ------------------------------------------------------

  uint32_t Rand(uint32_t n) { return rng_() % n; }

  void Step() {
    uint32_t pick = Rand(100);
    if (open_.empty() && pick >= 16) {
      // With no session open almost every op is a no-op; reseed instead
      // so unlucky seeds still produce a meaningful workload.
      OpenSession();
      return;
    }
    if (pick < 16) {
      OpenSession();
    } else if (pick < 38) {
      WritePlain();
    } else if (pick < 48) {
      CreatePlain();
    } else if (pick < 55) {
      CreateCounter();
    } else if (pick < 67) {
      IncrementCounter();
    } else if (pick < 73) {
      DeletePlain();
    } else if (pick < 78) {
      DelegateAll();
    } else if (pick < 87) {
      if (!open_.empty()) CommitSession(Rand(open_.size()));
    } else if (pick < 93) {
      AbortSession();
    } else {
      CheckpointAndMaybeTruncate();
    }
  }

  void OpenSession() {
    if (open_.size() >= 3) return;
    auto tid = tm_->BeginSession();
    ASSERT_TRUE(tid.ok());
    Session s;
    s.tid = *tid;
    for (int i = 0; i < 2 && !free_plain_.empty(); ++i) {
      size_t j = Rand(free_plain_.size());
      s.assigned_plain.insert(free_plain_[j]);
      free_plain_.erase(free_plain_.begin() + j);
    }
    if (!free_counters_.empty()) {
      size_t j = Rand(free_counters_.size());
      s.assigned_counters.insert(free_counters_[j]);
      free_counters_.erase(free_counters_.begin() + j);
    }
    open_.push_back(std::move(s));
  }

  /// Plain objects `s` may currently write: created or on loan, and not
  /// pending-deleted.
  std::vector<ObjectId> WritablePlain(const Session& s) const {
    std::vector<ObjectId> out;
    for (ObjectId oid : s.created) out.push_back(oid);
    for (ObjectId oid : s.assigned_plain) out.push_back(oid);
    std::erase_if(out, [&](ObjectId oid) {
      auto it = s.writes.find(oid);
      return it != s.writes.end() && !it->second.has_value();
    });
    return out;
  }

  void WritePlain() {
    if (open_.empty()) return;
    Session& s = open_[Rand(open_.size())];
    auto cands = WritablePlain(s);
    if (cands.empty()) return;
    ObjectId oid = cands[Rand(cands.size())];
    std::string val = "v" + std::to_string(next_value_++);
    ASSERT_TRUE(tm_->Write(s.tid, oid, Bytes(val)).ok());
    s.writes[oid] = val;
  }

  void CreatePlain() {
    if (open_.empty()) return;
    Session& s = open_[Rand(open_.size())];
    std::string val = "v" + std::to_string(next_value_++);
    auto oid = tm_->CreateObject(s.tid, Bytes(val));
    ASSERT_TRUE(oid.ok());
    s.created.insert(*oid);
    s.writes[*oid] = val;
  }

  void CreateCounter() {
    if (open_.empty()) return;
    Session& s = open_[Rand(open_.size())];
    int64_t initial = static_cast<int64_t>(Rand(100));
    auto oid = tm_->CreateCounter(s.tid, initial);
    ASSERT_TRUE(oid.ok());
    s.created_counters.insert(*oid);
    s.deltas[*oid] += initial;
  }

  void IncrementCounter() {
    if (open_.empty()) return;
    Session& s = open_[Rand(open_.size())];
    std::vector<ObjectId> cands(s.created_counters.begin(),
                                s.created_counters.end());
    cands.insert(cands.end(), s.assigned_counters.begin(),
                 s.assigned_counters.end());
    if (cands.empty()) return;
    ObjectId oid = cands[Rand(cands.size())];
    int64_t delta = static_cast<int64_t>(Rand(21)) - 10;
    ASSERT_TRUE(tm_->Increment(s.tid, oid, delta).ok());
    s.deltas[oid] += delta;
  }

  void DeletePlain() {
    if (open_.empty()) return;
    Session& s = open_[Rand(open_.size())];
    auto cands = WritablePlain(s);
    if (cands.empty()) return;
    ObjectId oid = cands[Rand(cands.size())];
    ASSERT_TRUE(tm_->DeleteObject(s.tid, oid).ok());
    s.writes[oid] = std::nullopt;
  }

  /// delegate(a, b): b takes over everything a did, then a commits
  /// empty-handed and goes away. The reference interpreter moves a's
  /// pending effects (and object loans) to b, exactly the semantics
  /// recovery must reconstruct from the kDelegate* records.
  void DelegateAll() {
    if (open_.size() < 2) return;
    size_t ai = Rand(open_.size());
    size_t bi = Rand(open_.size() - 1);
    if (bi >= ai) ++bi;
    Session& a = open_[ai];
    Session& b = open_[bi];
    ASSERT_TRUE(tm_->Delegate(a.tid, b.tid).ok());
    for (auto& [oid, val] : a.writes) b.writes[oid] = std::move(val);
    for (auto& [oid, d] : a.deltas) b.deltas[oid] += d;
    b.created.insert(a.created.begin(), a.created.end());
    b.created_counters.insert(a.created_counters.begin(),
                              a.created_counters.end());
    b.assigned_plain.insert(a.assigned_plain.begin(), a.assigned_plain.end());
    b.assigned_counters.insert(a.assigned_counters.begin(),
                               a.assigned_counters.end());
    Tid a_tid = a.tid;
    open_.erase(open_.begin() + ai);
    ASSERT_TRUE(tm_->CommitTxn(a_tid).ok());
    Model unchanged = models_.back().second;
    models_.emplace_back(log_.durable_lsn(), std::move(unchanged));
  }

  void CommitSession(size_t idx) {
    Session s = std::move(open_[idx]);
    open_.erase(open_.begin() + idx);
    ASSERT_TRUE(tm_->CommitTxn(s.tid).ok());
    Model m = models_.back().second;
    for (const auto& [oid, val] : s.writes) {
      if (val.has_value()) {
        m.objects[oid] = *val;
      } else {
        m.objects.erase(oid);
      }
    }
    for (const auto& [oid, d] : s.deltas) m.counters[oid] += d;
    // Strict durability + synchronous flush mode: the durable boundary
    // now sits exactly on this commit record.
    models_.emplace_back(log_.durable_lsn(), m);
    for (const auto& [oid, val] : s.writes) {
      if (val.has_value()) free_plain_.push_back(oid);
    }
    for (ObjectId oid : s.assigned_plain) {
      if (!s.writes.count(oid)) free_plain_.push_back(oid);
    }
    for (ObjectId oid : s.created_counters) free_counters_.push_back(oid);
    for (ObjectId oid : s.assigned_counters) free_counters_.push_back(oid);
  }

  void AbortSession() {
    if (open_.empty()) return;
    size_t idx = Rand(open_.size());
    Session s = std::move(open_[idx]);
    open_.erase(open_.begin() + idx);
    ASSERT_TRUE(tm_->AbortTxn(s.tid).ok());
    // Loaned committed objects survive the abort untouched.
    for (ObjectId oid : s.assigned_plain) free_plain_.push_back(oid);
    for (ObjectId oid : s.assigned_counters) free_counters_.push_back(oid);
  }

  void CheckpointAndMaybeTruncate() {
    auto lsn = RecoveryManager::FuzzyCheckpoint(
        &log_, &pool_, [this] { return tm_->SnapshotActiveTransactions(); },
        std::chrono::milliseconds(5000));
    ASSERT_TRUE(lsn.ok());
    // The checkpoint flushed pages under the WAL rule, so (device image,
    // durable boundary) is a legal crash pairing for every L >= here.
    snapshots_.emplace_back(log_.durable_lsn(), disk_.SnapshotForTest());
    if (Rand(2) == 0) {
      Archive();  // keep the dropped records for prefix replay
      auto dropped = log_.TruncatePrefix();
      ASSERT_TRUE(dropped.ok());
      if (*dropped > 0) {
        truncated_ += *dropped;
        trunc_history_.emplace_back(log_.durable_lsn(), truncated_);
      }
    }
  }

  // --- prefix replay -------------------------------------------------

  /// Folds the currently retained durable records into the archive
  /// (truncation physically drops them from the log; prefix replay
  /// still needs them for crash points that predate the truncation).
  void Archive() {
    for (auto& rec : log_.ReadDurable()) archive_[rec.lsn] = std::move(rec);
  }

  /// The log's physical start for a crash at durable prefix L: the
  /// truncation state as of the last truncation that had completed by
  /// the time L was the durable end.
  Lsn TruncAt(Lsn l) const {
    Lsn t = 0;
    for (const auto& [at, trunc] : trunc_history_) {
      if (at <= l) t = trunc;
    }
    return t;
  }

  const std::vector<std::vector<uint8_t>>& SnapshotAt(Lsn l) const {
    const std::vector<std::vector<uint8_t>>* best = &snapshots_.front().second;
    for (const auto& [at, snap] : snapshots_) {
      if (at <= l) best = &snap;
    }
    return *best;
  }

  const Model& ExpectedAt(Lsn l) const {
    const Model* best = &models_.front().second;
    for (const auto& [at, m] : models_) {
      if (at <= l) best = &m;
    }
    return *best;
  }

  struct Replay {
    bool ok = false;
    std::map<ObjectId, std::vector<uint8_t>> raw;  // full store dump
    std::vector<LogRecord> appended;  // records recovery itself wrote
  };

  /// Builds a fresh stack from (disk snapshot, re-encoded log records),
  /// recovers, and dumps the store. With `rerun`, recovers a second
  /// time on the same stack and asserts a byte-identical dump.
  Replay RecoverOnce(const std::vector<LogRecord>& recs,
                     const std::vector<std::vector<uint8_t>>& snap,
                     bool rerun, Lsn label) {
    Replay out;
    std::vector<uint8_t> bytes;
    for (const auto& r : recs) r.EncodeTo(&bytes);
    {
      std::ofstream f(wal_path_, std::ios::binary | std::ios::trunc);
      f.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    }
    InMemoryDiskManager disk;
    disk.RestoreForTest(snap);
    LogManager log(LogManager::FlushMode::kSynchronous);
    Status s = log.AttachFile(wal_path_);
    EXPECT_TRUE(s.ok()) << "prefix " << label << ": " << s.ToString();
    if (!s.ok()) return out;
    BufferPool pool(&disk, 256, &log);
    ObjectStore store(&pool);
    s = store.Open();
    EXPECT_TRUE(s.ok()) << "prefix " << label << ": " << s.ToString();
    if (!s.ok()) return out;
    auto rep = RecoveryManager::Recover(&log, &store);
    EXPECT_TRUE(rep.ok()) << "prefix " << label << ": "
                          << rep.status().ToString();
    if (!rep.ok()) return out;
    auto dump = [&store] {
      std::map<ObjectId, std::vector<uint8_t>> d;
      for (ObjectId oid : store.ListObjects()) d[oid] = *store.Read(oid);
      return d;
    };
    out.raw = dump();
    if (rerun) {
      auto rep2 = RecoveryManager::Recover(&log, &store);
      EXPECT_TRUE(rep2.ok()) << "prefix " << label << ": "
                             << rep2.status().ToString();
      if (!rep2.ok()) return out;
      EXPECT_EQ(rep2->undo_applied, 0u) << "prefix " << label;
      EXPECT_TRUE(dump() == out.raw)
          << "prefix " << label << ": double recovery changed the store";
    }
    Lsn prefix_end = recs.back().lsn;
    for (auto& rec : log.ReadDurable()) {
      if (rec.lsn > prefix_end) out.appended.push_back(std::move(rec));
    }
    out.ok = true;
    return out;
  }

  void ExpectMatchesModel(const Replay& r, const Model& m, Lsn label,
                          const char* what) {
    std::set<ObjectId> want;
    for (const auto& [oid, _] : m.objects) want.insert(oid);
    for (const auto& [oid, _] : m.counters) want.insert(oid);
    std::set<ObjectId> got;
    for (const auto& [oid, _] : r.raw) got.insert(oid);
    EXPECT_EQ(got, want) << what << " at prefix " << label
                         << ": live object set diverged from the oracle";
    for (const auto& [oid, val] : m.objects) {
      auto it = r.raw.find(oid);
      if (it == r.raw.end()) continue;  // already reported above
      EXPECT_EQ(std::string(it->second.begin(), it->second.end()), val)
          << what << " at prefix " << label << ": object " << oid;
    }
    for (const auto& [oid, val] : m.counters) {
      auto it = r.raw.find(oid);
      if (it == r.raw.end()) continue;
      ASSERT_EQ(it->second.size(), 16u)
          << what << " at prefix " << label << ": counter " << oid;
      int64_t stored = 0;
      std::memcpy(&stored, it->second.data() + 8, sizeof(stored));
      EXPECT_EQ(stored, val) << what << " at prefix " << label << ": counter "
                             << oid;
    }
  }

  void CheckAllPrefixes() {
    const Lsn end = log_.durable_lsn();
    ASSERT_GT(end, 0u);
    for (Lsn l = 1; l <= end; ++l) {
      Lsn trunc = TruncAt(l);
      std::vector<LogRecord> recs;
      for (Lsn i = trunc + 1; i <= l; ++i) {
        auto it = archive_.find(i);
        ASSERT_NE(it, archive_.end()) << "archive hole at lsn " << i;
        recs.push_back(it->second);
      }
      const auto& snap = SnapshotAt(l);
      const Model& expect = ExpectedAt(l);
      Replay r = RecoverOnce(recs, snap, /*rerun=*/true, l);
      if (!r.ok) return;
      ExpectMatchesModel(r, expect, l, "recovery");
      // Crash *during* recovery: the same device image plus the prefix
      // extended by the first k records recovery appended (CLRs and
      // abort records) must converge to the same state.
      for (size_t k = 1; k <= r.appended.size(); ++k) {
        auto recs2 = recs;
        recs2.insert(recs2.end(), r.appended.begin(),
                     r.appended.begin() + static_cast<ptrdiff_t>(k));
        Replay r2 = RecoverOnce(recs2, snap, /*rerun=*/false, l);
        if (!r2.ok) return;
        ExpectMatchesModel(r2, expect, l, "mid-recovery crash");
      }
      if (::testing::Test::HasFailure()) return;
    }
  }

  std::mt19937 rng_;
  InMemoryDiskManager disk_;
  LogManager log_;
  BufferPool pool_;
  ObjectStore store_;
  std::unique_ptr<TransactionManager> tm_;
  std::string wal_path_;

  std::vector<Session> open_;
  std::vector<ObjectId> free_plain_;
  std::vector<ObjectId> free_counters_;
  uint64_t next_value_ = 0;

  /// (durable lsn, committed state) after each commit, in lsn order.
  std::vector<std::pair<Lsn, Model>> models_;
  /// (durable lsn, device image) pairings legal for any crash at or
  /// after the lsn.
  std::vector<std::pair<Lsn, std::vector<std::vector<uint8_t>>>> snapshots_;
  /// Every durable record ever, surviving truncation.
  std::map<Lsn, LogRecord> archive_;
  /// (durable end when the truncation ran, records truncated by then).
  std::vector<std::pair<Lsn, Lsn>> trunc_history_;
  Lsn truncated_ = 0;
};

TEST(CrashPointFuzzerTest, EveryDurablePrefixRecoversToOracleState) {
  int seeds = 2;
  if (const char* env = std::getenv("ASSET_CRASH_FUZZER_SEEDS")) {
    seeds = std::max(1, std::atoi(env));
  }
  for (int i = 0; i < seeds && !::testing::Test::HasFailure(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(1337 + i));
    CrashPointFuzzer fuzzer(1337 + static_cast<uint32_t>(i));
    fuzzer.Run();
  }
}

}  // namespace
}  // namespace asset
