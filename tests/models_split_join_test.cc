// Split/join model (§3.1.5): a split carves off objects into an
// independent transaction; a join folds a transaction's work into
// another.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "kernel_fixture.h"
#include "models/split_join.h"

namespace asset {
namespace {

using namespace std::chrono_literals;

class SplitJoinModelTest : public KernelFixture {};

TEST_F(SplitJoinModelTest, SplitRequiresEnclosingTransaction) {
  EXPECT_FALSE(models::Split(*tm_, ObjectSet{1}, [] {}).ok());
}

TEST_F(SplitJoinModelTest, SplitCommitsIndependently) {
  ObjectId kept = MakeObject("0");
  ObjectId given = MakeObject("0");
  Tid split_tid = kNullTid;
  // The original transaction writes both objects, splits off `given`,
  // then aborts. The split transaction commits `given`'s update anyway.
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Write(self, kept, TestBytes("mine")).ok());
    ASSERT_TRUE(tm_->Write(self, given, TestBytes("yours")).ok());
    auto s = models::Split(*tm_, ObjectSet{given}, [] {});
    ASSERT_TRUE(s.ok());
    split_tid = *s;
    tm_->Abort(self);
  });
  tm_->Begin(t);
  EXPECT_FALSE(tm_->Commit(t));
  ASSERT_NE(split_tid, kNullTid);
  EXPECT_TRUE(tm_->Commit(split_tid));
  EXPECT_EQ(ReadCommitted(kept), "0");       // undone with the original
  EXPECT_EQ(ReadCommitted(given), "yours");  // survived via the split
}

TEST_F(SplitJoinModelTest, SplitAbortsIndependently) {
  ObjectId kept = MakeObject("0");
  ObjectId given = MakeObject("0");
  Tid split_tid = kNullTid;
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Write(self, kept, TestBytes("mine")).ok());
    ASSERT_TRUE(tm_->Write(self, given, TestBytes("yours")).ok());
    auto s = models::Split(*tm_, ObjectSet{given}, [] {});
    ASSERT_TRUE(s.ok());
    split_tid = *s;
  });
  tm_->Begin(t);
  tm_->Wait(t);
  EXPECT_TRUE(tm_->Abort(split_tid));
  EXPECT_TRUE(tm_->Commit(t));
  EXPECT_EQ(ReadCommitted(kept), "mine");  // original's half committed
  EXPECT_EQ(ReadCommitted(given), "0");    // split's half rolled back
}

TEST_F(SplitJoinModelTest, SplitBodyRunsInNewTransaction) {
  ObjectId extra = MakeObject("0");
  Tid split_tid = kNullTid;
  std::atomic<Tid> split_self{kNullTid};
  Tid t = tm_->Initiate([&] {
    auto s = models::Split(*tm_, ObjectSet{}, [&] {
      split_self = TransactionManager::Self();
      tm_->Write(TransactionManager::Self(), extra, TestBytes("by-split"))
          .ok();
    });
    ASSERT_TRUE(s.ok());
    split_tid = *s;
  });
  tm_->Begin(t);
  tm_->Wait(t);
  EXPECT_TRUE(tm_->Commit(split_tid));
  EXPECT_TRUE(tm_->Commit(t));
  EXPECT_EQ(split_self.load(), split_tid);
  EXPECT_EQ(ReadCommitted(extra), "by-split");
}

TEST_F(SplitJoinModelTest, JoinFoldsWorkIntoTarget) {
  // The paper's scenario: s splits from t, later joins t again; t's
  // commit carries everything.
  ObjectId obj = MakeObject("0");
  Tid s_tid = kNullTid;
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    auto s = models::Split(*tm_, ObjectSet{}, [&] {
      tm_->Write(TransactionManager::Self(), obj, TestBytes("split-work"))
          .ok();
    });
    ASSERT_TRUE(s.ok());
    s_tid = *s;
    // join(s, t): wait(s); delegate(s, t);
    ASSERT_TRUE(models::Join(*tm_, s_tid, self).ok());
  });
  tm_->Begin(t);
  EXPECT_TRUE(tm_->Commit(t));
  // The split transaction's work went with t.
  EXPECT_EQ(ReadCommitted(obj), "split-work");
  // s itself can now abort without effect.
  tm_->Abort(s_tid);
  EXPECT_EQ(ReadCommitted(obj), "split-work");
}

TEST_F(SplitJoinModelTest, JoinOfAbortedTransactionFails) {
  Tid s_tid = kNullTid;
  Tid t = tm_->Initiate([&] {
    auto s = models::Split(*tm_, ObjectSet{},
                           [&] { tm_->Abort(TransactionManager::Self()); });
    ASSERT_TRUE(s.ok());
    s_tid = *s;
    Status j = models::Join(*tm_, s_tid, TransactionManager::Self());
    EXPECT_TRUE(j.IsTxnAborted());
  });
  tm_->Begin(t);
  EXPECT_TRUE(tm_->Commit(t));
}

TEST_F(SplitJoinModelTest, SerialSplitsChain) {
  // Split from a split: open-ended activities hand off work repeatedly.
  ObjectId obj = MakeObject("0");
  std::atomic<Tid> second_split{kNullTid};
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Write(self, obj, TestBytes("gen0")).ok());
    auto s1 = models::Split(*tm_, ObjectSet{obj}, [&] {
      auto s2 = models::Split(*tm_, ObjectSet{obj}, [] {});
      if (s2.ok()) second_split = *s2;
    });
    ASSERT_TRUE(s1.ok());
    ASSERT_EQ(tm_->Wait(*s1), 1);
    EXPECT_TRUE(tm_->Commit(*s1));
  });
  tm_->Begin(t);
  EXPECT_TRUE(tm_->Commit(t));
  ASSERT_NE(second_split.load(), kNullTid);
  // The final holder commits the original write.
  EXPECT_TRUE(tm_->Commit(second_split.load()));
  EXPECT_EQ(ReadCommitted(obj), "gen0");
}

}  // namespace
}  // namespace asset
