// Unit tests for the waits-for-graph deadlock detector (DESIGN.md S6
// extension), driven directly on transaction descriptors.

#include <gtest/gtest.h>

#include "core/deadlock_detector.h"

namespace asset {
namespace {

class DeadlockDetectorTest : public ::testing::Test {
 protected:
  TransactionDescriptor* Add(Tid tid) {
    auto td = std::make_unique<TransactionDescriptor>(tid, kNullTid);
    TransactionDescriptor* raw = td.get();
    txns_.emplace(tid, std::move(td));
    return raw;
  }
  TdTable txns_;
};

TEST_F(DeadlockDetectorTest, NoEdgesNoDeadlock) {
  auto* a = Add(1);
  EXPECT_FALSE(DeadlockDetector::WouldDeadlock(a, txns_));
  EXPECT_TRUE(DeadlockDetector::FindCycle(txns_).empty());
}

TEST_F(DeadlockDetectorTest, SimpleWaitIsNotDeadlock) {
  auto* a = Add(1);
  Add(2);
  a->waiting_for = {2};
  EXPECT_FALSE(DeadlockDetector::WouldDeadlock(a, txns_));
}

TEST_F(DeadlockDetectorTest, TwoCycle) {
  auto* a = Add(1);
  auto* b = Add(2);
  b->waiting_for = {1};
  a->waiting_for = {2};
  EXPECT_TRUE(DeadlockDetector::WouldDeadlock(a, txns_));
  EXPECT_TRUE(DeadlockDetector::WouldDeadlock(b, txns_));
  EXPECT_FALSE(DeadlockDetector::FindCycle(txns_).empty());
}

TEST_F(DeadlockDetectorTest, LongCycleThroughManyTransactions) {
  constexpr Tid kN = 12;
  std::vector<TransactionDescriptor*> tds;
  for (Tid t = 1; t <= kN; ++t) tds.push_back(Add(t));
  for (Tid t = 0; t < kN - 1; ++t) tds[t]->waiting_for = {t + 2};
  // Closing edge: last waits for first.
  tds[kN - 1]->waiting_for = {1};
  EXPECT_TRUE(DeadlockDetector::WouldDeadlock(tds[0], txns_));
  auto cycle = DeadlockDetector::FindCycle(txns_);
  EXPECT_GE(cycle.size(), 2u);
}

TEST_F(DeadlockDetectorTest, BranchingWaitsOneBranchCycles) {
  auto* a = Add(1);
  auto* b = Add(2);
  auto* c = Add(3);
  Add(4);
  // a waits on b and on 4; b waits on c; c waits on a: cycle via b.
  b->waiting_for = {3};
  c->waiting_for = {1};
  a->waiting_for = {4, 2};
  EXPECT_TRUE(DeadlockDetector::WouldDeadlock(a, txns_));
  a->waiting_for = {4};  // drop the cyclic branch
  EXPECT_FALSE(DeadlockDetector::WouldDeadlock(a, txns_));
}

TEST_F(DeadlockDetectorTest, OffCycleWaiterIsNotAVictim) {
  auto* a = Add(1);
  auto* b = Add(2);
  auto* d = Add(4);
  // a <-> b cycle exists; d waits on a but is not ON the cycle.
  a->waiting_for = {2};
  b->waiting_for = {1};
  d->waiting_for = {1};
  EXPECT_TRUE(DeadlockDetector::WouldDeadlock(a, txns_));
  // d's own wait does not close a cycle through d.
  EXPECT_FALSE(DeadlockDetector::WouldDeadlock(d, txns_));
}

TEST_F(DeadlockDetectorTest, EdgesToUnknownTidsIgnored) {
  auto* a = Add(1);
  a->waiting_for = {99};  // holder already gone
  EXPECT_FALSE(DeadlockDetector::WouldDeadlock(a, txns_));
  EXPECT_TRUE(DeadlockDetector::FindCycle(txns_).empty());
}

TEST_F(DeadlockDetectorTest, SelfWaitIsDeadlock) {
  auto* a = Add(1);
  a->waiting_for = {1};
  EXPECT_TRUE(DeadlockDetector::WouldDeadlock(a, txns_));
}

}  // namespace
}  // namespace asset
