// Chaos soak: every primitive at once. Random mixtures of atomic
// transactions, sagas, nested transactions, cooperative pairs,
// delegation chains, GC groups, counters, and index updates run
// concurrently against one database, with injected aborts — then
// global invariants are checked, a crash is simulated, and the
// invariants are re-checked after recovery.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "core/database.h"
#include "core/database_internal.h"
#include "models/atomic.h"
#include "models/cooperative.h"
#include "models/nested.h"
#include "models/saga.h"
#include "ode/btree.h"

namespace asset {
namespace {

struct ChaosCase {
  int threads;
  int rounds;
  uint64_t seed;
  /// Run the kernel under DurabilityPolicy::kRelaxed: commit acks do
  /// not wait for the flusher, so the crash may lose a suffix of acked
  /// commits. The post-recovery invariants weaken accordingly (prefix
  /// semantics), but conservation must still hold.
  bool relaxed = false;
  /// Fire background fuzzy checkpoints (with WAL truncation) while the
  /// mixed-model workload runs, then re-check every invariant after the
  /// crash recovers from the shortened log.
  bool checkpoints = false;
};

class ChaosProperty : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosProperty, InvariantsHoldThroughChaosAndRecovery) {
  const auto& c = GetParam();
  Database::Options opts;
  opts.txn.lock.lock_timeout = std::chrono::milliseconds(2000);
  opts.txn.commit_timeout = std::chrono::milliseconds(5000);
  opts.txn.durability =
      c.relaxed ? DurabilityPolicy::kRelaxed : DurabilityPolicy::kStrict;
  if (c.checkpoints) {
    // Aggressive triggers so several checkpoints land mid-workload.
    opts.checkpoint.interval = std::chrono::milliseconds(10);
    opts.checkpoint.log_bytes_trigger = 4096;
  }
  auto db = Database::Open(opts).value();

  // World: a pool of bank accounts (total conserved), a counter of
  // committed operations (matches our own tally), and an index mapping
  // round-ids to worker ids (every committed insert present).
  constexpr int kAccounts = 6;
  constexpr int64_t kInitial = 1000;
  std::vector<ObjectId> accounts;
  ObjectId op_counter = kNullObjectId;
  ObjectId index_header = kNullObjectId;
  models::RunAtomic(KernelOf(*db), [&] {
    Tid self = TransactionManager::Self();
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(db->Create<int64_t>(kInitial).value());
    }
    op_counter = db->CreateCounter(0).value();
    index_header =
        ode::BTree::Create(&KernelOf(*db), self)->header_oid();
  });

  std::atomic<int64_t> committed_ops{0};
  std::mutex index_mu;  // serialize index writers (strict 2PL B-tree)
  std::vector<std::pair<int64_t, uint64_t>> committed_index_entries;
  std::mutex entries_mu;

  auto transfer_work = [&](Random& rng) {
    size_t from = rng.Uniform(kAccounts), to = rng.Uniform(kAccounts);
    if (from == to) return;
    int64_t amount = static_cast<int64_t>(rng.Range(1, 20));
    bool abandon = rng.Bernoulli(0.2);
    bool ok = models::RunAtomicWithRetry(
        KernelOf(*db),
        [&] {
          Tid self = TransactionManager::Self();
          ObjectId lo = std::min(accounts[from], accounts[to]);
          ObjectId hi = std::max(accounts[from], accounts[to]);
          auto vlo = db->Get<int64_t>(lo, self);
          if (!vlo.ok()) return;
          auto vhi = db->Get<int64_t>(hi, self);
          if (!vhi.ok()) return;
          int64_t dlo = accounts[from] == lo ? -amount : amount;
          if (!db->Put<int64_t>(lo, *vlo + dlo, self).ok()) return;
          if (!db->Put<int64_t>(hi, *vhi - dlo, self).ok()) return;
          if (!db->Add(op_counter, 1, self).ok()) return;
          if (abandon) KernelOf(*db).Abort(self);
        },
        10);
    if (ok) committed_ops.fetch_add(1);
  };

  auto saga_work = [&](Random& rng) {
    bool fail_late = rng.Bernoulli(0.4);
    size_t acct = rng.Uniform(kAccounts);
    models::Saga saga;
    saga.AddStep(
        [&, acct] {
          Tid self = TransactionManager::Self();
          auto v = db->Get<int64_t>(accounts[acct], self);
          if (!v.ok()) return;
          db->Put<int64_t>(accounts[acct], *v - 5, self).ok();
        },
        [&, acct] {
          Tid self = TransactionManager::Self();
          auto v = db->Get<int64_t>(accounts[acct], self);
          if (!v.ok()) return;
          db->Put<int64_t>(accounts[acct], *v + 5, self).ok();
        });
    saga.AddStep([&, acct, fail_late] {
      Tid self = TransactionManager::Self();
      if (fail_late) {
        KernelOf(*db).Abort(self);
        return;
      }
      auto v = db->Get<int64_t>(accounts[acct], self);
      if (!v.ok()) return;
      db->Put<int64_t>(accounts[acct], *v + 5, self).ok();
      db->Add(op_counter, 1, self).ok();
    });
    if (saga.Run(KernelOf(*db)).committed) committed_ops.fetch_add(1);
  };

  auto nested_work = [&](Random& rng) {
    size_t acct = rng.Uniform(kAccounts);
    bool child_fails = rng.Bernoulli(0.3);
    bool ok = models::RunAtomic(KernelOf(*db), [&] {
      Tid self = TransactionManager::Self();
      auto v = db->Get<int64_t>(accounts[acct], self);
      if (!v.ok()) return;
      if (!db->Put<int64_t>(accounts[acct], *v - 7, self).ok()) return;
      Status s = models::RunSubtransaction(
          KernelOf(*db),
          [&] {
            Tid me = TransactionManager::Self();
            if (child_fails) {
              KernelOf(*db).Abort(me);
              return;
            }
            auto w = db->Get<int64_t>(accounts[acct], me);
            if (!w.ok()) return;
            db->Put<int64_t>(accounts[acct], *w + 7, me).ok();
          },
          models::OnChildAbort::kAbortParent);
      if (s.ok()) db->Add(op_counter, 1, self).ok();
    });
    if (ok) committed_ops.fetch_add(1);
  };

  auto index_work = [&](Random& rng, int worker, int round) {
    std::lock_guard<std::mutex> serialize(index_mu);
    int64_t key = worker * 1000000 + round;
    bool abandon = rng.Bernoulli(0.2);
    bool ok = models::RunAtomicWithRetry(
        KernelOf(*db),
        [&] {
          Tid self = TransactionManager::Self();
          ode::BTree tree = ode::BTree::Open(&KernelOf(*db), index_header);
          if (!tree.Insert(self, key, static_cast<uint64_t>(worker)).ok()) {
            return;
          }
          if (abandon) KernelOf(*db).Abort(self);
        },
        10);
    if (ok) {
      std::lock_guard<std::mutex> g(entries_mu);
      committed_index_entries.emplace_back(key,
                                           static_cast<uint64_t>(worker));
    }
  };

  auto delegation_work = [&](Random& rng) {
    size_t acct = rng.Uniform(kAccounts);
    // A worker writes, delegates everything to a fresh transaction, and
    // that transaction flips a coin: commit keeps the (net-zero) write,
    // abort reverts it. Either way the total is conserved.
    Tid worker = KernelOf(*db).InitiateFn([&, acct] {
      Tid self = TransactionManager::Self();
      auto v = db->Get<int64_t>(accounts[acct], self);
      if (!v.ok()) return;
      db->Put<int64_t>(accounts[acct], *v, self).ok();  // net-zero write
    });
    KernelOf(*db).Begin(worker);
    if (KernelOf(*db).Wait(worker) != 1) {
      KernelOf(*db).Abort(worker);
      return;
    }
    Tid owner = KernelOf(*db).InitiateFn([] {});
    if (!KernelOf(*db).Delegate(worker, owner).ok()) {
      KernelOf(*db).Abort(worker);
      KernelOf(*db).Abort(owner);
      return;
    }
    KernelOf(*db).Commit(worker);
    KernelOf(*db).Begin(owner);
    if (rng.Bernoulli(0.5)) {
      KernelOf(*db).Commit(owner);
    } else {
      KernelOf(*db).Abort(owner);
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < c.threads; ++w) {
    threads.emplace_back([&, w] {
      Random rng(c.seed * 977 + w);
      for (int r = 0; r < c.rounds; ++r) {
        switch (rng.Uniform(5)) {
          case 0:
            transfer_work(rng);
            break;
          case 1:
            saga_work(rng);
            break;
          case 2:
            nested_work(rng);
            break;
          case 3:
            index_work(rng, w, r);
            break;
          case 4:
            delegation_work(rng);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  if (c.checkpoints) {
    // The background checkpointer really ran against the live workload.
    EXPECT_GE(KernelOf(*db).stats().checkpoints.load(), 1u);
  }

  auto check_world = [&](const char* when) {
    models::RunAtomic(KernelOf(*db), [&] {
      Tid self = TransactionManager::Self();
      int64_t total = 0;
      for (ObjectId a : accounts) {
        total += db->Get<int64_t>(a, self).value();
      }
      EXPECT_EQ(total, kAccounts * kInitial) << when;
      EXPECT_EQ(db->GetCounter(op_counter, self).value(),
                committed_ops.load())
          << when;
      ode::BTree tree = ode::BTree::Open(&KernelOf(*db), index_header);
      EXPECT_TRUE(tree.CheckInvariants(self).ok()) << when;
      EXPECT_EQ(tree.Size(self).value(), committed_index_entries.size())
          << when;
      for (const auto& [key, value] : committed_index_entries) {
        ASSERT_EQ(tree.Search(self, key).value(), value) << when;
      }
    });
  };
  // Prefix-consistent invariants for a relaxed-durability crash: the
  // recovered state is SOME prefix of the acked commits. Conservation
  // and structural invariants must hold regardless; the tallies may
  // lag what was acked, never exceed it, and the index may hold only
  // entries that were actually acked.
  auto check_world_prefix = [&](const char* when) {
    models::RunAtomic(KernelOf(*db), [&] {
      Tid self = TransactionManager::Self();
      int64_t total = 0;
      for (ObjectId a : accounts) {
        total += db->Get<int64_t>(a, self).value();
      }
      EXPECT_EQ(total, kAccounts * kInitial) << when;
      EXPECT_LE(db->GetCounter(op_counter, self).value(),
                committed_ops.load())
          << when;
      ode::BTree tree = ode::BTree::Open(&KernelOf(*db), index_header);
      EXPECT_TRUE(tree.CheckInvariants(self).ok()) << when;
      uint64_t size = tree.Size(self).value();
      EXPECT_LE(size, committed_index_entries.size()) << when;
      uint64_t found = 0;
      for (const auto& [key, value] : committed_index_entries) {
        auto hit = tree.Search(self, key);
        if (hit.ok()) {
          EXPECT_EQ(*hit, value) << when;
          ++found;
        }
      }
      // Everything in the tree is an acked entry — no phantoms.
      EXPECT_EQ(found, size) << when;
    });
  };

  check_world("before crash");
  ASSERT_TRUE(db->CrashAndRecover(nullptr).ok());
  if (c.relaxed) {
    check_world_prefix("after recovery (relaxed durability)");
  } else {
    check_world("after recovery");
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChaosProperty,
                         ::testing::Values(ChaosCase{2, 20, 1},
                                           ChaosCase{4, 15, 2},
                                           ChaosCase{6, 12, 3},
                                           ChaosCase{8, 10, 4},
                                           ChaosCase{4, 15, 5, true},
                                           ChaosCase{8, 10, 6, true},
                                           ChaosCase{4, 15, 7, false, true},
                                           ChaosCase{6, 12, 8, true, true}));

}  // namespace
}  // namespace asset
