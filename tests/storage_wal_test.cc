// Tests for the write-ahead log: record encode/decode, durability
// boundary, crash simulation, checkpoint tracking, torn-tail handling,
// and the group-commit pipeline (flusher batching, flush-error
// surfacing, crash mid-group-commit).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/database_internal.h"
#include "storage/wal.h"

namespace asset {
namespace {

LogRecord UpdateRec(Tid tid, ObjectId oid, std::string before,
                    std::string after) {
  LogRecord r;
  r.type = LogRecordType::kUpdate;
  r.tid = tid;
  r.oid = oid;
  r.before.assign(before.begin(), before.end());
  r.after.assign(after.begin(), after.end());
  return r;
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord r = UpdateRec(3, 14, "old", "new");
  r.lsn = 9;
  r.undo_of = 4;
  r.other_tid = 5;
  r.oid_set = {1, 2, 3};
  std::vector<uint8_t> buf;
  r.EncodeTo(&buf);
  size_t off = 0;
  auto back = LogRecord::DecodeFrom(buf, &off);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(back->lsn, 9u);
  EXPECT_EQ(back->type, LogRecordType::kUpdate);
  EXPECT_EQ(back->tid, 3u);
  EXPECT_EQ(back->other_tid, 5u);
  EXPECT_EQ(back->oid, 14u);
  EXPECT_EQ(back->undo_of, 4u);
  EXPECT_EQ(back->before, (std::vector<uint8_t>{'o', 'l', 'd'}));
  EXPECT_EQ(back->after, (std::vector<uint8_t>{'n', 'e', 'w'}));
  EXPECT_EQ(back->oid_set, (std::vector<ObjectId>{1, 2, 3}));
}

TEST(LogRecordTest, DecodeEmptyIsCleanEnd) {
  std::vector<uint8_t> empty;
  size_t off = 0;
  EXPECT_TRUE(LogRecord::DecodeFrom(empty, &off).status().IsNotFound());
}

TEST(LogRecordTest, DecodeTornFrameIsCorruption) {
  LogRecord r = UpdateRec(1, 2, "abc", "def");
  std::vector<uint8_t> buf;
  r.EncodeTo(&buf);
  buf.resize(buf.size() - 2);  // torn tail
  size_t off = 0;
  EXPECT_EQ(LogRecord::DecodeFrom(buf, &off).status().code(),
            StatusCode::kCorruption);
}

TEST(LogRecordTest, DecodeBitflipIsCorruption) {
  LogRecord r = UpdateRec(1, 2, "abc", "def");
  std::vector<uint8_t> buf;
  r.EncodeTo(&buf);
  buf[buf.size() / 2] ^= 0x40;
  size_t off = 0;
  EXPECT_EQ(LogRecord::DecodeFrom(buf, &off).status().code(),
            StatusCode::kCorruption);
}

TEST(LogManagerTest, AppendAssignsDenseLsns) {
  LogManager log;
  EXPECT_EQ(log.Append(UpdateRec(1, 1, "", "a")), 1u);
  EXPECT_EQ(log.Append(UpdateRec(1, 1, "a", "b")), 2u);
  EXPECT_EQ(log.last_lsn(), 2u);
  EXPECT_EQ(log.At(2).after, (std::vector<uint8_t>{'b'}));
}

TEST(LogManagerTest, FlushAdvancesDurableBoundary) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  log.Append(UpdateRec(1, 1, "a", "b"));
  EXPECT_EQ(log.durable_lsn(), 0u);
  ASSERT_TRUE(log.Flush(1).ok());
  EXPECT_EQ(log.durable_lsn(), 1u);
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_EQ(log.durable_lsn(), 2u);
  EXPECT_FALSE(log.Flush(99).ok());
}

TEST(LogManagerTest, SimulateCrashDropsNonDurableTail) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  log.Flush();
  log.Append(UpdateRec(1, 1, "a", "b"));
  log.Append(UpdateRec(1, 1, "b", "c"));
  log.SimulateCrash();
  EXPECT_EQ(log.last_lsn(), 1u);
  EXPECT_EQ(log.ReadAll().size(), 1u);
}

TEST(LogManagerTest, ReadDurableExcludesTail) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  log.Flush();
  log.Append(UpdateRec(1, 1, "a", "b"));
  EXPECT_EQ(log.ReadDurable().size(), 1u);
  EXPECT_EQ(log.ReadAll().size(), 2u);
}

TEST(LogManagerTest, CheckpointLsnTracksDurableCheckpoints) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  LogRecord cp;
  cp.type = LogRecordType::kCheckpoint;
  log.Append(std::move(cp));
  EXPECT_EQ(log.last_checkpoint_lsn(), 0u);  // not durable yet
  log.Flush();
  EXPECT_EQ(log.last_checkpoint_lsn(), 2u);
}

TEST(LogManagerTest, SerializeDeserializeDurable) {
  LogManager log;
  for (int i = 0; i < 10; ++i) {
    log.Append(UpdateRec(i, i * 10, "b" + std::to_string(i),
                         "a" + std::to_string(i)));
  }
  log.Flush(7);
  auto bytes = log.SerializeDurable();
  auto records = LogManager::Deserialize(bytes);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ((*records)[i].lsn, i + 1);
    EXPECT_EQ((*records)[i].oid, i * 10);
  }
}

TEST(LogManagerTest, DeserializeRejectsCorruptStream) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "x", "y"));
  log.Flush();
  auto bytes = log.SerializeDurable();
  bytes[bytes.size() / 2] ^= 1;
  EXPECT_FALSE(LogManager::Deserialize(bytes).ok());
}

TEST(LogManagerTest, ConcurrentAppendsKeepDenseLsns) {
  LogManager log;
  constexpr int kThreads = 8, kPer = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPer; ++i) {
        log.Append(UpdateRec(1, 1, "", "x"));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.last_lsn(), static_cast<Lsn>(kThreads * kPer));
  auto all = log.ReadAll();
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].lsn, i + 1);
}

TEST(LogFileTest, AttachLoadsPersistedRecords) {
  std::string path = ::testing::TempDir() + "/asset_wal_attach.wal";
  std::remove(path.c_str());
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    log.Append(UpdateRec(1, 5, "a", "b"));
    log.Append(UpdateRec(1, 5, "b", "c"));
    ASSERT_TRUE(log.Flush().ok());
    log.Append(UpdateRec(1, 5, "c", "d"));  // never flushed
  }
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    EXPECT_EQ(log.last_lsn(), 2u);  // the unflushed tail died
    EXPECT_EQ(log.durable_lsn(), 2u);
    EXPECT_EQ(log.At(2).after, (std::vector<uint8_t>{'c'}));
    // Appending continues where the previous process stopped.
    EXPECT_EQ(log.Append(UpdateRec(2, 5, "c", "e")), 3u);
    ASSERT_TRUE(log.Flush().ok());
  }
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    EXPECT_EQ(log.last_lsn(), 3u);
  }
  std::remove(path.c_str());
}

TEST(LogFileTest, TornTailIsTruncatedOnAttach) {
  std::string path = ::testing::TempDir() + "/asset_wal_torn.wal";
  std::remove(path.c_str());
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    log.Append(UpdateRec(1, 5, "a", "b"));
    log.Append(UpdateRec(1, 5, "b", "c"));
    ASSERT_TRUE(log.Flush().ok());
  }
  // Tear the file mid-record, as a crash during pwrite would.
  {
    FILE* f = fopen(path.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    ASSERT_EQ(ftruncate(fileno(f), size - 3), 0);
    fclose(f);
  }
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path).ok());
  EXPECT_EQ(log.last_lsn(), 1u);  // only the first record survived
  EXPECT_EQ(log.At(1).after, (std::vector<uint8_t>{'b'}));
  std::remove(path.c_str());
}

TEST(LogFileTest, AttachAfterAppendIsRejected) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "x"));
  EXPECT_TRUE(log.AttachFile("/tmp/whatever.wal").IsIllegalState());
}

TEST(LogManagerTest, RequestFlushAdvancesDurableAsynchronously) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  Lsn lsn = log.Append(UpdateRec(1, 1, "a", "b"));
  log.RequestFlush(lsn);  // nudge only — no wait
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (log.durable_lsn() < lsn &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(log.durable_lsn(), lsn);
}

TEST(LogManagerTest, SimulateCrashNeverStrandsDurabilityWaiters) {
  // A crash can land between a waiter publishing its target and the
  // flusher picking it up; the truncation then discards the waiter's
  // lsn, which can never become durable. The waiter must wake with an
  // error, not sleep forever.
  for (int round = 0; round < 50; ++round) {
    LogManager log;
    log.Append(UpdateRec(1, 1, "", "a"));
    ASSERT_TRUE(log.Flush().ok());
    Lsn tail = log.Append(UpdateRec(1, 1, "a", "b"));
    Status got;
    std::thread waiter([&] { got = log.Flush(tail); });
    log.SimulateCrash();
    waiter.join();
    if (got.ok()) {
      // The flusher won the race: the record landed before the crash.
      EXPECT_EQ(log.durable_lsn(), tail);
    } else {
      // IllegalState when the crash discarded the target mid-wait;
      // InvalidArgument when the truncation happened before the waiter
      // even entered Flush (the target is now beyond the end of the
      // log). Both are prompt errors — the point is no eternal sleep.
      EXPECT_TRUE(got.IsIllegalState() ||
                  got.code() == StatusCode::kInvalidArgument)
          << got.ToString();
      EXPECT_LT(log.last_lsn(), tail);
    }
  }
}

TEST(LogManagerTest, WaitDurableHonorsTheExactBoundary) {
  LogManager log;
  Lsn l1 = log.Append(UpdateRec(1, 1, "", "a"));
  log.Append(UpdateRec(1, 1, "a", "b"));
  ASSERT_TRUE(log.WaitDurable(l1).ok());
  // Exactly l1: the tail beyond the requested boundary stays volatile.
  EXPECT_EQ(log.durable_lsn(), l1);
  EXPECT_FALSE(log.WaitDurable(99).ok());  // beyond the end of the log
}

TEST(LogFileTest, FlushErrorSurfacesToWaitersAndSticks) {
  std::string path = ::testing::TempDir() + "/asset_wal_ioerr.wal";
  std::remove(path.c_str());
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path).ok());
  Lsn lsn = log.Append(UpdateRec(1, 1, "a", "b"));
  log.InjectFlushErrorForTest(Status::IOError("injected device failure"));
  Status s = log.Flush(lsn);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(log.durable_lsn(), 0u);  // the boundary must not advance
  // The failure is sticky: every later durability wait reports it too.
  EXPECT_EQ(log.Flush().code(), StatusCode::kIOError);
  // A crash keeps only the durable prefix — nothing here.
  log.SimulateCrash();
  EXPECT_EQ(log.last_lsn(), 0u);
  std::remove(path.c_str());
}

TEST(LogFileTest, RequestFlushSurfacesTheStickyError) {
  std::string path = ::testing::TempDir() + "/asset_wal_reqerr.wal";
  std::remove(path.c_str());
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path).ok());
  Lsn ok_lsn = log.Append(UpdateRec(1, 1, "", "a"));
  ASSERT_TRUE(log.Flush(ok_lsn).ok());
  Lsn lost = log.Append(UpdateRec(1, 1, "a", "b"));
  log.InjectFlushErrorForTest(Status::IOError("injected device failure"));
  EXPECT_EQ(log.Flush(lost).code(), StatusCode::kIOError);
  // The no-wait nudge reports the same sticky failure: a relaxed-mode
  // commit ack must not read as OK when nothing can ever become durable
  // again.
  EXPECT_EQ(log.RequestFlush(lost).code(), StatusCode::kIOError);
  Lsn more = log.Append(UpdateRec(1, 1, "b", "c"));
  EXPECT_EQ(log.RequestFlush(more).code(), StatusCode::kIOError);
  // An already-durable target is still an honest OK.
  EXPECT_TRUE(log.RequestFlush(ok_lsn).ok());
  std::remove(path.c_str());
}

TEST(LogFileTest, SynchronousModeFlushesOnTheCallingThread) {
  std::string path = ::testing::TempDir() + "/asset_wal_syncmode.wal";
  std::remove(path.c_str());
  {
    LogManager log(LogManager::FlushMode::kSynchronous);
    ASSERT_TRUE(log.AttachFile(path).ok());
    std::set<std::thread::id> fsync_threads;
    log.SetFsyncHookForTest(
        [&] { fsync_threads.insert(std::this_thread::get_id()); });
    log.Append(UpdateRec(1, 5, "a", "b"));
    Lsn lsn = log.Append(UpdateRec(1, 5, "b", "c"));
    ASSERT_TRUE(log.Flush(lsn).ok());
    EXPECT_EQ(fsync_threads,
              std::set<std::thread::id>{std::this_thread::get_id()});
  }
  // The synchronous mode writes the same on-disk format.
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path).ok());
  EXPECT_EQ(log.durable_lsn(), 2u);
  EXPECT_EQ(log.At(2).after, (std::vector<uint8_t>{'c'}));
  std::remove(path.c_str());
}

TEST(LogFileTest, GroupedFsyncsRunOnlyOnTheFlusherThread) {
  std::string path = ::testing::TempDir() + "/asset_wal_flusher.wal";
  std::remove(path.c_str());
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path).ok());
  std::mutex mu;
  std::set<std::thread::id> fsync_threads;
  log.SetFsyncHookForTest([&] {
    std::lock_guard<std::mutex> g(mu);
    fsync_threads.insert(std::this_thread::get_id());
  });
  constexpr int kThreads = 8, kPer = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPer; ++i) {
        Lsn lsn = log.Append(UpdateRec(t + 1, 1, "", "x"));
        ASSERT_TRUE(log.WaitDurable(lsn).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.durable_lsn(), static_cast<Lsn>(kThreads * kPer));
  // Every fsync was issued by the dedicated flusher — never a waiter.
  std::lock_guard<std::mutex> g(mu);
  ASSERT_EQ(fsync_threads.size(), 1u);
  EXPECT_EQ(*fsync_threads.begin(), log.flusher_thread_id_for_test());
  std::remove(path.c_str());
}

TEST(LogFileTest, CheckpointLsnRestoredFromFile) {
  std::string path = ::testing::TempDir() + "/asset_wal_cp.wal";
  std::remove(path.c_str());
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    log.Append(UpdateRec(1, 1, "", "x"));
    LogRecord cp;
    cp.type = LogRecordType::kCheckpoint;
    log.Append(std::move(cp));
    ASSERT_TRUE(log.Flush().ok());
  }
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path).ok());
  EXPECT_EQ(log.last_checkpoint_lsn(), 2u);
  std::remove(path.c_str());
}

// --- Durability-pipeline tests through the full database stack ----------

// A crash can land between two group commits: the first group's commit
// records made it to the durable prefix, the second group's did not.
// Recovery must commit exactly the durable groups. force_log_at_commit
// is off so this test controls the durable boundary by hand.
TEST(WalPipelineTest, CrashMidGroupCommitRecoversExactlyTheDurableGroups) {
  Database::Options opts;
  opts.txn.force_log_at_commit = false;
  auto open = Database::Open(opts);
  ASSERT_TRUE(open.ok());
  auto db = std::move(*open);

  ObjectId obj[4];
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    for (ObjectId& o : obj) {
      auto created = txn->Create<int>(0);
      ASSERT_TRUE(created.ok());
      o = *created;
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  ASSERT_TRUE(db->SyncWal().ok());  // the baseline must survive the crash

  TransactionManager& tm = KernelOf(*db);
  Database* dbp = db.get();
  auto commit_pair_group = [&](ObjectId a, ObjectId b) {
    Tid t1 = tm.Initiate([dbp, a] { (void)dbp->Put<int>(a, 1); });
    Tid t2 = tm.Initiate([dbp, b] { (void)dbp->Put<int>(b, 1); });
    EXPECT_TRUE(tm.FormDependency(DependencyType::kGroupCommit, t1, t2).ok());
    EXPECT_TRUE(tm.Begin(t1));
    EXPECT_TRUE(tm.Begin(t2));
    EXPECT_TRUE(tm.Commit(t1));  // commits the whole group
  };

  commit_pair_group(obj[0], obj[1]);
  Lsn first_group_end = LogOf(*db).last_lsn();
  commit_pair_group(obj[2], obj[3]);

  // Only the first group's records reach the durable prefix; the
  // second group's commit records die with the crash.
  ASSERT_TRUE(LogOf(*db).Flush(first_group_end).ok());
  ASSERT_TRUE(db->CrashAndRecover().ok());

  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(*txn->Get<int>(obj[0]), 1);  // durable group: committed
  EXPECT_EQ(*txn->Get<int>(obj[1]), 1);
  EXPECT_EQ(*txn->Get<int>(obj[2]), 0);  // lost group: rolled back
  EXPECT_EQ(*txn->Get<int>(obj[3]), 0);
  ASSERT_TRUE(txn->Commit().ok());
}

// N concurrent strict-durability committers must produce fewer than N
// fsyncs (the flusher batches their commit records), and every fsync
// must run on the flusher thread — a thread that never touches the
// kernel mutex, which is the "no fsync under the kernel mutex"
// guarantee in executable form.
TEST(WalPipelineTest, ConcurrentCommittersBatchOntoFewerFsyncs) {
  std::string path = ::testing::TempDir() + "/asset_wal_batch_db.data";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  Database::Options opts;
  opts.path = path;  // file-backed: fsyncs are real
  auto open = Database::Open(opts);
  ASSERT_TRUE(open.ok());
  auto db = std::move(*open);

  std::mutex mu;
  std::set<std::thread::id> fsync_threads;
  LogOf(*db).SetFsyncHookForTest([&] {
    std::lock_guard<std::mutex> g(mu);
    fsync_threads.insert(std::this_thread::get_id());
  });

  auto before = KernelOf(*db).stats().snapshot();
  constexpr int kThreads = 8, kPer = 25;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &committed] {
      for (int i = 0; i < kPer; ++i) {
        auto txn = db->Begin();
        ASSERT_TRUE(txn.ok());
        ASSERT_TRUE(txn->Create<int>(i).ok());
        if (txn->Commit().ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  auto after = KernelOf(*db).stats().snapshot();

  const uint64_t commits = after.txns_committed - before.txns_committed;
  const uint64_t fsyncs = after.wal_fsyncs - before.wal_fsyncs;
  EXPECT_EQ(committed.load(), kThreads * kPer);
  EXPECT_EQ(commits, static_cast<uint64_t>(kThreads * kPer));
  ASSERT_GT(fsyncs, 0u);
  // The batching win: strictly fewer fsyncs than commits.
  EXPECT_LT(fsyncs, commits);
  // Every commit was acked durable (strict policy, default).
  EXPECT_GE(LogOf(*db).durable_lsn(), static_cast<Lsn>(kThreads * kPer));

  {
    std::lock_guard<std::mutex> g(mu);
    ASSERT_EQ(fsync_threads.size(), 1u);
    EXPECT_EQ(*fsync_threads.begin(), LogOf(*db).flusher_thread_id_for_test());
  }
  LogOf(*db).SetFsyncHookForTest(nullptr);
  db.reset();
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// A dirty page can reach the device (eviction under memory pressure,
// FlushPage, FlushAll) while the transaction that dirtied it is still
// running. Write-ahead for creates: the kCreate record must be forced
// into the durable prefix before the page image carrying the new object
// is stolen — otherwise a crash resurrects the uncommitted object with
// no durable log record to undo it.
TEST(WalPipelineTest, StolenPageNeverOutrunsTheCreateRecord) {
  auto open = Database::Open();
  ASSERT_TRUE(open.ok());
  auto db = std::move(*open);

  auto tid = KernelOf(*db).BeginSession();
  ASSERT_TRUE(tid.ok());
  auto created = KernelOf(*db).CreateObject(*tid, Database::Encode<int>(7));
  ASSERT_TRUE(created.ok());
  ObjectId oid = *created;

  // Steal every dirty page while the creator is still uncommitted. The
  // page_lsn watermark must cover the kCreate record, so this force
  // makes it durable before the page image lands.
  ASSERT_TRUE(PoolOf(*db).FlushAll().ok());
  EXPECT_TRUE(StoreOf(*db).Exists(oid));

  // Crash with the creator unterminated. The device holds the page
  // image with the object; recovery must roll the create back.
  ASSERT_TRUE(db->CrashAndRecover().ok());
  EXPECT_FALSE(StoreOf(*db).Exists(oid));
}

// Under relaxed durability the commit ack does not wait for the fsync —
// but once the WAL has a sticky I/O failure, acks must fail rather than
// report OK forever while nothing can become durable.
TEST(WalPipelineTest, RelaxedCommitAcksFailAfterTheWalGoesBad) {
  Database::Options opts;
  opts.txn.durability = DurabilityPolicy::kRelaxed;
  auto open = Database::Open(opts);
  ASSERT_TRUE(open.ok());
  auto db = std::move(*open);

  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn->Create<int>(1).ok());
    ASSERT_TRUE(txn->Commit().ok());  // healthy: the no-wait ack is OK
  }
  LogOf(*db).InjectFlushErrorForTest(Status::IOError("injected device failure"));
  // The injection fires on the next flush the flusher actually runs; at
  // this point everything is already durable, so push fresh records
  // through a failing flush to make the error stick. This commit's own
  // no-wait ack races the flusher (it may return OK before the error
  // lands), so no assertion on it.
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn->Create<int>(2).ok());
    (void)txn->Commit();
  }
  EXPECT_EQ(db->SyncWal().code(), StatusCode::kIOError);  // failure sticks
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(txn->Create<int>(3).ok());
    EXPECT_EQ(txn->Commit().code(), StatusCode::kIOError);
  }
}

// --- Fuzzy-checkpoint image codec and prefix truncation ------------------

TEST(FuzzyCheckpointImageTest, EncodeDecodeRoundTrip) {
  FuzzyCheckpointImage img;
  img.begin_lsn = 42;
  img.min_recovery_lsn = 7;
  img.active = {{3, {7, 9, 11}}, {5, {}}};
  img.dirty_pages = {{0, 7}, {4, kNullLsn}};
  auto back = FuzzyCheckpointImage::Decode(img.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->begin_lsn, 42u);
  EXPECT_EQ(back->min_recovery_lsn, 7u);
  ASSERT_EQ(back->active.size(), 2u);
  EXPECT_EQ(back->active[0].tid, 3u);
  EXPECT_EQ(back->active[0].ops, (std::vector<Lsn>{7, 9, 11}));
  EXPECT_EQ(back->active[1].tid, 5u);
  EXPECT_TRUE(back->active[1].ops.empty());
  EXPECT_EQ(back->dirty_pages,
            (std::vector<std::pair<PageId, Lsn>>{{0, 7}, {4, kNullLsn}}));
}

TEST(FuzzyCheckpointImageTest, DecodeTruncatedIsCorruption) {
  FuzzyCheckpointImage img;
  img.begin_lsn = 1;
  img.min_recovery_lsn = 1;
  img.active = {{3, {1}}};
  auto bytes = img.Encode();
  bytes.resize(bytes.size() - 3);
  EXPECT_EQ(FuzzyCheckpointImage::Decode(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(LogManagerTest, TruncatePrefixWithoutCheckpointIsANoOp) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  ASSERT_TRUE(log.Flush().ok());
  auto dropped = log.TruncatePrefix();
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 0u);  // nothing provably redundant yet
  EXPECT_EQ(log.size(), 1u);
}

TEST(LogManagerTest, TruncatePrefixDropsOnlyTheDurableRedundantPrefix) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  log.Append(UpdateRec(1, 1, "a", "b"));
  LogRecord cp;
  cp.type = LogRecordType::kCheckpoint;
  Lsn cp_lsn = log.Append(std::move(cp));
  log.Append(UpdateRec(2, 1, "b", "c"));
  ASSERT_TRUE(log.Flush().ok());
  auto dropped = log.TruncatePrefix();
  ASSERT_TRUE(dropped.ok());
  // A quiescent checkpoint's watermark is its own lsn: both earlier
  // updates go; the checkpoint record and the tail stay, lsns intact.
  EXPECT_EQ(*dropped, 2u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.ReadAll().front().lsn, cp_lsn);
  EXPECT_EQ(log.At(4).after, (std::vector<uint8_t>{'c'}));
  EXPECT_EQ(log.last_lsn(), 4u);
  // Appends keep numbering densely past the truncation.
  EXPECT_EQ(log.Append(UpdateRec(2, 1, "c", "d")), 5u);
}

TEST(LogManagerTest, SimulateCrashAfterTruncationKeepsDurablePrefix) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  LogRecord cp;
  cp.type = LogRecordType::kCheckpoint;
  log.Append(std::move(cp));
  ASSERT_TRUE(log.Flush().ok());
  ASSERT_TRUE(log.TruncatePrefix().ok());
  log.Append(UpdateRec(2, 1, "a", "b"));  // volatile tail
  log.SimulateCrash();
  EXPECT_EQ(log.last_lsn(), 2u);  // tail gone, truncated prefix stable
  EXPECT_EQ(log.ReadAll().size(), 1u);
  EXPECT_EQ(log.ReadAll().front().type, LogRecordType::kCheckpoint);
}

TEST(LogManagerTest, TruncateRefusedOnStickyIoError) {
  LogManager log(LogManager::FlushMode::kSynchronous);
  log.Append(UpdateRec(1, 1, "", "a"));
  LogRecord cp;
  cp.type = LogRecordType::kCheckpoint;
  log.Append(std::move(cp));
  ASSERT_TRUE(log.Flush().ok());
  log.InjectFlushErrorForTest(Status::IOError("injected"));
  log.Append(UpdateRec(1, 1, "a", "b"));
  ASSERT_FALSE(log.Flush().ok());  // the error sticks
  EXPECT_EQ(log.TruncatePrefix().status().code(), StatusCode::kIllegalState);
}

TEST(LogFileTest, TruncatedFileReattachesWithOriginalLsns) {
  std::string path = ::testing::TempDir() + "/asset_wal_trunc.wal";
  std::remove(path.c_str());
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    log.Append(UpdateRec(1, 1, "", "a"));
    log.Append(UpdateRec(1, 1, "a", "b"));
    LogRecord cp;
    cp.type = LogRecordType::kCheckpoint;
    log.Append(std::move(cp));
    log.Append(UpdateRec(2, 1, "b", "c"));
    ASSERT_TRUE(log.Flush().ok());
    auto dropped = log.TruncatePrefix();
    ASSERT_TRUE(dropped.ok());
    EXPECT_EQ(*dropped, 2u);
    // The shortened log keeps working: append + flush past the rewrite.
    log.Append(UpdateRec(2, 1, "c", "d"));
    ASSERT_TRUE(log.Flush().ok());
  }
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path).ok());
  // The dropped-prefix length is re-derived from the first frame's lsn.
  EXPECT_EQ(log.ReadAll().front().lsn, 3u);
  EXPECT_EQ(log.last_lsn(), 5u);
  EXPECT_EQ(log.last_checkpoint_lsn(), 3u);
  EXPECT_EQ(log.checkpoint_min_recovery_lsn(), 3u);
  EXPECT_EQ(log.At(5).after, (std::vector<uint8_t>{'d'}));
  std::remove(path.c_str());
}

TEST(LogManagerTest, AppendedBytesGrowsAndSurvivesTruncation) {
  LogManager log;
  uint64_t b0 = log.appended_bytes();
  log.Append(UpdateRec(1, 1, "", "aaaa"));
  uint64_t b1 = log.appended_bytes();
  EXPECT_GT(b1, b0);
  LogRecord cp;
  cp.type = LogRecordType::kCheckpoint;
  log.Append(std::move(cp));
  ASSERT_TRUE(log.Flush().ok());
  uint64_t b2 = log.appended_bytes();
  ASSERT_TRUE(log.TruncatePrefix().ok());
  EXPECT_GE(log.appended_bytes(), b2);  // monotonic: a trigger baseline
}

TEST(LogManagerTest, WaitAppliedThroughDrainsApplyGuards) {
  LogManager log;
  // No guards: drains immediately.
  EXPECT_TRUE(
      log.WaitAppliedThrough(10, std::chrono::milliseconds(10)).ok());
  auto guard = std::make_unique<LogManager::ApplyGuard>(&log);
  Lsn lsn = log.Append(UpdateRec(1, 1, "", "a"));
  EXPECT_EQ(log.OldestApplying(), lsn);  // registered before the append
  // The guard holds an in-flight apply at or below the cut: times out.
  EXPECT_EQ(log.WaitAppliedThrough(lsn, std::chrono::milliseconds(20)).code(),
            StatusCode::kTimedOut);
  // A later cut is not blocked by it... once released, everything is.
  std::thread releaser([&guard] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    guard.reset();
  });
  EXPECT_TRUE(
      log.WaitAppliedThrough(lsn, std::chrono::milliseconds(2000)).ok());
  releaser.join();
  EXPECT_EQ(log.OldestApplying(), kNullLsn);
}

}  // namespace
}  // namespace asset
