// Tests for the write-ahead log: record encode/decode, durability
// boundary, crash simulation, checkpoint tracking, and torn-tail
// handling.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "storage/wal.h"

namespace asset {
namespace {

LogRecord UpdateRec(Tid tid, ObjectId oid, std::string before,
                    std::string after) {
  LogRecord r;
  r.type = LogRecordType::kUpdate;
  r.tid = tid;
  r.oid = oid;
  r.before.assign(before.begin(), before.end());
  r.after.assign(after.begin(), after.end());
  return r;
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  LogRecord r = UpdateRec(3, 14, "old", "new");
  r.lsn = 9;
  r.undo_of = 4;
  r.other_tid = 5;
  r.oid_set = {1, 2, 3};
  std::vector<uint8_t> buf;
  r.EncodeTo(&buf);
  size_t off = 0;
  auto back = LogRecord::DecodeFrom(buf, &off);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(off, buf.size());
  EXPECT_EQ(back->lsn, 9u);
  EXPECT_EQ(back->type, LogRecordType::kUpdate);
  EXPECT_EQ(back->tid, 3u);
  EXPECT_EQ(back->other_tid, 5u);
  EXPECT_EQ(back->oid, 14u);
  EXPECT_EQ(back->undo_of, 4u);
  EXPECT_EQ(back->before, (std::vector<uint8_t>{'o', 'l', 'd'}));
  EXPECT_EQ(back->after, (std::vector<uint8_t>{'n', 'e', 'w'}));
  EXPECT_EQ(back->oid_set, (std::vector<ObjectId>{1, 2, 3}));
}

TEST(LogRecordTest, DecodeEmptyIsCleanEnd) {
  std::vector<uint8_t> empty;
  size_t off = 0;
  EXPECT_TRUE(LogRecord::DecodeFrom(empty, &off).status().IsNotFound());
}

TEST(LogRecordTest, DecodeTornFrameIsCorruption) {
  LogRecord r = UpdateRec(1, 2, "abc", "def");
  std::vector<uint8_t> buf;
  r.EncodeTo(&buf);
  buf.resize(buf.size() - 2);  // torn tail
  size_t off = 0;
  EXPECT_EQ(LogRecord::DecodeFrom(buf, &off).status().code(),
            StatusCode::kCorruption);
}

TEST(LogRecordTest, DecodeBitflipIsCorruption) {
  LogRecord r = UpdateRec(1, 2, "abc", "def");
  std::vector<uint8_t> buf;
  r.EncodeTo(&buf);
  buf[buf.size() / 2] ^= 0x40;
  size_t off = 0;
  EXPECT_EQ(LogRecord::DecodeFrom(buf, &off).status().code(),
            StatusCode::kCorruption);
}

TEST(LogManagerTest, AppendAssignsDenseLsns) {
  LogManager log;
  EXPECT_EQ(log.Append(UpdateRec(1, 1, "", "a")), 1u);
  EXPECT_EQ(log.Append(UpdateRec(1, 1, "a", "b")), 2u);
  EXPECT_EQ(log.last_lsn(), 2u);
  EXPECT_EQ(log.At(2).after, (std::vector<uint8_t>{'b'}));
}

TEST(LogManagerTest, FlushAdvancesDurableBoundary) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  log.Append(UpdateRec(1, 1, "a", "b"));
  EXPECT_EQ(log.durable_lsn(), 0u);
  ASSERT_TRUE(log.Flush(1).ok());
  EXPECT_EQ(log.durable_lsn(), 1u);
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_EQ(log.durable_lsn(), 2u);
  EXPECT_FALSE(log.Flush(99).ok());
}

TEST(LogManagerTest, SimulateCrashDropsNonDurableTail) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  log.Flush();
  log.Append(UpdateRec(1, 1, "a", "b"));
  log.Append(UpdateRec(1, 1, "b", "c"));
  log.SimulateCrash();
  EXPECT_EQ(log.last_lsn(), 1u);
  EXPECT_EQ(log.ReadAll().size(), 1u);
}

TEST(LogManagerTest, ReadDurableExcludesTail) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  log.Flush();
  log.Append(UpdateRec(1, 1, "a", "b"));
  EXPECT_EQ(log.ReadDurable().size(), 1u);
  EXPECT_EQ(log.ReadAll().size(), 2u);
}

TEST(LogManagerTest, CheckpointLsnTracksDurableCheckpoints) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "a"));
  LogRecord cp;
  cp.type = LogRecordType::kCheckpoint;
  log.Append(std::move(cp));
  EXPECT_EQ(log.last_checkpoint_lsn(), 0u);  // not durable yet
  log.Flush();
  EXPECT_EQ(log.last_checkpoint_lsn(), 2u);
}

TEST(LogManagerTest, SerializeDeserializeDurable) {
  LogManager log;
  for (int i = 0; i < 10; ++i) {
    log.Append(UpdateRec(i, i * 10, "b" + std::to_string(i),
                         "a" + std::to_string(i)));
  }
  log.Flush(7);
  auto bytes = log.SerializeDurable();
  auto records = LogManager::Deserialize(bytes);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ((*records)[i].lsn, i + 1);
    EXPECT_EQ((*records)[i].oid, i * 10);
  }
}

TEST(LogManagerTest, DeserializeRejectsCorruptStream) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "x", "y"));
  log.Flush();
  auto bytes = log.SerializeDurable();
  bytes[bytes.size() / 2] ^= 1;
  EXPECT_FALSE(LogManager::Deserialize(bytes).ok());
}

TEST(LogManagerTest, ConcurrentAppendsKeepDenseLsns) {
  LogManager log;
  constexpr int kThreads = 8, kPer = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPer; ++i) {
        log.Append(UpdateRec(1, 1, "", "x"));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(log.last_lsn(), static_cast<Lsn>(kThreads * kPer));
  auto all = log.ReadAll();
  for (size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].lsn, i + 1);
}

TEST(LogFileTest, AttachLoadsPersistedRecords) {
  std::string path = ::testing::TempDir() + "/asset_wal_attach.wal";
  std::remove(path.c_str());
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    log.Append(UpdateRec(1, 5, "a", "b"));
    log.Append(UpdateRec(1, 5, "b", "c"));
    ASSERT_TRUE(log.Flush().ok());
    log.Append(UpdateRec(1, 5, "c", "d"));  // never flushed
  }
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    EXPECT_EQ(log.last_lsn(), 2u);  // the unflushed tail died
    EXPECT_EQ(log.durable_lsn(), 2u);
    EXPECT_EQ(log.At(2).after, (std::vector<uint8_t>{'c'}));
    // Appending continues where the previous process stopped.
    EXPECT_EQ(log.Append(UpdateRec(2, 5, "c", "e")), 3u);
    ASSERT_TRUE(log.Flush().ok());
  }
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    EXPECT_EQ(log.last_lsn(), 3u);
  }
  std::remove(path.c_str());
}

TEST(LogFileTest, TornTailIsTruncatedOnAttach) {
  std::string path = ::testing::TempDir() + "/asset_wal_torn.wal";
  std::remove(path.c_str());
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    log.Append(UpdateRec(1, 5, "a", "b"));
    log.Append(UpdateRec(1, 5, "b", "c"));
    ASSERT_TRUE(log.Flush().ok());
  }
  // Tear the file mid-record, as a crash during pwrite would.
  {
    FILE* f = fopen(path.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    long size = ftell(f);
    ASSERT_EQ(ftruncate(fileno(f), size - 3), 0);
    fclose(f);
  }
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path).ok());
  EXPECT_EQ(log.last_lsn(), 1u);  // only the first record survived
  EXPECT_EQ(log.At(1).after, (std::vector<uint8_t>{'b'}));
  std::remove(path.c_str());
}

TEST(LogFileTest, AttachAfterAppendIsRejected) {
  LogManager log;
  log.Append(UpdateRec(1, 1, "", "x"));
  EXPECT_TRUE(log.AttachFile("/tmp/whatever.wal").IsIllegalState());
}

TEST(LogFileTest, CheckpointLsnRestoredFromFile) {
  std::string path = ::testing::TempDir() + "/asset_wal_cp.wal";
  std::remove(path.c_str());
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path).ok());
    log.Append(UpdateRec(1, 1, "", "x"));
    LogRecord cp;
    cp.type = LogRecordType::kCheckpoint;
    log.Append(std::move(cp));
    ASSERT_TRUE(log.Flush().ok());
  }
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path).ok());
  EXPECT_EQ(log.last_checkpoint_lsn(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace asset
