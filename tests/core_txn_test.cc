// Transaction lifecycle tests: initiate/begin/commit/wait/abort, the
// completed-vs-committed distinction, self/parent, status queries, data
// operations, and undo on abort.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "kernel_fixture.h"

namespace asset {
namespace {

using namespace std::chrono_literals;

class TxnLifecycleTest : public KernelFixture {};

TEST_F(TxnLifecycleTest, InitiateDoesNotStartExecution) {
  std::atomic<bool> ran{false};
  Tid t = tm_->Initiate([&] { ran = true; });
  ASSERT_NE(t, kNullTid);
  EXPECT_EQ(tm_->GetStatus(t), TxnStatus::kInitiated);
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(ran.load());  // §2.1: execution starts only at begin
  EXPECT_TRUE(tm_->Begin(t));
  EXPECT_TRUE(tm_->Commit(t));
  EXPECT_TRUE(ran.load());
}

TEST_F(TxnLifecycleTest, BeginTwiceFails) {
  Tid t = tm_->Initiate([] {});
  EXPECT_TRUE(tm_->Begin(t));
  EXPECT_FALSE(tm_->Begin(t));
  tm_->Commit(t);
}

TEST_F(TxnLifecycleTest, BeginUnknownTidFails) {
  EXPECT_FALSE(tm_->Begin(99999));
}

TEST_F(TxnLifecycleTest, BeginManyStartsAll) {
  std::atomic<int> ran{0};
  Tid a = tm_->Initiate([&] { ran++; });
  Tid b = tm_->Initiate([&] { ran++; });
  Tid c = tm_->Initiate([&] { ran++; });
  EXPECT_TRUE(tm_->Begin({a, b, c}));
  EXPECT_TRUE(tm_->Commit(a));
  EXPECT_TRUE(tm_->Commit(b));
  EXPECT_TRUE(tm_->Commit(c));
  EXPECT_EQ(ran.load(), 3);
}

TEST_F(TxnLifecycleTest, CommitBlocksUntilCompletion) {
  std::atomic<bool> finished{false};
  Tid t = tm_->Initiate([&] {
    std::this_thread::sleep_for(100ms);
    finished = true;
  });
  tm_->Begin(t);
  EXPECT_TRUE(tm_->Commit(t));  // must wait for the sleep
  EXPECT_TRUE(finished.load());
  EXPECT_EQ(tm_->GetStatus(t), TxnStatus::kCommitted);
}

TEST_F(TxnLifecycleTest, CommitOfCommittedReturnsTrue) {
  Tid t = tm_->Initiate([] {});
  tm_->Begin(t);
  EXPECT_TRUE(tm_->Commit(t));
  EXPECT_TRUE(tm_->Commit(t));
}

TEST_F(TxnLifecycleTest, CommitOfAbortedReturnsFalse) {
  Tid t = tm_->Initiate([] {});
  tm_->Begin(t);
  ASSERT_EQ(tm_->Wait(t), 1);
  EXPECT_TRUE(tm_->Abort(t));
  EXPECT_FALSE(tm_->Commit(t));
}

TEST_F(TxnLifecycleTest, AbortOfCommittedFails) {
  Tid t = tm_->Initiate([] {});
  tm_->Begin(t);
  EXPECT_TRUE(tm_->Commit(t));
  EXPECT_FALSE(tm_->Abort(t));  // paper: abort returns 0 if committed
}

TEST_F(TxnLifecycleTest, AbortOfAbortedSucceeds) {
  Tid t = tm_->Initiate([] {});
  EXPECT_TRUE(tm_->Abort(t));
  EXPECT_TRUE(tm_->Abort(t));
  EXPECT_EQ(tm_->GetStatus(t), TxnStatus::kAborted);
}

TEST_F(TxnLifecycleTest, WaitReturnsOneOnCompletion) {
  Tid t = tm_->Initiate([] { std::this_thread::sleep_for(50ms); });
  tm_->Begin(t);
  EXPECT_EQ(tm_->Wait(t), 1);
  // Completed but NOT committed: commit is explicit (§2.1).
  EXPECT_EQ(tm_->GetStatus(t), TxnStatus::kCompleted);
  EXPECT_TRUE(tm_->Commit(t));
}

TEST_F(TxnLifecycleTest, WaitReturnsZeroOnAbort) {
  Tid t = tm_->Initiate([] {});
  tm_->Begin(t);
  tm_->Wait(t);
  tm_->Abort(t);
  EXPECT_EQ(tm_->Wait(t), 0);
}

TEST_F(TxnLifecycleTest, SelfAndParentInsideTransactions) {
  Tid observed_self = kNullTid;
  Tid observed_parent = kNullTid;
  Tid child_tid = kNullTid;
  Tid child_parent = kNullTid;
  Tid t = tm_->Initiate([&] {
    observed_self = TransactionManager::Self();
    observed_parent = TransactionManager::Parent();
    // A transaction initiated from inside another has that parent.
    child_tid = tm_->Initiate([&] {
      child_parent = TransactionManager::Parent();
    });
    tm_->Begin(child_tid);
    tm_->Wait(child_tid);
  });
  tm_->Begin(t);
  ASSERT_TRUE(tm_->Commit(t));
  tm_->Commit(child_tid);
  EXPECT_EQ(observed_self, t);
  EXPECT_EQ(observed_parent, kNullTid);  // top-level: null tid
  EXPECT_EQ(child_parent, t);
  EXPECT_EQ(tm_->ParentOf(child_tid), t);
}

TEST_F(TxnLifecycleTest, SelfOutsideTransactionIsNull) {
  EXPECT_EQ(TransactionManager::Self(), kNullTid);
  EXPECT_EQ(TransactionManager::Parent(), kNullTid);
}

TEST_F(TxnLifecycleTest, CreateReadWriteRoundTrip) {
  ObjectId oid = MakeObject("initial");
  EXPECT_EQ(ReadCommitted(oid), "initial");
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Write(self, oid, TestBytes("updated")).ok());
    auto v = tm_->Read(self, oid);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(TestStr(*v), "updated");  // reads own write
  });
  tm_->Begin(t);
  ASSERT_TRUE(tm_->Commit(t));
  EXPECT_EQ(ReadCommitted(oid), "updated");
}

TEST_F(TxnLifecycleTest, AbortUndoesWrites) {
  ObjectId oid = MakeObject("original");
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Write(self, oid, TestBytes("doomed")).ok());
  });
  tm_->Begin(t);
  ASSERT_EQ(tm_->Wait(t), 1);
  ASSERT_TRUE(tm_->Abort(t));
  EXPECT_EQ(ReadCommitted(oid), "original");
}

TEST_F(TxnLifecycleTest, AbortUndoesCreates) {
  ObjectId created = kNullObjectId;
  Tid t = tm_->Initiate([&] {
    created = tm_->CreateObject(TransactionManager::Self(),
                                TestBytes("ephemeral"))
                  .value();
  });
  tm_->Begin(t);
  tm_->Wait(t);
  ASSERT_TRUE(tm_->Abort(t));
  EXPECT_EQ(ReadCommitted(created), "<missing>");
}

TEST_F(TxnLifecycleTest, AbortRestoresDeletes) {
  ObjectId oid = MakeObject("keepme");
  Tid t = tm_->Initiate([&] {
    ASSERT_TRUE(tm_->DeleteObject(TransactionManager::Self(), oid).ok());
  });
  tm_->Begin(t);
  tm_->Wait(t);
  ASSERT_TRUE(tm_->Abort(t));
  EXPECT_EQ(ReadCommitted(oid), "keepme");
}

TEST_F(TxnLifecycleTest, MultipleWritesUndoneToOriginal) {
  ObjectId oid = MakeObject("v0");
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE(
          tm_->Write(self, oid, TestBytes("v" + std::to_string(i))).ok());
    }
  });
  tm_->Begin(t);
  tm_->Wait(t);
  tm_->Abort(t);
  EXPECT_EQ(ReadCommitted(oid), "v0");
}

TEST_F(TxnLifecycleTest, AbortSelfInsideFunction) {
  ObjectId oid = MakeObject("safe");
  std::atomic<bool> write_after_abort_failed{false};
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Write(self, oid, TestBytes("dirty")).ok());
    tm_->Abort(self);
    // Operations after abort(self()) must fail.
    Status s = tm_->Write(self, oid, TestBytes("zombie"));
    write_after_abort_failed = s.IsTxnAborted();
  });
  tm_->Begin(t);
  EXPECT_FALSE(tm_->Commit(t));
  EXPECT_TRUE(write_after_abort_failed.load());
  EXPECT_EQ(ReadCommitted(oid), "safe");
}

TEST_F(TxnLifecycleTest, AbortOfRunningTransactionTakesEffect) {
  std::atomic<bool> keep_running{true};
  ObjectId oid = MakeObject("base");
  Tid t = tm_->Initiate([&] {
    Tid self = TransactionManager::Self();
    tm_->Write(self, oid, TestBytes("tainted")).ok();
    while (keep_running) {
      // Poll: a data op observes the abort mark.
      if (!tm_->Read(self, oid).ok()) return;
      std::this_thread::sleep_for(1ms);
    }
  });
  tm_->Begin(t);
  std::this_thread::sleep_for(30ms);
  std::thread aborter([&] { EXPECT_TRUE(tm_->Abort(t)); });
  aborter.join();
  keep_running = false;
  EXPECT_EQ(tm_->GetStatus(t), TxnStatus::kAborted);
  EXPECT_EQ(ReadCommitted(oid), "base");
}

TEST_F(TxnLifecycleTest, UserExceptionAbortsTransaction) {
  ObjectId oid = MakeObject("pristine");
  Tid t = tm_->Initiate([&] {
    tm_->Write(TransactionManager::Self(), oid, TestBytes("half")).ok();
    throw std::runtime_error("user bug");
  });
  tm_->Begin(t);
  EXPECT_FALSE(tm_->Commit(t));
  EXPECT_EQ(tm_->GetStatus(t), TxnStatus::kAborted);
  EXPECT_EQ(ReadCommitted(oid), "pristine");
}

TEST_F(TxnLifecycleTest, CommittedChangesReachTheLog) {
  ObjectId oid = MakeObject("x");
  Lsn before = log_.durable_lsn();
  Tid t = tm_->Initiate([&] {
    tm_->Write(TransactionManager::Self(), oid, TestBytes("y")).ok();
  });
  tm_->Begin(t);
  ASSERT_TRUE(tm_->Commit(t));
  EXPECT_GT(log_.durable_lsn(), before);  // commit forces the log
}

TEST_F(TxnLifecycleTest, StatusQueriesThroughLifecycle) {
  Tid t = tm_->Initiate([&] { std::this_thread::sleep_for(50ms); });
  EXPECT_EQ(tm_->GetStatus(t), TxnStatus::kInitiated);
  tm_->Begin(t);
  EXPECT_TRUE(tm_->GetStatus(t) == TxnStatus::kRunning ||
              tm_->GetStatus(t) == TxnStatus::kCompleted);
  tm_->Wait(t);
  EXPECT_EQ(tm_->GetStatus(t), TxnStatus::kCompleted);
  tm_->Commit(t);
  EXPECT_EQ(tm_->GetStatus(t), TxnStatus::kCommitted);
}

TEST_F(TxnLifecycleTest, MaxTransactionsBoundsInitiate) {
  // Build a tiny-capacity kernel.
  TransactionManager::Options o;
  o.max_transactions = 2;
  LogManager log;
  TransactionManager tiny(&log, &store_, o);
  Tid a = tiny.Initiate([] {});
  Tid b = tiny.Initiate([] {});
  EXPECT_NE(a, kNullTid);
  EXPECT_NE(b, kNullTid);
  EXPECT_EQ(tiny.Initiate([] {}), kNullTid);  // the paper's null tid
  tiny.Begin(a);
  tiny.Commit(a);
  tiny.Abort(b);
}

TEST_F(TxnLifecycleTest, ArgumentsAreBoundAtInitiate) {
  // initiate(f, args): arguments captured by value at initiation time.
  std::atomic<int> observed{0};
  int arg = 41;
  Tid t = tm_->Initiate([&observed](int v) { observed = v; }, arg + 1);
  arg = 0;  // must not affect the bound value
  tm_->Begin(t);
  tm_->Commit(t);
  EXPECT_EQ(observed.load(), 42);
}

TEST_F(TxnLifecycleTest, ActiveTransactionsCountsBegunOnly) {
  EXPECT_EQ(tm_->ActiveTransactions(), 0u);
  Tid t = tm_->Initiate([&] { std::this_thread::sleep_for(80ms); });
  EXPECT_EQ(tm_->ActiveTransactions(), 0u);  // initiated, not begun
  tm_->Begin(t);
  EXPECT_EQ(tm_->ActiveTransactions(), 1u);
  tm_->Commit(t);
  EXPECT_EQ(tm_->ActiveTransactions(), 0u);
  EXPECT_TRUE(tm_->WaitIdle(std::chrono::milliseconds(1000)));
}

TEST_F(TxnLifecycleTest, DestructorAbortsStragglers) {
  ObjectId oid = MakeObject("durable");
  {
    TransactionManager::Options o;
    LogManager log;
    TransactionManager scoped(&log, &store_, o);
    Tid t = scoped.Initiate([&] {
      scoped.Write(TransactionManager::Self(), oid, TestBytes("tmp")).ok();
    });
    scoped.Begin(t);
    scoped.Wait(t);
    // No commit: the destructor must abort and undo.
  }
  EXPECT_EQ(ReadCommitted(oid), "durable");
}

}  // namespace
}  // namespace asset
