// Nested-transaction model (§3.1.4): permit lets children see parent
// state, delegate hands results up, child aborts are contained or
// propagate per policy, durability only at top-level commit — including
// the paper's trip example.

#include <gtest/gtest.h>

#include <atomic>

#include "kernel_fixture.h"
#include "models/nested.h"

namespace asset {
namespace {

class NestedModelTest : public KernelFixture {};

TEST_F(NestedModelTest, RequiresEnclosingTransaction) {
  EXPECT_TRUE(
      models::RunSubtransaction(*tm_, [] {}).IsIllegalState());
}

TEST_F(NestedModelTest, ChildEffectsCommitWithParent) {
  ObjectId oid = MakeObject("0");
  bool ok = models::RunNestedRoot(*tm_, [&] {
    Status s = models::RunSubtransaction(*tm_, [&] {
      ASSERT_TRUE(
          tm_->Write(TransactionManager::Self(), oid, TestBytes("child"))
              .ok());
    });
    ASSERT_TRUE(s.ok());
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(ReadCommitted(oid), "child");
}

TEST_F(NestedModelTest, ChildEffectsDieIfParentAborts) {
  ObjectId oid = MakeObject("0");
  bool ok = models::RunNestedRoot(*tm_, [&] {
    ASSERT_TRUE(models::RunSubtransaction(*tm_, [&] {
                  tm_->Write(TransactionManager::Self(), oid,
                             TestBytes("child"))
                      .ok();
                }).ok());
    // Parent changes its mind after the child "committed".
    tm_->Abort(TransactionManager::Self());
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(ReadCommitted(oid), "0");  // child work undone with parent
}

TEST_F(NestedModelTest, ChildCanTouchParentLockedObjects) {
  ObjectId oid = MakeObject("0");
  bool ok = models::RunNestedRoot(*tm_, [&] {
    Tid self = TransactionManager::Self();
    // Parent holds a write lock...
    ASSERT_TRUE(tm_->Write(self, oid, TestBytes("parent")).ok());
    // ...and the child must get through it without deadlock (permit).
    Status s = models::RunSubtransaction(*tm_, [&] {
      ASSERT_TRUE(
          tm_->Write(TransactionManager::Self(), oid, TestBytes("child"))
              .ok());
    });
    ASSERT_TRUE(s.ok());
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(ReadCommitted(oid), "child");
}

TEST_F(NestedModelTest, ReportOnlyChildAbortKeepsParentAlive) {
  ObjectId parent_obj = MakeObject("0");
  ObjectId child_obj = MakeObject("0");
  bool ok = models::RunNestedRoot(*tm_, [&] {
    Tid self = TransactionManager::Self();
    ASSERT_TRUE(tm_->Write(self, parent_obj, TestBytes("kept")).ok());
    Status s = models::RunSubtransaction(
        *tm_,
        [&] {
          tm_->Write(TransactionManager::Self(), child_obj,
                     TestBytes("doomed"))
              .ok();
          tm_->Abort(TransactionManager::Self());
        },
        models::OnChildAbort::kReportOnly);
    EXPECT_TRUE(s.IsTxnAborted());
  });
  EXPECT_TRUE(ok);  // parent commits despite the child
  EXPECT_EQ(ReadCommitted(parent_obj), "kept");
  EXPECT_EQ(ReadCommitted(child_obj), "0");
}

TEST_F(NestedModelTest, AbortParentPolicyDoomsParent) {
  ObjectId oid = MakeObject("0");
  bool ok = models::RunNestedRoot(*tm_, [&] {
    tm_->Write(TransactionManager::Self(), oid, TestBytes("parent")).ok();
    models::RunSubtransaction(
        *tm_, [&] { tm_->Abort(TransactionManager::Self()); },
        models::OnChildAbort::kAbortParent)
        .ok();
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(ReadCommitted(oid), "0");
}

TEST_F(NestedModelTest, TwoLevelNesting) {
  ObjectId oid = MakeObject("0");
  bool ok = models::RunNestedRoot(*tm_, [&] {
    ASSERT_TRUE(models::RunSubtransaction(*tm_, [&] {
                  ASSERT_TRUE(models::RunSubtransaction(*tm_, [&] {
                                ASSERT_TRUE(
                                    tm_->Write(TransactionManager::Self(),
                                               oid, TestBytes("grandchild"))
                                        .ok());
                              }).ok());
                }).ok());
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(ReadCommitted(oid), "grandchild");
}

TEST_F(NestedModelTest, PaperTripExample) {
  // §3.1.4: airline + hotel; if either fails the whole trip cancels and
  // the airline reservation is undone.
  ObjectId airline = MakeObject("no-flight");
  ObjectId hotel = MakeObject("no-room");

  auto run_trip = [&](bool hotel_available) {
    return models::RunNestedRoot(*tm_, [&, hotel_available] {
      Status s1 = models::RunSubtransaction(
          *tm_,
          [&] {
            ASSERT_TRUE(tm_->Write(TransactionManager::Self(), airline,
                                   TestBytes("booked"))
                            .ok());
          },
          models::OnChildAbort::kAbortParent);
      if (!s1.ok()) return;
      Status s2 = models::RunSubtransaction(
          *tm_,
          [&, hotel_available] {
            Tid self = TransactionManager::Self();
            if (!hotel_available) {
              tm_->Abort(self);
              return;
            }
            ASSERT_TRUE(
                tm_->Write(self, hotel, TestBytes("reserved")).ok());
          },
          models::OnChildAbort::kAbortParent);
      (void)s2;
    });
  };

  EXPECT_FALSE(run_trip(/*hotel_available=*/false));
  EXPECT_EQ(ReadCommitted(airline), "no-flight");  // undone with the trip
  EXPECT_EQ(ReadCommitted(hotel), "no-room");

  EXPECT_TRUE(run_trip(/*hotel_available=*/true));
  EXPECT_EQ(ReadCommitted(airline), "booked");
  EXPECT_EQ(ReadCommitted(hotel), "reserved");
}

}  // namespace
}  // namespace asset
