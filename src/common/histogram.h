#ifndef ASSET_COMMON_HISTOGRAM_H_
#define ASSET_COMMON_HISTOGRAM_H_

/// \file histogram.h
/// Fixed-bucket log2 latency histogram.
///
/// Recording is one relaxed fetch_add into one of 64 power-of-two
/// buckets plus count/sum bookkeeping — no allocation, no locks, safe
/// from any thread on the hottest paths (commit ack, lock wait, fsync).
/// Percentiles are read from a plain-value Snapshot; because a
/// percentile is always the upper bound of the bucket the cumulative
/// rank lands in, p50 <= p95 <= p99 holds by construction.

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

namespace asset {

/// Concurrent log2 histogram of nanosecond durations.
class LatencyHistogram {
 public:
  /// Bucket b holds values whose bit width is b (i.e. [2^(b-1), 2^b));
  /// bucket 0 holds the value 0. 64 buckets cover the full uint64 range.
  static constexpr size_t kBuckets = 64;

  /// Plain-value copy for percentile math and ToString.
  struct Snapshot {
    uint64_t buckets[kBuckets] = {};
    uint64_t count = 0;
    uint64_t sum = 0;

    /// Upper bound (ns) of the bucket containing the `p`-th percentile
    /// observation (0 < p <= 100). Zero when empty.
    uint64_t ValueAtPercentile(double p) const {
      if (count == 0) return 0;
      if (p < 0) p = 0;
      if (p > 100) p = 100;
      // Rank of the target observation, 1-based, rounded up.
      uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                            static_cast<double>(count));
      if (rank == 0) rank = 1;
      if (rank > count) rank = count;
      uint64_t seen = 0;
      for (size_t b = 0; b < kBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank) return UpperBound(b);
      }
      return UpperBound(kBuckets - 1);
    }

    uint64_t p50() const { return ValueAtPercentile(50); }
    uint64_t p95() const { return ValueAtPercentile(95); }
    uint64_t p99() const { return ValueAtPercentile(99); }

    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Largest value bucket `b` can hold.
    static uint64_t UpperBound(size_t b) {
      if (b == 0) return 0;
      if (b >= 64) return UINT64_MAX;
      return (uint64_t{1} << b) - 1;
    }
  };

  /// Records one duration in nanoseconds. Wait-free: three relaxed
  /// fetch_adds.
  void Record(uint64_t nanos) {
    buckets_[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(nanos, std::memory_order_relaxed);
  }

  Snapshot snapshot() const {
    Snapshot s;
    for (size_t b = 0; b < kBuckets; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    for (size_t b = 0; b < kBuckets; ++b) {
      buckets_[b].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  static size_t BucketFor(uint64_t nanos) {
    size_t b = static_cast<size_t>(std::bit_width(nanos));  // 0 for value 0
    return b < kBuckets ? b : kBuckets - 1;
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

}  // namespace asset

#endif  // ASSET_COMMON_HISTOGRAM_H_
