#ifndef ASSET_COMMON_OBJECT_SET_H_
#define ASSET_COMMON_OBJECT_SET_H_

/// \file object_set.h
/// Sets of object ids, with an "all objects" wildcard.
///
/// `delegate` and `permit` (§2.2) take object sets; the wildcard forms
/// (delegate all responsibility, permit on any object) are represented by
/// `ObjectSet::All()`. Concrete sets are kept sorted so intersection —
/// needed for transitive permits — is a linear merge.

#include <algorithm>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/ids.h"

namespace asset {

/// An immutable-ish set of `ObjectId`s or the universal set.
class ObjectSet {
 public:
  /// The empty set.
  ObjectSet() = default;

  /// A concrete set; duplicates are removed.
  ObjectSet(std::initializer_list<ObjectId> ids)
      : ids_(ids) {
    Normalize();
  }
  explicit ObjectSet(std::vector<ObjectId> ids) : ids_(std::move(ids)) {
    Normalize();
  }

  /// The universal set — the paper's "any object" wildcard.
  static ObjectSet All() {
    ObjectSet s;
    s.all_ = true;
    return s;
  }
  static ObjectSet Of(ObjectId id) { return ObjectSet({id}); }

  bool IsAll() const { return all_; }
  bool empty() const { return !all_ && ids_.empty(); }
  /// Number of explicit ids; only meaningful when !IsAll().
  size_t size() const { return ids_.size(); }

  bool Contains(ObjectId id) const {
    if (all_) return true;
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }

  void Insert(ObjectId id) {
    if (all_) return;
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) ids_.insert(it, id);
  }

  /// Set intersection — used to derive transitive permits (§2.2 rule 3):
  /// ob_set ∩ ob_set'.
  ObjectSet Intersect(const ObjectSet& other) const {
    if (all_) return other;
    if (other.all_) return *this;
    ObjectSet out;
    std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                          other.ids_.end(), std::back_inserter(out.ids_));
    return out;
  }

  /// True if every member of `other` is in this set.
  bool Covers(const ObjectSet& other) const {
    if (all_) return true;
    if (other.all_) return false;
    return std::includes(ids_.begin(), ids_.end(), other.ids_.begin(),
                         other.ids_.end());
  }

  /// Elements of this set not in `other`. Only defined for concrete
  /// receivers (the universal set has no representable complement).
  ObjectSet Difference(const ObjectSet& other) const {
    if (other.all_) return ObjectSet();
    ObjectSet out;
    if (all_) return All();  // caller must not subtract from All()
    std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out.ids_));
    return out;
  }

  ObjectSet Union(const ObjectSet& other) const {
    if (all_ || other.all_) return All();
    ObjectSet out;
    std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                   other.ids_.end(), std::back_inserter(out.ids_));
    return out;
  }

  bool operator==(const ObjectSet& other) const {
    return all_ == other.all_ && ids_ == other.ids_;
  }

  /// Explicit ids, sorted ascending. Empty when IsAll().
  const std::vector<ObjectId>& ids() const { return ids_; }

  /// "*" for the universal set, otherwise "{1,2,3}".
  std::string ToString() const;

 private:
  void Normalize() {
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  }

  bool all_ = false;
  std::vector<ObjectId> ids_;
};

}  // namespace asset

#endif  // ASSET_COMMON_OBJECT_SET_H_
