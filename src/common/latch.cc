#include "common/latch.h"

#include <thread>

namespace asset {

namespace {

/// Exponential backoff: a few pause-spins, then yield to the scheduler.
/// This is the paper's "time-varying delay".
class Backoff {
 public:
  void Pause() {
    if (spins_ < kMaxSpins) {
      for (int i = 0; i < (1 << spins_); ++i) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
      }
      ++spins_;
    } else {
      std::this_thread::yield();
    }
  }

 private:
  static constexpr int kMaxSpins = 6;
  int spins_ = 0;
};

}  // namespace

void SpinLatch::LockShared() {
  Backoff backoff;
  for (;;) {
    uint32_t cur = word_.load(std::memory_order_relaxed);
    // New readers are blocked both by a holding writer and by a waiting
    // writer (the X-bit), preventing writer starvation.
    if ((cur & (kXHeld | kXWait)) == 0) {
      if (word_.compare_exchange_weak(cur, cur + kSharedOne,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
    backoff.Pause();
  }
}

bool SpinLatch::TryLockShared() {
  uint32_t cur = word_.load(std::memory_order_relaxed);
  while ((cur & (kXHeld | kXWait)) == 0) {
    if (word_.compare_exchange_weak(cur, cur + kSharedOne,
                                    std::memory_order_acquire,
                                    std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void SpinLatch::UnlockShared() {
  word_.fetch_sub(kSharedOne, std::memory_order_release);
}

void SpinLatch::LockExclusive() {
  Backoff backoff;
  // Announce intent: set the X-bit so readers stop entering. Several
  // writers may contend; the bit stays set while any of them waits, and
  // the winner clears it on acquisition only if no other writer still
  // needs it — with a single bit we conservatively leave it to the winner
  // to carry (cleared on unlock if no waiter re-set it). The simple scheme
  // below re-sets the bit on every retry, which preserves the protocol:
  // readers are blocked whenever some writer is between announce and
  // acquire.
  for (;;) {
    uint32_t cur = word_.load(std::memory_order_relaxed);
    if ((cur & kXWait) == 0) {
      if (!word_.compare_exchange_weak(cur, cur | kXWait,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
        continue;
      }
      cur |= kXWait;
    }
    // Wait for readers to drain and no writer to hold, then swap the
    // X-bit for the X-held bit.
    if ((cur & kXHeld) == 0 && (cur >> kSharedShift) == 0) {
      uint32_t want = kXHeld;  // clears kXWait, S-count already 0
      if (word_.compare_exchange_weak(cur, want, std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
    backoff.Pause();
  }
}

bool SpinLatch::TryLockExclusive() {
  uint32_t expected = 0;
  return word_.compare_exchange_strong(expected, kXHeld,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed);
}

void SpinLatch::UnlockExclusive() {
  word_.fetch_and(~kXHeld, std::memory_order_release);
}

}  // namespace asset
