#include "common/object_set.h"

namespace asset {

std::string ObjectSet::ToString() const {
  if (all_) return "*";
  std::string out = "{";
  for (size_t i = 0; i < ids_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ids_[i]);
  }
  out += "}";
  return out;
}

}  // namespace asset
