#include "common/status.h"

namespace asset {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIllegalState:
      return "IllegalState";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kTxnAborted:
      return "TxnAborted";
    case StatusCode::kDependencyCycle:
      return "DependencyCycle";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace asset
