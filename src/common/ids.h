#ifndef ASSET_COMMON_IDS_H_
#define ASSET_COMMON_IDS_H_

/// \file ids.h
/// Strongly-typed identifiers used across the library.
///
/// The paper (§2.1) represents transactions by an opaque `tid` with a
/// distinguished null value; objects are identified by object ids. We keep
/// both as 64-bit integers with value 0 reserved for "null".

#include <cstdint>
#include <functional>
#include <ostream>

namespace asset {

/// Transaction identifier. `kNullTid` plays the role of the paper's
/// "null tid": returned by a failed `initiate`, and by `parent()` for
/// top-level transactions.
using Tid = uint64_t;
inline constexpr Tid kNullTid = 0;

/// Identifier of a persistent object in the store.
using ObjectId = uint64_t;
inline constexpr ObjectId kNullObjectId = 0;

/// Ids 1..15 are reserved for system objects (e.g. the catalog root);
/// the store assigns user objects from here.
inline constexpr ObjectId kFirstUserObjectId = 16;

/// Identifier of a page in the storage manager.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// Log sequence number in the write-ahead log.
using Lsn = uint64_t;
inline constexpr Lsn kNullLsn = 0;

}  // namespace asset

#endif  // ASSET_COMMON_IDS_H_
