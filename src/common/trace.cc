#include "common/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace asset {
namespace {

/// Process-wide origin so every recorder's timestamps share one epoch.
std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

size_t RoundUpPow2(size_t n) {
  if (n < 2) return 2;
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* TraceEventTypeName(TraceEventType t) {
  switch (t) {
    case TraceEventType::kTxnInitiate: return "txn_initiate";
    case TraceEventType::kTxnBegin: return "txn_begin";
    case TraceEventType::kTxnCommit: return "txn_commit";
    case TraceEventType::kTxnAbort: return "txn_abort";
    case TraceEventType::kDelegate: return "delegate";
    case TraceEventType::kPermit: return "permit";
    case TraceEventType::kDependency: return "form_dependency";
    case TraceEventType::kLockWait: return "lock_wait";
    case TraceEventType::kWalAppend: return "wal_append";
    case TraceEventType::kWalFsync: return "wal_fsync";
    case TraceEventType::kCommitStall: return "commit_stall";
    case TraceEventType::kCheckpoint: return "checkpoint";
    case TraceEventType::kClientRpc: return "client_rpc";
    case TraceEventType::kFrameDecoded: return "frame_decoded";
    case TraceEventType::kAdmission: return "admission";
    case TraceEventType::kRpcQueue: return "rpc_queue";
    case TraceEventType::kRpcExecute: return "rpc_execute";
    case TraceEventType::kReplyEnqueued: return "reply_enqueued";
    case TraceEventType::kReplyFlushed: return "reply_flushed";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(TraceOptions options)
    : id_(NextRecorderId()),
      slots_(RoundUpPow2(options.ring_slots)),
      enabled_(options.enabled) {
  ProcessEpoch();  // pin the epoch before any Emit can race to create it
}

FlightRecorder::~FlightRecorder() = default;

int64_t FlightRecorder::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - ProcessEpoch())
      .count();
}

FlightRecorder::Ring* FlightRecorder::GetRing() {
  // Cache keyed by process-unique recorder id: ids are never reused, so
  // a stale entry from a destroyed recorder can never false-hit a new
  // recorder that happens to live at the same address.
  struct CacheEntry {
    uint64_t id;
    Ring* ring;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.id == id_) return e.ring;
  }
  Ring* ring;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rings_.push_back(std::make_unique<Ring>(
        static_cast<uint32_t>(rings_.size()), slots_));
    ring = rings_.back().get();
  }
  cache.push_back(CacheEntry{id_, ring});
  return ring;
}

void FlightRecorder::EmitAlways(TraceEventType type, Tid tid, Tid other,
                                ObjectId oid, uint64_t arg, int64_t dur_ns) {
  Ring* ring = GetRing();
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[head & (slots_ - 1)];
  if (head >= slots_ && dropped_ != nullptr) {
    dropped_->fetch_add(1, std::memory_order_relaxed);  // overwriting
  }
  // Seqlock write: odd seq marks the slot in flux. The release store on
  // the closing seq publishes the relaxed field stores to validating
  // readers; the fields themselves are atomics, so a racing reader sees
  // torn *versions* (and discards them via seq), never torn *bytes*.
  const uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);
  slot.ts_ns.store(NowNs(), std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.type.store(static_cast<uint64_t>(type), std::memory_order_relaxed);
  slot.tid.store(tid, std::memory_order_relaxed);
  slot.other.store(other, std::memory_order_relaxed);
  slot.oid.store(oid, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.seq.store(seq + 2, std::memory_order_release);
  ring->head.store(head + 1, std::memory_order_release);
}

std::vector<TraceEvent> FlightRecorder::Drain() const {
  std::vector<Ring*> rings;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rings.reserve(rings_.size());
    for (const auto& r : rings_) rings.push_back(r.get());
  }
  std::vector<TraceEvent> out;
  for (Ring* ring : rings) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    const uint64_t lo = head > slots_ ? head - slots_ : 0;
    for (uint64_t i = lo; i < head; ++i) {
      Slot& slot = ring->slots[i & (slots_ - 1)];
      const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
      if (seq_before & 1) continue;  // mid-write
      TraceEvent ev;
      ev.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      ev.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
      ev.thread = ring->thread_index;
      ev.type = static_cast<TraceEventType>(
          slot.type.load(std::memory_order_relaxed));
      ev.tid = slot.tid.load(std::memory_order_relaxed);
      ev.other = slot.other.load(std::memory_order_relaxed);
      ev.oid = slot.oid.load(std::memory_order_relaxed);
      ev.arg = slot.arg.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq_before) {
        continue;  // overwritten while reading
      }
      out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

namespace {

/// Appends one trace_event JSON object. Durations become "X" complete
/// events (ts = start), instants become "i" events; both use µs with
/// three decimal places so nanosecond resolution survives.
void AppendEventJson(const TraceEvent& ev, std::string* out) {
  char buf[512];
  const double dur_us = static_cast<double>(ev.dur_ns) / 1000.0;
  const double ts_us =
      static_cast<double>(ev.ts_ns - ev.dur_ns) / 1000.0;  // start time
  // Network stage events repurpose tid/other/oid as trace/span/tag, so
  // label the args accordingly — a viewer query on "trace" then matches
  // only wire-correlated events.
  const bool net = IsNetworkTraceEvent(ev.type);
  const char* k1 = net ? "trace" : "txn";
  const char* k2 = net ? "span" : "other";
  const char* k3 = net ? "tag" : "oid";
  if (ev.dur_ns > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"asset\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%" PRIu32
        ",\"args\":{\"%s\":%" PRIu64 ",\"%s\":%" PRIu64
        ",\"%s\":%" PRIu64 ",\"arg\":%" PRIu64 "}}",
        TraceEventTypeName(ev.type), ts_us, dur_us, ev.thread, k1, ev.tid,
        k2, ev.other, k3, ev.oid, ev.arg);
  } else {
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"asset\",\"ph\":\"i\",\"s\":\"t\","
        "\"ts\":%.3f,\"pid\":1,\"tid\":%" PRIu32
        ",\"args\":{\"%s\":%" PRIu64 ",\"%s\":%" PRIu64
        ",\"%s\":%" PRIu64 ",\"arg\":%" PRIu64 "}}",
        TraceEventTypeName(ev.type), ts_us, ev.thread, k1, ev.tid, k2,
        ev.other, k3, ev.oid, ev.arg);
  }
  out->append(buf);
}

}  // namespace

std::string FlightRecorder::DumpChromeJson() const {
  const std::vector<TraceEvent> events = Drain();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out.push_back(',');
    first = false;
    AppendEventJson(ev, &out);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rings_.size();
}

}  // namespace asset
