#ifndef ASSET_COMMON_SOCKET_IO_H_
#define ASSET_COMMON_SOCKET_IO_H_

/// \file socket_io.h
/// Injectable socket syscalls.
///
/// Mirror of storage/io_util.h for the network path: every recv/send/
/// connect/poll the server and client perform goes through these
/// wrappers, so a fault test can serve partial transfers, EINTR,
/// stalls, resets, and added latency deterministically — no traffic
/// shaping, no real signal storms, no flaky timing.
///
/// Installation is process-global (one atomic pointer) because the
/// interesting faults span both ends of a loopback pair inside one
/// test binary. Hooks may be called concurrently from every server
/// worker plus the client thread; a hook implementation must be
/// thread-safe. Production code never installs hooks, and the
/// fast path is one relaxed atomic load.
///
/// A hook that is installed but leaves a member empty falls through to
/// the real syscall for that operation — tests override only what they
/// break.

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <atomic>
#include <functional>

namespace asset {

/// Signature-compatible stand-ins for the socket syscalls the server
/// and client use. Each returns the syscall's result and communicates
/// failure via errno, exactly like the real thing.
struct SocketHooks {
  std::function<ssize_t(int fd, void* buf, size_t len, int flags)> recv;
  std::function<ssize_t(int fd, const void* buf, size_t len, int flags)> send;
  std::function<int(int fd, const sockaddr* addr, socklen_t len)> connect;
  std::function<int(pollfd* fds, nfds_t nfds, int timeout_ms)> poll;
};

namespace internal {
inline std::atomic<const SocketHooks*> socket_hooks{nullptr};
}  // namespace internal

/// ::recv unless a recv hook is installed.
ssize_t SockRecv(int fd, void* buf, size_t len, int flags);
/// ::send unless a send hook is installed.
ssize_t SockSend(int fd, const void* buf, size_t len, int flags);
/// ::connect unless a connect hook is installed.
int SockConnect(int fd, const sockaddr* addr, socklen_t len);
/// ::poll unless a poll hook is installed.
int SockPoll(pollfd* fds, nfds_t nfds, int timeout_ms);

/// Installs `hooks` process-wide for the lifetime of the guard.
/// `hooks` must outlive the guard; in-flight calls may still be
/// executing a hook briefly after destruction, so a test must join its
/// traffic (stop server, destroy clients) before destroying the hook
/// object itself.
class ScopedSocketHooks {
 public:
  explicit ScopedSocketHooks(const SocketHooks* hooks)
      : prev_(internal::socket_hooks.exchange(hooks,
                                              std::memory_order_release)) {}
  ~ScopedSocketHooks() {
    internal::socket_hooks.store(prev_, std::memory_order_release);
  }

  ScopedSocketHooks(const ScopedSocketHooks&) = delete;
  ScopedSocketHooks& operator=(const ScopedSocketHooks&) = delete;

 private:
  const SocketHooks* prev_;
};

}  // namespace asset

#endif  // ASSET_COMMON_SOCKET_IO_H_
