#ifndef ASSET_COMMON_RESULT_H_
#define ASSET_COMMON_RESULT_H_

/// \file result.h
/// `Result<T>`: a value or a non-OK `Status`.

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace asset {

/// Holds either a `T` (success) or a non-OK `Status` (failure).
///
/// A `Result` constructed from an OK status is a programming error and is
/// converted to an Internal error so the bug surfaces loudly rather than
/// as an apparently-valid value.
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Failure. `status` must not be OK.
  Result(Status status) {  // NOLINT(runtime/explicit)
    if (status.ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    } else {
      repr_ = std::move(status);
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The contained value. Must hold a value.
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates the error of a `Result` expression, otherwise assigns the
/// unwrapped value to `lhs`.
#define ASSET_ASSIGN_OR_RETURN(lhs, expr)            \
  auto ASSET_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!ASSET_CONCAT_(_res_, __LINE__).ok())          \
    return ASSET_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(ASSET_CONCAT_(_res_, __LINE__)).value()

#define ASSET_CONCAT_INNER_(a, b) a##b
#define ASSET_CONCAT_(a, b) ASSET_CONCAT_INNER_(a, b)

}  // namespace asset

#endif  // ASSET_COMMON_RESULT_H_
