#include "common/op_set.h"

namespace asset {

bool LockModeCovers(LockMode held, LockMode wanted) {
  if (wanted == LockMode::kNone) return true;
  if (held == wanted) return true;
  return held == LockMode::kWrite;
}

bool LockModesConflict(LockMode a, LockMode b) {
  if (a == LockMode::kNone || b == LockMode::kNone) return false;
  if (a == LockMode::kWrite || b == LockMode::kWrite) return true;
  // Read-read compatible; increment-increment commutes (§5 semantics);
  // read vs increment conflicts (an increment is invisible to a
  // repeatable reader only if serialized).
  return a != b;
}

LockMode JoinLockModes(LockMode a, LockMode b) {
  if (a == b) return a;
  if (a == LockMode::kNone) return b;
  if (b == LockMode::kNone) return a;
  return LockMode::kWrite;  // any distinct non-None pair joins at Write
}

LockMode LockModeFor(Operation op) {
  return op == Operation::kRead ? LockMode::kRead : LockMode::kWrite;
}

std::string OpSet::ToString() const {
  if (empty()) return "{}";
  std::string out = "{";
  if (Contains(Operation::kRead)) out += "read";
  if (Contains(Operation::kWrite)) {
    if (out.size() > 1) out += ",";
    out += "write";
  }
  out += "}";
  return out;
}

}  // namespace asset
