#ifndef ASSET_COMMON_RANDOM_H_
#define ASSET_COMMON_RANDOM_H_

/// \file random.h
/// A small, fast, deterministic PRNG for workload generation.
///
/// Tests and benchmarks need reproducible randomness that does not depend
/// on the standard library's unspecified distributions; this is
/// xoshiro256** with splitmix64 seeding.

#include <cstdint>

namespace asset {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 to spread a possibly-low-entropy seed over the state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform value in [lo, hi]. Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p (p in [0,1]).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

  /// Zipfian-ish skewed pick in [0, n): repeatedly halves the range with
  /// probability `skew`. skew=0 gives uniform; larger values concentrate
  /// mass on small indices — a cheap stand-in for hot-key workloads.
  uint64_t Skewed(uint64_t n, double skew) {
    uint64_t range = n;
    while (range > 1 && Bernoulli(skew)) range = (range + 1) / 2;
    return Uniform(range);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace asset

#endif  // ASSET_COMMON_RANDOM_H_
