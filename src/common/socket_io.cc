#include "common/socket_io.h"

namespace asset {

namespace {
inline const SocketHooks* Hooks() {
  return internal::socket_hooks.load(std::memory_order_acquire);
}
}  // namespace

ssize_t SockRecv(int fd, void* buf, size_t len, int flags) {
  if (const SocketHooks* h = Hooks(); h != nullptr && h->recv) {
    return h->recv(fd, buf, len, flags);
  }
  return ::recv(fd, buf, len, flags);
}

ssize_t SockSend(int fd, const void* buf, size_t len, int flags) {
  if (const SocketHooks* h = Hooks(); h != nullptr && h->send) {
    return h->send(fd, buf, len, flags);
  }
  return ::send(fd, buf, len, flags);
}

int SockConnect(int fd, const sockaddr* addr, socklen_t len) {
  if (const SocketHooks* h = Hooks(); h != nullptr && h->connect) {
    return h->connect(fd, addr, len);
  }
  return ::connect(fd, addr, len);
}

int SockPoll(pollfd* fds, nfds_t nfds, int timeout_ms) {
  if (const SocketHooks* h = Hooks(); h != nullptr && h->poll) {
    return h->poll(fds, nfds, timeout_ms);
  }
  return ::poll(fds, nfds, timeout_ms);
}

}  // namespace asset
