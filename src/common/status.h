#ifndef ASSET_COMMON_STATUS_H_
#define ASSET_COMMON_STATUS_H_

/// \file status.h
/// Error-handling primitives for the ASSET library.
///
/// The library does not use exceptions. Fallible operations return a
/// `Status`; fallible operations that also produce a value return a
/// `Result<T>` (see result.h). This mirrors the conventions of
/// production storage engines.

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace asset {

/// Classified error codes. Keep this list short and meaningful: a code is
/// something a caller can reasonably dispatch on; everything else belongs
/// in the message.
enum class StatusCode : uint8_t {
  kOk = 0,
  /// A malformed argument (null tid, empty object set, bad size...).
  kInvalidArgument = 1,
  /// The named entity (transaction, object, page) does not exist.
  kNotFound = 2,
  /// The operation is illegal in the entity's current state, e.g.
  /// beginning a transaction twice or delegating from a committed one.
  kIllegalState = 3,
  /// A resource limit was hit (transaction table full, buffer pool
  /// exhausted, page full).
  kResourceExhausted = 4,
  /// A deadlock was detected and this request chosen as the victim.
  kDeadlock = 5,
  /// The transaction was aborted (by the user, a dependency, or the
  /// system) while the operation was in flight.
  kTxnAborted = 6,
  /// Forming the dependency would create a forbidden cycle.
  kDependencyCycle = 7,
  /// An I/O failure from the (simulated) disk.
  kIOError = 8,
  /// Data failed an integrity check (checksum, magic, torn record).
  kCorruption = 9,
  /// A wait exceeded its deadline.
  kTimedOut = 10,
  /// Internal invariant violation; indicates a bug in the library.
  kInternal = 11,
  /// The server shed this request under overload before executing any of
  /// it; safe to retry after backing off (see Status::IsRetryable).
  kOverloaded = 12,
  /// The peer or transport is gone (connection refused, reset, closed).
  /// The request may or may not have executed if it was in flight.
  kUnavailable = 13,
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation);
/// error states carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IllegalState(std::string msg) {
    return Status(StatusCode::kIllegalState, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status TxnAborted(std::string msg) {
    return Status(StatusCode::kTxnAborted, std::move(msg));
  }
  static Status DependencyCycle(std::string msg) {
    return Status(StatusCode::kDependencyCycle, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIllegalState() const { return code_ == StatusCode::kIllegalState; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsTxnAborted() const { return code_ == StatusCode::kTxnAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// True for errors a client may retry without risking a double
  /// execution: kOverloaded guarantees the request was shed before any
  /// of it ran, and a failed *connect* (kUnavailable before anything was
  /// sent) never reached the server. kUnavailable on an in-flight
  /// request and kTimedOut are NOT classified retryable here — the
  /// request may have executed; only the caller knows whether a replay
  /// is idempotent.
  bool IsRetryable() const { return code_ == StatusCode::kOverloaded; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define ASSET_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::asset::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace asset

#endif  // ASSET_COMMON_STATUS_H_
