#ifndef ASSET_COMMON_OP_SET_H_
#define ASSET_COMMON_OP_SET_H_

/// \file op_set.h
/// Operation kinds and sets of operations.
///
/// The elementary operations in the paper's implementation (§4.2) are
/// `read` and `write`; `permit` takes a set of operations (possibly "all
/// operations", the paper's null). `OpSet` is a small bitmask over
/// `Operation` with an explicit "all" value so the four permit forms of
/// §2.2 map directly onto the API.

#include <cstdint>
#include <string>

namespace asset {

/// An elementary operation on an object.
enum class Operation : uint8_t {
  kRead = 1,
  kWrite = 2,
};

/// Lock modes of a lock-request descriptor (paper §4.1: read, write,
/// none). kIncrement is our implementation of the paper's §5 future
/// work — exploiting the commutativity of class-specific operations:
/// blind additive updates commute with each other, so increment locks
/// are compatible among themselves while still conflicting with reads
/// and writes.
enum class LockMode : uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kIncrement = 3,
};

/// Returns true if holding `held` makes acquiring `wanted` a no-op
/// ("covers" in the paper's read-lock/write-lock algorithm, §4.2 step 1a).
/// Write covers read; every mode covers itself and kNone.
bool LockModeCovers(LockMode held, LockMode wanted);

/// Returns true if the two modes conflict when held by *different*
/// transactions: write conflicts with everything; increment conflicts
/// with read and write but not with increment.
bool LockModesConflict(LockMode a, LockMode b);

/// Least mode covering both `a` and `b` (the upgrade lattice):
/// None < Read, Increment < Write, with Read ∨ Increment = Write.
LockMode JoinLockModes(LockMode a, LockMode b);

/// The lock mode an operation needs.
LockMode LockModeFor(Operation op);

/// A set of operations; a bitmask with a dedicated "all" constructor that
/// represents the paper's null-operations wildcard.
class OpSet {
 public:
  /// The empty set.
  constexpr OpSet() = default;

  /// A singleton set.
  constexpr OpSet(Operation op)  // NOLINT(runtime/explicit)
      : bits_(static_cast<uint8_t>(op)) {}

  /// All operations — the wildcard used by permit(ti, tj) and friends.
  static constexpr OpSet All() { return OpSet(kAllBits); }
  /// No operations.
  static constexpr OpSet None() { return OpSet(); }
  /// Reads and writes spelled out (equal to All() for our two-op model,
  /// kept distinct in name for call-site clarity).
  static constexpr OpSet ReadWrite() { return OpSet(kAllBits); }

  constexpr bool Contains(Operation op) const {
    return (bits_ & static_cast<uint8_t>(op)) != 0;
  }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr bool IsAll() const { return bits_ == kAllBits; }

  /// Set intersection — the semantics of transitive permits (§2.2):
  /// permit(ti,tj,ops) ∘ permit(tj,tk,ops') ⇒ permit(ti,tk,ops ∩ ops').
  constexpr OpSet Intersect(OpSet other) const {
    return OpSet(static_cast<uint8_t>(bits_ & other.bits_));
  }
  /// True if every operation in `other` is in this set.
  constexpr bool Covers(OpSet other) const {
    return (bits_ & other.bits_) == other.bits_;
  }

  constexpr OpSet Union(OpSet other) const {
    return OpSet(static_cast<uint8_t>(bits_ | other.bits_));
  }

  constexpr bool operator==(const OpSet& other) const {
    return bits_ == other.bits_;
  }

  /// Raw bits, exposed for hashing/serialization.
  constexpr uint8_t bits() const { return bits_; }
  static constexpr OpSet FromBits(uint8_t bits) {
    return OpSet(static_cast<uint8_t>(bits & kAllBits));
  }

  /// "{}", "{read}", "{write}", or "{read,write}".
  std::string ToString() const;

 private:
  static constexpr uint8_t kAllBits = static_cast<uint8_t>(Operation::kRead) |
                                      static_cast<uint8_t>(Operation::kWrite);

  explicit constexpr OpSet(uint8_t bits) : bits_(bits) {}

  uint8_t bits_ = 0;
};

}  // namespace asset

#endif  // ASSET_COMMON_OP_SET_H_
