#ifndef ASSET_COMMON_TRACE_H_
#define ASSET_COMMON_TRACE_H_

/// \file trace.h
/// The flight recorder: per-thread lock-free ring buffers of timestamped
/// kernel events, drainable as Chrome trace_event JSON.
///
/// Every instrumented layer (transaction lifecycle, lock waits, WAL
/// flusher, checkpointer) calls Emit(); when tracing is disabled the
/// whole call is one relaxed atomic load and a branch, so instrumented
/// hot paths cost effectively nothing in production. When enabled, an
/// event is written into the calling thread's private ring with relaxed
/// atomic stores under a per-slot seqlock — no shared mutable state, no
/// locks, no allocation (past the one-time ring creation per thread),
/// and no data races a sanitizer could object to. Rings overwrite their
/// oldest events when full; the drop count is surfaced through the
/// bound counter (KernelStats::trace_events_dropped).
///
/// Draining (Drain / DumpChromeJson) is racy-but-consistent: a slot
/// whose seqlock moved while it was being read is discarded rather than
/// reported half-written. Timestamps come from one process-wide
/// steady-clock origin, so events from different threads and different
/// recorders order correctly.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/ids.h"

namespace asset {

/// Event vocabulary. One enum across all layers so a single trace shows
/// the whole composed story of an extended transaction.
enum class TraceEventType : uint8_t {
  // Transaction lifecycle (§2.1 primitives).
  kTxnInitiate = 0,  ///< tid registered; other = parent
  kTxnBegin = 1,     ///< tid started executing
  kTxnCommit = 2,    ///< tid committed; arg = commit-record lsn
  kTxnAbort = 3,     ///< tid aborted (physical abort finalized)
  // New primitives (§2.2).
  kDelegate = 4,     ///< tid -> other; arg = locks moved
  kPermit = 5,       ///< tid permits other (other == 0: any transaction)
  kDependency = 6,   ///< other becomes dependent on tid; arg = DependencyType
  // Lock manager.
  kLockWait = 7,     ///< tid waited on oid; other = first blocker tid;
                     ///< arg = LockWaitOutcome; dur_ns = wait duration
  // WAL / durability pipeline.
  kWalAppend = 8,    ///< record appended; arg = lsn; oid/tid from record
  kWalFsync = 9,     ///< flush batch; arg = target lsn; dur_ns = pwrite+fsync
  kCommitStall = 10, ///< strict-durability ack slept; arg = commit lsn
  // Checkpointer.
  kCheckpoint = 11,  ///< fuzzy checkpoint; arg = record lsn; dur_ns = duration
  // Network request stages. These carry *wire* trace context instead of
  // kernel ids: tid = trace id, other = span id, oid = command tag.
  kClientRpc = 12,      ///< client call; dur_ns = send-to-reply round trip
  kFrameDecoded = 13,   ///< server decoded the command frame
  kAdmission = 14,      ///< admission decision; arg = 0 admitted / 1 shed
  kRpcQueue = 15,       ///< dispatch queue span; dur_ns = time since arrival
  kRpcExecute = 16,     ///< kernel execute span; arg = kernel tid (if any)
  kReplyEnqueued = 17,  ///< reply bytes queued; arg = status code
  kReplyFlushed = 18,   ///< reply fully on the wire; arg = status code;
                        ///< dur_ns = time spent in the outbound buffer
};

/// True for the network request-stage events (kClientRpc..kReplyFlushed),
/// whose tid/other/oid fields carry wire trace context, not kernel ids.
inline bool IsNetworkTraceEvent(TraceEventType t) {
  return t >= TraceEventType::kClientRpc &&
         t <= TraceEventType::kReplyFlushed;
}

/// arg values of kLockWait events.
enum class LockWaitOutcome : uint8_t {
  kGranted = 0,
  kTimeout = 1,
  kDeadlock = 2,
  kAborted = 3,
};

const char* TraceEventTypeName(TraceEventType t);

/// One drained event (plain values; see FlightRecorder::Drain).
struct TraceEvent {
  int64_t ts_ns = 0;   ///< end-of-event time, process-wide steady clock
  int64_t dur_ns = 0;  ///< 0 for instant events
  uint32_t thread = 0; ///< recorder-assigned compact thread index
  TraceEventType type = TraceEventType::kTxnInitiate;
  Tid tid = kNullTid;
  Tid other = kNullTid;
  ObjectId oid = kNullObjectId;
  uint64_t arg = 0;
};

/// Controls the flight recorder (TransactionManager::Options::trace).
struct TraceOptions {
  /// Master switch. Off: Emit() is one relaxed load + branch.
  bool enabled = false;
  /// Slots per per-thread ring, rounded up to a power of two. A full
  /// ring overwrites its oldest events.
  size_t ring_slots = 8192;
};

/// Per-thread ring-buffer event recorder. One instance per kernel.
class FlightRecorder {
 public:
  explicit FlightRecorder(TraceOptions options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Runtime toggle (e.g. flip tracing on for an incident window).
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Nanoseconds on the process-wide steady clock all events share.
  static int64_t NowNs();

  /// Records one event, timestamped now. Near-zero cost when disabled.
  void Emit(TraceEventType type, Tid tid, Tid other = kNullTid,
            ObjectId oid = kNullObjectId, uint64_t arg = 0,
            int64_t dur_ns = 0) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    EmitAlways(type, tid, other, oid, arg, dur_ns);
  }

  /// Counter bumped once per overwritten (lost) event; may be null.
  void BindDroppedCounter(std::atomic<uint64_t>* counter) {
    dropped_ = counter;
  }

  /// Snapshot of every retained event across all threads, sorted by
  /// timestamp. Safe concurrently with emitters; slots caught
  /// mid-write are skipped.
  std::vector<TraceEvent> Drain() const;

  /// Drain() rendered as Chrome trace_event JSON ("traceEvents" array
  /// object), loadable in chrome://tracing or Perfetto.
  std::string DumpChromeJson() const;

  /// Number of per-thread rings created so far.
  size_t ring_count() const;

  /// Slots per ring (after power-of-two rounding).
  size_t ring_slots() const { return slots_; }

 private:
  /// One event slot. All fields are relaxed atomics guarded by a
  /// seqlock: `seq` is odd while the owning thread rewrites the slot.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<int64_t> ts_ns{0};
    std::atomic<int64_t> dur_ns{0};
    std::atomic<uint64_t> type{0};
    std::atomic<uint64_t> tid{0};
    std::atomic<uint64_t> other{0};
    std::atomic<uint64_t> oid{0};
    std::atomic<uint64_t> arg{0};
  };

  /// One thread's private ring. Only the owning thread writes; any
  /// thread may read (Drain).
  struct Ring {
    Ring(uint32_t index, size_t slots)
        : thread_index(index), slots(slots) {}
    const uint32_t thread_index;
    std::atomic<uint64_t> head{0};  ///< events ever written
    std::vector<Slot> slots;
  };

  void EmitAlways(TraceEventType type, Tid tid, Tid other, ObjectId oid,
                  uint64_t arg, int64_t dur_ns);

  /// The calling thread's ring for this recorder (thread-local cached;
  /// created under mu_ on first use).
  Ring* GetRing();

  const uint64_t id_;    ///< process-unique, never reused
  const size_t slots_;   ///< power of two
  std::atomic<bool> enabled_;
  std::atomic<uint64_t>* dropped_ = nullptr;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace asset

#endif  // ASSET_COMMON_TRACE_H_
