#ifndef ASSET_COMMON_LATCH_H_
#define ASSET_COMMON_LATCH_H_

/// \file latch.h
/// The EOS spin latch of the paper (§4.1).
///
/// "Latches in EOS are implemented by an atomic test-and-set operation. If
/// a process cannot (test-and-)set a latch it 'spins' on it (perhaps with
/// some time-varying delay) until the latch is unset. Each latch, in
/// addition to the value that can be set or unset atomically, contains an
/// S-counter indicating the number of processes holding the latch in S
/// mode and an X-bit indicating whether a process is waiting to get the
/// latch in X mode. The X-bit blocks new readers from setting the latch,
/// thus preventing starvation of update transactions."
///
/// We pack the whole latch into one 32-bit atomic word:
///
///   bit 0      X-held   — a writer holds the latch exclusively
///   bit 1      X-bit    — a writer is waiting (blocks new readers)
///   bits 2..31 S-counter — number of shared holders
///
/// The paper's processes are our threads; the "time-varying delay" is an
/// exponential backoff capped with a yield.

#include <atomic>
#include <cstdint>

namespace asset {

/// A shared/exclusive spin latch with writer preference.
///
/// Latches guard *short* critical sections (an in-cache object read or
/// write); they are held across a handful of instructions, never across a
/// blocking wait. For long waits the transaction kernel uses its own
/// queueing — exactly the latch/lock split the paper makes.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  /// Acquires the latch in shared (S) mode; spins while a writer holds it
  /// or a writer is waiting (the X-bit check).
  void LockShared();

  /// Single shared-mode attempt; returns false instead of spinning.
  bool TryLockShared();

  /// Releases one shared hold.
  void UnlockShared();

  /// Acquires the latch in exclusive (X) mode; sets the X-bit first so new
  /// readers are held off while existing readers drain.
  void LockExclusive();

  /// Single exclusive-mode attempt; returns false instead of spinning.
  /// Does not set the X-bit on failure.
  bool TryLockExclusive();

  /// Releases the exclusive hold.
  void UnlockExclusive();

  /// Number of shared holders, for tests and statistics (racy snapshot).
  uint32_t SharedCount() const {
    return word_.load(std::memory_order_relaxed) >> kSharedShift;
  }
  /// True if a writer currently holds the latch (racy snapshot).
  bool ExclusiveHeld() const {
    return (word_.load(std::memory_order_relaxed) & kXHeld) != 0;
  }
  /// True if a writer is waiting — the X-bit (racy snapshot).
  bool WriterWaiting() const {
    return (word_.load(std::memory_order_relaxed) & kXWait) != 0;
  }

 private:
  static constexpr uint32_t kXHeld = 1u << 0;
  static constexpr uint32_t kXWait = 1u << 1;
  static constexpr uint32_t kSharedShift = 2;
  static constexpr uint32_t kSharedOne = 1u << kSharedShift;

  std::atomic<uint32_t> word_{0};
};

/// RAII shared-mode holder.
class SharedLatchGuard {
 public:
  explicit SharedLatchGuard(SpinLatch& latch) : latch_(latch) {
    latch_.LockShared();
  }
  ~SharedLatchGuard() { latch_.UnlockShared(); }
  SharedLatchGuard(const SharedLatchGuard&) = delete;
  SharedLatchGuard& operator=(const SharedLatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

/// RAII exclusive-mode holder.
class ExclusiveLatchGuard {
 public:
  explicit ExclusiveLatchGuard(SpinLatch& latch) : latch_(latch) {
    latch_.LockExclusive();
  }
  ~ExclusiveLatchGuard() { latch_.UnlockExclusive(); }
  ExclusiveLatchGuard(const ExclusiveLatchGuard&) = delete;
  ExclusiveLatchGuard& operator=(const ExclusiveLatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

}  // namespace asset

#endif  // ASSET_COMMON_LATCH_H_
