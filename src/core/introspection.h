#ifndef ASSET_CORE_INTROSPECTION_H_
#define ASSET_CORE_INTROSPECTION_H_

/// \file introspection.h
/// Live kernel introspection: a consistent snapshot of the control
/// structures the §4.1 kernel runs on — the TD table, the lock-table
/// wait-for graph, the dependency graph, and the permit table — plus
/// renderers to JSON (Database::DumpState), Graphviz DOT
/// (Database::DumpWaitForDot), and Prometheus text exposition
/// (Database::MetricsText).
///
/// The snapshot is taken by TransactionManager::SnapshotState under ONE
/// kernel-mutex hold, so it is atomic with respect to begin, commit,
/// abort, delegation, and dependency formation; the renderers work on
/// the plain-value copy with no locks at all.

#include <string>
#include <vector>

#include "common/ids.h"
#include "core/dependency_graph.h"
#include "core/descriptors.h"
#include "core/permit_table.h"
#include "core/statistics.h"

namespace asset {

/// Plain-value snapshot of the kernel's control structures.
struct KernelStateSnapshot {
  /// One TD table row.
  struct TxnInfo {
    Tid tid = kNullTid;
    Tid parent = kNullTid;
    TxnStatus status = TxnStatus::kInitiated;
    bool session = false;
    /// Locks currently held (granted LRDs, including suspended ones).
    size_t locks_held = 0;
    /// Data-operation lsns this transaction is responsible for —
    /// delegation moves entries between rows, so a delegatee's count
    /// includes the operations delegated to it.
    size_t ops_responsible = 0;
    Lsn commit_lsn = kNullLsn;
    std::string abort_reason;
  };

  /// One wait-for edge group: `waiter` is blocked on `oid`, waiting for
  /// every transaction in `blockers`.
  struct WaitEdge {
    Tid waiter = kNullTid;
    ObjectId oid = kNullObjectId;
    std::vector<Tid> blockers;
  };

  std::vector<TxnInfo> transactions;
  std::vector<WaitEdge> wait_for;
  std::vector<Dependency> dependencies;
  std::vector<Permit> permits;
  /// The wait-for cycle most recently resolved by the deadlock
  /// detector (empty if none since startup/reset). The detector
  /// resolves cycles at detection time, so a live dump rarely catches
  /// one in the wait_for edges themselves; this names the last victim
  /// cycle post-hoc.
  std::vector<Tid> last_deadlock_cycle;
};

/// WAL watermark gauges the Database folds into the dump.
struct WalWatermarks {
  Lsn last_lsn = kNullLsn;
  Lsn durable_lsn = kNullLsn;
  Lsn checkpoint_lsn = kNullLsn;
  Lsn min_recovery_lsn = kNullLsn;
};

/// The full state as a JSON object (keys: "transactions", "wait_for",
/// "dependencies", "permits", "last_deadlock_cycle", "wal").
std::string RenderKernelStateJson(const KernelStateSnapshot& snap,
                                  const WalWatermarks& wal);

/// The wait-for graph (plus the last deadlock cycle, dashed red) as a
/// Graphviz digraph.
std::string RenderWaitForDot(const KernelStateSnapshot& snap);

/// Counters, histogram percentiles, and WAL watermarks in Prometheus
/// text exposition format ("asset_<group>_<label> <value>").
std::string RenderMetricsText(const KernelStats::Snapshot& stats,
                              const WalWatermarks& wal);

}  // namespace asset

#endif  // ASSET_CORE_INTROSPECTION_H_
