#ifndef ASSET_CORE_THREAD_CACHE_H_
#define ASSET_CORE_THREAD_CACHE_H_

/// \file thread_cache.h
/// A cached-thread executor for transaction bodies.
///
/// The paper's execution model is one process per transaction; ours is
/// one thread per *concurrently running* transaction. Spawning a fresh
/// OS thread per begin() costs tens of microseconds — dominating short
/// transactions — so the kernel runs bodies on cached workers: an idle
/// worker picks the task up immediately, and a new worker is spawned
/// only when none is idle. The pool therefore grows to the peak
/// concurrency and never makes a transaction wait for an unrelated one
/// (transactions block while holding locks; a bounded queue could
/// deadlock the system).

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asset {

/// Unbounded cached-thread executor. Thread-safe.
class ThreadCache {
 public:
  ThreadCache() = default;

  /// Waits for every worker (all must be idle — the owner is
  /// responsible for draining its tasks first) and joins them.
  ~ThreadCache();

  ThreadCache(const ThreadCache&) = delete;
  ThreadCache& operator=(const ThreadCache&) = delete;

  /// Runs `task` on an idle worker, or on a newly spawned one if all
  /// workers are busy. Never blocks behind other tasks.
  void Submit(std::function<void()> task);

  /// Number of worker threads created so far (for tests/stats).
  size_t WorkersCreated() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> pending_;
  std::vector<std::thread> workers_;
  size_t idle_ = 0;
  bool stopping_ = false;
};

}  // namespace asset

#endif  // ASSET_CORE_THREAD_CACHE_H_
