#include "core/descriptors.h"

namespace asset {

const char* TxnStatusToString(TxnStatus s) {
  switch (s) {
    case TxnStatus::kInitiated:
      return "initiated";
    case TxnStatus::kRunning:
      return "running";
    case TxnStatus::kCompleted:
      return "completed";
    case TxnStatus::kCommitting:
      return "committing";
    case TxnStatus::kCommitted:
      return "committed";
    case TxnStatus::kAborting:
      return "aborting";
    case TxnStatus::kAborted:
      return "aborted";
  }
  return "unknown";
}

bool IsTerminated(TxnStatus s) {
  return s == TxnStatus::kCommitted || s == TxnStatus::kAborted;
}

bool IsActive(TxnStatus s) {
  return s == TxnStatus::kRunning || s == TxnStatus::kCompleted ||
         s == TxnStatus::kCommitting || s == TxnStatus::kAborting;
}

const char* DependencyTypeToString(DependencyType t) {
  switch (t) {
    case DependencyType::kCommit:
      return "CD";
    case DependencyType::kAbort:
      return "AD";
    case DependencyType::kGroupCommit:
      return "GC";
    case DependencyType::kBeginOnBegin:
      return "BD";
    case DependencyType::kBeginOnCommit:
      return "BCD";
  }
  return "??";
}

}  // namespace asset
