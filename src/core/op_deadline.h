#ifndef ASSET_CORE_OP_DEADLINE_H_
#define ASSET_CORE_OP_DEADLINE_H_

/// \file op_deadline.h
/// Per-thread operation deadlines for kernel waits.
///
/// The network front door admits requests that carry a deadline budget
/// (api::Command::deadline_ms). An admitted request runs its data
/// operation synchronously on the dispatching thread, so the cheapest
/// way to bound every kernel wait it performs — without threading a
/// deadline parameter through the whole TransactionManager/LockManager
/// surface — is a thread-local: the dispatcher installs the absolute
/// deadline around the call, and any wait-with-deadline site
/// (LockManager::Acquire today) clamps its own timeout to it.
///
/// A wait that hits the operation deadline fails with kTimedOut exactly
/// like a lock_timeout expiry; the dispatcher (ApiSession) then aborts
/// the transaction so a deadline expiry can never leave half-executed
/// work behind (docs/ROBUSTNESS.md).
///
/// The guard nests: an inner scope (e.g. a tighter per-step budget)
/// shadows the outer one and restores it on destruction. Scopes must be
/// destroyed in reverse construction order on the same thread — the
/// natural stack discipline.

#include <chrono>
#include <optional>

namespace asset {

namespace internal {
/// Steady-clock ticks of the current thread's operation deadline;
/// 0 = no deadline installed.
inline thread_local std::chrono::steady_clock::rep op_deadline_ticks = 0;
}  // namespace internal

/// The calling thread's operation deadline, if one is installed.
inline std::optional<std::chrono::steady_clock::time_point>
CurrentOpDeadline() {
  if (internal::op_deadline_ticks == 0) return std::nullopt;
  return std::chrono::steady_clock::time_point(
      std::chrono::steady_clock::duration(internal::op_deadline_ticks));
}

/// Installs `deadline` as the calling thread's operation deadline for
/// the lifetime of the guard.
class ScopedOpDeadline {
 public:
  explicit ScopedOpDeadline(std::chrono::steady_clock::time_point deadline)
      : prev_(internal::op_deadline_ticks) {
    internal::op_deadline_ticks = deadline.time_since_epoch().count();
  }
  ~ScopedOpDeadline() { internal::op_deadline_ticks = prev_; }

  ScopedOpDeadline(const ScopedOpDeadline&) = delete;
  ScopedOpDeadline& operator=(const ScopedOpDeadline&) = delete;

 private:
  std::chrono::steady_clock::rep prev_;
};

}  // namespace asset

#endif  // ASSET_CORE_OP_DEADLINE_H_
