#ifndef ASSET_CORE_LOCK_MANAGER_H_
#define ASSET_CORE_LOCK_MANAGER_H_

/// \file lock_manager.h
/// The permit-aware lock manager (§4.2 read-lock / write-lock), sharded.
///
/// Acquisition algorithm, straight from the paper:
///
///  1. Scan the granted locks on the object. A non-suspended lock of our
///     own that covers the request means success. A conflicting lock
///     held by t_j is tolerable if t_j (transitively) permits us — it
///     gets *suspended*; otherwise we block and retry from step 1.
///  2. Create or upgrade our LRD (removing any suspension).
///
/// Suspension is the mechanism behind cooperative transactions: a
/// suspended lock no longer covers, so its holder's next access
/// re-acquires — possibly suspending us right back (§3.2.1's
/// "ping-ponging of permits").
///
/// Structure: the lock table is partitioned by ObjectId hash into
/// `Options::shards` independently-latched partitions (the paper's §4.1
/// per-structure latches). Acquire, release, and delegation lock only
/// the shards of the objects involved and never the global kernel
/// mutex — except Acquire's *blocking* path, which briefly takes the
/// global mutex (after dropping the shard latch) to publish waits-for
/// edges for the deadlock check.
///
/// Blocking is targeted: a blocked requester registers itself on the
/// OD's waiter list and sleeps on its own TD's WaitChannel; whoever
/// changes that object's lock state (release, delegation, suspension)
/// notifies exactly the registered waiters. Permit insertions and
/// delegations — which can admit a blocked requester without touching
/// the object's shard — notify the requesters registered in
/// KernelSync::lock_blocked. Because those mutations are not guarded by
/// the shard latch, Acquire snapshots its wait channel BEFORE inspecting
/// the lock state and re-checks once after its first registration in the
/// blocked set, so a permit inserted at any point either is seen by a
/// check or bumps the channel past the snapshot the sleep uses. A
/// deadlock check (our documented extension) and a configurable timeout
/// bound the wait.

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/ids.h"
#include "common/object_set.h"
#include "common/op_set.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/deadlock_detector.h"
#include "core/descriptors.h"
#include "core/kernel.h"
#include "core/permit_table.h"
#include "core/statistics.h"

namespace asset {

/// Sharded lock table plus acquisition/release/delegation over it.
class LockManager {
 public:
  struct Options {
    /// Upper bound on one blocking acquire. Zero means wait forever.
    std::chrono::milliseconds lock_timeout{5000};
    /// Run the waits-for cycle check before every sleep.
    bool detect_deadlocks = true;
    /// Number of lock-table partitions; rounded up to a power of two.
    size_t shards = 64;
  };

  /// `recorder` may be null (no tracing).
  LockManager(KernelSync* sync, PermitTable* permits, const TdTable* txns,
              KernelStats* stats, FlightRecorder* recorder, Options options);

  /// Blocking acquire of `mode` on `oid` for `td`. Returns OK,
  /// kTxnAborted if the transaction was marked aborting while blocked,
  /// kDeadlock if sleeping would close a waits-for cycle, or kTimedOut.
  /// Must be called WITHOUT the kernel mutex: the fast path takes only
  /// the object's shard latch; the blocking path additionally takes the
  /// kernel mutex (shard latch released) for the deadlock check.
  Status Acquire(TransactionDescriptor* td, ObjectId oid, LockMode mode);

  /// Releases every lock `td` holds and wakes the waiters registered on
  /// those objects (§4.2 commit step 6, abort step 3). Freezes the TD's
  /// lock list so a racing grant cannot resurrect it. Takes shard
  /// latches itself; safe with or without the kernel mutex.
  void ReleaseAll(TransactionDescriptor* td);

  /// Moves `ti`'s LRDs on objects in `objs` to `tj`, merging with any
  /// lock `tj` already holds (§4.2 delegate step a), and wakes waiters
  /// on the affected objects. Returns the number of locks moved. Takes
  /// shard latches itself.
  size_t Delegate(TransactionDescriptor* ti, TransactionDescriptor* tj,
                  const ObjectSet& objs);

  /// The concrete objects `td` currently holds locks on.
  ObjectSet LockedObjects(TransactionDescriptor* td) const;

  /// Object descriptor for `oid`, or nullptr. The pointer stays valid
  /// only while the caller holds a granted lock or registered wait on
  /// the object (which blocks reclamation).
  ObjectDescriptor* Find(ObjectId oid);

  /// `td`'s granted lock mode on `oid` (kNone if absent; suspension is
  /// reported separately by IsSuspended).
  LockMode HeldMode(TransactionDescriptor* td, ObjectId oid) const;

  /// True if `td`'s lock on `oid` exists and is suspended.
  bool IsSuspended(TransactionDescriptor* td, ObjectId oid) const;

  /// Number of object descriptors currently in the table (sums all
  /// shards; each shard latched in turn).
  size_t NumObjects() const;

  /// Number of lock-table partitions (after power-of-two rounding).
  size_t shard_count() const { return shards_.size(); }

 private:
  /// One lock-table partition: a latch and the ODs hashed to it.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<ObjectId, std::unique_ptr<ObjectDescriptor>> table;
  };

  Shard& ShardFor(ObjectId oid);
  const Shard& ShardFor(ObjectId oid) const;

  /// Caller holds shard.mu.
  ObjectDescriptor* GetOrCreate(Shard& shard, ObjectId oid);
  /// Drops the OD if it has no granted locks and no registered waiters.
  /// Caller holds shard.mu.
  void MaybeReclaim(Shard& shard, ObjectId oid);
  /// Notifies every waiter registered on `od`. Caller holds the OD's
  /// shard latch, which keeps the waiter TDs registered (and therefore
  /// alive) for the duration.
  void NotifyWaiters(ObjectDescriptor* od);
  /// Removes `td` from `od`'s waiter list. Caller holds shard.mu.
  static void Deregister(ObjectDescriptor* od, TransactionDescriptor* td);

  KernelSync* sync_;
  PermitTable* permits_;
  const TdTable* txns_;
  KernelStats* stats_;
  FlightRecorder* recorder_;
  Options options_;

  /// deque: Shard is not movable (mutex); the deque never relocates.
  std::deque<Shard> shards_;
  size_t shard_mask_ = 0;
};

}  // namespace asset

#endif  // ASSET_CORE_LOCK_MANAGER_H_
