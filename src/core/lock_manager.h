#ifndef ASSET_CORE_LOCK_MANAGER_H_
#define ASSET_CORE_LOCK_MANAGER_H_

/// \file lock_manager.h
/// The permit-aware lock manager (§4.2 read-lock / write-lock).
///
/// Acquisition algorithm, straight from the paper:
///
///  1. Scan the granted locks on the object. A non-suspended lock of our
///     own that covers the request means success. A conflicting lock
///     held by t_j is tolerable if t_j (transitively) permits us — it
///     gets *suspended*; otherwise we block and retry from step 1.
///  2. Create or upgrade our LRD (removing any suspension).
///
/// Suspension is the mechanism behind cooperative transactions: a
/// suspended lock no longer covers, so its holder's next access
/// re-acquires — possibly suspending us right back (§3.2.1's
/// "ping-ponging of permits").
///
/// Blocking uses the kernel condition variable; a deadlock check (our
/// documented extension) and a configurable timeout bound the wait.

#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/ids.h"
#include "common/object_set.h"
#include "common/op_set.h"
#include "common/result.h"
#include "common/status.h"
#include "core/deadlock_detector.h"
#include "core/descriptors.h"
#include "core/kernel.h"
#include "core/permit_table.h"
#include "core/statistics.h"

namespace asset {

/// Lock table plus acquisition/release/delegation over it.
class LockManager {
 public:
  struct Options {
    /// Upper bound on one blocking acquire. Zero means wait forever.
    std::chrono::milliseconds lock_timeout{5000};
    /// Run the waits-for cycle check before every sleep.
    bool detect_deadlocks = true;
  };

  LockManager(KernelSync* sync, PermitTable* permits, const TdTable* txns,
              KernelStats* stats, Options options)
      : sync_(sync),
        permits_(permits),
        txns_(txns),
        stats_(stats),
        options_(options) {}

  /// Blocking acquire of `mode` on `oid` for `td`. Returns OK,
  /// kTxnAborted if the transaction was marked aborting while blocked,
  /// kDeadlock if sleeping would close a waits-for cycle, or kTimedOut.
  /// Takes the kernel mutex itself.
  Status Acquire(TransactionDescriptor* td, ObjectId oid, LockMode mode);

  /// Releases every lock `td` holds and wakes waiters (§4.2 commit step
  /// 6, abort step 3). Caller holds the kernel mutex.
  void ReleaseAllLocked(TransactionDescriptor* td);

  /// Moves `ti`'s LRDs on objects in `objs` to `tj`, merging with any
  /// lock `tj` already holds (§4.2 delegate step a). Returns the number
  /// of locks moved. Caller holds the kernel mutex.
  size_t DelegateLocked(TransactionDescriptor* ti, TransactionDescriptor* tj,
                        const ObjectSet& objs);

  /// The concrete objects `td` currently holds locks on. Caller holds
  /// the kernel mutex.
  ObjectSet LockedObjectsLocked(const TransactionDescriptor* td) const;

  /// Object descriptor for `oid`, creating it if needed. Caller holds
  /// the kernel mutex.
  ObjectDescriptor* GetOrCreateLocked(ObjectId oid);

  /// Object descriptor for `oid`, or nullptr. Caller holds the kernel
  /// mutex.
  ObjectDescriptor* FindLocked(ObjectId oid);

  /// `td`'s granted lock mode on `oid` (kNone if absent or suspended
  /// counts as its recorded mode — suspension is reported separately by
  /// IsSuspendedLocked). Caller holds the kernel mutex.
  LockMode HeldModeLocked(const TransactionDescriptor* td,
                          ObjectId oid) const;

  /// True if `td`'s lock on `oid` exists and is suspended. Caller holds
  /// the kernel mutex.
  bool IsSuspendedLocked(const TransactionDescriptor* td, ObjectId oid) const;

  /// Number of object descriptors currently in the table.
  size_t NumObjectsLocked() const { return table_.size(); }

 private:
  /// Drops ODs with no granted locks and no waiters.
  void MaybeReclaimLocked(ObjectId oid);

  KernelSync* sync_;
  PermitTable* permits_;
  const TdTable* txns_;
  KernelStats* stats_;
  Options options_;

  std::unordered_map<ObjectId, std::unique_ptr<ObjectDescriptor>> table_;
};

}  // namespace asset

#endif  // ASSET_CORE_LOCK_MANAGER_H_
