#include "core/dependency_graph.h"

#include <deque>

namespace asset {

Status DependencyGraph::Add(DependencyType type, Tid ti, Tid tj) {
  if (ti == kNullTid || tj == kNullTid) {
    return Status::InvalidArgument("form_dependency requires concrete tids");
  }
  if (ti == tj) {
    return Status::InvalidArgument("a transaction cannot depend on itself");
  }
  const Tid dependent = tj;
  const Tid dependee = ti;

  // Collapse duplicates; upgrade CD to AD (AD covers CD).
  for (Dependency& e : edges_) {
    bool same_pair = e.dependent == dependent && e.dependee == dependee;
    bool gc_pair = type == DependencyType::kGroupCommit &&
                   e.type == DependencyType::kGroupCommit &&
                   ((e.dependent == dependent && e.dependee == dependee) ||
                    (e.dependent == dependee && e.dependee == dependent));
    if (gc_pair) return Status::OK();
    if (same_pair && e.type == type) return Status::OK();
    if (same_pair && type == DependencyType::kCommit &&
        e.type == DependencyType::kAbort) {
      return Status::OK();  // AD already covers CD
    }
    if (same_pair && type == DependencyType::kAbort &&
        e.type == DependencyType::kCommit) {
      e.type = DependencyType::kAbort;
      return Status::OK();
    }
  }

  // Cycle prevention (§4.2 form_dependency): a CD/AD edge from
  // `dependent` to `dependee` is rejected when `dependee` already waits
  // on `dependent` transitively.
  if (type != DependencyType::kGroupCommit &&
      ReachesViaWait(dependee, dependent)) {
    return Status::DependencyCycle(
        "dependency would create a commit-wait cycle");
  }

  size_t idx = edges_.size();
  edges_.push_back(Dependency{dependent, dependee, type});
  by_dependent_[dependent].push_back(idx);
  by_dependee_[dependee].push_back(idx);
  return Status::OK();
}

bool DependencyGraph::ReachesViaWait(Tid from, Tid to) const {
  std::unordered_set<Tid> visited;
  std::deque<Tid> work{from};
  while (!work.empty()) {
    Tid cur = work.front();
    work.pop_front();
    if (cur == to) return true;
    if (!visited.insert(cur).second) continue;
    auto it = by_dependent_.find(cur);
    if (it == by_dependent_.end()) continue;
    for (size_t idx : it->second) {
      const Dependency& e = edges_[idx];
      if (e.type == DependencyType::kGroupCommit) continue;
      work.push_back(e.dependee);  // CD/AD/BD/BCD all make tj wait on ti
    }
  }
  return false;
}

std::vector<Dependency> DependencyGraph::DependenciesOf(Tid t) const {
  std::vector<Dependency> out;
  auto it = by_dependent_.find(t);
  if (it != by_dependent_.end()) {
    for (size_t idx : it->second) out.push_back(edges_[idx]);
  }
  // GC edges are symmetric: surface those where t is the stored dependee
  // with endpoints flipped.
  auto jt = by_dependee_.find(t);
  if (jt != by_dependee_.end()) {
    for (size_t idx : jt->second) {
      const Dependency& e = edges_[idx];
      if (e.type == DependencyType::kGroupCommit) {
        out.push_back(Dependency{t, e.dependent, e.type});
      }
    }
  }
  return out;
}

std::vector<Dependency> DependencyGraph::DependenciesOn(Tid t) const {
  std::vector<Dependency> out;
  auto it = by_dependee_.find(t);
  if (it != by_dependee_.end()) {
    for (size_t idx : it->second) out.push_back(edges_[idx]);
  }
  auto jt = by_dependent_.find(t);
  if (jt != by_dependent_.end()) {
    for (size_t idx : jt->second) {
      const Dependency& e = edges_[idx];
      if (e.type == DependencyType::kGroupCommit) {
        out.push_back(Dependency{e.dependee, t, e.type});
      }
    }
  }
  return out;
}

std::vector<Tid> DependencyGraph::GroupOf(Tid t) const {
  std::unordered_set<Tid> seen{t};
  std::deque<Tid> work{t};
  while (!work.empty()) {
    Tid cur = work.front();
    work.pop_front();
    for (const Dependency& e : edges_) {
      if (e.type != DependencyType::kGroupCommit) continue;
      Tid peer = kNullTid;
      if (e.dependent == cur) peer = e.dependee;
      if (e.dependee == cur) peer = e.dependent;
      if (peer != kNullTid && seen.insert(peer).second) {
        work.push_back(peer);
      }
    }
  }
  return {seen.begin(), seen.end()};
}

void DependencyGraph::RemoveAllFor(Tid t) {
  std::vector<Dependency> kept;
  kept.reserve(edges_.size());
  for (const Dependency& e : edges_) {
    if (e.dependent == t || e.dependee == t) continue;
    kept.push_back(e);
  }
  if (kept.size() != edges_.size()) {
    edges_ = std::move(kept);
    RebuildIndexes();
  }
}

void DependencyGraph::Remove(const Dependency& d) {
  std::vector<Dependency> kept;
  kept.reserve(edges_.size());
  bool removed = false;
  for (const Dependency& e : edges_) {
    if (!removed && e == d) {
      removed = true;
      continue;
    }
    kept.push_back(e);
  }
  if (removed) {
    edges_ = std::move(kept);
    RebuildIndexes();
  }
}

void DependencyGraph::RebuildIndexes() {
  by_dependent_.clear();
  by_dependee_.clear();
  for (size_t i = 0; i < edges_.size(); ++i) {
    by_dependent_[edges_[i].dependent].push_back(i);
    by_dependee_[edges_[i].dependee].push_back(i);
  }
}

}  // namespace asset
