#ifndef ASSET_CORE_DEPENDENCY_GRAPH_H_
#define ASSET_CORE_DEPENDENCY_GRAPH_H_

/// \file dependency_graph.h
/// The transaction dependencies graph of §4.1.
///
/// form_dependency(type, ti, tj) makes *tj depend on ti*:
///   CD — tj cannot commit before ti terminates;
///   AD — if ti aborts, tj must abort (implies CD);
///   GC — ti and tj commit together or not at all.
///
/// Edges are stored as (dependent, dependee, type) and indexed both ways
/// ("doubly hashed on the tid of the two transactions"), so commit can
/// scan the dependencies *of* a transaction and abort can scan the
/// dependencies *on* it.
///
/// form_dependency performs the paper's check "to prevent certain
/// dependency cycles": a cycle through CD/AD edges would make every
/// transaction on it wait for the others to terminate, deadlocking
/// commit, so those are rejected. GC cycles are allowed — a GC-connected
/// component *is* the commit group.
///
/// Not thread-safe by itself; the kernel mutex serializes access.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "core/descriptors.h"

namespace asset {

/// One dependency edge: `dependent` depends on `dependee`.
struct Dependency {
  Tid dependent = kNullTid;
  Tid dependee = kNullTid;
  DependencyType type = DependencyType::kCommit;

  bool operator==(const Dependency&) const = default;
};

/// Directed dependency graph with per-tid indexes.
class DependencyGraph {
 public:
  /// Adds the dependency implied by form_dependency(type, ti, tj): tj
  /// depends on ti. Duplicate edges are collapsed (AD absorbs CD between
  /// the same pair, since AD covers CD). Rejects CD/AD cycles with
  /// kDependencyCycle.
  Status Add(DependencyType type, Tid ti, Tid tj);

  /// Dependencies *of* `t` (edges where t is the dependent) — what
  /// commit(t) scans. GC edges are symmetric and reported from either
  /// endpoint, with `dependee` set to the peer.
  std::vector<Dependency> DependenciesOf(Tid t) const;

  /// Dependencies *on* `t` (edges where t is the dependee) — what
  /// abort(t) scans to propagate. GC edges again appear from either
  /// side, with `dependent` set to the peer.
  std::vector<Dependency> DependenciesOn(Tid t) const;

  /// The GC-connected component containing `t` (always includes `t`).
  std::vector<Tid> GroupOf(Tid t) const;

  /// Removes every edge touching `t` (commit step 5 / abort step 5).
  void RemoveAllFor(Tid t);

  /// Removes one specific edge (abort step 4b removes CDs on the
  /// aborted transaction one at a time).
  void Remove(const Dependency& d);

  /// Every edge, as stored (introspection; caller holds the kernel
  /// mutex like every other accessor here).
  const std::vector<Dependency>& Edges() const { return edges_; }

  size_t size() const { return edges_.size(); }

 private:
  /// True if `from` can reach `to` along CD/AD edges in the
  /// dependent -> dependee direction.
  bool ReachesViaWait(Tid from, Tid to) const;

  std::vector<Dependency> edges_;
  std::unordered_map<Tid, std::vector<size_t>> by_dependent_;
  std::unordered_map<Tid, std::vector<size_t>> by_dependee_;

  void RebuildIndexes();
};

}  // namespace asset

#endif  // ASSET_CORE_DEPENDENCY_GRAPH_H_
