#ifndef ASSET_CORE_STATISTICS_H_
#define ASSET_CORE_STATISTICS_H_

/// \file statistics.h
/// Kernel counters. All counters are atomics so the hot paths can bump
/// them without the kernel mutex; readers take racy-but-consistent-enough
/// snapshots.

#include <atomic>
#include <cstdint>
#include <string>

namespace asset {

/// Monotonic event counters for the transaction kernel.
struct KernelStats {
  std::atomic<uint64_t> txns_initiated{0};
  std::atomic<uint64_t> txns_begun{0};
  std::atomic<uint64_t> txns_committed{0};
  std::atomic<uint64_t> txns_aborted{0};
  std::atomic<uint64_t> group_commits{0};
  /// Targeted lifecycle notifications: how many times a status
  /// transition woke one specific transaction's lifecycle channel.
  std::atomic<uint64_t> txn_wakeups{0};

  std::atomic<uint64_t> locks_granted{0};
  std::atomic<uint64_t> lock_waits{0};
  std::atomic<uint64_t> lock_suspensions{0};
  std::atomic<uint64_t> deadlocks{0};
  std::atomic<uint64_t> lock_timeouts{0};
  /// Targeted lock notifications: waiters woken by a release,
  /// delegation, or suspension on the object they are blocked on.
  std::atomic<uint64_t> lock_wakeups{0};
  /// Rescans of the grant decision by a blocked acquirer after a wakeup
  /// (each is one trip around the §4.2 "retry from step 1" loop).
  std::atomic<uint64_t> lock_wait_retries{0};

  std::atomic<uint64_t> permits_inserted{0};
  std::atomic<uint64_t> permits_derived{0};
  std::atomic<uint64_t> permit_checks{0};
  std::atomic<uint64_t> permit_hits{0};
  /// Permit insertions that swept the TD table to wake blocked lock
  /// waiters (a new permit can admit any of them).
  std::atomic<uint64_t> permit_broadcasts{0};

  std::atomic<uint64_t> delegations{0};
  std::atomic<uint64_t> locks_delegated{0};
  std::atomic<uint64_t> dependencies_formed{0};
  std::atomic<uint64_t> dependency_cycles_rejected{0};

  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::atomic<uint64_t> increments{0};
  std::atomic<uint64_t> undo_installs{0};

  /// WAL / durability-pipeline economy. The log itself bumps the first
  /// three through the WalStatsSink the TransactionManager binds;
  /// commit_stalls is bumped by the commit path.
  std::atomic<uint64_t> wal_appends{0};
  /// fsync batches completed. fewer fsyncs than commits == group commit
  /// batching is working.
  std::atomic<uint64_t> wal_fsyncs{0};
  /// Records made durable across all flush batches.
  std::atomic<uint64_t> wal_records_flushed{0};
  /// Commit acks that actually had to sleep for the flusher (strict
  /// durability only): the commit record was not yet durable when the
  /// kernel mutex was released.
  std::atomic<uint64_t> commit_stalls{0};

  /// Checkpoints completed (quiescent or fuzzy).
  std::atomic<uint64_t> checkpoints{0};
  /// TruncatePrefix calls that dropped at least one record.
  std::atomic<uint64_t> wal_truncations{0};
  /// Records physically dropped across all truncations.
  std::atomic<uint64_t> wal_records_truncated{0};

  /// Plain-value copy of every counter.
  struct Snapshot {
    uint64_t txns_initiated, txns_begun, txns_committed, txns_aborted,
        group_commits, txn_wakeups;
    uint64_t locks_granted, lock_waits, lock_suspensions, deadlocks,
        lock_timeouts, lock_wakeups, lock_wait_retries;
    uint64_t permits_inserted, permits_derived, permit_checks, permit_hits,
        permit_broadcasts;
    uint64_t delegations, locks_delegated, dependencies_formed,
        dependency_cycles_rejected;
    uint64_t reads, writes, increments, undo_installs;
    uint64_t wal_appends, wal_fsyncs, wal_records_flushed, commit_stalls;
    uint64_t checkpoints, wal_truncations, wal_records_truncated;

    /// Batching ratio: records flushed per fsync (0 when no fsync ran).
    double wal_records_per_fsync() const {
      return wal_fsyncs == 0
                 ? 0.0
                 : static_cast<double>(wal_records_flushed) /
                       static_cast<double>(wal_fsyncs);
    }

    std::string ToString() const;
  };

  Snapshot snapshot() const;
  void Reset();
};

}  // namespace asset

#endif  // ASSET_CORE_STATISTICS_H_
