#ifndef ASSET_CORE_STATISTICS_H_
#define ASSET_CORE_STATISTICS_H_

/// \file statistics.h
/// Kernel counters and latency histograms. All counters are atomics so
/// the hot paths can bump them without the kernel mutex; readers take
/// racy-but-consistent-enough snapshots.
///
/// The counter list is a single X-macro: the struct fields, the
/// Snapshot fields, snapshot(), Reset(), and ToString() are all
/// generated from ASSET_KERNEL_COUNTERS, so a new counter is added in
/// exactly one place and cannot drift out of any of them. Histograms
/// follow the same pattern via ASSET_KERNEL_HISTOGRAMS.

#include <atomic>
#include <cstdint>
#include <string>

#include "common/histogram.h"

namespace asset {

/// Every kernel counter: X(group, field, label). `group` and `label`
/// name the counter in ToString()/MetricsText() output ("group{label=N}"
/// and "asset_group_label N"); `field` is the C++ member. Entries with
/// the same group must stay contiguous.
#define ASSET_KERNEL_COUNTERS(X)                                           \
  X(txns, txns_initiated, initiated)                                       \
  X(txns, txns_begun, begun)                                               \
  X(txns, txns_committed, committed)                                       \
  X(txns, txns_aborted, aborted)                                           \
  X(txns, group_commits, group_commits)                                    \
  /* Targeted lifecycle notifications: how many times a status            \
     transition woke one specific transaction's lifecycle channel. */      \
  X(txns, txn_wakeups, wakeups)                                            \
  X(locks, locks_granted, granted)                                         \
  X(locks, lock_waits, waits)                                              \
  X(locks, lock_suspensions, suspensions)                                  \
  X(locks, deadlocks, deadlocks)                                           \
  X(locks, lock_timeouts, timeouts)                                        \
  /* Targeted lock notifications: waiters woken by a release,             \
     delegation, or suspension on the object they are blocked on. */       \
  X(locks, lock_wakeups, wakeups)                                          \
  /* Rescans of the grant decision by a blocked acquirer after a wakeup   \
     (each is one trip around the §4.2 "retry from step 1" loop). */       \
  X(locks, lock_wait_retries, wait_retries)                                \
  X(permits, permits_inserted, inserted)                                   \
  X(permits, permits_derived, derived)                                     \
  X(permits, permit_checks, checks)                                        \
  X(permits, permit_hits, hits)                                            \
  /* Permit insertions that swept the TD table to wake blocked lock       \
     waiters (a new permit can admit any of them). */                      \
  X(permits, permit_broadcasts, broadcasts)                                \
  X(delegation, delegations, calls)                                        \
  X(delegation, locks_delegated, locks)                                    \
  X(deps, dependencies_formed, formed)                                     \
  X(deps, dependency_cycles_rejected, cycles_rejected)                     \
  X(data, reads, reads)                                                    \
  X(data, writes, writes)                                                  \
  X(data, increments, increments)                                          \
  X(data, undo_installs, undo_installs)                                    \
  /* WAL / durability-pipeline economy. The log bumps appends, fsyncs,    \
     and records_flushed through the WalStatsSink the                     \
     TransactionManager binds; commit_stalls is bumped by the commit      \
     path when a strict-durability ack actually had to sleep for the      \
     flusher. Fewer fsyncs than commits == group commit is working. */     \
  X(wal, wal_appends, appends)                                             \
  X(wal, wal_fsyncs, fsyncs)                                               \
  X(wal, wal_records_flushed, records_flushed)                             \
  X(wal, commit_stalls, commit_stalls)                                     \
  /* Checkpoints completed (quiescent or fuzzy), and TruncatePrefix       \
     activity: calls that dropped at least one record, and the records    \
     physically dropped across all of them. */                             \
  X(checkpoint, checkpoints, checkpoints)                                  \
  X(checkpoint, wal_truncations, truncations)                              \
  X(checkpoint, wal_records_truncated, records_truncated)                  \
  /* Flight-recorder events lost to ring overwrite (see trace.h). */       \
  X(trace, trace_events_dropped, events_dropped)

/// Every kernel latency histogram: X(field). Recorded in nanoseconds.
#define ASSET_KERNEL_HISTOGRAMS(X)                                         \
  /* CommitTxn entry to durable ack (successful commits only). */          \
  X(commit_latency)                                                        \
  /* Lock-manager block to wake, blocking acquires only. */                \
  X(lock_wait_latency)                                                     \
  /* pwrite+fsync of one WAL flush batch. */                               \
  X(fsync_latency)                                                         \
  /* One quiescent or fuzzy checkpoint, end to end. */                     \
  X(checkpoint_latency)

/// Monotonic event counters + latency histograms for the kernel.
struct KernelStats {
#define ASSET_DECLARE_COUNTER(group, field, label) \
  std::atomic<uint64_t> field{0};
  ASSET_KERNEL_COUNTERS(ASSET_DECLARE_COUNTER)
#undef ASSET_DECLARE_COUNTER

#define ASSET_DECLARE_HISTOGRAM(field) LatencyHistogram field;
  ASSET_KERNEL_HISTOGRAMS(ASSET_DECLARE_HISTOGRAM)
#undef ASSET_DECLARE_HISTOGRAM

  /// Plain-value copy of every counter and histogram.
  struct Snapshot {
#define ASSET_SNAPSHOT_COUNTER(group, field, label) uint64_t field = 0;
    ASSET_KERNEL_COUNTERS(ASSET_SNAPSHOT_COUNTER)
#undef ASSET_SNAPSHOT_COUNTER

#define ASSET_SNAPSHOT_HISTOGRAM(field) LatencyHistogram::Snapshot field;
    ASSET_KERNEL_HISTOGRAMS(ASSET_SNAPSHOT_HISTOGRAM)
#undef ASSET_SNAPSHOT_HISTOGRAM

    /// Batching ratio: records flushed per fsync (0 when no fsync ran).
    double wal_records_per_fsync() const {
      return wal_fsyncs == 0
                 ? 0.0
                 : static_cast<double>(wal_records_flushed) /
                       static_cast<double>(wal_fsyncs);
    }

    std::string ToString() const;
  };

  Snapshot snapshot() const;
  void Reset();
};

}  // namespace asset

#endif  // ASSET_CORE_STATISTICS_H_
