#include "core/deadlock_detector.h"

#include <deque>
#include <unordered_set>

namespace asset {

bool DeadlockDetector::WouldDeadlock(const TransactionDescriptor* requester,
                                     const TdTable& txns) {
  // BFS from each transaction the requester would wait on; a path back to
  // the requester closes a cycle through it.
  std::unordered_set<Tid> visited;
  std::deque<Tid> work(requester->waiting_for.begin(),
                       requester->waiting_for.end());
  while (!work.empty()) {
    Tid cur = work.front();
    work.pop_front();
    if (cur == requester->tid) return true;
    if (!visited.insert(cur).second) continue;
    auto it = txns.find(cur);
    if (it == txns.end()) continue;
    for (Tid next : it->second->waiting_for) work.push_back(next);
  }
  return false;
}

std::vector<Tid> DeadlockDetector::FindCycle(const TdTable& txns) {
  // Iterative DFS with colors over the waits-for graph.
  enum class Color { kWhite, kGray, kBlack };
  std::unordered_map<Tid, Color> color;
  std::unordered_map<Tid, Tid> parent;
  for (const auto& [tid, td] : txns) color[tid] = Color::kWhite;

  for (const auto& [root, root_td] : txns) {
    if (color[root] != Color::kWhite) continue;
    std::deque<std::pair<Tid, size_t>> stack{{root, 0}};
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [cur, next_idx] = stack.back();
      auto it = txns.find(cur);
      static const std::vector<Tid> kNoEdges;
      const std::vector<Tid>& edges =
          it != txns.end() ? it->second->waiting_for : kNoEdges;
      if (next_idx < edges.size()) {
        Tid next = edges[next_idx++];
        auto cit = color.find(next);
        if (cit == color.end()) continue;
        if (cit->second == Color::kGray) {
          // Unwind the cycle next -> ... -> cur -> next.
          std::vector<Tid> cycle{next};
          for (auto rit = stack.rbegin(); rit != stack.rend(); ++rit) {
            cycle.push_back(rit->first);
            if (rit->first == next) break;
          }
          return cycle;
        }
        if (cit->second == Color::kWhite) {
          cit->second = Color::kGray;
          stack.emplace_back(next, 0);
        }
      } else {
        color[cur] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace asset
