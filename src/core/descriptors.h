#ifndef ASSET_CORE_DESCRIPTORS_H_
#define ASSET_CORE_DESCRIPTORS_H_

/// \file descriptors.h
/// The paper's §4.1 data structures: transaction descriptors (TD), object
/// descriptors (OD), lock request descriptors (LRD), and the transaction
/// status vocabulary of §2.1.
///
/// Ownership: the TransactionManager owns TDs; the LockManager owns ODs,
/// and each OD owns the LRDs granted on its object. TDs and ODs
/// cross-reference LRDs by raw pointer (the paper's linked lists).
/// Everything here is protected by the kernel mutex except the OD's data
/// latch, which guards the object's bytes during reads/writes (§4.2).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/ids.h"
#include "common/latch.h"
#include "common/op_set.h"

namespace asset {

/// Transaction lifecycle states (§2.1). A transaction is *active* when
/// running or completed; it is *terminated* when committed or aborted.
enum class TxnStatus : uint8_t {
  /// Registered via initiate(); has not begun executing.
  kInitiated = 0,
  /// Executing its code.
  kRunning = 1,
  /// Its code has finished; locks are still held, changes not persistent
  /// (§2.1: completion is recorded, commit is explicit).
  kCompleted = 2,
  /// Inside the commit algorithm, possibly blocked on dependencies.
  kCommitting = 3,
  kCommitted = 4,
  /// Marked for abort; physical undo pending (e.g. its code is still
  /// running and must first reach a safe point).
  kAborting = 5,
  kAborted = 6,
};

const char* TxnStatusToString(TxnStatus s);

/// True for kCommitted / kAborted.
bool IsTerminated(TxnStatus s);
/// True for kRunning / kCompleted / kCommitting / kAborting.
bool IsActive(TxnStatus s);

/// Dependency types of form_dependency (§2.2). The paper presents CD,
/// AD and GC as "three that occur more often" among the ACTA dependency
/// family [8]; the begin-dependencies below are the next most common
/// members, implemented here as an extension.
enum class DependencyType : uint8_t {
  /// CD — commit dependency: if both commit, t_j cannot commit before
  /// t_i; if t_i aborts, t_j may still commit.
  kCommit = 0,
  /// AD — abort dependency: if t_i aborts, t_j must abort. Implies CD.
  kAbort = 1,
  /// GC — group commit: both commit or neither.
  kGroupCommit = 2,
  /// BD — begin dependency: t_j cannot begin executing until t_i has
  /// begun.
  kBeginOnBegin = 3,
  /// BCD — begin-on-commit dependency: t_j cannot begin executing until
  /// t_i has committed; if t_i aborts, t_j can never begin (its begin
  /// fails).
  kBeginOnCommit = 4,
};

const char* DependencyTypeToString(DependencyType t);

struct ObjectDescriptor;
struct TransactionDescriptor;

/// LRD — a granted lock request by one transaction on one object (§4.1).
/// Pending requests are not materialized as LRDs: a blocked requester
/// waits on the kernel condition variable and retries from step 1,
/// exactly the paper's "blocks and retries later starting at step 1".
struct LockRequestDescriptor {
  TransactionDescriptor* td = nullptr;
  ObjectDescriptor* od = nullptr;
  LockMode mode = LockMode::kNone;
  /// A suspended lock is one whose holder permitted a conflicting
  /// operation; it no longer "covers" and must be re-acquired (§4.2
  /// read-lock step 1).
  bool suspended = false;
};

/// OD — per-object lock state (§4.1, Figure 1): the granted-lock list and
/// the data latch that serializes elementary operations. (Permits are
/// held centrally in the PermitTable, doubly indexed by the two tids, as
/// the paper prescribes for efficient lookup.)
struct ObjectDescriptor {
  explicit ObjectDescriptor(ObjectId id) : oid(id) {}

  ObjectId oid;
  /// Granted locks, including suspended ones. Owned here.
  std::vector<std::unique_ptr<LockRequestDescriptor>> granted;
  /// Number of requesters currently blocked on this object (for stats
  /// and for deciding when an OD may be reclaimed).
  uint32_t waiters = 0;
  /// Guards the object's bytes during an elementary read/write (§4.2:
  /// S-latch for read, X-latch for write).
  SpinLatch data_latch;
};

/// TD — per-transaction state (§4.1).
struct TransactionDescriptor {
  TransactionDescriptor(Tid id, Tid parent_id)
      : tid(id), parent(parent_id) {}

  const Tid tid;
  const Tid parent;
  TxnStatus status = TxnStatus::kInitiated;

  /// The registered function (the paper's f with args already bound).
  std::function<void()> fn;

  /// False while a (detached) thread is executing fn; set under the
  /// kernel mutex as the thread's last act. A TD may be reclaimed only
  /// when terminated and thread_exited.
  bool thread_exited = true;

  /// Locks this transaction currently holds (raw pointers; ODs own them).
  std::vector<LockRequestDescriptor*> lrds;

  /// Lsns of the data operations this transaction is currently
  /// *responsible* for, in append order. Delegation moves entries
  /// between TDs; abort walks them in reverse.
  std::vector<Lsn> responsible_ops;

  /// Set when this transaction blocks waiting for a lock, naming the
  /// holder it waits for (for the waits-for deadlock check).
  std::vector<Tid> waiting_for;

  /// True once begin() ran (the active-transaction accounting needs to
  /// distinguish begun transactions from initiated-only ones).
  bool begun = false;
};

}  // namespace asset

#endif  // ASSET_CORE_DESCRIPTORS_H_
