#ifndef ASSET_CORE_DESCRIPTORS_H_
#define ASSET_CORE_DESCRIPTORS_H_

/// \file descriptors.h
/// The paper's §4.1 data structures: transaction descriptors (TD), object
/// descriptors (OD), lock request descriptors (LRD), and the transaction
/// status vocabulary of §2.1.
///
/// Ownership: the TransactionManager owns TDs; the LockManager owns ODs,
/// and each OD owns the LRDs granted on its object. TDs and ODs
/// cross-reference LRDs by raw pointer (the paper's linked lists).
///
/// Synchronization (see kernel.h for the full ordering):
///  - TD lifecycle fields (status transitions, begun, thread_exited,
///    waiting_for, responsible_ops, abort_reason) are written under the
///    global kernel mutex. `status` is additionally atomic so lock-path
///    code holding only a shard latch can observe aborts.
///  - OD fields (granted, waiter_tds) are guarded by the latch of the
///    lock-table shard the OD lives in; the data latch guards the
///    object's bytes during elementary reads/writes (§4.2).
///  - TD::lrds is guarded by TD::lrds_mu (a leaf below the shard latch),
///    because release/delegation walk one transaction's locks across
///    many shards.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/ids.h"
#include "common/latch.h"
#include "common/op_set.h"

namespace asset {

/// Transaction lifecycle states (§2.1). A transaction is *active* when
/// running or completed; it is *terminated* when committed or aborted.
enum class TxnStatus : uint8_t {
  /// Registered via initiate(); has not begun executing.
  kInitiated = 0,
  /// Executing its code.
  kRunning = 1,
  /// Its code has finished; locks are still held, changes not persistent
  /// (§2.1: completion is recorded, commit is explicit).
  kCompleted = 2,
  /// Inside the commit algorithm, possibly blocked on dependencies.
  kCommitting = 3,
  kCommitted = 4,
  /// Marked for abort; physical undo pending (e.g. its code is still
  /// running and must first reach a safe point).
  kAborting = 5,
  kAborted = 6,
};

const char* TxnStatusToString(TxnStatus s);

/// True for kCommitted / kAborted.
bool IsTerminated(TxnStatus s);
/// True for kRunning / kCompleted / kCommitting / kAborting.
bool IsActive(TxnStatus s);

/// Dependency types of form_dependency (§2.2). The paper presents CD,
/// AD and GC as "three that occur more often" among the ACTA dependency
/// family [8]; the begin-dependencies below are the next most common
/// members, implemented here as an extension.
enum class DependencyType : uint8_t {
  /// CD — commit dependency: if both commit, t_j cannot commit before
  /// t_i; if t_i aborts, t_j may still commit.
  kCommit = 0,
  /// AD — abort dependency: if t_i aborts, t_j must abort. Implies CD.
  kAbort = 1,
  /// GC — group commit: both commit or neither.
  kGroupCommit = 2,
  /// BD — begin dependency: t_j cannot begin executing until t_i has
  /// begun.
  kBeginOnBegin = 3,
  /// BCD — begin-on-commit dependency: t_j cannot begin executing until
  /// t_i has committed; if t_i aborts, t_j can never begin (its begin
  /// fails).
  kBeginOnCommit = 4,
};

const char* DependencyTypeToString(DependencyType t);

struct ObjectDescriptor;
struct TransactionDescriptor;

/// A targeted wait channel: one mutex + condition variable + generation
/// counter. A waiter snapshots `sequence()` while it can still observe
/// the condition it is about to wait for (i.e. while holding the latch
/// that guards it), releases that latch, and calls WaitChanged(seen);
/// any notification between the snapshot and the sleep bumps the
/// sequence, so the sleep returns immediately — no lost wakeups.
class WaitChannel {
 public:
  uint64_t sequence() const {
    std::lock_guard<std::mutex> lk(mu_);
    return seq_;
  }

  /// Wakes every current and in-flight waiter.
  void Notify() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++seq_;
    }
    cv_.notify_all();
  }

  /// Sleeps until the sequence moves past `seen` or, when `bounded`,
  /// `deadline` passes. Returns false only on timeout.
  bool WaitChanged(uint64_t seen, std::chrono::steady_clock::time_point deadline,
                   bool bounded) {
    std::unique_lock<std::mutex> lk(mu_);
    auto moved = [&] { return seq_ != seen; };
    if (!bounded) {
      cv_.wait(lk, moved);
      return true;
    }
    return cv_.wait_until(lk, deadline, moved);
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t seq_ = 0;
};

/// LRD — a granted lock request by one transaction on one object (§4.1).
/// Pending requests are not materialized as LRDs: a blocked requester
/// registers itself on the OD's waiter list, sleeps on its own
/// WaitChannel, and retries from step 1 — exactly the paper's "blocks and
/// retries later starting at step 1", with the blocking localized to the
/// waiter. `mode` and `suspended` are written under the owning shard's
/// latch; they are atomic so introspection paths holding only
/// TD::lrds_mu read coherent values.
struct LockRequestDescriptor {
  TransactionDescriptor* td = nullptr;
  ObjectDescriptor* od = nullptr;
  std::atomic<LockMode> mode{LockMode::kNone};
  /// A suspended lock is one whose holder permitted a conflicting
  /// operation; it no longer "covers" and must be re-acquired (§4.2
  /// read-lock step 1).
  std::atomic<bool> suspended{false};
};

/// OD — per-object lock state (§4.1, Figure 1): the granted-lock list,
/// the registered waiters, and the data latch that serializes elementary
/// operations. Guarded by the latch of the lock-table shard it lives in.
/// (Permits are held centrally in the PermitTable, doubly indexed by the
/// two tids, as the paper prescribes for efficient lookup.)
struct ObjectDescriptor {
  explicit ObjectDescriptor(ObjectId id) : oid(id) {}

  ObjectId oid;
  /// Granted locks, including suspended ones. Owned here.
  std::vector<std::unique_ptr<LockRequestDescriptor>> granted;
  /// Transactions currently blocked on this object. A release,
  /// suspension, or delegation on this object notifies exactly these
  /// waiters' lock_wait channels. An OD with registered waiters is never
  /// reclaimed, which also keeps the waiters' TDs reachable.
  std::vector<TransactionDescriptor*> waiter_tds;
  /// Guards the object's bytes during an elementary read/write (§4.2:
  /// S-latch for read, X-latch for write).
  SpinLatch data_latch;
};

/// TD — per-transaction state (§4.1).
struct TransactionDescriptor {
  TransactionDescriptor(Tid id, Tid parent_id)
      : tid(id), parent(parent_id) {}

  const Tid tid;
  const Tid parent;

  /// Lifecycle state. Transitions happen under the global kernel mutex;
  /// the atomic lets shard-latch-only code (the lock path) and the
  /// fast-path status checks observe aborts without the global mutex.
  std::atomic<TxnStatus> status{TxnStatus::kInitiated};

  /// The registered function (the paper's f with args already bound).
  std::function<void()> fn;

  /// False while a (detached) thread is executing fn; set under the
  /// kernel mutex as the thread's last act. A TD may be reclaimed only
  /// when terminated, thread_exited, and unpinned. Session transactions
  /// (caller-driven, no worker thread) keep this true for their whole
  /// life.
  bool thread_exited = true;

  /// True for caller-driven transactions created by BeginSession (the
  /// RAII Txn handle): no worker thread, no live_threads_ accounting,
  /// and aborts perform the physical undo immediately.
  bool session = false;

  /// Locks this transaction currently holds (raw pointers; ODs own
  /// them). Guarded by lrds_mu, NOT the global mutex: release and
  /// delegation traverse this list across shards.
  std::vector<LockRequestDescriptor*> lrds;
  std::mutex lrds_mu;
  /// Set (under lrds_mu) when the transaction's locks are being released
  /// at termination; a racing grant that finds it set must give up
  /// instead of inserting into the now-dead list.
  bool locks_frozen = false;

  /// Lsns of the data operations this transaction is currently
  /// *responsible* for, in append order. Delegation moves entries
  /// between TDs; abort walks them in reverse. Guarded by the global
  /// kernel mutex.
  std::vector<Lsn> responsible_ops;

  /// Set when this transaction blocks waiting for a lock, naming the
  /// holders it waits for (for the waits-for deadlock check). Guarded by
  /// the global kernel mutex.
  std::vector<Tid> waiting_for;

  /// The object the blocked lock request above is for (kNullObjectId
  /// when not blocked) — lets introspection label wait-for edges with
  /// the contended object. Guarded by the global kernel mutex, set and
  /// cleared together with `waiting_for`.
  ObjectId waiting_for_oid = kNullObjectId;

  /// True once begin() ran (the active-transaction accounting needs to
  /// distinguish begun transactions from initiated-only ones).
  bool begun = false;

  /// Channel a blocked lock request sleeps on. The shard that changes
  /// this object's lock state notifies the registered waiters only.
  WaitChannel lock_wait;

  /// Condition variable (paired with the global kernel mutex) that
  /// blocked lifecycle primitives — Begin's dependency gate, Commit,
  /// Wait, Abort — sleep on. Status transitions notify the TDs that can
  /// actually make progress: dependents, group members, and waiters on
  /// this transaction.
  std::condition_variable lifecycle_cv;

  /// Number of threads currently sleeping on (or about to sleep on) this
  /// TD's channels outside the global mutex. Incremented under the
  /// global mutex; decremented with a plain atomic store-release.
  /// CollectLocked skips pinned TDs, so a woken sleeper always finds its
  /// TD alive.
  std::atomic<uint32_t> pins{0};

  /// Number of data operations currently in flight on this transaction
  /// from threads other than its own (PrepareDataOp's slow path; the
  /// caller-driven session transactions always count here). Incremented
  /// under the global kernel mutex; decremented (seq_cst, pairing with
  /// the closure walk's status-store / op_pins-load) when the operation
  /// finishes. While non-zero, FinishAbortClosureLocked defers the
  /// physical abort of any closure containing this transaction — locks
  /// must not be released and undo must not run under an operation that
  /// is still latching objects and registering undo records. The last
  /// unpin of an aborting transaction re-enters the closure finalization.
  std::atomic<uint32_t> op_pins{0};

  /// Why the transaction was (or is being) aborted; set by the first
  /// StartAbort cause, surfaced by the Status-returning API. Guarded by
  /// the global kernel mutex.
  std::string abort_reason;

  /// Lsn of this transaction's kCommit record, set (under the global
  /// kernel mutex) when its group's commit records are appended. Any
  /// thread that observes kCommitted and must honour strict durability
  /// waits for this lsn *after* releasing the kernel mutex.
  Lsn commit_lsn = kNullLsn;
};

/// Pins a TD against reclamation for the lifetime of the guard.
/// Construct while holding the global kernel mutex.
class TdPin {
 public:
  explicit TdPin(TransactionDescriptor* td) : td_(td) {
    td_->pins.fetch_add(1, std::memory_order_relaxed);
  }
  ~TdPin() {
    if (td_ != nullptr) td_->pins.fetch_sub(1, std::memory_order_release);
  }
  TdPin(const TdPin&) = delete;
  TdPin& operator=(const TdPin&) = delete;

 private:
  TransactionDescriptor* td_;
};

}  // namespace asset

#endif  // ASSET_CORE_DESCRIPTORS_H_
