#include "core/database.h"

namespace asset {

Result<std::unique_ptr<Database>> Database::Open() { return Open(Options()); }

Result<std::unique_ptr<Database>> Database::Open(Options options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  if (options.path.empty()) {
    db->disk_ = std::make_unique<InMemoryDiskManager>();
  } else {
    auto file = std::make_unique<FileDiskManager>(options.path);
    if (!file->status().ok()) return file->status();
    db->disk_ = std::move(file);
    // The WAL lives next to the data file; a previous process's durable
    // records are loaded so recovery below can replay them.
    ASSET_RETURN_NOT_OK(db->log_.AttachFile(options.path + ".wal"));
  }
  db->pool_ = std::make_unique<BufferPool>(
      db->disk_.get(), options.buffer_pool_pages, &db->log_);
  db->store_ = std::make_unique<ObjectStore>(db->pool_.get());
  ASSET_RETURN_NOT_OK(db->store_->Open());
  if (db->log_.durable_lsn() != kNullLsn) {
    // Reopening after a (possibly unclean) shutdown: bring the store to
    // the committed state before admitting transactions.
    ASSET_RETURN_NOT_OK(
        RecoveryManager::Recover(&db->log_, db->store_.get()).status());
  }
  db->tm_ = std::make_unique<TransactionManager>(&db->log_, db->store_.get(),
                                                 options.txn);
  return db;
}

Database::~Database() {
  // Kernel first (aborts in-flight transactions, which still reference
  // the store and log), then storage.
  tm_.reset();
}

Status Database::Checkpoint() {
  if (!tm_->WaitIdle(std::chrono::milliseconds(30000))) {
    return Status::TimedOut("checkpoint: transactions still active");
  }
  return RecoveryManager::Checkpoint(&log_, pool_.get());
}

Status Database::CrashAndRecover(RecoveryManager::Report* report) {
  // Tear down the kernel; any straggler transactions are aborted, but
  // the records that abort appends are not flushed, so the simulated
  // crash below erases them — the log reads exactly as if the power had
  // failed.
  tm_.reset();
  log_.SimulateCrash();
  pool_->DropAllUnflushed();
  ASSET_RETURN_NOT_OK(store_->Open());
  auto rec = RecoveryManager::Recover(&log_, store_.get());
  if (!rec.ok()) return rec.status();
  if (report != nullptr) *report = *rec;
  tm_ = std::make_unique<TransactionManager>(&log_, store_.get(),
                                             options_.txn);
  return Status::OK();
}

}  // namespace asset
