#include "core/database.h"

namespace asset {

Status Database::Options::Validate() const {
  if (buffer_pool_pages == 0) {
    return Status::InvalidArgument("options: buffer_pool_pages must be > 0");
  }
  if (txn.max_transactions == 0) {
    return Status::InvalidArgument("options: max_transactions must be > 0");
  }
  if (txn.commit_timeout.count() < 0) {
    return Status::InvalidArgument("options: commit_timeout is negative");
  }
  if (txn.lock.lock_timeout.count() < 0) {
    return Status::InvalidArgument("options: lock_timeout is negative");
  }
  if (txn.lock.shards == 0) {
    return Status::InvalidArgument("options: lock shards must be > 0");
  }
  if (checkpoint.interval.count() < 0) {
    return Status::InvalidArgument("options: checkpoint interval is negative");
  }
  if (checkpoint.drain_timeout.count() < 0) {
    return Status::InvalidArgument(
        "options: checkpoint drain_timeout is negative");
  }
  return Status::OK();
}

Result<std::unique_ptr<Database>> Database::Open() { return Open(Options()); }

Result<std::unique_ptr<Database>> Database::Open(Options options) {
  ASSET_RETURN_NOT_OK(options.Validate());
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  if (options.path.empty()) {
    db->disk_ = std::make_unique<InMemoryDiskManager>();
  } else {
    auto file = std::make_unique<FileDiskManager>(options.path);
    if (!file->status().ok()) return file->status();
    db->disk_ = std::move(file);
    // The WAL lives next to the data file; a previous process's durable
    // records are loaded so recovery below can replay them.
    ASSET_RETURN_NOT_OK(db->log_.AttachFile(options.path + ".wal"));
  }
  db->pool_ = std::make_unique<BufferPool>(
      db->disk_.get(), options.buffer_pool_pages, &db->log_);
  db->store_ = std::make_unique<ObjectStore>(db->pool_.get());
  ASSET_RETURN_NOT_OK(db->store_->Open());
  if (db->log_.durable_lsn() != kNullLsn) {
    // Reopening after a (possibly unclean) shutdown: bring the store to
    // the committed state before admitting transactions.
    ASSET_RETURN_NOT_OK(
        RecoveryManager::Recover(&db->log_, db->store_.get()).status());
  }
  db->tm_ = std::make_unique<TransactionManager>(&db->log_, db->store_.get(),
                                                 options.txn);
  db->StartCheckpointer();
  return db;
}

Database::~Database() {
  // Checkpointer first (it snapshots the kernel), then the kernel
  // (aborts in-flight transactions, which still reference the store and
  // log), then storage.
  StopCheckpointer();
  tm_.reset();
}

Status Database::Checkpoint() { return DoCheckpoint(); }

Status Database::DoCheckpoint() {
  std::lock_guard<std::mutex> serialize(ckpt_mu_);
  // Re-arm the byte trigger before attempting, so a failing checkpoint
  // (e.g. drain timeout) does not make the background thread retry in a
  // tight loop.
  ckpt_baseline_bytes_.store(log_.appended_bytes(), std::memory_order_relaxed);
  const int64_t ckpt_start_ns = FlightRecorder::NowNs();
  auto lsn = RecoveryManager::FuzzyCheckpoint(
      &log_, pool_.get(), [this] { return tm_->SnapshotActiveTransactions(); },
      options_.checkpoint.drain_timeout);
  if (!lsn.ok()) return lsn.status();
  int64_t ckpt_ns = FlightRecorder::NowNs() - ckpt_start_ns;
  if (ckpt_ns < 0) ckpt_ns = 0;
  tm_->stats().checkpoints.fetch_add(1, std::memory_order_relaxed);
  tm_->stats().checkpoint_latency.Record(static_cast<uint64_t>(ckpt_ns));
  tm_->recorder().Emit(TraceEventType::kCheckpoint, kNullTid, kNullTid,
                       kNullObjectId, *lsn, ckpt_ns);
  if (options_.checkpoint.truncate_wal &&
      log_.checkpoint_min_recovery_lsn() > 1) {
    auto dropped = log_.TruncatePrefix();
    if (!dropped.ok()) return dropped.status();
  }
  return Status::OK();
}

void Database::StartCheckpointer() {
  if (options_.checkpoint.interval.count() <= 0 &&
      options_.checkpoint.log_bytes_trigger == 0) {
    return;
  }
  ckpt_baseline_bytes_.store(log_.appended_bytes(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> g(ckpt_thread_mu_);
    ckpt_stop_ = false;
  }
  checkpointer_ = std::thread([this] { CheckpointerMain(); });
}

void Database::StopCheckpointer() {
  {
    std::lock_guard<std::mutex> g(ckpt_thread_mu_);
    ckpt_stop_ = true;
  }
  ckpt_cv_.notify_all();
  if (checkpointer_.joinable()) checkpointer_.join();
}

void Database::CheckpointerMain() {
  const auto interval = options_.checkpoint.interval;
  const size_t bytes_trigger = options_.checkpoint.log_bytes_trigger;
  // The byte trigger needs polling; the timer wakes on its own period.
  const auto poll = bytes_trigger > 0
                        ? std::chrono::milliseconds(20)
                        : interval;
  auto last = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lk(ckpt_thread_mu_);
  for (;;) {
    ckpt_cv_.wait_for(lk, poll, [&] { return ckpt_stop_; });
    if (ckpt_stop_) return;
    bool fire = false;
    if (interval.count() > 0 &&
        std::chrono::steady_clock::now() - last >= interval) {
      fire = true;
    }
    if (bytes_trigger > 0 &&
        log_.appended_bytes() -
                ckpt_baseline_bytes_.load(std::memory_order_relaxed) >=
            bytes_trigger) {
      fire = true;
    }
    if (!fire) continue;
    lk.unlock();
    // A failed background checkpoint (drain timeout, sticky log error)
    // is not fatal: the next trigger simply tries again.
    (void)DoCheckpoint();
    lk.lock();
    last = std::chrono::steady_clock::now();
  }
}

Status Database::CrashAndRecover(RecoveryManager::Report* report) {
  // The checkpointer references the kernel and must not observe the
  // teardown below; it is restarted once the new kernel exists.
  StopCheckpointer();
  // Tear down the kernel; any straggler transactions are aborted, but
  // the records that abort appends are not flushed, so the simulated
  // crash below erases them — the log reads exactly as if the power had
  // failed.
  tm_.reset();
  log_.SimulateCrash();
  pool_->DropAllUnflushed();
  ASSET_RETURN_NOT_OK(store_->Open());
  auto rec = RecoveryManager::Recover(&log_, store_.get());
  if (!rec.ok()) return rec.status();
  if (report != nullptr) *report = *rec;
  tm_ = std::make_unique<TransactionManager>(&log_, store_.get(),
                                             options_.txn);
  StartCheckpointer();
  return Status::OK();
}

}  // namespace asset
