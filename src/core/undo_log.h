#ifndef ASSET_CORE_UNDO_LOG_H_
#define ASSET_CORE_UNDO_LOG_H_

/// \file undo_log.h
/// Per-transaction operation responsibility and undo.
///
/// "A transaction that has invoked operations on an object but has not
/// yet committed is *responsible* for the uncommitted operations" (§2.1).
/// Each TD carries the lsns of the data operations it is responsible
/// for; delegation moves lsns between TDs (and logs the move so recovery
/// sees the same final attribution); abort installs the before images of
/// those operations in reverse order (§4.2 abort step 2), emitting
/// compensation records so crash recovery never undoes twice.

#include <cstdint>

#include "common/ids.h"
#include "common/object_set.h"
#include "common/result.h"
#include "common/status.h"
#include "core/descriptors.h"
#include "core/lock_manager.h"
#include "core/statistics.h"
#include "storage/object_store.h"
#include "storage/wal.h"

namespace asset {

/// Tracks and applies operation responsibility. All methods require the
/// kernel mutex (the TD lists they mutate are kernel state).
class UndoManager {
 public:
  UndoManager(LogManager* log, ObjectStore* store, KernelStats* stats)
      : log_(log), store_(store), stats_(stats) {}

  /// Makes `td` responsible for the data operation logged at `lsn`.
  void RecordLocked(TransactionDescriptor* td, Lsn lsn);

  /// Moves responsibility for operations on objects in `objs` from `ti`
  /// to `tj` and appends the matching delegate log record. Pass
  /// ObjectSet::All() for the delegate(ti, tj) form. Returns the number
  /// of operations moved.
  size_t DelegateLocked(TransactionDescriptor* ti, TransactionDescriptor* tj,
                        const ObjectSet& objs);

  /// Installs before images for everything `td` is responsible for, in
  /// reverse order, appending CLRs. Objects are X-latched one at a time
  /// via `locks` (later updates by cooperating transactions are lost —
  /// the paper's documented §4.2 implication). Clears the list.
  Status UndoAllLocked(TransactionDescriptor* td, LockManager* locks);

  /// Undoes several transactions in one pass: all their responsible
  /// operations merged and installed in global reverse-chronological
  /// (lsn) order. Cooperating transactions that abort together may have
  /// interleaved writes on shared objects; undoing them one transaction
  /// at a time would install stale before images (a peer's later image
  /// could resurrect aborted data). Clears every member's list.
  Status UndoSetLocked(const std::vector<TransactionDescriptor*>& tds,
                       LockManager* locks);

 private:
  /// Installs the before image of one record on behalf of `td`.
  Status UndoOneLocked(TransactionDescriptor* td, const LogRecord& rec,
                       LockManager* locks);

  LogManager* log_;
  ObjectStore* store_;
  KernelStats* stats_;
};

}  // namespace asset

#endif  // ASSET_CORE_UNDO_LOG_H_
