#include "core/introspection.h"

#include <cstdio>
#include <sstream>

namespace asset {

namespace {

/// Minimal JSON string escaper (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendTidArray(const std::vector<Tid>& tids, std::ostringstream& os) {
  os << "[";
  for (size_t i = 0; i < tids.size(); ++i) {
    if (i != 0) os << ",";
    os << tids[i];
  }
  os << "]";
}

/// ObjectSet as JSON: the string "*" for the wildcard, else an id array.
void AppendObjectSet(const ObjectSet& objs, std::ostringstream& os) {
  if (objs.IsAll()) {
    os << "\"*\"";
    return;
  }
  os << "[";
  for (size_t i = 0; i < objs.ids().size(); ++i) {
    if (i != 0) os << ",";
    os << objs.ids()[i];
  }
  os << "]";
}

void AppendHistogramMetrics(const char* name,
                            const LatencyHistogram::Snapshot& h,
                            std::ostringstream& os) {
  os << "# HELP asset_" << name << "_count Observations in the " << name
     << " latency histogram.\n"
     << "# TYPE asset_" << name << "_count counter\n"
     << "asset_" << name << "_count " << h.count << "\n"
     << "# HELP asset_" << name << "_sum_ns Summed " << name
     << " latency, nanoseconds.\n"
     << "# TYPE asset_" << name << "_sum_ns counter\n"
     << "asset_" << name << "_sum_ns " << h.sum << "\n";
  auto pct = [&](const char* p, uint64_t v) {
    os << "# HELP asset_" << name << "_p" << p << "_ns " << p
       << "th percentile " << name << " latency, nanoseconds.\n"
       << "# TYPE asset_" << name << "_p" << p << "_ns gauge\n"
       << "asset_" << name << "_p" << p << "_ns " << v << "\n";
  };
  pct("50", h.p50());
  pct("95", h.p95());
  pct("99", h.p99());
}

}  // namespace

std::string RenderKernelStateJson(const KernelStateSnapshot& snap,
                                  const WalWatermarks& wal) {
  std::ostringstream os;
  os << "{\"transactions\":[";
  for (size_t i = 0; i < snap.transactions.size(); ++i) {
    const auto& t = snap.transactions[i];
    if (i != 0) os << ",";
    os << "{\"tid\":" << t.tid << ",\"parent\":" << t.parent
       << ",\"status\":\"" << TxnStatusToString(t.status) << "\""
       << ",\"session\":" << (t.session ? "true" : "false")
       << ",\"locks_held\":" << t.locks_held
       << ",\"ops_responsible\":" << t.ops_responsible
       << ",\"commit_lsn\":" << t.commit_lsn;
    if (!t.abort_reason.empty()) {
      os << ",\"abort_reason\":\"" << JsonEscape(t.abort_reason) << "\"";
    }
    os << "}";
  }
  os << "],\"wait_for\":[";
  for (size_t i = 0; i < snap.wait_for.size(); ++i) {
    const auto& w = snap.wait_for[i];
    if (i != 0) os << ",";
    os << "{\"waiter\":" << w.waiter << ",\"oid\":" << w.oid
       << ",\"blockers\":";
    AppendTidArray(w.blockers, os);
    os << "}";
  }
  os << "],\"dependencies\":[";
  for (size_t i = 0; i < snap.dependencies.size(); ++i) {
    const Dependency& d = snap.dependencies[i];
    if (i != 0) os << ",";
    os << "{\"dependent\":" << d.dependent << ",\"dependee\":" << d.dependee
       << ",\"type\":\"" << DependencyTypeToString(d.type) << "\"}";
  }
  os << "],\"permits\":[";
  for (size_t i = 0; i < snap.permits.size(); ++i) {
    const Permit& p = snap.permits[i];
    if (i != 0) os << ",";
    os << "{\"grantor\":" << p.grantor << ",\"grantee\":" << p.grantee
       << ",\"objects\":";
    AppendObjectSet(p.objects, os);
    os << ",\"ops\":\"" << JsonEscape(p.ops.ToString()) << "\""
       << ",\"direct\":" << (p.direct ? "true" : "false") << "}";
  }
  os << "],\"last_deadlock_cycle\":";
  AppendTidArray(snap.last_deadlock_cycle, os);
  os << ",\"wal\":{\"last_lsn\":" << wal.last_lsn
     << ",\"durable_lsn\":" << wal.durable_lsn
     << ",\"checkpoint_lsn\":" << wal.checkpoint_lsn
     << ",\"min_recovery_lsn\":" << wal.min_recovery_lsn << "}}";
  return os.str();
}

std::string RenderWaitForDot(const KernelStateSnapshot& snap) {
  std::ostringstream os;
  os << "digraph wait_for {\n";
  for (const auto& t : snap.transactions) {
    os << "  t" << t.tid << " [label=\"t" << t.tid << "\\n"
       << TxnStatusToString(t.status) << "\"];\n";
  }
  for (const auto& w : snap.wait_for) {
    for (Tid b : w.blockers) {
      os << "  t" << w.waiter << " -> t" << b << " [label=\"ob "
         << w.oid << "\"];\n";
    }
  }
  // The most recently resolved deadlock, dashed: the victim's edge is
  // gone from wait_for by the time anyone dumps.
  const auto& cycle = snap.last_deadlock_cycle;
  for (size_t i = 0; i + 1 < cycle.size(); ++i) {
    os << "  t" << cycle[i] << " -> t" << cycle[i + 1]
       << " [style=dashed,color=red];\n";
  }
  if (cycle.size() > 1) {
    os << "  t" << cycle.back() << " -> t" << cycle.front()
       << " [style=dashed,color=red];\n";
  }
  os << "}\n";
  return os.str();
}

std::string RenderMetricsText(const KernelStats::Snapshot& stats,
                              const WalWatermarks& wal) {
  std::ostringstream os;
#define ASSET_METRIC_LINE(group, field, label)                        \
  os << "# HELP asset_" #group "_" #label " Kernel counter " #group   \
        "/" #label ".\n"                                              \
     << "# TYPE asset_" #group "_" #label " counter\n"                \
     << "asset_" #group "_" #label " " << stats.field << "\n";
  ASSET_KERNEL_COUNTERS(ASSET_METRIC_LINE)
#undef ASSET_METRIC_LINE
#define ASSET_METRIC_HIST(field) \
  AppendHistogramMetrics(#field, stats.field, os);
  ASSET_KERNEL_HISTOGRAMS(ASSET_METRIC_HIST)
#undef ASSET_METRIC_HIST
  auto wal_gauge = [&os](const char* name, const char* help, uint64_t v) {
    os << "# HELP " << name << ' ' << help << "\n"
       << "# TYPE " << name << " gauge\n"
       << name << ' ' << v << "\n";
  };
  wal_gauge("asset_wal_last_lsn", "Highest LSN appended to the WAL.",
            wal.last_lsn);
  wal_gauge("asset_wal_durable_lsn", "Highest LSN known durable on disk.",
            wal.durable_lsn);
  wal_gauge("asset_wal_checkpoint_lsn", "LSN of the last fuzzy checkpoint.",
            wal.checkpoint_lsn);
  wal_gauge("asset_wal_min_recovery_lsn",
            "Oldest LSN recovery would need to replay.",
            wal.min_recovery_lsn);
  return os.str();
}

}  // namespace asset
