#include "core/lock_manager.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "core/op_deadline.h"

namespace asset {

namespace {

Operation OperationFor(LockMode mode) {
  // Increments mutate the object, so for permit purposes they are
  // writes.
  return mode == LockMode::kRead ? Operation::kRead : Operation::kWrite;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

LockManager::LockManager(KernelSync* sync, PermitTable* permits,
                         const TdTable* txns, KernelStats* stats,
                         FlightRecorder* recorder, Options options)
    : sync_(sync),
      permits_(permits),
      txns_(txns),
      stats_(stats),
      recorder_(recorder),
      options_(options) {
  size_t n = RoundUpPow2(std::max<size_t>(1, options_.shards));
  shards_.resize(n);
  shard_mask_ = n - 1;
}

LockManager::Shard& LockManager::ShardFor(ObjectId oid) {
  // Fibonacci mix: sequential oids (the common allocation pattern)
  // spread evenly across partitions.
  uint64_t h = oid * 0x9E3779B97F4A7C15ull;
  return shards_[(h >> 32) & shard_mask_];
}

const LockManager::Shard& LockManager::ShardFor(ObjectId oid) const {
  uint64_t h = oid * 0x9E3779B97F4A7C15ull;
  return shards_[(h >> 32) & shard_mask_];
}

ObjectDescriptor* LockManager::GetOrCreate(Shard& shard, ObjectId oid) {
  auto it = shard.table.find(oid);
  if (it != shard.table.end()) return it->second.get();
  auto od = std::make_unique<ObjectDescriptor>(oid);
  ObjectDescriptor* raw = od.get();
  shard.table.emplace(oid, std::move(od));
  return raw;
}

ObjectDescriptor* LockManager::Find(ObjectId oid) {
  Shard& shard = ShardFor(oid);
  std::lock_guard<std::mutex> sl(shard.mu);
  auto it = shard.table.find(oid);
  return it == shard.table.end() ? nullptr : it->second.get();
}

void LockManager::NotifyWaiters(ObjectDescriptor* od) {
  if (od->waiter_tds.empty()) return;
  for (TransactionDescriptor* waiter : od->waiter_tds) {
    waiter->lock_wait.Notify();
  }
  stats_->lock_wakeups.fetch_add(od->waiter_tds.size(),
                                 std::memory_order_relaxed);
}

void LockManager::Deregister(ObjectDescriptor* od, TransactionDescriptor* td) {
  auto& w = od->waiter_tds;
  w.erase(std::remove(w.begin(), w.end(), td), w.end());
}

Status LockManager::Acquire(TransactionDescriptor* td, ObjectId oid,
                            LockMode mode) {
  if (mode == LockMode::kNone) return Status::OK();
  bool bounded = options_.lock_timeout.count() > 0;
  auto deadline = std::chrono::steady_clock::now() + options_.lock_timeout;
  // A request admitted with a deadline budget (the thread-local set by
  // its dispatcher) must not sleep past it, whatever lock_timeout says.
  if (auto op_deadline = CurrentOpDeadline()) {
    if (!bounded || *op_deadline < deadline) deadline = *op_deadline;
    bounded = true;
  }
  Shard& shard = ShardFor(oid);
  bool waited = false;
  bool registered = false;  // on the OD's waiter list (shard-latched)
  bool published = false;   // waits-for edges + sync_->lock_blocked entry
  int64_t wait_start_ns = 0;      // taken when the acquire first blocks
  Tid first_blocker = kNullTid;   // a holder we first blocked on

  // Every exit of a blocking acquire lands here: lock-wait histogram +
  // one kLockWait trace event. The uncontended path never takes a
  // timestamp and never gets here with `waited` set.
  auto record_wait = [&](LockWaitOutcome outcome) {
    if (!waited) return;
    int64_t dur = FlightRecorder::NowNs() - wait_start_ns;
    if (dur < 0) dur = 0;
    stats_->lock_wait_latency.Record(static_cast<uint64_t>(dur));
    if (recorder_ != nullptr) {
      recorder_->Emit(TraceEventType::kLockWait, td->tid, first_blocker, oid,
                      static_cast<uint64_t>(outcome), dur);
    }
  };

  // Removes our waiter registration (if any) and reclaims an OD we may
  // have left empty. Called on every exit path.
  auto deregister = [&] {
    if (!registered) return;
    std::lock_guard<std::mutex> sl(shard.mu);
    auto it = shard.table.find(oid);
    if (it != shard.table.end()) {
      Deregister(it->second.get(), td);
      MaybeReclaim(shard, oid);
    }
    registered = false;
  };
  // A blocked iteration published waits-for edges and registered in the
  // blocked set; clear both on exit.
  auto unpublish = [&] {
    if (!published) return;
    std::lock_guard<std::mutex> gl(sync_->mu);
    td->waiting_for.clear();
    td->waiting_for_oid = kNullObjectId;
    sync_->lock_blocked.erase(td);
    published = false;
  };

  for (;;) {  // the paper's "retries later starting at step 1"
    TxnStatus ts = td->status.load(std::memory_order_acquire);
    if (ts == TxnStatus::kAborting || ts == TxnStatus::kAborted) {
      deregister();
      unpublish();
      record_wait(LockWaitOutcome::kAborted);
      return Status::TxnAborted("transaction " + std::to_string(td->tid) +
                                " is aborting");
    }

    // Snapshot our channel's generation BEFORE inspecting the lock
    // state. Lock releases are guarded by the shard latch, but permits
    // and delegations are not: they mutate state under the global mutex
    // only. Snapshotting first makes the order snapshot -> check ->
    // sleep, so any notification issued after the snapshot (and thus
    // possibly for a change our check missed) bumps the sequence and the
    // sleep returns immediately. Only an iteration that can sleep needs
    // the snapshot: the first blocked iteration re-checks instead of
    // sleeping (below), so `published` is always true by the time a
    // sleep can happen — and uncontended acquires skip the channel
    // entirely.
    const uint64_t seq = published ? td->lock_wait.sequence() : 0;

    std::vector<Tid> blockers;
    bool granted = false;
    bool frozen = false;
    {
      std::lock_guard<std::mutex> sl(shard.mu);
      ObjectDescriptor* od = GetOrCreate(shard, oid);

      LockRequestDescriptor* own = nullptr;
      for (auto& lrd : od->granted) {
        if (lrd->td == td) {
          own = lrd.get();
          break;
        }
      }
      // Step 1a: our own unsuspended lock covering the request.
      if (own != nullptr && !own->suspended &&
          LockModeCovers(own->mode, mode)) {
        if (registered) {
          Deregister(od, td);
          registered = false;
        }
        granted = true;
      } else {
        // The mode the grant will carry: re-asserting a suspended lock
        // keeps its strength, an upgrade raises it.
        const LockMode needed =
            own != nullptr ? JoinLockModes(own->mode, mode) : mode;

        // Step 1b: scan other holders; permitted conflicts get
        // suspended, unpermitted ones block us. A lock that is already
        // suspended still blocks requesters its holder has NOT
        // permitted — suspension only cancels the "covers" property for
        // the holder itself, it does not surrender the object to the
        // world.
        std::vector<LockRequestDescriptor*> to_suspend;
        for (auto& lrd : od->granted) {
          if (lrd->td == td) continue;
          if (!LockModesConflict(lrd->mode, needed)) continue;
          stats_->permit_checks.fetch_add(1, std::memory_order_relaxed);
          if (permits_->Permits(lrd->td->tid, td->tid, oid,
                                OperationFor(needed))) {
            stats_->permit_hits.fetch_add(1, std::memory_order_relaxed);
            if (!lrd->suspended) to_suspend.push_back(lrd.get());
          } else {
            blockers.push_back(lrd->td->tid);
          }
        }

        if (blockers.empty()) {
          // Step 2: grant.
          for (LockRequestDescriptor* lrd : to_suspend) {
            lrd->suspended = true;
            stats_->lock_suspensions.fetch_add(1, std::memory_order_relaxed);
          }
          if (own != nullptr) {
            own->mode = needed;
            own->suspended = false;
          } else {
            auto lrd = std::make_unique<LockRequestDescriptor>();
            lrd->td = td;
            lrd->od = od;
            lrd->mode = needed;
            lrd->suspended = false;
            {
              std::lock_guard<std::mutex> ll(td->lrds_mu);
              if (td->locks_frozen) {
                // Terminated out from under us: the lock list is dead.
                frozen = true;
              } else {
                td->lrds.push_back(lrd.get());
              }
            }
            if (!frozen) od->granted.push_back(std::move(lrd));
          }
          if (!frozen) {
            if (registered) {
              Deregister(od, td);
              registered = false;
            }
            granted = true;
          } else {
            if (registered) {
              Deregister(od, td);
              registered = false;
            }
            MaybeReclaim(shard, oid);
          }
        } else {
          // Register interest while still holding the shard latch, so a
          // release between here and the sleep notifies us.
          if (!registered) {
            od->waiter_tds.push_back(td);
            registered = true;
          }
        }
      }
    }

    if (granted) {
      unpublish();
      stats_->locks_granted.fetch_add(1, std::memory_order_relaxed);
      record_wait(LockWaitOutcome::kGranted);
      return Status::OK();
    }
    if (frozen) {
      unpublish();
      record_wait(LockWaitOutcome::kAborted);
      return Status::TxnAborted("transaction " + std::to_string(td->tid) +
                                " terminated during lock acquisition");
    }

    // Block. Publish the waits-for edges and register in the blocked set
    // (under the global mutex, shard latch released) so the deadlock
    // check, other requesters, and permit/delegation wakeups can see us.
    const bool first_publish = !published;
    {
      std::lock_guard<std::mutex> gl(sync_->mu);
      td->waiting_for = blockers;
      td->waiting_for_oid = oid;
      sync_->lock_blocked.insert(td);
      published = true;
      if (options_.detect_deadlocks &&
          DeadlockDetector::WouldDeadlock(td, *txns_)) {
        // Name the cycle for introspection before resolving it — the
        // victim's edges below are what close it.
        sync_->last_deadlock_cycle = DeadlockDetector::FindCycle(*txns_);
        td->waiting_for.clear();
        td->waiting_for_oid = kNullObjectId;
        sync_->lock_blocked.erase(td);
        published = false;
        stats_->deadlocks.fetch_add(1, std::memory_order_relaxed);
        // fallthrough to deregister outside the global mutex
        blockers.clear();
      }
    }
    if (blockers.empty()) {  // deadlock detected above
      deregister();
      record_wait(LockWaitOutcome::kDeadlock);
      return Status::Deadlock("lock on object " + std::to_string(oid) +
                              " would deadlock transaction " +
                              std::to_string(td->tid));
    }
    if (!waited) {
      stats_->lock_waits.fetch_add(1, std::memory_order_relaxed);
      waited = true;
      wait_start_ns = FlightRecorder::NowNs();
      first_blocker = blockers.front();
    }
    if (first_publish) {
      // A permit inserted (and its wakeup issued) between our lock-state
      // check and the registration above would not have notified us:
      // the wakeup scans only the blocked set. Re-run the check once
      // before the first sleep; from now on we are registered before
      // every snapshot, so nothing can slip through.
      continue;
    }
    if (!td->lock_wait.WaitChanged(seq, deadline, bounded)) {
      deregister();
      unpublish();
      stats_->lock_timeouts.fetch_add(1, std::memory_order_relaxed);
      record_wait(LockWaitOutcome::kTimeout);
      return Status::TimedOut("lock on object " + std::to_string(oid) +
                              " timed out for transaction " +
                              std::to_string(td->tid));
    }
    stats_->lock_wait_retries.fetch_add(1, std::memory_order_relaxed);
  }
}

void LockManager::ReleaseAll(TransactionDescriptor* td) {
  // Freeze and take the lock list in one step; a racing grant that
  // misses the snapshot sees locks_frozen and gives up.
  std::vector<LockRequestDescriptor*> mine;
  {
    std::lock_guard<std::mutex> ll(td->lrds_mu);
    td->locks_frozen = true;
    mine.swap(td->lrds);
  }
  if (mine.empty()) return;

  // Group by shard so each partition is latched once.
  std::unordered_map<Shard*, std::vector<LockRequestDescriptor*>> by_shard;
  for (LockRequestDescriptor* lrd : mine) {
    by_shard[&ShardFor(lrd->od->oid)].push_back(lrd);
  }
  for (auto& [shard, lrds] : by_shard) {
    std::lock_guard<std::mutex> sl(shard->mu);
    std::unordered_set<ObjectDescriptor*> touched;
    for (LockRequestDescriptor* lrd : lrds) {
      ObjectDescriptor* od = lrd->od;
      touched.insert(od);
      auto& granted = od->granted;
      granted.erase(std::remove_if(granted.begin(), granted.end(),
                                   [&](const auto& p) {
                                     return p.get() == lrd;
                                   }),
                    granted.end());
    }
    // Wake the registered waiters while still holding the shard latch:
    // registration (and thus the waiter TDs) cannot change under us.
    for (ObjectDescriptor* od : touched) {
      NotifyWaiters(od);
      MaybeReclaim(*shard, od->oid);
    }
  }
}

size_t LockManager::Delegate(TransactionDescriptor* ti,
                             TransactionDescriptor* tj,
                             const ObjectSet& objs) {
  // Snapshot under the leaf mutex; the global kernel mutex (held by our
  // caller) serializes delegation against release, so entries cannot be
  // freed behind the snapshot.
  std::vector<LockRequestDescriptor*> snapshot;
  {
    std::lock_guard<std::mutex> ll(ti->lrds_mu);
    snapshot = ti->lrds;
  }
  size_t moved = 0;
  for (LockRequestDescriptor* lrd : snapshot) {
    ObjectId oid = lrd->od->oid;
    if (!objs.Contains(oid)) continue;
    Shard& shard = ShardFor(oid);
    std::lock_guard<std::mutex> sl(shard.mu);
    ObjectDescriptor* od = lrd->od;

    // Does tj already hold a lock on this object? Merge.
    LockRequestDescriptor* existing = nullptr;
    for (auto& g : od->granted) {
      if (g->td == tj) {
        existing = g.get();
        break;
      }
    }
    // Detach from ti before the merge possibly frees the LRD, so no
    // reader of ti->lrds can ever see a dangling entry.
    {
      std::lock_guard<std::mutex> ll(ti->lrds_mu);
      auto& v = ti->lrds;
      v.erase(std::remove(v.begin(), v.end(), lrd), v.end());
    }
    if (existing != nullptr) {
      existing->mode = JoinLockModes(existing->mode, lrd->mode);
      existing->suspended = existing->suspended && lrd->suspended;
      auto& granted = od->granted;
      granted.erase(std::remove_if(granted.begin(), granted.end(),
                                   [&](const auto& p) {
                                     return p.get() == lrd;
                                   }),
                    granted.end());
    } else {
      lrd->td = tj;
      std::lock_guard<std::mutex> ll(tj->lrds_mu);
      tj->lrds.push_back(lrd);
    }
    // The delegatee may permit (or be) a blocked requester; let the
    // object's waiters re-evaluate.
    NotifyWaiters(od);
    ++moved;
  }
  if (moved > 0) {
    stats_->locks_delegated.fetch_add(moved, std::memory_order_relaxed);
  }
  return moved;
}

ObjectSet LockManager::LockedObjects(TransactionDescriptor* td) const {
  std::lock_guard<std::mutex> ll(td->lrds_mu);
  std::vector<ObjectId> ids;
  ids.reserve(td->lrds.size());
  for (const LockRequestDescriptor* lrd : td->lrds) {
    ids.push_back(lrd->od->oid);
  }
  return ObjectSet(std::move(ids));
}

LockMode LockManager::HeldMode(TransactionDescriptor* td, ObjectId oid) const {
  std::lock_guard<std::mutex> ll(td->lrds_mu);
  for (const LockRequestDescriptor* lrd : td->lrds) {
    if (lrd->od->oid == oid) return lrd->mode;
  }
  return LockMode::kNone;
}

bool LockManager::IsSuspended(TransactionDescriptor* td, ObjectId oid) const {
  std::lock_guard<std::mutex> ll(td->lrds_mu);
  for (const LockRequestDescriptor* lrd : td->lrds) {
    if (lrd->od->oid == oid) return lrd->suspended;
  }
  return false;
}

size_t LockManager::NumObjects() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> sl(shard.mu);
    n += shard.table.size();
  }
  return n;
}

void LockManager::MaybeReclaim(Shard& shard, ObjectId oid) {
  auto it = shard.table.find(oid);
  if (it == shard.table.end()) return;
  if (it->second->granted.empty() && it->second->waiter_tds.empty()) {
    shard.table.erase(it);
  }
}

}  // namespace asset
