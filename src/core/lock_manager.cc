#include "core/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace asset {

namespace {

Operation OperationFor(LockMode mode) {
  // Increments mutate the object, so for permit purposes they are
  // writes.
  return mode == LockMode::kRead ? Operation::kRead : Operation::kWrite;
}

}  // namespace

ObjectDescriptor* LockManager::GetOrCreateLocked(ObjectId oid) {
  auto it = table_.find(oid);
  if (it != table_.end()) return it->second.get();
  auto od = std::make_unique<ObjectDescriptor>(oid);
  ObjectDescriptor* raw = od.get();
  table_.emplace(oid, std::move(od));
  return raw;
}

ObjectDescriptor* LockManager::FindLocked(ObjectId oid) {
  auto it = table_.find(oid);
  return it == table_.end() ? nullptr : it->second.get();
}

Status LockManager::Acquire(TransactionDescriptor* td, ObjectId oid,
                            LockMode mode) {
  if (mode == LockMode::kNone) return Status::OK();
  std::unique_lock<std::mutex> lock(sync_->mu);
  const auto deadline = std::chrono::steady_clock::now() +
                        options_.lock_timeout;
  bool waited = false;

  for (;;) {  // the paper's "retries later starting at step 1"
    if (td->status == TxnStatus::kAborting ||
        td->status == TxnStatus::kAborted) {
      return Status::TxnAborted("transaction " + std::to_string(td->tid) +
                                " is aborting");
    }
    ObjectDescriptor* od = GetOrCreateLocked(oid);

    LockRequestDescriptor* own = nullptr;
    for (auto& lrd : od->granted) {
      if (lrd->td == td) {
        own = lrd.get();
        break;
      }
    }
    // Step 1a: our own unsuspended lock covering the request.
    if (own != nullptr && !own->suspended && LockModeCovers(own->mode, mode)) {
      return Status::OK();
    }

    // The mode the grant will carry: re-asserting a suspended lock keeps
    // its strength, an upgrade raises it.
    const LockMode needed =
        own != nullptr ? JoinLockModes(own->mode, mode) : mode;

    // Step 1b: scan other holders; permitted conflicts get suspended,
    // unpermitted ones block us. A lock that is already suspended still
    // blocks requesters its holder has NOT permitted — suspension only
    // cancels the "covers" property for the holder itself, it does not
    // surrender the object to the world.
    std::vector<LockRequestDescriptor*> to_suspend;
    std::vector<Tid> blockers;
    for (auto& lrd : od->granted) {
      if (lrd->td == td) continue;
      if (!LockModesConflict(lrd->mode, needed)) continue;
      stats_->permit_checks.fetch_add(1, std::memory_order_relaxed);
      if (permits_->Permits(lrd->td->tid, td->tid, oid,
                            OperationFor(needed))) {
        stats_->permit_hits.fetch_add(1, std::memory_order_relaxed);
        if (!lrd->suspended) to_suspend.push_back(lrd.get());
      } else {
        blockers.push_back(lrd->td->tid);
      }
    }

    if (blockers.empty()) {
      // Step 2: grant.
      for (LockRequestDescriptor* lrd : to_suspend) {
        lrd->suspended = true;
        stats_->lock_suspensions.fetch_add(1, std::memory_order_relaxed);
      }
      if (own != nullptr) {
        own->mode = needed;
        own->suspended = false;
      } else {
        auto lrd = std::make_unique<LockRequestDescriptor>();
        lrd->td = td;
        lrd->od = od;
        lrd->mode = needed;
        lrd->suspended = false;
        td->lrds.push_back(lrd.get());
        od->granted.push_back(std::move(lrd));
      }
      stats_->locks_granted.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }

    // Block. Record the waits-for edges first so the deadlock check and
    // other requesters can see them.
    td->waiting_for = blockers;
    if (options_.detect_deadlocks &&
        DeadlockDetector::WouldDeadlock(td, *txns_)) {
      td->waiting_for.clear();
      stats_->deadlocks.fetch_add(1, std::memory_order_relaxed);
      return Status::Deadlock("lock on object " + std::to_string(oid) +
                              " would deadlock transaction " +
                              std::to_string(td->tid));
    }
    if (!waited) {
      stats_->lock_waits.fetch_add(1, std::memory_order_relaxed);
      waited = true;
    }
    od->waiters++;
    bool timed_out = false;
    if (options_.lock_timeout.count() == 0) {
      sync_->cv.wait(lock);
    } else {
      timed_out = sync_->cv.wait_until(lock, deadline) ==
                  std::cv_status::timeout;
    }
    od->waiters--;
    td->waiting_for.clear();
    if (timed_out) {
      stats_->lock_timeouts.fetch_add(1, std::memory_order_relaxed);
      return Status::TimedOut("lock on object " + std::to_string(oid) +
                              " timed out for transaction " +
                              std::to_string(td->tid));
    }
  }
}

void LockManager::ReleaseAllLocked(TransactionDescriptor* td) {
  for (LockRequestDescriptor* lrd : td->lrds) {
    ObjectDescriptor* od = lrd->od;
    auto& granted = od->granted;
    granted.erase(std::remove_if(granted.begin(), granted.end(),
                                 [&](const auto& p) {
                                   return p.get() == lrd;
                                 }),
                  granted.end());
    MaybeReclaimLocked(od->oid);
  }
  td->lrds.clear();
  sync_->cv.notify_all();
}

size_t LockManager::DelegateLocked(TransactionDescriptor* ti,
                                   TransactionDescriptor* tj,
                                   const ObjectSet& objs) {
  size_t moved = 0;
  std::vector<LockRequestDescriptor*> remaining;
  remaining.reserve(ti->lrds.size());
  for (LockRequestDescriptor* lrd : ti->lrds) {
    if (!objs.Contains(lrd->od->oid)) {
      remaining.push_back(lrd);
      continue;
    }
    // Does tj already hold a lock on this object? Merge.
    LockRequestDescriptor* existing = nullptr;
    for (LockRequestDescriptor* other : tj->lrds) {
      if (other->od == lrd->od) {
        existing = other;
        break;
      }
    }
    if (existing != nullptr) {
      existing->mode = JoinLockModes(existing->mode, lrd->mode);
      existing->suspended = existing->suspended && lrd->suspended;
      auto& granted = lrd->od->granted;
      granted.erase(std::remove_if(granted.begin(), granted.end(),
                                   [&](const auto& p) {
                                     return p.get() == lrd;
                                   }),
                    granted.end());
    } else {
      lrd->td = tj;
      tj->lrds.push_back(lrd);
    }
    ++moved;
  }
  ti->lrds = std::move(remaining);
  if (moved > 0) {
    stats_->locks_delegated.fetch_add(moved, std::memory_order_relaxed);
    sync_->cv.notify_all();
  }
  return moved;
}

ObjectSet LockManager::LockedObjectsLocked(
    const TransactionDescriptor* td) const {
  std::vector<ObjectId> ids;
  ids.reserve(td->lrds.size());
  for (const LockRequestDescriptor* lrd : td->lrds) {
    ids.push_back(lrd->od->oid);
  }
  return ObjectSet(std::move(ids));
}

LockMode LockManager::HeldModeLocked(const TransactionDescriptor* td,
                                     ObjectId oid) const {
  for (const LockRequestDescriptor* lrd : td->lrds) {
    if (lrd->od->oid == oid) return lrd->mode;
  }
  return LockMode::kNone;
}

bool LockManager::IsSuspendedLocked(const TransactionDescriptor* td,
                                    ObjectId oid) const {
  for (const LockRequestDescriptor* lrd : td->lrds) {
    if (lrd->od->oid == oid) return lrd->suspended;
  }
  return false;
}

void LockManager::MaybeReclaimLocked(ObjectId oid) {
  auto it = table_.find(oid);
  if (it == table_.end()) return;
  if (it->second->granted.empty() && it->second->waiters == 0) {
    table_.erase(it);
  }
}

}  // namespace asset
