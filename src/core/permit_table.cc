#include "core/permit_table.h"

#include <deque>
#include <mutex>
#include <shared_mutex>

namespace asset {

Status PermitTable::Insert(Tid grantor, Tid grantee, ObjectSet objects,
                           OpSet ops) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  if (grantor == kNullTid) {
    return Status::InvalidArgument("permit requires a concrete grantor");
  }
  if (objects.IsAll()) {
    return Status::InvalidArgument(
        "wildcard object sets must be expanded before insertion");
  }
  if (objects.empty() || ops.empty()) {
    return Status::OK();  // vacuous permit
  }
  if (grantor == grantee) {
    return Status::OK();  // self-permit is meaningless
  }

  // Worklist closure (§2.2 rule 3). Each element is a candidate permit;
  // on admission we chain it with existing permits in both directions.
  struct Candidate {
    Tid grantor;
    Tid grantee;
    ObjectSet objects;
    OpSet ops;
    bool direct;
  };
  std::deque<Candidate> work;
  work.push_back({grantor, grantee, std::move(objects), ops, true});
  size_t derived = 0;

  while (!work.empty()) {
    Candidate c = std::move(work.front());
    work.pop_front();
    if (c.objects.empty() || c.ops.empty()) continue;
    if (c.grantor == c.grantee) continue;
    if (SubsumedLocked(c.grantor, c.grantee, c.objects, c.ops)) continue;
    if (++derived > kMaxDerivedPerInsert) {
      return Status::ResourceExhausted(
          "permit closure exceeded kMaxDerivedPerInsert");
    }

    // Chain with existing permits before inserting, so the scans below
    // don't see the new permit itself (it cannot usefully chain with
    // itself: the result would be subsumed).
    //
    // c as the first edge: c = (a permits b); existing (b permits x)
    // yields (a permits x). Only concrete grantees chain — a wildcard
    // grantee already permits everyone directly.
    if (c.grantee != kNullTid) {
      auto it = by_grantor_.find(c.grantee);
      if (it != by_grantor_.end()) {
        for (size_t idx : it->second) {
          const Permit& q = permits_[idx];
          work.push_back({c.grantor, q.grantee,
                          c.objects.Intersect(q.objects),
                          c.ops.Intersect(q.ops), false});
        }
      }
    }
    // c as the second edge: existing (x permits a) with a == c.grantor
    // yields (x permits c.grantee). A wildcard-grantee existing permit
    // already covers c.grantee directly, so only concrete matches chain.
    {
      auto it = by_grantee_.find(c.grantor);
      if (it != by_grantee_.end()) {
        for (size_t idx : it->second) {
          const Permit& q = permits_[idx];
          work.push_back({q.grantor, c.grantee,
                          q.objects.Intersect(c.objects),
                          q.ops.Intersect(c.ops), false});
        }
      }
    }

    AddRawLocked(Permit{c.grantor, c.grantee, std::move(c.objects), c.ops,
                        c.direct});
  }
  return Status::OK();
}

bool PermitTable::Permits(Tid grantor, Tid grantee, ObjectId ob,
                          Operation op) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = by_grantor_.find(grantor);
  if (it == by_grantor_.end()) return false;
  for (size_t idx : it->second) {
    const Permit& p = permits_[idx];
    if (p.grantee != kNullTid && p.grantee != grantee) continue;
    if (!p.ops.Contains(op)) continue;
    if (!p.objects.Contains(ob)) continue;
    return true;
  }
  return false;
}

bool PermitTable::SubsumedLocked(Tid grantor, Tid grantee,
                                 const ObjectSet& objs, OpSet ops) const {
  auto it = by_grantor_.find(grantor);
  if (it == by_grantor_.end()) return false;
  for (size_t idx : it->second) {
    const Permit& p = permits_[idx];
    if (p.grantee != kNullTid && p.grantee != grantee) continue;
    if (!p.ops.Covers(ops)) continue;
    if (!p.objects.Covers(objs)) continue;
    return true;
  }
  return false;
}

void PermitTable::AddRawLocked(Permit p) {
  size_t idx = permits_.size();
  by_grantor_[p.grantor].push_back(idx);
  if (p.grantee != kNullTid) by_grantee_[p.grantee].push_back(idx);
  permits_.push_back(std::move(p));
}

void PermitTable::RemoveAllFor(Tid t) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  std::vector<Permit> kept;
  kept.reserve(permits_.size());
  for (Permit& p : permits_) {
    if (p.grantor == t || p.grantee == t) continue;
    kept.push_back(std::move(p));
  }
  permits_ = std::move(kept);
  RebuildIndexes();
}

void PermitTable::RedirectGrantor(Tid from, Tid to, const ObjectSet& objs) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  std::vector<Permit> to_add;
  for (Permit& p : permits_) {
    if (p.grantor != from) continue;
    ObjectSet moved = p.objects.Intersect(objs);
    if (moved.empty()) continue;
    ObjectSet stays = p.objects.Difference(objs);
    if (stays.empty()) {
      // Whole permit moves: (from, tk, op) becomes (to, tk, op) —
      // §4.2 delegate.
      p.grantor = to;
    } else {
      p.objects = std::move(stays);
      to_add.push_back(Permit{to, p.grantee, std::move(moved), p.ops,
                              p.direct});
    }
  }
  for (Permit& p : to_add) {
    // Bypass closure: redirected permits keep exactly the force they had.
    permits_.push_back(std::move(p));
  }
  RebuildIndexes();
  // Drop permits that now name `to` on both sides.
  bool has_self = false;
  for (const Permit& p : permits_) {
    if (p.grantor == p.grantee) {
      has_self = true;
      break;
    }
  }
  if (has_self) {
    std::vector<Permit> kept;
    kept.reserve(permits_.size());
    for (Permit& p : permits_) {
      if (p.grantor == p.grantee) continue;
      kept.push_back(std::move(p));
    }
    permits_ = std::move(kept);
    RebuildIndexes();
  }
}

std::vector<Permit> PermitTable::GivenBy(Tid t) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<Permit> out;
  auto it = by_grantor_.find(t);
  if (it == by_grantor_.end()) return out;
  for (size_t idx : it->second) out.push_back(permits_[idx]);
  return out;
}

std::vector<Permit> PermitTable::GivenTo(Tid t) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::vector<Permit> out;
  auto it = by_grantee_.find(t);
  if (it == by_grantee_.end()) return out;
  for (size_t idx : it->second) out.push_back(permits_[idx]);
  return out;
}

ObjectSet PermitTable::ObjectsPermittedTo(Tid t) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  ObjectSet out;
  for (const Permit& p : permits_) {
    if (p.grantee == t || p.grantee == kNullTid) {
      out = out.Union(p.objects);
    }
  }
  return out;
}

size_t PermitTable::direct_size() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  size_t n = 0;
  for (const Permit& p : permits_) {
    if (p.direct) ++n;
  }
  return n;
}

void PermitTable::RebuildIndexes() {
  by_grantor_.clear();
  by_grantee_.clear();
  for (size_t i = 0; i < permits_.size(); ++i) {
    by_grantor_[permits_[i].grantor].push_back(i);
    if (permits_[i].grantee != kNullTid) {
      by_grantee_[permits_[i].grantee].push_back(i);
    }
  }
}

}  // namespace asset
