#include "core/statistics.h"

#include <cstring>
#include <sstream>

namespace asset {

KernelStats::Snapshot KernelStats::snapshot() const {
  Snapshot s;
#define ASSET_LOAD_COUNTER(group, field, label) \
  s.field = field.load(std::memory_order_relaxed);
  ASSET_KERNEL_COUNTERS(ASSET_LOAD_COUNTER)
#undef ASSET_LOAD_COUNTER
#define ASSET_LOAD_HISTOGRAM(field) s.field = field.snapshot();
  ASSET_KERNEL_HISTOGRAMS(ASSET_LOAD_HISTOGRAM)
#undef ASSET_LOAD_HISTOGRAM
  return s;
}

void KernelStats::Reset() {
#define ASSET_RESET_COUNTER(group, field, label) \
  field.store(0, std::memory_order_relaxed);
  ASSET_KERNEL_COUNTERS(ASSET_RESET_COUNTER)
#undef ASSET_RESET_COUNTER
#define ASSET_RESET_HISTOGRAM(field) field.Reset();
  ASSET_KERNEL_HISTOGRAMS(ASSET_RESET_HISTOGRAM)
#undef ASSET_RESET_HISTOGRAM
}

std::string KernelStats::Snapshot::ToString() const {
  std::ostringstream os;
  // One "group{label=value ...}" clause per counter group, in macro
  // order; derived ratios ride along with their group.
  const char* open_group = nullptr;
#define ASSET_PRINT_COUNTER(group, field, label)                  \
  if (open_group == nullptr || std::strcmp(open_group, #group)) { \
    if (open_group != nullptr) {                                  \
      if (!std::strcmp(open_group, "wal")) {                      \
        os << " records_per_fsync=" << wal_records_per_fsync();   \
      }                                                           \
      os << "} ";                                                 \
    }                                                             \
    open_group = #group;                                          \
    os << #group << "{" << #label << "=" << field;                \
  } else {                                                        \
    os << " " << #label << "=" << field;                          \
  }
  ASSET_KERNEL_COUNTERS(ASSET_PRINT_COUNTER)
#undef ASSET_PRINT_COUNTER
  if (open_group != nullptr) os << "}";
#define ASSET_PRINT_HISTOGRAM(field)                                     \
  os << " " << #field << "{count=" << field.count                        \
     << " p50_ns=" << field.p50() << " p95_ns=" << field.p95()           \
     << " p99_ns=" << field.p99() << " mean_ns=" << field.mean() << "}";
  ASSET_KERNEL_HISTOGRAMS(ASSET_PRINT_HISTOGRAM)
#undef ASSET_PRINT_HISTOGRAM
  return os.str();
}

}  // namespace asset
