#include "core/statistics.h"

#include <sstream>

namespace asset {

KernelStats::Snapshot KernelStats::snapshot() const {
  Snapshot s;
  s.txns_initiated = txns_initiated.load(std::memory_order_relaxed);
  s.txns_begun = txns_begun.load(std::memory_order_relaxed);
  s.txns_committed = txns_committed.load(std::memory_order_relaxed);
  s.txns_aborted = txns_aborted.load(std::memory_order_relaxed);
  s.group_commits = group_commits.load(std::memory_order_relaxed);
  s.txn_wakeups = txn_wakeups.load(std::memory_order_relaxed);
  s.locks_granted = locks_granted.load(std::memory_order_relaxed);
  s.lock_waits = lock_waits.load(std::memory_order_relaxed);
  s.lock_suspensions = lock_suspensions.load(std::memory_order_relaxed);
  s.deadlocks = deadlocks.load(std::memory_order_relaxed);
  s.lock_timeouts = lock_timeouts.load(std::memory_order_relaxed);
  s.lock_wakeups = lock_wakeups.load(std::memory_order_relaxed);
  s.lock_wait_retries = lock_wait_retries.load(std::memory_order_relaxed);
  s.permits_inserted = permits_inserted.load(std::memory_order_relaxed);
  s.permits_derived = permits_derived.load(std::memory_order_relaxed);
  s.permit_checks = permit_checks.load(std::memory_order_relaxed);
  s.permit_hits = permit_hits.load(std::memory_order_relaxed);
  s.permit_broadcasts = permit_broadcasts.load(std::memory_order_relaxed);
  s.delegations = delegations.load(std::memory_order_relaxed);
  s.locks_delegated = locks_delegated.load(std::memory_order_relaxed);
  s.dependencies_formed = dependencies_formed.load(std::memory_order_relaxed);
  s.dependency_cycles_rejected =
      dependency_cycles_rejected.load(std::memory_order_relaxed);
  s.reads = reads.load(std::memory_order_relaxed);
  s.writes = writes.load(std::memory_order_relaxed);
  s.increments = increments.load(std::memory_order_relaxed);
  s.undo_installs = undo_installs.load(std::memory_order_relaxed);
  s.wal_appends = wal_appends.load(std::memory_order_relaxed);
  s.wal_fsyncs = wal_fsyncs.load(std::memory_order_relaxed);
  s.wal_records_flushed = wal_records_flushed.load(std::memory_order_relaxed);
  s.commit_stalls = commit_stalls.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints.load(std::memory_order_relaxed);
  s.wal_truncations = wal_truncations.load(std::memory_order_relaxed);
  s.wal_records_truncated =
      wal_records_truncated.load(std::memory_order_relaxed);
  return s;
}

void KernelStats::Reset() {
  txns_initiated = 0;
  txns_begun = 0;
  txns_committed = 0;
  txns_aborted = 0;
  group_commits = 0;
  txn_wakeups = 0;
  locks_granted = 0;
  lock_waits = 0;
  lock_suspensions = 0;
  deadlocks = 0;
  lock_timeouts = 0;
  lock_wakeups = 0;
  lock_wait_retries = 0;
  permits_inserted = 0;
  permits_derived = 0;
  permit_checks = 0;
  permit_hits = 0;
  permit_broadcasts = 0;
  delegations = 0;
  locks_delegated = 0;
  dependencies_formed = 0;
  dependency_cycles_rejected = 0;
  reads = 0;
  writes = 0;
  increments = 0;
  undo_installs = 0;
  wal_appends = 0;
  wal_fsyncs = 0;
  wal_records_flushed = 0;
  commit_stalls = 0;
  checkpoints = 0;
  wal_truncations = 0;
  wal_records_truncated = 0;
}

std::string KernelStats::Snapshot::ToString() const {
  std::ostringstream os;
  os << "txns{initiated=" << txns_initiated << " begun=" << txns_begun
     << " committed=" << txns_committed << " aborted=" << txns_aborted
     << " group_commits=" << group_commits << " wakeups=" << txn_wakeups
     << "} "
     << "locks{granted=" << locks_granted << " waits=" << lock_waits
     << " suspensions=" << lock_suspensions << " deadlocks=" << deadlocks
     << " timeouts=" << lock_timeouts << " wakeups=" << lock_wakeups
     << " wait_retries=" << lock_wait_retries << "} "
     << "permits{inserted=" << permits_inserted
     << " derived=" << permits_derived << " checks=" << permit_checks
     << " hits=" << permit_hits << " broadcasts=" << permit_broadcasts
     << "} "
     << "delegation{calls=" << delegations << " locks=" << locks_delegated
     << "} "
     << "deps{formed=" << dependencies_formed
     << " cycles_rejected=" << dependency_cycles_rejected << "} "
     << "data{reads=" << reads << " writes=" << writes
     << " increments=" << increments
     << " undo_installs=" << undo_installs << "} "
     << "wal{appends=" << wal_appends << " fsyncs=" << wal_fsyncs
     << " records_flushed=" << wal_records_flushed
     << " records_per_fsync=" << wal_records_per_fsync()
     << " commit_stalls=" << commit_stalls << "} "
     << "checkpoint{checkpoints=" << checkpoints
     << " truncations=" << wal_truncations
     << " records_truncated=" << wal_records_truncated << "}";
  return os.str();
}

}  // namespace asset
