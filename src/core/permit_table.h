#ifndef ASSET_CORE_PERMIT_TABLE_H_
#define ASSET_CORE_PERMIT_TABLE_H_

/// \file permit_table.h
/// Permit descriptors (PD) and the permit relation of §2.2.
///
/// A permit (ti, tj, ob_set, ops) lets tj perform the listed operations
/// on the listed objects even when they conflict with ti's locks, without
/// creating a serialization edge from ti to tj. The paper's PD triples
/// hang off object descriptors and are "doubly hashed on the tid of the
/// two transactions involved"; we keep them in one table with grantor and
/// grantee indexes, which provides exactly those two lookups.
///
/// Transitivity (§2.2, rule 3) — permit(ti,tj,O,P) and permit(tj,tk,O',P')
/// act as if permit(ti,tk,O∩O',P∩P') had been executed — is *materialized
/// eagerly* at insert time with a worklist, so the lock-acquisition path
/// only ever scans direct permits. (tests verify eager materialization
/// against an on-demand closure oracle.)
///
/// Thread safety: the table carries an internal reader/writer lock.
/// Mutators (Insert, RemoveAllFor, RedirectGrantor) take it exclusively
/// and are additionally serialized by the global kernel mutex at their
/// call sites; readers — most importantly Permits(), called from the
/// lock-acquisition path under only a shard latch — take it shared. The
/// lock is a leaf: nothing else is acquired while holding it.

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/object_set.h"
#include "common/op_set.h"
#include "common/result.h"
#include "common/status.h"

namespace asset {

/// One permit descriptor. grantee == kNullTid means "any transaction"
/// (the permit(ti, ob_set, operations) form).
struct Permit {
  Tid grantor = kNullTid;
  Tid grantee = kNullTid;
  ObjectSet objects;  // possibly All()
  OpSet ops;          // possibly All()
  /// False for permits synthesized by transitivity; true for permits
  /// inserted directly. Used for statistics and debugging only.
  bool direct = true;
};

/// The permit relation with eager transitive closure.
class PermitTable {
 public:
  /// Maximum permits a single Insert may synthesize before giving up
  /// (defensive bound against adversarial permit graphs).
  static constexpr size_t kMaxDerivedPerInsert = 65536;

  /// Inserts permit(grantor, grantee, objects, ops) and materializes all
  /// transitive consequences. `grantee == kNullTid` grants to everyone.
  /// Self-permits (grantor == grantee) are meaningless and dropped.
  ///
  /// `objects` must be a concrete set: the paper expands the
  /// wildcard-object permit forms at insert time over the objects the
  /// grantor has accessed or been permitted on (§4.2), and the
  /// TransactionManager performs that expansion before calling here.
  Status Insert(Tid grantor, Tid grantee, ObjectSet objects, OpSet ops);

  /// True if `grantor` (directly or transitively) permits `grantee` to
  /// perform `op` on `ob` — the check in read-lock/write-lock step 1b.
  bool Permits(Tid grantor, Tid grantee, ObjectId ob, Operation op) const;

  /// Removes every permit given by or to `t` (commit step 6 / abort).
  void RemoveAllFor(Tid t);

  /// Delegation support (§4.2 delegate): permits *given by* `from` on
  /// objects in `objs` become permits given by `to`. The wildcard
  /// delegate(ti, tj) passes ObjectSet::All().
  void RedirectGrantor(Tid from, Tid to, const ObjectSet& objs);

  /// All permits currently given by `t` (direct and derived).
  std::vector<Permit> GivenBy(Tid t) const;
  /// All permits currently given to `t` explicitly (not via wildcard).
  std::vector<Permit> GivenTo(Tid t) const;

  /// Objects named in permits given *to* `t` (explicitly or via the
  /// any-transaction wildcard) — the "has permission to access" half of
  /// the permit(ti, tj, op) expansion in §4.2.
  ObjectSet ObjectsPermittedTo(Tid t) const;

  /// Copy of every permit in the table, direct and derived
  /// (introspection; DumpState's permit listing).
  std::vector<Permit> AllPermits() const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return permits_;
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return permits_.size();
  }
  /// Number of directly-inserted permits (excludes derived ones).
  size_t direct_size() const;

 private:
  /// True if an existing permit subsumes (grantor, grantee, objs, ops).
  bool SubsumedLocked(Tid grantor, Tid grantee, const ObjectSet& objs,
                      OpSet ops) const;

  /// Appends and indexes one permit; no closure.
  void AddRawLocked(Permit p);

  void RebuildIndexes();

  /// Leaf reader/writer lock; see the file comment.
  mutable std::shared_mutex mu_;
  std::vector<Permit> permits_;
  // Index: tid -> positions in permits_. Rebuilt lazily after removals.
  std::unordered_map<Tid, std::vector<size_t>> by_grantor_;
  std::unordered_map<Tid, std::vector<size_t>> by_grantee_;
};

}  // namespace asset

#endif  // ASSET_CORE_PERMIT_TABLE_H_
