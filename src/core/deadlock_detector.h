#ifndef ASSET_CORE_DEADLOCK_DETECTOR_H_
#define ASSET_CORE_DEADLOCK_DETECTOR_H_

/// \file deadlock_detector.h
/// Waits-for-graph deadlock detection.
///
/// The paper's blocked requesters simply "block and retry"; with strict
/// two-phase holds that admits classic deadlocks, so — as a documented
/// extension (DESIGN.md S6) — the lock manager consults this detector
/// before sleeping. The victim is always the requester: its acquire
/// returns kDeadlock and the caller decides whether to abort.

#include <vector>

#include "common/ids.h"
#include "core/kernel.h"

namespace asset {

/// Stateless cycle check over the waits-for edges recorded in the TDs.
class DeadlockDetector {
 public:
  /// True if blocking `requester` (whose `waiting_for` must already name
  /// the holders it would wait on) closes a waits-for cycle through it.
  /// Caller holds the kernel mutex.
  static bool WouldDeadlock(const TransactionDescriptor* requester,
                            const TdTable& txns);

  /// All tids on some waits-for cycle (diagnostics). Caller holds the
  /// kernel mutex.
  static std::vector<Tid> FindCycle(const TdTable& txns);
};

}  // namespace asset

#endif  // ASSET_CORE_DEADLOCK_DETECTOR_H_
