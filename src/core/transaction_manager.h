#ifndef ASSET_CORE_TRANSACTION_MANAGER_H_
#define ASSET_CORE_TRANSACTION_MANAGER_H_

/// \file transaction_manager.h
/// The ASSET transaction primitives (§2) and their §4.2 algorithms.
///
/// Basic primitives: Initiate / Begin / Commit / Wait / Abort / Self /
/// Parent (§2.1). New primitives: Delegate, Permit (all four forms), and
/// FormDependency (§2.2). Data operations (Read / Write / CreateObject /
/// DeleteObject) implement the §4.2 read/write algorithms: lock, latch,
/// log before+after images, apply in the shared cache.
///
/// Error surface: the paper-faithful primitives return the paper's bare
/// `bool`/`int` codes; each has a `Status`-returning sibling
/// (BeginTxn / CommitTxn / AbortTxn) that preserves the *reason* — most
/// importantly the abort reason (deadlock victim, timeout, dependency
/// propagation, explicit abort) that the bare `false` discards. The bool
/// forms are thin wrappers over the Status forms.
///
/// Execution model: each begun transaction runs its registered function
/// on a dedicated worker thread drawn from a cached, unbounded pool
/// (ThreadCache); Self()/Parent() consult a thread-local pointer to the
/// executing TD, matching the paper's per-transaction process. Commit is
/// blocking; a transaction completes (holding its locks, changes not yet
/// persistent) when its function returns, and terminates only through
/// Commit or Abort. BeginSession() additionally supports *caller-driven*
/// transactions — no registered function, no worker thread; the caller
/// issues data operations with the returned tid from any one thread and
/// finishes with CommitTxn/AbortTxn. This is the substrate of the RAII
/// `Txn` handle on Database.
///
/// Blocking and wakeups: every blocked primitive sleeps on the specific
/// transaction it is waiting for (TD::lifecycle_cv for lifecycle waits,
/// TD::lock_wait for lock waits) and is woken by exactly the state
/// transitions that can unblock it — a terminating transaction wakes its
/// dependents, group members, and lock waiters; a new permit wakes the
/// transactions blocked on locks. See kernel.h for the lock ordering.
///
/// Volatile data must not persist across transaction boundaries (§2):
/// bind arguments by value and do not share mutable captures between
/// transaction functions.

#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/object_set.h"
#include "common/op_set.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/dependency_graph.h"
#include "core/descriptors.h"
#include "core/introspection.h"
#include "core/kernel.h"
#include "core/lock_manager.h"
#include "core/permit_table.h"
#include "core/statistics.h"
#include "core/thread_cache.h"
#include "core/undo_log.h"
#include "storage/object_store.h"
#include "storage/wal.h"

namespace asset {

/// When (relative to the ack) a commit's log records must be durable.
/// Only meaningful while Options::force_log_at_commit is true.
enum class DurabilityPolicy : uint8_t {
  /// The commit call returns only once the commit record is durable
  /// (durable_lsn >= commit_lsn). The wait happens *after* the kernel
  /// mutex is released, so concurrent committers piggyback on one
  /// flusher fsync instead of serializing the kernel behind the disk.
  kStrict,
  /// The commit call returns as soon as the commit is applied in
  /// memory; it nudges the flusher (RequestFlush) but does not wait.
  /// A crash may lose the tail of acked commits — never a prefix hole:
  /// the flusher persists in lsn order. A sticky WAL I/O failure still
  /// fails the ack (otherwise the lost tail would be unbounded).
  kRelaxed,
};

/// The transaction kernel. One instance per database.
class TransactionManager {
 public:
  struct Options {
    LockManager::Options lock;
    /// Force the log at commit (durability). Benchmarks may disable.
    bool force_log_at_commit = true;
    /// How long a commit ack may run ahead of the disk (see
    /// DurabilityPolicy). Ignored unless force_log_at_commit.
    DurabilityPolicy durability = DurabilityPolicy::kStrict;
    /// Upper bound on active (begun, unterminated) transactions; the
    /// paper's initiate returns the null tid "if no resources are
    /// available".
    size_t max_transactions = 100000;
    /// A blocking commit that cannot resolve its dependencies within
    /// this bound aborts the transaction (so its 0 return is truthful).
    /// Zero means wait forever.
    std::chrono::milliseconds commit_timeout{10000};
    /// Flight-recorder configuration. Tracing can also be toggled at
    /// runtime via recorder().set_enabled(); when disabled, the
    /// instrumentation cost is one relaxed atomic load per hook.
    TraceOptions trace;
  };

  TransactionManager(LogManager* log, ObjectStore* store, Options options);
  /// Default options.
  TransactionManager(LogManager* log, ObjectStore* store);

  /// Aborts every still-active transaction and waits for their threads.
  ~TransactionManager();

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  // --- Basic primitives (§2.1) ---------------------------------------

  /// initiate(f, args): registers a transaction that will run f(args...)
  /// when begun. Arguments are captured by value now (volatile data must
  /// not cross transaction boundaries). Returns kNullTid if the
  /// transaction table is full.
  template <typename F, typename... Args>
  Tid Initiate(F&& f, Args&&... args) {
    return InitiateFn(
        [fn = std::forward<F>(f),
         ... bound = std::forward<Args>(args)]() mutable { fn(bound...); });
  }

  /// Type-erased initiate.
  Tid InitiateFn(std::function<void()> fn);

  /// begin(t): starts execution. Returns true on success (t existed and
  /// was initiated). Paper-faithful wrapper over BeginTxn.
  bool Begin(Tid t);

  /// Status-returning begin: OK once t is running; kNotFound for an
  /// unknown tid, kIllegalState if t is not in the initiated state (or
  /// the kernel is shutting down), kTxnAborted if a begin-dependency can
  /// never be satisfied, kTimedOut if the begin-dependency gate did not
  /// open within the commit timeout.
  Status BeginTxn(Tid t);

  /// begin(t1, ..., tn): starts several transactions atomically — either
  /// every listed transaction starts or none does. The call validates
  /// (every tid known and still initiated), waits until every member's
  /// begin-dependency gate is open (bounded by the commit timeout,
  /// re-validating after every wakeup), and only then performs all the
  /// transitions to running under a single kernel-mutex hold. A
  /// concurrent Begin or Abort of any member, an unsatisfiable
  /// begin-dependency, or a gate timeout therefore fails the whole call
  /// with NO transaction started.
  bool Begin(std::initializer_list<Tid> ts);

  /// commit(t): blocking commit. Waits for t (and any group-commit
  /// peers) to complete execution and for t's dependencies to resolve.
  /// Returns true if t commits or had already committed; false if t is
  /// aborted. Paper-faithful wrapper over CommitTxn.
  bool Commit(Tid t);

  /// Status-returning commit: OK on commit; kTxnAborted (with the abort
  /// reason) if t aborted instead; kTimedOut if dependencies stayed
  /// unresolved within the commit timeout (t is aborted then, so the
  /// failure is truthful); kNotFound for a tid that never existed.
  Status CommitTxn(Tid t);

  /// wait(t): returns 1 once t's code has completed (or t committed),
  /// 0 if t has aborted. From t's own thread it reports whether t is
  /// still viable (not aborting).
  int Wait(Tid t);

  /// abort(t): returns true unless t has already committed.
  /// Paper-faithful wrapper over AbortTxn.
  bool Abort(Tid t);

  /// Status-returning abort: OK once t is (or was already) aborted;
  /// kIllegalState if t had already committed.
  Status AbortTxn(Tid t);

  /// Starts a caller-driven *session* transaction: begun immediately, no
  /// worker thread; the caller issues data operations with the returned
  /// tid and finishes with CommitTxn or AbortTxn. The RAII `Txn` handle
  /// on Database is built on this. A session transaction must be driven
  /// from one thread at a time.
  Result<Tid> BeginSession();

  /// Tid of the transaction executing on this thread, or kNullTid.
  static Tid Self();

  /// Tid of the parent (initiating) transaction of the transaction
  /// executing on this thread; kNullTid for top-level transactions.
  static Tid Parent();

  /// Parent of an arbitrary transaction.
  Tid ParentOf(Tid t) const;

  /// Status query (the paper mentions "primitives to query the status
  /// of transactions, for instance, to determine whether a transaction
  /// has aborted" without detailing them; these are ours).
  TxnStatus GetStatus(Tid t) const;

  /// True iff t has committed.
  bool IsCommitted(Tid t) const { return GetStatus(t) == TxnStatus::kCommitted; }

  /// True iff t has aborted or is in the middle of aborting.
  bool IsAborted(Tid t) const {
    TxnStatus s = GetStatus(t);
    return s == TxnStatus::kAborted || s == TxnStatus::kAborting;
  }

  /// True iff t has begun and not yet terminated (§2.1's "active").
  bool IsActiveTxn(Tid t) const { return IsActive(GetStatus(t)); }

  /// True iff t's code has finished but t is not yet terminated — the
  /// §2.1 "completed" window in which locks are held and changes are
  /// volatile.
  bool IsCompleted(Tid t) const {
    TxnStatus s = GetStatus(t);
    return s == TxnStatus::kCompleted || s == TxnStatus::kCommitting;
  }

  // --- New primitives (§2.2) ------------------------------------------

  /// delegate(ti, tj, ob_set): ti transfers to tj the responsibility for
  /// ti's operations on objects in `objs` — their locks, their permits
  /// given, and their undo/redo attribution.
  Status Delegate(Tid ti, Tid tj, const ObjectSet& objs);

  /// delegate(ti, tj): everything ti is responsible for.
  Status Delegate(Tid ti, Tid tj);

  /// permit(ti, tj, ob_set, operations).
  Status Permit(Tid ti, Tid tj, const ObjectSet& objs, OpSet ops);

  /// permit(ti, tj, operations): any object ti accessed or is permitted
  /// on (§4.2 expansion).
  Status Permit(Tid ti, Tid tj, OpSet ops);

  /// permit(ti, tj): any operation on any such object.
  Status Permit(Tid ti, Tid tj);

  /// permit(ti, ob_set, operations): any transaction.
  Status PermitAny(Tid ti, const ObjectSet& objs, OpSet ops);

  /// form_dependency(type, ti, tj): tj becomes dependent on ti.
  Status FormDependency(DependencyType type, Tid ti, Tid tj);

  // --- Data operations (§4.2 read/write) -------------------------------

  /// read(t, ob): read-lock, S-latch, copy out.
  Result<std::vector<uint8_t>> Read(Tid t, ObjectId oid);

  /// write(t, ob): write-lock, X-latch, log before/after images, apply.
  Status Write(Tid t, ObjectId oid, std::span<const uint8_t> data);

  /// Creates a new object owned (and write-locked) by t.
  Result<ObjectId> CreateObject(Tid t, std::span<const uint8_t> data);

  /// Deletes an object (write-locked; before image logged).
  Status DeleteObject(Tid t, ObjectId oid);

  // --- Semantic operations (paper §5 future work) -----------------------
  //
  // Counters support commutative increments: increment locks are
  // compatible with each other, so concurrent adders never block or
  // conflict; undo is logical (the negated delta), so aborting one
  // adder does not erase the others' committed additions.

  /// Creates a counter object initialized to `initial`, write-locked by
  /// t like any create.
  Result<ObjectId> CreateCounter(Tid t, int64_t initial);

  /// Adds `delta` under an increment lock. Conflicts only with readers
  /// and writers, never with other increments.
  Status Increment(Tid t, ObjectId oid, int64_t delta);

  /// Reads the counter's value under a read lock (serializing against
  /// in-flight increments, as §5's semantics require).
  Result<int64_t> ReadCounter(Tid t, ObjectId oid);

  // --- Introspection ----------------------------------------------------

  KernelStats& stats() { return stats_; }
  LockManager& lock_manager() { return locks_; }

  /// The kernel's flight recorder: per-thread rings of timestamped
  /// kernel events, drainable as Chrome trace JSON. Always present;
  /// recording is governed by Options::trace.enabled / set_enabled().
  FlightRecorder& recorder() { return recorder_; }

  /// Consistent snapshot of the kernel's control structures — TD table,
  /// lock wait-for edges, dependency graph, permits, last deadlock
  /// cycle — taken under one kernel-mutex hold. Render with
  /// RenderKernelStateJson / RenderWaitForDot (introspection.h).
  KernelStateSnapshot SnapshotState() const;

  /// Count of begun-but-unterminated transactions.
  size_t ActiveTransactions() const;

  /// Blocks until no transaction is active (for quiescent checkpoints).
  /// False if `timeout` elapsed first (zero = wait forever).
  bool WaitIdle(std::chrono::milliseconds timeout =
                    std::chrono::milliseconds(0)) const;

  /// The active-transaction table for a fuzzy checkpoint: every begun,
  /// unterminated transaction with a copy of the lsns of the data
  /// operations it is responsible for (delegation folded in). One
  /// kernel-mutex hold, so the snapshot is atomic with respect to
  /// begin, commit, abort, and delegation.
  std::vector<FuzzyCheckpointImage::TxnEntry> SnapshotActiveTransactions()
      const;

  /// Direct access for white-box tests.
  PermitTable& permit_table_for_test() { return permit_table_; }
  DependencyGraph& dependency_graph_for_test() { return deps_; }
  KernelSync& sync_for_test() { return sync_; }

 private:
  enum class CommitEval { kCommit, kAbort, kWait };

  /// Pinned reference to a TD for the duration of one data operation;
  /// unpins on destruction. The fast path (own transaction) needs no
  /// pin: a TD cannot be reclaimed while its thread runs. A pinned ref
  /// additionally holds an op pin (TD::op_pins), which defers any
  /// closure-abort finalization involving this transaction until the
  /// operation is out of the kernel; the destructor of the last op pin
  /// of an aborting transaction completes the deferred physical abort.
  struct TxnRef {
    TransactionManager* mgr = nullptr;
    TransactionDescriptor* td = nullptr;
    bool pinned = false;
    ~TxnRef();
  };

  TransactionDescriptor* FindLocked(Tid t) const;
  TxnStatus StatusOfLocked(Tid t) const;

  /// Evaluates t's begin-dependency gate without blocking. Returns OK
  /// with *blocked=false when every begin-dependency is satisfied, OK
  /// with *blocked=true when one is merely not yet satisfied, and an
  /// error when one can never be satisfied (the dependee aborted).
  Status EvalBeginGateLocked(Tid t, bool* blocked) const;

  /// Transitions an initiated `td` to running: status, accounting, begin
  /// log record, and the dependent wakeups. The caller submits
  /// ThreadMain afterwards (outside the mutex).
  void StartRunningLocked(TransactionDescriptor* td);

  /// Resolves `t` to a running TD for a data operation. Fast path: when
  /// the calling thread IS the transaction, only an atomic status check
  /// (no kernel mutex). Slow path: look up and pin under the mutex.
  /// `distinguish_aborted` selects kTxnAborted (vs kIllegalState) for
  /// aborting transactions, matching the per-op error contracts.
  Status PrepareDataOp(Tid t, const char* what, bool distinguish_aborted,
                       TxnRef* out);

  /// Evaluates the §4.2 commit algorithm for `td` under the kernel
  /// mutex; on kCommit fills `group` with the GC component to commit
  /// simultaneously.
  CommitEval EvaluateCommitLocked(TransactionDescriptor* td,
                                  std::vector<TransactionDescriptor*>* group);

  /// Commits `group` simultaneously (log records, release locks/permits,
  /// drop dependencies) and wakes everything that observed the members:
  /// their lifecycle waiters, their dependents, their lock waiters.
  /// Appends the members' commit records but performs NO flush — the
  /// kernel mutex is never held across device I/O. Returns the group's
  /// highest commit-record lsn; the caller waits for it durably via
  /// AwaitCommitDurable *after* releasing the mutex.
  Lsn CommitGroupLocked(const std::vector<TransactionDescriptor*>& group);

  /// The durability side of the commit ack, run with the kernel mutex
  /// RELEASED: no-op when the log is not forced at commit; a flusher
  /// nudge under DurabilityPolicy::kRelaxed; a WaitDurable(commit_lsn)
  /// sleep under kStrict. A flush failure surfaces here as the commit's
  /// return Status (the commit is applied in memory regardless). `t` is
  /// the committing transaction, for the commit-stall trace event.
  Status AwaitCommitDurable(Tid t, Lsn commit_lsn);

  /// Marks `td` aborting (recording `reason` as its abort reason if none
  /// is set yet) and wakes its observers: its lifecycle waiters, a lock
  /// wait of its own, and its commit group. Marking only — no undo.
  void MarkAbortingLocked(TransactionDescriptor* td, std::string reason);

  /// Marks `td` aborting and drives the physical abort of its doomed
  /// closure as far as currently possible (see FinishAbortClosureLocked).
  void StartAbortLocked(TransactionDescriptor* td, std::string reason);

  /// §4.2 abort steps 2-6, over the whole doomed closure at once.
  /// Collects every transaction transitively doomed by `seed`'s abort
  /// (following AD/GC/BCD and unsatisfied-BD edges; CDs dissolve),
  /// marks them aborting, and — once no member's thread is still
  /// running and no member has a data operation in flight (op_pins) —
  /// undoes all members' operations in one merged reverse-chronological
  /// pass and finalizes each. While any doomed member still runs or has
  /// an op in flight, finalization is deferred: that member's thread
  /// exit (or last op unpin) re-enters here and completes the closure.
  /// The deferral keeps cross-transaction undo ordered when cooperating
  /// transactions with interleaved writes abort together, and keeps
  /// lock release / undo from running under a concurrent data operation
  /// on a session transaction.
  void FinishAbortClosureLocked(TransactionDescriptor* seed);

  /// Post-undo bookkeeping for one closure member: abort log record,
  /// lock/permit/dependency release, final status, notifications.
  void FinalizeAbortLocked(TransactionDescriptor* td);

  /// Lock acquisition for a data op. A deadlock or timeout is fatal to
  /// the transaction under strict 2PL: the transaction is marked
  /// aborting so a later commit cannot publish partial effects.
  Status AcquireOrDoom(TransactionDescriptor* td, ObjectId oid,
                       LockMode mode);

  /// Body run on each transaction's thread.
  void ThreadMain(TransactionDescriptor* td);

  /// Reclaims TDs that are terminated with exited threads and no pins.
  void CollectLocked();

  // --- Targeted wakeups (all under the kernel mutex) -------------------

  /// Wakes the lifecycle waiters of `td` (Begin gates, Commit, Wait,
  /// Abort sleepers targeting this transaction).
  void NotifyTxnLocked(TransactionDescriptor* td);
  /// Wakes the transactions *dependent on* `t` — their begin gates and
  /// commit evaluations may have just been unblocked.
  void WakeDependentsLocked(Tid t);
  /// Wakes the lifecycle waiters of `t`'s group-commit component
  /// (excluding `t` itself): a member's status change re-triggers the
  /// peers' commit evaluation.
  void WakeGroupLocked(Tid t);
  /// Wakes every transaction currently blocked on a lock: a new or
  /// redirected permit can admit any of them.
  void WakeLockWaitersLocked();

  /// `td`'s abort reason, or a generic fallback.
  static std::string AbortReasonLocked(const TransactionDescriptor* td);

  Options options_;
  LogManager* log_;
  ObjectStore* store_;

  mutable KernelSync sync_;
  KernelStats stats_;
  /// Declared before locks_: the LockManager holds a pointer to it.
  FlightRecorder recorder_;
  PermitTable permit_table_;
  DependencyGraph deps_;
  TdTable txns_;
  LockManager locks_;
  /// Runs transaction bodies on cached worker threads.
  ThreadCache executor_;
  UndoManager undo_;

  /// Terminal statuses of reclaimed TDs.
  std::unordered_map<Tid, TxnStatus> tombstones_;
  Tid next_tid_ = 1;
  size_t active_count_ = 0;        // begun, not yet terminated
  size_t live_threads_ = 0;        // threads between Begin and thread_exited
  size_t unterminated_count_ = 0;  // initiated or active (admission control)
  bool shutting_down_ = false;
};

}  // namespace asset

#endif  // ASSET_CORE_TRANSACTION_MANAGER_H_
