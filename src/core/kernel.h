#ifndef ASSET_CORE_KERNEL_H_
#define ASSET_CORE_KERNEL_H_

/// \file kernel.h
/// Shared kernel state: the (now small) global kernel mutex, the per-TD
/// wait channel used for targeted wakeups, and the transaction-descriptor
/// table type.
///
/// The paper latches individual control structures (§4.1). The kernel is
/// organized the same way:
///
///  - The lock table is *sharded*: object descriptors are partitioned by
///    ObjectId hash into N independently-latched partitions
///    (LockManager). Lock acquisition, release, and delegation touch only
///    the shards of the objects involved.
///  - Each TransactionDescriptor carries its own wait channels: a
///    `lock_wait` WaitChannel for blocked lock requests and a
///    `lifecycle_cv` (paired with the global mutex) for blocked
///    Begin/Commit/Wait/Abort primitives. State changes wake only the
///    transactions registered as waiting — the releasing shard notifies
///    its recorded waiters, a terminating transaction notifies its
///    dependents and group members — instead of broadcasting to the
///    world.
///  - The global mutex `KernelSync::mu` still serializes the structures
///    that are inherently global: the TD table, the dependency graph,
///    commit-group evaluation, and permit-table mutation. Its condition
///    variable is used only for idle/shutdown accounting (WaitIdle and
///    the destructor's thread drain).
///
/// Lock ordering (outermost first):
///   KernelSync::mu  ->  LockManager shard latch  ->  TD::lrds_mu
/// WaitChannel's internal mutex and the PermitTable's internal
/// shared_mutex are leaves: no other lock is ever taken while holding
/// them. Code holding a shard latch must never take the global mutex.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/ids.h"
#include "core/descriptors.h"

namespace asset {

/// The global kernel mutex. Guards the TD table, tombstones, dependency
/// graph, commit evaluation, and transaction lifecycle transitions. The
/// condition variable signals only idle/shutdown transitions
/// (active_count / live_threads reaching zero); per-transaction blocking
/// uses the channels on the TD instead.
struct KernelSync {
  std::mutex mu;
  std::condition_variable cv;
  /// Transactions currently blocked inside LockManager::Acquire, i.e.
  /// the only transactions a new permit or delegation can admit. Guarded
  /// by `mu`; inserted where the waits-for edges are published, erased on
  /// every Acquire exit path. Permit/delegation wakeups notify exactly
  /// these channels instead of scanning the TD table. A blocked requester
  /// re-checks the lock once after registering here and before its first
  /// sleep, so a permit inserted before the registration cannot be lost.
  std::unordered_set<TransactionDescriptor*> lock_blocked;
  /// The wait-for cycle most recently resolved by the deadlock detector
  /// (victim included), captured at detection time for introspection:
  /// the detector resolves cycles immediately, so a later DumpState
  /// could never name the cycle from the live wait-for edges. Guarded
  /// by `mu`.
  std::vector<Tid> last_deadlock_cycle;
};

/// The chained-hash transaction table of §4.1 (TDs keyed by tid).
using TdTable = std::unordered_map<Tid, std::unique_ptr<TransactionDescriptor>>;

}  // namespace asset

#endif  // ASSET_CORE_KERNEL_H_
