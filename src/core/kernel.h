#ifndef ASSET_CORE_KERNEL_H_
#define ASSET_CORE_KERNEL_H_

/// \file kernel.h
/// Shared kernel state: the big kernel mutex, its condition variable, and
/// the transaction-descriptor table type.
///
/// The paper latches individual control structures; we use one kernel
/// mutex for all of them (TD/OD tables, permit table, dependency graph)
/// plus per-object data latches for the object bytes. The single mutex is
/// the classic lock-manager-partition simplification: all *blocking*
/// (lock waits, commit waits) happens on the shared condition variable,
/// which gives us the paper's "block and retry from step 1" loops
/// directly.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/ids.h"
#include "core/descriptors.h"

namespace asset {

/// The kernel mutex and the wait channel every blocked primitive sleeps
/// on. Broadcast on any state change that could unblock someone: lock
/// release, suspension, permit insertion, delegation, status transition.
struct KernelSync {
  std::mutex mu;
  std::condition_variable cv;
};

/// The chained-hash transaction table of §4.1 (TDs keyed by tid).
using TdTable = std::unordered_map<Tid, std::unique_ptr<TransactionDescriptor>>;

}  // namespace asset

#endif  // ASSET_CORE_KERNEL_H_
