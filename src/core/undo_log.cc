#include "core/undo_log.h"

#include <algorithm>

namespace asset {

void UndoManager::RecordLocked(TransactionDescriptor* td, Lsn lsn) {
  td->responsible_ops.push_back(lsn);
}

size_t UndoManager::DelegateLocked(TransactionDescriptor* ti,
                                   TransactionDescriptor* tj,
                                   const ObjectSet& objs) {
  std::vector<Lsn> remaining;
  std::vector<Lsn> moved;
  remaining.reserve(ti->responsible_ops.size());
  for (Lsn lsn : ti->responsible_ops) {
    LogRecord rec = log_->At(lsn);
    if (objs.Contains(rec.oid)) {
      moved.push_back(lsn);
    } else {
      remaining.push_back(lsn);
    }
  }
  if (moved.empty() && !objs.IsAll()) {
    // Still log the intent below only when something moved or the form
    // was the wildcard; an empty concrete delegation is a no-op.
    ti->responsible_ops = std::move(remaining);
    return 0;
  }
  ti->responsible_ops = std::move(remaining);
  // Merge into tj preserving global lsn order, so tj's later abort
  // undoes in true reverse-chronological order.
  auto& dst = tj->responsible_ops;
  dst.insert(dst.end(), moved.begin(), moved.end());
  std::sort(dst.begin(), dst.end());

  LogRecord rec;
  rec.tid = ti->tid;
  rec.other_tid = tj->tid;
  if (objs.IsAll()) {
    rec.type = LogRecordType::kDelegateAll;
  } else {
    rec.type = LogRecordType::kDelegateSet;
    rec.oid_set = objs.ids();
  }
  log_->Append(std::move(rec));
  return moved.size();
}

Status UndoManager::UndoOneLocked(TransactionDescriptor* td,
                                  const LogRecord& rec, LockManager* locks) {
  ObjectDescriptor* od = locks->Find(rec.oid);

  LogRecord clr;
  clr.tid = td->tid;
  clr.oid = rec.oid;
  clr.undo_of = rec.lsn;

  Status s;
  // The CLR append + store apply is an in-flight apply like any data
  // operation: register it so a fuzzy checkpoint's drain covers it and
  // the buffer pool gets a recovery-lsn hint for the dirtied page.
  LogManager::ApplyGuard apply_guard(log_);
  if (od != nullptr) od->data_latch.LockExclusive();
  switch (rec.type) {
    case LogRecordType::kCreate:
      s = store_->ApplyDelete(rec.oid);
      clr.type = LogRecordType::kClrDelete;
      log_->Append(std::move(clr));
      break;
    case LogRecordType::kUpdate:
    case LogRecordType::kDelete:
      s = store_->ApplyPut(rec.oid, rec.before);
      clr.type = LogRecordType::kClrPut;
      clr.after = rec.before;
      log_->Append(std::move(clr));
      break;
    case LogRecordType::kIncrement: {
      // Logical undo: apply the negated delta under the compensation
      // record's own lsn so replay stays idempotent.
      auto delta = DecodeI64(rec.after);
      if (!delta.ok()) {
        s = delta.status();
        break;
      }
      clr.type = LogRecordType::kIncrement;
      clr.after = EncodeI64(-*delta);
      Lsn clr_lsn = log_->Append(std::move(clr));
      auto applied = store_->ApplyDelta(rec.oid, clr_lsn, -*delta);
      s = applied.ok() ? Status::OK() : applied.status();
      break;
    }
    default:
      s = Status::Internal("responsible_ops names a non-data record");
      break;
  }
  if (od != nullptr) od->data_latch.UnlockExclusive();
  if (s.ok()) stats_->undo_installs.fetch_add(1, std::memory_order_relaxed);
  return s;
}

Status UndoManager::UndoAllLocked(TransactionDescriptor* td,
                                  LockManager* locks) {
  return UndoSetLocked({td}, locks);
}

Status UndoManager::UndoSetLocked(
    const std::vector<TransactionDescriptor*>& tds, LockManager* locks) {
  // Merge every member's operations and install the before images in
  // global reverse chronological order (§4.2 abort step 2, extended to
  // the set aborting together).
  std::vector<std::pair<Lsn, TransactionDescriptor*>> ops;
  for (TransactionDescriptor* td : tds) {
    for (Lsn lsn : td->responsible_ops) ops.emplace_back(lsn, td);
  }
  std::sort(ops.begin(), ops.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    Status s = UndoOneLocked(it->second, log_->At(it->first), locks);
    if (!s.ok()) return s;
  }
  for (TransactionDescriptor* td : tds) td->responsible_ops.clear();
  return Status::OK();
}

}  // namespace asset
