#include "core/thread_cache.h"

namespace asset {

ThreadCache::~ThreadCache() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadCache::Submit(std::function<void()> task) {
  std::lock_guard<std::mutex> lk(mu_);
  pending_.push_back(std::move(task));
  // One notify per task. A sleeping worker only counts if there are
  // enough of them to cover every queued task: an idle_ > 0 test alone
  // loses a task when two submits race a single not-yet-woken sleeper,
  // and the task then waits behind an unrelated (possibly blocked)
  // transaction body.
  if (idle_ >= pending_.size()) {
    cv_.notify_one();
  } else {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadCache::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    while (pending_.empty() && !stopping_) {
      ++idle_;
      cv_.wait(lk);
      --idle_;
    }
    if (pending_.empty()) return;  // stopping
    std::function<void()> task = std::move(pending_.front());
    pending_.pop_front();
    lk.unlock();
    task();
    lk.lock();
  }
}

size_t ThreadCache::WorkersCreated() const {
  std::lock_guard<std::mutex> lk(mu_);
  return workers_.size();
}

}  // namespace asset
