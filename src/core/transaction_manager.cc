#include "core/transaction_manager.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <thread>
#include <unordered_set>

namespace asset {

namespace {

/// The transaction executing on this thread (the paper's per-process
/// current transaction; self()/parent() read it).
thread_local TransactionDescriptor* tls_current = nullptr;

/// Collect terminated TDs once the table grows past this.
constexpr size_t kCollectThreshold = 1024;

Status NotRunningError(const char* what, TxnStatus s,
                       bool distinguish_aborted) {
  if (distinguish_aborted &&
      (s == TxnStatus::kAborting || s == TxnStatus::kAborted)) {
    return Status::TxnAborted(std::string(what) +
                              ": transaction is aborting");
  }
  return Status::IllegalState(std::string(what) +
                              ": transaction is not running");
}

}  // namespace

TransactionManager::TransactionManager(LogManager* log, ObjectStore* store,
                                       Options options)
    : options_(options),
      log_(log),
      store_(store),
      recorder_(options.trace),
      locks_(&sync_, &permit_table_, &txns_, &stats_, &recorder_,
             options.lock),
      undo_(log, store, &stats_) {
  recorder_.BindDroppedCounter(&stats_.trace_events_dropped);
  log_->BindStats(WalStatsSink{&stats_.wal_appends, &stats_.wal_fsyncs,
                               &stats_.wal_records_flushed,
                               &stats_.wal_truncations,
                               &stats_.wal_records_truncated,
                               &stats_.fsync_latency, &recorder_});
}

TransactionManager::TransactionManager(LogManager* log, ObjectStore* store)
    : TransactionManager(log, store, Options()) {}

TransactionManager::~TransactionManager() {
  {
    std::unique_lock<std::mutex> lk(sync_.mu);
    shutting_down_ = true;
    for (auto& [tid, td] : txns_) {
      if (!IsTerminated(td->status)) {
        StartAbortLocked(td.get(), "kernel shutting down");
      }
    }
    sync_.cv.wait(lk, [&] { return live_threads_ == 0; });
  }
  // Detach the log's counters before stats_ dies; the log (and its
  // flusher) outlives this kernel.
  log_->UnbindStats(WalStatsSink{&stats_.wal_appends, &stats_.wal_fsyncs,
                                 &stats_.wal_records_flushed,
                                 &stats_.wal_truncations,
                                 &stats_.wal_records_truncated,
                                 &stats_.fsync_latency, &recorder_});
}

// ---------------------------------------------------------------------------
// Lookup helpers

TransactionDescriptor* TransactionManager::FindLocked(Tid t) const {
  auto it = txns_.find(t);
  return it == txns_.end() ? nullptr : it->second.get();
}

TxnStatus TransactionManager::StatusOfLocked(Tid t) const {
  if (const TransactionDescriptor* td = FindLocked(t)) return td->status;
  auto it = tombstones_.find(t);
  if (it != tombstones_.end()) return it->second;
  // Unknown tids should not arise (dependencies validate both ends);
  // fail safe by treating them as aborted.
  return TxnStatus::kAborted;
}

void TransactionManager::CollectLocked() {
  for (auto it = txns_.begin(); it != txns_.end();) {
    TransactionDescriptor* td = it->second.get();
    if (IsTerminated(td->status) && td->thread_exited &&
        td->pins.load(std::memory_order_acquire) == 0) {
      tombstones_.emplace(td->tid, td->status.load());
      it = txns_.erase(it);
    } else {
      ++it;
    }
  }
}

std::string TransactionManager::AbortReasonLocked(
    const TransactionDescriptor* td) {
  if (td != nullptr && !td->abort_reason.empty()) {
    return "transaction " + std::to_string(td->tid) + " aborted: " +
           td->abort_reason;
  }
  Tid t = td != nullptr ? td->tid : kNullTid;
  return "transaction " + std::to_string(t) + " aborted";
}

// ---------------------------------------------------------------------------
// Targeted wakeups

void TransactionManager::NotifyTxnLocked(TransactionDescriptor* td) {
  stats_.txn_wakeups.fetch_add(1, std::memory_order_relaxed);
  td->lifecycle_cv.notify_all();
}

void TransactionManager::WakeDependentsLocked(Tid t) {
  for (const Dependency& d : deps_.DependenciesOn(t)) {
    if (TransactionDescriptor* dep = FindLocked(d.dependent)) {
      NotifyTxnLocked(dep);
    }
  }
}

void TransactionManager::WakeGroupLocked(Tid t) {
  for (Tid m : deps_.GroupOf(t)) {
    if (m == t) continue;
    if (TransactionDescriptor* mtd = FindLocked(m)) {
      NotifyTxnLocked(mtd);
    }
  }
}

void TransactionManager::WakeLockWaitersLocked() {
  stats_.permit_broadcasts.fetch_add(1, std::memory_order_relaxed);
  // Exactly the requesters currently blocked in LockManager::Acquire
  // (they register in lock_blocked before their first sleep), so this
  // stays O(blocked) instead of scanning the TD table.
  for (TransactionDescriptor* td : sync_.lock_blocked) {
    td->lock_wait.Notify();
  }
}

// ---------------------------------------------------------------------------
// Basic primitives (§2.1)

Tid TransactionManager::InitiateFn(std::function<void()> fn) {
  std::lock_guard<std::mutex> lk(sync_.mu);
  if (shutting_down_) return kNullTid;
  if (txns_.size() >= kCollectThreshold) CollectLocked();
  if (unterminated_count_ >= options_.max_transactions) {
    return kNullTid;  // the paper's "no resources available" error
  }
  Tid tid = next_tid_++;
  Tid parent = tls_current != nullptr ? tls_current->tid : kNullTid;
  auto td = std::make_unique<TransactionDescriptor>(tid, parent);
  td->fn = fn ? std::move(fn) : [] {};
  txns_.emplace(tid, std::move(td));
  unterminated_count_++;
  stats_.txns_initiated.fetch_add(1, std::memory_order_relaxed);
  recorder_.Emit(TraceEventType::kTxnInitiate, tid, parent);
  return tid;
}

bool TransactionManager::Begin(Tid t) { return BeginTxn(t).ok(); }

Status TransactionManager::EvalBeginGateLocked(Tid t, bool* blocked) const {
  *blocked = false;
  for (const Dependency& d : deps_.DependenciesOf(t)) {
    if (d.type == DependencyType::kBeginOnBegin) {
      const TransactionDescriptor* dep = FindLocked(d.dependee);
      TxnStatus ds = StatusOfLocked(d.dependee);
      bool dep_begun =
          dep != nullptr ? dep->begun : ds == TxnStatus::kCommitted;
      if (dep_begun) continue;
      if (ds == TxnStatus::kAborted) {
        return Status::TxnAborted(
            "begin: begin-dependency on transaction " +
            std::to_string(d.dependee) + ", which aborted before "
            "beginning");
      }
      *blocked = true;
    } else if (d.type == DependencyType::kBeginOnCommit) {
      TxnStatus ds = StatusOfLocked(d.dependee);
      if (ds == TxnStatus::kCommitted) continue;
      if (ds == TxnStatus::kAborted) {
        return Status::TxnAborted(
            "begin: begin-on-commit dependency on transaction " +
            std::to_string(d.dependee) + ", which aborted");
      }
      *blocked = true;
    }
  }
  return Status::OK();
}

void TransactionManager::StartRunningLocked(TransactionDescriptor* td) {
  td->status = TxnStatus::kRunning;
  td->begun = true;
  td->thread_exited = false;
  active_count_++;
  live_threads_++;
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  rec.tid = td->tid;
  log_->Append(std::move(rec));
  stats_.txns_begun.fetch_add(1, std::memory_order_relaxed);
  recorder_.Emit(TraceEventType::kTxnBegin, td->tid, td->parent);
  // A begin-dependency of someone else may just have been satisfied.
  WakeDependentsLocked(td->tid);
}

Status TransactionManager::BeginTxn(Tid t) {
  TransactionDescriptor* td;
  {
    std::unique_lock<std::mutex> lk(sync_.mu);
    td = FindLocked(t);
    if (td == nullptr) {
      return Status::NotFound("begin: unknown transaction " +
                              std::to_string(t));
    }
    TdPin pin(td);
    const bool bounded = options_.commit_timeout.count() > 0;
    const auto deadline =
        std::chrono::steady_clock::now() + options_.commit_timeout;
    // Begin-dependency gate (ACTA BD/BCD extension): block until every
    // begin-dependency is satisfied; fail if one became unsatisfiable.
    for (;;) {
      if (shutting_down_) {
        return Status::IllegalState("begin: kernel is shutting down");
      }
      if (td->status != TxnStatus::kInitiated) {
        return Status::IllegalState(
            "begin: transaction " + std::to_string(t) + " is " +
            TxnStatusToString(td->status));
      }
      bool blocked = false;
      ASSET_RETURN_NOT_OK(EvalBeginGateLocked(t, &blocked));
      if (!blocked) break;
      if (bounded) {
        if (td->lifecycle_cv.wait_until(lk, deadline) ==
            std::cv_status::timeout) {
          return Status::TimedOut(
              "begin: begin-dependencies of transaction " +
              std::to_string(t) + " unresolved within timeout");
        }
      } else {
        td->lifecycle_cv.wait(lk);
      }
    }
    StartRunningLocked(td);
  }
  executor_.Submit([this, td] { ThreadMain(td); });
  return Status::OK();
}

bool TransactionManager::Begin(std::initializer_list<Tid> ts) {
  // All-or-nothing: nothing below transitions any member until every
  // member has been validated and has an open begin gate, and the
  // transitions then all happen under the same mutex hold as the last
  // validation pass — a concurrent Begin/Abort of a member fails the
  // whole call with nothing started.
  std::vector<Tid> tids;
  for (Tid t : ts) {
    if (std::find(tids.begin(), tids.end(), t) == tids.end()) {
      tids.push_back(t);
    }
  }
  if (tids.empty()) return true;

  std::unique_lock<std::mutex> lk(sync_.mu);
  std::vector<TransactionDescriptor*> tds;
  tds.reserve(tids.size());
  for (Tid t : tids) {
    TransactionDescriptor* td = FindLocked(t);
    if (td == nullptr || td->status != TxnStatus::kInitiated) return false;
    tds.push_back(td);
  }
  // Pin every member across the gate waits so a concurrently aborted
  // (and therefore collectable) TD cannot vanish under us.
  for (TransactionDescriptor* td : tds) {
    td->pins.fetch_add(1, std::memory_order_relaxed);
  }
  auto unpin_all = [&] {
    for (TransactionDescriptor* td : tds) {
      td->pins.fetch_sub(1, std::memory_order_release);
    }
  };
  const bool bounded = options_.commit_timeout.count() > 0;
  const auto deadline =
      std::chrono::steady_clock::now() + options_.commit_timeout;
  for (;;) {
    if (shutting_down_) {
      unpin_all();
      return false;
    }
    TransactionDescriptor* gated = nullptr;
    for (TransactionDescriptor* td : tds) {
      if (td->status != TxnStatus::kInitiated) {
        unpin_all();
        return false;
      }
      bool blocked = false;
      if (!EvalBeginGateLocked(td->tid, &blocked).ok()) {
        unpin_all();
        return false;
      }
      if (blocked && gated == nullptr) gated = td;
    }
    if (gated == nullptr) break;
    // Wait for the first gated member's dependencies (its dependees'
    // transitions notify its lifecycle_cv), then re-validate everything.
    if (bounded) {
      if (gated->lifecycle_cv.wait_until(lk, deadline) ==
          std::cv_status::timeout) {
        unpin_all();
        return false;
      }
    } else {
      gated->lifecycle_cv.wait(lk);
    }
  }
  // Point of no return: start every member under this one mutex hold.
  for (TransactionDescriptor* td : tds) StartRunningLocked(td);
  unpin_all();
  lk.unlock();
  for (TransactionDescriptor* td : tds) {
    executor_.Submit([this, td] { ThreadMain(td); });
  }
  return true;
}

Result<Tid> TransactionManager::BeginSession() {
  std::lock_guard<std::mutex> lk(sync_.mu);
  if (shutting_down_) {
    return Status::IllegalState("begin: kernel is shutting down");
  }
  if (txns_.size() >= kCollectThreshold) CollectLocked();
  if (unterminated_count_ >= options_.max_transactions) {
    return Status::ResourceExhausted("begin: transaction table is full");
  }
  Tid tid = next_tid_++;
  Tid parent = tls_current != nullptr ? tls_current->tid : kNullTid;
  auto td = std::make_unique<TransactionDescriptor>(tid, parent);
  td->fn = [] {};
  td->session = true;
  td->status = TxnStatus::kRunning;
  td->begun = true;
  // No worker thread ever runs for a session transaction; keeping
  // thread_exited set lets an abort perform the physical undo at once.
  td->thread_exited = true;
  txns_.emplace(tid, std::move(td));
  unterminated_count_++;
  active_count_++;
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  rec.tid = tid;
  log_->Append(std::move(rec));
  stats_.txns_initiated.fetch_add(1, std::memory_order_relaxed);
  stats_.txns_begun.fetch_add(1, std::memory_order_relaxed);
  recorder_.Emit(TraceEventType::kTxnInitiate, tid, parent);
  recorder_.Emit(TraceEventType::kTxnBegin, tid, parent);
  return tid;
}

void TransactionManager::ThreadMain(TransactionDescriptor* td) {
  tls_current = td;
  try {
    td->fn();
  } catch (...) {
    // The library itself never throws; an escaping user exception aborts
    // the transaction rather than the process.
    std::lock_guard<std::mutex> lk(sync_.mu);
    if (td->status == TxnStatus::kRunning) {
      td->status = TxnStatus::kAborting;
      if (td->abort_reason.empty()) {
        td->abort_reason = "exception escaped the transaction function";
      }
    }
  }
  tls_current = nullptr;
  std::lock_guard<std::mutex> lk(sync_.mu);
  td->thread_exited = true;
  live_threads_--;
  if (td->status == TxnStatus::kRunning) {
    // §2.1: locks are kept and changes stay volatile; the manager just
    // records the completion.
    td->status = TxnStatus::kCompleted;
  } else if (td->status == TxnStatus::kAborting) {
    // Complete the (possibly deferred) physical abort of our closure.
    FinishAbortClosureLocked(td);
  }
  // Completion unblocks: Wait/Commit sleepers on this transaction and
  // the commit evaluations of group peers. (The closure finalization
  // performs its own notifications; repeating them is harmless.)
  NotifyTxnLocked(td);
  WakeGroupLocked(td->tid);
  sync_.cv.notify_all();  // live_threads_ changed (shutdown drain)
}

bool TransactionManager::Commit(Tid t) { return CommitTxn(t).ok(); }

Status TransactionManager::CommitTxn(Tid t) {
  const int64_t commit_start_ns = FlightRecorder::NowNs();
  // Successful-commit ack: durability wait (mutex released by the
  // caller first) plus the commit-latency sample, measured from the
  // CommitTxn entry to the durable ack.
  auto ack = [&](Lsn commit_lsn) {
    Status s = AwaitCommitDurable(t, commit_lsn);
    int64_t dur = FlightRecorder::NowNs() - commit_start_ns;
    if (dur < 0) dur = 0;
    stats_.commit_latency.Record(static_cast<uint64_t>(dur));
    return s;
  };
  std::unique_lock<std::mutex> lk(sync_.mu);
  const bool bounded = options_.commit_timeout.count() > 0;
  const auto deadline =
      std::chrono::steady_clock::now() + options_.commit_timeout;
  TransactionDescriptor* td = FindLocked(t);
  if (td == nullptr) {
    auto it = tombstones_.find(t);
    if (it == tombstones_.end()) {
      return Status::NotFound("commit: unknown transaction " +
                              std::to_string(t));
    }
    if (it->second == TxnStatus::kCommitted) return Status::OK();
    return Status::TxnAborted("transaction " + std::to_string(t) +
                              " aborted");
  }
  TdPin pin(td);
  if (td->session && td->status == TxnStatus::kRunning) {
    // A session transaction's code is "done" when the caller commits.
    td->status = TxnStatus::kCompleted;
  }
  for (;;) {  // the paper's "blocks and retries later starting at step 1"
    switch (td->status.load()) {
      case TxnStatus::kCommitted: {
        // Another thread committed our group. Honour the durability
        // policy for the ack just like the committing thread does.
        Lsn commit_lsn = td->commit_lsn;
        lk.unlock();
        return ack(commit_lsn);
      }
      case TxnStatus::kAborted:
        return Status::TxnAborted(AbortReasonLocked(td));
      case TxnStatus::kAborting:
        break;  // wait for the physical abort, then report failure
      case TxnStatus::kCompleted:
        td->status = TxnStatus::kCommitting;
        [[fallthrough]];
      case TxnStatus::kCommitting: {
        std::vector<TransactionDescriptor*> group;
        CommitEval eval = EvaluateCommitLocked(td, &group);
        if (eval == CommitEval::kCommit) {
          Lsn commit_lsn = CommitGroupLocked(group);
          // The durability wait (and its fsync) happens with the kernel
          // mutex released: concurrent committers pile onto the same
          // flusher batch instead of queueing the kernel on the disk.
          lk.unlock();
          return ack(commit_lsn);
        }
        if (eval == CommitEval::kAbort) {
          // An abort/group dependency makes commit impossible: the whole
          // GC component aborts (§4.2 commit step 2a via abort step 4a).
          for (Tid m : deps_.GroupOf(t)) {
            if (TransactionDescriptor* mtd = FindLocked(m)) {
              StartAbortLocked(
                  mtd, "commit impossible: an abort or group-commit "
                       "dependency is unsatisfiable");
            }
          }
          break;  // wait until the abort lands, then report it
        }
        break;  // kWait
      }
      case TxnStatus::kInitiated:
      case TxnStatus::kRunning:
        break;  // commit blocks until execution completes (§2.1)
    }
    if (bounded) {
      if (td->lifecycle_cv.wait_until(lk, deadline) ==
          std::cv_status::timeout) {
        if (td->status == TxnStatus::kCommitted) {
          Lsn commit_lsn = td->commit_lsn;
          lk.unlock();
          return ack(commit_lsn);
        }
        if (td->status == TxnStatus::kAborted) {
          return Status::TxnAborted(AbortReasonLocked(td));
        }
        // Unresolvable within the bound: abort so the failure is true.
        StartAbortLocked(td, "commit timeout: dependencies unresolved "
                             "within the commit bound");
        return Status::TimedOut("commit: transaction " + std::to_string(t) +
                                " could not commit within the timeout and "
                                "was aborted");
      }
    } else {
      td->lifecycle_cv.wait(lk);
    }
  }
}

int TransactionManager::Wait(Tid t) {
  if (tls_current != nullptr && tls_current->tid == t) {
    // wait(self()) — the appendix uses it as "am I still viable?".
    TxnStatus s = tls_current->status.load(std::memory_order_acquire);
    return (s == TxnStatus::kAborting || s == TxnStatus::kAborted) ? 0 : 1;
  }
  std::unique_lock<std::mutex> lk(sync_.mu);
  TransactionDescriptor* td = FindLocked(t);
  if (td == nullptr) {
    auto it = tombstones_.find(t);
    return it != tombstones_.end() && it->second == TxnStatus::kCommitted
               ? 1
               : 0;
  }
  TdPin pin(td);
  for (;;) {
    switch (td->status.load()) {
      case TxnStatus::kCompleted:
      case TxnStatus::kCommitting:
      case TxnStatus::kCommitted:
        return 1;
      case TxnStatus::kAborting:
      case TxnStatus::kAborted:
        return 0;
      case TxnStatus::kInitiated:
      case TxnStatus::kRunning:
        td->lifecycle_cv.wait(lk);
        break;
    }
  }
}

bool TransactionManager::Abort(Tid t) { return AbortTxn(t).ok(); }

Status TransactionManager::AbortTxn(Tid t) {
  std::unique_lock<std::mutex> lk(sync_.mu);
  TransactionDescriptor* td = FindLocked(t);
  if (td == nullptr) {
    auto it = tombstones_.find(t);
    if (it != tombstones_.end() && it->second == TxnStatus::kCommitted) {
      return Status::IllegalState("abort: transaction " + std::to_string(t) +
                                  " already committed");
    }
    return Status::OK();
  }
  TdPin pin(td);
  for (;;) {
    switch (td->status.load()) {
      case TxnStatus::kCommitted:
        return Status::IllegalState("abort: transaction " +
                                    std::to_string(t) +
                                    " already committed");
      case TxnStatus::kAborted:
        return Status::OK();
      case TxnStatus::kAborting:
        // Someone (possibly us, one iteration ago) is already aborting
        // it; wait for the physical abort to finish.
        if (tls_current == td) return Status::OK();  // finishes at exit
        td->lifecycle_cv.wait(lk);
        break;
      default:
        StartAbortLocked(td, "explicit abort");
        if (tls_current == td) {
          // abort(self()): the physical abort runs when our function
          // returns; report success now.
          return Status::OK();
        }
        break;
    }
  }
}

Tid TransactionManager::Self() {
  return tls_current != nullptr ? tls_current->tid : kNullTid;
}

Tid TransactionManager::Parent() {
  return tls_current != nullptr ? tls_current->parent : kNullTid;
}

Tid TransactionManager::ParentOf(Tid t) const {
  std::lock_guard<std::mutex> lk(sync_.mu);
  const TransactionDescriptor* td = FindLocked(t);
  return td != nullptr ? td->parent : kNullTid;
}

TxnStatus TransactionManager::GetStatus(Tid t) const {
  std::lock_guard<std::mutex> lk(sync_.mu);
  return StatusOfLocked(t);
}

// ---------------------------------------------------------------------------
// Commit machinery

TransactionManager::CommitEval TransactionManager::EvaluateCommitLocked(
    TransactionDescriptor* td, std::vector<TransactionDescriptor*>* group) {
  group->clear();
  std::vector<Tid> member_tids = deps_.GroupOf(td->tid);
  std::unordered_set<Tid> in_group(member_tids.begin(), member_tids.end());
  for (Tid m : member_tids) {
    TransactionDescriptor* mtd = FindLocked(m);
    if (mtd == nullptr) {
      // Terminated and collected; GC edges are removed at termination,
      // so this should not happen — fail safe.
      return CommitEval::kAbort;
    }
    group->push_back(mtd);
  }
  // Every member must have completed execution and not be aborting
  // (commit blocks until execution completes; GC commits as one).
  for (TransactionDescriptor* m : *group) {
    switch (m->status.load()) {
      case TxnStatus::kAborting:
      case TxnStatus::kAborted:
        return CommitEval::kAbort;
      case TxnStatus::kInitiated:
      case TxnStatus::kRunning:
        return CommitEval::kWait;
      default:
        break;
    }
  }
  // §4.2 commit step 2: outgoing CD/AD dependencies of every member on
  // transactions outside the group.
  for (TransactionDescriptor* m : *group) {
    for (const Dependency& d : deps_.DependenciesOf(m->tid)) {
      if (d.type == DependencyType::kGroupCommit) continue;
      if (d.type == DependencyType::kBeginOnBegin ||
          d.type == DependencyType::kBeginOnCommit) {
        continue;  // satisfied at begin() time, no commit constraint
      }
      if (in_group.count(d.dependee) != 0) continue;  // commits with us
      TxnStatus xs = StatusOfLocked(d.dependee);
      if (d.type == DependencyType::kAbort) {
        // 2a: wait until the dependee commits; its abort dooms us.
        if (xs == TxnStatus::kAborted) return CommitEval::kAbort;
        if (xs != TxnStatus::kCommitted) return CommitEval::kWait;
      } else {
        // 2b: CD — wait until the dependee terminates either way.
        if (!IsTerminated(xs)) return CommitEval::kWait;
      }
    }
  }
  return CommitEval::kCommit;
}

Lsn TransactionManager::CommitGroupLocked(
    const std::vector<TransactionDescriptor*>& group) {
  // §4.2 commit step 4: append (only — never flush) each member's
  // commit record. Append is a short in-memory critical section; the
  // fsync that makes these records durable belongs to the flusher
  // thread, reached by AwaitCommitDurable after the kernel mutex is
  // released. Holding the kernel mutex across device I/O is the exact
  // stall this pipeline removes.
  Lsn group_lsn = kNullLsn;
  for (TransactionDescriptor* m : group) {
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.tid = m->tid;
    m->commit_lsn = log_->Append(std::move(rec));
    group_lsn = std::max(group_lsn, m->commit_lsn);
  }
  // Snapshot the dependents before the members' edges are removed; they
  // are exactly the transactions whose commit evaluation or begin gate
  // this commit can unblock.
  std::vector<Tid> watchers;
  for (TransactionDescriptor* m : group) {
    for (const Dependency& d : deps_.DependenciesOn(m->tid)) {
      watchers.push_back(d.dependent);
    }
  }
  for (TransactionDescriptor* m : group) {
    m->status = TxnStatus::kCommitted;
    m->responsible_ops.clear();
    locks_.ReleaseAll(m);                  // step 6 (wakes lock waiters)
    permit_table_.RemoveAllFor(m->tid);    // step 6
    deps_.RemoveAllFor(m->tid);            // step 5
    if (m->begun) active_count_--;
    unterminated_count_--;
    stats_.txns_committed.fetch_add(1, std::memory_order_relaxed);
    // One event per member: a group commit shows every peer committing
    // at (essentially) the same timestamp with its own commit lsn.
    recorder_.Emit(TraceEventType::kTxnCommit, m->tid, kNullTid,
                   kNullObjectId, m->commit_lsn);
    NotifyTxnLocked(m);       // Commit/Wait sleepers on this member
    m->lock_wait.Notify();    // a straggling lock request fails fast
  }
  if (group.size() > 1) {
    stats_.group_commits.fetch_add(1, std::memory_order_relaxed);
  }
  for (Tid w : watchers) {
    if (TransactionDescriptor* wtd = FindLocked(w)) NotifyTxnLocked(wtd);
    // The commit evaluation of w's group may be sleeping on any member's
    // cv (whoever called commit first), not necessarily w's own.
    WakeGroupLocked(w);
  }
  sync_.cv.notify_all();  // active_count_ changed (WaitIdle)
  return group_lsn;
}

Status TransactionManager::AwaitCommitDurable(Tid t, Lsn commit_lsn) {
  if (!options_.force_log_at_commit || commit_lsn == kNullLsn) {
    return Status::OK();
  }
  if (options_.durability == DurabilityPolicy::kRelaxed) {
    // No wait — but a sticky flush failure still surfaces. Acking OK
    // forever after the disk died would lose arbitrarily many commits,
    // not the bounded tail relaxed mode promises.
    return log_->RequestFlush(commit_lsn);
  }
  if (log_->durable_lsn() < commit_lsn) {
    // The ack actually has to sleep for the flusher (vs riding a batch
    // that already landed).
    stats_.commit_stalls.fetch_add(1, std::memory_order_relaxed);
    int64_t stall_start_ns = FlightRecorder::NowNs();
    Status s = log_->WaitDurable(commit_lsn);
    int64_t dur = FlightRecorder::NowNs() - stall_start_ns;
    recorder_.Emit(TraceEventType::kCommitStall, t, kNullTid, kNullObjectId,
                   commit_lsn, dur < 0 ? 0 : dur);
    return s;
  }
  return log_->WaitDurable(commit_lsn);
}

// ---------------------------------------------------------------------------
// Abort machinery

void TransactionManager::MarkAbortingLocked(TransactionDescriptor* td,
                                            std::string reason) {
  switch (td->status.load()) {
    case TxnStatus::kCommitted:
    case TxnStatus::kAborted:
    case TxnStatus::kAborting:
      return;
    default:
      break;
  }
  td->status = TxnStatus::kAborting;
  if (td->abort_reason.empty()) td->abort_reason = std::move(reason);
  // Doom is observable at once: Wait/Commit sleepers on this
  // transaction, a blocked lock request of its own, and its group peers'
  // commit evaluations.
  NotifyTxnLocked(td);
  td->lock_wait.Notify();
  WakeGroupLocked(td->tid);
}

void TransactionManager::StartAbortLocked(TransactionDescriptor* td,
                                          std::string reason) {
  switch (td->status.load()) {
    case TxnStatus::kCommitted:
    case TxnStatus::kAborted:
    case TxnStatus::kAborting:
      return;
    default:
      break;
  }
  MarkAbortingLocked(td, std::move(reason));
  FinishAbortClosureLocked(td);
}

void TransactionManager::FinishAbortClosureLocked(
    TransactionDescriptor* seed) {
  // §4.2 abort step 4 (propagation), computed up front: the set of
  // transactions doomed with `seed`, following AD/GC/BCD edges and BDs
  // whose dependee never began. CDs on an aborted transaction dissolve
  // (step 4b) — at finalization, below.
  std::vector<TransactionDescriptor*> doomed{seed};
  std::unordered_set<Tid> seen{seed->tid};
  for (size_t i = 0; i < doomed.size(); ++i) {
    TransactionDescriptor* m = doomed[i];
    for (const Dependency& d : deps_.DependenciesOn(m->tid)) {
      bool dooms = false;
      switch (d.type) {
        case DependencyType::kCommit:
          break;  // dissolves
        case DependencyType::kBeginOnBegin:
          dooms = !m->begun;  // satisfied forever once m began
          break;
        case DependencyType::kBeginOnCommit:
        case DependencyType::kAbort:
        case DependencyType::kGroupCommit:
          dooms = true;  // 4a and the begin-dependency analogue
          break;
      }
      if (!dooms || !seen.insert(d.dependent).second) continue;
      TransactionDescriptor* dep = FindLocked(d.dependent);
      if (dep == nullptr || IsTerminated(dep->status)) continue;
      MarkAbortingLocked(dep, "abort propagated from transaction " +
                                  std::to_string(m->tid) + " (" +
                                  DependencyTypeToString(d.type) +
                                  " dependency)");
      doomed.push_back(dep);
    }
  }
  // If any doomed member's thread is still running, or any member has a
  // cross-thread data operation in flight (op_pins — session
  // transactions always take that path), defer the physical abort of
  // the WHOLE closure: cooperating members may hold interleaved writes
  // on shared objects, undoing one member while a later writer has not
  // yet undone would install stale before images, and releasing locks
  // under an in-flight operation would let its object descriptors be
  // reclaimed (and its applied-but-unregistered write escape undo). The
  // running member's thread exit — or the last op unpin — re-enters
  // this function and completes the closure (new data operations fail
  // fast now that the members are marked).
  for (TransactionDescriptor* m : doomed) {
    if (m->status != TxnStatus::kAborting) continue;
    if (!m->thread_exited || m->op_pins.load() > 0) return;
  }
  std::vector<TransactionDescriptor*> finalizable;
  for (TransactionDescriptor* m : doomed) {
    if (m->status == TxnStatus::kAborting) finalizable.push_back(m);
  }
  if (finalizable.empty()) return;
  // Step 2: install before images (with CLRs), merged across the
  // closure, in global reverse chronological order.
  Status undo = undo_.UndoSetLocked(finalizable, &locks_);
  assert(undo.ok());
  (void)undo;
  for (TransactionDescriptor* m : finalizable) FinalizeAbortLocked(m);
  sync_.cv.notify_all();  // active_count_ changed (WaitIdle)
}

void TransactionManager::FinalizeAbortLocked(TransactionDescriptor* td) {
  LogRecord rec;
  rec.type = LogRecordType::kAbort;
  rec.tid = td->tid;
  log_->Append(std::move(rec));
  // Step 3: release locks (wakes the waiters on those objects).
  locks_.ReleaseAll(td);
  // Snapshot the dependents before edges are removed: every one of them
  // may be blocked on this transaction's fate.
  std::vector<Tid> watchers;
  for (const Dependency& d : deps_.DependenciesOn(td->tid)) {
    watchers.push_back(d.dependent);
  }
  // Step 5: drop edges (dooming was already decided by the closure walk;
  // surviving CDs on this transaction dissolve here) and permits.
  deps_.RemoveAllFor(td->tid);
  permit_table_.RemoveAllFor(td->tid);
  // Step 6.
  td->status = TxnStatus::kAborted;
  if (td->begun) active_count_--;
  unterminated_count_--;
  stats_.txns_aborted.fetch_add(1, std::memory_order_relaxed);
  recorder_.Emit(TraceEventType::kTxnAbort, td->tid, td->parent);
  NotifyTxnLocked(td);     // Abort/Commit/Wait sleepers on this txn
  td->lock_wait.Notify();  // a blocked lock request of its own fails fast
  for (Tid w : watchers) {
    if (TransactionDescriptor* wtd = FindLocked(w)) NotifyTxnLocked(wtd);
    // See CommitGroupLocked: the watcher's group evaluation may sleep on
    // a peer's cv.
    WakeGroupLocked(w);
  }
}

// ---------------------------------------------------------------------------
// New primitives (§2.2)

Status TransactionManager::Delegate(Tid ti, Tid tj, const ObjectSet& objs) {
  std::lock_guard<std::mutex> lk(sync_.mu);
  TransactionDescriptor* tdi = FindLocked(ti);
  TransactionDescriptor* tdj = FindLocked(tj);
  if (tdi == nullptr || tdj == nullptr) {
    return Status::NotFound("delegate: unknown transaction");
  }
  if (IsTerminated(tdi->status) || IsTerminated(tdj->status)) {
    return Status::IllegalState("delegate: transaction already terminated");
  }
  // Delegation *to* an initiated transaction is explicitly supported
  // (§2.2's noteworthy design decision).
  size_t moved =
      locks_.Delegate(tdi, tdj, objs);  // wakes waiters on moved objects
  permit_table_.RedirectGrantor(ti, tj, objs);
  undo_.DelegateLocked(tdi, tdj, objs);
  stats_.delegations.fetch_add(1, std::memory_order_relaxed);
  recorder_.Emit(TraceEventType::kDelegate, ti, tj, kNullObjectId, moved);
  // Redirected permits can admit waiters on objects whose locks did NOT
  // move (tj already held them); let every blocked requester re-check.
  WakeLockWaitersLocked();
  return Status::OK();
}

Status TransactionManager::Delegate(Tid ti, Tid tj) {
  return Delegate(ti, tj, ObjectSet::All());
}

Status TransactionManager::Permit(Tid ti, Tid tj, const ObjectSet& objs,
                                  OpSet ops) {
  std::lock_guard<std::mutex> lk(sync_.mu);
  TransactionDescriptor* tdi = FindLocked(ti);
  if (tdi == nullptr) return Status::NotFound("permit: unknown grantor");
  if (IsTerminated(tdi->status)) {
    return Status::IllegalState("permit: grantor already terminated");
  }
  if (tj != kNullTid) {
    TransactionDescriptor* tdj = FindLocked(tj);
    if (tdj == nullptr) return Status::NotFound("permit: unknown grantee");
    if (IsTerminated(tdj->status)) {
      return Status::IllegalState("permit: grantee already terminated");
    }
  }
  ObjectSet concrete = objs;
  if (objs.IsAll()) {
    // §4.2: expand over the objects the grantor accessed or has
    // permission to access.
    concrete = locks_.LockedObjects(tdi).Union(
        permit_table_.ObjectsPermittedTo(ti));
  }
  size_t before = permit_table_.size();
  ASSET_RETURN_NOT_OK(permit_table_.Insert(ti, tj, std::move(concrete), ops));
  stats_.permits_inserted.fetch_add(1, std::memory_order_relaxed);
  size_t grew = permit_table_.size() - before;
  if (grew > 1) {
    stats_.permits_derived.fetch_add(grew - 1, std::memory_order_relaxed);
  }
  recorder_.Emit(TraceEventType::kPermit, ti, tj, kNullObjectId, grew);
  WakeLockWaitersLocked();  // a new permit can unblock lock waiters
  return Status::OK();
}

Status TransactionManager::Permit(Tid ti, Tid tj, OpSet ops) {
  return Permit(ti, tj, ObjectSet::All(), ops);
}

Status TransactionManager::Permit(Tid ti, Tid tj) {
  return Permit(ti, tj, ObjectSet::All(), OpSet::All());
}

Status TransactionManager::PermitAny(Tid ti, const ObjectSet& objs,
                                     OpSet ops) {
  return Permit(ti, kNullTid, objs, ops);
}

Status TransactionManager::FormDependency(DependencyType type, Tid ti,
                                          Tid tj) {
  std::lock_guard<std::mutex> lk(sync_.mu);
  TxnStatus si = StatusOfLocked(ti);
  TxnStatus sj = StatusOfLocked(tj);
  if (FindLocked(ti) == nullptr && tombstones_.count(ti) == 0) {
    return Status::NotFound("form_dependency: unknown transaction ti");
  }
  if (FindLocked(tj) == nullptr && tombstones_.count(tj) == 0) {
    return Status::NotFound("form_dependency: unknown transaction tj");
  }
  if (sj == TxnStatus::kAborted || sj == TxnStatus::kAborting) {
    return Status::OK();  // constraining an aborted dependent is vacuous
  }
  if (sj == TxnStatus::kCommitted) {
    return Status::IllegalState(
        "form_dependency: dependent already committed");
  }
  if (si == TxnStatus::kCommitted) {
    // CD/AD on a committed dependee can never fire; GC degenerates to
    // "tj commits normally". All vacuous.
    return Status::OK();
  }
  if (si == TxnStatus::kAborted || si == TxnStatus::kAborting) {
    if (type == DependencyType::kCommit) return Status::OK();
    if (type == DependencyType::kBeginOnBegin) {
      // Vacuous if the aborted dependee did begin at some point.
      const TransactionDescriptor* tdi = FindLocked(ti);
      if (tdi != nullptr && tdi->begun) return Status::OK();
    }
    return Status::IllegalState(
        "form_dependency: dependee already aborted; the dependency would "
        "be instantly violated");
  }
  Status s = deps_.Add(type, ti, tj);
  if (s.ok()) {
    stats_.dependencies_formed.fetch_add(1, std::memory_order_relaxed);
    recorder_.Emit(TraceEventType::kDependency, ti, tj, kNullObjectId,
                   static_cast<uint64_t>(type));
  } else if (s.code() == StatusCode::kDependencyCycle) {
    stats_.dependency_cycles_rejected.fetch_add(1,
                                                std::memory_order_relaxed);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Data operations (§4.2)

TransactionManager::TxnRef::~TxnRef() {
  if (!pinned) return;
  // Drop the op pin first (seq_cst: pairs with the closure walk's
  // status-store-then-op_pins-load under the kernel mutex), then look at
  // the status. Either the closure walk sees our pin and defers — in
  // which case we observe kAborting here and finish the closure — or it
  // sees the pin already gone and finalizes itself. Both may happen;
  // FinishAbortClosureLocked is idempotent.
  td->op_pins.fetch_sub(1);
  if (td->status.load() == TxnStatus::kAborting) {
    std::lock_guard<std::mutex> lk(mgr->sync_.mu);
    mgr->FinishAbortClosureLocked(td);
  }
  td->pins.fetch_sub(1, std::memory_order_release);
}

Status TransactionManager::PrepareDataOp(Tid t, const char* what,
                                         bool distinguish_aborted,
                                         TxnRef* out) {
  TransactionDescriptor* td = tls_current;
  if (td != nullptr && td->tid == t) {
    // Fast path: the calling thread IS the transaction. Its TD cannot
    // be reclaimed while its thread runs (thread_exited is false), and
    // a closure abort defers finalization until the thread exits, so no
    // pin and no kernel mutex are needed — one atomic status load.
    TxnStatus s = td->status.load(std::memory_order_acquire);
    if (s != TxnStatus::kRunning) {
      return NotRunningError(what, s, distinguish_aborted);
    }
    out->td = td;
    return Status::OK();
  }
  std::lock_guard<std::mutex> lk(sync_.mu);
  td = FindLocked(t);
  if (td == nullptr) {
    return Status::NotFound(std::string(what) + ": unknown transaction");
  }
  TxnStatus s = td->status.load(std::memory_order_acquire);
  if (s != TxnStatus::kRunning) {
    return NotRunningError(what, s, distinguish_aborted);
  }
  // The op pin makes a concurrent abort of this transaction (explicit
  // AbortTxn from another thread, or propagation along a dependency)
  // defer its lock release and undo until this operation is out of the
  // kernel; the plain pin additionally blocks TD reclamation.
  td->pins.fetch_add(1, std::memory_order_relaxed);
  td->op_pins.fetch_add(1);
  out->mgr = this;
  out->td = td;
  out->pinned = true;
  return Status::OK();
}

Status TransactionManager::AcquireOrDoom(TransactionDescriptor* td,
                                         ObjectId oid, LockMode mode) {
  Status s = locks_.Acquire(td, oid, mode);
  if (s.IsDeadlock() || s.IsTimedOut()) {
    // Under strict two-phase locking these are unrecoverable for this
    // transaction: mark it aborting so a later commit cannot publish a
    // partial result the caller never noticed.
    std::lock_guard<std::mutex> lk(sync_.mu);
    StartAbortLocked(td, s.message());
  }
  return s;
}

Result<std::vector<uint8_t>> TransactionManager::Read(Tid t, ObjectId oid) {
  TxnRef ref;
  ASSET_RETURN_NOT_OK(PrepareDataOp(t, "read", /*distinguish_aborted=*/true,
                                    &ref));
  ASSET_RETURN_NOT_OK(AcquireOrDoom(ref.td, oid, LockMode::kRead));
  // §4.2 read: S-latch, read, unlatch. Holding our lock keeps the OD
  // alive (and the op pin keeps a concurrent abort from releasing it).
  ObjectDescriptor* od = locks_.Find(oid);
  if (od == nullptr) {
    return Status::TxnAborted("read: transaction " + std::to_string(t) +
                              " lost its lock on object " +
                              std::to_string(oid) + " mid-operation");
  }
  od->data_latch.LockShared();
  auto value = store_->Read(oid);
  od->data_latch.UnlockShared();
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return value;
}

Status TransactionManager::Write(Tid t, ObjectId oid,
                                 std::span<const uint8_t> data) {
  TxnRef ref;
  ASSET_RETURN_NOT_OK(PrepareDataOp(t, "write", /*distinguish_aborted=*/true,
                                    &ref));
  ASSET_RETURN_NOT_OK(AcquireOrDoom(ref.td, oid, LockMode::kWrite));
  ObjectDescriptor* od = locks_.Find(oid);
  if (od == nullptr) {
    return Status::TxnAborted("write: transaction " + std::to_string(t) +
                              " lost its lock on object " +
                              std::to_string(oid) + " mid-operation");
  }
  // §4.2 write: X-latch; log before image; write; log after image.
  od->data_latch.LockExclusive();
  auto before = store_->Read(oid);
  if (!before.ok()) {
    od->data_latch.UnlockExclusive();
    return before.status();
  }
  // Track the append -> apply -> register span so a fuzzy checkpoint
  // drains it before snapshotting the active-transaction table.
  LogManager::ApplyGuard apply_guard(log_);
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.tid = t;
  rec.oid = oid;
  rec.before = std::move(before).value();
  rec.after.assign(data.begin(), data.end());
  Lsn lsn = log_->Append(std::move(rec));
  Status applied = store_->Write(oid, data);
  od->data_latch.UnlockExclusive();
  if (!applied.ok()) return applied;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    undo_.RecordLocked(ref.td, lsn);
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<ObjectId> TransactionManager::CreateObject(
    Tid t, std::span<const uint8_t> data) {
  TxnRef ref;
  ASSET_RETURN_NOT_OK(PrepareDataOp(t, "create", /*distinguish_aborted=*/false,
                                    &ref));
  // Validate size before logging, so the log never carries a create
  // that cannot apply (or replay).
  if (data.size() > ObjectStore::MaxObjectSize()) {
    return Status::InvalidArgument("object larger than page capacity");
  }
  ObjectId oid = store_->AllocateId();
  Status locked = locks_.Acquire(ref.td, oid, LockMode::kWrite);
  if (!locked.ok()) {
    // Unreachable contention (the id is fresh), but the transaction may
    // have been marked aborting while we allocated. Nothing to undo:
    // neither the log nor the store has seen the object yet.
    return locked;
  }
  // §4.2 write-ahead, create-shaped: log first, then materialize. The
  // buffer pool samples the log position when the store dirties a page,
  // so the kCreate record must exist before the page mutation — else an
  // eviction could steal the page without forcing the record, and a
  // crash would resurrect the uncommitted object with no log record to
  // undo it.
  LogManager::ApplyGuard apply_guard(log_);
  LogRecord rec;
  rec.type = LogRecordType::kCreate;
  rec.tid = t;
  rec.oid = oid;
  rec.after.assign(data.begin(), data.end());
  Lsn lsn = log_->Append(std::move(rec));
  Status applied = store_->CreateWithId(oid, data);
  if (!applied.ok()) {
    // The create is logged but never materialized (store full, pool
    // eviction error). A later commit would still redo it, resurrecting
    // an object the caller was told failed — neutralize the record now
    // with a CLR instead of recording an undo, so the outcome is the
    // same whether the transaction commits or aborts.
    LogRecord clr;
    clr.type = LogRecordType::kClrDelete;
    clr.tid = t;
    clr.oid = oid;
    clr.undo_of = lsn;
    log_->Append(std::move(clr));
    return applied;
  }
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    undo_.RecordLocked(ref.td, lsn);
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return oid;
}

Status TransactionManager::DeleteObject(Tid t, ObjectId oid) {
  TxnRef ref;
  ASSET_RETURN_NOT_OK(PrepareDataOp(t, "delete", /*distinguish_aborted=*/false,
                                    &ref));
  ASSET_RETURN_NOT_OK(AcquireOrDoom(ref.td, oid, LockMode::kWrite));
  ObjectDescriptor* od = locks_.Find(oid);
  if (od == nullptr) {
    return Status::TxnAborted("delete: transaction " + std::to_string(t) +
                              " lost its lock on object " +
                              std::to_string(oid) + " mid-operation");
  }
  od->data_latch.LockExclusive();
  auto before = store_->Read(oid);
  if (!before.ok()) {
    od->data_latch.UnlockExclusive();
    return before.status();
  }
  LogManager::ApplyGuard apply_guard(log_);
  LogRecord rec;
  rec.type = LogRecordType::kDelete;
  rec.tid = t;
  rec.oid = oid;
  rec.before = std::move(before).value();
  Lsn lsn = log_->Append(std::move(rec));
  Status applied = store_->ApplyDelete(oid);
  od->data_latch.UnlockExclusive();
  if (!applied.ok()) return applied;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    undo_.RecordLocked(ref.td, lsn);
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Semantic operations (paper §5)

Result<ObjectId> TransactionManager::CreateCounter(Tid t, int64_t initial) {
  return CreateObject(t, ObjectStore::EncodeCounter(kNullLsn, initial));
}

Status TransactionManager::Increment(Tid t, ObjectId oid, int64_t delta) {
  TxnRef ref;
  ASSET_RETURN_NOT_OK(PrepareDataOp(t, "increment",
                                    /*distinguish_aborted=*/true, &ref));
  ASSET_RETURN_NOT_OK(AcquireOrDoom(ref.td, oid, LockMode::kIncrement));
  ObjectDescriptor* od = locks_.Find(oid);
  if (od == nullptr) {
    return Status::TxnAborted("increment: transaction " + std::to_string(t) +
                              " lost its lock on object " +
                              std::to_string(oid) + " mid-operation");
  }
  od->data_latch.LockExclusive();
  // Validate counter shape before logging, so the log never carries an
  // increment that cannot replay.
  auto current = store_->ReadCounter(oid);
  if (!current.ok()) {
    od->data_latch.UnlockExclusive();
    return current.status();
  }
  LogManager::ApplyGuard apply_guard(log_);
  LogRecord rec;
  rec.type = LogRecordType::kIncrement;
  rec.tid = t;
  rec.oid = oid;
  rec.after = EncodeI64(delta);
  Lsn lsn = log_->Append(std::move(rec));
  auto applied = store_->ApplyDelta(oid, lsn, delta);
  od->data_latch.UnlockExclusive();
  if (!applied.ok()) return applied.status();
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    undo_.RecordLocked(ref.td, lsn);
  }
  stats_.increments.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<int64_t> TransactionManager::ReadCounter(Tid t, ObjectId oid) {
  auto bytes = Read(t, oid);
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() != sizeof(Lsn) + sizeof(int64_t)) {
    return Status::InvalidArgument("object is not counter-shaped");
  }
  int64_t value;
  std::memcpy(&value, bytes->data() + sizeof(Lsn), sizeof(int64_t));
  return value;
}

// ---------------------------------------------------------------------------
// Introspection

size_t TransactionManager::ActiveTransactions() const {
  std::lock_guard<std::mutex> lk(sync_.mu);
  return active_count_;
}

bool TransactionManager::WaitIdle(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lk(sync_.mu);
  auto idle = [&] { return active_count_ == 0 && live_threads_ == 0; };
  if (timeout.count() == 0) {
    sync_.cv.wait(lk, idle);
    return true;
  }
  return sync_.cv.wait_for(lk, timeout, idle);
}

std::vector<FuzzyCheckpointImage::TxnEntry>
TransactionManager::SnapshotActiveTransactions() const {
  std::lock_guard<std::mutex> lk(sync_.mu);
  std::vector<FuzzyCheckpointImage::TxnEntry> out;
  for (const auto& [tid, td] : txns_) {
    if (!td->begun || IsTerminated(td->status)) continue;
    FuzzyCheckpointImage::TxnEntry e;
    e.tid = tid;
    e.ops = td->responsible_ops;
    out.push_back(std::move(e));
  }
  return out;
}

KernelStateSnapshot TransactionManager::SnapshotState() const {
  KernelStateSnapshot snap;
  std::lock_guard<std::mutex> lk(sync_.mu);
  snap.transactions.reserve(txns_.size());
  for (const auto& [tid, td] : txns_) {
    KernelStateSnapshot::TxnInfo info;
    info.tid = tid;
    info.parent = td->parent;
    info.status = td->status.load(std::memory_order_acquire);
    info.session = td->session;
    {
      // lrds_mu is below the kernel mutex in the lock order (kernel.h),
      // so taking it here is legal; release/delegation mutate the list
      // under it from outside the kernel mutex.
      std::lock_guard<std::mutex> ll(td->lrds_mu);
      info.locks_held = td->lrds.size();
    }
    info.ops_responsible = td->responsible_ops.size();
    info.commit_lsn = td->commit_lsn;
    info.abort_reason = td->abort_reason;
    snap.transactions.push_back(std::move(info));
    if (!td->waiting_for.empty()) {
      KernelStateSnapshot::WaitEdge edge;
      edge.waiter = tid;
      edge.oid = td->waiting_for_oid;
      edge.blockers = td->waiting_for;
      snap.wait_for.push_back(std::move(edge));
    }
  }
  // Deterministic order for tests and diffing (the TD table iterates in
  // hash order).
  std::sort(snap.transactions.begin(), snap.transactions.end(),
            [](const auto& a, const auto& b) { return a.tid < b.tid; });
  std::sort(snap.wait_for.begin(), snap.wait_for.end(),
            [](const auto& a, const auto& b) { return a.waiter < b.waiter; });
  snap.dependencies = deps_.Edges();
  snap.permits = permit_table_.AllPermits();
  snap.last_deadlock_cycle = sync_.last_deadlock_cycle;
  return snap;
}

}  // namespace asset
