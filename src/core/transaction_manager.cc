#include "core/transaction_manager.h"

#include <cassert>
#include <cstring>
#include <thread>
#include <unordered_set>

namespace asset {

namespace {

/// The transaction executing on this thread (the paper's per-process
/// current transaction; self()/parent() read it).
thread_local TransactionDescriptor* tls_current = nullptr;

/// Collect terminated TDs once the table grows past this.
constexpr size_t kCollectThreshold = 1024;

}  // namespace

TransactionManager::TransactionManager(LogManager* log, ObjectStore* store,
                                       Options options)
    : options_(options),
      log_(log),
      store_(store),
      locks_(&sync_, &permit_table_, &txns_, &stats_, options.lock),
      undo_(log, store, &stats_) {}

TransactionManager::TransactionManager(LogManager* log, ObjectStore* store)
    : TransactionManager(log, store, Options()) {}

TransactionManager::~TransactionManager() {
  std::unique_lock<std::mutex> lk(sync_.mu);
  shutting_down_ = true;
  for (auto& [tid, td] : txns_) {
    if (!IsTerminated(td->status)) {
      StartAbortLocked(td.get());
    }
  }
  sync_.cv.wait(lk, [&] { return live_threads_ == 0; });
}

// ---------------------------------------------------------------------------
// Lookup helpers

TransactionDescriptor* TransactionManager::FindLocked(Tid t) const {
  auto it = txns_.find(t);
  return it == txns_.end() ? nullptr : it->second.get();
}

TxnStatus TransactionManager::StatusOfLocked(Tid t) const {
  if (const TransactionDescriptor* td = FindLocked(t)) return td->status;
  auto it = tombstones_.find(t);
  if (it != tombstones_.end()) return it->second;
  // Unknown tids should not arise (dependencies validate both ends);
  // fail safe by treating them as aborted.
  return TxnStatus::kAborted;
}

void TransactionManager::CollectLocked() {
  for (auto it = txns_.begin(); it != txns_.end();) {
    TransactionDescriptor* td = it->second.get();
    if (IsTerminated(td->status) && td->thread_exited) {
      tombstones_.emplace(td->tid, td->status);
      it = txns_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Basic primitives (§2.1)

Tid TransactionManager::InitiateFn(std::function<void()> fn) {
  std::lock_guard<std::mutex> lk(sync_.mu);
  if (shutting_down_) return kNullTid;
  if (txns_.size() >= kCollectThreshold) CollectLocked();
  size_t unterminated = 0;
  for (const auto& [tid, td] : txns_) {
    if (!IsTerminated(td->status)) ++unterminated;
  }
  if (unterminated >= options_.max_transactions) {
    return kNullTid;  // the paper's "no resources available" error
  }
  Tid tid = next_tid_++;
  Tid parent = tls_current != nullptr ? tls_current->tid : kNullTid;
  auto td = std::make_unique<TransactionDescriptor>(tid, parent);
  td->fn = fn ? std::move(fn) : [] {};
  txns_.emplace(tid, std::move(td));
  stats_.txns_initiated.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

bool TransactionManager::Begin(Tid t) {
  TransactionDescriptor* td;
  {
    std::unique_lock<std::mutex> lk(sync_.mu);
    const bool bounded = options_.commit_timeout.count() > 0;
    const auto deadline =
        std::chrono::steady_clock::now() + options_.commit_timeout;
    // Begin-dependency gate (ACTA BD/BCD extension): block until every
    // begin-dependency is satisfied; fail if one became unsatisfiable.
    for (;;) {
      td = FindLocked(t);
      if (td == nullptr || td->status != TxnStatus::kInitiated ||
          shutting_down_) {
        return false;
      }
      bool blocked = false;
      for (const Dependency& d : deps_.DependenciesOf(t)) {
        if (d.type == DependencyType::kBeginOnBegin) {
          const TransactionDescriptor* dep = FindLocked(d.dependee);
          TxnStatus ds = StatusOfLocked(d.dependee);
          bool dep_begun =
              dep != nullptr ? dep->begun : ds == TxnStatus::kCommitted;
          if (dep_begun) continue;
          if (ds == TxnStatus::kAborted) return false;  // never will begin
          blocked = true;
        } else if (d.type == DependencyType::kBeginOnCommit) {
          TxnStatus ds = StatusOfLocked(d.dependee);
          if (ds == TxnStatus::kCommitted) continue;
          if (ds == TxnStatus::kAborted) return false;
          blocked = true;
        }
      }
      if (!blocked) break;
      if (bounded) {
        if (sync_.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
          return false;
        }
      } else {
        sync_.cv.wait(lk);
      }
    }
    td->status = TxnStatus::kRunning;
    td->begun = true;
    td->thread_exited = false;
    active_count_++;
    live_threads_++;
    LogRecord rec;
    rec.type = LogRecordType::kBegin;
    rec.tid = t;
    log_->Append(std::move(rec));
    stats_.txns_begun.fetch_add(1, std::memory_order_relaxed);
  }
  executor_.Submit([this, td] { ThreadMain(td); });
  return true;
}

bool TransactionManager::Begin(std::initializer_list<Tid> ts) {
  bool all = true;
  for (Tid t : ts) all = Begin(t) && all;
  return all;
}

void TransactionManager::ThreadMain(TransactionDescriptor* td) {
  tls_current = td;
  try {
    td->fn();
  } catch (...) {
    // The library itself never throws; an escaping user exception aborts
    // the transaction rather than the process.
    std::lock_guard<std::mutex> lk(sync_.mu);
    if (td->status == TxnStatus::kRunning) {
      td->status = TxnStatus::kAborting;
    }
  }
  tls_current = nullptr;
  std::lock_guard<std::mutex> lk(sync_.mu);
  td->thread_exited = true;
  live_threads_--;
  if (td->status == TxnStatus::kRunning) {
    // §2.1: locks are kept and changes stay volatile; the manager just
    // records the completion.
    td->status = TxnStatus::kCompleted;
  } else if (td->status == TxnStatus::kAborting) {
    FinishAbortLocked(td);
  }
  sync_.cv.notify_all();
}

bool TransactionManager::Commit(Tid t) {
  std::unique_lock<std::mutex> lk(sync_.mu);
  const bool bounded = options_.commit_timeout.count() > 0;
  const auto deadline =
      std::chrono::steady_clock::now() + options_.commit_timeout;
  for (;;) {  // the paper's "blocks and retries later starting at step 1"
    TransactionDescriptor* td = FindLocked(t);
    if (td == nullptr) {
      auto it = tombstones_.find(t);
      return it != tombstones_.end() && it->second == TxnStatus::kCommitted;
    }
    switch (td->status) {
      case TxnStatus::kCommitted:
        return true;
      case TxnStatus::kAborted:
        return false;
      case TxnStatus::kAborting:
        break;  // wait for the physical abort, then report failure
      case TxnStatus::kCompleted:
        td->status = TxnStatus::kCommitting;
        [[fallthrough]];
      case TxnStatus::kCommitting: {
        std::vector<TransactionDescriptor*> group;
        CommitEval eval = EvaluateCommitLocked(td, &group);
        if (eval == CommitEval::kCommit) {
          CommitGroupLocked(group);
          return true;
        }
        if (eval == CommitEval::kAbort) {
          // An abort/group dependency makes commit impossible: the whole
          // GC component aborts (§4.2 commit step 2a via abort step 4a).
          for (Tid m : deps_.GroupOf(t)) {
            if (TransactionDescriptor* mtd = FindLocked(m)) {
              StartAbortLocked(mtd);
            }
          }
          break;  // wait until the abort lands, then return false
        }
        break;  // kWait
      }
      case TxnStatus::kInitiated:
      case TxnStatus::kRunning:
        break;  // commit blocks until execution completes (§2.1)
    }
    if (bounded) {
      if (sync_.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
        // Unresolvable within the bound: abort so the 0 return is true.
        TransactionDescriptor* again = FindLocked(t);
        if (again == nullptr) {
          auto it = tombstones_.find(t);
          return it != tombstones_.end() &&
                 it->second == TxnStatus::kCommitted;
        }
        if (again->status == TxnStatus::kCommitted) return true;
        if (again->status != TxnStatus::kAborted) {
          StartAbortLocked(again);
        }
        return false;
      }
    } else {
      sync_.cv.wait(lk);
    }
  }
}

int TransactionManager::Wait(Tid t) {
  if (tls_current != nullptr && tls_current->tid == t) {
    // wait(self()) — the appendix uses it as "am I still viable?".
    std::lock_guard<std::mutex> lk(sync_.mu);
    return (tls_current->status == TxnStatus::kAborting ||
            tls_current->status == TxnStatus::kAborted)
               ? 0
               : 1;
  }
  std::unique_lock<std::mutex> lk(sync_.mu);
  for (;;) {
    TransactionDescriptor* td = FindLocked(t);
    if (td == nullptr) {
      auto it = tombstones_.find(t);
      return it != tombstones_.end() && it->second == TxnStatus::kCommitted
                 ? 1
                 : 0;
    }
    switch (td->status) {
      case TxnStatus::kCompleted:
      case TxnStatus::kCommitting:
      case TxnStatus::kCommitted:
        return 1;
      case TxnStatus::kAborting:
      case TxnStatus::kAborted:
        return 0;
      case TxnStatus::kInitiated:
      case TxnStatus::kRunning:
        sync_.cv.wait(lk);
        break;
    }
  }
}

bool TransactionManager::Abort(Tid t) {
  std::unique_lock<std::mutex> lk(sync_.mu);
  for (;;) {
    TransactionDescriptor* td = FindLocked(t);
    if (td == nullptr) {
      auto it = tombstones_.find(t);
      return !(it != tombstones_.end() &&
               it->second == TxnStatus::kCommitted);
    }
    switch (td->status) {
      case TxnStatus::kCommitted:
        return false;
      case TxnStatus::kAborted:
        return true;
      case TxnStatus::kAborting:
        // Someone (possibly us, one iteration ago) is already aborting
        // it; wait for the physical abort to finish.
        if (tls_current == td) return true;  // own thread finishes later
        sync_.cv.wait(lk);
        break;
      default:
        StartAbortLocked(td);
        if (tls_current == td) {
          // abort(self()): the physical abort runs when our function
          // returns; report success now.
          return true;
        }
        break;
    }
  }
}

Tid TransactionManager::Self() {
  return tls_current != nullptr ? tls_current->tid : kNullTid;
}

Tid TransactionManager::Parent() {
  return tls_current != nullptr ? tls_current->parent : kNullTid;
}

Tid TransactionManager::ParentOf(Tid t) const {
  std::lock_guard<std::mutex> lk(sync_.mu);
  const TransactionDescriptor* td = FindLocked(t);
  return td != nullptr ? td->parent : kNullTid;
}

TxnStatus TransactionManager::GetStatus(Tid t) const {
  std::lock_guard<std::mutex> lk(sync_.mu);
  return StatusOfLocked(t);
}

// ---------------------------------------------------------------------------
// Commit machinery

TransactionManager::CommitEval TransactionManager::EvaluateCommitLocked(
    TransactionDescriptor* td, std::vector<TransactionDescriptor*>* group) {
  group->clear();
  std::vector<Tid> member_tids = deps_.GroupOf(td->tid);
  std::unordered_set<Tid> in_group(member_tids.begin(), member_tids.end());
  for (Tid m : member_tids) {
    TransactionDescriptor* mtd = FindLocked(m);
    if (mtd == nullptr) {
      // Terminated and collected; GC edges are removed at termination,
      // so this should not happen — fail safe.
      return CommitEval::kAbort;
    }
    group->push_back(mtd);
  }
  // Every member must have completed execution and not be aborting
  // (commit blocks until execution completes; GC commits as one).
  for (TransactionDescriptor* m : *group) {
    switch (m->status) {
      case TxnStatus::kAborting:
      case TxnStatus::kAborted:
        return CommitEval::kAbort;
      case TxnStatus::kInitiated:
      case TxnStatus::kRunning:
        return CommitEval::kWait;
      default:
        break;
    }
  }
  // §4.2 commit step 2: outgoing CD/AD dependencies of every member on
  // transactions outside the group.
  for (TransactionDescriptor* m : *group) {
    for (const Dependency& d : deps_.DependenciesOf(m->tid)) {
      if (d.type == DependencyType::kGroupCommit) continue;
      if (d.type == DependencyType::kBeginOnBegin ||
          d.type == DependencyType::kBeginOnCommit) {
        continue;  // satisfied at begin() time, no commit constraint
      }
      if (in_group.count(d.dependee) != 0) continue;  // commits with us
      TxnStatus xs = StatusOfLocked(d.dependee);
      if (d.type == DependencyType::kAbort) {
        // 2a: wait until the dependee commits; its abort dooms us.
        if (xs == TxnStatus::kAborted) return CommitEval::kAbort;
        if (xs != TxnStatus::kCommitted) return CommitEval::kWait;
      } else {
        // 2b: CD — wait until the dependee terminates either way.
        if (!IsTerminated(xs)) return CommitEval::kWait;
      }
    }
  }
  return CommitEval::kCommit;
}

void TransactionManager::CommitGroupLocked(
    const std::vector<TransactionDescriptor*>& group) {
  for (TransactionDescriptor* m : group) {
    LogRecord rec;
    rec.type = LogRecordType::kCommit;
    rec.tid = m->tid;
    log_->Append(std::move(rec));  // §4.2 commit step 4
  }
  if (options_.force_log_at_commit) {
    log_->Flush();
  }
  for (TransactionDescriptor* m : group) {
    m->status = TxnStatus::kCommitted;
    m->responsible_ops.clear();
    locks_.ReleaseAllLocked(m);            // step 6
    permit_table_.RemoveAllFor(m->tid);    // step 6
    deps_.RemoveAllFor(m->tid);            // step 5
    if (m->begun) active_count_--;
    stats_.txns_committed.fetch_add(1, std::memory_order_relaxed);
  }
  if (group.size() > 1) {
    stats_.group_commits.fetch_add(1, std::memory_order_relaxed);
  }
  sync_.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Abort machinery

void TransactionManager::StartAbortLocked(TransactionDescriptor* td) {
  switch (td->status) {
    case TxnStatus::kCommitted:
    case TxnStatus::kAborted:
    case TxnStatus::kAborting:
      return;
    case TxnStatus::kRunning:
      // Mark it; its in-flight operations fail fast and the physical
      // abort runs when its thread exits.
      td->status = TxnStatus::kAborting;
      sync_.cv.notify_all();
      return;
    case TxnStatus::kInitiated:
    case TxnStatus::kCompleted:
    case TxnStatus::kCommitting:
      td->status = TxnStatus::kAborting;
      if (td->thread_exited) {
        FinishAbortLocked(td);
      }
      return;
  }
}

void TransactionManager::FinishAbortLocked(TransactionDescriptor* td) {
  assert(td->status == TxnStatus::kAborting);
  assert(td->thread_exited);
  // Step 2: install before images (with CLRs) in reverse order.
  Status undo = undo_.UndoAllLocked(td, &locks_);
  assert(undo.ok());
  (void)undo;
  LogRecord rec;
  rec.type = LogRecordType::kAbort;
  rec.tid = td->tid;
  log_->Append(std::move(rec));
  // Step 3: release locks.
  locks_.ReleaseAllLocked(td);
  // Step 4: propagate along incoming dependencies.
  for (const Dependency& d : deps_.DependenciesOn(td->tid)) {
    switch (d.type) {
      case DependencyType::kCommit:
        deps_.Remove(d);  // 4b: a CD on an aborted transaction dissolves
        break;
      case DependencyType::kBeginOnBegin:
        if (td->begun) {
          deps_.Remove(d);  // was satisfied the moment td began
          break;
        }
        [[fallthrough]];  // never began: the dependent can never begin
      case DependencyType::kBeginOnCommit:
      case DependencyType::kAbort:
      case DependencyType::kGroupCommit:
        // 4a (and the begin-dependency analogue): the dependent aborts.
        if (TransactionDescriptor* dep = FindLocked(d.dependent)) {
          StartAbortLocked(dep);
        }
        break;
    }
  }
  // Step 5: drop remaining edges; also permits either way.
  deps_.RemoveAllFor(td->tid);
  permit_table_.RemoveAllFor(td->tid);
  // Step 6.
  td->status = TxnStatus::kAborted;
  if (td->begun) active_count_--;
  stats_.txns_aborted.fetch_add(1, std::memory_order_relaxed);
  sync_.cv.notify_all();
}

// ---------------------------------------------------------------------------
// New primitives (§2.2)

Status TransactionManager::Delegate(Tid ti, Tid tj, const ObjectSet& objs) {
  std::lock_guard<std::mutex> lk(sync_.mu);
  TransactionDescriptor* tdi = FindLocked(ti);
  TransactionDescriptor* tdj = FindLocked(tj);
  if (tdi == nullptr || tdj == nullptr) {
    return Status::NotFound("delegate: unknown transaction");
  }
  if (IsTerminated(tdi->status) || IsTerminated(tdj->status)) {
    return Status::IllegalState("delegate: transaction already terminated");
  }
  // Delegation *to* an initiated transaction is explicitly supported
  // (§2.2's noteworthy design decision).
  locks_.DelegateLocked(tdi, tdj, objs);
  permit_table_.RedirectGrantor(ti, tj, objs);
  undo_.DelegateLocked(tdi, tdj, objs);
  stats_.delegations.fetch_add(1, std::memory_order_relaxed);
  sync_.cv.notify_all();
  return Status::OK();
}

Status TransactionManager::Delegate(Tid ti, Tid tj) {
  return Delegate(ti, tj, ObjectSet::All());
}

Status TransactionManager::Permit(Tid ti, Tid tj, const ObjectSet& objs,
                                  OpSet ops) {
  std::lock_guard<std::mutex> lk(sync_.mu);
  TransactionDescriptor* tdi = FindLocked(ti);
  if (tdi == nullptr) return Status::NotFound("permit: unknown grantor");
  if (IsTerminated(tdi->status)) {
    return Status::IllegalState("permit: grantor already terminated");
  }
  if (tj != kNullTid) {
    TransactionDescriptor* tdj = FindLocked(tj);
    if (tdj == nullptr) return Status::NotFound("permit: unknown grantee");
    if (IsTerminated(tdj->status)) {
      return Status::IllegalState("permit: grantee already terminated");
    }
  }
  ObjectSet concrete = objs;
  if (objs.IsAll()) {
    // §4.2: expand over the objects the grantor accessed or has
    // permission to access.
    concrete = locks_.LockedObjectsLocked(tdi).Union(
        permit_table_.ObjectsPermittedTo(ti));
  }
  size_t before = permit_table_.size();
  ASSET_RETURN_NOT_OK(permit_table_.Insert(ti, tj, std::move(concrete), ops));
  stats_.permits_inserted.fetch_add(1, std::memory_order_relaxed);
  size_t grew = permit_table_.size() - before;
  if (grew > 1) {
    stats_.permits_derived.fetch_add(grew - 1, std::memory_order_relaxed);
  }
  sync_.cv.notify_all();  // a new permit can unblock lock waiters
  return Status::OK();
}

Status TransactionManager::Permit(Tid ti, Tid tj, OpSet ops) {
  return Permit(ti, tj, ObjectSet::All(), ops);
}

Status TransactionManager::Permit(Tid ti, Tid tj) {
  return Permit(ti, tj, ObjectSet::All(), OpSet::All());
}

Status TransactionManager::PermitAny(Tid ti, const ObjectSet& objs,
                                     OpSet ops) {
  return Permit(ti, kNullTid, objs, ops);
}

Status TransactionManager::FormDependency(DependencyType type, Tid ti,
                                          Tid tj) {
  std::lock_guard<std::mutex> lk(sync_.mu);
  TxnStatus si = StatusOfLocked(ti);
  TxnStatus sj = StatusOfLocked(tj);
  if (FindLocked(ti) == nullptr && tombstones_.count(ti) == 0) {
    return Status::NotFound("form_dependency: unknown transaction ti");
  }
  if (FindLocked(tj) == nullptr && tombstones_.count(tj) == 0) {
    return Status::NotFound("form_dependency: unknown transaction tj");
  }
  if (sj == TxnStatus::kAborted || sj == TxnStatus::kAborting) {
    return Status::OK();  // constraining an aborted dependent is vacuous
  }
  if (sj == TxnStatus::kCommitted) {
    return Status::IllegalState(
        "form_dependency: dependent already committed");
  }
  if (si == TxnStatus::kCommitted) {
    // CD/AD on a committed dependee can never fire; GC degenerates to
    // "tj commits normally". All vacuous.
    return Status::OK();
  }
  if (si == TxnStatus::kAborted || si == TxnStatus::kAborting) {
    if (type == DependencyType::kCommit) return Status::OK();
    if (type == DependencyType::kBeginOnBegin) {
      // Vacuous if the aborted dependee did begin at some point.
      const TransactionDescriptor* tdi = FindLocked(ti);
      if (tdi != nullptr && tdi->begun) return Status::OK();
    }
    return Status::IllegalState(
        "form_dependency: dependee already aborted; the dependency would "
        "be instantly violated");
  }
  Status s = deps_.Add(type, ti, tj);
  if (s.ok()) {
    stats_.dependencies_formed.fetch_add(1, std::memory_order_relaxed);
  } else if (s.code() == StatusCode::kDependencyCycle) {
    stats_.dependency_cycles_rejected.fetch_add(1,
                                                std::memory_order_relaxed);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Data operations (§4.2)

Status TransactionManager::AcquireOrDoom(TransactionDescriptor* td,
                                         ObjectId oid, LockMode mode) {
  Status s = locks_.Acquire(td, oid, mode);
  if (s.IsDeadlock() || s.IsTimedOut()) {
    // Under strict two-phase locking these are unrecoverable for this
    // transaction: mark it aborting so a later commit cannot publish a
    // partial result the caller never noticed.
    std::lock_guard<std::mutex> lk(sync_.mu);
    StartAbortLocked(td);
  }
  return s;
}

Result<std::vector<uint8_t>> TransactionManager::Read(Tid t, ObjectId oid) {
  TransactionDescriptor* td;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    td = FindLocked(t);
    if (td == nullptr) return Status::NotFound("read: unknown transaction");
    if (td->status != TxnStatus::kRunning) {
      if (td->status == TxnStatus::kAborting ||
          td->status == TxnStatus::kAborted) {
        return Status::TxnAborted("read: transaction is aborting");
      }
      return Status::IllegalState("read: transaction is not running");
    }
  }
  ASSET_RETURN_NOT_OK(AcquireOrDoom(td, oid, LockMode::kRead));
  ObjectDescriptor* od;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    od = locks_.FindLocked(oid);
  }
  // §4.2 read: S-latch, read, unlatch. Holding our lock keeps the OD
  // alive.
  od->data_latch.LockShared();
  auto value = store_->Read(oid);
  od->data_latch.UnlockShared();
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  return value;
}

Status TransactionManager::Write(Tid t, ObjectId oid,
                                 std::span<const uint8_t> data) {
  TransactionDescriptor* td;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    td = FindLocked(t);
    if (td == nullptr) return Status::NotFound("write: unknown transaction");
    if (td->status != TxnStatus::kRunning) {
      if (td->status == TxnStatus::kAborting ||
          td->status == TxnStatus::kAborted) {
        return Status::TxnAborted("write: transaction is aborting");
      }
      return Status::IllegalState("write: transaction is not running");
    }
  }
  ASSET_RETURN_NOT_OK(AcquireOrDoom(td, oid, LockMode::kWrite));
  ObjectDescriptor* od;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    od = locks_.FindLocked(oid);
  }
  // §4.2 write: X-latch; log before image; write; log after image.
  od->data_latch.LockExclusive();
  auto before = store_->Read(oid);
  if (!before.ok()) {
    od->data_latch.UnlockExclusive();
    return before.status();
  }
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.tid = t;
  rec.oid = oid;
  rec.before = std::move(before).value();
  rec.after.assign(data.begin(), data.end());
  Lsn lsn = log_->Append(std::move(rec));
  Status applied = store_->Write(oid, data);
  od->data_latch.UnlockExclusive();
  if (!applied.ok()) return applied;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    undo_.RecordLocked(td, lsn);
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<ObjectId> TransactionManager::CreateObject(
    Tid t, std::span<const uint8_t> data) {
  TransactionDescriptor* td;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    td = FindLocked(t);
    if (td == nullptr) {
      return Status::NotFound("create: unknown transaction");
    }
    if (td->status != TxnStatus::kRunning) {
      return Status::IllegalState("create: transaction is not running");
    }
  }
  auto oid = store_->Create(data);
  if (!oid.ok()) return oid.status();
  Status locked = locks_.Acquire(td, *oid, LockMode::kWrite);
  if (!locked.ok()) {
    // Unreachable contention (the id is fresh), but the transaction may
    // have been marked aborting while we allocated.
    (void)store_->ApplyDelete(*oid);
    return locked;
  }
  LogRecord rec;
  rec.type = LogRecordType::kCreate;
  rec.tid = t;
  rec.oid = *oid;
  rec.after.assign(data.begin(), data.end());
  Lsn lsn = log_->Append(std::move(rec));
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    undo_.RecordLocked(td, lsn);
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return oid;
}

Status TransactionManager::DeleteObject(Tid t, ObjectId oid) {
  TransactionDescriptor* td;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    td = FindLocked(t);
    if (td == nullptr) {
      return Status::NotFound("delete: unknown transaction");
    }
    if (td->status != TxnStatus::kRunning) {
      return Status::IllegalState("delete: transaction is not running");
    }
  }
  ASSET_RETURN_NOT_OK(AcquireOrDoom(td, oid, LockMode::kWrite));
  ObjectDescriptor* od;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    od = locks_.FindLocked(oid);
  }
  od->data_latch.LockExclusive();
  auto before = store_->Read(oid);
  if (!before.ok()) {
    od->data_latch.UnlockExclusive();
    return before.status();
  }
  LogRecord rec;
  rec.type = LogRecordType::kDelete;
  rec.tid = t;
  rec.oid = oid;
  rec.before = std::move(before).value();
  Lsn lsn = log_->Append(std::move(rec));
  Status applied = store_->ApplyDelete(oid);
  od->data_latch.UnlockExclusive();
  if (!applied.ok()) return applied;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    undo_.RecordLocked(td, lsn);
  }
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Semantic operations (paper Â§5)

Result<ObjectId> TransactionManager::CreateCounter(Tid t, int64_t initial) {
  return CreateObject(t, ObjectStore::EncodeCounter(kNullLsn, initial));
}

Status TransactionManager::Increment(Tid t, ObjectId oid, int64_t delta) {
  TransactionDescriptor* td;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    td = FindLocked(t);
    if (td == nullptr) {
      return Status::NotFound("increment: unknown transaction");
    }
    if (td->status != TxnStatus::kRunning) {
      if (td->status == TxnStatus::kAborting ||
          td->status == TxnStatus::kAborted) {
        return Status::TxnAborted("increment: transaction is aborting");
      }
      return Status::IllegalState("increment: transaction is not running");
    }
  }
  ASSET_RETURN_NOT_OK(AcquireOrDoom(td, oid, LockMode::kIncrement));
  ObjectDescriptor* od;
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    od = locks_.FindLocked(oid);
  }
  od->data_latch.LockExclusive();
  // Validate counter shape before logging, so the log never carries an
  // increment that cannot replay.
  auto current = store_->ReadCounter(oid);
  if (!current.ok()) {
    od->data_latch.UnlockExclusive();
    return current.status();
  }
  LogRecord rec;
  rec.type = LogRecordType::kIncrement;
  rec.tid = t;
  rec.oid = oid;
  rec.after = EncodeI64(delta);
  Lsn lsn = log_->Append(std::move(rec));
  auto applied = store_->ApplyDelta(oid, lsn, delta);
  od->data_latch.UnlockExclusive();
  if (!applied.ok()) return applied.status();
  {
    std::lock_guard<std::mutex> lk(sync_.mu);
    undo_.RecordLocked(td, lsn);
  }
  stats_.increments.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<int64_t> TransactionManager::ReadCounter(Tid t, ObjectId oid) {
  auto bytes = Read(t, oid);
  if (!bytes.ok()) return bytes.status();
  if (bytes->size() != sizeof(Lsn) + sizeof(int64_t)) {
    return Status::InvalidArgument("object is not counter-shaped");
  }
  int64_t value;
  std::memcpy(&value, bytes->data() + sizeof(Lsn), sizeof(int64_t));
  return value;
}

// ---------------------------------------------------------------------------
// Introspection

size_t TransactionManager::ActiveTransactions() const {
  std::lock_guard<std::mutex> lk(sync_.mu);
  return active_count_;
}

bool TransactionManager::WaitIdle(std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lk(sync_.mu);
  auto idle = [&] { return active_count_ == 0 && live_threads_ == 0; };
  if (timeout.count() == 0) {
    sync_.cv.wait(lk, idle);
    return true;
  }
  return sync_.cv.wait_for(lk, timeout, idle);
}

}  // namespace asset
