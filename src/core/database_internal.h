#ifndef ASSET_CORE_DATABASE_INTERNAL_H_
#define ASSET_CORE_DATABASE_INTERNAL_H_

/// \file database_internal.h
/// White-box access to a Database's subsystems.
///
/// `Database` deliberately does not expose its TransactionManager,
/// ObjectStore, LogManager, or BufferPool: applications (examples,
/// benchmarks, network clients) program against the facade in
/// database.h or the command API in src/api/. Tests and in-tree
/// subsystems that legitimately need the raw references reach them
/// through this seam instead — including this header is the explicit,
/// grep-able marker that a file is allowed behind the facade. Do not
/// include it from user-facing code.

#include "core/database.h"

namespace asset {

/// A borrowed white-box view over one Database. Copyable and cheap;
/// must not outlive the Database.
class DatabaseInternal {
 public:
  explicit DatabaseInternal(Database& db) : db_(&db) {}

  TransactionManager& txn() { return db_->txn(); }
  ObjectStore& store() { return db_->store(); }
  LogManager& log() { return db_->log(); }
  BufferPool& pool() { return db_->pool(); }

 private:
  Database* db_;
};

/// Convenience accessors for test code: `KernelOf(*db).BeginTxn(...)`.
inline TransactionManager& KernelOf(Database& db) {
  return DatabaseInternal(db).txn();
}
inline ObjectStore& StoreOf(Database& db) {
  return DatabaseInternal(db).store();
}
inline LogManager& LogOf(Database& db) { return DatabaseInternal(db).log(); }
inline BufferPool& PoolOf(Database& db) {
  return DatabaseInternal(db).pool();
}

}  // namespace asset

#endif  // ASSET_CORE_DATABASE_INTERNAL_H_
