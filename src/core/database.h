#ifndef ASSET_CORE_DATABASE_H_
#define ASSET_CORE_DATABASE_H_

/// \file database.h
/// The assembled system: disk, page cache, WAL, object store, and the
/// ASSET transaction kernel, with typed convenience accessors.
///
/// This is the surface the examples and the model library (src/models/)
/// program against — the Ode-database role in the paper, minus the O++
/// compiler (whose generated code src/models/ supplies as a library).

#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "core/transaction_manager.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/object_store.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace asset {

/// One database instance. Construction wires the storage stack and the
/// kernel; destruction aborts stragglers.
class Database {
 public:
  struct Options {
    /// Page frames in the cache.
    size_t buffer_pool_pages = 1024;
    /// Backing file; empty means an in-memory device.
    std::string path;
    TransactionManager::Options txn;
  };

  /// Opens (or creates) a database.
  static Result<std::unique_ptr<Database>> Open(Options options);
  /// Opens with default options (in-memory device).
  static Result<std::unique_ptr<Database>> Open();

  ~Database();

  TransactionManager& txn() { return *tm_; }
  ObjectStore& store() { return *store_; }
  LogManager& log() { return log_; }
  BufferPool& pool() { return *pool_; }

  // --- Typed object helpers (trivially-copyable values) ----------------

  template <typename T>
  static std::vector<uint8_t> Encode(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Encode requires a trivially copyable type");
    std::vector<uint8_t> out(sizeof(T));
    std::memcpy(out.data(), &value, sizeof(T));
    return out;
  }

  template <typename T>
  static Result<T> Decode(const std::vector<uint8_t>& bytes) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Decode requires a trivially copyable type");
    if (bytes.size() != sizeof(T)) {
      return Status::Corruption("decoded size mismatch");
    }
    T value;
    std::memcpy(&value, bytes.data(), sizeof(T));
    return value;
  }

  /// Creates an object holding `value` under transaction `t` (defaults
  /// to the calling transaction).
  template <typename T>
  Result<ObjectId> Create(const T& value, Tid t = kNullTid) {
    return tm_->CreateObject(ResolveTid(t), Encode(value));
  }

  /// Reads the object as a `T` under transaction `t`.
  template <typename T>
  Result<T> Get(ObjectId oid, Tid t = kNullTid) {
    auto bytes = tm_->Read(ResolveTid(t), oid);
    if (!bytes.ok()) return bytes.status();
    return Decode<T>(*bytes);
  }

  /// Overwrites the object with `value` under transaction `t`.
  template <typename T>
  Status Put(ObjectId oid, const T& value, Tid t = kNullTid) {
    return tm_->Write(ResolveTid(t), oid, Encode(value));
  }

  // --- Counters (semantic increments, paper Â§5) -------------------------

  /// Creates a counter initialized to `initial`.
  Result<ObjectId> CreateCounter(int64_t initial, Tid t = kNullTid) {
    return tm_->CreateCounter(ResolveTid(t), initial);
  }

  /// Commutative add: concurrent adders never conflict.
  Status Add(ObjectId oid, int64_t delta, Tid t = kNullTid) {
    return tm_->Increment(ResolveTid(t), oid, delta);
  }

  /// Counter value under a read lock.
  Result<int64_t> GetCounter(ObjectId oid, Tid t = kNullTid) {
    return tm_->ReadCounter(ResolveTid(t), oid);
  }

  // --- Maintenance -------------------------------------------------------

  /// Quiescent checkpoint: waits for all transactions to terminate, then
  /// flushes pages and logs a checkpoint record.
  Status Checkpoint();

  /// Simulates a crash and runs recovery: tears down the kernel, drops
  /// every non-durable log record and every cached page, rescans the
  /// store, replays the log, and brings up a fresh kernel. No user
  /// threads may be inside the database during the call.
  Status CrashAndRecover(RecoveryManager::Report* report = nullptr);

 private:
  Database() = default;

  static Tid ResolveTid(Tid t) {
    return t == kNullTid ? TransactionManager::Self() : t;
  }

  Options options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  LogManager log_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<TransactionManager> tm_;
};

}  // namespace asset

#endif  // ASSET_CORE_DATABASE_H_
