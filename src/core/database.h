#ifndef ASSET_CORE_DATABASE_H_
#define ASSET_CORE_DATABASE_H_

/// \file database.h
/// The assembled system: disk, page cache, WAL, object store, and the
/// ASSET transaction kernel, behind one application-facing facade.
///
/// This is the surface applications program against — the Ode-database
/// role in the paper, minus the O++ compiler (whose generated code
/// src/models/ supplies as a library). Everything user-facing goes
/// through `Database`, the RAII `Txn` handle, or the command API
/// (src/api/) that mirrors this class onto the wire; the raw subsystem
/// references (TransactionManager, ObjectStore, LogManager, BufferPool)
/// are reachable only through the `DatabaseInternal` seam
/// (database_internal.h), which is for tests and in-tree subsystems.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/ids.h"
#include "common/object_set.h"
#include "common/op_set.h"
#include "common/result.h"
#include "common/status.h"
#include "core/introspection.h"
#include "core/statistics.h"
#include "core/transaction_manager.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/object_store.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace asset {

class Database;
class DatabaseInternal;

/// A movable RAII handle over one caller-driven transaction.
///
/// `db.Begin()` opens the transaction; the holder issues data operations
/// through the handle from one thread at a time and finishes with
/// Commit() or Abort(). A handle destroyed while still active aborts its
/// transaction — an early `return` or a thrown exception can never leak
/// a lock-holding transaction. The handle must not outlive the Database
/// that issued it.
///
/// Move semantics: moving transfers ownership of the transaction (and
/// the last_status record); the moved-from handle reads as inactive —
/// `bool(moved_from)` is false, id() is kNullTid, and every operation
/// on it returns IllegalState. Move-assigning over an active handle
/// aborts the overwritten transaction first, exactly like destruction.
///
/// This is sugar over the kernel's session transactions
/// (TransactionManager::BeginSession); the tid is exposed for mixing
/// with the §2 primitives (delegation, permits, dependencies) on
/// Database.
class Txn {
 public:
  Txn() = default;
  Txn(Txn&& other) noexcept
      : db_(other.db_),
        tid_(other.tid_),
        last_status_(std::move(other.last_status_)) {
    other.db_ = nullptr;
    other.tid_ = kNullTid;
    other.last_status_ = Status::OK();
  }
  Txn& operator=(Txn&& other) noexcept {
    if (this != &other) {
      AbortIfActive();
      db_ = other.db_;
      tid_ = other.tid_;
      last_status_ = std::move(other.last_status_);
      other.db_ = nullptr;
      other.tid_ = kNullTid;
      other.last_status_ = Status::OK();
    }
    return *this;
  }
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  /// Aborts the transaction if still active.
  ~Txn() { AbortIfActive(); }

  /// The underlying transaction id (kNullTid for a default-constructed
  /// or moved-from handle).
  Tid id() const { return tid_; }

  /// True while the handle owns a transaction that has not been
  /// committed or aborted through it.
  bool active() const { return db_ != nullptr && tid_ != kNullTid; }

  /// `if (txn) ...` — same as active().
  explicit operator bool() const { return active(); }

  /// The Status of the most recent operation issued through this
  /// handle (including Commit/Abort). OK on a fresh or moved-from
  /// handle. Lets call sites chain `t.Put(..); t.Put(..);` and check
  /// once, client-handle style.
  const Status& last_status() const { return last_status_; }

  /// Blocking commit; the handle becomes inactive either way. Returns
  /// the kernel's verdict (kTxnAborted carries the abort reason).
  Status Commit();

  /// Aborts; the handle becomes inactive. OK if already aborted.
  Status Abort();

  // --- Data operations under this transaction --------------------------
  //
  // Each returns IllegalState on an inactive (finished or moved-from)
  // handle; otherwise it is the matching Database call under this tid.
  // Every outcome is also recorded in last_status().

  Result<std::vector<uint8_t>> Read(ObjectId oid);
  Status Write(ObjectId oid, std::span<const uint8_t> data);
  Result<ObjectId> CreateObject(std::span<const uint8_t> data);
  Status Delete(ObjectId oid);

  template <typename T>
  Result<ObjectId> Create(const T& value);
  template <typename T>
  Result<T> Get(ObjectId oid);
  template <typename T>
  Status Put(ObjectId oid, const T& value);

  Result<ObjectId> CreateCounter(int64_t initial);
  Status Add(ObjectId oid, int64_t delta);
  Result<int64_t> GetCounter(ObjectId oid);

 private:
  friend class Database;
  Txn(Database* db, Tid tid) : db_(db), tid_(tid) {}

  void AbortIfActive() {
    if (active()) Abort();
  }

  Status CheckActive() const {
    return active() ? Status::OK()
                    : Status::IllegalState("transaction handle is inactive");
  }

  /// Records an operation's outcome in last_status() on the way out.
  Status Track(Status s) {
    last_status_ = s;
    return s;
  }
  template <typename T>
  Result<T> Track(Result<T> r) {
    last_status_ = r.status();
    return r;
  }

  Database* db_ = nullptr;
  Tid tid_ = kNullTid;
  Status last_status_;
};

/// One database instance. Construction wires the storage stack and the
/// kernel; destruction aborts stragglers.
class Database {
 public:
  /// Controls the online (fuzzy) checkpointer. Checkpoints never block
  /// user traffic; they bound recovery time and let the WAL prefix be
  /// reclaimed.
  struct CheckpointOptions {
    /// Fire a background checkpoint every `interval` (0 = no timer).
    std::chrono::milliseconds interval{0};
    /// Fire a background checkpoint after this many new WAL bytes since
    /// the last one (0 = no byte trigger). With neither trigger set, no
    /// background thread runs; Checkpoint() still works manually.
    size_t log_bytes_trigger = 0;
    /// Physically drop the WAL prefix made redundant by each completed
    /// checkpoint.
    bool truncate_wal = true;
    /// How long a checkpoint may wait for in-flight data operations at
    /// or below its cut point to finish applying (replaces the old
    /// hard-coded 30000 ms quiescence wait — the fuzzy protocol drains
    /// individual operations, never whole transactions).
    std::chrono::milliseconds drain_timeout{30000};
  };

  /// The one validated options surface: storage, kernel, and
  /// checkpointer knobs nest here, and `Validate()` is the single gate
  /// every `Open()` goes through — nonsense (a zero-page pool, a
  /// negative timeout) is rejected up front instead of misbehaving
  /// later. Server options (src/server/) follow the same pattern.
  struct Options {
    /// Page frames in the cache.
    size_t buffer_pool_pages = 1024;
    /// Backing file; empty means an in-memory device.
    std::string path;
    TransactionManager::Options txn;
    CheckpointOptions checkpoint;

    /// OK iff every knob (including the nested kernel, lock, and
    /// checkpoint options) is in its legal range.
    Status Validate() const;
  };

  /// Opens (or creates) a database. Fails with kInvalidArgument if
  /// `options.Validate()` does.
  static Result<std::unique_ptr<Database>> Open(Options options);
  /// Opens with default options (in-memory device).
  static Result<std::unique_ptr<Database>> Open();

  ~Database();

  // --- RAII transactions -------------------------------------------------

  /// Opens a caller-driven transaction and returns its owning handle.
  /// The transaction runs on the caller's thread; finish it with
  /// Txn::Commit() or Txn::Abort(), or let the destructor abort it.
  Result<Txn> Begin() {
    auto tid = tm_->BeginSession();
    if (!tid.ok()) return tid.status();
    return Txn(this, *tid);
  }

  // --- Paper primitives (§2.1) -----------------------------------------
  //
  // The raw initiate/begin/commit/wait/abort surface, re-exported from
  // the kernel so applications (and the command API) never hold a
  // TransactionManager reference. See transaction_manager.h for the
  // full contracts; the bool forms are the paper's bare verdicts, the
  // *Txn forms preserve the reason.

  /// initiate(f, args): registers a transaction to run f(args...) when
  /// begun. Returns kNullTid if the transaction table is full.
  template <typename F, typename... Args>
  Tid Initiate(F&& f, Args&&... args) {
    return tm_->Initiate(std::forward<F>(f), std::forward<Args>(args)...);
  }
  /// Type-erased initiate.
  Tid InitiateFn(std::function<void()> fn) {
    return tm_->InitiateFn(std::move(fn));
  }

  /// begin(t) / begin(t1..tn): the group form is all-or-nothing.
  bool Begin(Tid t) { return tm_->Begin(t); }
  bool Begin(std::initializer_list<Tid> ts) { return tm_->Begin(ts); }
  Status BeginTxn(Tid t) { return tm_->BeginTxn(t); }

  /// commit(t): blocking; waits for completion and dependency
  /// resolution.
  bool Commit(Tid t) { return tm_->Commit(t); }
  Status CommitTxn(Tid t) { return tm_->CommitTxn(t); }

  /// wait(t): 1 once t's code completed (or t committed), 0 on abort.
  int Wait(Tid t) { return tm_->Wait(t); }

  /// abort(t): true unless t already committed.
  bool Abort(Tid t) { return tm_->Abort(t); }
  Status AbortTxn(Tid t) { return tm_->AbortTxn(t); }

  /// The tid of the transaction running on the calling thread
  /// (kNullTid outside any transaction body).
  static Tid Self() { return TransactionManager::Self(); }

  /// Status queries.
  TxnStatus StatusOf(Tid t) const { return tm_->GetStatus(t); }
  bool IsCommitted(Tid t) const { return tm_->IsCommitted(t); }
  bool IsAborted(Tid t) const { return tm_->IsAborted(t); }
  bool IsActiveTxn(Tid t) const { return tm_->IsActiveTxn(t); }
  bool IsCompleted(Tid t) const { return tm_->IsCompleted(t); }
  /// Count of begun-but-unterminated transactions.
  size_t ActiveTransactions() const { return tm_->ActiveTransactions(); }

  // --- New primitives (§2.2) --------------------------------------------

  /// delegate(ti, tj, ob_set) / delegate(ti, tj).
  Status Delegate(Tid ti, Tid tj, const ObjectSet& objs) {
    return tm_->Delegate(ti, tj, objs);
  }
  Status Delegate(Tid ti, Tid tj) { return tm_->Delegate(ti, tj); }

  /// The four permit forms of §2.2.
  Status Permit(Tid ti, Tid tj, const ObjectSet& objs, OpSet ops) {
    return tm_->Permit(ti, tj, objs, ops);
  }
  Status Permit(Tid ti, Tid tj, OpSet ops) {
    return tm_->Permit(ti, tj, ops);
  }
  Status Permit(Tid ti, Tid tj) { return tm_->Permit(ti, tj); }
  Status PermitAny(Tid ti, const ObjectSet& objs, OpSet ops) {
    return tm_->PermitAny(ti, objs, ops);
  }

  /// form_dependency(type, ti, tj): tj becomes dependent on ti.
  Status FormDependency(DependencyType type, Tid ti, Tid tj) {
    return tm_->FormDependency(type, ti, tj);
  }

  // --- Typed object helpers (trivially-copyable values) ----------------

  template <typename T>
  static std::vector<uint8_t> Encode(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Encode requires a trivially copyable type");
    std::vector<uint8_t> out(sizeof(T));
    std::memcpy(out.data(), &value, sizeof(T));
    return out;
  }

  template <typename T>
  static Result<T> Decode(const std::vector<uint8_t>& bytes) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Decode requires a trivially copyable type");
    if (bytes.size() != sizeof(T)) {
      return Status::Corruption("decoded size mismatch");
    }
    T value;
    std::memcpy(&value, bytes.data(), sizeof(T));
    return value;
  }

  /// Creates an object holding `value` under transaction `t` (defaults
  /// to the calling transaction).
  template <typename T>
  Result<ObjectId> Create(const T& value, Tid t = kNullTid) {
    return tm_->CreateObject(ResolveTid(t), Encode(value));
  }

  /// Reads the object as a `T` under transaction `t`.
  template <typename T>
  Result<T> Get(ObjectId oid, Tid t = kNullTid) {
    auto bytes = tm_->Read(ResolveTid(t), oid);
    if (!bytes.ok()) return bytes.status();
    return Decode<T>(*bytes);
  }

  /// Overwrites the object with `value` under transaction `t`.
  template <typename T>
  Status Put(ObjectId oid, const T& value, Tid t = kNullTid) {
    return tm_->Write(ResolveTid(t), oid, Encode(value));
  }

  /// Raw-bytes data operations under transaction `t` (defaults to the
  /// calling transaction).
  Result<std::vector<uint8_t>> ReadObject(ObjectId oid, Tid t = kNullTid) {
    return tm_->Read(ResolveTid(t), oid);
  }
  Status WriteObject(ObjectId oid, std::span<const uint8_t> data,
                     Tid t = kNullTid) {
    return tm_->Write(ResolveTid(t), oid, data);
  }
  Result<ObjectId> CreateObject(std::span<const uint8_t> data,
                                Tid t = kNullTid) {
    return tm_->CreateObject(ResolveTid(t), data);
  }
  Status DeleteObject(ObjectId oid, Tid t = kNullTid) {
    return tm_->DeleteObject(ResolveTid(t), oid);
  }

  // --- Counters (semantic increments, paper §5) -------------------------

  /// Creates a counter initialized to `initial`.
  Result<ObjectId> CreateCounter(int64_t initial, Tid t = kNullTid) {
    return tm_->CreateCounter(ResolveTid(t), initial);
  }

  /// Commutative add: concurrent adders never conflict.
  Status Add(ObjectId oid, int64_t delta, Tid t = kNullTid) {
    return tm_->Increment(ResolveTid(t), oid, delta);
  }

  /// Counter value under a read lock.
  Result<int64_t> GetCounter(ObjectId oid, Tid t = kNullTid) {
    return tm_->ReadCounter(ResolveTid(t), oid);
  }

  // --- Maintenance -------------------------------------------------------

  /// Online (fuzzy) checkpoint: writes back unpinned dirty pages, logs
  /// a kFuzzyCheckpoint record carrying the active-transaction and
  /// dirty-page tables, and (per CheckpointOptions::truncate_wal) drops
  /// the WAL prefix the checkpoint made redundant. Never waits for
  /// transactions to terminate and never blocks user traffic; safe to
  /// call with transactions running.
  Status Checkpoint();

  /// Blocks until every appended WAL record is durable (one piggybacked
  /// flusher batch). Under DurabilityPolicy::kRelaxed this is the
  /// explicit sync point: an OK return means every commit acked before
  /// this call is crash-safe. Surfaces the log's sticky I/O error.
  Status SyncWal() { return log_.Flush(); }

  /// Simulates a crash and runs recovery: tears down the kernel, drops
  /// every non-durable log record and every cached page, rescans the
  /// store, replays the log, and brings up a fresh kernel. No user
  /// threads may be inside the database during the call.
  Status CrashAndRecover(RecoveryManager::Report* report = nullptr);

  // --- Observability -----------------------------------------------------

  /// Plain-value snapshot of the kernel's counters and latency
  /// percentiles.
  KernelStats::Snapshot Stats() const { return tm_->stats().snapshot(); }

  /// The kernel's flight recorder, drained as Chrome trace_event JSON
  /// (load in chrome://tracing or ui.perfetto.dev). Empty trace unless
  /// tracing was enabled (Options::txn.trace.enabled or
  /// set_trace_enabled(true)).
  std::string DumpTrace() { return tm_->recorder().DumpChromeJson(); }

  /// Toggles flight recording at runtime.
  void set_trace_enabled(bool on) { tm_->recorder().set_enabled(on); }

  /// The kernel's flight recorder itself, for layers that emit their
  /// own events into the shared timeline (server stage spans, client
  /// RPC spans) or inspect ring state for metrics.
  FlightRecorder& trace_recorder() { return tm_->recorder(); }

  /// Consistent JSON snapshot of the kernel's control structures —
  /// transactions, lock wait-for edges, dependencies, permits, the last
  /// deadlock cycle — plus the WAL watermarks. One kernel-mutex hold.
  std::string DumpState() {
    return RenderKernelStateJson(tm_->SnapshotState(), WalMarks());
  }

  /// The lock wait-for graph (and last deadlock cycle) as Graphviz DOT.
  std::string DumpWaitForDot() {
    return RenderWaitForDot(tm_->SnapshotState());
  }

  /// Counters, latency percentiles, and WAL watermarks in Prometheus
  /// text exposition format. Served over the wire by the kMetrics
  /// command (src/api/), which makes this the network server's ops
  /// endpoint.
  std::string MetricsText() {
    return RenderMetricsText(tm_->stats().snapshot(), WalMarks());
  }

 private:
  friend class Txn;
  /// The white-box seam (database_internal.h): tests and in-tree
  /// subsystems reach the raw kernel/storage references through it;
  /// applications do not.
  friend class DatabaseInternal;

  Database() = default;

  // Raw subsystem references. Deliberately private: every public path
  // goes through the facade methods above (or the command API), so the
  // kernel can evolve without leaking through the examples and
  // benchmarks.
  TransactionManager& txn() { return *tm_; }
  ObjectStore& store() { return *store_; }
  LogManager& log() { return log_; }
  BufferPool& pool() { return *pool_; }

  static Tid ResolveTid(Tid t) {
    return t == kNullTid ? TransactionManager::Self() : t;
  }

  /// The WAL watermark gauges the dumps fold in.
  WalWatermarks WalMarks() {
    WalWatermarks w;
    w.last_lsn = log_.last_lsn();
    w.durable_lsn = log_.durable_lsn();
    w.checkpoint_lsn = log_.last_checkpoint_lsn();
    w.min_recovery_lsn = log_.checkpoint_min_recovery_lsn();
    return w;
  }

  /// One fuzzy checkpoint + optional truncation, serialized by
  /// ckpt_mu_ (manual calls and the background thread never overlap).
  Status DoCheckpoint();
  /// Spawns the background checkpointer if either trigger is set.
  void StartCheckpointer();
  /// Stops and joins the background checkpointer (idempotent). Must be
  /// called before tm_ is torn down — the thread snapshots the kernel.
  void StopCheckpointer();
  void CheckpointerMain();

  Options options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  LogManager log_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<TransactionManager> tm_;

  /// Serializes checkpoint execution.
  std::mutex ckpt_mu_;
  /// Guards the checkpointer thread's sleep/stop state.
  std::mutex ckpt_thread_mu_;
  std::condition_variable ckpt_cv_;
  bool ckpt_stop_ = false;
  /// appended_bytes() at the last checkpoint attempt (byte trigger
  /// baseline).
  std::atomic<uint64_t> ckpt_baseline_bytes_{0};
  std::thread checkpointer_;
};

// --- Txn inline definitions (need the complete Database type) ------------

inline Status Txn::Commit() {
  if (!active()) {
    return Track(Status::IllegalState("transaction handle is inactive"));
  }
  Database* db = db_;
  Tid tid = tid_;
  db_ = nullptr;
  tid_ = kNullTid;
  return Track(db->txn().CommitTxn(tid));
}

inline Status Txn::Abort() {
  if (!active()) {
    return Track(Status::IllegalState("transaction handle is inactive"));
  }
  Database* db = db_;
  Tid tid = tid_;
  db_ = nullptr;
  tid_ = kNullTid;
  return Track(db->txn().AbortTxn(tid));
}

inline Result<std::vector<uint8_t>> Txn::Read(ObjectId oid) {
  if (Status s = CheckActive(); !s.ok()) return Track(s);
  return Track(db_->txn().Read(tid_, oid));
}

inline Status Txn::Write(ObjectId oid, std::span<const uint8_t> data) {
  if (Status s = CheckActive(); !s.ok()) return Track(s);
  return Track(db_->txn().Write(tid_, oid, data));
}

inline Result<ObjectId> Txn::CreateObject(std::span<const uint8_t> data) {
  if (Status s = CheckActive(); !s.ok()) return Track(s);
  return Track(db_->txn().CreateObject(tid_, data));
}

inline Status Txn::Delete(ObjectId oid) {
  if (Status s = CheckActive(); !s.ok()) return Track(s);
  return Track(db_->txn().DeleteObject(tid_, oid));
}

template <typename T>
Result<ObjectId> Txn::Create(const T& value) {
  if (Status s = CheckActive(); !s.ok()) return Track(s);
  return Track(db_->Create(value, tid_));
}

template <typename T>
Result<T> Txn::Get(ObjectId oid) {
  if (Status s = CheckActive(); !s.ok()) return Track(s);
  return Track(db_->Get<T>(oid, tid_));
}

template <typename T>
Status Txn::Put(ObjectId oid, const T& value) {
  if (Status s = CheckActive(); !s.ok()) return Track(s);
  return Track(db_->Put(oid, value, tid_));
}

inline Result<ObjectId> Txn::CreateCounter(int64_t initial) {
  if (Status s = CheckActive(); !s.ok()) return Track(s);
  return Track(db_->CreateCounter(initial, tid_));
}

inline Status Txn::Add(ObjectId oid, int64_t delta) {
  if (Status s = CheckActive(); !s.ok()) return Track(s);
  return Track(db_->Add(oid, delta, tid_));
}

inline Result<int64_t> Txn::GetCounter(ObjectId oid) {
  if (Status s = CheckActive(); !s.ok()) return Track(s);
  return Track(db_->GetCounter(oid, tid_));
}

}  // namespace asset

#endif  // ASSET_CORE_DATABASE_H_
