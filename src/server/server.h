#ifndef ASSET_SERVER_SERVER_H_
#define ASSET_SERVER_SERVER_H_

/// \file server.h
/// The network front door: an epoll-based binary-protocol server that
/// multiplexes thousands of client connections onto one Database.
///
/// Architecture (docs/NETWORK.md has the wire format):
///  - One acceptor thread owns the listening socket. Each accepted
///    connection is counted against `max_connections` and handed to an
///    event-loop worker round-robin via an eventfd-signalled intake
///    queue.
///  - N worker threads each run a level-triggered epoll loop over the
///    connections they own. A connection never migrates, so all of its
///    state — receive buffer, send buffer, and its `ApiSession` with
///    every transaction the client has open — is single-threaded by
///    construction; the shared Database underneath is the
///    concurrency-safe layer.
///  - Reads are batched: a readable socket is drained to EAGAIN, every
///    complete frame in the buffer is decoded and dispatched, and the
///    replies go out in one flush. A client that pipelines K commands
///    pays one wakeup, not K.
///  - Write backpressure: replies queue in a per-connection send
///    buffer; past `write_buffer_limit` the server stops *reading* from
///    that connection until the buffer drains, so a slow reader
///    throttles itself instead of ballooning server memory.
///  - A malformed frame (bad length, undecodable command) gets a
///    best-effort error reply and the connection is closed — inside a
///    byte stream there is no safe resynchronization point.
///  - Disconnect or shutdown aborts the connection's open transactions
///    via ApiSession, so a yanked cable never leaks a lock-holding
///    transaction descriptor.
///
/// Blocking caveat: a dispatched command runs on the worker thread, so
/// a long lock wait or strict-durability commit stalls the other
/// connections of that worker for its duration. Lock and commit
/// timeouts bound the damage; more workers shrink the blast radius.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace asset {
class Database;
}

namespace asset::server {

/// Monotonic counters of the server's life, rendered into the metrics
/// endpoint next to the kernel's (all relaxed atomics; absolute
/// precision is not worth cache-line traffic on the data path).
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> txns_aborted_on_close{0};
  std::atomic<uint64_t> idle_closed{0};
  std::atomic<uint64_t> backpressure_pauses{0};
  /// kBegin commands shed with kOverloaded by the admission controller.
  std::atomic<uint64_t> admission_shed{0};
  /// Commands rejected because their deadline expired before dispatch.
  std::atomic<uint64_t> deadline_expired{0};
  /// Commands whose kernel wait hit the deadline mid-flight (each
  /// aborted its transaction).
  std::atomic<uint64_t> deadline_timeout_aborts{0};
  std::atomic<int64_t> connections_active{0};
  /// Server-wide open transactions across every connection (the
  /// admission controller's load signal).
  std::atomic<int64_t> open_txns{0};

  /// Prometheus text exposition lines (asset_server_* family).
  std::string Render() const;
};

/// One listening endpoint over one Database.
class Server {
 public:
  /// Validated like Database::Options: Start() rejects nonsense via
  /// Validate() before touching a socket.
  struct Options {
    /// Listen address (IPv4 dotted quad).
    std::string host = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (see Server::port()).
    uint16_t port = 0;
    /// Event-loop threads.
    int workers = 2;
    /// Accepted-connection cap; excess accepts are closed immediately.
    size_t max_connections = 10000;
    /// Open transactions one connection may hold (ApiSession limit).
    size_t max_txns_per_conn = 64;
    /// Largest acceptable frame payload, both directions.
    size_t max_frame_bytes = 1 << 20;
    /// Pause reading from a connection whose unsent replies exceed
    /// this many bytes; resume when drained.
    size_t write_buffer_limit = 4u << 20;
    /// Close connections idle longer than this (0 = never).
    std::chrono::milliseconds idle_timeout{0};
    /// Admission control, class-aware: operations on already-running
    /// transactions (and commit/abort — finishing work *sheds* load)
    /// are always admitted; kBegin — the only command that *adds*
    /// load — is shed with a retryable kOverloaded reply when either
    /// overload signal trips. 0 disables that signal.
    ///
    /// Signal 1: server-wide open transactions at or above this cap.
    size_t admission_max_open_txns = 0;
    /// Signal 2: dispatch lag — time between a command's bytes
    /// arriving and the worker getting to it — above this bound. Lag
    /// grows when workers are stuck executing, which is exactly
    /// overload.
    std::chrono::milliseconds admission_max_lag{0};
    /// Base retry-after hint carried in a kOverloaded reply's i64
    /// value (the observed dispatch lag is added on top, so hints
    /// stretch as the server falls further behind).
    std::chrono::milliseconds overload_retry_hint{20};
    /// On Shutdown, how long to keep flushing already-queued replies
    /// before closing everyone.
    std::chrono::milliseconds drain_timeout{1000};
    /// Requests whose queue+execute+flush total meets this threshold
    /// are captured in the slow-request ring, drainable over the wire
    /// with kSlowLog (0 = slow-log disabled).
    std::chrono::milliseconds slow_request_threshold{0};
    /// Entries the slow-request ring retains (oldest overwritten).
    size_t slow_log_slots = 128;
    int listen_backlog = 1024;

    Status Validate() const;
  };

  /// Binds, listens, and spins up the acceptor and workers. The
  /// Database must outlive the returned Server.
  static Result<std::unique_ptr<Server>> Start(Database* db, Options options);

  /// Shutdown() if the caller has not already.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Graceful drain: stop accepting, give queued replies
  /// `drain_timeout` to flush, abort every connection's open
  /// transactions, join all threads. Idempotent.
  void Shutdown();

  /// The bound port (useful with Options::port = 0).
  uint16_t port() const { return port_; }

  const ServerStats& stats() const { return stats_; }

  /// The ops endpoint body: kernel metrics (Database::MetricsText)
  /// plus the asset_server_* family, the per-command stage-latency
  /// summaries, and the flight-recorder / slow-log state gauges. This
  /// is exactly what a kMetrics command returns over the wire.
  std::string MetricsText() const;

  /// The slow-request log as JSON — what a kSlowLog command returns.
  std::string SlowLogJson() const;

 private:
  struct Impl;

  Server() = default;

  std::unique_ptr<Impl> impl_;
  ServerStats stats_;
  uint16_t port_ = 0;
};

}  // namespace asset::server

#endif  // ASSET_SERVER_SERVER_H_
