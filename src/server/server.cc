#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/command.h"
#include "api/session.h"
#include "api/wire.h"
#include "common/histogram.h"
#include "common/socket_io.h"
#include "common/trace.h"
#include "core/database.h"

namespace asset::server {

namespace {

/// Bytes read from one socket per readiness event before the loop
/// moves on (level-triggered epoll re-reports leftover data, so this
/// bounds per-connection monopoly, not total throughput).
constexpr size_t kReadBudget = 256 * 1024;
constexpr size_t kReadChunk = 64 * 1024;
constexpr int kMaxEpollEvents = 256;

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

int SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

std::string ServerStats::Render() const {
  std::string out;
  auto emit = [&out](const char* name, const char* help, uint64_t v) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  emit("asset_server_connections_accepted_total", "Connections accepted.",
       connections_accepted.load(std::memory_order_relaxed));
  emit("asset_server_connections_rejected_total",
       "Connections refused at the max_connections cap.",
       connections_rejected.load(std::memory_order_relaxed));
  emit("asset_server_connections_closed_total", "Connections closed.",
       connections_closed.load(std::memory_order_relaxed));
  emit("asset_server_frames_in_total", "Request frames decoded.",
       frames_in.load(std::memory_order_relaxed));
  emit("asset_server_frames_out_total", "Reply frames sent.",
       frames_out.load(std::memory_order_relaxed));
  emit("asset_server_bytes_in_total", "Bytes received.",
       bytes_in.load(std::memory_order_relaxed));
  emit("asset_server_bytes_out_total", "Bytes sent.",
       bytes_out.load(std::memory_order_relaxed));
  emit("asset_server_protocol_errors_total",
       "Malformed or oversized frames (each closes its connection).",
       protocol_errors.load(std::memory_order_relaxed));
  emit("asset_server_txns_aborted_on_close_total",
       "Open transactions aborted because their connection went away.",
       txns_aborted_on_close.load(std::memory_order_relaxed));
  emit("asset_server_idle_closed_total", "Connections closed as idle.",
       idle_closed.load(std::memory_order_relaxed));
  emit("asset_server_backpressure_pauses_total",
       "Times reading was paused because a send buffer hit its limit.",
       backpressure_pauses.load(std::memory_order_relaxed));
  emit("asset_server_admission_shed_total",
       "Begin commands shed with kOverloaded by admission control.",
       admission_shed.load(std::memory_order_relaxed));
  emit("asset_server_deadline_expired_total",
       "Commands rejected because their deadline expired before dispatch.",
       deadline_expired.load(std::memory_order_relaxed));
  emit("asset_server_deadline_timeout_aborts_total",
       "Commands whose kernel wait hit the deadline (each aborted its "
       "transaction).",
       deadline_timeout_aborts.load(std::memory_order_relaxed));
  auto gauge = [&out](const char* name, const char* help, int64_t v) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  };
  gauge("asset_server_connections_active", "Currently open connections.",
        connections_active.load(std::memory_order_relaxed));
  gauge("asset_server_open_txns",
        "Open transactions across all connections.",
        open_txns.load(std::memory_order_relaxed));
  return out;
}

Status Server::Options::Validate() const {
  if (workers <= 0) {
    return Status::InvalidArgument("server: workers must be > 0");
  }
  if (max_connections == 0) {
    return Status::InvalidArgument("server: max_connections must be > 0");
  }
  if (max_txns_per_conn == 0) {
    return Status::InvalidArgument("server: max_txns_per_conn must be > 0");
  }
  if (max_frame_bytes < 16) {
    return Status::InvalidArgument(
        "server: max_frame_bytes too small to hold any command");
  }
  if (max_frame_bytes > (64u << 20)) {
    return Status::InvalidArgument("server: max_frame_bytes above 64 MiB");
  }
  if (write_buffer_limit < max_frame_bytes) {
    return Status::InvalidArgument(
        "server: write_buffer_limit must hold at least one frame");
  }
  if (idle_timeout.count() < 0 || drain_timeout.count() < 0) {
    return Status::InvalidArgument("server: negative timeout");
  }
  if (admission_max_lag.count() < 0) {
    return Status::InvalidArgument("server: negative admission_max_lag");
  }
  if (overload_retry_hint.count() < 0) {
    return Status::InvalidArgument("server: negative overload_retry_hint");
  }
  if (slow_request_threshold.count() < 0) {
    return Status::InvalidArgument("server: negative slow_request_threshold");
  }
  if (slow_log_slots == 0) {
    return Status::InvalidArgument("server: slow_log_slots must be > 0");
  }
  if (listen_backlog <= 0) {
    return Status::InvalidArgument("server: listen_backlog must be > 0");
  }
  return Status::OK();
}

struct Server::Impl {
  /// Stage accounting for one queued reply, matched to its flush by
  /// cumulative byte position (`out_end` vs Conn::out_total_sent).
  struct PendingReply {
    uint64_t out_end = 0;     ///< out_total_queued after this reply
    uint64_t trace_id = 0;    ///< 0 = untraced (no events, still timed)
    uint64_t span_id = 0;
    uint64_t kernel_tid = 0;  ///< resolved kernel tid, if any
    uint8_t tag = 0;          ///< CommandType
    uint8_t code = 0;         ///< StatusCode of the reply
    int64_t queue_ns = 0;
    int64_t execute_ns = 0;
    int64_t enqueued_ns = 0;  ///< FlightRecorder::NowNs at enqueue
  };

  /// One captured slow request (kSlowLog's payload).
  struct SlowRequest {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t kernel_tid = 0;
    uint8_t tag = 0;
    uint8_t code = 0;
    int64_t queue_ns = 0;
    int64_t execute_ns = 0;
    int64_t flush_ns = 0;
    int64_t ts_ns = 0;  ///< flush completion, process trace clock
  };

  /// Per-command-tag stage latencies (recorded for every request,
  /// traced or not; Record is three relaxed fetch_adds).
  struct StageHistograms {
    LatencyHistogram queue;
    LatencyHistogram execute;
    LatencyHistogram flush;
  };

  /// One client connection, owned by exactly one worker.
  struct Conn {
    explicit Conn(int fd_in, Database* db, size_t max_txns)
        : fd(fd_in),
          session(db, api::ApiSession::Limits{max_txns, true}) {}

    int fd;
    api::ApiSession session;
    /// Received-but-unparsed bytes; `in_off` is the consumed prefix
    /// (compacted lazily so frame processing is not O(n^2)).
    std::vector<uint8_t> in;
    size_t in_off = 0;
    /// Encoded-but-unsent reply bytes; `out_off` is the sent prefix.
    std::vector<uint8_t> out;
    size_t out_off = 0;
    bool want_write = false;
    bool read_paused = false;
    /// Close once `out` is flushed (set after a protocol error).
    bool closing = false;
    std::chrono::steady_clock::time_point last_activity;
    /// When the bytes of the batch being dispatched were received;
    /// anchors deadline budgets and measures dispatch lag, so commands
    /// queued behind a slow batch-mate are charged for the wait.
    std::chrono::steady_clock::time_point batch_arrival;
    /// batch_arrival on the trace clock (set together with it).
    int64_t batch_arrival_ns = 0;
    /// Stage accounting, one entry per dispatched command, in reply
    /// order; cumulative byte counters survive `out` compaction.
    std::deque<PendingReply> pending_replies;
    uint64_t out_total_queued = 0;
    uint64_t out_total_sent = 0;

    size_t pending_out() const { return out.size() - out_off; }
    size_t pending_in() const { return in.size() - in_off; }
  };

  struct Worker {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::mutex intake_mu;
    std::vector<int> intake;
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
  };

  Database* db = nullptr;
  Options options;
  ServerStats* stats = nullptr;
  /// The kernel's flight recorder; server stage spans land in the same
  /// rings as lock/WAL events, so one dump shows both layers.
  FlightRecorder* rec = nullptr;
  /// Indexed by raw CommandType (1..kSlowLog).
  static constexpr size_t kNumTags =
      static_cast<size_t>(api::CommandType::kSlowLog) + 1;
  StageHistograms stage_hist[kNumTags];
  /// Slow-request ring (any worker may append; kSlowLog reads).
  mutable std::mutex slow_mu;
  std::vector<SlowRequest> slow_ring;
  size_t slow_next = 0;
  uint64_t slow_total = 0;
  int listen_fd = -1;
  int acceptor_wake_fd = -1;
  std::thread acceptor;
  std::vector<std::unique_ptr<Worker>> workers;
  std::atomic<bool> stop{false};
  std::atomic<bool> shut_down{false};

  ~Impl() {
    if (listen_fd >= 0) close(listen_fd);
    if (acceptor_wake_fd >= 0) close(acceptor_wake_fd);
    for (auto& w : workers) {
      if (w->epoll_fd >= 0) close(w->epoll_fd);
      if (w->wake_fd >= 0) close(w->wake_fd);
    }
  }

  // --- Acceptor ------------------------------------------------------

  void AcceptorMain() {
    size_t next_worker = 0;
    struct pollfd fds[2];
    fds[0] = {listen_fd, POLLIN, 0};
    fds[1] = {acceptor_wake_fd, POLLIN, 0};
    while (!stop.load(std::memory_order_acquire)) {
      int n = SockPoll(fds, 2, 1000);
      if (n <= 0) continue;
      if (fds[1].revents != 0) continue;  // woken for shutdown; loop checks
      for (;;) {
        int fd = accept4(listen_fd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;  // EAGAIN or transient error: back to poll
        int64_t active =
            stats->connections_active.load(std::memory_order_relaxed);
        if (active >= static_cast<int64_t>(options.max_connections)) {
          stats->connections_rejected.fetch_add(1, std::memory_order_relaxed);
          close(fd);
          continue;
        }
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        stats->connections_accepted.fetch_add(1, std::memory_order_relaxed);
        stats->connections_active.fetch_add(1, std::memory_order_relaxed);
        Worker& w = *workers[next_worker];
        next_worker = (next_worker + 1) % workers.size();
        {
          std::lock_guard<std::mutex> g(w.intake_mu);
          w.intake.push_back(fd);
        }
        uint64_t one64 = 1;
        ssize_t ignored = write(w.wake_fd, &one64, sizeof(one64));
        (void)ignored;
      }
    }
  }

  // --- Worker event loop ---------------------------------------------

  void WorkerMain(Worker* w) {
    epoll_event events[kMaxEpollEvents];
    auto last_idle_sweep = std::chrono::steady_clock::now();
    while (!stop.load(std::memory_order_acquire)) {
      int timeout_ms = options.idle_timeout.count() > 0 ? 100 : 1000;
      int n = epoll_wait(w->epoll_fd, events, kMaxEpollEvents, timeout_ms);
      for (int i = 0; i < n; ++i) {
        if (events[i].data.fd == w->wake_fd) {
          uint64_t drain;
          while (read(w->wake_fd, &drain, sizeof(drain)) > 0) {
          }
          AdoptIntake(w);
          continue;
        }
        auto it = w->conns.find(events[i].data.fd);
        if (it == w->conns.end()) continue;
        Conn* c = it->second.get();
        uint32_t ev = events[i].events;
        if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
          CloseConn(w, c);
          continue;
        }
        bool alive = true;
        if ((ev & EPOLLOUT) != 0) alive = HandleWrite(w, c);
        if (alive && (ev & EPOLLIN) != 0) HandleRead(w, c);
      }
      if (options.idle_timeout.count() > 0) {
        auto now = std::chrono::steady_clock::now();
        if (now - last_idle_sweep >= options.idle_timeout / 4 ||
            now - last_idle_sweep >= std::chrono::milliseconds(100)) {
          SweepIdle(w, now);
          last_idle_sweep = now;
        }
      }
    }
    DrainAndCloseAll(w);
  }

  void AdoptIntake(Worker* w) {
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> g(w->intake_mu);
      fds.swap(w->intake);
    }
    for (int fd : fds) {
      auto conn = std::make_unique<Conn>(fd, db, options.max_txns_per_conn);
      conn->last_activity = std::chrono::steady_clock::now();
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        close(fd);
        stats->connections_active.fetch_sub(1, std::memory_order_relaxed);
        stats->connections_closed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      w->conns.emplace(fd, std::move(conn));
    }
  }

  void UpdateInterest(Worker* w, Conn* c) {
    uint32_t want = 0;
    if (!c->read_paused && !c->closing) want |= EPOLLIN;
    if (c->pending_out() > 0) want |= EPOLLOUT;
    epoll_event ev{};
    ev.events = want;
    ev.data.fd = c->fd;
    epoll_ctl(w->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
  }

  void HandleRead(Worker* w, Conn* c) {
    size_t budget = kReadBudget;
    bool eof = false;
    while (budget > 0) {
      size_t chunk = std::min(budget, kReadChunk);
      size_t base = c->in.size();
      c->in.resize(base + chunk);
      ssize_t got = SockRecv(c->fd, c->in.data() + base, chunk, 0);
      if (got > 0) {
        c->in.resize(base + static_cast<size_t>(got));
        stats->bytes_in.fetch_add(static_cast<uint64_t>(got),
                                  std::memory_order_relaxed);
        budget -= static_cast<size_t>(got);
        if (static_cast<size_t>(got) < chunk) break;  // socket drained
        continue;
      }
      c->in.resize(base);
      if (got == 0) {
        eof = true;  // peer closed; dispatch what we have, then close
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // drained
      } else if (errno == EINTR) {
        continue;
      } else {
        eof = true;
      }
      break;
    }
    c->last_activity = std::chrono::steady_clock::now();
    c->batch_arrival = c->last_activity;
    c->batch_arrival_ns = FlightRecorder::NowNs();
    ProcessFrames(w, c);
    if (eof && !c->closing) {
      // Whatever remains buffered is (at most) a truncated frame; the
      // peer is gone, so flush nothing more and abort its sessions.
      CloseConn(w, c);
      return;
    }
    if (w->conns.count(c->fd) == 0) return;  // closed during processing
    FlushOut(w, c, /*from_epollout=*/false);
  }

  /// Decodes and dispatches every complete frame in `c->in`, queueing
  /// replies into `c->out` (one flush at the end = batched pipeline).
  void ProcessFrames(Worker* w, Conn* c) {
    while (!c->closing) {
      std::span<const uint8_t> buffered(c->in.data() + c->in_off,
                                        c->pending_in());
      std::span<const uint8_t> payload;
      api::FrameSplit split =
          api::TrySplitFrame(buffered, options.max_frame_bytes, &payload);
      if (split == api::FrameSplit::kNeedMore) break;
      if (split == api::FrameSplit::kOversized) {
        stats->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        QueueReply(c, api::Reply::FromStatus(Status::InvalidArgument(
                          "frame: length 0 or above max_frame_bytes")));
        c->closing = true;
        break;
      }
      auto cmd = api::DecodeCommand(payload);
      c->in_off += api::kFrameHeaderBytes + payload.size();
      stats->frames_in.fetch_add(1, std::memory_order_relaxed);
      if (!cmd.ok()) {
        stats->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        QueueReply(c, api::Reply::FromStatus(cmd.status()));
        c->closing = true;
        break;
      }
      const uint64_t trace = cmd->trace_id;
      const uint64_t span = cmd->span_id;
      const uint8_t tag = static_cast<uint8_t>(cmd->type);
      // Stage clock: one read here (ends the queue span, starts
      // execute) and one after Execute. Untraced commands skip the
      // Emits but still feed the per-tag histograms.
      const int64_t t_dispatch = FlightRecorder::NowNs();
      const int64_t queue_ns = t_dispatch - c->batch_arrival_ns;
      if (trace != 0) {
        rec->Emit(TraceEventType::kFrameDecoded, trace, span, tag);
        rec->Emit(TraceEventType::kRpcQueue, trace, span, tag, 0, queue_ns);
      }
      if (cmd->type == api::CommandType::kBegin) {
        auto lag = std::chrono::steady_clock::now() - c->batch_arrival;
        if (Overloaded(lag)) {
          stats->admission_shed.fetch_add(1, std::memory_order_relaxed);
          if (trace != 0) {
            rec->Emit(TraceEventType::kAdmission, trace, span, tag, 1);
          }
          stage_hist[tag].queue.Record(static_cast<uint64_t>(queue_ns));
          api::Reply shed = ShedReply(lag);
          QueueReply(c, shed);
          FinishDispatch(c, *cmd, shed, queue_ns, /*execute_ns=*/0,
                         /*kernel_tid=*/0, t_dispatch);
          continue;
        }
        if (trace != 0) {
          rec->Emit(TraceEventType::kAdmission, trace, span, tag, 0);
        }
      }
      auto dl_before = c->session.deadline_stats();
      size_t txns_before = c->session.open_txns();
      api::Reply reply = c->session.Execute(*cmd, c->batch_arrival);
      const int64_t t_done = FlightRecorder::NowNs();
      const int64_t execute_ns = t_done - t_dispatch;
      // The kernel tid bridges the wire trace to kernel events (lock
      // waits, WAL appends) emitted under that transaction.
      uint64_t kernel_tid = c->session.current();
      if (cmd->type == api::CommandType::kBegin && reply.ok()) {
        kernel_tid = reply.u64;
      }
      if (trace != 0) {
        rec->Emit(TraceEventType::kRpcExecute, trace, span, tag, kernel_tid,
                  execute_ns);
      }
      stage_hist[tag].queue.Record(static_cast<uint64_t>(queue_ns));
      stage_hist[tag].execute.Record(static_cast<uint64_t>(execute_ns));
      auto dl_after = c->session.deadline_stats();
      stats->deadline_expired.fetch_add(
          dl_after.expired_rejects - dl_before.expired_rejects,
          std::memory_order_relaxed);
      stats->deadline_timeout_aborts.fetch_add(
          dl_after.timeout_aborts - dl_before.timeout_aborts,
          std::memory_order_relaxed);
      stats->open_txns.fetch_add(
          static_cast<int64_t>(c->session.open_txns()) -
              static_cast<int64_t>(txns_before),
          std::memory_order_relaxed);
      if (cmd->type == api::CommandType::kMetrics && reply.ok()) {
        reply.text += stats->Render() + RenderExtraMetrics();
      }
      if (cmd->type == api::CommandType::kSlowLog && reply.ok()) {
        reply.text = RenderSlowLogJson();
      }
      QueueReply(c, reply);
      FinishDispatch(c, *cmd, reply, queue_ns, execute_ns, kernel_tid,
                     FlightRecorder::NowNs());
    }
    // Lazy compaction: drop the consumed prefix once it dominates.
    if (c->in_off > 0 &&
        (c->in_off >= c->in.size() || c->in_off > (64u << 10))) {
      c->in.erase(c->in.begin(),
                  c->in.begin() + static_cast<ptrdiff_t>(c->in_off));
      c->in_off = 0;
    }
  }

  /// The admission controller's overload predicate for new Begins.
  /// Operations on running transactions are never shed — they make
  /// progress toward *shedding* load (a commit or abort frees locks),
  /// so refusing them would only deepen the overload.
  bool Overloaded(std::chrono::steady_clock::duration lag) const {
    if (options.admission_max_open_txns > 0 &&
        stats->open_txns.load(std::memory_order_relaxed) >=
            static_cast<int64_t>(options.admission_max_open_txns)) {
      return true;
    }
    return options.admission_max_lag.count() > 0 &&
           lag > options.admission_max_lag;
  }

  /// A retryable kOverloaded reply whose i64 value is the suggested
  /// backoff in milliseconds: the base hint plus the observed dispatch
  /// lag, so hints stretch as the server falls further behind.
  api::Reply ShedReply(std::chrono::steady_clock::duration lag) const {
    auto lag_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(lag).count();
    api::Reply r = api::Reply::FromStatus(Status::Overloaded(
        "server: overloaded, retry Begin after backoff"));
    r.kind = api::ReplyValueKind::kI64;
    r.i64 = options.overload_retry_hint.count() + lag_ms;
    return r;
  }

  void QueueReply(Conn* c, const api::Reply& reply) {
    const size_t before = c->out.size();
    std::vector<uint8_t> payload;
    api::EncodeReply(reply, &payload);
    api::AppendFrame(payload, &c->out);
    c->out_total_queued += c->out.size() - before;
    stats->frames_out.fetch_add(1, std::memory_order_relaxed);
  }

  /// Books the stage record for one dispatched command right after its
  /// reply was queued; the matching kReplyFlushed / slow-log entry is
  /// produced by AccountFlushed once the bytes are on the wire.
  void FinishDispatch(Conn* c, const api::Command& cmd,
                      const api::Reply& reply, int64_t queue_ns,
                      int64_t execute_ns, uint64_t kernel_tid,
                      int64_t now_ns) {
    if (cmd.trace_id != 0) {
      rec->Emit(TraceEventType::kReplyEnqueued, cmd.trace_id, cmd.span_id,
                static_cast<uint8_t>(cmd.type),
                static_cast<uint64_t>(reply.code));
    }
    PendingReply p;
    p.out_end = c->out_total_queued;
    p.trace_id = cmd.trace_id;
    p.span_id = cmd.span_id;
    p.kernel_tid = kernel_tid;
    p.tag = static_cast<uint8_t>(cmd.type);
    p.code = static_cast<uint8_t>(reply.code);
    p.queue_ns = queue_ns;
    p.execute_ns = execute_ns;
    p.enqueued_ns = now_ns;
    c->pending_replies.push_back(p);
  }

  /// Settles every pending reply whose bytes have fully left the
  /// socket: records the flush histogram, emits kReplyFlushed, and
  /// captures a slow-log entry when the stage total crosses the
  /// threshold. Called after every successful send.
  void AccountFlushed(Conn* c) {
    const int64_t threshold_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            options.slow_request_threshold)
            .count();
    while (!c->pending_replies.empty() &&
           c->pending_replies.front().out_end <= c->out_total_sent) {
      const PendingReply p = c->pending_replies.front();
      c->pending_replies.pop_front();
      const int64_t now = FlightRecorder::NowNs();
      const int64_t flush_ns = now - p.enqueued_ns;
      stage_hist[p.tag].flush.Record(static_cast<uint64_t>(flush_ns));
      if (p.trace_id != 0) {
        rec->Emit(TraceEventType::kReplyFlushed, p.trace_id, p.span_id,
                  p.tag, p.code, flush_ns);
      }
      if (threshold_ns > 0 &&
          p.queue_ns + p.execute_ns + flush_ns >= threshold_ns) {
        SlowRequest s;
        s.trace_id = p.trace_id;
        s.span_id = p.span_id;
        s.kernel_tid = p.kernel_tid;
        s.tag = p.tag;
        s.code = p.code;
        s.queue_ns = p.queue_ns;
        s.execute_ns = p.execute_ns;
        s.flush_ns = flush_ns;
        s.ts_ns = now;
        std::lock_guard<std::mutex> g(slow_mu);
        if (slow_ring.size() < options.slow_log_slots) {
          slow_ring.push_back(s);
        } else {
          slow_ring[slow_next] = s;
        }
        slow_next = (slow_next + 1) % options.slow_log_slots;
        ++slow_total;
      }
    }
  }

  /// Writes as much of `c->out` as the socket takes. Returns false if
  /// the connection was closed.
  bool FlushOut(Worker* w, Conn* c, bool from_epollout) {
    (void)from_epollout;
    while (c->pending_out() > 0) {
      ssize_t sent = SockSend(c->fd, c->out.data() + c->out_off,
                              c->pending_out(), MSG_NOSIGNAL);
      if (sent > 0) {
        c->out_off += static_cast<size_t>(sent);
        c->out_total_sent += static_cast<uint64_t>(sent);
        stats->bytes_out.fetch_add(static_cast<uint64_t>(sent),
                                   std::memory_order_relaxed);
        AccountFlushed(c);
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (sent < 0 && errno == EINTR) continue;
      CloseConn(w, c);
      return false;
    }
    if (c->pending_out() == 0) {
      c->out.clear();
      c->out_off = 0;
      if (c->closing) {
        CloseConn(w, c);
        return false;
      }
      if (c->read_paused) c->read_paused = false;
    } else if (!c->read_paused &&
               c->pending_out() > options.write_buffer_limit) {
      c->read_paused = true;
      stats->backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
    }
    UpdateInterest(w, c);
    return true;
  }

  bool HandleWrite(Worker* w, Conn* c) {
    c->last_activity = std::chrono::steady_clock::now();
    return FlushOut(w, c, /*from_epollout=*/true);
  }

  void SweepIdle(Worker* w, std::chrono::steady_clock::time_point now) {
    std::vector<Conn*> doomed;
    for (auto& [fd, conn] : w->conns) {
      if (now - conn->last_activity >= options.idle_timeout) {
        doomed.push_back(conn.get());
      }
    }
    for (Conn* c : doomed) {
      stats->idle_closed.fetch_add(1, std::memory_order_relaxed);
      CloseConn(w, c);
    }
  }

  void CloseConn(Worker* w, Conn* c) {
    stats->txns_aborted_on_close.fetch_add(c->session.open_txns(),
                                           std::memory_order_relaxed);
    stats->open_txns.fetch_sub(static_cast<int64_t>(c->session.open_txns()),
                               std::memory_order_relaxed);
    epoll_ctl(w->epoll_fd, EPOLL_CTL_DEL, c->fd, nullptr);
    close(c->fd);
    stats->connections_active.fetch_sub(1, std::memory_order_relaxed);
    stats->connections_closed.fetch_add(1, std::memory_order_relaxed);
    w->conns.erase(c->fd);  // destroys the ApiSession -> aborts open txns
  }

  /// Shutdown path: give queued replies one bounded chance to land,
  /// then close everything (aborting open transactions).
  void DrainAndCloseAll(Worker* w) {
    auto deadline = std::chrono::steady_clock::now() + options.drain_timeout;
    bool pending = true;
    while (pending && std::chrono::steady_clock::now() < deadline) {
      pending = false;
      for (auto& [fd, conn] : w->conns) {
        if (conn->pending_out() == 0) continue;
        ssize_t sent = SockSend(fd, conn->out.data() + conn->out_off,
                                conn->pending_out(), MSG_NOSIGNAL);
        if (sent > 0) {
          conn->out_off += static_cast<size_t>(sent);
          conn->out_total_sent += static_cast<uint64_t>(sent);
          stats->bytes_out.fetch_add(static_cast<uint64_t>(sent),
                                     std::memory_order_relaxed);
          AccountFlushed(conn.get());
        }
        if (conn->pending_out() > 0) pending = true;
      }
      if (pending) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    while (!w->conns.empty()) {
      CloseConn(w, w->conns.begin()->second.get());
    }
  }

  // --- Introspection rendering ---------------------------------------

  /// Per-command stage-latency summaries plus the flight-recorder and
  /// slow-log state gauges — appended after ServerStats::Render() both
  /// in Server::MetricsText() and in the wire kMetrics reply.
  std::string RenderExtraMetrics() const {
    std::string out;
    out +=
        "# HELP asset_server_stage_ns Per-command request stage latency "
        "(dispatch queue, kernel execute, reply flush), nanoseconds.\n"
        "# TYPE asset_server_stage_ns summary\n";
    auto summary = [&out](const char* command, const char* stage,
                          const LatencyHistogram& h) {
      const LatencyHistogram::Snapshot s = h.snapshot();
      if (s.count == 0) return;
      auto line = [&](const char* suffix, const char* quantile,
                      uint64_t v) {
        out += "asset_server_stage_ns";
        out += suffix;
        out += "{command=\"";
        out += command;
        out += "\",stage=\"";
        out += stage;
        out += '"';
        if (quantile != nullptr) {
          out += ",quantile=\"";
          out += quantile;
          out += '"';
        }
        out += "} ";
        out += std::to_string(v);
        out += '\n';
      };
      line("", "0.5", s.p50());
      line("", "0.95", s.p95());
      line("", "0.99", s.p99());
      line("_count", nullptr, s.count);
      line("_sum", nullptr, s.sum);
    };
    for (size_t tag = 1; tag < kNumTags; ++tag) {
      const char* name = api::CommandTypeToString(
          static_cast<api::CommandType>(tag));
      const StageHistograms& h = stage_hist[tag];
      summary(name, "queue", h.queue);
      summary(name, "execute", h.execute);
      summary(name, "flush", h.flush);
    }
    auto gauge = [&out](const char* name, const char* help, int64_t v) {
      out += "# HELP ";
      out += name;
      out += ' ';
      out += help;
      out += "\n# TYPE ";
      out += name;
      out += " gauge\n";
      out += name;
      out += ' ';
      out += std::to_string(v);
      out += '\n';
    };
    gauge("asset_server_trace_enabled",
          "Whether the flight recorder is recording (1) or not (0).",
          rec->enabled() ? 1 : 0);
    gauge("asset_server_trace_ring_slots",
          "Event slots per per-thread flight-recorder ring.",
          static_cast<int64_t>(rec->ring_slots()));
    gauge("asset_server_trace_rings",
          "Per-thread flight-recorder rings created so far.",
          static_cast<int64_t>(rec->ring_count()));
    gauge("asset_server_slow_request_threshold_ms",
          "Slow-request capture threshold in milliseconds (0 = off).",
          options.slow_request_threshold.count());
    uint64_t total;
    {
      std::lock_guard<std::mutex> g(slow_mu);
      total = slow_total;
    }
    out +=
        "# HELP asset_server_slow_requests_total Requests whose "
        "queue+execute+flush total met the slow-request threshold.\n"
        "# TYPE asset_server_slow_requests_total counter\n"
        "asset_server_slow_requests_total " +
        std::to_string(total) + '\n';
    return out;
  }

  /// The slow-request ring as JSON, oldest entry first.
  std::string RenderSlowLogJson() const {
    std::vector<SlowRequest> entries;
    uint64_t total;
    {
      std::lock_guard<std::mutex> g(slow_mu);
      total = slow_total;
      entries.reserve(slow_ring.size());
      // slow_next is the oldest slot once the ring has wrapped.
      const size_t n = slow_ring.size();
      const size_t start = n < options.slow_log_slots ? 0 : slow_next;
      for (size_t i = 0; i < n; ++i) {
        entries.push_back(slow_ring[(start + i) % n]);
      }
    }
    std::string out = "{\"threshold_ms\":" +
                      std::to_string(options.slow_request_threshold.count()) +
                      ",\"total\":" + std::to_string(total) +
                      ",\"slow_requests\":[";
    bool first = true;
    for (const SlowRequest& s : entries) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"trace_id\":" + std::to_string(s.trace_id) +
             ",\"span_id\":" + std::to_string(s.span_id) +
             ",\"command\":\"" +
             api::CommandTypeToString(static_cast<api::CommandType>(s.tag)) +
             "\",\"kernel_tid\":" + std::to_string(s.kernel_tid) +
             ",\"outcome\":\"" +
             StatusCodeToString(static_cast<StatusCode>(s.code)) +
             "\",\"queue_ns\":" + std::to_string(s.queue_ns) +
             ",\"execute_ns\":" + std::to_string(s.execute_ns) +
             ",\"flush_ns\":" + std::to_string(s.flush_ns) +
             ",\"total_ns\":" +
             std::to_string(s.queue_ns + s.execute_ns + s.flush_ns) +
             ",\"ts_ns\":" + std::to_string(s.ts_ns) + '}';
    }
    out += "]}";
    return out;
  }
};

Result<std::unique_ptr<Server>> Server::Start(Database* db, Options options) {
  if (db == nullptr) {
    return Status::InvalidArgument("server: null database");
  }
  ASSET_RETURN_NOT_OK(options.Validate());

  auto server = std::unique_ptr<Server>(new Server());
  server->impl_ = std::make_unique<Impl>();
  Impl& impl = *server->impl_;
  impl.db = db;
  impl.options = options;
  impl.stats = &server->stats_;
  impl.rec = &db->trace_recorder();

  impl.listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (impl.listen_fd < 0) return Errno("server: socket");
  int one = 1;
  setsockopt(impl.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("server: bad host " + options.host);
  }
  if (bind(impl.listen_fd, reinterpret_cast<sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Errno("server: bind " + options.host + ":" +
                 std::to_string(options.port));
  }
  if (listen(impl.listen_fd, options.listen_backlog) != 0) {
    return Errno("server: listen");
  }
  if (SetNonBlocking(impl.listen_fd) != 0) {
    return Errno("server: set listen nonblocking");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(impl.listen_fd, reinterpret_cast<sockaddr*>(&addr),
                  &len) != 0) {
    return Errno("server: getsockname");
  }
  server->port_ = ntohs(addr.sin_port);

  impl.acceptor_wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (impl.acceptor_wake_fd < 0) return Errno("server: eventfd");

  for (int i = 0; i < options.workers; ++i) {
    auto w = std::make_unique<Impl::Worker>();
    w->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    if (w->epoll_fd < 0) return Errno("server: epoll_create1");
    w->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (w->wake_fd < 0) return Errno("server: eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->wake_fd;
    if (epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->wake_fd, &ev) != 0) {
      return Errno("server: epoll_ctl wake_fd");
    }
    impl.workers.push_back(std::move(w));
  }

  for (auto& w : impl.workers) {
    Impl::Worker* raw = w.get();
    w->thread = std::thread([&impl, raw] { impl.WorkerMain(raw); });
  }
  impl.acceptor = std::thread([&impl] { impl.AcceptorMain(); });
  return server;
}

void Server::Shutdown() {
  if (impl_ == nullptr) return;
  bool expected = false;
  if (!impl_->shut_down.compare_exchange_strong(expected, true)) return;
  impl_->stop.store(true, std::memory_order_release);
  uint64_t one = 1;
  ssize_t ignored = write(impl_->acceptor_wake_fd, &one, sizeof(one));
  (void)ignored;
  for (auto& w : impl_->workers) {
    ignored = write(w->wake_fd, &one, sizeof(one));
    (void)ignored;
  }
  if (impl_->acceptor.joinable()) impl_->acceptor.join();
  for (auto& w : impl_->workers) {
    if (w->thread.joinable()) w->thread.join();
  }
}

Server::~Server() { Shutdown(); }

std::string Server::MetricsText() const {
  return impl_->db->MetricsText() + stats_.Render() +
         impl_->RenderExtraMetrics();
}

std::string Server::SlowLogJson() const { return impl_->RenderSlowLogJson(); }

}  // namespace asset::server
