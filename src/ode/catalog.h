#ifndef ASSET_ODE_CATALOG_H_
#define ASSET_ODE_CATALOG_H_

/// \file catalog.h
/// Named persistent roots.
///
/// Everything in the store is reachable only by ObjectId; the catalog is
/// the well-known root object (reserved id 1) mapping names to ids, so
/// applications can find their indexes and top-level objects across
/// restarts. All catalog operations run inside the caller's transaction
/// — binding a name commits or rolls back with the rest of the work.

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/transaction_manager.h"

namespace asset {
class Database;
}

namespace asset::ode {

/// The name → ObjectId root directory.
class Catalog {
 public:
  /// The catalog's reserved object id.
  static constexpr ObjectId kCatalogOid = 1;

  explicit Catalog(TransactionManager* tm) : tm_(tm) {}
  /// The application-facing form: everything Bootstrap needs comes from
  /// the database, so callers never touch the subsystems.
  explicit Catalog(Database* db);

  /// Creates the (empty) catalog object if it does not exist yet.
  /// Idempotent; call once inside a transaction after opening a fresh
  /// store. Uses the store directly for the existence probe, the
  /// transaction for the create.
  Status Bootstrap(Tid t, ObjectStore* store);
  /// Database-constructed form of Bootstrap; IllegalState on a catalog
  /// built from a raw TransactionManager.
  Status Bootstrap(Tid t);

  /// Binds `name` to `oid`, replacing any previous binding.
  Status Bind(Tid t, const std::string& name, ObjectId oid);

  /// The object bound to `name`; NotFound otherwise.
  Result<ObjectId> Lookup(Tid t, const std::string& name) const;

  /// Removes the binding; NotFound if absent.
  Status Unbind(Tid t, const std::string& name);

  /// All bound names, sorted.
  Result<std::vector<std::string>> List(Tid t) const;

 private:
  struct Entry {
    std::string name;
    ObjectId oid;
  };

  Result<std::vector<Entry>> Load(Tid t) const;
  Status Store(Tid t, const std::vector<Entry>& entries);

  TransactionManager* tm_;
  /// Set only by the Database constructor (used by Bootstrap(Tid)).
  ObjectStore* store_ = nullptr;
};

}  // namespace asset::ode

#endif  // ASSET_ODE_CATALOG_H_
