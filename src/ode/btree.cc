#include "ode/btree.h"

#include "core/database_internal.h"

#include <algorithm>

#include "ode/bytes.h"

namespace asset::ode {

namespace {

/// Child index covering `key`: children[i] holds keys k with
/// keys[i-1] <= k < keys[i] (separators are the first key of the right
/// subtree, so equal keys route right).
size_t RouteIndex(const std::vector<int64_t>& keys, int64_t key) {
  return static_cast<size_t>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}

}  // namespace

// ---------------------------------------------------------------------------
// Persistence

std::vector<uint8_t> BTree::EncodeNode(const Node& n) {
  ByteWriter w;
  w.U8(n.leaf ? 1 : 0);
  w.U16(static_cast<uint16_t>(n.keys.size()));
  for (int64_t k : n.keys) w.I64(k);
  if (n.leaf) {
    for (uint64_t v : n.values) w.U64(v);
    w.U64(n.next);
  } else {
    for (ObjectId c : n.children) w.U64(c);
  }
  return w.Take();
}

Result<BTree::Node> BTree::DecodeNode(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  Node n;
  auto leaf = r.U8();
  if (!leaf.ok()) return leaf.status();
  n.leaf = *leaf != 0;
  auto count = r.U16();
  if (!count.ok()) return count.status();
  n.keys.resize(*count);
  for (auto& k : n.keys) {
    ASSET_ASSIGN_OR_RETURN(k, r.I64());
  }
  if (n.leaf) {
    n.values.resize(*count);
    for (auto& v : n.values) {
      ASSET_ASSIGN_OR_RETURN(v, r.U64());
    }
    ASSET_ASSIGN_OR_RETURN(n.next, r.U64());
  } else {
    n.children.resize(*count + 1);
    for (auto& c : n.children) {
      ASSET_ASSIGN_OR_RETURN(c, r.U64());
    }
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in B-tree node");
  }
  return n;
}

Result<BTree::Header> BTree::ReadHeader(Tid t) const {
  auto bytes = tm_->Read(t, header_);
  if (!bytes.ok()) return bytes.status();
  ByteReader r(*bytes);
  Header h;
  ASSET_ASSIGN_OR_RETURN(h.root, r.U64());
  ASSET_ASSIGN_OR_RETURN(h.height, r.U32());
  ASSET_ASSIGN_OR_RETURN(h.size, r.U64());
  return h;
}

Status BTree::WriteHeader(Tid t, const Header& h) {
  ByteWriter w;
  w.U64(h.root);
  w.U32(h.height);
  w.U64(h.size);
  return tm_->Write(t, header_, w.buffer());
}

Result<BTree::Node> BTree::ReadNode(Tid t, ObjectId oid) const {
  auto bytes = tm_->Read(t, oid);
  if (!bytes.ok()) return bytes.status();
  return DecodeNode(*bytes);
}

Status BTree::WriteNode(Tid t, ObjectId oid, const Node& n) {
  return tm_->Write(t, oid, EncodeNode(n));
}

Result<ObjectId> BTree::NewNode(Tid t, const Node& n) {
  return tm_->CreateObject(t, EncodeNode(n));
}

// ---------------------------------------------------------------------------
// Lifecycle

Result<BTree> BTree::Create(TransactionManager* tm, Tid t) {
  Node root;  // empty leaf
  auto root_oid = tm->CreateObject(t, EncodeNode(root));
  if (!root_oid.ok()) return root_oid.status();
  ByteWriter w;
  w.U64(*root_oid);
  w.U32(1);  // height
  w.U64(0);  // size
  auto header = tm->CreateObject(t, w.buffer());
  if (!header.ok()) return header.status();
  return BTree(tm, *header);
}

// ---------------------------------------------------------------------------
// Search / Range

Result<uint64_t> BTree::Search(Tid t, int64_t key) const {
  auto h = ReadHeader(t);
  if (!h.ok()) return h.status();
  ObjectId cur = h->root;
  for (;;) {
    auto n = ReadNode(t, cur);
    if (!n.ok()) return n.status();
    if (n->leaf) {
      auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
      if (it == n->keys.end() || *it != key) {
        return Status::NotFound("key " + std::to_string(key));
      }
      return n->values[static_cast<size_t>(it - n->keys.begin())];
    }
    cur = n->children[RouteIndex(n->keys, key)];
  }
}

Result<std::vector<BTreeEntry>> BTree::Range(Tid t, int64_t lo,
                                             int64_t hi) const {
  std::vector<BTreeEntry> out;
  if (lo > hi) return out;
  auto h = ReadHeader(t);
  if (!h.ok()) return h.status();
  // Descend to the leaf that would hold `lo`.
  ObjectId cur = h->root;
  for (;;) {
    auto n = ReadNode(t, cur);
    if (!n.ok()) return n.status();
    if (n->leaf) break;
    cur = n->children[RouteIndex(n->keys, lo)];
  }
  // Walk the leaf chain.
  while (cur != kNullObjectId) {
    auto n = ReadNode(t, cur);
    if (!n.ok()) return n.status();
    for (size_t i = 0; i < n->keys.size(); ++i) {
      if (n->keys[i] < lo) continue;
      if (n->keys[i] > hi) return out;
      out.push_back(BTreeEntry{n->keys[i], n->values[i]});
    }
    cur = n->next;
  }
  return out;
}

Result<uint64_t> BTree::Size(Tid t) const {
  auto h = ReadHeader(t);
  if (!h.ok()) return h.status();
  return h->size;
}

Result<uint32_t> BTree::Height(Tid t) const {
  auto h = ReadHeader(t);
  if (!h.ok()) return h.status();
  return h->height;
}

// ---------------------------------------------------------------------------
// Insert

Result<bool> BTree::Insert(Tid t, int64_t key, uint64_t value) {
  auto h = ReadHeader(t);
  if (!h.ok()) return h.status();
  auto r = InsertRec(t, h->root, key, value);
  if (!r.ok()) return r.status();
  bool header_dirty = false;
  if (r->split) {
    Node new_root;
    new_root.leaf = false;
    new_root.keys = {r->sep};
    new_root.children = {h->root, r->right};
    auto root_oid = NewNode(t, new_root);
    if (!root_oid.ok()) return root_oid.status();
    h->root = *root_oid;
    h->height++;
    header_dirty = true;
  }
  if (r->inserted_new) {
    h->size++;
    header_dirty = true;
  }
  if (header_dirty) {
    ASSET_RETURN_NOT_OK(WriteHeader(t, *h));
  }
  return r->inserted_new;
}

Result<BTree::InsertResult> BTree::InsertRec(Tid t, ObjectId node_oid,
                                             int64_t key, uint64_t value) {
  auto node = ReadNode(t, node_oid);
  if (!node.ok()) return node.status();
  Node& n = *node;
  InsertResult out;

  if (n.leaf) {
    auto it = std::lower_bound(n.keys.begin(), n.keys.end(), key);
    size_t pos = static_cast<size_t>(it - n.keys.begin());
    if (it != n.keys.end() && *it == key) {
      n.values[pos] = value;  // upsert
      ASSET_RETURN_NOT_OK(WriteNode(t, node_oid, n));
      return out;
    }
    n.keys.insert(it, key);
    n.values.insert(n.values.begin() + pos, value);
    out.inserted_new = true;
    if (n.keys.size() > kMaxKeys) {
      size_t mid = n.keys.size() / 2;
      Node right;
      right.leaf = true;
      right.keys.assign(n.keys.begin() + mid, n.keys.end());
      right.values.assign(n.values.begin() + mid, n.values.end());
      right.next = n.next;
      auto right_oid = NewNode(t, right);
      if (!right_oid.ok()) return right_oid.status();
      n.keys.resize(mid);
      n.values.resize(mid);
      n.next = *right_oid;
      out.split = true;
      out.sep = right.keys.front();
      out.right = *right_oid;
    }
    ASSET_RETURN_NOT_OK(WriteNode(t, node_oid, n));
    return out;
  }

  size_t idx = RouteIndex(n.keys, key);
  auto child = InsertRec(t, n.children[idx], key, value);
  if (!child.ok()) return child.status();
  out.inserted_new = child->inserted_new;
  if (!child->split) return out;

  n.keys.insert(n.keys.begin() + idx, child->sep);
  n.children.insert(n.children.begin() + idx + 1, child->right);
  if (n.keys.size() > kMaxKeys) {
    size_t mid = n.keys.size() / 2;
    int64_t sep_up = n.keys[mid];
    Node right;
    right.leaf = false;
    right.keys.assign(n.keys.begin() + mid + 1, n.keys.end());
    right.children.assign(n.children.begin() + mid + 1, n.children.end());
    auto right_oid = NewNode(t, right);
    if (!right_oid.ok()) return right_oid.status();
    n.keys.resize(mid);
    n.children.resize(mid + 1);
    out.split = true;
    out.sep = sep_up;
    out.right = *right_oid;
  }
  ASSET_RETURN_NOT_OK(WriteNode(t, node_oid, n));
  return out;
}

// ---------------------------------------------------------------------------
// Delete

Status BTree::Delete(Tid t, int64_t key) {
  auto h = ReadHeader(t);
  if (!h.ok()) return h.status();
  bool underflow = false;  // root underflow handled by collapsing below
  ASSET_RETURN_NOT_OK(DeleteRec(t, h->root, key, &underflow));
  h->size--;
  // Collapse an empty internal root.
  auto root = ReadNode(t, h->root);
  if (!root.ok()) return root.status();
  if (!root->leaf && root->keys.empty()) {
    ObjectId old_root = h->root;
    h->root = root->children[0];
    h->height--;
    ASSET_RETURN_NOT_OK(tm_->DeleteObject(t, old_root));
  }
  return WriteHeader(t, *h);
}

Status BTree::DeleteRec(Tid t, ObjectId node_oid, int64_t key,
                        bool* underflow) {
  auto node = ReadNode(t, node_oid);
  if (!node.ok()) return node.status();
  Node& n = *node;

  if (n.leaf) {
    auto it = std::lower_bound(n.keys.begin(), n.keys.end(), key);
    if (it == n.keys.end() || *it != key) {
      return Status::NotFound("key " + std::to_string(key));
    }
    size_t pos = static_cast<size_t>(it - n.keys.begin());
    n.keys.erase(it);
    n.values.erase(n.values.begin() + pos);
    ASSET_RETURN_NOT_OK(WriteNode(t, node_oid, n));
    *underflow = n.keys.size() < kMinKeys;
    return Status::OK();
  }

  size_t idx = RouteIndex(n.keys, key);
  bool child_underflow = false;
  ASSET_RETURN_NOT_OK(DeleteRec(t, n.children[idx], key, &child_underflow));
  if (!child_underflow) {
    *underflow = false;
    return Status::OK();
  }
  return Rebalance(t, node_oid, &n, idx, underflow);
}

Status BTree::Rebalance(Tid t, ObjectId parent_oid, Node* parent, size_t idx,
                        bool* parent_underflow) {
  *parent_underflow = false;
  ObjectId child_oid = parent->children[idx];
  auto child_r = ReadNode(t, child_oid);
  if (!child_r.ok()) return child_r.status();
  Node child = std::move(*child_r);

  // Borrow from the left sibling.
  if (idx > 0) {
    ObjectId left_oid = parent->children[idx - 1];
    auto left_r = ReadNode(t, left_oid);
    if (!left_r.ok()) return left_r.status();
    Node left = std::move(*left_r);
    if (left.keys.size() > kMinKeys) {
      if (child.leaf) {
        child.keys.insert(child.keys.begin(), left.keys.back());
        child.values.insert(child.values.begin(), left.values.back());
        left.keys.pop_back();
        left.values.pop_back();
        parent->keys[idx - 1] = child.keys.front();
      } else {
        child.keys.insert(child.keys.begin(), parent->keys[idx - 1]);
        parent->keys[idx - 1] = left.keys.back();
        left.keys.pop_back();
        child.children.insert(child.children.begin(), left.children.back());
        left.children.pop_back();
      }
      ASSET_RETURN_NOT_OK(WriteNode(t, left_oid, left));
      ASSET_RETURN_NOT_OK(WriteNode(t, child_oid, child));
      return WriteNode(t, parent_oid, *parent);
    }
  }

  // Borrow from the right sibling.
  if (idx + 1 < parent->children.size()) {
    ObjectId right_oid = parent->children[idx + 1];
    auto right_r = ReadNode(t, right_oid);
    if (!right_r.ok()) return right_r.status();
    Node right = std::move(*right_r);
    if (right.keys.size() > kMinKeys) {
      if (child.leaf) {
        child.keys.push_back(right.keys.front());
        child.values.push_back(right.values.front());
        right.keys.erase(right.keys.begin());
        right.values.erase(right.values.begin());
        parent->keys[idx] = right.keys.front();
      } else {
        child.keys.push_back(parent->keys[idx]);
        parent->keys[idx] = right.keys.front();
        right.keys.erase(right.keys.begin());
        child.children.push_back(right.children.front());
        right.children.erase(right.children.begin());
      }
      ASSET_RETURN_NOT_OK(WriteNode(t, right_oid, right));
      ASSET_RETURN_NOT_OK(WriteNode(t, child_oid, child));
      return WriteNode(t, parent_oid, *parent);
    }
  }

  // Merge. Prefer folding the child into its left sibling; at idx == 0
  // fold the right sibling into the child.
  if (idx > 0) {
    ObjectId left_oid = parent->children[idx - 1];
    auto left_r = ReadNode(t, left_oid);
    if (!left_r.ok()) return left_r.status();
    Node left = std::move(*left_r);
    if (left.leaf) {
      left.keys.insert(left.keys.end(), child.keys.begin(), child.keys.end());
      left.values.insert(left.values.end(), child.values.begin(),
                         child.values.end());
      left.next = child.next;
    } else {
      left.keys.push_back(parent->keys[idx - 1]);
      left.keys.insert(left.keys.end(), child.keys.begin(), child.keys.end());
      left.children.insert(left.children.end(), child.children.begin(),
                           child.children.end());
    }
    parent->keys.erase(parent->keys.begin() + idx - 1);
    parent->children.erase(parent->children.begin() + idx);
    ASSET_RETURN_NOT_OK(WriteNode(t, left_oid, left));
    ASSET_RETURN_NOT_OK(tm_->DeleteObject(t, child_oid));
  } else {
    ObjectId right_oid = parent->children[idx + 1];
    auto right_r = ReadNode(t, right_oid);
    if (!right_r.ok()) return right_r.status();
    Node right = std::move(*right_r);
    if (child.leaf) {
      child.keys.insert(child.keys.end(), right.keys.begin(),
                        right.keys.end());
      child.values.insert(child.values.end(), right.values.begin(),
                          right.values.end());
      child.next = right.next;
    } else {
      child.keys.push_back(parent->keys[idx]);
      child.keys.insert(child.keys.end(), right.keys.begin(),
                        right.keys.end());
      child.children.insert(child.children.end(), right.children.begin(),
                            right.children.end());
    }
    parent->keys.erase(parent->keys.begin() + idx);
    parent->children.erase(parent->children.begin() + idx + 1);
    ASSET_RETURN_NOT_OK(WriteNode(t, child_oid, child));
    ASSET_RETURN_NOT_OK(tm_->DeleteObject(t, right_oid));
  }
  ASSET_RETURN_NOT_OK(WriteNode(t, parent_oid, *parent));
  *parent_underflow = parent->keys.size() < kMinKeys;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Invariants

Status BTree::CheckInvariants(Tid t) const {
  auto h = ReadHeader(t);
  if (!h.ok()) return h.status();
  uint64_t leaf_keys = 0;
  ASSET_RETURN_NOT_OK(
      CheckRec(t, h->root, 1, h->height, nullptr, nullptr, &leaf_keys));
  if (leaf_keys != h->size) {
    return Status::Internal("size mismatch: header says " +
                            std::to_string(h->size) + ", leaves hold " +
                            std::to_string(leaf_keys));
  }
  return Status::OK();
}

Status BTree::CheckRec(Tid t, ObjectId node_oid, uint32_t depth,
                       uint32_t height, const int64_t* lo, const int64_t* hi,
                       uint64_t* leaf_keys) const {
  auto node = ReadNode(t, node_oid);
  if (!node.ok()) return node.status();
  const Node& n = *node;
  if (!std::is_sorted(n.keys.begin(), n.keys.end())) {
    return Status::Internal("unsorted keys in node " +
                            std::to_string(node_oid));
  }
  for (int64_t k : n.keys) {
    if ((lo != nullptr && k < *lo) || (hi != nullptr && k >= *hi)) {
      return Status::Internal("key out of bounds in node " +
                              std::to_string(node_oid));
    }
  }
  // Fill factor: the root is exempt; leaves may be the root.
  bool is_root = depth == 1;
  if (!is_root && n.keys.size() < kMinKeys) {
    return Status::Internal("underfull node " + std::to_string(node_oid));
  }
  if (n.keys.size() > kMaxKeys) {
    return Status::Internal("overfull node " + std::to_string(node_oid));
  }
  if (n.leaf) {
    if (depth != height) {
      return Status::Internal("leaf at depth " + std::to_string(depth) +
                              " but height is " + std::to_string(height));
    }
    if (n.values.size() != n.keys.size()) {
      return Status::Internal("leaf value count mismatch");
    }
    *leaf_keys += n.keys.size();
    return Status::OK();
  }
  if (n.children.size() != n.keys.size() + 1) {
    return Status::Internal("internal child count mismatch");
  }
  for (size_t i = 0; i < n.children.size(); ++i) {
    const int64_t* clo = i == 0 ? lo : &n.keys[i - 1];
    const int64_t* chi = i == n.keys.size() ? hi : &n.keys[i];
    ASSET_RETURN_NOT_OK(
        CheckRec(t, n.children[i], depth + 1, height, clo, chi, leaf_keys));
  }
  return Status::OK();
}


Result<BTree> BTree::Create(Database* db, Tid t) {
  return Create(&KernelOf(*db), t);
}

BTree BTree::Open(Database* db, ObjectId header_oid) {
  return Open(&KernelOf(*db), header_oid);
}

}  // namespace asset::ode
