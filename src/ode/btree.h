#ifndef ASSET_ODE_BTREE_H_
#define ASSET_ODE_BTREE_H_

/// \file btree.h
/// A transactional B+-tree index over the object store.
///
/// The paper's setting is the Ode object database; real Ode kept indexes
/// over persistent objects. This B+-tree maps int64 keys to 64-bit
/// values (typically ObjectIds) and stores every node as an ordinary
/// persistent object, so *all* index mutations flow through the
/// transaction kernel: node reads take read locks, splits/merges take
/// write locks, structure changes are before/after-image logged, and an
/// aborting transaction rolls its splits back like any other update.
/// Index operations are therefore serializable with the data they
/// index, and survive crashes via ordinary recovery.
///
/// Concurrency: strict 2PL on nodes (no lock coupling — early release
/// would break strictness). Concurrent writers that conflict resolve
/// through the deadlock detector; retry via models::RunAtomicWithRetry.

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/transaction_manager.h"

namespace asset {
class Database;
}

namespace asset::ode {

/// One key/value pair as returned by range scans.
struct BTreeEntry {
  int64_t key;
  uint64_t value;
  bool operator==(const BTreeEntry&) const = default;
};

/// Handle to one persistent B+-tree. Copyable; identified by the header
/// object's id, which is the durable name of the tree.
class BTree {
 public:
  /// Maximum keys per node. Kept modest so multi-level trees appear at
  /// test sizes; a node fits well within a page either way.
  static constexpr size_t kMaxKeys = 32;
  static constexpr size_t kMinKeys = kMaxKeys / 2;

  /// Creates an empty tree under transaction `t`; durable when `t`
  /// commits.
  static Result<BTree> Create(TransactionManager* tm, Tid t);
  static Result<BTree> Create(Database* db, Tid t);

  /// Opens an existing tree by its header object id.
  static BTree Open(TransactionManager* tm, ObjectId header_oid) {
    return BTree(tm, header_oid);
  }
  static BTree Open(Database* db, ObjectId header_oid);

  /// The durable handle to pass to Open later.
  ObjectId header_oid() const { return header_; }

  /// Inserts or overwrites `key`. Returns true if the key was new.
  Result<bool> Insert(Tid t, int64_t key, uint64_t value);

  /// Value stored under `key`; NotFound if absent.
  Result<uint64_t> Search(Tid t, int64_t key) const;

  /// Removes `key`; NotFound if absent. Underflowing nodes borrow from
  /// or merge with siblings; the root collapses when empty.
  Status Delete(Tid t, int64_t key);

  /// All entries with lo <= key <= hi, in key order.
  Result<std::vector<BTreeEntry>> Range(Tid t, int64_t lo, int64_t hi) const;

  /// Number of keys in the tree.
  Result<uint64_t> Size(Tid t) const;

  /// Height of the tree (1 = just a leaf root).
  Result<uint32_t> Height(Tid t) const;

  /// Structural invariant check (key order, fill factors, uniform leaf
  /// depth, size agreement); OK or an Internal error describing the
  /// violation. For tests.
  Status CheckInvariants(Tid t) const;

 private:
  BTree(TransactionManager* tm, ObjectId header) : tm_(tm), header_(header) {}

  struct Header {
    ObjectId root;
    uint32_t height;
    uint64_t size;
  };

  struct Node {
    bool leaf = true;
    std::vector<int64_t> keys;
    /// Internal: children (keys.size() + 1 entries). Leaf: unused.
    std::vector<ObjectId> children;
    /// Leaf: values (keys.size() entries). Internal: unused.
    std::vector<uint64_t> values;
    /// Leaf-chain link for range scans (kNullObjectId at the tail).
    ObjectId next = kNullObjectId;
  };

  Result<Header> ReadHeader(Tid t) const;
  Status WriteHeader(Tid t, const Header& h);
  Result<Node> ReadNode(Tid t, ObjectId oid) const;
  Status WriteNode(Tid t, ObjectId oid, const Node& n);
  Result<ObjectId> NewNode(Tid t, const Node& n);

  static std::vector<uint8_t> EncodeNode(const Node& n);
  static Result<Node> DecodeNode(const std::vector<uint8_t>& bytes);

  /// Result of inserting into a subtree: if `split`, `right`/`sep` name
  /// the new right sibling and its separator key.
  struct InsertResult {
    bool inserted_new = false;
    bool split = false;
    int64_t sep = 0;
    ObjectId right = kNullObjectId;
  };
  Result<InsertResult> InsertRec(Tid t, ObjectId node_oid, int64_t key,
                                 uint64_t value);

  /// Deletes from the subtree; sets *underflow when the child dropped
  /// below kMinKeys (the parent rebalances).
  Status DeleteRec(Tid t, ObjectId node_oid, int64_t key, bool* underflow);

  /// Rebalances child `idx` of `parent` (borrow, else merge). Sets
  /// *parent_underflow if the parent itself drops below minimum.
  Status Rebalance(Tid t, ObjectId parent_oid, Node* parent, size_t idx,
                   bool* parent_underflow);

  Status CheckRec(Tid t, ObjectId node_oid, uint32_t depth, uint32_t height,
                  const int64_t* lo, const int64_t* hi,
                  uint64_t* leaf_keys) const;

  TransactionManager* tm_;
  ObjectId header_;
};

}  // namespace asset::ode

#endif  // ASSET_ODE_BTREE_H_
