#include "ode/catalog.h"

#include "core/database_internal.h"

#include <algorithm>

#include "ode/bytes.h"

namespace asset::ode {

Status Catalog::Bootstrap(Tid t, ObjectStore* store) {
  if (store->Exists(kCatalogOid)) return Status::OK();
  // The catalog object must carry its reserved id, which CreateObject
  // cannot choose; create it through the store and take a write lock so
  // the creating transaction owns it like any other create. Since the
  // id is reserved and this races only with other bootstrappers, a
  // late IllegalState means someone else won — also fine.
  ByteWriter w;
  w.U32(0);
  Status s = store->CreateWithId(kCatalogOid, w.buffer());
  if (!s.ok() && !s.IsIllegalState()) return s;
  // Touch it transactionally so the usual locking applies from now on.
  return tm_->Read(t, kCatalogOid).status();
}

Result<std::vector<Catalog::Entry>> Catalog::Load(Tid t) const {
  auto bytes = tm_->Read(t, kCatalogOid);
  if (!bytes.ok()) return bytes.status();
  ByteReader r(*bytes);
  auto count = r.U32();
  if (!count.ok()) return count.status();
  std::vector<Entry> entries(*count);
  for (auto& e : entries) {
    ASSET_ASSIGN_OR_RETURN(e.name, r.Str());
    ASSET_ASSIGN_OR_RETURN(e.oid, r.U64());
  }
  return entries;
}

Status Catalog::Store(Tid t, const std::vector<Entry>& entries) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(entries.size()));
  for (const Entry& e : entries) {
    w.Str(e.name);
    w.U64(e.oid);
  }
  return tm_->Write(t, kCatalogOid, w.buffer());
}

Status Catalog::Bind(Tid t, const std::string& name, ObjectId oid) {
  auto entries = Load(t);
  if (!entries.ok()) return entries.status();
  for (Entry& e : *entries) {
    if (e.name == name) {
      e.oid = oid;
      return Store(t, *entries);
    }
  }
  entries->push_back(Entry{name, oid});
  return Store(t, *entries);
}

Result<ObjectId> Catalog::Lookup(Tid t, const std::string& name) const {
  auto entries = Load(t);
  if (!entries.ok()) return entries.status();
  for (const Entry& e : *entries) {
    if (e.name == name) return e.oid;
  }
  return Status::NotFound("no binding for '" + name + "'");
}

Status Catalog::Unbind(Tid t, const std::string& name) {
  auto entries = Load(t);
  if (!entries.ok()) return entries.status();
  auto it = std::find_if(entries->begin(), entries->end(),
                         [&](const Entry& e) { return e.name == name; });
  if (it == entries->end()) {
    return Status::NotFound("no binding for '" + name + "'");
  }
  entries->erase(it);
  return Store(t, *entries);
}

Result<std::vector<std::string>> Catalog::List(Tid t) const {
  auto entries = Load(t);
  if (!entries.ok()) return entries.status();
  std::vector<std::string> names;
  names.reserve(entries->size());
  for (const Entry& e : *entries) names.push_back(e.name);
  std::sort(names.begin(), names.end());
  return names;
}


Catalog::Catalog(Database* db)
    : tm_(&KernelOf(*db)), store_(&StoreOf(*db)) {}

Status Catalog::Bootstrap(Tid t) {
  if (store_ == nullptr) {
    return Status::IllegalState(
        "catalog: Bootstrap(t) needs a Database-constructed catalog");
  }
  return Bootstrap(t, store_);
}

}  // namespace asset::ode
