#ifndef ASSET_ODE_BYTES_H_
#define ASSET_ODE_BYTES_H_

/// \file bytes.h
/// Little-endian serialization helpers for Ode-layer persistent
/// structures (B-tree nodes, catalog entries).

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace asset::ode {

/// Appends fixed-width values and length-prefixed strings to a buffer.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U16(static_cast<uint16_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::vector<uint8_t> Take() { return std::move(buf_); }
  const std::vector<uint8_t>& buffer() const { return buf_; }

 private:
  void Raw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<uint8_t> buf_;
};

/// Reads values written by ByteWriter; every getter fails cleanly on a
/// short buffer.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  Result<uint8_t> U8() {
    if (off_ + 1 > buf_.size()) return Short();
    return buf_[off_++];
  }
  Result<uint16_t> U16() { return Fixed<uint16_t>(); }
  Result<uint32_t> U32() { return Fixed<uint32_t>(); }
  Result<uint64_t> U64() { return Fixed<uint64_t>(); }
  Result<int64_t> I64() { return Fixed<int64_t>(); }
  Result<std::string> Str() {
    auto len = U16();
    if (!len.ok()) return len.status();
    if (off_ + *len > buf_.size()) return Short();
    std::string out(buf_.begin() + off_, buf_.begin() + off_ + *len);
    off_ += *len;
    return out;
  }

  bool AtEnd() const { return off_ == buf_.size(); }
  size_t offset() const { return off_; }

 private:
  template <typename T>
  Result<T> Fixed() {
    if (off_ + sizeof(T) > buf_.size()) return Short();
    T v;
    std::memcpy(&v, buf_.data() + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }
  Status Short() const {
    return Status::Corruption("serialized structure truncated at offset " +
                              std::to_string(off_));
  }

  const std::vector<uint8_t>& buf_;
  size_t off_ = 0;
};

}  // namespace asset::ode

#endif  // ASSET_ODE_BYTES_H_
