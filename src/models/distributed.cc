#include "models/distributed.h"

namespace asset::models {

DistributedTransaction& DistributedTransaction::AddComponent(
    std::function<void()> body) {
  components_.push_back(std::move(body));
  return *this;
}

bool DistributedTransaction::Run(TransactionManager& tm) {
  tids_.clear();
  if (components_.empty()) return true;
  // t1 = initiate(f1); ... tn = initiate(fn);
  for (auto& body : components_) {
    Tid t = tm.InitiateFn(body);
    if (t == kNullTid) {
      // Clean up anything already initiated.
      for (Tid earlier : tids_) tm.Abort(earlier);
      tids_.clear();
      return false;
    }
    tids_.push_back(t);
  }
  // form_dependency(GC, ti, ti+1): chaining makes one GC component.
  for (size_t i = 0; i + 1 < tids_.size(); ++i) {
    Status s = tm.FormDependency(DependencyType::kGroupCommit, tids_[i],
                                 tids_[i + 1]);
    if (!s.ok()) {
      for (Tid t : tids_) tm.Abort(t);
      return false;
    }
  }
  // begin(t1, t2, ..., tn);
  for (Tid t : tids_) {
    if (!tm.Begin(t)) {
      for (Tid u : tids_) tm.Abort(u);
      return false;
    }
  }
  // commit(t1); commit(t2); ... — the first performs the group commit,
  // the rest merely observe the outcome.
  bool committed = true;
  for (Tid t : tids_) committed = tm.Commit(t) && committed;
  return committed;
}

}  // namespace asset::models
