#ifndef ASSET_MODELS_WORKFLOW_LANG_H_
#define ASSET_MODELS_WORKFLOW_LANG_H_

/// \file workflow_lang.h
/// A small workflow-specification language.
///
/// §3.2.3: "Just as we had higher-level language constructs corresponding
/// to each of the transaction models discussed earlier, it is possible to
/// design a language to specify workflows. These would then be
/// translated into the code given here." This header is that language
/// and its translator. The appendix's X_conference activity reads:
///
///     # X attends the conference (June 11-14, 1994)
///     workflow x_conference {
///       step flight required {
///         try delta
///         try united
///         try american
///       } compensate cancel_flight
///       step hotel required {
///         try equator
///       }
///       step car optional race {
///         try national
///         try avis
///       }
///     }
///
/// ParseWorkflowSpec turns the text into a WorkflowSpec; CompileWorkflow
/// binds the task names against a registry of callables and emits a
/// runnable models::Workflow — the §3.2.3 "translated into the code
/// given here".

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "models/workflow.h"

namespace asset::models {

/// Parsed form of one workflow definition.
struct WorkflowSpec {
  struct StepSpec {
    std::string name;
    bool required = true;
    Workflow::Mode mode = Workflow::Mode::kOrdered;
    /// Alternative task names, in preference (or race) order.
    std::vector<std::string> tasks;
    /// Compensating task name; empty if none.
    std::string compensation;
  };

  std::string name;
  std::vector<StepSpec> steps;
};

/// Parses a workflow definition. Grammar (comments run `#` to newline):
///
///   workflow  := "workflow" ident "{" step* "}"
///   step      := "step" ident flags "{" try+ "}" [ "compensate" ident ]
///   flags     := [ "required" | "optional" ] [ "ordered" | "race" ]
///   try       := "try" ident
///
/// Errors carry the offending line number.
Result<WorkflowSpec> ParseWorkflowSpec(const std::string& text);

/// Name → callable bindings for compilation.
using TaskRegistry = std::unordered_map<std::string, Workflow::Task>;

/// Translates a parsed spec into a runnable Workflow. Every task name
/// (including compensations) must be bound in `registry`.
Result<Workflow> CompileWorkflow(const WorkflowSpec& spec,
                                 const TaskRegistry& registry);

/// Convenience: parse + compile.
Result<Workflow> BuildWorkflow(const std::string& text,
                               const TaskRegistry& registry);

}  // namespace asset::models

#endif  // ASSET_MODELS_WORKFLOW_LANG_H_
