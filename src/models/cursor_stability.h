#ifndef ASSET_MODELS_CURSOR_STABILITY_H_
#define ASSET_MODELS_CURSOR_STABILITY_H_

/// \file cursor_stability.h
/// Cursor stability — §3.2.2.
///
/// A reading transaction scanning records keeps full protection only on
/// the record under its cursor; before moving on, it executes
/// permit(t_i, record, write), letting *any* transaction write the
/// record it has finished with — trading repeatable reads for
/// concurrency, exactly the commercial degree-2 consistency.

#include <vector>

#include "common/status.h"
#include "core/transaction_manager.h"

namespace asset::models {

/// A cursor over an ordered set of records with cursor-stability
/// semantics for the owning reader transaction.
class StableCursor {
 public:
  /// `reader` scans `records` in order.
  StableCursor(TransactionManager& tm, Tid reader,
               std::vector<ObjectId> records)
      : tm_(tm), reader_(reader), records_(std::move(records)) {}

  /// True when every record has been consumed.
  bool Done() const { return pos_ >= records_.size(); }

  /// Object id under the cursor (Done() must be false).
  ObjectId Current() const { return records_[pos_]; }

  /// Reads the record under the cursor, then releases its write
  /// protection — permit(reader, record, write) — and advances.
  Result<std::vector<uint8_t>> Next();

 private:
  TransactionManager& tm_;
  Tid reader_;
  std::vector<ObjectId> records_;
  size_t pos_ = 0;
};

}  // namespace asset::models

#endif  // ASSET_MODELS_CURSOR_STABILITY_H_
