#ifndef ASSET_MODELS_ATOMIC_H_
#define ASSET_MODELS_ATOMIC_H_

/// \file atomic.h
/// Atomic transactions — the §3.1.1 translation.
///
/// The O++ compiler turns `trans { body }` into
///
///     tid t;
///     if ((t = initiate(f)) != NULL) {
///       if (begin(t)) {
///         commit(t);
///       }
///     }
///
/// `RunAtomic` is that code as a library call.

#include <functional>

#include "core/transaction_manager.h"

namespace asset {
class Database;
}

namespace asset::models {

/// Runs `body` as a serializable, failure-atomic transaction. Returns
/// true iff the transaction committed. The body may call Abort(Self())
/// to abandon its own work.
bool RunAtomic(TransactionManager& tm, std::function<void()> body);
bool RunAtomic(Database& db, std::function<void()> body);

/// RunAtomic with automatic retry on abort (deadlock victims, lock
/// timeouts). Retries the body up to `max_attempts` times in total;
/// returns true iff some attempt committed. The body must therefore be
/// written to be re-executable from scratch.
bool RunAtomicWithRetry(TransactionManager& tm, std::function<void()> body,
                        int max_attempts = 3);
bool RunAtomicWithRetry(Database& db, std::function<void()> body,
                        int max_attempts = 3);

}  // namespace asset::models

#endif  // ASSET_MODELS_ATOMIC_H_
