#include "models/nested.h"

#include "core/database_internal.h"

#include "models/atomic.h"

namespace asset::models {

Status RunSubtransaction(TransactionManager& tm, std::function<void()> body,
                         OnChildAbort on_abort) {
  Tid self = TransactionManager::Self();
  if (self == kNullTid) {
    return Status::IllegalState(
        "RunSubtransaction must be called from inside a transaction");
  }
  Tid child = tm.InitiateFn(std::move(body));
  if (child == kNullTid) {
    return Status::ResourceExhausted("could not initiate subtransaction");
  }
  // permit(self(), t1): the child may see and touch everything the
  // parent holds, without a serialization conflict.
  ASSET_RETURN_NOT_OK(tm.Permit(self, child));
  if (!tm.Begin(child)) {
    return Status::IllegalState("could not begin subtransaction");
  }
  if (!tm.Wait(child)) {
    // Child aborted.
    if (on_abort == OnChildAbort::kAbortParent) {
      tm.Abort(self);
    }
    return Status::TxnAborted("subtransaction aborted");
  }
  // delegate(t1, self()): the child's operations become the parent's;
  // they persist only if the top-level transaction commits.
  ASSET_RETURN_NOT_OK(tm.Delegate(child, self));
  // commit(t1): after full delegation this is a formality (the paper
  // notes it no longer matters), but the translation performs it.
  tm.Commit(child);
  return Status::OK();
}

bool RunNestedRoot(TransactionManager& tm, std::function<void()> body) {
  return RunAtomic(tm, std::move(body));
}


Status RunSubtransaction(Database& db, std::function<void()> body,
                         OnChildAbort on_abort) {
  return RunSubtransaction(KernelOf(db), std::move(body), on_abort);
}

bool RunNestedRoot(Database& db, std::function<void()> body) {
  return RunNestedRoot(KernelOf(db), std::move(body));
}

}  // namespace asset::models
