#ifndef ASSET_MODELS_CONTINGENT_H_
#define ASSET_MODELS_CONTINGENT_H_

/// \file contingent.h
/// Contingent transactions — the §3.1.3 translation.
///
/// `trans {f1()} else trans {f2()} else ... else trans {fn()}`: the
/// alternatives are tried in the given order; at most one commits.

#include <functional>
#include <vector>

#include "core/transaction_manager.h"

namespace asset::models {

/// Builder for one contingent transaction.
class ContingentTransaction {
 public:
  /// Adds the next alternative.
  ContingentTransaction& AddAlternative(std::function<void()> body);

  /// Runs alternatives in order until one commits. Returns the 0-based
  /// index of the committed alternative, or -1 if every alternative
  /// aborted.
  int Run(TransactionManager& tm);

 private:
  std::vector<std::function<void()>> alternatives_;
};

}  // namespace asset::models

#endif  // ASSET_MODELS_CONTINGENT_H_
