#ifndef ASSET_MODELS_DISTRIBUTED_H_
#define ASSET_MODELS_DISTRIBUTED_H_

/// \file distributed.h
/// Distributed transactions — the §3.1.2 translation.
///
/// Component transactions execute in parallel and "can only commit as a
/// group": pairwise group-commit dependencies chain the components into
/// one GC component, so committing any one of them commits all of them,
/// and an abort anywhere aborts everything.

#include <functional>
#include <vector>

#include "core/transaction_manager.h"

namespace asset::models {

/// Builder for one distributed transaction.
class DistributedTransaction {
 public:
  /// Adds a component to execute in parallel with the others.
  DistributedTransaction& AddComponent(std::function<void()> body);

  /// Initiates all components, chains them with GC dependencies, begins
  /// them in parallel, and commits the group (the paper notes that
  /// committing t1 suffices; we still call commit on every component and
  /// check they agree, as the translation does). Returns true iff the
  /// group committed.
  bool Run(TransactionManager& tm);

  /// Component tids of the last Run (for inspection/tests).
  const std::vector<Tid>& tids() const { return tids_; }

 private:
  std::vector<std::function<void()>> components_;
  std::vector<Tid> tids_;
};

}  // namespace asset::models

#endif  // ASSET_MODELS_DISTRIBUTED_H_
