#include "models/atomic.h"

#include "core/database_internal.h"

#include <thread>

namespace asset::models {

bool RunAtomic(TransactionManager& tm, std::function<void()> body) {
  Tid t = tm.InitiateFn(std::move(body));
  if (t == kNullTid) return false;
  if (!tm.Begin(t)) return false;
  return tm.Commit(t);
}

bool RunAtomicWithRetry(TransactionManager& tm, std::function<void()> body,
                        int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (RunAtomic(tm, body)) return true;
    // Brief, growing pause so colliding retriers de-synchronize.
    std::this_thread::sleep_for(std::chrono::microseconds(50 << attempt));
  }
  return false;
}


bool RunAtomic(Database& db, std::function<void()> body) {
  return RunAtomic(KernelOf(db), std::move(body));
}

bool RunAtomicWithRetry(Database& db, std::function<void()> body,
                        int max_attempts) {
  return RunAtomicWithRetry(KernelOf(db), std::move(body), max_attempts);
}

}  // namespace asset::models
