#include "models/workflow_lang.h"

#include <cctype>

namespace asset::models {

namespace {

/// Token stream over the spec text; identifiers, braces, and
/// end-of-input, with `#` comments skipped and line numbers tracked.
class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { Advance(); }

  const std::string& token() const { return token_; }
  int line() const { return token_line_; }
  bool AtEnd() const { return token_.empty(); }

  /// Consumes the current token.
  void Advance() {
    SkipSpaceAndComments();
    token_line_ = line_;
    token_.clear();
    if (pos_ >= text_.size()) return;
    char c = text_[pos_];
    if (c == '{' || c == '}') {
      token_ = std::string(1, c);
      ++pos_;
      return;
    }
    while (pos_ < text_.size() && !std::isspace(Peek()) && Peek() != '{' &&
           Peek() != '}' && Peek() != '#') {
      token_.push_back(text_[pos_++]);
    }
  }

  /// Consumes `expected` or reports where something else was found.
  Status Expect(const std::string& expected) {
    if (token_ != expected) {
      return Error("expected '" + expected + "', found '" +
                   (AtEnd() ? "<end>" : token_) + "'");
    }
    Advance();
    return Status::OK();
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("workflow spec line " +
                                   std::to_string(token_line_) + ": " + msg);
  }

 private:
  char Peek() const { return text_[pos_]; }

  void SkipSpaceAndComments() {
    for (;;) {
      while (pos_ < text_.size() && std::isspace(Peek())) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ < text_.size() && Peek() == '#') {
        while (pos_ < text_.size() && Peek() != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int token_line_ = 1;
  std::string token_;
};

bool IsKeyword(const std::string& t) {
  return t == "workflow" || t == "step" || t == "required" ||
         t == "optional" || t == "ordered" || t == "race" || t == "try" ||
         t == "compensate" || t == "{" || t == "}";
}

Result<std::string> ParseIdent(Lexer& lex, const char* what) {
  if (lex.AtEnd() || IsKeyword(lex.token())) {
    return lex.Error(std::string("expected ") + what + ", found '" +
                     (lex.AtEnd() ? "<end>" : lex.token()) + "'");
  }
  std::string name = lex.token();
  lex.Advance();
  return name;
}

Result<WorkflowSpec::StepSpec> ParseStep(Lexer& lex) {
  WorkflowSpec::StepSpec step;
  ASSET_RETURN_NOT_OK(lex.Expect("step"));
  ASSET_ASSIGN_OR_RETURN(step.name, ParseIdent(lex, "step name"));
  // Flags, in any order, each at most once.
  bool saw_need = false, saw_mode = false;
  for (;;) {
    const std::string& t = lex.token();
    if (t == "required" || t == "optional") {
      if (saw_need) return lex.Error("duplicate required/optional flag");
      saw_need = true;
      step.required = t == "required";
      lex.Advance();
    } else if (t == "ordered" || t == "race") {
      if (saw_mode) return lex.Error("duplicate ordered/race flag");
      saw_mode = true;
      step.mode =
          t == "race" ? Workflow::Mode::kRace : Workflow::Mode::kOrdered;
      lex.Advance();
    } else {
      break;
    }
  }
  ASSET_RETURN_NOT_OK(lex.Expect("{"));
  while (lex.token() == "try") {
    lex.Advance();
    std::string task;
    ASSET_ASSIGN_OR_RETURN(task, ParseIdent(lex, "task name"));
    step.tasks.push_back(std::move(task));
  }
  if (step.tasks.empty()) {
    return lex.Error("step '" + step.name + "' has no 'try' alternatives");
  }
  ASSET_RETURN_NOT_OK(lex.Expect("}"));
  if (lex.token() == "compensate") {
    lex.Advance();
    ASSET_ASSIGN_OR_RETURN(step.compensation,
                           ParseIdent(lex, "compensation task name"));
  }
  return step;
}

}  // namespace

Result<WorkflowSpec> ParseWorkflowSpec(const std::string& text) {
  Lexer lex(text);
  WorkflowSpec spec;
  ASSET_RETURN_NOT_OK(lex.Expect("workflow"));
  ASSET_ASSIGN_OR_RETURN(spec.name, ParseIdent(lex, "workflow name"));
  ASSET_RETURN_NOT_OK(lex.Expect("{"));
  while (lex.token() == "step") {
    auto step = ParseStep(lex);
    if (!step.ok()) return step.status();
    spec.steps.push_back(std::move(step).value());
  }
  ASSET_RETURN_NOT_OK(lex.Expect("}"));
  if (!lex.AtEnd()) {
    return lex.Error("trailing input after workflow definition");
  }
  if (spec.steps.empty()) {
    return Status::InvalidArgument("workflow spec: workflow '" + spec.name +
                                   "' has no steps");
  }
  return spec;
}

Result<Workflow> CompileWorkflow(const WorkflowSpec& spec,
                                 const TaskRegistry& registry) {
  auto resolve = [&](const std::string& name) -> Result<Workflow::Task> {
    auto it = registry.find(name);
    if (it == registry.end()) {
      return Status::NotFound("workflow '" + spec.name +
                              "': no task registered for '" + name + "'");
    }
    return it->second;
  };
  Workflow wf;
  for (const WorkflowSpec::StepSpec& s : spec.steps) {
    Workflow::Step step;
    step.name = s.name;
    step.required = s.required;
    step.mode = s.mode;
    for (const std::string& task : s.tasks) {
      auto fn = resolve(task);
      if (!fn.ok()) return fn.status();
      step.alternatives.push_back(std::move(fn).value());
    }
    if (!s.compensation.empty()) {
      auto fn = resolve(s.compensation);
      if (!fn.ok()) return fn.status();
      step.compensation = std::move(fn).value();
    }
    wf.AddStep(std::move(step));
  }
  return wf;
}

Result<Workflow> BuildWorkflow(const std::string& text,
                               const TaskRegistry& registry) {
  auto spec = ParseWorkflowSpec(text);
  if (!spec.ok()) return spec.status();
  return CompileWorkflow(*spec, registry);
}

}  // namespace asset::models
