#ifndef ASSET_MODELS_SAGA_H_
#define ASSET_MODELS_SAGA_H_

/// \file saga.h
/// Sagas — the §3.1.6 translation.
///
/// A saga is a sequence of component transactions t_1..t_n, each (except
/// the last) paired with a compensating transaction ct_i. Components
/// commit as they go — isolation holds only per component. If component
/// k+1 fails, the committed prefix is semantically undone by running
/// ct_k .. ct_1 in reverse order; each compensating transaction is
/// retried until it finally commits (the paper's do/while loops).
///
/// The correct executions are therefore
///     t_1 t_2 ... t_n                         (committed saga)
///     t_1 ... t_k ct_k ct_{k-1} ... ct_1      (aborted saga)

#include <functional>
#include <string>
#include <vector>

#include "core/transaction_manager.h"

namespace asset {
class Database;
}

namespace asset::models {

/// Builder and runner for one saga.
class Saga {
 public:
  /// Adds a component with its compensating transaction.
  Saga& AddStep(std::function<void()> action,
                std::function<void()> compensation);

  /// Adds a component with no compensation (the paper's t_n: committing
  /// the last component commits the saga). Legal for any step, but a
  /// failure after an uncompensated step cannot semantically undo it.
  Saga& AddStep(std::function<void()> action);

  struct Outcome {
    /// True iff every component committed.
    bool committed = false;
    /// Components that committed (== steps.size() when committed).
    size_t steps_committed = 0;
    /// Compensating transactions run (each retried until it committed).
    size_t compensations_run = 0;
  };

  /// Executes the saga. `max_compensation_attempts` bounds the paper's
  /// unbounded retry loop so a permanently failing compensation cannot
  /// hang the caller (0 = retry forever).
  Outcome Run(TransactionManager& tm, int max_compensation_attempts = 100);
  Outcome Run(Database& db, int max_compensation_attempts = 100);

  size_t size() const { return steps_.size(); }

 private:
  struct Step {
    std::function<void()> action;
    std::function<void()> compensation;  // may be empty
  };
  std::vector<Step> steps_;
};

}  // namespace asset::models

#endif  // ASSET_MODELS_SAGA_H_
