#include "models/split_join.h"

#include "core/database_internal.h"

namespace asset::models {

Result<Tid> Split(TransactionManager& tm, const ObjectSet& delegated,
                  std::function<void()> body) {
  Tid self = TransactionManager::Self();
  if (self == kNullTid) {
    return Status::IllegalState("Split must be called from inside a "
                                "transaction");
  }
  Tid s = tm.InitiateFn(std::move(body));
  if (s == kNullTid) {
    return Status::ResourceExhausted("could not initiate split transaction");
  }
  // delegate(parent(s), s, X) — parent(s) is the splitting transaction.
  ASSET_RETURN_NOT_OK(tm.Delegate(self, s, delegated));
  if (!tm.Begin(s)) {
    return Status::IllegalState("could not begin split transaction");
  }
  return s;
}

Status Join(TransactionManager& tm, Tid s, Tid t) {
  if (!tm.Wait(s)) {
    return Status::TxnAborted("join: transaction aborted before joining");
  }
  return tm.Delegate(s, t);
}


Result<Tid> Split(Database& db, const ObjectSet& delegated,
                  std::function<void()> body) {
  return Split(KernelOf(db), delegated, std::move(body));
}

Status Join(Database& db, Tid s, Tid t) { return Join(KernelOf(db), s, t); }

}  // namespace asset::models
