#include "models/saga.h"

#include "core/database_internal.h"

namespace asset::models {

Saga& Saga::AddStep(std::function<void()> action,
                    std::function<void()> compensation) {
  steps_.push_back(Step{std::move(action), std::move(compensation)});
  return *this;
}

Saga& Saga::AddStep(std::function<void()> action) {
  steps_.push_back(Step{std::move(action), nullptr});
  return *this;
}

Saga::Outcome Saga::Run(TransactionManager& tm,
                        int max_compensation_attempts) {
  Outcome outcome;
  // Forward phase: ti = initiate(fi); begin(ti); if (!commit(ti)) break;
  size_t i = 0;
  for (; i < steps_.size(); ++i) {
    Tid t = tm.InitiateFn(steps_[i].action);
    if (t == kNullTid) break;
    if (!tm.Begin(t)) break;
    if (!tm.Commit(t)) break;
    outcome.steps_committed++;
  }
  if (outcome.steps_committed == steps_.size()) {
    outcome.committed = true;
    return outcome;
  }
  // Compensation phase: the switch cascade — ct_k .. ct_1, each retried
  // until it commits.
  for (size_t k = outcome.steps_committed; k-- > 0;) {
    if (!steps_[k].compensation) continue;
    int attempts = 0;
    for (;;) {
      Tid ct = tm.InitiateFn(steps_[k].compensation);
      bool ok = ct != kNullTid && tm.Begin(ct) && tm.Commit(ct);
      if (ok) break;
      if (max_compensation_attempts > 0 &&
          ++attempts >= max_compensation_attempts) {
        // Give up; the outcome still reports how far we got.
        return outcome;
      }
    }
    outcome.compensations_run++;
  }
  return outcome;
}


Saga::Outcome Saga::Run(Database& db, int max_compensation_attempts) {
  return Run(KernelOf(db), max_compensation_attempts);
}

}  // namespace asset::models
