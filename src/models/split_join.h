#ifndef ASSET_MODELS_SPLIT_JOIN_H_
#define ASSET_MODELS_SPLIT_JOIN_H_

/// \file split_join.h
/// Split and join transactions — the §3.1.5 translation.
///
/// Split: a running transaction carves off responsibility for a set of
/// objects into a fresh transaction that commits or aborts
/// independently:
///
///     s = initiate(f);
///     delegate(self(), s, X);
///     begin(s);
///
/// Join: a transaction's work is folded into another:
///
///     wait(s);
///     delegate(s, t);

#include <functional>

#include "common/object_set.h"
#include "common/status.h"
#include "core/transaction_manager.h"

namespace asset {
class Database;
}

namespace asset::models {

/// Splits the calling transaction: operations already performed on the
/// objects in `delegated` (and their locks) move to a new transaction
/// running `body`. Returns the new transaction's tid. Must be called
/// from inside a running transaction.
Result<Tid> Split(TransactionManager& tm, const ObjectSet& delegated,
                  std::function<void()> body);
Result<Tid> Split(Database& db, const ObjectSet& delegated,
                  std::function<void()> body);

/// Joins transaction `s` into transaction `t`: waits for s's code to
/// complete, then delegates everything s is responsible for to t.
/// Returns kTxnAborted if s aborted before it could be joined.
Status Join(TransactionManager& tm, Tid s, Tid t);
Status Join(Database& db, Tid s, Tid t);

}  // namespace asset::models

#endif  // ASSET_MODELS_SPLIT_JOIN_H_
