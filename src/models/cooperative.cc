#include "models/cooperative.h"

#include "core/database_internal.h"

namespace asset::models {

Status CooperativeGroup::Enroll(Tid t, OpSet ops) {
  for (Tid m : members_) {
    // The §3.2.1 exchange, both directions:
    //   form_dependency(CD, t_i, t_j); permit(t_i, t_j, ob, op);
    //   permit(t_j, t_i, ob, op);
    ASSET_RETURN_NOT_OK(tm_.Permit(m, t, shared_, ops));
    ASSET_RETURN_NOT_OK(tm_.Permit(t, m, shared_, ops));
    switch (coupling_) {
      case CommitCoupling::kOrdered:
        // t joined later: it saw m's work, so it must not commit before
        // m terminates.
        ASSET_RETURN_NOT_OK(
            tm_.FormDependency(DependencyType::kCommit, m, t));
        break;
      case CommitCoupling::kAtomic:
        ASSET_RETURN_NOT_OK(
            tm_.FormDependency(DependencyType::kGroupCommit, m, t));
        break;
      case CommitCoupling::kNone:
        break;
    }
  }
  members_.push_back(t);
  return Status::OK();
}

bool CooperativeGroup::CommitAll() {
  bool all = true;
  for (Tid m : members_) all = tm_.Commit(m) && all;
  return all;
}

void CooperativeGroup::AbortAll() {
  for (Tid m : members_) tm_.Abort(m);
}


CooperativeGroup::CooperativeGroup(Database& db, ObjectSet shared,
                                   CommitCoupling coupling)
    : CooperativeGroup(KernelOf(db), std::move(shared), coupling) {}

}  // namespace asset::models
