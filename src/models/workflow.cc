#include "models/workflow.h"

#include "core/database_internal.h"

#include <thread>

namespace asset::models {

Workflow& Workflow::AddStep(Step step) {
  steps_.push_back(std::move(step));
  return *this;
}

Workflow& Workflow::AddRequired(std::string name, Task task,
                                Task compensation) {
  Step s;
  s.name = std::move(name);
  s.alternatives.push_back(std::move(task));
  s.compensation = std::move(compensation);
  s.required = true;
  return AddStep(std::move(s));
}

Workflow& Workflow::AddOptional(std::string name, Task task) {
  Step s;
  s.name = std::move(name);
  s.alternatives.push_back(std::move(task));
  s.required = false;
  return AddStep(std::move(s));
}

int Workflow::RunOrdered(TransactionManager& tm, const Step& step) {
  // The appendix flight cascade: initiate/begin/commit each alternative
  // until one commits.
  for (size_t i = 0; i < step.alternatives.size(); ++i) {
    Tid t = tm.InitiateFn(step.alternatives[i]);
    if (t == kNullTid) continue;
    if (!tm.Begin(t)) continue;
    if (tm.Commit(t)) return static_cast<int>(i);
  }
  return -1;
}

int Workflow::RunRace(TransactionManager& tm, const Step& step) {
  // The appendix car-rental race: begin all alternatives, first to
  // complete its code wins; the rest are aborted.
  std::vector<Tid> tids;
  for (const Task& task : step.alternatives) {
    Tid t = tm.InitiateFn(task);
    if (t != kNullTid) tids.push_back(t);
  }
  for (Tid t : tids) tm.Begin(t);

  int winner = -1;
  std::vector<bool> out(tids.size(), false);
  size_t remaining = tids.size();
  while (remaining > 0 && winner < 0) {
    for (size_t i = 0; i < tids.size(); ++i) {
      if (out[i]) continue;
      TxnStatus s = tm.GetStatus(tids[i]);
      if (s == TxnStatus::kCompleted || s == TxnStatus::kCommitting ||
          s == TxnStatus::kCommitted) {
        winner = static_cast<int>(i);
        break;
      }
      if (s == TxnStatus::kAborted || s == TxnStatus::kAborting) {
        out[i] = true;
        --remaining;
      }
    }
    if (winner < 0 && remaining > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  if (winner < 0) return -1;  // every alternative aborted
  for (size_t i = 0; i < tids.size(); ++i) {
    if (static_cast<int>(i) != winner) tm.Abort(tids[i]);
  }
  if (!tm.Commit(tids[winner])) return -1;
  return winner;
}

int Workflow::RunStep(TransactionManager& tm, const Step& step) {
  return step.mode == Mode::kOrdered ? RunOrdered(tm, step)
                                     : RunRace(tm, step);
}

Workflow::Outcome Workflow::Run(TransactionManager& tm) {
  Outcome outcome;
  std::vector<size_t> committed_required;  // indexes into steps_
  for (size_t i = 0; i < steps_.size(); ++i) {
    const Step& step = steps_[i];
    StepOutcome so;
    so.name = step.name;
    so.winner = RunStep(tm, step);
    so.committed = so.winner >= 0;
    outcome.steps.push_back(so);
    if (so.committed) {
      if (step.required) committed_required.push_back(i);
      continue;
    }
    if (!step.required) continue;  // the car: the trip proceeds anyway
    // A required step failed: compensate the committed required prefix
    // in reverse order, retrying each compensation until it commits.
    outcome.failed_step = step.name;
    for (size_t k = committed_required.size(); k-- > 0;) {
      const Step& done = steps_[committed_required[k]];
      if (!done.compensation) continue;
      for (;;) {
        Tid ct = tm.InitiateFn(done.compensation);
        if (ct != kNullTid && tm.Begin(ct) && tm.Commit(ct)) break;
      }
      outcome.compensations_run++;
    }
    outcome.succeeded = false;
    return outcome;
  }
  outcome.succeeded = true;
  return outcome;
}


Workflow::Outcome Workflow::Run(Database& db) { return Run(KernelOf(db)); }

}  // namespace asset::models
