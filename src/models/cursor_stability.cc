#include "models/cursor_stability.h"

namespace asset::models {

Result<std::vector<uint8_t>> StableCursor::Next() {
  if (Done()) return Status::IllegalState("cursor exhausted");
  ObjectId record = records_[pos_];
  auto value = tm_.Read(reader_, record);
  if (!value.ok()) return value.status();
  // Before moving the cursor: permit(t_i, record, write). No dependency
  // is formed, so the reader and any writer may commit in either order.
  ASSET_RETURN_NOT_OK(
      tm_.PermitAny(reader_, ObjectSet::Of(record), Operation::kWrite));
  ++pos_;
  return value;
}

}  // namespace asset::models
