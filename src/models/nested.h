#ifndef ASSET_MODELS_NESTED_H_
#define ASSET_MODELS_NESTED_H_

/// \file nested.h
/// Nested transactions — the §3.1.4 translation.
///
/// A subtransaction may access whatever its ancestors hold without
/// conflict (permit), aborts without dooming the parent unless the
/// caller asks for that, and on success hands everything it did to the
/// parent (delegate), whose eventual top-level commit makes it durable.
/// The per-subtransaction protocol the paper synthesizes inside `trip`:
///
///     t1 = initiate(child);
///     permit(self(), t1);
///     begin(t1);
///     if (!wait(t1)) abort(self());
///     delegate(t1, self());
///     commit(t1);

#include <functional>

#include "common/status.h"
#include "core/transaction_manager.h"

namespace asset {
class Database;
}

namespace asset::models {

/// What to do with the parent when a subtransaction aborts.
enum class OnChildAbort {
  /// abort(self()) — the paper's trip example: a failed reservation
  /// cancels the whole trip.
  kAbortParent,
  /// Report failure to the caller and keep the parent alive (the general
  /// nested-transaction semantics: subtransactions "can abort without
  /// causing the whole transaction to abort").
  kReportOnly,
};

/// Runs `body` as a subtransaction of the calling transaction. Must be
/// invoked from inside a running transaction's function. Returns OK if
/// the subtransaction completed and its effects were delegated to the
/// parent; kTxnAborted if it aborted (with the parent additionally
/// marked aborting under kAbortParent).
Status RunSubtransaction(TransactionManager& tm, std::function<void()> body,
                         OnChildAbort on_abort = OnChildAbort::kReportOnly);
Status RunSubtransaction(Database& db, std::function<void()> body,
                         OnChildAbort on_abort = OnChildAbort::kReportOnly);

/// Convenience root runner: RunAtomic with a name that reads well at
/// nested call sites.
bool RunNestedRoot(TransactionManager& tm, std::function<void()> body);
bool RunNestedRoot(Database& db, std::function<void()> body);

}  // namespace asset::models

#endif  // ASSET_MODELS_NESTED_H_
