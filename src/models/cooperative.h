#ifndef ASSET_MODELS_COOPERATIVE_H_
#define ASSET_MODELS_COOPERATIVE_H_

/// \file cooperative.h
/// Cooperating transactions — §3.2.1.
///
/// Members of a cooperative group mutually permit conflicting operations
/// on a shared set of (design) objects, so their accesses interleave
/// rather than block — the "ping-ponging of permits". Commit coupling is
/// selectable:
///
///   * kOrdered  — later members carry a CD on earlier members, so they
///                 cannot commit before the earlier work terminates;
///   * kAtomic   — GC dependencies: the whole group commits or none of
///                 it does (the cooperative-design scenario where shared
///                 changes land only if the final state satisfies all
///                 designers);
///   * kNone     — permits only, any commit order (each member fends for
///                 itself).

#include <vector>

#include "common/object_set.h"
#include "common/status.h"
#include "core/transaction_manager.h"

namespace asset {
class Database;
}

namespace asset::models {

/// How cooperative members' commits are tied together.
enum class CommitCoupling {
  kNone,
  kOrdered,
  kAtomic,
};

/// A group of transactions cooperating on a fixed object set.
class CooperativeGroup {
 public:
  CooperativeGroup(TransactionManager& tm, ObjectSet shared,
                   CommitCoupling coupling = CommitCoupling::kOrdered)
      : tm_(tm), shared_(std::move(shared)), coupling_(coupling) {}
  CooperativeGroup(Database& db, ObjectSet shared,
                   CommitCoupling coupling = CommitCoupling::kOrdered);

  /// Adds `t` to the group: mutual permits with every existing member on
  /// the shared objects, plus the coupling dependencies. `ops` bounds
  /// what the others may do to this member's locked objects.
  Status Enroll(Tid t, OpSet ops = OpSet::All());

  /// Commits every member, in enrollment order. True iff all committed.
  bool CommitAll();

  /// Aborts every member (first abort propagates under kAtomic).
  void AbortAll();

  const std::vector<Tid>& members() const { return members_; }

 private:
  TransactionManager& tm_;
  ObjectSet shared_;
  CommitCoupling coupling_;
  std::vector<Tid> members_;
};

}  // namespace asset::models

#endif  // ASSET_MODELS_COOPERATIVE_H_
