#include "models/contingent.h"

namespace asset::models {

ContingentTransaction& ContingentTransaction::AddAlternative(
    std::function<void()> body) {
  alternatives_.push_back(std::move(body));
  return *this;
}

int ContingentTransaction::Run(TransactionManager& tm) {
  // t1 = initiate(f1); begin(t1); if (commit(t1)); else { t2 = ... }
  for (size_t i = 0; i < alternatives_.size(); ++i) {
    Tid t = tm.InitiateFn(alternatives_[i]);
    if (t == kNullTid) continue;
    if (!tm.Begin(t)) continue;
    if (tm.Commit(t)) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace asset::models
