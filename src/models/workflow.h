#ifndef ASSET_MODELS_WORKFLOW_H_
#define ASSET_MODELS_WORKFLOW_H_

/// \file workflow.h
/// Workflows — §3.2.3 and the appendix program.
///
/// A workflow is a sequence of steps, each a small contingent
/// transaction: ordered alternatives tried until one commits (Delta,
/// then United, then American), or raced in parallel with the first
/// completion winning (National vs Avis). Steps may carry a
/// compensation; when a *required* step fails, the committed required
/// prefix is compensated in reverse order, each compensation retried
/// until it commits (cancel_flight_reservation). Optional steps may fail
/// without dooming the workflow (the rental car: "X can take public
/// transportation").
///
/// This class is the reusable engine; examples/travel_workflow.cc
/// instantiates the paper's X_conference program with it, and the paper
/// notes such code is what a workflow-language compiler would emit.

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "core/transaction_manager.h"

namespace asset {
class Database;
}

namespace asset::models {

/// Builder and runner for one workflow activity.
class Workflow {
 public:
  using Task = std::function<void()>;

  /// How a step's alternatives are attempted.
  enum class Mode {
    /// Try alternatives in preference order; first commit wins (§3.1.3
    /// contingent semantics — the flight reservations).
    kOrdered,
    /// Begin all alternatives concurrently; the first to complete its
    /// code wins, the others are aborted (the car-rental race).
    kRace,
  };

  struct Step {
    std::string name;
    std::vector<Task> alternatives;
    /// Run to semantically undo this step if a later required step
    /// fails. May be null (then the step cannot be undone).
    Task compensation;
    /// Required steps abort the workflow on failure (flight, hotel);
    /// optional ones do not (car).
    bool required = true;
    Mode mode = Mode::kOrdered;
  };

  Workflow& AddStep(Step step);

  /// Shorthands.
  Workflow& AddRequired(std::string name, Task task,
                        Task compensation = nullptr);
  Workflow& AddOptional(std::string name, Task task);

  struct StepOutcome {
    std::string name;
    /// Index of the committed alternative, -1 if the step failed.
    int winner = -1;
    bool committed = false;
  };

  struct Outcome {
    /// True iff every required step committed.
    bool succeeded = false;
    std::vector<StepOutcome> steps;
    /// Compensations executed (each retried until committed).
    size_t compensations_run = 0;
    /// Name of the required step that failed, empty on success.
    std::string failed_step;
  };

  Outcome Run(TransactionManager& tm);
  Outcome Run(Database& db);

  size_t size() const { return steps_.size(); }

 private:
  /// Runs one step; returns the winning alternative index or -1.
  int RunStep(TransactionManager& tm, const Step& step);
  int RunOrdered(TransactionManager& tm, const Step& step);
  int RunRace(TransactionManager& tm, const Step& step);

  std::vector<Step> steps_;
};

}  // namespace asset::models

#endif  // ASSET_MODELS_WORKFLOW_H_
