#ifndef ASSET_STORAGE_IO_UTIL_H_
#define ASSET_STORAGE_IO_UTIL_H_

/// \file io_util.h
/// Full-transfer pread/pwrite/fsync wrappers.
///
/// POSIX allows any read/write to be interrupted by a signal (EINTR) or
/// to transfer fewer bytes than asked — neither is an error, but naive
/// single-shot callers turn both into spurious I/O failures. Every
/// storage-layer file touch (WAL and page file alike) goes through
/// these wrappers so the retry discipline lives in one place.
///
/// The syscall itself is injectable so fault tests can serve EINTR and
/// short transfers deterministically without a real signal storm.

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace asset {

/// Signature-compatible stand-ins for ::pread / ::pwrite.
using PreadFn = std::function<ssize_t(int, void*, size_t, off_t)>;
using PwriteFn = std::function<ssize_t(int, const void*, size_t, off_t)>;

/// Reads exactly `len` bytes at `offset`, retrying EINTR and short
/// reads. IOError (naming `what`) on a real failure or if end-of-file
/// arrives before `len` bytes. `fn` defaults to ::pread.
Status PreadFully(int fd, void* buf, size_t len, off_t offset,
                  const std::string& what, const PreadFn& fn = nullptr);

/// Writes exactly `len` bytes at `offset`, retrying EINTR and short
/// writes. IOError (naming `what`) on a real failure or a persistent
/// zero-byte write. `fn` defaults to ::pwrite.
Status PwriteFully(int fd, const void* buf, size_t len, off_t offset,
                   const std::string& what, const PwriteFn& fn = nullptr);

/// fsync retrying EINTR.
Status FsyncRetry(int fd);

}  // namespace asset

#endif  // ASSET_STORAGE_IO_UTIL_H_
