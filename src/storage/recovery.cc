#include "storage/recovery.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace asset {

namespace {

bool IsDataOp(LogRecordType t) {
  return t == LogRecordType::kCreate || t == LogRecordType::kUpdate ||
         t == LogRecordType::kDelete || t == LogRecordType::kIncrement;
}

bool IsClr(LogRecordType t) {
  return t == LogRecordType::kClrPut || t == LogRecordType::kClrDelete;
}

}  // namespace

Result<RecoveryManager::Report> RecoveryManager::Recover(LogManager* log,
                                                         ObjectStore* store) {
  Report report;
  std::vector<LogRecord> records = log->ReadDurable();

  // Find the last durable checkpoint. A quiescent checkpoint promises
  // "everything before me is on disk": analysis and redo both start
  // after it. A fuzzy checkpoint only cuts the *analysis* at its
  // begin_lsn — its image seeds what the skipped scan would have found —
  // while redo must start at its min_recovery_lsn, the oldest update
  // that might live only in a cached page.
  Lsn analysis_start = 0;  // analysis scans records with lsn > this
  Lsn redo_start = 1;      // redo applies records with lsn >= this
  FuzzyCheckpointImage image;
  bool have_image = false;
  for (const LogRecord& rec : records) {
    if (rec.type == LogRecordType::kCheckpoint) {
      analysis_start = rec.lsn;
      redo_start = rec.lsn + 1;
      have_image = false;
    } else if (rec.type == LogRecordType::kFuzzyCheckpoint) {
      auto img = FuzzyCheckpointImage::Decode(rec.after);
      if (!img.ok()) return img.status();
      image = std::move(img).value();
      have_image = true;
      analysis_start = image.begin_lsn;
      redo_start =
          (image.min_recovery_lsn == kNullLsn) ? 1 : image.min_recovery_lsn;
    }
  }
  report.analysis_start_lsn = analysis_start;
  report.redo_start_lsn = redo_start;

  // Records by lsn, for undo and delegate-set replay. After truncation
  // the log no longer starts at lsn 1; every lsn recovery can need
  // (>= redo_start, by the truncation safety rule) is still present.
  std::unordered_map<Lsn, const LogRecord*> by_lsn;
  by_lsn.reserve(records.size());
  for (const LogRecord& rec : records) by_lsn[rec.lsn] = &rec;

  // --- Analysis ---------------------------------------------------------
  // Final responsibility for each data operation, after replaying
  // delegation; and terminal status of each transaction.
  std::unordered_map<Lsn, Tid> responsible;        // data-op lsn -> tid
  std::unordered_set<Lsn> compensated;             // data-op lsns undone by CLRs
  std::unordered_set<Tid> committed, aborted, seen;

  // Seed from the fuzzy checkpoint's active-transaction table: these
  // transactions and operations predate the cut, so the scan below
  // never sees them.
  if (have_image) {
    for (const FuzzyCheckpointImage::TxnEntry& e : image.active) {
      seen.insert(e.tid);
      for (Lsn l : e.ops) responsible[l] = e.tid;
    }
  }

  for (const LogRecord& rec : records) {
    if (rec.lsn <= analysis_start) continue;
    report.records_scanned++;
    switch (rec.type) {
      case LogRecordType::kBegin:
        seen.insert(rec.tid);
        break;
      case LogRecordType::kCreate:
      case LogRecordType::kUpdate:
      case LogRecordType::kDelete:
        seen.insert(rec.tid);
        responsible[rec.lsn] = rec.tid;
        break;
      case LogRecordType::kIncrement:
        if (rec.undo_of != kNullLsn) {
          // Compensation of an earlier increment: redo-only.
          compensated.insert(rec.undo_of);
        } else {
          seen.insert(rec.tid);
          responsible[rec.lsn] = rec.tid;
        }
        break;
      case LogRecordType::kCommit:
        committed.insert(rec.tid);
        break;
      case LogRecordType::kAbort:
        aborted.insert(rec.tid);
        break;
      case LogRecordType::kDelegateAll:
        for (auto& [lsn, tid] : responsible) {
          if (tid == rec.tid) tid = rec.other_tid;
        }
        seen.insert(rec.other_tid);
        break;
      case LogRecordType::kDelegateSet: {
        std::unordered_set<ObjectId> set(rec.oid_set.begin(),
                                         rec.oid_set.end());
        for (auto& [lsn, tid] : responsible) {
          if (tid != rec.tid) continue;
          auto op = by_lsn.find(lsn);
          if (op == by_lsn.end()) {
            return Status::Corruption(
                "delegated operation at lsn " + std::to_string(lsn) +
                " is missing from the log (unsafe truncation?)");
          }
          if (set.count(op->second->oid) != 0) {
            tid = rec.other_tid;
          }
        }
        seen.insert(rec.other_tid);
        break;
      }
      case LogRecordType::kClrPut:
      case LogRecordType::kClrDelete:
        if (rec.undo_of != kNullLsn) compensated.insert(rec.undo_of);
        break;
      case LogRecordType::kCheckpoint:
      case LogRecordType::kFuzzyCheckpoint:
        break;
    }
  }

  // --- Redo: repeat history ---------------------------------------------
  // From redo_start, not the analysis cut: under a fuzzy checkpoint,
  // updates in [min_recovery_lsn, begin_lsn] may live only in cached
  // pages that were never written back. Appliers are idempotent (full
  // after-images; delta applies conditional on the counter's
  // applied-lsn), so re-applying already-flushed effects is harmless.
  for (const LogRecord& rec : records) {
    if (rec.lsn < redo_start) continue;
    switch (rec.type) {
      case LogRecordType::kCreate:
      case LogRecordType::kUpdate:
        ASSET_RETURN_NOT_OK(store->ApplyPut(rec.oid, rec.after));
        report.redo_applied++;
        break;
      case LogRecordType::kDelete:
        ASSET_RETURN_NOT_OK(store->ApplyDelete(rec.oid));
        report.redo_applied++;
        break;
      case LogRecordType::kClrPut:
        ASSET_RETURN_NOT_OK(store->ApplyPut(rec.oid, rec.after));
        report.redo_applied++;
        break;
      case LogRecordType::kClrDelete:
        ASSET_RETURN_NOT_OK(store->ApplyDelete(rec.oid));
        report.redo_applied++;
        break;
      case LogRecordType::kIncrement: {
        auto delta = DecodeI64(rec.after);
        if (!delta.ok()) return delta.status();
        // Conditional on the counter's applied-lsn: already-applied
        // deltas (flushed before the crash) are skipped.
        auto applied = store->ApplyDelta(rec.oid, rec.lsn, *delta);
        if (!applied.ok() && !applied.status().IsNotFound()) {
          return applied.status();
        }
        report.redo_applied++;
        break;
      }
      default:
        break;
    }
  }

  // --- Undo losers -------------------------------------------------------
  // A loser is a transaction that owns at least one data op but has
  // neither committed nor been fully aborted (abort record present means
  // its CLRs are already in the log and were redone above).
  std::unordered_set<Tid> losers;
  for (const auto& [lsn, tid] : responsible) {
    if (committed.count(tid) == 0 && aborted.count(tid) == 0) {
      losers.insert(tid);
    }
  }
  // Also count began-but-write-free in-flight transactions as losers for
  // reporting (nothing to undo).
  for (Tid t : seen) {
    if (committed.count(t) == 0 && aborted.count(t) == 0) losers.insert(t);
  }

  // Walk the responsibility map (not the post-cut records): a loser in
  // the fuzzy checkpoint's ATT owns operations from before the analysis
  // cut, whose records are still retained (>= min_recovery_lsn).
  std::vector<const LogRecord*> to_undo;
  for (const auto& [lsn, tid] : responsible) {
    if (losers.count(tid) == 0) continue;
    if (compensated.count(lsn) != 0) continue;  // already undone
    auto it = by_lsn.find(lsn);
    if (it == by_lsn.end()) {
      return Status::Corruption(
          "loser operation at lsn " + std::to_string(lsn) +
          " is missing from the log (unsafe truncation?)");
    }
    if (!IsDataOp(it->second->type)) continue;
    to_undo.push_back(it->second);
  }
  std::sort(to_undo.begin(), to_undo.end(),
            [](const LogRecord* a, const LogRecord* b) {
              return a->lsn > b->lsn;  // reverse order
            });

  for (const LogRecord* rec : to_undo) {
    LogRecord clr;
    clr.tid = responsible[rec->lsn];
    clr.oid = rec->oid;
    clr.undo_of = rec->lsn;
    switch (rec->type) {
      case LogRecordType::kCreate:
        ASSET_RETURN_NOT_OK(store->ApplyDelete(rec->oid));
        clr.type = LogRecordType::kClrDelete;
        log->Append(std::move(clr));
        break;
      case LogRecordType::kUpdate:
      case LogRecordType::kDelete:
        ASSET_RETURN_NOT_OK(store->ApplyPut(rec->oid, rec->before));
        clr.type = LogRecordType::kClrPut;
        clr.after = rec->before;
        log->Append(std::move(clr));
        break;
      case LogRecordType::kIncrement: {
        auto delta = DecodeI64(rec->after);
        if (!delta.ok()) return delta.status();
        clr.type = LogRecordType::kIncrement;
        clr.after = EncodeI64(-*delta);
        Lsn clr_lsn = log->Append(std::move(clr));
        auto applied = store->ApplyDelta(rec->oid, clr_lsn, -*delta);
        if (!applied.ok() && !applied.status().IsNotFound()) {
          return applied.status();
        }
        break;
      }
      default:
        continue;
    }
    report.undo_applied++;
  }
  for (Tid t : losers) {
    LogRecord abort_rec;
    abort_rec.type = LogRecordType::kAbort;
    abort_rec.tid = t;
    log->Append(std::move(abort_rec));
  }
  ASSET_RETURN_NOT_OK(log->Flush());

  report.winners.assign(committed.begin(), committed.end());
  report.losers.assign(losers.begin(), losers.end());
  std::sort(report.winners.begin(), report.winners.end());
  std::sort(report.losers.begin(), report.losers.end());
  return report;
}

Status RecoveryManager::Checkpoint(LogManager* log, BufferPool* pool) {
  ASSET_RETURN_NOT_OK(pool->FlushAll());
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  Lsn lsn = log->Append(std::move(rec));
  // Force exactly through the checkpoint record; any volatile tail
  // appended by concurrent transactions stays volatile.
  return log->Flush(lsn);
}

Result<Lsn> RecoveryManager::FuzzyCheckpoint(
    LogManager* log, BufferPool* pool, const AttSnapshot& att,
    std::chrono::milliseconds drain_timeout) {
  // 1. Push unpinned dirty pages out. Pages skipped (pinned, or
  //    re-dirtied past the batch's forced watermark) stay dirty and are
  //    covered by the DPT instead — nothing blocks on them.
  ASSET_RETURN_NOT_OK(pool->FlushUnpinned());

  // 2. Cut the log. Everything at or below `begin` must be covered by
  //    either the ATT (uncommitted) or the DPT/disk (applied effects);
  //    everything above is scanned by analysis.
  const Lsn begin = log->last_lsn();

  // 3. Drain in-flight applies at or below the cut: an operation whose
  //    record is appended but whose store mutation / kernel
  //    registration has not finished would otherwise be invisible to
  //    both the ATT snapshot and the DPT.
  ASSET_RETURN_NOT_OK(log->WaitAppliedThrough(begin, drain_timeout));

  // 4. Snapshot. ATT first (under the kernel's mutex, atomic wrt
  //    commit/abort/delegate), then the DPT.
  FuzzyCheckpointImage image;
  image.begin_lsn = begin;
  if (att) image.active = att();
  image.dirty_pages = pool->DirtyPageTable();

  // 5. The redo/truncation watermark: nothing recovery can need is
  //    older than the oldest uncommitted operation or the oldest
  //    unflushed page update.
  Lsn min_recovery = begin + 1;
  for (const FuzzyCheckpointImage::TxnEntry& e : image.active) {
    for (Lsn l : e.ops) min_recovery = std::min(min_recovery, l);
  }
  for (const auto& [page, rec_lsn] : image.dirty_pages) {
    min_recovery =
        std::min(min_recovery, rec_lsn == kNullLsn ? Lsn{1} : rec_lsn);
  }
  image.min_recovery_lsn = min_recovery;

  LogRecord rec;
  rec.type = LogRecordType::kFuzzyCheckpoint;
  rec.after = image.Encode();
  Lsn lsn = log->Append(std::move(rec));
  ASSET_RETURN_NOT_OK(log->Flush(lsn));
  return lsn;
}

}  // namespace asset
