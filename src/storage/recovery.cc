#include "storage/recovery.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace asset {

namespace {

bool IsDataOp(LogRecordType t) {
  return t == LogRecordType::kCreate || t == LogRecordType::kUpdate ||
         t == LogRecordType::kDelete || t == LogRecordType::kIncrement;
}

bool IsClr(LogRecordType t) {
  return t == LogRecordType::kClrPut || t == LogRecordType::kClrDelete;
}

}  // namespace

Result<RecoveryManager::Report> RecoveryManager::Recover(LogManager* log,
                                                         ObjectStore* store) {
  Report report;
  std::vector<LogRecord> records = log->ReadDurable();
  const Lsn start = log->last_checkpoint_lsn();  // records after this matter

  // --- Analysis ---------------------------------------------------------
  // Final responsibility for each data operation, after replaying
  // delegation; and terminal status of each transaction.
  std::unordered_map<Lsn, Tid> responsible;        // data-op lsn -> tid
  std::unordered_set<Lsn> compensated;             // data-op lsns undone by CLRs
  std::unordered_set<Tid> committed, aborted, seen;

  for (const LogRecord& rec : records) {
    if (rec.lsn <= start) continue;
    report.records_scanned++;
    switch (rec.type) {
      case LogRecordType::kBegin:
        seen.insert(rec.tid);
        break;
      case LogRecordType::kCreate:
      case LogRecordType::kUpdate:
      case LogRecordType::kDelete:
        seen.insert(rec.tid);
        responsible[rec.lsn] = rec.tid;
        break;
      case LogRecordType::kIncrement:
        if (rec.undo_of != kNullLsn) {
          // Compensation of an earlier increment: redo-only.
          compensated.insert(rec.undo_of);
        } else {
          seen.insert(rec.tid);
          responsible[rec.lsn] = rec.tid;
        }
        break;
      case LogRecordType::kCommit:
        committed.insert(rec.tid);
        break;
      case LogRecordType::kAbort:
        aborted.insert(rec.tid);
        break;
      case LogRecordType::kDelegateAll:
        for (auto& [lsn, tid] : responsible) {
          if (tid == rec.tid) tid = rec.other_tid;
        }
        seen.insert(rec.other_tid);
        break;
      case LogRecordType::kDelegateSet: {
        std::unordered_set<ObjectId> set(rec.oid_set.begin(),
                                         rec.oid_set.end());
        for (auto& [lsn, tid] : responsible) {
          if (tid == rec.tid && set.count(log->At(lsn).oid) != 0) {
            tid = rec.other_tid;
          }
        }
        seen.insert(rec.other_tid);
        break;
      }
      case LogRecordType::kClrPut:
      case LogRecordType::kClrDelete:
        if (rec.undo_of != kNullLsn) compensated.insert(rec.undo_of);
        break;
      case LogRecordType::kCheckpoint:
        break;
    }
  }

  // --- Redo: repeat history ---------------------------------------------
  for (const LogRecord& rec : records) {
    if (rec.lsn <= start) continue;
    switch (rec.type) {
      case LogRecordType::kCreate:
      case LogRecordType::kUpdate:
        ASSET_RETURN_NOT_OK(store->ApplyPut(rec.oid, rec.after));
        report.redo_applied++;
        break;
      case LogRecordType::kDelete:
        ASSET_RETURN_NOT_OK(store->ApplyDelete(rec.oid));
        report.redo_applied++;
        break;
      case LogRecordType::kClrPut:
        ASSET_RETURN_NOT_OK(store->ApplyPut(rec.oid, rec.after));
        report.redo_applied++;
        break;
      case LogRecordType::kClrDelete:
        ASSET_RETURN_NOT_OK(store->ApplyDelete(rec.oid));
        report.redo_applied++;
        break;
      case LogRecordType::kIncrement: {
        auto delta = DecodeI64(rec.after);
        if (!delta.ok()) return delta.status();
        // Conditional on the counter's applied-lsn: already-applied
        // deltas (flushed before the crash) are skipped.
        auto applied = store->ApplyDelta(rec.oid, rec.lsn, *delta);
        if (!applied.ok() && !applied.status().IsNotFound()) {
          return applied.status();
        }
        report.redo_applied++;
        break;
      }
      default:
        break;
    }
  }

  // --- Undo losers -------------------------------------------------------
  // A loser is a transaction that owns at least one data op but has
  // neither committed nor been fully aborted (abort record present means
  // its CLRs are already in the log and were redone above).
  std::unordered_set<Tid> losers;
  for (const auto& [lsn, tid] : responsible) {
    if (committed.count(tid) == 0 && aborted.count(tid) == 0) {
      losers.insert(tid);
    }
  }
  // Also count began-but-write-free in-flight transactions as losers for
  // reporting (nothing to undo).
  for (Tid t : seen) {
    if (committed.count(t) == 0 && aborted.count(t) == 0) losers.insert(t);
  }

  std::vector<const LogRecord*> to_undo;
  for (const LogRecord& rec : records) {
    if (rec.lsn <= start || !IsDataOp(rec.type)) continue;
    auto it = responsible.find(rec.lsn);
    if (it == responsible.end()) continue;
    if (losers.count(it->second) == 0) continue;
    if (compensated.count(rec.lsn) != 0) continue;  // already undone
    to_undo.push_back(&rec);
  }
  std::sort(to_undo.begin(), to_undo.end(),
            [](const LogRecord* a, const LogRecord* b) {
              return a->lsn > b->lsn;  // reverse order
            });

  for (const LogRecord* rec : to_undo) {
    LogRecord clr;
    clr.tid = responsible[rec->lsn];
    clr.oid = rec->oid;
    clr.undo_of = rec->lsn;
    switch (rec->type) {
      case LogRecordType::kCreate:
        ASSET_RETURN_NOT_OK(store->ApplyDelete(rec->oid));
        clr.type = LogRecordType::kClrDelete;
        log->Append(std::move(clr));
        break;
      case LogRecordType::kUpdate:
      case LogRecordType::kDelete:
        ASSET_RETURN_NOT_OK(store->ApplyPut(rec->oid, rec->before));
        clr.type = LogRecordType::kClrPut;
        clr.after = rec->before;
        log->Append(std::move(clr));
        break;
      case LogRecordType::kIncrement: {
        auto delta = DecodeI64(rec->after);
        if (!delta.ok()) return delta.status();
        clr.type = LogRecordType::kIncrement;
        clr.after = EncodeI64(-*delta);
        Lsn clr_lsn = log->Append(std::move(clr));
        auto applied = store->ApplyDelta(rec->oid, clr_lsn, -*delta);
        if (!applied.ok() && !applied.status().IsNotFound()) {
          return applied.status();
        }
        break;
      }
      default:
        continue;
    }
    report.undo_applied++;
  }
  for (Tid t : losers) {
    LogRecord abort_rec;
    abort_rec.type = LogRecordType::kAbort;
    abort_rec.tid = t;
    log->Append(std::move(abort_rec));
  }
  ASSET_RETURN_NOT_OK(log->Flush());

  report.winners.assign(committed.begin(), committed.end());
  report.losers.assign(losers.begin(), losers.end());
  std::sort(report.winners.begin(), report.winners.end());
  std::sort(report.losers.begin(), report.losers.end());
  return report;
}

Status RecoveryManager::Checkpoint(LogManager* log, BufferPool* pool) {
  ASSET_RETURN_NOT_OK(pool->FlushAll());
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  Lsn lsn = log->Append(std::move(rec));
  // Force exactly through the checkpoint record; any volatile tail
  // appended by concurrent transactions stays volatile.
  return log->Flush(lsn);
}

}  // namespace asset
