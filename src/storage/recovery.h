#ifndef ASSET_STORAGE_RECOVERY_H_
#define ASSET_STORAGE_RECOVERY_H_

/// \file recovery.h
/// Crash recovery from the write-ahead log.
///
/// The scheme is ARIES-flavored but value-logged:
///
///   1. *Analysis* — scan the durable log from the last checkpoint,
///      replaying delegation records so every create/update/delete ends
///      up attributed to the transaction that was *responsible* for it at
///      the end (the paper's delegation semantics, §2.2: delegated
///      operations commit iff the delegatee commits). Transactions with a
///      commit record are winners; transactions with an abort record were
///      already compensated by CLRs; everything else is a loser.
///   2. *Redo* — repeat history: apply every create/update/delete/CLR
///      forward, idempotently.
///   3. *Undo* — for each loser, install before images of its
///      uncompensated operations in reverse lsn order, appending CLRs and
///      a final abort record so that recovery is idempotent and can
///      itself crash safely.
///
/// Checkpoints come in two flavors. Checkpoint() is the legacy
/// *quiescent* form: called with no transaction active, after which
/// recovery never needs state from before the checkpoint record.
/// FuzzyCheckpoint() is the online form: it flushes unpinned dirty
/// pages, then captures the active-transaction table and the dirty-page
/// table into a kFuzzyCheckpoint record while transactions keep
/// running. Recovery seeds its analysis from the image and starts its
/// redo at the image's min_recovery_lsn; the log prefix below
/// min_recovery_lsn is provably redundant and may be truncated.

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/object_store.h"
#include "storage/wal.h"

namespace asset {

/// Runs recovery and (quiescent) checkpoints.
class RecoveryManager {
 public:
  /// What recovery did, for observability and tests.
  struct Report {
    size_t records_scanned = 0;
    size_t redo_applied = 0;
    size_t undo_applied = 0;
    /// Analysis scanned records with lsn > this (the last durable
    /// checkpoint's cut point; 0 = log origin).
    Lsn analysis_start_lsn = 0;
    /// Redo applied records with lsn >= this (the last durable
    /// checkpoint's min_recovery_lsn; 1 = log origin).
    Lsn redo_start_lsn = 1;
    std::vector<Tid> winners;
    std::vector<Tid> losers;  // in-flight at crash, rolled back here
  };

  /// Rebuilds `store` to the committed state implied by `log`'s durable
  /// records. The store must be Open()ed. Appends CLR/abort records for
  /// losers and flushes the log.
  static Result<Report> Recover(LogManager* log, ObjectStore* store);

  /// Quiescent checkpoint: flushes every dirty page, appends a checkpoint
  /// record, and flushes the log. The caller must guarantee no
  /// transaction is active.
  static Status Checkpoint(LogManager* log, BufferPool* pool);

  /// Produces the active-transaction table for a fuzzy checkpoint: every
  /// begun, unterminated transaction with the lsns of the data
  /// operations it is currently responsible for. A std::function (not a
  /// TransactionManager*) so the storage layer stays independent of the
  /// kernel's headers; null means "no transactions" (storage-only use).
  using AttSnapshot = std::function<std::vector<FuzzyCheckpointImage::TxnEntry>()>;

  /// Online (fuzzy) checkpoint; never blocks user traffic. Protocol:
  /// write back unpinned dirty pages (one WAL force, short per-page
  /// lock holds), cut the log at B = last_lsn(), wait up to
  /// `drain_timeout` for in-flight applies at or below B to land, then
  /// snapshot the ATT and DPT, derive min_recovery_lsn = min(B + 1,
  /// every ATT op lsn, every DPT recovery lsn), and append + flush the
  /// kFuzzyCheckpoint record. Returns the record's lsn.
  static Result<Lsn> FuzzyCheckpoint(
      LogManager* log, BufferPool* pool, const AttSnapshot& att,
      std::chrono::milliseconds drain_timeout = std::chrono::milliseconds(30000));
};

}  // namespace asset

#endif  // ASSET_STORAGE_RECOVERY_H_
