#ifndef ASSET_STORAGE_RECOVERY_H_
#define ASSET_STORAGE_RECOVERY_H_

/// \file recovery.h
/// Crash recovery from the write-ahead log.
///
/// The scheme is ARIES-flavored but value-logged:
///
///   1. *Analysis* — scan the durable log from the last checkpoint,
///      replaying delegation records so every create/update/delete ends
///      up attributed to the transaction that was *responsible* for it at
///      the end (the paper's delegation semantics, §2.2: delegated
///      operations commit iff the delegatee commits). Transactions with a
///      commit record are winners; transactions with an abort record were
///      already compensated by CLRs; everything else is a loser.
///   2. *Redo* — repeat history: apply every create/update/delete/CLR
///      forward, idempotently.
///   3. *Undo* — for each loser, install before images of its
///      uncompensated operations in reverse lsn order, appending CLRs and
///      a final abort record so that recovery is idempotent and can
///      itself crash safely.
///
/// Checkpoints are *quiescent*: Checkpoint() must be called with no
/// transaction active. Recovery then never needs state from before the
/// checkpoint record.

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/object_store.h"
#include "storage/wal.h"

namespace asset {

/// Runs recovery and (quiescent) checkpoints.
class RecoveryManager {
 public:
  /// What recovery did, for observability and tests.
  struct Report {
    size_t records_scanned = 0;
    size_t redo_applied = 0;
    size_t undo_applied = 0;
    std::vector<Tid> winners;
    std::vector<Tid> losers;  // in-flight at crash, rolled back here
  };

  /// Rebuilds `store` to the committed state implied by `log`'s durable
  /// records. The store must be Open()ed. Appends CLR/abort records for
  /// losers and flushes the log.
  static Result<Report> Recover(LogManager* log, ObjectStore* store);

  /// Quiescent checkpoint: flushes every dirty page, appends a checkpoint
  /// record, and flushes the log. The caller must guarantee no
  /// transaction is active.
  static Status Checkpoint(LogManager* log, BufferPool* pool);
};

}  // namespace asset

#endif  // ASSET_STORAGE_RECOVERY_H_
