#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstring>

namespace asset {

namespace {

uint32_t Fnv1a(const uint8_t* data, size_t len) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutBytes(std::vector<uint8_t>* out, const std::vector<uint8_t>& b) {
  PutU32(out, static_cast<uint32_t>(b.size()));
  out->insert(out->end(), b.begin(), b.end());
}

bool GetU32(const std::vector<uint8_t>& in, size_t* off, uint32_t* v) {
  if (*off + 4 > in.size()) return false;
  *v = static_cast<uint32_t>(in[*off]) |
       (static_cast<uint32_t>(in[*off + 1]) << 8) |
       (static_cast<uint32_t>(in[*off + 2]) << 16) |
       (static_cast<uint32_t>(in[*off + 3]) << 24);
  *off += 4;
  return true;
}

bool GetU64(const std::vector<uint8_t>& in, size_t* off, uint64_t* v) {
  uint32_t lo, hi;
  if (!GetU32(in, off, &lo) || !GetU32(in, off, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool GetBytes(const std::vector<uint8_t>& in, size_t* off,
              std::vector<uint8_t>* b) {
  uint32_t len;
  if (!GetU32(in, off, &len)) return false;
  if (*off + len > in.size()) return false;
  b->assign(in.begin() + *off, in.begin() + *off + len);
  *off += len;
  return true;
}

}  // namespace

std::vector<uint8_t> EncodeI64(int64_t v) {
  std::vector<uint8_t> out(sizeof(int64_t));
  std::memcpy(out.data(), &v, sizeof(int64_t));
  return out;
}

Result<int64_t> DecodeI64(const std::vector<uint8_t>& bytes) {
  if (bytes.size() != sizeof(int64_t)) {
    return Status::Corruption("i64 payload size mismatch");
  }
  int64_t v;
  std::memcpy(&v, bytes.data(), sizeof(int64_t));
  return v;
}

void LogRecord::EncodeTo(std::vector<uint8_t>* out) const {
  std::vector<uint8_t> body;
  body.push_back(static_cast<uint8_t>(type));
  PutU64(&body, lsn);
  PutU64(&body, tid);
  PutU64(&body, other_tid);
  PutU64(&body, oid);
  PutU64(&body, undo_of);
  PutBytes(&body, before);
  PutBytes(&body, after);
  PutU32(&body, static_cast<uint32_t>(oid_set.size()));
  for (ObjectId id : oid_set) PutU64(&body, id);

  PutU32(out, static_cast<uint32_t>(body.size()));
  PutU32(out, Fnv1a(body.data(), body.size()));
  out->insert(out->end(), body.begin(), body.end());
}

Result<LogRecord> LogRecord::DecodeFrom(const std::vector<uint8_t>& data,
                                        size_t* offset) {
  if (*offset == data.size()) {
    return Status::NotFound("end of log");
  }
  size_t off = *offset;
  uint32_t len, crc;
  if (!GetU32(data, &off, &len) || !GetU32(data, &off, &crc) ||
      off + len > data.size()) {
    return Status::Corruption("torn log record frame");
  }
  if (Fnv1a(data.data() + off, len) != crc) {
    return Status::Corruption("log record checksum mismatch");
  }
  size_t body_end = off + len;
  LogRecord rec;
  uint8_t type_byte = data[off++];
  if (type_byte < static_cast<uint8_t>(LogRecordType::kBegin) ||
      type_byte > static_cast<uint8_t>(LogRecordType::kIncrement)) {
    return Status::Corruption("unknown log record type");
  }
  rec.type = static_cast<LogRecordType>(type_byte);
  uint32_t nset = 0;
  if (!GetU64(data, &off, &rec.lsn) || !GetU64(data, &off, &rec.tid) ||
      !GetU64(data, &off, &rec.other_tid) || !GetU64(data, &off, &rec.oid) ||
      !GetU64(data, &off, &rec.undo_of) ||
      !GetBytes(data, &off, &rec.before) ||
      !GetBytes(data, &off, &rec.after) || !GetU32(data, &off, &nset)) {
    return Status::Corruption("truncated log record body");
  }
  rec.oid_set.resize(nset);
  for (uint32_t i = 0; i < nset; ++i) {
    if (!GetU64(data, &off, &rec.oid_set[i])) {
      return Status::Corruption("truncated delegate set");
    }
  }
  if (off != body_end) {
    return Status::Corruption("log record body length mismatch");
  }
  *offset = body_end;
  return rec;
}

LogManager::~LogManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogManager::AttachFile(const std::string& path) {
  std::lock_guard<std::mutex> g(mu_);
  if (!records_.empty()) {
    return Status::IllegalState("AttachFile must precede any Append");
  }
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    return Status::IOError("lseek: " + std::string(std::strerror(errno)));
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0) {
    ssize_t n = ::pread(fd_, bytes.data(), bytes.size(), 0);
    if (n != size) {
      return Status::IOError("short read of log file");
    }
  }
  size_t off = 0;
  size_t good_end = 0;
  for (;;) {
    auto rec = LogRecord::DecodeFrom(bytes, &off);
    if (!rec.ok()) {
      // Clean end or a torn tail from a crash mid-append: both end the
      // durable prefix. Truncate the file to the last whole record.
      break;
    }
    records_.push_back(std::move(rec).value());
    good_end = off;
  }
  if (good_end != bytes.size()) {
    if (::ftruncate(fd_, static_cast<off_t>(good_end)) != 0) {
      return Status::IOError("ftruncate: " +
                             std::string(std::strerror(errno)));
    }
  }
  durable_lsn_ = static_cast<Lsn>(records_.size());
  for (Lsn l = 1; l <= durable_lsn_; ++l) {
    if (records_[l - 1].type == LogRecordType::kCheckpoint) {
      last_checkpoint_ = l;
    }
  }
  return Status::OK();
}

Lsn LogManager::Append(LogRecord rec) {
  std::lock_guard<std::mutex> g(mu_);
  rec.lsn = static_cast<Lsn>(records_.size() + 1);
  Lsn lsn = rec.lsn;
  records_.push_back(std::move(rec));
  return lsn;
}

Status LogManager::Flush(Lsn upto) {
  std::lock_guard<std::mutex> g(mu_);
  Lsn target = (upto == kNullLsn) ? static_cast<Lsn>(records_.size()) : upto;
  if (target > records_.size()) {
    return Status::InvalidArgument("flush beyond end of log");
  }
  if (target > durable_lsn_) {
    if (fd_ >= 0) {
      // Persist the newly durable records before acknowledging them.
      std::vector<uint8_t> bytes;
      for (Lsn l = durable_lsn_ + 1; l <= target; ++l) {
        records_[l - 1].EncodeTo(&bytes);
      }
      ssize_t n = ::pwrite(fd_, bytes.data(), bytes.size(),
                           ::lseek(fd_, 0, SEEK_END));
      if (n != static_cast<ssize_t>(bytes.size())) {
        return Status::IOError("short write to log file");
      }
      if (::fsync(fd_) != 0) {
        return Status::IOError("fsync: " +
                               std::string(std::strerror(errno)));
      }
    }
    // Checkpoint tracking: remember the newest checkpoint that just
    // became durable.
    for (Lsn l = durable_lsn_ + 1; l <= target; ++l) {
      if (records_[l - 1].type == LogRecordType::kCheckpoint) {
        last_checkpoint_ = l;
      }
    }
    durable_lsn_ = target;
  }
  return Status::OK();
}

Lsn LogManager::last_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return static_cast<Lsn>(records_.size());
}

Lsn LogManager::durable_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return durable_lsn_;
}

Lsn LogManager::last_checkpoint_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return last_checkpoint_;
}

void LogManager::SimulateCrash() {
  std::lock_guard<std::mutex> g(mu_);
  records_.resize(durable_lsn_);
}

LogRecord LogManager::At(Lsn lsn) const {
  std::lock_guard<std::mutex> g(mu_);
  assert(lsn >= 1 && lsn <= records_.size());
  return records_[lsn - 1];
}

std::vector<LogRecord> LogManager::ReadAll() const {
  std::lock_guard<std::mutex> g(mu_);
  return {records_.begin(), records_.end()};
}

std::vector<LogRecord> LogManager::ReadDurable() const {
  std::lock_guard<std::mutex> g(mu_);
  return {records_.begin(), records_.begin() + durable_lsn_};
}

std::vector<uint8_t> LogManager::SerializeDurable() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<uint8_t> out;
  for (Lsn l = 1; l <= durable_lsn_; ++l) {
    records_[l - 1].EncodeTo(&out);
  }
  return out;
}

Result<std::vector<LogRecord>> LogManager::Deserialize(
    const std::vector<uint8_t>& bytes) {
  std::vector<LogRecord> out;
  size_t off = 0;
  for (;;) {
    auto rec = LogRecord::DecodeFrom(bytes, &off);
    if (!rec.ok()) {
      if (rec.status().IsNotFound()) break;  // clean end
      return rec.status();
    }
    out.push_back(std::move(rec).value());
  }
  return out;
}

size_t LogManager::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return records_.size();
}

}  // namespace asset
